# Empty dependencies file for frequency_tuning.
# This may be replaced when dependencies are built.
