file(REMOVE_RECURSE
  "CMakeFiles/frequency_tuning.dir/frequency_tuning.cpp.o"
  "CMakeFiles/frequency_tuning.dir/frequency_tuning.cpp.o.d"
  "frequency_tuning"
  "frequency_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
