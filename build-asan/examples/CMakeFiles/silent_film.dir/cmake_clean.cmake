file(REMOVE_RECURSE
  "CMakeFiles/silent_film.dir/silent_film.cpp.o"
  "CMakeFiles/silent_film.dir/silent_film.cpp.o.d"
  "silent_film"
  "silent_film.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silent_film.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
