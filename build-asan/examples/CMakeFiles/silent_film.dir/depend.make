# Empty dependencies file for silent_film.
# This may be replaced when dependencies are built.
