file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_offload.dir/heterogeneous_offload.cpp.o"
  "CMakeFiles/heterogeneous_offload.dir/heterogeneous_offload.cpp.o.d"
  "heterogeneous_offload"
  "heterogeneous_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
