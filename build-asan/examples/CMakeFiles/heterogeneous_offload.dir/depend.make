# Empty dependencies file for heterogeneous_offload.
# This may be replaced when dependencies are built.
