file(REMOVE_RECURSE
  "CMakeFiles/arrangement_explorer.dir/arrangement_explorer.cpp.o"
  "CMakeFiles/arrangement_explorer.dir/arrangement_explorer.cpp.o.d"
  "arrangement_explorer"
  "arrangement_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrangement_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
