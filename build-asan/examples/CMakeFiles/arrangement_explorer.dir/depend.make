# Empty dependencies file for arrangement_explorer.
# This may be replaced when dependencies are built.
