# Empty compiler generated dependencies file for sccpipe_render.
# This may be replaced when dependencies are built.
