file(REMOVE_RECURSE
  "libsccpipe_render.a"
)
