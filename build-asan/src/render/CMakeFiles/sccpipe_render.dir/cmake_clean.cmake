file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_render.dir/rasterizer.cpp.o"
  "CMakeFiles/sccpipe_render.dir/rasterizer.cpp.o.d"
  "CMakeFiles/sccpipe_render.dir/renderer.cpp.o"
  "CMakeFiles/sccpipe_render.dir/renderer.cpp.o.d"
  "libsccpipe_render.a"
  "libsccpipe_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
