
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/rasterizer.cpp" "src/render/CMakeFiles/sccpipe_render.dir/rasterizer.cpp.o" "gcc" "src/render/CMakeFiles/sccpipe_render.dir/rasterizer.cpp.o.d"
  "/root/repo/src/render/renderer.cpp" "src/render/CMakeFiles/sccpipe_render.dir/renderer.cpp.o" "gcc" "src/render/CMakeFiles/sccpipe_render.dir/renderer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/scene/CMakeFiles/sccpipe_scene.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/filters/CMakeFiles/sccpipe_filters.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geom/CMakeFiles/sccpipe_geom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/sccpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
