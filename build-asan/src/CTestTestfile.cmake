# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sim")
subdirs("noc")
subdirs("mem")
subdirs("scc")
subdirs("rcce")
subdirs("host")
subdirs("geom")
subdirs("scene")
subdirs("render")
subdirs("filters")
subdirs("core")
