file(REMOVE_RECURSE
  "libsccpipe_rcce.a"
)
