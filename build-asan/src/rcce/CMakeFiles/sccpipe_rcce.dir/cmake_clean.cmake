file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_rcce.dir/collectives.cpp.o"
  "CMakeFiles/sccpipe_rcce.dir/collectives.cpp.o.d"
  "CMakeFiles/sccpipe_rcce.dir/mpb.cpp.o"
  "CMakeFiles/sccpipe_rcce.dir/mpb.cpp.o.d"
  "CMakeFiles/sccpipe_rcce.dir/rcce.cpp.o"
  "CMakeFiles/sccpipe_rcce.dir/rcce.cpp.o.d"
  "libsccpipe_rcce.a"
  "libsccpipe_rcce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_rcce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
