
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rcce/collectives.cpp" "src/rcce/CMakeFiles/sccpipe_rcce.dir/collectives.cpp.o" "gcc" "src/rcce/CMakeFiles/sccpipe_rcce.dir/collectives.cpp.o.d"
  "/root/repo/src/rcce/mpb.cpp" "src/rcce/CMakeFiles/sccpipe_rcce.dir/mpb.cpp.o" "gcc" "src/rcce/CMakeFiles/sccpipe_rcce.dir/mpb.cpp.o.d"
  "/root/repo/src/rcce/rcce.cpp" "src/rcce/CMakeFiles/sccpipe_rcce.dir/rcce.cpp.o" "gcc" "src/rcce/CMakeFiles/sccpipe_rcce.dir/rcce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/scc/CMakeFiles/sccpipe_scc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mem/CMakeFiles/sccpipe_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/noc/CMakeFiles/sccpipe_noc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/sccpipe_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/sccpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
