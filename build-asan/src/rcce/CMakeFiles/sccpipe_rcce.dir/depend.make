# Empty dependencies file for sccpipe_rcce.
# This may be replaced when dependencies are built.
