# Empty dependencies file for sccpipe_noc.
# This may be replaced when dependencies are built.
