file(REMOVE_RECURSE
  "libsccpipe_noc.a"
)
