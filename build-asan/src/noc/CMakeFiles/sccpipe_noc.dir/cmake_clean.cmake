file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_noc.dir/mesh.cpp.o"
  "CMakeFiles/sccpipe_noc.dir/mesh.cpp.o.d"
  "CMakeFiles/sccpipe_noc.dir/topology.cpp.o"
  "CMakeFiles/sccpipe_noc.dir/topology.cpp.o.d"
  "libsccpipe_noc.a"
  "libsccpipe_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
