
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/mesh.cpp" "src/noc/CMakeFiles/sccpipe_noc.dir/mesh.cpp.o" "gcc" "src/noc/CMakeFiles/sccpipe_noc.dir/mesh.cpp.o.d"
  "/root/repo/src/noc/topology.cpp" "src/noc/CMakeFiles/sccpipe_noc.dir/topology.cpp.o" "gcc" "src/noc/CMakeFiles/sccpipe_noc.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/sccpipe_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/sccpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
