# Empty dependencies file for sccpipe_sim.
# This may be replaced when dependencies are built.
