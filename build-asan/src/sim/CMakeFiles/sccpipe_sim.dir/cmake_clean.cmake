file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_sim.dir/fair_share.cpp.o"
  "CMakeFiles/sccpipe_sim.dir/fair_share.cpp.o.d"
  "CMakeFiles/sccpipe_sim.dir/fault.cpp.o"
  "CMakeFiles/sccpipe_sim.dir/fault.cpp.o.d"
  "CMakeFiles/sccpipe_sim.dir/resource.cpp.o"
  "CMakeFiles/sccpipe_sim.dir/resource.cpp.o.d"
  "CMakeFiles/sccpipe_sim.dir/simulator.cpp.o"
  "CMakeFiles/sccpipe_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sccpipe_sim.dir/trace.cpp.o"
  "CMakeFiles/sccpipe_sim.dir/trace.cpp.o.d"
  "libsccpipe_sim.a"
  "libsccpipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
