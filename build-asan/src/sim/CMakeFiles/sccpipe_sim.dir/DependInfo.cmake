
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fair_share.cpp" "src/sim/CMakeFiles/sccpipe_sim.dir/fair_share.cpp.o" "gcc" "src/sim/CMakeFiles/sccpipe_sim.dir/fair_share.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/sccpipe_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/sccpipe_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/sim/CMakeFiles/sccpipe_sim.dir/resource.cpp.o" "gcc" "src/sim/CMakeFiles/sccpipe_sim.dir/resource.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/sccpipe_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/sccpipe_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/sccpipe_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/sccpipe_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/support/CMakeFiles/sccpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
