file(REMOVE_RECURSE
  "libsccpipe_sim.a"
)
