file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_scc.dir/chip.cpp.o"
  "CMakeFiles/sccpipe_scc.dir/chip.cpp.o.d"
  "CMakeFiles/sccpipe_scc.dir/dvfs.cpp.o"
  "CMakeFiles/sccpipe_scc.dir/dvfs.cpp.o.d"
  "CMakeFiles/sccpipe_scc.dir/power.cpp.o"
  "CMakeFiles/sccpipe_scc.dir/power.cpp.o.d"
  "libsccpipe_scc.a"
  "libsccpipe_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
