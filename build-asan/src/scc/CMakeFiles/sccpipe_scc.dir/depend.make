# Empty dependencies file for sccpipe_scc.
# This may be replaced when dependencies are built.
