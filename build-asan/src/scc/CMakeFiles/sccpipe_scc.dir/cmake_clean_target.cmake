file(REMOVE_RECURSE
  "libsccpipe_scc.a"
)
