# Empty dependencies file for sccpipe_mem.
# This may be replaced when dependencies are built.
