file(REMOVE_RECURSE
  "libsccpipe_mem.a"
)
