file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_mem.dir/cache.cpp.o"
  "CMakeFiles/sccpipe_mem.dir/cache.cpp.o.d"
  "CMakeFiles/sccpipe_mem.dir/memory.cpp.o"
  "CMakeFiles/sccpipe_mem.dir/memory.cpp.o.d"
  "libsccpipe_mem.a"
  "libsccpipe_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
