# Empty dependencies file for sccpipe_geom.
# This may be replaced when dependencies are built.
