file(REMOVE_RECURSE
  "libsccpipe_geom.a"
)
