file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_geom.dir/frustum.cpp.o"
  "CMakeFiles/sccpipe_geom.dir/frustum.cpp.o.d"
  "CMakeFiles/sccpipe_geom.dir/mat4.cpp.o"
  "CMakeFiles/sccpipe_geom.dir/mat4.cpp.o.d"
  "libsccpipe_geom.a"
  "libsccpipe_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
