
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/frustum.cpp" "src/geom/CMakeFiles/sccpipe_geom.dir/frustum.cpp.o" "gcc" "src/geom/CMakeFiles/sccpipe_geom.dir/frustum.cpp.o.d"
  "/root/repo/src/geom/mat4.cpp" "src/geom/CMakeFiles/sccpipe_geom.dir/mat4.cpp.o" "gcc" "src/geom/CMakeFiles/sccpipe_geom.dir/mat4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/support/CMakeFiles/sccpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
