file(REMOVE_RECURSE
  "libsccpipe_support.a"
)
