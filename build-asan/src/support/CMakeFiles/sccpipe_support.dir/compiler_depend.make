# Empty compiler generated dependencies file for sccpipe_support.
# This may be replaced when dependencies are built.
