file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_support.dir/args.cpp.o"
  "CMakeFiles/sccpipe_support.dir/args.cpp.o.d"
  "CMakeFiles/sccpipe_support.dir/check.cpp.o"
  "CMakeFiles/sccpipe_support.dir/check.cpp.o.d"
  "CMakeFiles/sccpipe_support.dir/log.cpp.o"
  "CMakeFiles/sccpipe_support.dir/log.cpp.o.d"
  "CMakeFiles/sccpipe_support.dir/stats.cpp.o"
  "CMakeFiles/sccpipe_support.dir/stats.cpp.o.d"
  "CMakeFiles/sccpipe_support.dir/status.cpp.o"
  "CMakeFiles/sccpipe_support.dir/status.cpp.o.d"
  "CMakeFiles/sccpipe_support.dir/svg_plot.cpp.o"
  "CMakeFiles/sccpipe_support.dir/svg_plot.cpp.o.d"
  "CMakeFiles/sccpipe_support.dir/table.cpp.o"
  "CMakeFiles/sccpipe_support.dir/table.cpp.o.d"
  "CMakeFiles/sccpipe_support.dir/time.cpp.o"
  "CMakeFiles/sccpipe_support.dir/time.cpp.o.d"
  "libsccpipe_support.a"
  "libsccpipe_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
