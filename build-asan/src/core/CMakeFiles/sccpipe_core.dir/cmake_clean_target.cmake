file(REMOVE_RECURSE
  "libsccpipe_core.a"
)
