# Empty dependencies file for sccpipe_core.
# This may be replaced when dependencies are built.
