file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_core.dir/channel.cpp.o"
  "CMakeFiles/sccpipe_core.dir/channel.cpp.o.d"
  "CMakeFiles/sccpipe_core.dir/placement.cpp.o"
  "CMakeFiles/sccpipe_core.dir/placement.cpp.o.d"
  "CMakeFiles/sccpipe_core.dir/stage.cpp.o"
  "CMakeFiles/sccpipe_core.dir/stage.cpp.o.d"
  "CMakeFiles/sccpipe_core.dir/timeline.cpp.o"
  "CMakeFiles/sccpipe_core.dir/timeline.cpp.o.d"
  "CMakeFiles/sccpipe_core.dir/walkthrough.cpp.o"
  "CMakeFiles/sccpipe_core.dir/walkthrough.cpp.o.d"
  "CMakeFiles/sccpipe_core.dir/workload.cpp.o"
  "CMakeFiles/sccpipe_core.dir/workload.cpp.o.d"
  "libsccpipe_core.a"
  "libsccpipe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
