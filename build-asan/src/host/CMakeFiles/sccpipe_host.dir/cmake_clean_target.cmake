file(REMOVE_RECURSE
  "libsccpipe_host.a"
)
