file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_host.dir/host_cpu.cpp.o"
  "CMakeFiles/sccpipe_host.dir/host_cpu.cpp.o.d"
  "CMakeFiles/sccpipe_host.dir/host_link.cpp.o"
  "CMakeFiles/sccpipe_host.dir/host_link.cpp.o.d"
  "libsccpipe_host.a"
  "libsccpipe_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
