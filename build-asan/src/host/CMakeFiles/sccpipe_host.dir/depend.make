# Empty dependencies file for sccpipe_host.
# This may be replaced when dependencies are built.
