file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_scene.dir/camera.cpp.o"
  "CMakeFiles/sccpipe_scene.dir/camera.cpp.o.d"
  "CMakeFiles/sccpipe_scene.dir/city.cpp.o"
  "CMakeFiles/sccpipe_scene.dir/city.cpp.o.d"
  "CMakeFiles/sccpipe_scene.dir/mesh.cpp.o"
  "CMakeFiles/sccpipe_scene.dir/mesh.cpp.o.d"
  "CMakeFiles/sccpipe_scene.dir/octree.cpp.o"
  "CMakeFiles/sccpipe_scene.dir/octree.cpp.o.d"
  "libsccpipe_scene.a"
  "libsccpipe_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
