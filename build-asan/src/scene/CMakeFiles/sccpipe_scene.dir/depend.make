# Empty dependencies file for sccpipe_scene.
# This may be replaced when dependencies are built.
