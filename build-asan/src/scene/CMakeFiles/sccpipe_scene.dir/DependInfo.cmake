
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/camera.cpp" "src/scene/CMakeFiles/sccpipe_scene.dir/camera.cpp.o" "gcc" "src/scene/CMakeFiles/sccpipe_scene.dir/camera.cpp.o.d"
  "/root/repo/src/scene/city.cpp" "src/scene/CMakeFiles/sccpipe_scene.dir/city.cpp.o" "gcc" "src/scene/CMakeFiles/sccpipe_scene.dir/city.cpp.o.d"
  "/root/repo/src/scene/mesh.cpp" "src/scene/CMakeFiles/sccpipe_scene.dir/mesh.cpp.o" "gcc" "src/scene/CMakeFiles/sccpipe_scene.dir/mesh.cpp.o.d"
  "/root/repo/src/scene/octree.cpp" "src/scene/CMakeFiles/sccpipe_scene.dir/octree.cpp.o" "gcc" "src/scene/CMakeFiles/sccpipe_scene.dir/octree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/geom/CMakeFiles/sccpipe_geom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/filters/CMakeFiles/sccpipe_filters.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/sccpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
