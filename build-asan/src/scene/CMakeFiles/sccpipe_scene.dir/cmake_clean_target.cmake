file(REMOVE_RECURSE
  "libsccpipe_scene.a"
)
