file(REMOVE_RECURSE
  "libsccpipe_filters.a"
)
