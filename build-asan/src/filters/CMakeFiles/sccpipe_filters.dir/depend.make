# Empty dependencies file for sccpipe_filters.
# This may be replaced when dependencies are built.
