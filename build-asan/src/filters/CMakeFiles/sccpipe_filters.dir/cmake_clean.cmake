file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_filters.dir/filters.cpp.o"
  "CMakeFiles/sccpipe_filters.dir/filters.cpp.o.d"
  "CMakeFiles/sccpipe_filters.dir/image.cpp.o"
  "CMakeFiles/sccpipe_filters.dir/image.cpp.o.d"
  "libsccpipe_filters.a"
  "libsccpipe_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
