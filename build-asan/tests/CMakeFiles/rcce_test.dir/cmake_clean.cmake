file(REMOVE_RECURSE
  "CMakeFiles/rcce_test.dir/rcce_test.cpp.o"
  "CMakeFiles/rcce_test.dir/rcce_test.cpp.o.d"
  "rcce_test"
  "rcce_test.pdb"
  "rcce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
