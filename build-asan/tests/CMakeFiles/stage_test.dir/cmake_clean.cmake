file(REMOVE_RECURSE
  "CMakeFiles/stage_test.dir/stage_test.cpp.o"
  "CMakeFiles/stage_test.dir/stage_test.cpp.o.d"
  "stage_test"
  "stage_test.pdb"
  "stage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
