# Empty compiler generated dependencies file for stage_test.
# This may be replaced when dependencies are built.
