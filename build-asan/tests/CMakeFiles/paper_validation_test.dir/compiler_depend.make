# Empty compiler generated dependencies file for paper_validation_test.
# This may be replaced when dependencies are built.
