file(REMOVE_RECURSE
  "CMakeFiles/workload_cache_test.dir/workload_cache_test.cpp.o"
  "CMakeFiles/workload_cache_test.dir/workload_cache_test.cpp.o.d"
  "workload_cache_test"
  "workload_cache_test.pdb"
  "workload_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
