# Empty compiler generated dependencies file for workload_cache_test.
# This may be replaced when dependencies are built.
