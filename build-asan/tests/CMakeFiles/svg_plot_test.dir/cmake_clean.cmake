file(REMOVE_RECURSE
  "CMakeFiles/svg_plot_test.dir/svg_plot_test.cpp.o"
  "CMakeFiles/svg_plot_test.dir/svg_plot_test.cpp.o.d"
  "svg_plot_test"
  "svg_plot_test.pdb"
  "svg_plot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svg_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
