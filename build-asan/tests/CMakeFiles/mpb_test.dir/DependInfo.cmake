
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mpb_test.cpp" "tests/CMakeFiles/mpb_test.dir/mpb_test.cpp.o" "gcc" "tests/CMakeFiles/mpb_test.dir/mpb_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/rcce/CMakeFiles/sccpipe_rcce.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/scc/CMakeFiles/sccpipe_scc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mem/CMakeFiles/sccpipe_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/noc/CMakeFiles/sccpipe_noc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/sccpipe_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/sccpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
