file(REMOVE_RECURSE
  "CMakeFiles/mpb_test.dir/mpb_test.cpp.o"
  "CMakeFiles/mpb_test.dir/mpb_test.cpp.o.d"
  "mpb_test"
  "mpb_test.pdb"
  "mpb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
