# Empty compiler generated dependencies file for mpb_test.
# This may be replaced when dependencies are built.
