# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/support_test[1]_include.cmake")
include("/root/repo/build-asan/tests/svg_plot_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/noc_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mem_test[1]_include.cmake")
include("/root/repo/build-asan/tests/scc_test[1]_include.cmake")
include("/root/repo/build-asan/tests/rcce_test[1]_include.cmake")
include("/root/repo/build-asan/tests/collectives_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mpb_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build-asan/tests/host_test[1]_include.cmake")
include("/root/repo/build-asan/tests/geom_test[1]_include.cmake")
include("/root/repo/build-asan/tests/scene_test[1]_include.cmake")
include("/root/repo/build-asan/tests/render_test[1]_include.cmake")
include("/root/repo/build-asan/tests/filters_test[1]_include.cmake")
include("/root/repo/build-asan/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-asan/tests/placement_test[1]_include.cmake")
include("/root/repo/build-asan/tests/stage_test[1]_include.cmake")
include("/root/repo/build-asan/tests/channel_test[1]_include.cmake")
include("/root/repo/build-asan/tests/timeline_test[1]_include.cmake")
include("/root/repo/build-asan/tests/workload_cache_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build-asan/tests/walkthrough_test[1]_include.cmake")
include("/root/repo/build-asan/tests/property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/paper_validation_test[1]_include.cmake")
