file(REMOVE_RECURSE
  "../bench/micro_noc"
  "../bench/micro_noc.pdb"
  "CMakeFiles/micro_noc.dir/micro_noc.cpp.o"
  "CMakeFiles/micro_noc.dir/micro_noc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
