file(REMOVE_RECURSE
  "../bench/fig15_idle_times"
  "../bench/fig15_idle_times.pdb"
  "CMakeFiles/fig15_idle_times.dir/fig15_idle_times.cpp.o"
  "CMakeFiles/fig15_idle_times.dir/fig15_idle_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_idle_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
