# Empty compiler generated dependencies file for fig15_idle_times.
# This may be replaced when dependencies are built.
