file(REMOVE_RECURSE
  "../bench/fig10_n_renderers"
  "../bench/fig10_n_renderers.pdb"
  "CMakeFiles/fig10_n_renderers.dir/fig10_n_renderers.cpp.o"
  "CMakeFiles/fig10_n_renderers.dir/fig10_n_renderers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_n_renderers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
