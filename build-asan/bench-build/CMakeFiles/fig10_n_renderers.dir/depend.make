# Empty dependencies file for fig10_n_renderers.
# This may be replaced when dependencies are built.
