file(REMOVE_RECURSE
  "../bench/fig11_mcpc_renderer"
  "../bench/fig11_mcpc_renderer.pdb"
  "CMakeFiles/fig11_mcpc_renderer.dir/fig11_mcpc_renderer.cpp.o"
  "CMakeFiles/fig11_mcpc_renderer.dir/fig11_mcpc_renderer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mcpc_renderer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
