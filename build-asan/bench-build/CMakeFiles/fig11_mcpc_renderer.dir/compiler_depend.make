# Empty compiler generated dependencies file for fig11_mcpc_renderer.
# This may be replaced when dependencies are built.
