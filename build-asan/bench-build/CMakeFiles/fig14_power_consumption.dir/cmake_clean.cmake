file(REMOVE_RECURSE
  "../bench/fig14_power_consumption"
  "../bench/fig14_power_consumption.pdb"
  "CMakeFiles/fig14_power_consumption.dir/fig14_power_consumption.cpp.o"
  "CMakeFiles/fig14_power_consumption.dir/fig14_power_consumption.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_power_consumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
