# Empty compiler generated dependencies file for fig14_power_consumption.
# This may be replaced when dependencies are built.
