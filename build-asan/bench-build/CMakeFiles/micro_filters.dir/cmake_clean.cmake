file(REMOVE_RECURSE
  "../bench/micro_filters"
  "../bench/micro_filters.pdb"
  "CMakeFiles/micro_filters.dir/micro_filters.cpp.o"
  "CMakeFiles/micro_filters.dir/micro_filters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
