# Empty dependencies file for micro_filters.
# This may be replaced when dependencies are built.
