# Empty compiler generated dependencies file for micro_render.
# This may be replaced when dependencies are built.
