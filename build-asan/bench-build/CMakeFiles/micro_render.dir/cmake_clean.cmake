file(REMOVE_RECURSE
  "../bench/micro_render"
  "../bench/micro_render.pdb"
  "CMakeFiles/micro_render.dir/micro_render.cpp.o"
  "CMakeFiles/micro_render.dir/micro_render.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
