# Empty dependencies file for sccpipe_bench_common.
# This may be replaced when dependencies are built.
