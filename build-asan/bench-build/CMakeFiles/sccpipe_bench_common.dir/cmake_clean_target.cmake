file(REMOVE_RECURSE
  "libsccpipe_bench_common.a"
)
