file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_bench_common.dir/common.cpp.o"
  "CMakeFiles/sccpipe_bench_common.dir/common.cpp.o.d"
  "libsccpipe_bench_common.a"
  "libsccpipe_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
