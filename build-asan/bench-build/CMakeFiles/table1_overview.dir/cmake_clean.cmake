file(REMOVE_RECURSE
  "../bench/table1_overview"
  "../bench/table1_overview.pdb"
  "CMakeFiles/table1_overview.dir/table1_overview.cpp.o"
  "CMakeFiles/table1_overview.dir/table1_overview.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
