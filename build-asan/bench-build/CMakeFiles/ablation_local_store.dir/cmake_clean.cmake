file(REMOVE_RECURSE
  "../bench/ablation_local_store"
  "../bench/ablation_local_store.pdb"
  "CMakeFiles/ablation_local_store.dir/ablation_local_store.cpp.o"
  "CMakeFiles/ablation_local_store.dir/ablation_local_store.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
