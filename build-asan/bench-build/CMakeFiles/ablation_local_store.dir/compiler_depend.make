# Empty compiler generated dependencies file for ablation_local_store.
# This may be replaced when dependencies are built.
