file(REMOVE_RECURSE
  "../bench/fig08_stage_breakdown"
  "../bench/fig08_stage_breakdown.pdb"
  "CMakeFiles/fig08_stage_breakdown.dir/fig08_stage_breakdown.cpp.o"
  "CMakeFiles/fig08_stage_breakdown.dir/fig08_stage_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_stage_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
