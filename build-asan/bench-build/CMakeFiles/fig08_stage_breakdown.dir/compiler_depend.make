# Empty compiler generated dependencies file for fig08_stage_breakdown.
# This may be replaced when dependencies are built.
