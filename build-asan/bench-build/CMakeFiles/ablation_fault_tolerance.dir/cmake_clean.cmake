file(REMOVE_RECURSE
  "../bench/ablation_fault_tolerance"
  "../bench/ablation_fault_tolerance.pdb"
  "CMakeFiles/ablation_fault_tolerance.dir/ablation_fault_tolerance.cpp.o"
  "CMakeFiles/ablation_fault_tolerance.dir/ablation_fault_tolerance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
