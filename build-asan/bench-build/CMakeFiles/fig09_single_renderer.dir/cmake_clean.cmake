file(REMOVE_RECURSE
  "../bench/fig09_single_renderer"
  "../bench/fig09_single_renderer.pdb"
  "CMakeFiles/fig09_single_renderer.dir/fig09_single_renderer.cpp.o"
  "CMakeFiles/fig09_single_renderer.dir/fig09_single_renderer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_single_renderer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
