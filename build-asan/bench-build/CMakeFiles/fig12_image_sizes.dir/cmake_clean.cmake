file(REMOVE_RECURSE
  "../bench/fig12_image_sizes"
  "../bench/fig12_image_sizes.pdb"
  "CMakeFiles/fig12_image_sizes.dir/fig12_image_sizes.cpp.o"
  "CMakeFiles/fig12_image_sizes.dir/fig12_image_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_image_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
