# Empty dependencies file for ablation_voltage_domains.
# This may be replaced when dependencies are built.
