file(REMOVE_RECURSE
  "../bench/ablation_voltage_domains"
  "../bench/ablation_voltage_domains.pdb"
  "CMakeFiles/ablation_voltage_domains.dir/ablation_voltage_domains.cpp.o"
  "CMakeFiles/ablation_voltage_domains.dir/ablation_voltage_domains.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_voltage_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
