file(REMOVE_RECURSE
  "../bench/fig13_hpc_cluster"
  "../bench/fig13_hpc_cluster.pdb"
  "CMakeFiles/fig13_hpc_cluster.dir/fig13_hpc_cluster.cpp.o"
  "CMakeFiles/fig13_hpc_cluster.dir/fig13_hpc_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hpc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
