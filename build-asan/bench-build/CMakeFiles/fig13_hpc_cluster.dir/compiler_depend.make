# Empty compiler generated dependencies file for fig13_hpc_cluster.
# This may be replaced when dependencies are built.
