# Empty compiler generated dependencies file for ablation_arrangements.
# This may be replaced when dependencies are built.
