file(REMOVE_RECURSE
  "../bench/ablation_arrangements"
  "../bench/ablation_arrangements.pdb"
  "CMakeFiles/ablation_arrangements.dir/ablation_arrangements.cpp.o"
  "CMakeFiles/ablation_arrangements.dir/ablation_arrangements.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arrangements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
