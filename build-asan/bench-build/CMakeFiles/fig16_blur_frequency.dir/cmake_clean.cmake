file(REMOVE_RECURSE
  "../bench/fig16_blur_frequency"
  "../bench/fig16_blur_frequency.pdb"
  "CMakeFiles/fig16_blur_frequency.dir/fig16_blur_frequency.cpp.o"
  "CMakeFiles/fig16_blur_frequency.dir/fig16_blur_frequency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_blur_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
