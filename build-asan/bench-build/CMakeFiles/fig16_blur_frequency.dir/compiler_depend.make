# Empty compiler generated dependencies file for fig16_blur_frequency.
# This may be replaced when dependencies are built.
