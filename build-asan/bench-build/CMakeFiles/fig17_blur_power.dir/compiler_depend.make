# Empty compiler generated dependencies file for fig17_blur_power.
# This may be replaced when dependencies are built.
