file(REMOVE_RECURSE
  "../bench/fig17_blur_power"
  "../bench/fig17_blur_power.pdb"
  "CMakeFiles/fig17_blur_power.dir/fig17_blur_power.cpp.o"
  "CMakeFiles/fig17_blur_power.dir/fig17_blur_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_blur_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
