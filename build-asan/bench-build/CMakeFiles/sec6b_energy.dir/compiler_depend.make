# Empty compiler generated dependencies file for sec6b_energy.
# This may be replaced when dependencies are built.
