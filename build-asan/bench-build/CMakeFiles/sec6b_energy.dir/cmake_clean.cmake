file(REMOVE_RECURSE
  "../bench/sec6b_energy"
  "../bench/sec6b_energy.pdb"
  "CMakeFiles/sec6b_energy.dir/sec6b_energy.cpp.o"
  "CMakeFiles/sec6b_energy.dir/sec6b_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6b_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
