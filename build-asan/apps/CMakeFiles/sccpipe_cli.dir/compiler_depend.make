# Empty compiler generated dependencies file for sccpipe_cli.
# This may be replaced when dependencies are built.
