file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_cli.dir/sccpipe_cli.cpp.o"
  "CMakeFiles/sccpipe_cli.dir/sccpipe_cli.cpp.o.d"
  "sccpipe"
  "sccpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
