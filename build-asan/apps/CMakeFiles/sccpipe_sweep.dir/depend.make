# Empty dependencies file for sccpipe_sweep.
# This may be replaced when dependencies are built.
