file(REMOVE_RECURSE
  "CMakeFiles/sccpipe_sweep.dir/sccpipe_sweep.cpp.o"
  "CMakeFiles/sccpipe_sweep.dir/sccpipe_sweep.cpp.o.d"
  "sccpipe_sweep"
  "sccpipe_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sccpipe_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
