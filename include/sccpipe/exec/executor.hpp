#pragma once

/// \file executor.hpp
/// Parallel experiment execution. Every sccpipe run is an independent,
/// deterministic, single-threaded simulation over immutable inputs
/// (SceneBundle / WorkloadTrace are built once and never mutated), so a
/// sweep of N configurations parallelises embarrassingly: one Simulator
/// per task, no shared mutable state, results keyed by configuration
/// index.
///
/// Determinism guarantee: run_grid()/parallel_map() return results in
/// input order regardless of the job count or completion order, and each
/// task's computation is bit-identical to a serial run — so any consumer
/// that formats results in index order (the sweep CSV, the bench tables)
/// produces byte-identical output at --jobs 1 and --jobs N.
///
/// jobs semantics everywhere in this header: 0 = default_jobs();
/// 1 = run inline on the calling thread (no pool, no thread creation);
/// N > 1 = fixed pool of N worker threads.

#include <cstddef>
#include <functional>
#include <vector>

#include "sccpipe/core/walkthrough.hpp"

namespace sccpipe::exec {

/// Worker count used when a caller passes jobs = 0: the SCCPIPE_JOBS
/// environment variable if set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (at least 1).
int default_jobs();

/// Worker count for the partitioned engine *inside* one simulation
/// (RunConfig::sim_jobs = 0): the SCCPIPE_SIM_JOBS environment variable if
/// set to a positive integer, otherwise 1 — intra-run parallelism is
/// opt-in, unlike the between-runs default above.
int default_sim_jobs();

/// Validate an *explicitly requested* --sim-jobs value: the partitioned
/// engine needs at least one worker, so zero or negative requests are an
/// InvalidArgument — the CLIs used to substitute the default silently,
/// which hid typos in experiment scripts. A caller that wants the default
/// should omit the flag and use default_sim_jobs() instead.
Status validate_sim_jobs(int sim_jobs);

/// Fixed-size thread pool. Threads start in the constructor and join in
/// the destructor; submit() never blocks (unbounded queue).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const;

  /// Enqueue one task. Tasks must not throw (wrap user work that can).
  void submit(std::function<void()> fn);

 private:
  struct Impl;
  Impl* impl_;
};

/// Run fn(0..n-1), spreading indices across \p jobs workers. Blocks until
/// every index has run. If any invocation throws, the exception from the
/// lowest index is rethrown after all tasks finish (deterministic error
/// reporting); later indices still run.
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Map fn over [0, n) into a vector ordered by index.
template <typename T>
std::vector<T> parallel_map(int jobs, std::size_t n,
                            const std::function<T(std::size_t)>& fn) {
  std::vector<T> out(n);
  parallel_for(jobs, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Batch experiment executor: run every configuration against one shared
/// scene/trace and return results in configuration order. The scene and
/// trace must outlive the call and are shared read-only across workers;
/// each RunConfig must carry its own timeline recorder (or none) — a
/// recorder shared between configs would race.
std::vector<RunResult> run_grid(const SceneBundle& scene,
                                const WorkloadTrace& trace,
                                const std::vector<RunConfig>& configs,
                                int jobs = 0);

/// Adapter for WorkloadTrace::build's parallelism hook: runs the per-frame
/// estimation pass across \p jobs workers (0 = default_jobs()).
WorkloadTrace::ForEachFrame trace_runner(int jobs = 0);

}  // namespace sccpipe::exec
