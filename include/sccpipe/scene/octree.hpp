#pragma once

/// \file octree.hpp
/// Hierarchical spatial index over the scene triangles (paper §IV: "it
/// loads the scene and organizes the different objects in a hierarchical
/// data structure known as an octree ... it performs a frustum culling. By
/// doing this the octree is traversed, causing significant memory
/// accesses"). The traversal statistics feed the render stage's
/// latency-bound memory cost in the timed model.

#include <cstdint>
#include <vector>

#include "sccpipe/geom/frustum.hpp"
#include "sccpipe/scene/mesh.hpp"

namespace sccpipe {

struct OctreeConfig {
  int max_depth = 10;
  int max_tris_per_leaf = 24;
};

struct CullStats {
  std::uint32_t nodes_visited = 0;
  std::uint32_t tris_accepted = 0;
  std::uint32_t nodes_total = 0;
};

class Octree {
 public:
  Octree() = default;
  Octree(const Mesh& mesh, OctreeConfig cfg = {});

  bool built() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  const Aabb& bounds() const;

  /// Indices of triangles whose nodes intersect the frustum, appended to
  /// \p out (may contain conservative extras, never misses a visible one).
  void cull(const Frustum& frustum, std::vector<std::uint32_t>& out,
            CullStats* stats = nullptr) const;

  /// Sum of triangle references across all nodes (>= mesh size; duplicates
  /// impossible since each triangle lives in exactly one node).
  std::size_t stored_triangles() const;

 private:
  struct Node {
    Aabb box;
    std::int32_t children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    std::vector<std::uint32_t> tris;  // triangles resident at this node
    bool is_leaf = true;
  };

  void build(const Mesh& mesh, std::int32_t node_index,
             std::vector<std::uint32_t> tris, int depth);
  void cull_node(std::int32_t node_index, const Frustum& frustum,
                 bool fully_inside, std::vector<std::uint32_t>& out,
                 CullStats* stats) const;
  static Aabb octant_box(const Aabb& parent, Vec3 center, int oct);

  OctreeConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<Aabb> tri_bounds_;  // scratch during build only
  int depth_ = 0;
};

}  // namespace sccpipe
