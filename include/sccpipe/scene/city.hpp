#pragma once

/// \file city.hpp
/// Procedural city generator — the stand-in for the paper's NYC CAD model
/// (a licensed asset we substitute per DESIGN.md). A seeded grid of blocks
/// with box buildings of varying footprint/height, pyramid roofs on some,
/// and ground quads. What matters for the reproduction is the cost profile
/// it induces in the render stage: tens of thousands of triangles, deep
/// octree, view-dependent visible set along the walkthrough.

#include <cstdint>

#include "sccpipe/scene/mesh.hpp"

namespace sccpipe {

struct CityParams {
  int blocks_x = 14;
  int blocks_z = 14;
  float block_size = 18.0f;
  float street_width = 8.0f;
  int min_buildings_per_block = 2;
  int max_buildings_per_block = 5;
  float min_height = 6.0f;
  float max_height = 60.0f;
  double roof_probability = 0.35;
  std::uint64_t seed = 0x5cc91234;
};

Mesh generate_city(const CityParams& params = {});

}  // namespace sccpipe
