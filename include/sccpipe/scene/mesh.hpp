#pragma once

/// \file mesh.hpp
/// Triangle-soup scene geometry: "a large amount of colored triangles"
/// (paper §IV, Render stage). Colours live per triangle; there is no
/// texturing, matching the flat-shaded CAD look of the paper's NYC model.

#include <vector>

#include "sccpipe/geom/aabb.hpp"
#include "sccpipe/geom/vec.hpp"
#include "sccpipe/filters/image.hpp"  // Color

namespace sccpipe {

struct Triangle {
  Vec3 v0, v1, v2;
  Color color;

  Aabb bounds() const {
    Aabb b;
    b.extend(v0);
    b.extend(v1);
    b.extend(v2);
    return b;
  }
};

class Mesh {
 public:
  void add(const Triangle& t);
  /// Axis-aligned box from two opposite corners (12 triangles).
  void add_box(Vec3 lo, Vec3 hi, Color color);
  /// Horizontal rectangle at height y (2 triangles).
  void add_ground_quad(float x0, float z0, float x1, float z1, float y,
                       Color color);
  /// Four-sided pyramid roof over the rectangle [lo, hi] at apex height.
  void add_pyramid(Vec3 lo, Vec3 hi, float apex_y, Color color);

  const std::vector<Triangle>& triangles() const { return tris_; }
  std::size_t size() const { return tris_.size(); }
  bool empty() const { return tris_.empty(); }
  const Aabb& bounds() const { return bounds_; }

 private:
  std::vector<Triangle> tris_;
  Aabb bounds_;
};

}  // namespace sccpipe
