#pragma once

/// \file camera.hpp
/// The virtual walkthrough: a deterministic camera path through the city
/// (the paper's 400-frame flight through the NYC model), plus the
/// strip-adjusted projection used by sort-first rendering — each renderer
/// narrows the view frustum to its horizontal strip (§V, "additional
/// computation is necessary to adjust the viewing frustum of the camera").

#include "sccpipe/filters/image.hpp"  // StripRange
#include "sccpipe/geom/aabb.hpp"
#include "sccpipe/geom/mat4.hpp"

namespace sccpipe {

struct CameraConfig {
  float fovy_radians = 1.0471976f;  // 60 degrees
  float z_near = 0.5f;
  float z_far = 600.0f;
};

/// Off-axis projection covering only the rows [strip.y0, strip.y0+rows) of
/// a full frame of \p height rows. strip == {0, height} reproduces the
/// symmetric full-frame projection exactly.
Mat4 strip_projection(const CameraConfig& cfg, int width, int height,
                      StripRange strip);

/// Deterministic orbit-and-weave path over the scene: the eye circles the
/// city at varying radius and height, always looking ahead along the path.
class WalkthroughPath {
 public:
  WalkthroughPath(const Aabb& scene_bounds, int frame_count = 400);

  int frame_count() const { return frames_; }
  Vec3 eye(int frame) const;
  Vec3 target(int frame) const;
  Mat4 view(int frame) const;

 private:
  Vec3 position_at(float t) const;  // t in [0,1)

  Aabb bounds_;
  int frames_;
};

}  // namespace sccpipe
