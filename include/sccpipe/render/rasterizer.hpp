#pragma once

/// \file rasterizer.hpp
/// Software triangle rasterizer: clip-space input, near-plane clipping,
/// perspective divide, top-left-filled barycentric raster with a z-buffer.
/// Stands in for the os-mesa renderer of the paper's setup.

#include <cstdint>
#include <vector>

#include "sccpipe/filters/image.hpp"
#include "sccpipe/geom/vec.hpp"

namespace sccpipe {

/// Color + depth target.
class Framebuffer {
 public:
  Framebuffer(int width, int height);

  void clear(Color c = Color{16, 18, 24, 255}, float depth = 1.0f);

  int width() const { return color_.width(); }
  int height() const { return color_.height(); }
  Image& color() { return color_; }
  const Image& color() const { return color_; }
  float depth(int x, int y) const;
  void set_pixel(int x, int y, float z, Color c);

  /// Raw z-buffer row — the raster inner loop's depth test path (bounds are
  /// debug-checked only, like Image::row).
  float* depth_row(int y) {
    SCCPIPE_DCHECK(y >= 0 && y < height());
    return depth_.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(width());
  }
  const float* depth_row(int y) const {
    SCCPIPE_DCHECK(y >= 0 && y < height());
    return depth_.data() +
           static_cast<std::size_t>(y) * static_cast<std::size_t>(width());
  }

 private:
  Image color_;
  std::vector<float> depth_;
};

struct RasterStats {
  std::uint64_t triangles_submitted = 0;
  std::uint64_t triangles_clipped_away = 0;
  std::uint64_t pixels_filled = 0;
  std::uint64_t pixels_tested = 0;
};

/// Maps NDC onto a (possibly larger) virtual viewport and writes a row
/// window of it into the frame buffer. Sort-first strip rendering uses the
/// *full-frame* viewport with a row offset, so every strip rasterises the
/// same screen-space triangles bit-for-bit as a whole-frame pass —
/// assembling the strips reproduces the full frame exactly.
struct Viewport {
  int width = 0;
  int height = 0;    ///< full virtual viewport height
  int y_offset = 0;  ///< first virtual row written to the framebuffer

  static Viewport full(const Framebuffer& fb);
};

/// Draw one triangle given in clip space (pre-multiplied by
/// projection * view * model). Near-plane clipping may emit up to two
/// screen triangles.
void draw_triangle_clip(Framebuffer& fb, const Viewport& vp, Vec4 c0, Vec4 c1,
                        Vec4 c2, Color col, RasterStats* stats = nullptr);

}  // namespace sccpipe
