#pragma once

/// \file renderer.hpp
/// The render stage's engine: frustum-cull the octree, transform the
/// surviving triangles, rasterize into a strip-sized frame buffer. Also
/// provides the cheap workload *estimation* path the timed benches use —
/// identical culling, but projected-area accounting instead of per-pixel
/// rasterization (the discrete-event model only needs the counts).

#include <cstdint>

#include "sccpipe/render/rasterizer.hpp"
#include "sccpipe/scene/camera.hpp"
#include "sccpipe/scene/octree.hpp"

namespace sccpipe {

struct RenderStats {
  CullStats cull;
  RasterStats raster;
  std::uint64_t triangles_transformed = 0;
  /// Estimated covered pixels (estimation path; == pixels_filled order of
  /// magnitude on the raster path).
  double projected_pixels = 0.0;
};

/// Flat (per-face Lambert) shading — gives the CAD boxes visible faces.
struct LightingConfig {
  bool enabled = true;
  Vec3 direction{0.45f, 0.8f, 0.35f};  ///< towards the light, normalised on use
  float ambient = 0.45f;
};

class Renderer {
 public:
  /// References must outlive the renderer.
  Renderer(const Mesh& mesh, const Octree& octree, CameraConfig camera,
           int frame_width, int frame_height, LightingConfig lighting = {});

  int frame_width() const { return width_; }
  int frame_height() const { return height_; }
  const CameraConfig& camera() const { return camera_; }

  /// Render the rows [strip.y0, strip.y0+rows) of the full frame for the
  /// given view matrix. The returned image has strip.rows rows.
  Image render_strip(const Mat4& view, StripRange strip,
                     RenderStats* stats = nullptr) const;

  /// Full frame convenience.
  Image render(const Mat4& view, RenderStats* stats = nullptr) const;

  /// Workload estimation without rasterization: same culling and
  /// transform counts, projected pixel area instead of filled pixels.
  RenderStats estimate_strip(const Mat4& view, StripRange strip) const;

 private:
  Color shade(const Triangle& t) const;

  const Mesh& mesh_;
  const Octree& octree_;
  CameraConfig camera_;
  int width_;
  int height_;
  LightingConfig lighting_;
  Vec3 light_dir_;  ///< normalised lighting_.direction
};

}  // namespace sccpipe
