#pragma once

/// \file reference.hpp
/// Naive reference rasterizer — the per-pixel edge-function form the
/// optimised inner loop in rasterizer.cpp replaced. Kept compiled for the
/// golden-equivalence tests (bit-identical framebuffers on seeded random
/// triangle batches) and the perf baseline's optimised-vs-reference ratio.
/// See filters/reference.hpp for the rationale; the same "do not optimise
/// this" rule applies.

#include "sccpipe/render/rasterizer.hpp"

namespace sccpipe::reference {

void draw_triangle_clip(Framebuffer& fb, const Viewport& vp, Vec4 c0, Vec4 c1,
                        Vec4 c2, Color col, RasterStats* stats = nullptr);

}  // namespace sccpipe::reference
