#pragma once

/// \file reference.hpp
/// Naive reference implementations of the filter kernels — the
/// straightforward per-pixel get/set forms the optimised kernels in
/// filters.cpp replaced. They are kept compiled (not #ifdef'd out) for two
/// jobs:
///
///  * golden-equivalence tests assert the optimised kernels are
///    bit-identical to these on seeded random images;
///  * bench/perf_baseline measures optimised-vs-reference speedups on the
///    same machine, which is the machine-independent ratio the CI perf
///    gate checks.
///
/// Do not "fix" or speed these up: their value is being the obviously
/// correct transcription of the paper's §IV formulas.

#include "sccpipe/filters/filters.hpp"

namespace sccpipe::reference {

void apply_sepia(Image& img);
void apply_blur(Image& img);
void apply_scratches(Image& img, const ScratchParams& params);
void apply_flicker(Image& img, FlickerParams params);
void apply_oriented_scratches(Image& img, const OrientedScratchParams& params,
                              int strip_y0 = 0);
void apply_vflip(Image& img);

}  // namespace sccpipe::reference
