#pragma once

/// \file filters.hpp
/// The five image-manipulation stages of the silent-film pipeline,
/// implemented exactly as §IV describes them. Each filter operates on a
/// strip independently — the property the parallelisation relies on — with
/// one documented exception: the blur reads one row of context beyond each
/// strip edge, so strip-wise blurring differs from whole-frame blurring on
/// the seam rows (the paper's pipelines accept the same seam).

#include "sccpipe/filters/image.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {

/// Sepia tone (SeS): per-pixel recolouring,
///   mix    = clamp(0.3 r + 0.59 g + 0.11 b)
///   rgb'   = clamp(S1 (1 - mix) + S2 mix),  S1=(0.2,0.05,0), S2=(1,0.9,0.5)
void apply_sepia(Image& img);

/// Box blur (BS): each pixel becomes the average of its 3x3 neighbourhood
/// (clamped at borders). Works from the original data through a second
/// buffer, as the paper requires.
void apply_blur(Image& img);

/// Parameters of the scratch stage for one frame, drawn up-front so a
/// frame's look is reproducible regardless of strip decomposition.
struct ScratchParams {
  int count = 0;
  Color color;
  std::vector<int> columns;

  /// Paper §IV: "two random numbers are chosen: one for the number of
  /// scratches and another one for scratch color. Next, for each scratch,
  /// an x-coordinate is randomly chosen."
  static ScratchParams draw(Rng& rng, int image_width, int max_scratches = 12);
};

/// Scratch stage (ScS): vertical scratches at the drawn columns, full
/// height of the given image/strip.
void apply_scratches(Image& img, const ScratchParams& params);

/// Flicker parameters for one frame: brightness delta in [-1/10, 1/10].
struct FlickerParams {
  float delta = 0.0f;
  static FlickerParams draw(Rng& rng);
};

/// Flicker stage (FS): adds delta to every pixel's RGB, clamped to [0,1].
void apply_flicker(Image& img, FlickerParams params);

/// Swap stage (SwS): vertical mirror via an intermediate line buffer —
/// included by the paper purely to add another memory access pattern.
void apply_vflip(Image& img);

/// Frame-deterministic parameter draws: every strip of frame \p frame gets
/// identical scratch columns / flicker delta no matter how the frame is
/// decomposed, so pipeline output is independent of the pipeline count.
ScratchParams scratch_params_for_frame(std::uint64_t seed, int frame,
                                       int image_width,
                                       int max_scratches = 12);
FlickerParams flicker_params_for_frame(std::uint64_t seed, int frame);

/// Extension the paper sketches (§IV, Scratch stage: "the system can be
/// easily extended to allow scratches of arbitrary orientation and
/// length"): line-segment scratches in full-frame coordinates. A strip
/// applies only the portion of each segment that crosses its rows, so the
/// decomposition-invariance property is preserved.
struct OrientedScratch {
  float x0 = 0.0f, y0 = 0.0f;  ///< start, full-frame pixel coordinates
  float x1 = 0.0f, y1 = 0.0f;  ///< end
  Color color;
};

struct OrientedScratchParams {
  std::vector<OrientedScratch> scratches;

  /// Random segments: count in [0, max_scratches], arbitrary direction,
  /// length up to half the frame diagonal, one shade per frame.
  static OrientedScratchParams draw(Rng& rng, int width, int height,
                                    int max_scratches = 8);
};

OrientedScratchParams oriented_scratch_params_for_frame(std::uint64_t seed,
                                                        int frame, int width,
                                                        int height,
                                                        int max_scratches = 8);

/// Apply to a strip: \p img holds rows [strip_y0, strip_y0 + img.height())
/// of the full frame. Pass strip_y0 = 0 for whole-frame images.
void apply_oriented_scratches(Image& img, const OrientedScratchParams& params,
                              int strip_y0 = 0);

}  // namespace sccpipe
