#pragma once

/// \file image.hpp
/// RGBA8 frame buffer image — four bytes per pixel exactly as the paper's
/// render stage allocates (§IV, "four bytes per pixel"), with the
/// horizontal-strip views the sort-first parallelisation slices frames
/// into.

#include <cstdint>
#include <string>
#include <vector>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

struct Color {
  std::uint8_t r = 0, g = 0, b = 0, a = 255;
  friend bool operator==(Color, Color) = default;
};

/// Half-open row range [y0, y0+rows) — one pipeline's strip of the frame.
struct StripRange {
  int y0 = 0;
  int rows = 0;
  friend bool operator==(StripRange, StripRange) = default;
};

/// Split \p height rows into \p k strips whose sizes differ by at most one
/// (earlier strips take the remainder). Matches the renderer's division of
/// the image "into as many strips as pipelines available".
std::vector<StripRange> divide_rows(int height, int k);

/// Split \p height rows into weights.size() strips whose sizes are
/// proportional to \p weights (largest-remainder apportionment, ties broken
/// toward lower index, every strip at least one row). Equal weights
/// reproduce divide_rows() exactly, so a never-rebalanced run that routes
/// through this function stays bit-identical to the unweighted path. Used
/// by the gray-failure rebalance rung: a straggling pipeline's weight is
/// lowered so later frames hand it a thinner strip.
std::vector<StripRange> divide_rows_weighted(int height,
                                             const std::vector<double>& weights);

class Image {
 public:
  Image() = default;
  Image(int width, int height, Color fill = Color{0, 0, 0, 255});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }
  std::size_t byte_size() const { return data_.size(); }
  static constexpr int bytes_per_pixel() { return 4; }

  std::uint8_t* data() { return data_.data(); }
  const std::uint8_t* data() const { return data_.data(); }

  /// First byte of row \p y — 4 * width() contiguous RGBA bytes. The hot
  /// per-pixel loops walk these raw rows; bounds are debug-checked only so
  /// the release kernels stay branch-free and vectorizable.
  std::uint8_t* row(int y) {
    SCCPIPE_DCHECK(y >= 0 && y < height_);
    return data_.data() + static_cast<std::size_t>(y) * row_bytes();
  }
  const std::uint8_t* row(int y) const {
    SCCPIPE_DCHECK(y >= 0 && y < height_);
    return data_.data() + static_cast<std::size_t>(y) * row_bytes();
  }
  std::size_t row_bytes() const {
    return static_cast<std::size_t>(width_) * 4;
  }

  Color get(int x, int y) const;
  void set(int x, int y, Color c);

  /// Copy of the rows [r.y0, r.y0 + r.rows).
  Image strip(StripRange r) const;
  /// Write \p src back at row \p y0 (widths must match).
  void paste(const Image& src, int y0);

  friend bool operator==(const Image&, const Image&) = default;

  /// Binary PPM (P6) encoding, alpha dropped.
  std::string to_ppm() const;
  /// Write to a file; throws CheckError on I/O failure.
  void write_ppm(const std::string& path) const;

 private:
  std::size_t index(int x, int y) const;

  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace sccpipe
