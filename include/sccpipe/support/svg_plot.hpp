#pragma once

/// \file svg_plot.hpp
/// Dependency-free SVG line/step charts. The figure harnesses use this to
/// regenerate the paper's plots (time vs pipeline count, power vs time) as
/// standalone .svg files next to their textual tables.

#include <string>
#include <vector>

namespace sccpipe {

struct PlotSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  /// Stroke colour (CSS); empty = automatic from a built-in palette.
  std::string color;
  bool dashed = false;   ///< e.g. for the paper's published values
  bool markers = true;   ///< draw point markers
};

class SvgPlot {
 public:
  SvgPlot(std::string title, std::string x_label, std::string y_label);

  void add_series(PlotSeries series);

  /// Force axis ranges (otherwise fitted to the data with small margins).
  void set_x_range(double lo, double hi);
  void set_y_range(double lo, double hi);
  /// Force the y axis to start at zero (default: true — the paper's plots
  /// mostly do, and truncated axes mislead).
  void y_from_zero(bool on) { y_from_zero_ = on; }

  std::size_t series_count() const { return series_.size(); }

  /// Render the SVG document.
  std::string to_svg(int width = 640, int height = 420) const;

  /// Write to a file; throws CheckError on I/O failure.
  void write(const std::string& path, int width = 640,
             int height = 420) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<PlotSeries> series_;
  bool has_x_range_ = false, has_y_range_ = false;
  double x_lo_ = 0, x_hi_ = 1, y_lo_ = 0, y_hi_ = 1;
  bool y_from_zero_ = true;
};

/// "Nice" tick positions covering [lo, hi] (1-2-5 progression).
std::vector<double> nice_ticks(double lo, double hi, int target_count = 6);

}  // namespace sccpipe
