#pragma once

/// \file status.hpp
/// Typed, non-throwing error reporting for the fault-tolerant transports.
/// SCCPIPE_CHECK (check.hpp) covers programming errors — misuse that should
/// never happen; Status covers *expected* runtime outcomes of an unreliable
/// system: a transfer that timed out, a retry budget that ran dry, a
/// deadline that passed. Callers that opt into fault injection receive a
/// Status through their completion callbacks instead of an exception, so a
/// degraded run can finish its bookkeeping and report what failed where.

#include <string>
#include <utility>

namespace sccpipe {

enum class StatusCode {
  Ok = 0,
  Timeout,            ///< a single attempt's loss-detection deadline expired
  RetriesExhausted,   ///< every attempt of the retry budget was lost
  DeadlineExceeded,   ///< the per-transfer deadline passed before delivery
  Unavailable,        ///< the target resource is faulted out of service
  Cancelled,          ///< the operation was abandoned (run aborting)
  InvalidArgument,    ///< malformed user input (e.g. a fault-plan string)
  NotFound,           ///< a named resource (e.g. a snapshot file) is absent
  DataLoss,           ///< stored bytes are truncated or fail their checksum
  VersionSkew,        ///< stored bytes use an incompatible format version
};

const char* status_code_name(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::Ok; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "RetriesExhausted: rcce 3->5 gave up after 4 attempts" (or "Ok").
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

}  // namespace sccpipe
