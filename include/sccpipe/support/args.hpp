#pragma once

/// \file args.hpp
/// Minimal command-line flag parser for the CLI driver and examples.
/// Flags are --name value or --name=value; bool flags may omit the value.
/// Unknown flags are an error (catches typos in experiment scripts).

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sccpipe {

class ArgParser {
 public:
  /// Register flags before parse(). \p help is printed by usage().
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value = "");

  /// Parse argv; returns false (and fills error()) on unknown or malformed
  /// flags. Positional arguments are collected separately.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool seen = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace sccpipe
