#pragma once

/// \file log.hpp
/// Minimal severity-filtered logging to stderr. Benches run with Warn by
/// default; tests raise the level to keep output clean. The level is an
/// atomic (the parallel executor's workers read it concurrently); emission
/// is a single fprintf per message, so concurrent lines never interleave
/// mid-line.

#include <sstream>
#include <string>

namespace sccpipe {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace sccpipe

#define SCCPIPE_LOG(level, stream_expr)                               \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::sccpipe::log_level())) {                   \
      std::ostringstream sccpipe_log_oss_;                            \
      sccpipe_log_oss_ << stream_expr;                                \
      ::sccpipe::detail::log_emit(level, sccpipe_log_oss_.str());     \
    }                                                                 \
  } while (false)

#define SCCPIPE_DEBUG(stream_expr) SCCPIPE_LOG(::sccpipe::LogLevel::Debug, stream_expr)
#define SCCPIPE_INFO(stream_expr) SCCPIPE_LOG(::sccpipe::LogLevel::Info, stream_expr)
#define SCCPIPE_WARN(stream_expr) SCCPIPE_LOG(::sccpipe::LogLevel::Warn, stream_expr)
#define SCCPIPE_ERROR(stream_expr) SCCPIPE_LOG(::sccpipe::LogLevel::Error, stream_expr)
