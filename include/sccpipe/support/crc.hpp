#pragma once

/// \file crc.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for end-to-end
/// payload integrity. The transports stamp every FrameToken / host-link
/// datagram with a checksum at the sender and verify it at the consumer,
/// so a PayloadCorrupt fault injected anywhere along the path is *detected*
/// rather than silently propagated — detection turns corruption into the
/// same retransmit path a dropped message takes (docs/MODEL.md §6).
///
/// This is the functional-correctness net only; the simulated *cost* of
/// computing the checksum is folded into the transports' per-message
/// overhead cycles and is not modelled separately.

#include <cstddef>
#include <cstdint>

namespace sccpipe {

/// One-shot CRC-32 of a buffer. \p seed chains multi-buffer checksums:
/// crc32(b, n2, crc32(a, n1)) == crc32(concat(a, b), n1 + n2).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// Incremental helper for checksumming a header plus a pixel buffer
/// without concatenating them.
class Crc32 {
 public:
  void update(const void* data, std::size_t size);
  /// Finalised checksum; update() may continue afterwards (value() is pure).
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace sccpipe
