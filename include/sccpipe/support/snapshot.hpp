#pragma once

/// \file snapshot.hpp
/// Versioned, integrity-checked serialization for crash-durable runs.
///
/// A snapshot is a little-endian byte stream framed as
///
///   offset  size  field
///        0     4  magic "SCPS"
///        4     4  format version (kSnapshotVersion)
///        8     8  payload length in bytes
///       16     4  CRC-32 (IEEE, reflected) of the payload
///       20     n  payload: a sequence of type-tagged fields
///
/// Every multi-byte integer — in the frame header and in the payload — is
/// written least-significant byte first regardless of host endianness, so a
/// snapshot taken on one machine restores on any other. Each payload field
/// carries a one-byte type tag checked on read, so a reader that drifts out
/// of sync with the writer fails with a typed Status instead of silently
/// misinterpreting bytes.
///
/// Failure taxonomy (all expected runtime outcomes, never exceptions):
///   NotFound     the snapshot file does not exist / is unreadable
///   DataLoss     truncation, a flipped bit (CRC mismatch), a bad magic,
///                a length that overruns the file, or a tag mismatch
///   VersionSkew  the frame is intact but written by an incompatible
///                format version
///
/// Version policy: kSnapshotVersion bumps on any payload layout change; a
/// reader accepts exactly its own version (resume replays the run from the
/// start anyway, so cross-version migration would buy nothing and cost a
/// compatibility matrix).

#include <cstdint>
#include <string>
#include <vector>

#include "sccpipe/support/status.hpp"

namespace sccpipe::snapshot {

inline constexpr std::uint32_t kMagic = 0x53504353u;  // "SCPS" little-endian
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Payload field type tags (one byte on the wire, ahead of each value).
enum class Tag : std::uint8_t {
  U32 = 1,
  U64 = 2,
  I64 = 3,
  F64 = 4,
  Bytes = 5,  ///< u64 length + raw bytes
  Str = 6,    ///< u64 length + UTF-8 bytes
};

/// Append-only builder for a snapshot payload. finish() frames it with the
/// magic/version/length/CRC header.
class Writer {
 public:
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void bytes(const void* data, std::size_t size);
  void str(const std::string& s);

  const std::vector<std::uint8_t>& payload() const { return payload_; }

  /// The framed snapshot: header + payload, ready to write to disk.
  std::vector<std::uint8_t> finish() const;

 private:
  void tag(Tag t);
  void raw_u32(std::uint32_t v);
  void raw_u64(std::uint64_t v);

  std::vector<std::uint8_t> payload_;
};

/// Sequential reader over a framed snapshot. open() validates the frame
/// (magic, version, length, CRC) before any field is parsed, so a single
/// flipped bit anywhere in the stream is caught up front.
class Reader {
 public:
  /// Validate \p data's frame and position the cursor at the first payload
  /// field. Typed failure: DataLoss / VersionSkew (see file comment).
  Status open(const std::vector<std::uint8_t>& data);

  Status u32(std::uint32_t* out);
  Status u64(std::uint64_t* out);
  Status i64(std::int64_t* out);
  Status f64(double* out);
  Status bytes(std::vector<std::uint8_t>* out);
  Status str(std::string* out);

  bool at_end() const { return pos_ >= payload_.size(); }

 private:
  Status expect_tag(Tag want);
  Status raw_u64(std::uint64_t* out);
  Status need(std::size_t n) const;

  std::vector<std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

/// Write \p framed (a Writer::finish() result) to \p path atomically:
/// the bytes land in "<path>.tmp" first and rename() publishes them, so a
/// crash mid-write leaves the previous snapshot intact. Typed
/// InvalidArgument on I/O failure (unwritable directory, disk full).
Status write_file_atomic(const std::string& path,
                         const std::vector<std::uint8_t>& framed);

/// Read a whole snapshot file. NotFound when the file does not exist or
/// cannot be opened; the caller validates the frame via Reader::open().
Status read_file(const std::string& path, std::vector<std::uint8_t>* out);

/// Validate the CLI checkpoint flag combination before a run starts (the
/// parse-time counterpart of exec::validate_sim_jobs):
///   * every_frames <= 0 while a checkpoint path is set -> InvalidArgument
///   * checkpointing or resume requested without a path  -> InvalidArgument
///   * the checkpoint file's directory is not writable   -> InvalidArgument
///   * resume without an existing readable file          -> NotFound
/// \p every_set marks an explicitly passed --checkpoint-every (the default
/// 0 with no path is simply "checkpointing off" and valid).
Status validate_checkpoint_args(int every_frames, bool every_set,
                                const std::string& path, bool resume);

}  // namespace sccpipe::snapshot
