#pragma once

/// \file check.hpp
/// Precondition / invariant checking. SCCPIPE_CHECK is always on (simulation
/// correctness beats the last few percent of speed); violations throw so that
/// tests can assert on misuse and applications fail loudly instead of
/// producing silently wrong timing results.

#include <stdexcept>
#include <sstream>
#include <string>

namespace sccpipe {

/// Thrown when an SCCPIPE_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace sccpipe

/// Verify an invariant; throws sccpipe::CheckError with location on failure.
#define SCCPIPE_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::sccpipe::detail::check_failed(#cond, __FILE__, __LINE__, {});        \
    }                                                                        \
  } while (false)

/// Same, with a streamed message: SCCPIPE_CHECK_MSG(x > 0, "x=" << x).
#define SCCPIPE_CHECK_MSG(cond, stream_expr)                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream sccpipe_check_oss_;                                 \
      sccpipe_check_oss_ << stream_expr;                                     \
      ::sccpipe::detail::check_failed(#cond, __FILE__, __LINE__,             \
                                      sccpipe_check_oss_.str());             \
    }                                                                        \
  } while (false)

/// Debug-only check for per-pixel/per-event hot paths where an always-on
/// branch would defeat vectorisation. Compiles to nothing under NDEBUG;
/// use SCCPIPE_CHECK everywhere the cost is not measurable.
#ifdef NDEBUG
#define SCCPIPE_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define SCCPIPE_DCHECK(cond) SCCPIPE_CHECK(cond)
#endif
