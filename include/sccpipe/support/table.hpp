#pragma once

/// \file table.hpp
/// Plain-text table rendering for the benchmark harnesses. Every figure /
/// table reproduction prints its rows through this so output is uniform and
/// grep-friendly.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sccpipe {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendered with a header rule, e.g.
///
///   config            1 pl.  2 pl.  3 pl.
///   ----------------  -----  -----  -----
///   1 rend, unordered  207.0  107.3  101.8
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Begin a new row; subsequent add_* calls append cells to it.
  TextTable& row();
  TextTable& add(std::string cell);
  TextTable& add(double value, int precision = 1);
  TextTable& add(std::size_t value);
  TextTable& add(int value);

  /// Number of data rows so far.
  std::size_t size() const { return rows_.size(); }

  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with CSV output).
std::string format_fixed(double value, int precision);

/// Write rows as CSV (used by benches that also emit machine-readable data).
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

}  // namespace sccpipe
