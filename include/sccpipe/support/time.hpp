#pragma once

/// \file time.hpp
/// Fixed-point simulated time. All simulator timestamps and durations are
/// held as signed 64-bit nanosecond counts so that event ordering is exact
/// and platform independent (no floating-point drift between runs).

#include <cstdint>
#include <compare>
#include <string>

namespace sccpipe {

/// A point on the simulated time line, or a span between two points.
/// One type serves both roles (like std::chrono::nanoseconds); the
/// arithmetic provided is the closed set {+, -, scalar *, /}.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors. Fractional inputs round to the nearest nanosecond.
  static constexpr SimTime ns(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime us(double v) { return from_scaled(v, 1e3); }
  static constexpr SimTime ms(double v) { return from_scaled(v, 1e6); }
  static constexpr SimTime sec(double v) { return from_scaled(v, 1e9); }

  /// Duration of \p cycles clock cycles at \p hz core frequency.
  static constexpr SimTime cycles(double cycles, double hz) {
    return from_scaled(cycles / hz, 1e9);
  }

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{INT64_MAX}; }

  constexpr std::int64_t to_ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, double k) {
    return from_scaled(static_cast<double>(a.ns_) * k, 1.0);
  }
  friend constexpr SimTime operator*(double k, SimTime a) { return a * k; }
  friend constexpr SimTime operator/(SimTime a, double k) {
    return from_scaled(static_cast<double>(a.ns_) / k, 1.0);
  }
  /// Ratio of two spans, e.g. utilisation computations.
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  /// Human-readable rendering with an auto-selected unit ("1.25 ms").
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t v) : ns_{v} {}

  static constexpr SimTime from_scaled(double v, double scale) {
    const double scaled = v * scale;
    // Round-half-away-from-zero keeps symmetric behaviour for negatives.
    return SimTime{static_cast<std::int64_t>(scaled + (scaled < 0 ? -0.5 : 0.5))};
  }

  std::int64_t ns_ = 0;
};

inline constexpr SimTime min(SimTime a, SimTime b) { return a < b ? a : b; }
inline constexpr SimTime max(SimTime a, SimTime b) { return a < b ? b : a; }

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::ns(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::us(static_cast<double>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::ms(static_cast<double>(v));
}
constexpr SimTime operator""_sec(unsigned long long v) {
  return SimTime::sec(static_cast<double>(v));
}
}  // namespace literals

}  // namespace sccpipe
