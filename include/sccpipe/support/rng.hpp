#pragma once

/// \file rng.hpp
/// Deterministic random number generation. The paper's scratch and flicker
/// stages draw random values per frame; for reproducible tests and benches
/// every consumer receives its own seeded engine (no global state).
///
/// Engine: xoshiro256** (public domain, Blackman & Vigna), seeded through
/// SplitMix64 as its authors recommend.

#include <cstdint>
#include <array>

namespace sccpipe {

/// SplitMix64 — used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) {
    SplitMix64 sm{seed};
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection would be overkill for
  /// simulation workloads; modulo bias at n << 2^64 is negligible here.
  constexpr std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Derive an independent child stream (for per-stage / per-core RNGs).
  constexpr Rng fork() { return Rng{next() ^ 0xa5a5a5a55a5a5a5aULL}; }

  /// Snapshot/restore of the raw 256-bit engine state, for the run
  /// checkpoint layer (support/snapshot.hpp): a restored stream continues
  /// the exact draw sequence the saved one would have produced.
  constexpr const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sccpipe
