#pragma once

/// \file stats.hpp
/// Small statistics helpers used by the metrics collectors: online
/// mean/variance (Welford) and exact order statistics (median, quartiles)
/// over retained samples — Figure 15 of the paper reports medians and
/// quartiles of per-stage idle times.

#include <cstddef>
#include <vector>

#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Single-pass mean / variance / min / max accumulator (Welford's method).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Five-number-style summary of a retained sample set.
struct QuantileSummary {
  double min = 0.0;
  double q1 = 0.0;      ///< first quartile
  double median = 0.0;
  double q3 = 0.0;      ///< third quartile
  double max = 0.0;
  std::size_t count = 0;
};

/// Linear-interpolated quantile of \p sorted (must be ascending, non-empty),
/// q in [0,1]. Matches the common "R-7" definition.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Sorts a copy of \p samples and summarises it. Empty input -> all zeros.
QuantileSummary summarize(std::vector<double> samples);

/// Fixed-bucket latency histogram with *exact* quantiles. Samples are
/// partitioned into fixed-width buckets by value but retained verbatim, so
/// quantile() can locate the R-7 order statistics by walking the bucket
/// counts and sorting only the one or two buckets that contain them —
/// answers are bit-identical to quantile_sorted() over the full sorted
/// sample vector, at a fraction of the sort cost for the common case of
/// narrow latency distributions. Used by the gray-failure detector's
/// per-window service-time quantiles (core/recovery) and the transport
/// report's p50/p99 (core/walkthrough).
///
/// Values below zero clamp into the first bucket and values beyond the
/// bucket cap clamp into the last; clamping only coarsens the partition
/// (more samples share a bucket), never the answer.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double bucket_width = 1.0,
                            std::size_t max_buckets = 4096);

  void add(double x);
  void add(SimTime t) { add(t.to_ms()); }
  void clear();

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Exact linear-interpolated (R-7) quantile, q in [0,1]; bit-identical to
  /// quantile_sorted() over the same samples. CHECK-fails when empty.
  double quantile(double q) const;

 private:
  std::size_t bucket_of(double x) const;

  double width_;
  std::size_t max_buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  std::vector<std::vector<double>> buckets_;  ///< grown lazily as values land
};

/// Sample collector that retains values for quantile queries.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void add(SimTime t) { samples_.push_back(t.to_ms()); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }

  QuantileSummary summary() const { return summarize(samples_); }

 private:
  std::vector<double> samples_;
};

}  // namespace sccpipe
