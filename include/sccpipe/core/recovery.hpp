#pragma once

/// \file recovery.hpp
/// Self-healing for fail-stop core faults: the Supervisor and the recovery
/// report. The SCC has no hardware failure notification — a dead core is
/// just *silent* — so liveness is inferred the way a real runtime would:
///
///   heartbeats  Every watched core sends a tiny datagram to the monitor
///               core (the transfer stage's core, which already talks to
///               every pipeline) once per heartbeat period. The packets
///               ride the simulated mesh, so monitoring has a visible,
///               deterministic traffic cost.
///   deadline    The monitor scans its heartbeat table each period; a core
///               whose last heartbeat is older than the detection deadline
///               is declared fail-stopped and the failure handler runs.
///               Worst-case detection latency is therefore bounded by
///               deadline + 2 * period + one mesh transit.
///
/// What the handler (WalkthroughSim) does with a declared death — remap the
/// pipeline onto a spare core and replay checkpointed frames, or degrade to
/// fewer pipelines — is described in docs/MODEL.md §7. The Supervisor
/// itself only detects; keeping it policy-free makes the detection latency
/// independently testable (tests/recovery_test.cpp).

#include <cstdint>
#include <functional>
#include <vector>

#include "sccpipe/core/stage.hpp"
#include "sccpipe/noc/topology.hpp"
#include "sccpipe/scc/chip.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/support/snapshot.hpp"
#include "sccpipe/support/stats.hpp"
#include "sccpipe/support/status.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Tuning of the heartbeat/watchdog protocol and the remap policy.
struct RecoveryConfig {
  SimTime heartbeat_period = SimTime::ms(10);
  /// Silence longer than this declares the core dead. Must comfortably
  /// exceed one period plus a mesh transit, or healthy-but-congested cores
  /// get declared dead spuriously.
  SimTime detection_deadline = SimTime::ms(25);
  double heartbeat_bytes = 64.0;  ///< one liveness datagram
  /// Cap on how many spare cores a run may consume (-1 = all the placement
  /// offers). 0 forces every failure down the degrade path — used by the
  /// spare-exhaustion tests.
  int max_spares = -1;
};

/// Parse-time validation of a recovery config (the CLI's counterpart of
/// exec::validate_sim_jobs). Typed InvalidArgument when the heartbeat
/// period is non-positive or when detection_deadline < 2 * heartbeat_period
/// — below that bound a single heartbeat arriving one mesh transit late can
/// be declared a death, so the watchdog would fire spuriously on healthy
/// congested runs. The Supervisor constructor only CHECKs the weaker
/// deadline > period invariant; callers parsing user flags should reject
/// through here first so the failure is a typed error, not an abort.
Status validate_recovery(const RecoveryConfig& cfg);

/// How far up the mitigation ladder the walkthrough driver may climb when
/// the gray detector flags a straggler. Each level includes the ones below
/// it: a flag is first answered with the cheapest remedy, and a repeat flag
/// (the straggler is still over threshold K windows later) escalates.
enum class GrayPolicy : std::uint8_t {
  Off,        ///< detect and report, never act
  Dvfs,       ///< boost the straggler's frequency island
  Migrate,    ///< ... then drain-migrate the stage to a spare core
  Rebalance,  ///< ... then re-split the stage chain's strip weights
};

const char* gray_policy_name(GrayPolicy policy);
/// Parse "off" | "dvfs" | "migrate" | "rebalance"; InvalidArgument on junk.
Status parse_gray_policy(const std::string& text, GrayPolicy* out);

/// Gray-failure detector tuning. The detector is armed when detect_factor
/// > 0: each heartbeat tick closes one observation window per watched core,
/// summarises the window's per-stage service times into a p50 (shared
/// support/stats histogram), normalizes it by the core's own EWMA baseline
/// (so heterogeneous stage costs don't read as stragglers), and flags the
/// core once its normalized service time exceeds detect_factor times the
/// *median* normalized service time across reporting cores for
/// detect_windows consecutive windows. Median-relative thresholding means a
/// uniform slowdown of every core never fires (no false straggler).
struct GrayConfig {
  /// Multiple of the pipeline-median normalized service time beyond which a
  /// core reads as gray-failed; 0 disables the detector entirely.
  double detect_factor = 0.0;
  int detect_windows = 3;  ///< K consecutive windows over threshold
  GrayPolicy policy = GrayPolicy::Rebalance;

  bool enabled() const { return detect_factor > 0.0; }
};

/// Typed validation of the gray-detector flags: detect_factor must exceed 1
/// (at 1 the median core itself sits on the threshold) and detect_windows
/// must be positive. A disabled config (factor 0) is always valid.
Status validate_gray(const GrayConfig& cfg);

/// Trigger evidence handed to the gray handler alongside the flag — the
/// exact numbers the detector compared, so every mitigation action in the
/// RunResult::gray report can show *why* it fired.
struct GrayEvidence {
  double window_p50_ms = 0.0;  ///< the window that tripped the threshold
  double baseline_ms = 0.0;    ///< the core's EWMA service-time baseline
  double norm = 0.0;           ///< window_p50 / baseline
  double median_norm = 0.0;    ///< median norm across reporting cores
  int streak = 0;              ///< consecutive windows over threshold
};

/// One detected fail-stop failure and what recovery did about it.
struct FailureRecord {
  int core = -1;
  StageKind stage{};      ///< role the core played when it died
  int pipeline = -1;      ///< -1 for producer/transfer/idle cores
  double failed_at_ms = 0.0;    ///< planned death time (ground truth)
  double detected_at_ms = 0.0;  ///< when the watchdog declared it dead
  double detection_latency_ms = 0.0;
  int remapped_to = -1;   ///< spare core that took over, or -1
  bool degraded = false;  ///< pipeline dropped instead of remapped
  bool recovered = false; ///< run continued past this failure
  /// The core was already flagged gray when it went silent: the fail-stop
  /// is the *escalation* of one incident, not a second overlapping one, so
  /// detection latency is measured from the gray flag and any frames the
  /// gray mitigation already drained are not double-counted as replays.
  bool gray_escalated = false;
};

/// Aggregated recovery outcome, part of RunResult.
struct RecoveryReport {
  bool enabled = false;
  int failures_detected = 0;
  int failures_recovered = 0;
  std::vector<FailureRecord> failures;
  int frames_replayed = 0;  ///< checkpointed strips re-sent after a remap
  int frames_lost = 0;      ///< frames abandoned by degraded pipelines
  int spares_used = 0;
  int pipelines_lost = 0;
  std::uint64_t heartbeats_sent = 0;
  double heartbeat_bytes = 0.0;       ///< mesh traffic spent on liveness
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t checkpoint_replays = 0;
  double checkpoint_bytes = 0.0;      ///< DRAM traffic spent on checkpoints
  double max_detection_latency_ms = 0.0;
  /// Delivered-frame throughput measured from the first detection to the
  /// end of the run; 0 when nothing failed (or nothing followed).
  double post_failure_fps = 0.0;
};

/// Heartbeat emitter + watchdog. Construction is passive; start() arms the
/// periodic tick. All state lives in sorted vectors keyed by core id, so
/// iteration order — and with it every mesh transfer and every detection —
/// is deterministic.
class Supervisor {
 public:
  /// (dead core, time the watchdog declared it dead)
  using FailureHandler = std::function<void(CoreId, SimTime)>;
  /// (straggler core, time the detector flagged it, trigger evidence)
  using GrayHandler = std::function<void(CoreId, SimTime, const GrayEvidence&)>;

  Supervisor(SccChip& chip, const FaultInjector& fault, RecoveryConfig cfg,
             CoreId monitor_core);

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  const RecoveryConfig& config() const { return cfg_; }
  CoreId monitor_core() const { return monitor_; }

  /// Add \p core to the watched set (idempotent). Its heartbeat clock
  /// starts at the current simulated time.
  void watch(CoreId core);
  /// Stop watching \p core (a declared-dead core is unwatched implicitly).
  void unwatch(CoreId core);

  /// Arm the gray-failure detector (before start()). Detection rides the
  /// existing heartbeat tick: each tick closes one observation window per
  /// watched core. \p on_gray runs from inside the tick, once per flag;
  /// after firing the streak re-arms, so a straggler the mitigation did not
  /// cure flags again detect_windows windows later (the walkthrough climbs
  /// its policy ladder on those repeats).
  void enable_gray(GrayConfig cfg, GrayHandler on_gray);
  bool gray_enabled() const { return gray_cfg_.enabled(); }

  /// Feed one per-stage service-time observation (milliseconds) for \p
  /// core's current window. Called by the stage driver at strip completion;
  /// callers must invoke it at deterministic simulated instants (the
  /// walkthrough records from host-region stage callbacks, whose times are
  /// partition-invariant), which makes the detector byte-identical at any
  /// --jobs/--sim-jobs. Unwatched cores are ignored.
  void record_service(CoreId core, double service_ms);
  /// Drop the detector's per-core history for \p core (after a migration:
  /// the spare starts with a fresh baseline).
  void reset_gray(CoreId core);
  /// True when \p core is currently flagged (streak fired and the straggler
  /// has not yet dropped back under threshold) — the escalation merge in
  /// the walkthrough asks this when a silence verdict lands.
  bool gray_flagged(CoreId core) const;

  /// Arm the periodic tick. \p on_failure runs from inside the tick, once
  /// per declared death.
  void start(FailureHandler on_failure);
  /// Disarm; pending tick events are cancelled so the event queue drains.
  void stop();
  bool stopped() const { return stopped_; }

  std::uint64_t heartbeats_sent() const { return heartbeats_; }
  double heartbeat_bytes_total() const { return heartbeat_bytes_; }
  std::uint64_t gray_windows_evaluated() const { return gray_windows_; }

  /// Serialize the supervisor's mutable state: the watched set with its
  /// last-heartbeat clocks, the liveness traffic tally and the stopped
  /// flag. The pending tick event is not serialized — resume replays from
  /// t=0, so the tick chain is re-created by start().
  void save_state(snapshot::Writer& w) const;
  /// Inverse of save_state(). Typed DataLoss/VersionSkew from the reader.
  Status restore_state(snapshot::Reader& r);

 private:
  struct Watched {
    CoreId core = -1;
    SimTime last_heartbeat = SimTime::zero();
    // Gray-detector state, live only when gray_cfg_.enabled(). The window
    // samples stay in arrival order (chronological), which keeps the
    // snapshot serialization canonical; quantiles go through the shared
    // fixed-bucket histogram at window close.
    std::vector<double> window_ms;  ///< service samples, current window
    double baseline_ms = 0.0;       ///< EWMA of unsuspicious window p50s
    int streak = 0;                 ///< consecutive windows over threshold
    bool flagged = false;           ///< fired and not yet back under
  };

  void tick();
  void evaluate_gray(SimTime now);
  Watched* find(CoreId core);
  const Watched* find(CoreId core) const;

  SccChip& chip_;
  const FaultInjector& fault_;
  RecoveryConfig cfg_;
  GrayConfig gray_cfg_{};
  CoreId monitor_;
  FailureHandler on_failure_;
  GrayHandler on_gray_;
  std::vector<Watched> watched_;  ///< sorted by core id
  /// Cores currently flagged gray (sorted). Kept outside watched_ so the
  /// flag survives the unwatch that precedes a fail-stop verdict — that is
  /// what lets the walkthrough merge slow-then-dead into one incident.
  std::vector<CoreId> gray_flagged_;
  LatencyHistogram window_hist_{0.1};  ///< scratch, reused per window close
  EventHandle tick_event_{};
  bool started_ = false;
  bool stopped_ = false;
  std::uint64_t heartbeats_ = 0;
  double heartbeat_bytes_ = 0.0;
  std::uint64_t gray_windows_ = 0;
};

}  // namespace sccpipe
