#pragma once

/// \file recovery.hpp
/// Self-healing for fail-stop core faults: the Supervisor and the recovery
/// report. The SCC has no hardware failure notification — a dead core is
/// just *silent* — so liveness is inferred the way a real runtime would:
///
///   heartbeats  Every watched core sends a tiny datagram to the monitor
///               core (the transfer stage's core, which already talks to
///               every pipeline) once per heartbeat period. The packets
///               ride the simulated mesh, so monitoring has a visible,
///               deterministic traffic cost.
///   deadline    The monitor scans its heartbeat table each period; a core
///               whose last heartbeat is older than the detection deadline
///               is declared fail-stopped and the failure handler runs.
///               Worst-case detection latency is therefore bounded by
///               deadline + 2 * period + one mesh transit.
///
/// What the handler (WalkthroughSim) does with a declared death — remap the
/// pipeline onto a spare core and replay checkpointed frames, or degrade to
/// fewer pipelines — is described in docs/MODEL.md §7. The Supervisor
/// itself only detects; keeping it policy-free makes the detection latency
/// independently testable (tests/recovery_test.cpp).

#include <cstdint>
#include <functional>
#include <vector>

#include "sccpipe/core/stage.hpp"
#include "sccpipe/noc/topology.hpp"
#include "sccpipe/scc/chip.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/support/snapshot.hpp"
#include "sccpipe/support/status.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Tuning of the heartbeat/watchdog protocol and the remap policy.
struct RecoveryConfig {
  SimTime heartbeat_period = SimTime::ms(10);
  /// Silence longer than this declares the core dead. Must comfortably
  /// exceed one period plus a mesh transit, or healthy-but-congested cores
  /// get declared dead spuriously.
  SimTime detection_deadline = SimTime::ms(25);
  double heartbeat_bytes = 64.0;  ///< one liveness datagram
  /// Cap on how many spare cores a run may consume (-1 = all the placement
  /// offers). 0 forces every failure down the degrade path — used by the
  /// spare-exhaustion tests.
  int max_spares = -1;
};

/// Parse-time validation of a recovery config (the CLI's counterpart of
/// exec::validate_sim_jobs). Typed InvalidArgument when the heartbeat
/// period is non-positive or when detection_deadline < 2 * heartbeat_period
/// — below that bound a single heartbeat arriving one mesh transit late can
/// be declared a death, so the watchdog would fire spuriously on healthy
/// congested runs. The Supervisor constructor only CHECKs the weaker
/// deadline > period invariant; callers parsing user flags should reject
/// through here first so the failure is a typed error, not an abort.
Status validate_recovery(const RecoveryConfig& cfg);

/// One detected fail-stop failure and what recovery did about it.
struct FailureRecord {
  int core = -1;
  StageKind stage{};      ///< role the core played when it died
  int pipeline = -1;      ///< -1 for producer/transfer/idle cores
  double failed_at_ms = 0.0;    ///< planned death time (ground truth)
  double detected_at_ms = 0.0;  ///< when the watchdog declared it dead
  double detection_latency_ms = 0.0;
  int remapped_to = -1;   ///< spare core that took over, or -1
  bool degraded = false;  ///< pipeline dropped instead of remapped
  bool recovered = false; ///< run continued past this failure
};

/// Aggregated recovery outcome, part of RunResult.
struct RecoveryReport {
  bool enabled = false;
  int failures_detected = 0;
  int failures_recovered = 0;
  std::vector<FailureRecord> failures;
  int frames_replayed = 0;  ///< checkpointed strips re-sent after a remap
  int frames_lost = 0;      ///< frames abandoned by degraded pipelines
  int spares_used = 0;
  int pipelines_lost = 0;
  std::uint64_t heartbeats_sent = 0;
  double heartbeat_bytes = 0.0;       ///< mesh traffic spent on liveness
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t checkpoint_replays = 0;
  double checkpoint_bytes = 0.0;      ///< DRAM traffic spent on checkpoints
  double max_detection_latency_ms = 0.0;
  /// Delivered-frame throughput measured from the first detection to the
  /// end of the run; 0 when nothing failed (or nothing followed).
  double post_failure_fps = 0.0;
};

/// Heartbeat emitter + watchdog. Construction is passive; start() arms the
/// periodic tick. All state lives in sorted vectors keyed by core id, so
/// iteration order — and with it every mesh transfer and every detection —
/// is deterministic.
class Supervisor {
 public:
  /// (dead core, time the watchdog declared it dead)
  using FailureHandler = std::function<void(CoreId, SimTime)>;

  Supervisor(SccChip& chip, const FaultInjector& fault, RecoveryConfig cfg,
             CoreId monitor_core);

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  const RecoveryConfig& config() const { return cfg_; }
  CoreId monitor_core() const { return monitor_; }

  /// Add \p core to the watched set (idempotent). Its heartbeat clock
  /// starts at the current simulated time.
  void watch(CoreId core);
  /// Stop watching \p core (a declared-dead core is unwatched implicitly).
  void unwatch(CoreId core);

  /// Arm the periodic tick. \p on_failure runs from inside the tick, once
  /// per declared death.
  void start(FailureHandler on_failure);
  /// Disarm; pending tick events are cancelled so the event queue drains.
  void stop();
  bool stopped() const { return stopped_; }

  std::uint64_t heartbeats_sent() const { return heartbeats_; }
  double heartbeat_bytes_total() const { return heartbeat_bytes_; }

  /// Serialize the supervisor's mutable state: the watched set with its
  /// last-heartbeat clocks, the liveness traffic tally and the stopped
  /// flag. The pending tick event is not serialized — resume replays from
  /// t=0, so the tick chain is re-created by start().
  void save_state(snapshot::Writer& w) const;
  /// Inverse of save_state(). Typed DataLoss/VersionSkew from the reader.
  Status restore_state(snapshot::Reader& r);

 private:
  struct Watched {
    CoreId core = -1;
    SimTime last_heartbeat = SimTime::zero();
  };

  void tick();
  Watched* find(CoreId core);

  SccChip& chip_;
  const FaultInjector& fault_;
  RecoveryConfig cfg_;
  CoreId monitor_;
  FailureHandler on_failure_;
  std::vector<Watched> watched_;  ///< sorted by core id
  EventHandle tick_event_{};
  bool started_ = false;
  bool stopped_ = false;
  std::uint64_t heartbeats_ = 0;
  double heartbeat_bytes_ = 0.0;
};

}  // namespace sccpipe
