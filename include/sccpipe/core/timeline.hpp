#pragma once

/// \file timeline.hpp
/// Stage-activity timeline in Chrome trace-event format. Attach a
/// TimelineRecorder to a RunConfig and every stage records its waiting and
/// processing spans; load the resulting JSON in chrome://tracing (or
/// https://ui.perfetto.dev) to see the pipeline breathe — which stage
/// stalls, where the bubbles travel, how the rendezvous hand-offs align.

#include <cstdint>
#include <string>
#include <vector>

#include "sccpipe/noc/topology.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

class TimelineRecorder {
 public:
  /// A closed span of activity on a core. \p category groups spans for
  /// colouring ("process", "wait", "transfer").
  void add_span(CoreId core, const std::string& name,
                const std::string& category, SimTime start, SimTime end);

  std::size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }

  struct Span {
    CoreId core;
    std::string name;
    std::string category;
    SimTime start;
    SimTime end;
  };
  const std::vector<Span>& spans() const { return spans_; }

  /// Chrome trace-event JSON ("X" complete events, one tid per core).
  std::string to_chrome_json() const;

  /// Write to a file; throws CheckError on I/O failure.
  void write(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace sccpipe
