#pragma once

/// \file overload.hpp
/// Overload policy for the host-fed data plane: admission control at the
/// feeder, deadline-aware shedding (drop the stalest work first), and a
/// circuit breaker on the host link. The paper's producer is closed-loop —
/// the MCPC renders the next frame only when the previous one was taken —
/// so it can never overload the chip. A serving system is open-loop:
/// frames arrive at an offered rate regardless of drain rate, and the
/// difference between "queue grows without bound" and "bounded queue +
/// explicit shed ledger" is the whole point of this layer.
///
/// Everything here is plain deterministic state driven by the simulator's
/// event order; the walkthrough owns the feeder queue itself and reports
/// the outcome in RunResult::transport.

#include <cstdint>
#include <string>
#include <vector>

#include "sccpipe/support/snapshot.hpp"
#include "sccpipe/support/status.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Knobs for the overload-robust data plane. All default-off: a
/// default-constructed config reproduces the legacy closed-loop run
/// bit-identically (no ARQ, no credits, no shedding).
struct OverloadConfig {
  /// Open-loop offered load at the host feeder, frames/second. 0 keeps the
  /// paper's closed-loop producer.
  double offered_fps = 0.0;
  /// ARQ send window on the host link (unacked messages in flight);
  /// 0 keeps the stop-and-wait transport.
  int window = 0;
  /// Bounded-queue depth: the feeder queue, the ARQ receiver buffer, and
  /// every credited inter-stage channel. 0 keeps rendezvous lockstep.
  int queue_depth = 0;
  /// Frames older than this at dequeue time are shed (0 = no deadline).
  SimTime frame_deadline = SimTime::zero();
  /// Consecutive host-transport failures that trip the breaker (0 = off).
  int breaker_threshold = 0;
  /// How long a tripped breaker stays open before half-opening on a probe.
  SimTime breaker_cooldown = SimTime::ms(250);

  bool enabled() const {
    return offered_fps > 0.0 || window > 0 || queue_depth > 0 ||
           frame_deadline > SimTime::zero() || breaker_threshold > 0;
  }
};

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

const char* breaker_state_name(BreakerState s);

struct BreakerTransition {
  SimTime at = SimTime::zero();
  BreakerState from = BreakerState::Closed;
  BreakerState to = BreakerState::Closed;
};

/// Classic three-state circuit breaker. Closed counts consecutive
/// failures; at the threshold it opens (all work shed at admission). After
/// the cooldown the next admission attempt half-opens it and passes as a
/// probe: probe success recloses, probe failure reopens and restarts the
/// cooldown. Threshold 0 disables the breaker (always allows).
class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  CircuitBreaker(int threshold, SimTime cooldown)
      : threshold_(threshold), cooldown_(cooldown) {}

  /// May work enter the transport now? Open -> HalfOpen after cooldown
  /// (the caller's work becomes the probe). HalfOpen admits only the one
  /// outstanding probe.
  bool allow(SimTime now);
  void on_success(SimTime now);
  void on_failure(SimTime now);

  BreakerState state() const { return state_; }
  int trips() const { return trips_; }
  const std::vector<BreakerTransition>& transitions() const {
    return transitions_;
  }

  /// Serialize the breaker's mutable state (state machine position, failure
  /// streak, probe flag, trip count and the full transition log). The
  /// threshold/cooldown config is not serialized — it is rebuilt from the
  /// run config on resume.
  void save_state(snapshot::Writer& w) const;
  /// Inverse of save_state(). Typed DataLoss/VersionSkew from the reader.
  Status restore_state(snapshot::Reader& r);

 private:
  void move_to(BreakerState to, SimTime at);

  int threshold_ = 0;
  SimTime cooldown_ = SimTime::ms(250);
  BreakerState state_ = BreakerState::Closed;
  int consecutive_failures_ = 0;
  bool probe_outstanding_ = false;
  SimTime opened_at_ = SimTime::zero();
  int trips_ = 0;
  std::vector<BreakerTransition> transitions_;
};

/// Per-run transport + overload outcome, reported in RunResult and printed
/// by the CLI/sweep (byte-identical across --jobs: every field is derived
/// from single-threaded simulation state).
struct TransportReport {
  bool enabled = false;  ///< any overload/ARQ feature was active

  // --- ARQ link ----------------------------------------------------------
  std::uint64_t first_sends = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t acks = 0;           ///< data ACK control datagrams
  std::uint64_t credit_grants = 0;  ///< credit-return control datagrams
  double smoothed_rtt_ms = 0.0;

  // --- frame ledger (offered = admitted + shed_admission + shed_breaker;
  //     admitted = delivered + shed_deadline + shed_transport) ------------
  std::uint64_t frames_offered = 0;
  std::uint64_t frames_admitted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t shed_admission = 0;  ///< feeder queue full: stalest dropped
  std::uint64_t shed_deadline = 0;   ///< stale at dequeue
  std::uint64_t shed_transport = 0;  ///< ARQ abandoned the frame
  std::uint64_t shed_breaker = 0;    ///< rejected while the breaker was open

  // --- backpressure ------------------------------------------------------
  std::uint64_t credit_stalls = 0;
  double credit_stall_ms = 0.0;
  int max_feeder_queue = 0;  ///< peak feeder occupancy (<= queue_depth)
  int max_link_queue = 0;    ///< peak ARQ receiver occupancy (<= depth)
  int max_stage_queue = 0;   ///< peak credited inter-stage occupancy

  // --- outcome -----------------------------------------------------------
  double goodput_fps = 0.0;      ///< delivered frames / span of deliveries
  double p50_latency_ms = 0.0;   ///< offered-to-delivered frame latency
  double p99_latency_ms = 0.0;
  int breaker_trips = 0;
  BreakerState breaker_final = BreakerState::Closed;
  std::vector<BreakerTransition> breaker_transitions;

  /// Stable one-line CSV fragment (shared by CLI and sweep).
  std::string csv() const;
  static std::string csv_header();
};

}  // namespace sccpipe
