#pragma once

/// \file placement.hpp
/// Mapping pipeline stages onto SCC cores — the three arrangements of
/// §IV-A. Row "slots" of six cores host one pipeline each:
///
///  * Unordered: cores taken in plain SCC id order; pipelines may start in
///    the middle of one row and end in another (Fig. 3).
///  * Ordered: each pipeline laid west-to-east along one grid row (Fig. 4).
///  * Flipped: ordered, but every second pipeline runs east-to-west so the
///    heavy head stages alternate between the two edge memory controllers
///    (Fig. 5).
///
/// An optional DVFS-isolated mode places the blur stage alone on its own
/// tile so its frequency/voltage can be raised independently (Fig. 18).

#include <vector>

#include "sccpipe/noc/topology.hpp"

namespace sccpipe {

enum class Arrangement { Unordered, Ordered, Flipped };

const char* arrangement_name(Arrangement a);

struct PlacementRequest {
  int pipelines = 1;
  /// Stages per pipeline (5 filters, +1 when each pipeline has a renderer).
  int stages_per_pipeline = 5;
  /// One extra producer core (single render stage or connect stage).
  bool needs_producer = false;
  /// Give the second pipeline stage (blur, when stages are
  /// sepia-blur-scratch-flicker-swap) a private tile for DVFS experiments.
  bool isolate_blur_tile = false;
};

struct Placement {
  /// pipeline_cores[i][j] = core of stage j of pipeline i.
  std::vector<std::vector<CoreId>> pipeline_cores;
  CoreId producer = -1;  ///< single renderer / connect stage (if requested)
  CoreId transfer = -1;
  /// Unassigned cores, in the order the Supervisor consumes them when a
  /// stage core fail-stops and its pipeline is remapped (src/core/recovery).
  /// Nearest leftover cores first (rest of the producer/transfer slot, then
  /// whole unused slots), so a healed pipeline stays close to its row.
  std::vector<CoreId> spare_cores;

  /// All distinct cores in use (spares excluded — they idle unallocated
  /// until a failure promotes them).
  std::vector<CoreId> all_cores() const;
};

/// Compute the placement; throws CheckError if the chip cannot host the
/// requested configuration.
Placement make_placement(const MeshTopology& topo, Arrangement arrangement,
                         const PlacementRequest& request);

}  // namespace sccpipe
