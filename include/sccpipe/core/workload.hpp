#pragma once

/// \file workload.hpp
/// Scene construction and the per-frame/per-strip workload trace. The timed
/// benches never rasterize: the trace carries the octree-cull statistics
/// and projected coverage for every frame at every strip count, measured
/// once by the real culling code, and the discrete-event model prices them.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sccpipe/core/stage.hpp"
#include "sccpipe/render/renderer.hpp"
#include "sccpipe/scene/camera.hpp"
#include "sccpipe/scene/city.hpp"
#include "sccpipe/scene/octree.hpp"

namespace sccpipe {

/// Owns the scene and everything derived from it. Build once, share across
/// runs (immutable afterwards).
class SceneBundle {
 public:
  SceneBundle(CityParams city, CameraConfig camera, int image_side,
              int frame_count);

  const Mesh& mesh() const { return mesh_; }
  const Octree& octree() const { return octree_; }
  const Renderer& renderer() const { return renderer_; }
  const WalkthroughPath& path() const { return path_; }
  const CameraConfig& camera() const { return camera_; }
  const CityParams& city() const { return city_; }
  int image_side() const { return side_; }
  int frame_count() const { return frames_; }
  double frame_bytes() const {
    return static_cast<double>(side_) * side_ * 4.0;
  }

 private:
  CityParams city_;
  CameraConfig camera_;
  int side_;
  int frames_;
  Mesh mesh_;
  Octree octree_;
  Renderer renderer_;
  WalkthroughPath path_;
};

/// Render workload for every (frame, strip) pair at strip counts 1..max_k.
class WorkloadTrace {
 public:
  /// Optional parallelism hook for build(): invoked as for_each(n, fn) and
  /// must call fn(i) exactly once for every i in [0, n) before returning
  /// (any order, any thread — frames write disjoint slices, and the result
  /// is bit-identical to a serial build). exec::trace_runner() adapts the
  /// parallel executor to this shape; core itself stays thread-free.
  using ForEachFrame =
      std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;

  /// Runs the estimation pass of the real renderer. O(frames * sum(k)).
  static WorkloadTrace build(const SceneBundle& scene, int max_k,
                             const ForEachFrame& for_each = {});

  /// Disk cache: build() is minutes of culling for the full paper
  /// workload, so benches persist the trace. The fingerprint (scene seed,
  /// frame count, image size, max_k, format version) guards staleness.
  /// load() returns an empty optional on any mismatch or I/O problem.
  void save(const std::string& path, const SceneBundle& scene) const;
  static std::optional<WorkloadTrace> load(const std::string& path,
                                           const SceneBundle& scene,
                                           int max_k);

  /// Load from cache or build and fill the cache.
  static WorkloadTrace build_cached(const SceneBundle& scene, int max_k,
                                    const std::string& cache_path,
                                    const ForEachFrame& for_each = {});

  int frame_count() const { return frames_; }
  int max_k() const { return max_k_; }

  /// Workload of strip \p strip (0-based) when the frame is divided into
  /// \p k strips.
  const RenderLoad& load(int frame, int k, int strip) const;

  /// Whole-frame workload (k = 1).
  const RenderLoad& whole(int frame) const { return load(frame, 1, 0); }

 private:
  WorkloadTrace(int frames, int max_k);
  std::size_t index(int frame, int k, int strip) const;

  int frames_;
  int max_k_;
  std::size_t per_frame_ = 0;
  std::vector<RenderLoad> loads_;  // frame-major, then k (1..max), then strip
  std::vector<std::size_t> k_offset_;
};

}  // namespace sccpipe
