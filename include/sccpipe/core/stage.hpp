#pragma once

/// \file stage.hpp
/// Stage taxonomy and the cost model mapping a stage + workload to P54C
/// reference cycles and DRAM traffic. Shared by the timed pipeline actors,
/// the single-core baseline, and the Fig. 8 breakdown bench.

#include <string>

#include "sccpipe/core/calibration.hpp"

namespace sccpipe {

enum class StageKind {
  Render,
  Connect,
  Sepia,
  Blur,
  Scratch,
  Flicker,
  Swap,
  Transfer,
};

const char* stage_name(StageKind kind);

/// Per-strip render workload measured by the estimation pass (octree cull
/// and projected coverage for one frame/strip).
struct RenderLoad {
  double nodes_visited = 0.0;
  double tris_accepted = 0.0;
  double projected_pixels = 0.0;
};

/// Cost of a *filter* stage pass over a strip of \p pixels pixels.
struct StageWork {
  double cycles = 0.0;       ///< compute cycles (P54C reference)
  double dram_bytes = 0.0;   ///< streamed DRAM traffic
  double walk_accesses = 0.0;///< latency-bound dependent line fetches
};

/// Filter-stage cost (Sepia/Blur/Scratch/Flicker/Swap). For the scratch
/// stage, \p scratch_count is the frame's drawn scratch count (its work is
/// per-column, so the cost varies frame to frame — the source of the small
/// idle-time spread in Fig. 15); other stages ignore it.
StageWork filter_work(const Calibration& cal, StageKind kind, double pixels,
                      int scratch_count = 6);

/// Render-stage cost for a measured strip workload. Cull cost is reported
/// as walk_accesses (latency-bound); raster as cycles; frame-buffer traffic
/// as dram_bytes. \p adjust_frustum adds the scenario-2 per-frame extra.
StageWork render_work(const Calibration& cal, const RenderLoad& load,
                      bool adjust_frustum);

/// Transfer-stage assembly cost for a full frame of \p frame_bytes
/// (excludes the UDP send, which depends on the outbound link config).
StageWork assemble_work(const Calibration& cal, double frame_bytes);

}  // namespace sccpipe
