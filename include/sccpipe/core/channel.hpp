#pragma once

/// \file channel.hpp
/// Frame-token channels between pipeline stages. A channel hides which
/// transport carries the strip — RCCE rendezvous between two SCC cores, the
/// UDP path from the MCPC into the chip, or the outbound path to the
/// visualisation client — while exposing the one timing fact the metrics
/// need: when the rendezvous *matched* (Fig. 15 measures the time a stage
/// wastes waiting for its next input tile, not the transfer work itself).

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "sccpipe/filters/image.hpp"
#include "sccpipe/host/host_cpu.hpp"
#include "sccpipe/host/host_link.hpp"
#include "sccpipe/host/reliable_link.hpp"
#include "sccpipe/rcce/rcce.hpp"

namespace sccpipe {

/// One strip (or whole frame) travelling between stages.
struct FrameToken {
  int frame = 0;
  StripRange strip{};
  double bytes = 0.0;
  std::shared_ptr<Image> image;  ///< present only in functional runs
  /// End-to-end CRC-32 over the header (and pixels, when functional),
  /// stamped by Channel::send and verified at delivery. Transport-level
  /// corruption (MessageFate::Corrupt) is caught *below* this layer by the
  /// transports' own CRC check and retried, so a token that reaches a
  /// consumer with a bad checksum is a simulator bug, not a modelled fault.
  std::uint32_t crc = 0;
};

/// The checksum Channel implementations stamp into FrameToken::crc.
std::uint32_t frame_token_crc(const FrameToken& token);

class Channel {
 public:
  using SendDone = std::function<void()>;
  /// matched_at: instant the rendezvous matched / the message was available
  /// at the consumer's door — the end of the consumer's *waiting* time.
  using RecvDone = std::function<void(FrameToken, SimTime matched_at)>;
  using ErrorHandler = std::function<void(const Status&)>;

  virtual ~Channel() = default;
  virtual void send(FrameToken token, SendDone on_sent) = 0;
  virtual void recv(RecvDone on_token) = 0;

  /// Route transport failures (retry exhaustion under fault injection) to
  /// \p handler instead of aborting the run. A failed token's SendDone /
  /// RecvDone callbacks never fire; the owner is expected to stop pumping.
  void set_error_handler(ErrorHandler handler) {
    on_error_ = std::move(handler);
  }

 protected:
  /// Report a transport failure; fails the run loudly when no handler is
  /// installed (an un-handled fault must not dissolve into a silent stall).
  void fail(const Status& status);

  ErrorHandler on_error_;
};

/// RCCE rendezvous between two SCC cores. Blocking both ways; the transfer
/// bounces through the receiver's DRAM partition (see rcce.hpp).
class SccChannel final : public Channel {
 public:
  SccChannel(RcceComm& comm, CoreId from, CoreId to);

  void send(FrameToken token, SendDone on_sent) override;
  void recv(RecvDone on_token) override;

  CoreId from() const { return from_; }
  CoreId to() const { return to_; }

 private:
  RcceComm& comm_;
  CoreId from_;
  CoreId to_;
  std::deque<FrameToken> tokens_;       // send order == delivery order
  std::deque<SimTime> send_posted_;
  std::deque<SimTime> recv_posted_;
};

/// Host -> SCC path (MCPC renderer feeding the connect stage), or an
/// external cluster node feeding a cluster pipeline. The consumer core pays
/// the UDP receive cost before the token is handed over.
class HostToChipChannel final : public Channel {
 public:
  HostToChipChannel(HostCpu& host, SccChip& chip, CoreId consumer_core,
                    HostLinkConfig link_cfg);

  void send(FrameToken token, SendDone on_sent) override;  // host side
  void recv(RecvDone on_token) override;                   // chip side

  /// Attach the fault layer to the underlying wire; losses retransmit per
  /// \p retry, exhaustion reaches the channel's error handler.
  void set_fault(FaultInjector* fault, RetryPolicy retry);
  std::uint64_t wire_retransmissions() const {
    return wire_.retransmissions();
  }

 private:
  HostCpu& host_;
  SccChip& chip_;
  CoreId consumer_;
  HostChannel wire_;
  std::deque<FrameToken> tokens_;
};

/// Host -> SCC path over the reliable sliding-window (ARQ) transport.
/// Exactly-once, in-order delivery restores the FIFO token pairing even
/// under reorder/duplicate/burst-loss fates; a message the transport
/// abandons (retries exhausted) surfaces its token to the abandon handler
/// so the overload layer can shed and ledger the frame instead of
/// stalling — without a handler an abandon fails the run, like the
/// stop-and-wait transport's retry exhaustion.
class ReliableHostToChipChannel final : public Channel {
 public:
  using AbandonHandler =
      std::function<void(const FrameToken&, const Status&)>;

  ReliableHostToChipChannel(HostCpu& host, SccChip& chip,
                            CoreId consumer_core, ReliableLinkConfig cfg);

  void send(FrameToken token, SendDone on_sent) override;  // host side
  void recv(RecvDone on_token) override;                   // chip side

  /// Attach the fault oracle consulted per data datagram.
  void set_fault(FaultInjector* fault) { wire_.set_fault(fault); }
  void set_abandon_handler(AbandonHandler handler) {
    on_abandon_ = std::move(handler);
  }

  /// The underlying ARQ link, for the RunResult transport report.
  const ReliableHostChannel& transport() const { return wire_; }

 private:
  HostCpu& host_;
  SccChip& chip_;
  CoreId consumer_;
  ReliableHostChannel wire_;
  std::map<std::uint64_t, FrameToken> tokens_;  ///< seq -> undelivered
  std::uint64_t push_seq_ = 0;
  AbandonHandler on_abandon_;
};

/// RCCE channel with a bounded run-ahead queue and credit-based flow
/// control (the BDDT-SCC bounded-queue model): send() completes as soon as
/// a credit is held, decoupling the producer from the consumer by at most
/// `depth` in-flight tokens, and every delivered token returns its credit
/// to the producer as a real RCCE message on the mesh — backpressure is
/// traffic, not a free global variable, exactly the discipline the SCC's
/// no-coherence constraint forces.
class CreditedSccChannel final : public Channel {
 public:
  CreditedSccChannel(RcceComm& comm, CoreId from, CoreId to, int depth,
                     double credit_bytes = 64.0);

  void send(FrameToken token, SendDone on_sent) override;
  void recv(RecvDone on_token) override;

  CoreId from() const { return from_; }
  CoreId to() const { return to_; }

  std::uint64_t credit_stalls() const { return credit_stalls_; }
  SimTime credit_stall_time() const { return credit_stall_time_; }
  /// Peak sent-but-undelivered tokens; never exceeds depth.
  int max_occupancy() const { return max_occupancy_; }
  std::uint64_t credit_messages() const { return credit_messages_; }

 private:
  void admit(FrameToken token, SendDone on_sent);
  void on_credit();

  RcceComm& comm_;
  CoreId from_;
  CoreId to_;
  int depth_;
  double credit_bytes_;
  SccChannel data_;
  int credits_;
  int outstanding_ = 0;  ///< sent - delivered
  std::deque<std::pair<FrameToken, SendDone>> waiting_;
  bool stalled_ = false;
  SimTime stall_since_{};
  std::uint64_t credit_stalls_ = 0;
  SimTime credit_stall_time_{};
  int max_occupancy_ = 0;
  std::uint64_t credit_messages_ = 0;
};

/// SCC -> visualisation client. The producer core pays the UDP send cost;
/// the viewer consumes instantly. The sink callback observes each frame's
/// arrival (completion times of the walkthrough).
class ChipToViewerChannel final : public Channel {
 public:
  using FrameSink = std::function<void(const FrameToken&, SimTime arrived)>;

  ChipToViewerChannel(SccChip& chip, CoreId producer_core,
                      HostLinkConfig link_cfg, FrameSink sink);

  void send(FrameToken token, SendDone on_sent) override;
  /// The viewer is a sink; recv() is not part of its contract.
  void recv(RecvDone on_token) override;

  /// Attach the fault layer to the underlying wire (see HostToChipChannel).
  void set_fault(FaultInjector* fault, RetryPolicy retry);
  std::uint64_t wire_retransmissions() const {
    return wire_.retransmissions();
  }

 private:
  SccChip& chip_;
  CoreId producer_;
  HostChannel wire_;
  FrameSink sink_;
};

}  // namespace sccpipe
