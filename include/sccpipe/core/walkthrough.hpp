#pragma once

/// \file walkthrough.hpp
/// The paper's experiment driver: run the 400-frame walkthrough through a
/// chosen renderer configuration (§V), pipeline count, and arrangement
/// (§IV-A) on the simulated SCC+MCPC system or on a simulated HPC cluster
/// node (§VI, Fig. 13), and report everything the paper measures: total
/// walkthrough time, per-stage busy/idle statistics, power trace, energy.

#include <memory>
#include <vector>

#include "sccpipe/core/calibration.hpp"
#include "sccpipe/core/channel.hpp"
#include "sccpipe/core/overload.hpp"
#include "sccpipe/core/placement.hpp"
#include "sccpipe/core/recovery.hpp"
#include "sccpipe/core/stage.hpp"
#include "sccpipe/core/timeline.hpp"
#include "sccpipe/core/workload.hpp"
#include "sccpipe/host/host_cpu.hpp"
#include "sccpipe/host/host_link.hpp"
#include "sccpipe/rcce/rcce.hpp"
#include "sccpipe/scc/chip.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/sim/trace.hpp"
#include "sccpipe/support/stats.hpp"
#include "sccpipe/support/status.hpp"

namespace sccpipe {

/// The renderer configurations of §V (plus the one-core baseline of §VI-A).
enum class Scenario {
  SingleCore,           ///< whole pipeline on one core (the 382 s baseline)
  SingleRenderer,       ///< one render stage feeds all pipelines (Fig. 3)
  RendererPerPipeline,  ///< sort-first: one renderer per pipeline (Fig. 6)
  HostRenderer,         ///< MCPC renders; connect stage distributes (Fig. 7)
};

const char* scenario_name(Scenario s);

/// Which hardware the pipelines run on.
enum class PlatformKind {
  Scc,      ///< the SCC + MCPC system
  Cluster,  ///< one Mogon HPC node (Fig. 13); HostRenderer becomes the
            ///< "external renderer" configuration
};

/// Crash-durability knobs: periodic run snapshots plus resume-by-replay.
/// Default-off, and a disabled config leaves the run bit-identical to one
/// with no checkpoint layer — snapshots are captured at host frame
/// boundaries with zero simulated cost, so even an enabled config changes
/// only host-side I/O, never the CSV.
struct CheckpointConfig {
  /// Write a snapshot every N viewer frames (0 = never).
  int every_frames = 0;
  /// Snapshot path (written atomically: tmp + rename).
  std::string file;
  /// Verify-by-replay against `file` before continuing: the run replays
  /// deterministically from t = 0, re-captures the component state at the
  /// snapshot's frame boundary, and compares byte-for-byte (typed DataLoss
  /// on divergence). One planned crash-at fate beyond the snapshot's
  /// recorded count is disarmed, so the resumed run sails past the crash
  /// that ended the previous attempt.
  bool resume = false;

  bool enabled() const { return every_frames > 0 || resume; }
};

/// Optional hardware overrides for ablation studies (0 = platform default).
struct PlatformOverrides {
  double link_bandwidth_bytes_per_sec = 0.0;  ///< constrain the mesh links
  double mc_bandwidth_bytes_per_sec = 0.0;    ///< constrain the controllers
  double core_copy_rate_bytes_per_sec = 0.0;  ///< faster/slower core copies
  /// Use the silicon's real 2x2-tile voltage domains instead of the
  /// paper's idealised per-tile voltage (affects the DVFS power bill).
  bool quad_tile_voltage_domains = false;
};

struct RunConfig {
  Scenario scenario = Scenario::HostRenderer;
  Arrangement arrangement = Arrangement::Ordered;
  PlatformKind platform = PlatformKind::Scc;
  PlatformOverrides overrides{};
  int pipelines = 1;

  /// DVFS experiment knobs (§VI-D): 0 = leave at the chip default.
  int blur_mhz = 0;  ///< frequency of the blur stages' (isolated) tiles
  int tail_mhz = 0;  ///< frequency of the post-blur stages and transfer
  bool isolate_blur_tile = false;

  /// Carry real pixel payloads through the pipeline (slower; used by the
  /// examples and the functional-equivalence tests).
  bool functional = false;

  /// Worker threads *inside* this one simulation (the partitioned engine,
  /// sim/parallel_sim.hpp). The walkthrough attaches a region fabric
  /// (noc/fabric.hpp) at every value, so timed chip work — compute, DRAM
  /// streams, memory walks, mid-run DVFS — executes in the mesh region
  /// owning its tile and regions dispatch concurrently. Event locations
  /// depend only on the simulated topology, never on the region count, so
  /// results are bit-identical at every value; 1 drains inline and spawns
  /// no threads (see docs/PERF.md §1.3).
  int sim_jobs = 1;

  std::uint64_t seed = 42;  ///< scratch/flicker randomness
  Calibration cal = Calibration::defaults();
  RcceConfig rcce{};

  /// Deterministic fault injection (see sim/fault.hpp). The default plan
  /// enables nothing, and a disabled plan leaves the run bit-identical to
  /// one without a fault layer. Transport retry behaviour for injected
  /// message losses is configured via rcce.retry (shared by the RCCE path
  /// and the host links).
  FaultPlan fault{};

  /// Self-healing knobs (see core/recovery.hpp). Only consulted when the
  /// fault plan schedules at least one core failure; otherwise no
  /// Supervisor is built and the run stays bit-identical to PR-1 behaviour.
  RecoveryConfig recovery{};

  /// Overload-robust data plane (see core/overload.hpp): reliable ARQ host
  /// transport, credit-based backpressure, admission control / shedding /
  /// circuit breaker. Default-off: a disabled config keeps the legacy
  /// closed-loop run bit-identical. Only meaningful for HostRenderer runs;
  /// cannot be combined with planned core failures (the supervisor rebuild
  /// assumes rendezvous channels).
  OverloadConfig overload{};

  /// Gray-failure tolerance (see core/recovery.hpp GrayConfig): service-
  /// time outlier detection on the heartbeat tick plus the mitigation
  /// ladder (DVFS boost -> drain-migrate -> rebalance). Default-off; when
  /// armed it builds the Supervisor even without planned core failures.
  /// Cannot be combined with the overload data plane (the gray ledger
  /// assumes the closed-loop frame accounting).
  GrayConfig gray{};

  /// Crash-durable run layer (see CheckpointConfig): periodic snapshots,
  /// resume-by-replay, planned crash-at fates. Default-off.
  CheckpointConfig checkpoint{};

  /// Optional: record per-stage wait/process spans here (chrome://tracing
  /// export; see timeline.hpp). Must outlive the run.
  TimelineRecorder* timeline = nullptr;
};

struct StageReport {
  StageKind kind{};
  int pipeline = -1;  ///< -1 for producer/transfer stages
  CoreId core = -1;
  QuantileSummary wait_ms{};  ///< per-frame waiting for the next input tile
  double busy_ms = 0.0;       ///< total busy time on the stage's core
  int frames = 0;
};

/// Aggregate interconnect/memory accounting for a run — the quantities the
/// paper's §VI-A discussion revolves around.
struct FabricReport {
  double mesh_total_bytes = 0.0;     ///< sum over all directed links
  double mesh_max_link_bytes = 0.0;  ///< the hottest link's volume
  /// Per memory controller: bytes streamed through it.
  std::vector<double> mc_bulk_bytes;
  /// Peak number of simultaneous latency-bound walkers per controller.
  std::vector<std::uint64_t> mc_latency_streams_peak;
};

/// What the fault layer did to a run, and how the run ended. A failed run
/// is a *graceful* failure: the simulation drained normally, the completed
/// frames' metrics are valid, and `failure` names the first transport error
/// that stopped the pipeline.
struct FaultReport {
  bool enabled = false;  ///< a fault plan was active for this run
  bool failed = false;   ///< the walkthrough stopped before the last frame
  StatusCode failure_code = StatusCode::Ok;
  std::string failure;          ///< first error, labelled with its stage/link
  double failed_at_ms = 0.0;    ///< simulated instant of the first error
  int frames_completed = 0;     ///< frames that reached the viewer
  /// Every transport error observed, labelled per stage/link, in order.
  std::vector<std::string> stage_errors;

  // Fault-layer decision counters (see FaultInjector).
  std::uint64_t rcce_drops = 0;
  std::uint64_t rcce_delays = 0;
  std::uint64_t host_drops = 0;
  std::uint64_t host_delays = 0;
  std::uint64_t rcce_corrupts = 0;  ///< payloads mangled in flight (CRC-caught)
  std::uint64_t host_corrupts = 0;
  std::uint64_t rcce_retransmissions = 0;
  std::uint64_t host_retransmissions = 0;
  std::uint64_t rcce_transfers_failed = 0;
  /// FNV-1a hash of the fault schedule + decision trace (determinism tests).
  std::uint64_t fingerprint = 0;
};

/// Parallel-engine counters of one run. Every field is deterministic
/// (derived from queue states, never wall-clock), so the report may appear
/// in CSV output without breaking the byte-identity contract across
/// --sim-jobs values.
struct ParallelSimReport {
  bool enabled = false;  ///< cfg.sim_jobs > 1 requested the engine
  int sim_jobs = 1;
  int regions = 1;
  std::int64_t lookahead_ns = 0;
  std::uint64_t windows = 0;
  std::uint64_t coalesced_windows = 0;
  std::uint64_t cross_region_events = 0;
  std::uint64_t idle_region_windows = 0;
  /// Watchdog verdict: the engine stopped a livelocked/stagnant run with
  /// DeadlineExceeded instead of hanging. The run is also marked failed
  /// (RunResult::fault carries the typed code); `stall` holds the verdict
  /// message and `flight_recorder` the last window summaries as evidence.
  bool stalled = false;
  std::string stall;
  std::string flight_recorder;
  /// Container growths summed over the region simulators. The engine
  /// derives each region's queue reservation from the partition's occupied
  /// tiles (not one global constant), so steady state performs zero
  /// allocations per region — asserted at sim-jobs 1/4/8 by
  /// tests/parallel_sim_test.cpp. Not part of the CSV.
  std::uint64_t region_allocs = 0;
  /// Max simultaneous pending events over all region simulators (the
  /// figure the occupancy-derived size hints are calibrated against).
  std::uint64_t region_peak_events = 0;
};

/// Checkpoint/crash/resume outcome of one run. Deliberately NOT part of the
/// CSV: a checkpointed run's CSV must stay byte-identical to an
/// uncheckpointed one.
struct CheckpointReport {
  bool enabled = false;            ///< cfg.checkpoint was active
  std::uint64_t checkpoints_written = 0;
  std::uint64_t last_checkpoint_frames = 0;  ///< frame count at the last write
  bool resumed = false;            ///< a snapshot was loaded at start
  /// The replay reached the snapshot's frame boundary and the re-captured
  /// component blob matched byte-for-byte.
  bool resume_verified = false;
  bool crashed = false;            ///< a planned crash-at fate ended this run
  double crashed_at_ms = 0.0;
  /// Planned crash-at fates disarmed for this attempt (resume arithmetic).
  std::uint32_t crashes_consumed = 0;
  /// First checkpoint-layer failure: snapshot load/parse, fingerprint
  /// mismatch, replay divergence, or a checkpoint write error.
  StatusCode error_code = StatusCode::Ok;
  std::string error;
};

/// One mitigation action the gray policy ladder took, with the detector
/// evidence that triggered it and the before/after per-stage service time
/// so the report shows whether the rung worked.
struct GrayActionRecord {
  int core = -1;       ///< the flagged straggler
  int pipeline = -1;   ///< pipeline the core served
  StageKind stage{};   ///< role the core played
  /// "dvfs-boost", "migrate", "rebalance", "observe" (policy off / ladder
  /// exhausted) or "escalate-fail-stop" (the straggler went silent).
  std::string action;
  double flagged_at_ms = 0.0;
  GrayEvidence evidence{};        ///< the numbers that tripped the detector
  double before_stage_ms = 0.0;   ///< window p50 at the flag
  double after_stage_ms = 0.0;    ///< stage service p50 after the action
  int migrated_to = -1;           ///< spare core, for "migrate"
};

/// Gray-failure outcome of one run: every detector flag, every ladder
/// action, and the audited frame ledger (offered = delivered + shed;
/// mitigation itself never loses a frame — drain-migration replays nothing
/// and abandons nothing).
struct GrayReport {
  bool enabled = false;
  int flags_raised = 0;
  int dvfs_boosts = 0;
  int migrations = 0;
  int rebalances = 0;
  /// Gray incidents that ended in a fail-stop verdict for the same core —
  /// merged into ONE incident (see FailureRecord::gray_escalated).
  int escalations = 0;
  /// In-flight strips re-sent through a drain-migration's rebuilt channels.
  /// Counted here, NOT in RecoveryReport::frames_replayed — the straggler
  /// core is alive, so this is a drain of work already staged, not a
  /// checkpoint replay after a death.
  int frames_drained = 0;
  std::vector<GrayActionRecord> actions;
  /// Audited ledger over the whole run (CHECKed when the run is intact).
  std::uint64_t frames_offered = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_shed = 0;  ///< lost to degraded pipelines only
  /// Delivered-frame throughput from the first flag to the end of the run;
  /// 0 when nothing was flagged.
  double post_mitigation_fps = 0.0;
};

struct RunResult {
  SimTime walkthrough = SimTime::zero();  ///< last frame shown at the viewer
  std::vector<StageReport> stages;
  Placement placement;
  FabricReport fabric;

  double chip_energy_joules = 0.0;  ///< SCC (or cluster node) over the run
  double mean_chip_watts = 0.0;
  StepTrace power_trace;

  double host_busy_sec = 0.0;          ///< MCPC render activity (§VI-B)
  double host_extra_energy_joules = 0.0;  ///< busy * (80 W - 52 W)

  std::vector<double> frame_done_ms;  ///< viewer arrival time per frame

  /// Simulator events dispatched for this run (perf accounting: the
  /// sweep's BENCH_sweep.json derives events/sec from it).
  std::uint64_t events_dispatched = 0;

  /// Functional runs only: the assembled final frames, in order.
  std::vector<Image> frames;

  /// Fault-injection outcome (enabled == false for ordinary runs).
  FaultReport fault;

  /// Self-healing outcome (enabled == false unless the plan scheduled a
  /// core failure): detections, remaps, replay traffic, degradations.
  RecoveryReport recovery;

  /// Transport + overload outcome (enabled == false unless cfg.overload
  /// activated any feature): ARQ counters, frame ledger, credit stalls,
  /// breaker transitions, goodput and latency quantiles.
  TransportReport transport;

  /// Gray-failure detection/mitigation outcome (enabled == false unless
  /// cfg.gray armed the detector).
  GrayReport gray;

  /// Parallel-engine counters (sim_jobs = 1 when the serial path ran).
  ParallelSimReport parallel_sim;

  /// Checkpoint/crash/resume outcome (enabled == false unless
  /// cfg.checkpoint or a crash-at fate was active).
  CheckpointReport checkpoint;

  /// Convenience: wait summary of the first stage of the given kind.
  const StageReport* stage(StageKind kind, int pipeline = 0) const;
};

/// Run the full walkthrough. \p scene supplies geometry + camera path;
/// \p trace must have been built with max_k >= cfg.pipelines from the same
/// scene.
RunResult run_walkthrough(const SceneBundle& scene, const WorkloadTrace& trace,
                          const RunConfig& cfg);

/// Per-stage busy time of the one-core baseline (Fig. 8). Flags reproduce
/// the paper's reduced variants ("render and transfer stages only",
/// "without the transfer stage").
struct SingleCoreBreakdown {
  std::vector<std::pair<StageKind, SimTime>> per_stage;
  SimTime total = SimTime::zero();

  SimTime stage_time(StageKind kind) const;
};

SingleCoreBreakdown run_single_core(const SceneBundle& scene,
                                    const WorkloadTrace& trace,
                                    const RunConfig& cfg,
                                    bool include_filters = true,
                                    bool include_transfer = true);

}  // namespace sccpipe
