#pragma once

/// \file calibration.hpp
/// Every tunable constant of the timing model in one place, each with its
/// paper-derived provenance. The model is calibrated against the published
/// aggregate numbers and then *run*; per-experiment results are emergent.
///
/// Anchor points from the paper (400 frames, 400x400 RGBA frames):
///   * whole pipeline on one core: 382 s  -> 955 ms/frame      (§VI-A)
///   * render + transfer only: 104 s; render only: 94 s        (§VI-A)
///     -> render 235 ms/frame, transfer (UDP send) ~25 ms/frame
///   * blur is the most expensive filter stage (§IV, §VI-D)
///   * single pipeline, MCPC renderer: 231..236 s -> blur-bound
///     period ~580 ms -> blur ~540 ms/frame on the whole image
///   * connect stage flattens the MCPC scenario at ~50..55 s for
///     k >= 4 -> UDP receive of a 640 KB frame ~120 ms on a P54C
///   * Fig. 15 idle times (7 pipelines): blur waits ~58 ms,
///     scratch ~133 ms -> per-strip blur ~77 ms busy, scratch ~2 ms
///   * Fig. 16: blur core 533 -> 800 MHz cuts 236 s to 174 s (-26 %),
///     reproduced by the compute/memory cost split, not by a constant.

namespace sccpipe {

struct Calibration {
  // ---- frame geometry ---------------------------------------------------
  int image_side = 400;  ///< paper's largest/default size (Fig. 12)

  // ---- filter stages: P54C reference cycles -----------------------------
  // cycles_per_pixel anchored to the Fig. 8 stage breakdown at 533 MHz:
  // sepia ~60 ms, blur ~525 ms, scratch ~8 ms, flicker ~38 ms, swap ~50 ms
  // per 160k-pixel frame.
  double sepia_cycles_per_pixel = 200.0;
  double blur_cycles_per_pixel = 1750.0;
  double scratch_cycles_per_pixel = 10.0;
  double scratch_base_cycles = 2.0e6;
  double flicker_cycles_per_pixel = 126.0;
  double swap_cycles_per_pixel = 166.0;
  /// DRAM bytes moved per strip byte by a filter pass (read input once,
  /// write-allocate + write-back the output): see CacheModel::dram_traffic.
  double filter_traffic_factor = 3.0;

  // ---- render stage ------------------------------------------------------
  // 235 ms/frame total at 533 MHz, split ~70 ms octree cull (latency-bound
  // dependent loads; §IV "the octree is traversed, causing significant
  // memory accesses") + ~165 ms transform/raster (compute-bound).
  double cull_accesses_per_node = 40.0;
  double cull_accesses_per_tri = 40.0;
  double raster_setup_cycles_per_tri = 4000.0;
  double raster_fill_cycles_per_pixel = 150.0;
  /// Frame-buffer write traffic per rendered pixel (write-allocate +
  /// write-back on the touched texels).
  double render_traffic_per_pixel = 6.0;
  /// Extra per-frame cycles in the renderer-per-pipeline scenario to adjust
  /// the strip view frustum (§V: "additional computation is necessary").
  double frustum_adjust_cycles = 3.0e6;

  // ---- transfer / connect stages ----------------------------------------
  /// Assembling k strips into the final frame: one read + one write pass.
  double assemble_traffic_factor = 2.0;
  double assemble_cycles_per_byte = 1.0;

  // ---- random stage parameters -------------------------------------------
  int max_scratches = 12;

  static Calibration defaults() { return {}; }
};

}  // namespace sccpipe
