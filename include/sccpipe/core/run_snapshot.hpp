#pragma once

/// \file run_snapshot.hpp
/// The run-level checkpoint record for crash-durable walkthroughs.
///
/// A RunSnapshot is written at a frame boundary (the viewer-arrival
/// callback — a host-region event, so the captured state is deterministic
/// at every --sim-jobs value) and holds:
///
///   * a fingerprint of the run configuration, so a resume against the
///     wrong scenario/plan/seed is rejected with a typed error instead of
///     silently producing garbage;
///   * the frame count and simulated instant of the boundary;
///   * how many planned crash-at fates the attempt that wrote the snapshot
///     had already disarmed (resume arithmetic, see CheckpointConfig);
///   * an opaque component-state blob: the concatenated save_state()
///     payloads of every deterministic host-side component (fault injector
///     RNGs and trace, circuit breaker, ARQ transport, supervisor, frame
///     ledger...).
///
/// Resume does NOT deserialize the blob into live objects. The walkthrough
/// replays deterministically from t = 0; when the replay reaches the
/// snapshot's frame count it re-captures the same blob from the live run
/// and compares byte-for-byte. A mismatch means the binary, the config or
/// the environment changed since the snapshot — a typed DataLoss failure —
/// while a match proves the resumed run is on the recorded trajectory, so
/// everything after the crash point is exactly what the uninterrupted run
/// would have produced. This trades replay time for zero serialization of
/// in-flight simulation structure (event heaps, callbacks, per-region chip
/// state), which is what keeps the checkpoint format small and stable.

#include <cstdint>
#include <string>
#include <vector>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/support/snapshot.hpp"
#include "sccpipe/support/status.hpp"

namespace sccpipe {

struct RunSnapshot {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t frames_delivered = 0;  ///< viewer frames at the boundary
  std::int64_t sim_now_ns = 0;         ///< simulated instant of the boundary
  /// Planned crash-at fates the writing attempt had disarmed at start; a
  /// resume disarms one more (the crash that ended that attempt), so a
  /// k-crash plan converges in k + 1 attempts no matter where the
  /// checkpoints land.
  std::uint32_t crashes_consumed = 0;
  /// Concatenated component save_state() payloads (opaque; compared
  /// byte-for-byte by the resume verification anchor).
  std::vector<std::uint8_t> state;
};

/// FNV-1a fingerprint of everything that shapes the deterministic
/// trajectory: scenario, arrangement, platform, overrides, pipelines, DVFS
/// knobs, seed, and the fault/recovery/overload configs. Deliberately
/// excludes sim_jobs (byte-identity holds across worker counts, so a
/// snapshot from a --sim-jobs 4 run resumes under --sim-jobs 1 and vice
/// versa), the crash-at list (a process fate, not simulation config — the
/// real-SIGKILL resume path has no crash keys at all) and the checkpoint
/// config itself.
std::uint64_t run_config_fingerprint(const RunConfig& cfg);

/// Frame the snapshot for disk (support/snapshot framing: magic, version,
/// length, CRC-32).
std::vector<std::uint8_t> serialize_run_snapshot(const RunSnapshot& snap);

/// Parse framed bytes. Typed DataLoss (truncation/corruption) or
/// VersionSkew from the frame check, DataLoss on field mismatches.
Status parse_run_snapshot(const std::vector<std::uint8_t>& framed,
                          RunSnapshot* out);

/// read_file + parse_run_snapshot. NotFound when the file is absent.
Status load_run_snapshot(const std::string& path, RunSnapshot* out);

}  // namespace sccpipe
