#pragma once

/// \file aabb.hpp
/// Axis-aligned bounding boxes — the octree's node volumes and per-triangle
/// bounds.

#include <algorithm>

#include "sccpipe/geom/vec.hpp"

namespace sccpipe {

struct Aabb {
  Vec3 lo{1e30f, 1e30f, 1e30f};
  Vec3 hi{-1e30f, -1e30f, -1e30f};

  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

  void extend(Vec3 p) {
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
  }

  void extend(const Aabb& o) {
    if (!o.valid()) return;
    extend(o.lo);
    extend(o.hi);
  }

  Vec3 center() const { return (lo + hi) * 0.5f; }
  Vec3 extent() const { return (hi - lo) * 0.5f; }

  bool contains(Vec3 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  bool overlaps(const Aabb& o) const {
    return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y &&
           hi.y >= o.lo.y && lo.z <= o.hi.z && hi.z >= o.lo.z;
  }

  friend bool operator==(const Aabb&, const Aabb&) = default;
};

}  // namespace sccpipe
