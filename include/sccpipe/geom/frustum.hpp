#pragma once

/// \file frustum.hpp
/// View-frustum culling support: six planes extracted from a combined
/// view-projection matrix (Gribb/Hartmann method), with the conservative
/// AABB classification the render stage uses while walking the octree.

#include <array>

#include "sccpipe/geom/aabb.hpp"
#include "sccpipe/geom/mat4.hpp"
#include "sccpipe/geom/vec.hpp"

namespace sccpipe {

/// Plane as ax + by + cz + d = 0 with (a,b,c) pointing inside the frustum.
struct Plane {
  Vec3 normal;
  float d = 0.0f;

  float signed_distance(Vec3 p) const { return dot(normal, p) + d; }
};

enum class CullResult { Outside, Intersects, Inside };

class Frustum {
 public:
  Frustum() = default;

  /// Extract the six planes from a view-projection matrix.
  explicit Frustum(const Mat4& view_proj);

  /// Conservative AABB test (center/extent form).
  CullResult classify(const Aabb& box) const;

  bool contains(Vec3 p) const;

  const std::array<Plane, 6>& planes() const { return planes_; }

 private:
  std::array<Plane, 6> planes_{};
};

}  // namespace sccpipe
