#pragma once

/// \file vec.hpp
/// Minimal float vector types for the software renderer. Only what the
/// rasterizer, culling and filters need — this is deliberately not a
/// general linear-algebra library.

#include <cmath>

namespace sccpipe {

struct Vec2 {
  float x = 0.0f, y = 0.0f;
};

struct Vec3 {
  float x = 0.0f, y = 0.0f, z = 0.0f;

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(Vec3 a, float k) {
    return {a.x * k, a.y * k, a.z * k};
  }
  friend constexpr Vec3 operator*(float k, Vec3 a) { return a * k; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  friend constexpr bool operator==(Vec3, Vec3) = default;
};

constexpr float dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

constexpr Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline float length(Vec3 v) { return std::sqrt(dot(v, v)); }

inline Vec3 normalize(Vec3 v) {
  const float len = length(v);
  return len > 0.0f ? v * (1.0f / len) : Vec3{};
}

struct Vec4 {
  float x = 0.0f, y = 0.0f, z = 0.0f, w = 0.0f;

  constexpr Vec4() = default;
  constexpr Vec4(float px, float py, float pz, float pw)
      : x(px), y(py), z(pz), w(pw) {}
  constexpr Vec4(Vec3 v, float pw) : x(v.x), y(v.y), z(v.z), w(pw) {}

  constexpr Vec3 xyz() const { return {x, y, z}; }

  friend constexpr Vec4 operator+(Vec4 a, Vec4 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z, a.w + b.w};
  }
  friend constexpr Vec4 operator-(Vec4 a, Vec4 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z, a.w - b.w};
  }
  friend constexpr Vec4 operator*(Vec4 a, float k) {
    return {a.x * k, a.y * k, a.z * k, a.w * k};
  }
};

constexpr float dot(Vec4 a, Vec4 b) {
  return a.x * b.x + a.y * b.y + a.z * b.z + a.w * b.w;
}

/// Linear interpolation (used by the near-plane clipper).
constexpr Vec4 lerp(Vec4 a, Vec4 b, float t) { return a + (b - a) * t; }
constexpr Vec3 lerp(Vec3 a, Vec3 b, float t) { return a + (b - a) * t; }
constexpr float lerp(float a, float b, float t) { return a + (b - a) * t; }

constexpr float clamp01(float v) { return v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v); }

}  // namespace sccpipe
