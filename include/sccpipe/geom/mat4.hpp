#pragma once

/// \file mat4.hpp
/// Column-major 4x4 matrix with the usual graphics constructors
/// (perspective, look-at, translate/scale). Conventions match OpenGL:
/// right-handed eye space, clip space -w..w, NDC -1..1.

#include "sccpipe/geom/vec.hpp"

namespace sccpipe {

struct Mat4 {
  // m[column][row]
  float m[4][4] = {};

  static Mat4 identity();
  static Mat4 translate(Vec3 t);
  static Mat4 scale(Vec3 s);
  static Mat4 rotate_y(float radians);

  /// Right-handed perspective projection; fovy in radians.
  static Mat4 perspective(float fovy, float aspect, float z_near, float z_far);

  /// Off-axis (asymmetric) frustum projection — needed to adjust the view
  /// frustum per image strip in the sort-first renderer (paper §V, "the
  /// extra computations ... to adjust the viewing frustum of the camera").
  static Mat4 frustum(float left, float right, float bottom, float top,
                      float z_near, float z_far);

  static Mat4 look_at(Vec3 eye, Vec3 center, Vec3 up);

  friend Mat4 operator*(const Mat4& a, const Mat4& b);
  friend Vec4 operator*(const Mat4& a, const Vec4& v);
};

}  // namespace sccpipe
