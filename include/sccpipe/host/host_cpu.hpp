#pragma once

/// \file host_cpu.hpp
/// The Management Console PC's processor (Intel Xeon X3440, 2.53 GHz), and
/// — with a different config — a remote HPC cluster node that renders
/// externally in the Fig. 13 experiments. Workloads are expressed in P54C
/// reference cycles (the same unit SccChip::compute uses); the host divides
/// them by its much larger effective rate.

#include "sccpipe/scc/power.hpp"
#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

struct HostCpuConfig {
  /// Reference-cycles per second: clock times IPC advantage over the P54C.
  /// Calibrated so the MCPC renders the 400-frame walkthrough in the
  /// ~3.3 s the paper reports (§VI-B): ~130M ref cycles/frame at ~8 ms.
  double effective_hz = 15.2e9;
  double idle_watts = 52.0;   ///< paper §II
  double busy_watts = 80.0;   ///< paper §VI-B, while rendering

  static HostCpuConfig mcpc() { return {}; }
  /// One socket's worth of a Mogon node driving an external render process.
  static HostCpuConfig cluster_node() {
    return HostCpuConfig{20.0e9, 150.0, 250.0};
  }
};

class HostCpu {
 public:
  HostCpu(Simulator& sim, HostCpuConfig cfg = HostCpuConfig::mcpc());

  HostCpu(const HostCpu&) = delete;
  HostCpu& operator=(const HostCpu&) = delete;

  const HostCpuConfig& config() const { return cfg_; }
  double effective_hz() const { return cfg_.effective_hz; }

  /// Run \p ref_cycles of work, then \p on_done. Serialised: a call while
  /// busy queues behind the current work (single worker thread model).
  void compute(double ref_cycles, StageCallback on_done);

  bool busy() const { return busy_depth_ > 0; }
  SimTime busy_time() const;
  double current_watts() const { return meter_.current_watts(); }
  const PowerMeter& power_meter() const { return meter_; }

 private:
  void set_busy(bool busy);

  Simulator& sim_;
  HostCpuConfig cfg_;
  PowerMeter meter_;
  int busy_depth_ = 0;
  SimTime horizon_ = SimTime::zero();  // end of queued work
  SimTime busy_since_ = SimTime::zero();
  SimTime busy_total_ = SimTime::zero();
};

}  // namespace sccpipe
