#pragma once

/// \file reliable_link.hpp
/// Sliding-window ARQ over the lossy host datagram link. The paper streams
/// frames MCPC -> SCC over plain UDP; PR 1 modelled the losses and a
/// stop-and-wait retry. This transport makes the link a real data plane:
///
///  * sequence numbers with a bounded send window (cfg.window unacked
///    messages in flight), so the wire is kept busy across the
///    bandwidth-delay product instead of idling between acks;
///  * cumulative + selective acknowledgements; a message covered by either
///    is settled and never retransmitted (SACK prevents go-back-N storms);
///  * retransmit timers driven by an RFC 6298-style RTT estimator
///    (srtt + 4 * rttvar; only never-retransmitted messages are sampled —
///    Karn's algorithm), with capped exponential backoff and an attempt
///    budget from the shared RetryPolicy; three duplicate indications
///    trigger one fast retransmit ahead of the timer;
///  * receiver-side duplicate suppression and in-order delivery through a
///    bounded reassembly buffer, so the consumer above sees each admitted
///    message exactly once, in push order;
///  * credit-based flow control: the sender may hold at most
///    cfg.queue_depth messages un-consumed at the receiver. Credits return
///    as real (simulated) control traffic; a producer that outruns the
///    consumer stalls on credit, visibly (credit_stalls()).
///
/// Loss model split: every *data* datagram consults the fault oracle
/// (drop/corrupt/delay/reorder/duplicate/burst). *Control* datagrams
/// (ACKs, credit grants, skips) pay wire occupancy but are not subject to
/// the loss oracle: their state is cumulative, so the loss of any one is
/// repaired by the next — modelling that repair explicitly would add RNG
/// draws and timers without changing any behaviour under study, and a lost
/// final credit grant could deadlock the model where a real stack would
/// window-probe.
///
/// A message whose retries exhaust is *abandoned*: the error handler gets a
/// typed Status plus the sequence number, and a skip notice tells the
/// receiver to advance past the hole so later messages still deliver in
/// order. The overload layer (src/core) sheds the frame and trips its
/// circuit breaker; without that layer an abandon is a run failure, exactly
/// like the stop-and-wait transport's retry exhaustion.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "sccpipe/host/host_link.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/sim/resource.hpp"
#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/support/status.hpp"

namespace sccpipe {

struct ReliableLinkConfig {
  HostLinkConfig link;  ///< wire + endpoint costs (credit_frames unused)
  int window = 8;       ///< max unacked data messages in flight
  int queue_depth = 8;  ///< receiver buffer bound == credit pool
  double control_bytes = 64.0;  ///< ACK / credit-grant / skip datagram size
  /// timeout doubles as the pre-sample initial RTO; backoff is the RTO
  /// floor once the estimator has samples; max_backoff caps the
  /// exponential timer growth; max_attempts bounds retransmissions.
  RetryPolicy retry;
};

/// One-directional reliable message channel over a shared lossy wire.
/// Mirrors HostChannel's push/pop surface so the channel layer above can
/// swap transports; endpoint CPU costs are likewise *not* charged here.
class ReliableHostChannel {
 public:
  using PushCallback = InplaceFunction<void(), kHostPushCallbackBytes>;
  using PopCallback =
      InplaceFunction<void(double bytes), kHostPopCallbackBytes>;
  /// Abandoned message: retries exhausted (or per-transfer deadline hit).
  /// seq identifies the message in push order, 0-based.
  using ErrorHandler = std::function<void(const Status&, std::uint64_t seq)>;

  ReliableHostChannel(Simulator& sim, ReliableLinkConfig cfg);

  ReliableHostChannel(const ReliableHostChannel&) = delete;
  ReliableHostChannel& operator=(const ReliableHostChannel&) = delete;

  const ReliableLinkConfig& config() const { return cfg_; }

  /// Attach the fault oracle consulted per data datagram (may be nullptr).
  void set_fault(FaultInjector* fault) { fault_ = fault; }
  void set_error_handler(ErrorHandler on_error);

  /// Producer: enqueue a message. \p on_accepted fires when the message is
  /// admitted into the send window (window slot + receiver credit
  /// reserved, first transmission under way) — the producer may then
  /// prepare its next message, up to the window/credit bound ahead.
  void push(double bytes, PushCallback on_accepted);

  /// Consumer: take the next in-order message (waits if none). Consuming
  /// frees a receiver-buffer slot; the credit returns to the sender as a
  /// control datagram on the wire.
  void pop(PopCallback on_message);

  // --- endpoint CPU cost helpers (reference cycles), as HostChannel ------
  double datagrams(double bytes) const;
  double host_side_cycles(double bytes) const;
  double scc_send_cycles(double bytes) const;
  double scc_recv_cycles(double bytes) const;

  // --- observability ------------------------------------------------------
  std::uint64_t first_sends() const { return first_sends_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t dup_suppressed() const { return dup_suppressed_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t credit_grants() const { return credit_grants_; }
  std::uint64_t abandoned() const { return abandoned_; }
  /// Times the sender wanted to transmit but held no receiver credit.
  std::uint64_t credit_stalls() const { return credit_stalls_; }
  SimTime credit_stall_time() const { return credit_stall_time_; }
  /// Peak receiver-buffer occupancy (in-order + reassembly), in messages;
  /// never exceeds cfg.queue_depth by construction.
  int max_receiver_occupancy() const { return max_occupancy_; }
  /// Smoothed RTT estimate (zero before the first sample).
  SimTime smoothed_rtt() const;

  // --- checkpoint hooks ---------------------------------------------------
  /// Serialize the channel's scalar protocol state: sequence/credit
  /// cursors, the RTT estimator and every counter. In-flight messages,
  /// pending callbacks and timers are deliberately *not* serialized —
  /// resume replays the run from t=0, so they are re-created by the replay;
  /// the snapshot only has to pin the deterministic protocol position for
  /// the byte-identity check.
  void save_state(snapshot::Writer& w) const;
  /// Inverse of save_state() for the serialized scalars. Typed
  /// DataLoss/VersionSkew from the reader.
  Status restore_state(snapshot::Reader& r);

 private:
  struct PendingPush {
    double bytes;
    PushCallback on_accepted;
  };
  struct InFlight {
    double bytes = 0.0;
    int attempt = 0;           ///< transmissions performed so far
    SimTime first_tx{};        ///< for the per-transfer deadline
    SimTime last_tx{};         ///< RTT sample anchor
    bool retransmitted = false;  ///< Karn: never sample a retransmitted msg
    bool fast_retx_done = false;
    int dup_indications = 0;
    EventHandle timer{};
  };

  int credit_available() const;
  void pump();
  void transmit(std::uint64_t seq, int attempt);
  void on_timeout(std::uint64_t seq);
  void abandon(std::uint64_t seq, StatusCode code);
  SimTime base_rto() const;
  void settle(std::uint64_t seq, SimTime now);

  // Receiver side (same object: the channel models both endpoints).
  void deliver_data(std::uint64_t seq, double bytes);
  void drain();
  void try_deliver();
  void send_control(bool is_grant);
  void on_control(std::uint64_t cum_next, std::uint64_t consumed,
                  const std::set<std::uint64_t>& sacks);
  void note_occupancy();

  Simulator& sim_;
  ReliableLinkConfig cfg_;
  FlowResource wire_;
  FaultInjector* fault_ = nullptr;
  ErrorHandler on_error_;

  // --- sender state -------------------------------------------------------
  std::uint64_t next_seq_ = 0;
  std::uint64_t admitted_ = 0;  ///< messages granted a window+credit slot
  std::uint64_t granted_ = 0;   ///< receiver slots known freed (cumulative)
  std::deque<PendingPush> queue_;
  std::map<std::uint64_t, InFlight> flight_;
  bool stalled_ = false;
  SimTime stall_since_{};
  double srtt_sec_ = 0.0;
  double rttvar_sec_ = 0.0;
  bool has_rtt_ = false;

  // --- receiver state -----------------------------------------------------
  std::uint64_t next_expected_ = 0;
  std::uint64_t consumed_total_ = 0;  ///< pops + skips: slots freed, ever
  std::map<std::uint64_t, double> reassembly_;  ///< out-of-order arrivals
  std::set<std::uint64_t> skipped_;             ///< abandoned holes
  std::deque<double> arrived_;                  ///< in-order, awaiting pop
  std::deque<PopCallback> waiting_pop_;

  // --- stats --------------------------------------------------------------
  std::uint64_t first_sends_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t credit_grants_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t credit_stalls_ = 0;
  SimTime credit_stall_time_{};
  int max_occupancy_ = 0;
};

}  // namespace sccpipe
