#pragma once

/// \file host_link.hpp
/// The channel between the host and the chip (PCIe + UDP in the paper's
/// setup), and the outbound path from the transfer stage to the
/// visualisation client. Two cost classes matter and are kept separate:
///
///  * wire time — bytes over the physical path (shared FlowResource);
///  * endpoint CPU time — the UDP stack. On the SCC's P54C this dominates:
///    receiving a frame costs ~100 cycles/byte (the connect stage's ~120 ms
///    per 640 KB frame that flattens Fig. 11 beyond four pipelines), while
///    sending costs ~20 (the transfer stage's ~25 ms share of Fig. 8).
///    Endpoint cost helpers are exposed so the *stage* pays them as busy
///    time; the link itself only models wire occupancy and flow control.
///
/// Flow control: bounded credits. UDP has none, but the application-level
/// producer/consumer did (the renderer idles most of the run, §VI-B);
/// credit_frames bounds how far the host may run ahead.

#include <deque>
#include <functional>

#include "sccpipe/host/host_cpu.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/sim/resource.hpp"
#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/support/status.hpp"

namespace sccpipe {

struct HostLinkConfig {
  double wire_bandwidth_bytes_per_sec = 8.0e7;  ///< PCIe/GbE effective path
  double datagram_bytes = 8192.0;               ///< UDP segmentation unit
  /// Endpoint CPU costs, in reference cycles.
  double host_cycles_per_byte = 2.0;
  double scc_send_cycles_per_byte = 20.0;
  double scc_recv_cycles_per_byte = 95.0;
  double per_datagram_cycles = 3000.0;
  int credit_frames = 2;  ///< producer may run this many messages ahead

  static HostLinkConfig mcpc() { return {}; }
  /// Cluster interconnect for the Fig. 13 runs: fat pipe, cheap stack.
  static HostLinkConfig cluster() {
    HostLinkConfig cfg;
    cfg.wire_bandwidth_bytes_per_sec = 2.0e8;
    cfg.host_cycles_per_byte = 1.0;
    cfg.scc_send_cycles_per_byte = 1.2;
    cfg.scc_recv_cycles_per_byte = 1.6;
    cfg.per_datagram_cycles = 1500.0;
    return cfg;
  }
  /// The path feeding frames from the *external* render node in the
  /// cluster's Fig. 13 configuration. Calibrated to the figure's early
  /// plateau (~50 ms/frame): the paper's UDP streaming path between nodes
  /// sustained far less than the fabric's raw bandwidth.
  static HostLinkConfig cluster_external() {
    HostLinkConfig cfg = cluster();
    cfg.wire_bandwidth_bytes_per_sec = 1.5e7;
    return cfg;
  }
};

/// One-directional, credit-bounded message channel over a shared wire.
/// The producer side calls push(); the consumer side calls pop(). Endpoint
/// CPU time is *not* charged here (see cost helpers) — callers account it
/// on their own processor so that stage busy/idle metrics stay truthful.
class HostChannel {
 public:
  using PushCallback = InplaceFunction<void(), kHostPushCallbackBytes>;
  using PopCallback =
      InplaceFunction<void(double bytes), kHostPopCallbackBytes>;
  using ErrorHandler = std::function<void(const Status&)>;

  HostChannel(Simulator& sim, HostLinkConfig cfg = HostLinkConfig::mcpc());

  HostChannel(const HostChannel&) = delete;
  HostChannel& operator=(const HostChannel&) = delete;

  const HostLinkConfig& config() const { return cfg_; }

  /// Attach the deterministic fault layer: each message crossing the wire
  /// may be dropped (retransmitted per \p retry, then surfaced to
  /// \p on_error) or delayed. Injector must outlive the channel.
  void set_fault(FaultInjector* fault, RetryPolicy retry,
                 ErrorHandler on_error);

  /// Retransmissions performed after injected message losses. A message
  /// corrupted and retried N times counts one first send and N
  /// retransmissions — never N+1 fresh sends.
  std::uint64_t retransmissions() const { return retransmissions_; }
  /// First transmissions (one per admitted message, regardless of retries).
  std::uint64_t first_sends() const { return first_sends_; }

  /// Producer: enqueue a message. \p on_accepted fires once a credit is
  /// available and the message has finished crossing the wire (the producer
  /// is then free to prepare the next frame).
  void push(double bytes, PushCallback on_accepted);

  /// Consumer: take the next arrived message (waits if none). Consuming
  /// returns a credit to the producer.
  void pop(PopCallback on_message);

  // --- endpoint CPU cost helpers (reference cycles) ---------------------
  double datagrams(double bytes) const;
  double host_side_cycles(double bytes) const;
  double scc_send_cycles(double bytes) const;
  double scc_recv_cycles(double bytes) const;

  std::size_t in_flight() const { return arrived_.size(); }

 private:
  struct PendingPush {
    double bytes;
    PushCallback on_accepted;
  };

  void try_admit();
  void try_deliver();
  void transmit(double bytes, PushCallback on_accepted, int attempt,
                SimTime first_attempt_at);

  Simulator& sim_;
  HostLinkConfig cfg_;
  FlowResource wire_;
  int credits_;
  std::deque<PendingPush> waiting_admission_;
  std::deque<double> arrived_;          // messages that crossed the wire
  std::deque<PopCallback> waiting_pop_;
  FaultInjector* fault_ = nullptr;
  RetryPolicy retry_{};
  ErrorHandler on_error_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t first_sends_ = 0;
};

}  // namespace sccpipe
