#pragma once

/// \file fabric.hpp
/// Region-native event fabric: the bridge between the platform models
/// (scc/chip.hpp, mem/memory.hpp) and the mesh-partitioned parallel engine
/// (sim/parallel_sim.hpp).
///
/// The serial walkthrough posts every timed event on one host-region
/// Simulator. A RegionFabric instead gives every *site* (a mesh tile) a
/// home region — the column band that owns the tile (noc/partition.hpp) —
/// and turns each timed primitive into a chain of located events:
/// "run this at tile T" becomes a ranked post against T's regional
/// Simulator, delayed by the calibrated transit time
///
///   transit(a, b) = hop_latency * hop_distance(a, b)
///
/// so event chains pay the same simulated mesh latency at every region
/// count. Determinism across partitionings rests on three properties:
///
///  * **Located time**: a chain leg's delivery time depends only on the
///    simulated topology (source site, destination site, hop latency),
///    never on which region either site landed in.
///  * **Topology ranks**: every fabric post carries a rank derived from
///    (source site's post counter, source site). At equal delivery times
///    the destination heap orders by rank, which is partition-blind;
///    region-local seq order only breaks ties between *unranked* events,
///    which are always produced by that region's own deterministic
///    execution.
///  * **Adaptive lookahead**: the engine's per-channel lookahead matrix is
///    installed from band distances (partition.lookahead(hop, a, b)), and
///    transit(a, b) >= lookahead[region(a)][region(b)] by construction —
///    the Manhattan distance between two tiles is at least the column gap
///    between their bands — so every hop clears the engine's conservative
///    post check with room to spare.
///
/// The thread-local *current site* tracks which tile the executing event
/// belongs to; model code that runs outside any fabric-dispatched callback
/// (host-side control logic, setup, collection) executes at the bridge
/// site, the tile the host PCIe link attaches to.

#include <cstdint>
#include <vector>

#include "sccpipe/noc/partition.hpp"
#include "sccpipe/noc/topology.hpp"
#include "sccpipe/sim/callback.hpp"
#include "sccpipe/sim/parallel_sim.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

class RegionFabric {
 public:
  /// Binds \p engine (whose region count must equal \p partition's) to the
  /// partition map, and installs the adaptive per-channel lookahead matrix
  /// computed from \p hop_latency and the partition's band distances.
  /// Both referents must outlive the fabric.
  RegionFabric(ParallelSimulator& engine, const MeshPartition& partition,
               SimTime hop_latency);
  RegionFabric(const RegionFabric&) = delete;
  RegionFabric& operator=(const RegionFabric&) = delete;

  int regions() const { return partition_.regions(); }
  const MeshPartition& partition() const { return partition_; }
  SimTime hop_latency() const { return hop_latency_; }

  /// The tile the host link attaches to (south-west corner router). Events
  /// not dispatched by the fabric — host control logic, setup, collection —
  /// execute here.
  TileId bridge_site() const { return bridge_; }

  /// Site of the event the calling thread is executing, or bridge_site()
  /// when outside any fabric-dispatched callback.
  TileId current_site() const;

  int region_of(TileId site) const {
    return site_region_[static_cast<std::size_t>(site)];
  }

  /// The regional Simulator owning \p site — for building per-region timed
  /// resources (e.g. a memory controller's fair-share queue) at setup time.
  Simulator& region_sim(TileId site) { return engine_.region(region_of(site)); }

  /// Calibrated transit delay between two sites: hop_latency x Manhattan
  /// router hops (zero for a == b).
  SimTime transit(TileId from, TileId to) const;

  /// Simulated time at the executing event's region (== the owning
  /// Simulator's now()); the bridge region's clock when outside run().
  SimTime now() const;

  /// True while the parallel engine is draining windows (i.e. the caller
  /// is inside a region callback).
  static bool in_run() { return ParallelSimulator::current_region() >= 0; }

  /// Run \p fn at site \p to, at now() + transit(current_site(), to).
  void hop(TileId to, FabricCallback fn);

  /// Run \p fn at site \p to at the explicit instant \p when, which must
  /// be >= now() + transit(current_site(), to) — for deferred admissions
  /// (e.g. a fault window's admit-at time).
  void post_at(TileId to, SimTime when, FabricCallback fn);

  /// Run \p fn \p delay later at the *current* site (no mesh crossing).
  void after(SimTime delay, FabricCallback fn);

 private:
  std::uint64_t next_rank(TileId from_site);
  void dispatch(TileId site, SimTime when, FabricCallback fn);

  ParallelSimulator& engine_;
  const MeshPartition& partition_;
  MeshTopology topo_;
  SimTime hop_latency_;
  TileId bridge_ = 0;
  std::vector<int> site_region_;  ///< tile -> owning region (cached)
  /// Per-site monotone post counters feeding next_rank(). Single-writer:
  /// posts "from site S" only happen inside events executing at S, which
  /// all run on S's region; setup-phase bumps happen-before the workers.
  std::vector<std::uint64_t> site_counter_;
};

}  // namespace sccpipe
