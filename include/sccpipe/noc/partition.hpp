#pragma once

/// \file partition.hpp
/// Spatial partition of the tile mesh into regions for the parallel engine
/// (sim/parallel_sim.hpp). Regions are vertical column bands: dimension-
/// ordered (X-then-Y) routes cross a band boundary at most once per column
/// step, and bands keep every tile's north/south neighbours — the busiest
/// links of a macro-pipelined strip flow — inside one region.
///
/// The partition also defines the engine's lookahead: no message between
/// tiles of different bands can arrive in less simulated time than
/// `min_boundary_hops()` router hops, so
///   lookahead = min_boundary_hops() * per_hop_latency
/// is a safe conservative bound.

#include <vector>

#include "sccpipe/noc/topology.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Column-band partition map: tiles / cores / memory controllers -> region.
class MeshPartition {
 public:
  /// Split \p layout into \p regions vertical bands (clamped to
  /// [1, layout.width]); band widths differ by at most one column.
  MeshPartition(MeshLayout layout, int regions);

  int regions() const { return regions_; }
  const MeshLayout& layout() const { return layout_; }

  int region_of_column(int x) const;
  int region_of_tile(TileId tile) const;
  int region_of_coord(TileCoord c) const { return region_of_column(c.x); }
  int region_of_core(CoreId core) const;
  int region_of_mc(McId mc) const;

  /// Region owning the host link. The PCIe bridge attaches at the
  /// south-west corner router (see host/transport), i.e. column 0.
  int host_region() const { return region_of_column(0); }

  /// Number of tiles mapped to \p region.
  int tiles_in_region(int region) const;

  /// Minimum router-hop distance between tiles of two different regions
  /// (1 for adjacent bands). With one region there is no boundary; returns
  /// 1 so lookahead() stays positive.
  int min_boundary_hops() const;

  /// Conservative engine lookahead for a fabric whose slowest-crossing
  /// message costs at least \p per_hop_latency per router hop.
  SimTime lookahead(SimTime per_hop_latency) const {
    return per_hop_latency * static_cast<double>(min_boundary_hops());
  }

  /// Minimum router-hop distance between any tile of band \p a and any
  /// tile of band \p b (a != b): the smallest column gap between the two
  /// bands. Non-adjacent bands are provably further apart than the global
  /// min_boundary_hops() floor — this is the per-channel distance the
  /// adaptive lookahead matrix is calibrated from.
  int band_distance(int a, int b) const;

  /// Per-channel engine lookahead for the (a -> b) mailbox lane:
  /// band_distance(a, b) router hops at \p per_hop_latency each. Every
  /// message from band a to band b crosses at least that much simulated
  /// time, so the bound is safe and strictly wider than the scalar floor
  /// for non-adjacent bands.
  SimTime lookahead(SimTime per_hop_latency, int a, int b) const {
    return per_hop_latency * static_cast<double>(band_distance(a, b));
  }

 private:
  MeshLayout layout_;
  MeshTopology topo_;
  int regions_ = 1;
  std::vector<int> column_region_;  // column x -> region
};

}  // namespace sccpipe
