#pragma once

/// \file mesh.hpp
/// Timing model of the routed 2D mesh. Messages are carried at flow level:
/// a transfer of B bytes over a route of L links pays
///
///   head latency  = router_latency * (hops + 1)
///   serialisation = B / link_bandwidth on every traversed link,
///                   sequenced through each link's FIFO horizon
///
/// which approximates wormhole switching with contention: a busy link
/// delays the message, and the message occupies every link it crosses for
/// its serialisation time (store-and-forward granularity of one message,
/// adequate for macro-pipeline payloads of tens to hundreds of KiB).

#include <cstdint>
#include <memory>
#include <vector>

#include "sccpipe/noc/topology.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/sim/resource.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

struct MeshTimingConfig {
  /// Per-router forwarding latency. SCC routers take 4 mesh cycles at
  /// 800 MHz -> 5 ns per hop.
  SimTime router_latency = SimTime::ns(5);
  /// Per-link payload bandwidth. SCC mesh: 16-byte flits at 800 MHz
  /// = 12.8 GB/s; we use an effective figure below peak.
  double link_bandwidth_bytes_per_sec = 8.0e9;
};

/// Per-link traffic counters for the arrangement explorer / reports.
struct LinkTraffic {
  std::uint64_t messages = 0;
  double bytes = 0.0;
  SimTime queue_delay = SimTime::zero();
};

class MeshModel {
 public:
  MeshModel(const MeshTopology& topo, MeshTimingConfig cfg = {});

  /// Completion time of a message of \p bytes injected at \p start from
  /// \p from to \p to. Contention state (link horizons) advances.
  /// from == to costs one router latency (local turnaround).
  SimTime transfer(SimTime start, TileCoord from, TileCoord to, double bytes);

  /// Pure latency of the same transfer on an idle mesh (no state change);
  /// used for reporting and unit tests.
  SimTime ideal_latency(TileCoord from, TileCoord to, double bytes) const;

  const MeshTopology& topology() const { return topo_; }
  const MeshTimingConfig& config() const { return cfg_; }

  const LinkTraffic& traffic(const LinkId& link) const;
  /// Sum of bytes over all links (total mesh traffic volume).
  double total_bytes() const;

  /// Attach the deterministic fault layer: transfers consult it per link
  /// for outage windows, bandwidth degradation, and router slowdowns. Must
  /// outlive the model; nullptr (the default) detaches.
  void set_fault_injector(const FaultInjector* fault) { fault_ = fault; }

 private:
  const MeshTopology& topo_;
  MeshTimingConfig cfg_;
  std::vector<FlowResource> links_;
  std::vector<LinkTraffic> traffic_;
  const FaultInjector* fault_ = nullptr;
};

}  // namespace sccpipe
