#pragma once

/// \file traffic.hpp
/// Synthetic macro-pipeline mesh traffic: the determinism-equivalence and
/// scaling workload for the partitioned parallel engine.
///
/// Every tile runs a tick chain (local "stage compute") and periodically
/// injects a strip-sized message toward a payload-derived peer tile; each
/// reception may forward the message onward until its TTL expires, so the
/// load spreads over the whole mesh like the paper's macro-pipelined strip
/// flows. Delivery takes `hop_latency` per router hop — the strip
/// serialisation latency — which is exactly the engine lookahead of the
/// column-band partition (noc/partition.hpp), so every cross-band message
/// legally lands in a later window.
///
/// Determinism across engines and worker counts is by construction:
///   * per-tile state is a single commutative accumulator (wrapping adds),
///     so same-timestamp arrival order cannot change it;
///   * forwarding decisions derive only from the message payload, never
///     from mutable tile state;
///   * the digest folds the per-tile accumulators in tile order after the
///     run completes.
/// The serial reference (one plain Simulator) and the parallel engine at
/// any jobs/regions therefore produce the same TrafficResult, which
/// tests/parallel_sim_test.cpp and the fuzzer assert.

#include <cstdint>

#include "sccpipe/noc/topology.hpp"
#include "sccpipe/sim/parallel_sim.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

struct TrafficConfig {
  MeshLayout layout{};                      ///< mesh size (can exceed 6x4)
  int regions = 4;                          ///< parallel engine partitions
  int jobs = 1;                             ///< parallel engine workers
  int ticks = 64;                           ///< tick-chain length per tile
  SimTime tick_spacing = SimTime::us(2);    ///< stage compute interval
  int send_every = 2;                       ///< inject every N ticks
  SimTime hop_latency = SimTime::us(10);    ///< strip latency per hop
  int ttl = 3;                              ///< forwarding chain length
  std::uint64_t seed = 42;
};

/// Engine-independent outcome of one traffic run. Two runs are equivalent
/// iff digest, events, messages and end_time_ns all match; `engine` holds
/// the parallel engine's counters (zeros for the serial reference).
struct TrafficResult {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;       ///< total events dispatched
  std::uint64_t messages = 0;     ///< injections + forwards
  std::int64_t end_time_ns = 0;   ///< timestamp of the last event
  ParallelSimStats engine{};
};

/// Reference run on one plain Simulator.
TrafficResult run_traffic_serial(const TrafficConfig& cfg);

/// Same workload on the partitioned engine (cfg.regions regions in a
/// column-band partition, cfg.jobs worker threads).
TrafficResult run_traffic_parallel(const TrafficConfig& cfg);

}  // namespace sccpipe
