#pragma once

/// \file topology.hpp
/// Geometry of the SCC-style chip: a W x H grid of tiles, two cores per
/// tile, one router per tile, memory controllers attached to edge routers.
/// The real SCC is 6 x 4 tiles = 48 cores with four DDR3 controllers on the
/// left/right edges of rows 0 and 2 (EAS rev. 1.1); those are the defaults.
///
/// Core numbering follows the SCC convention used by RCCE: core id
/// c = 2 * tile + (c & 1), tiles numbered row-major from (0,0).

#include <cstdint>
#include <vector>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

using CoreId = int;
using TileId = int;
using McId = int;

struct TileCoord {
  int x = 0;
  int y = 0;
  friend bool operator==(TileCoord, TileCoord) = default;
};

/// Link directions out of a router.
enum class Direction : std::uint8_t { East = 0, West = 1, North = 2, South = 3 };

/// One directed router-to-router (or router-to-MC) link.
struct LinkId {
  TileCoord from;
  Direction dir = Direction::East;
  friend bool operator==(const LinkId&, const LinkId&) = default;
};

struct MeshLayout {
  int width = 6;        ///< tiles per row
  int height = 4;       ///< tile rows
  int cores_per_tile = 2;
  /// Router coordinates the memory controllers hang off. SCC default: the
  /// left and right edge routers of rows 0 and 2.
  std::vector<TileCoord> mc_positions{{0, 0}, {5, 0}, {0, 2}, {5, 2}};
};

class MeshTopology {
 public:
  explicit MeshTopology(MeshLayout layout = {});

  int tile_count() const { return layout_.width * layout_.height; }
  int core_count() const { return tile_count() * layout_.cores_per_tile; }
  int mc_count() const { return static_cast<int>(layout_.mc_positions.size()); }
  const MeshLayout& layout() const { return layout_; }

  TileId tile_of(CoreId core) const;
  TileCoord coord_of(TileId tile) const;
  TileId tile_at(TileCoord c) const;
  TileCoord core_coord(CoreId core) const { return coord_of(tile_of(core)); }

  bool valid_core(CoreId core) const {
    return core >= 0 && core < core_count();
  }

  TileCoord mc_position(McId mc) const;

  /// Memory controller owning a core's private DRAM partition: the nearest
  /// controller by Manhattan distance (ties broken by lower MC id), which
  /// matches the SCC's default quadrant assignment. O(1): precomputed per
  /// tile at construction.
  McId home_mc(CoreId core) const;

  /// Router hops from a core's tile to its home controller (precomputed).
  int home_mc_hops(CoreId core) const;

  /// Manhattan distance in router hops between two tiles.
  int hop_distance(TileCoord a, TileCoord b) const;

  /// X-then-Y dimension-ordered route; returns the traversed directed
  /// links. Empty when a == b.
  std::vector<LinkId> route(TileCoord from, TileCoord to) const;

  /// Dense index of a directed link for resource arrays;
  /// in [0, link_index_count()).
  int link_index(const LinkId& link) const;
  int link_index_count() const { return tile_count() * 4; }

 private:
  MeshLayout layout_;
  std::vector<McId> tile_home_mc_;   ///< nearest controller, per tile
  std::vector<int> tile_home_hops_;  ///< hops to that controller, per tile
};

}  // namespace sccpipe
