#pragma once

/// \file dary_heap.hpp
/// Cache-native 4-ary implicit min-heap over trivially-copyable POD keys —
/// the storage core of the event queue (sim/simulator.hpp).
///
/// Why 4-ary instead of the classic binary heap:
///
///  * **depth** — a sift traverses log4(n) levels instead of log2(n), so a
///    pop at one million pending events walks ~10 levels, not ~20. Each
///    level is a dependent load, so halving the depth halves the length of
///    the serial miss chain that dominates large-heap pops;
///  * **cache-line geometry** — keys are 32-byte PODs, so a sibling group
///    of four is exactly two 64-byte cache lines. The array is allocated at
///    128-byte (group) alignment and the root sits at physical index
///    `kPad = 3`, which places every complete sibling group `[4s+1, 4s+4]`
///    on its own aligned 128-byte pair: a min-of-4 scan touches exactly two
///    lines, never three;
///  * **branch shape** — the min-of-4 inner step is three unconditional
///    conditional-move-friendly compares (no data-dependent branches), and
///    the next sibling group is prefetched while the current one is being
///    compared.
///
/// The heap stores *keys only* (the simulator keeps callbacks in a cold
/// slot table), so everything a sift touches is hot sequential POD data.
///
/// Ordering comes from `Key::before(a, b)` — "a dispatches before b" — a
/// strict total order (the simulator's (time, rank, seq) key is unique),
/// so any valid heap arrangement pops in exactly one order: internal
/// strategy changes (bulk appends, rebuilds, compaction timing) can never
/// change the dispatch sequence.
///
/// Bulk merges: `append()` places a key at the tail *without* restoring the
/// heap property; `commit(k)` restores it for the last k appends — by
/// sifting each appended key up (k small) or one Floyd rebuild pass over
/// the whole array (k large), whichever costs less. This is what turns the
/// parallel engine's barrier flush from k·O(log n) pushes into an
/// O(k + rebuild) amortised merge. Between append and commit only
/// append/size/capacity may be called.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

#if defined(__GNUC__) || defined(__clang__)
#define SCCPIPE_HEAP_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define SCCPIPE_HEAP_PREFETCH(addr) ((void)0)
#endif

namespace sccpipe {

template <typename Key>
class DaryKeyHeap {
  static_assert(std::is_trivially_copyable_v<Key>,
                "DaryKeyHeap keys must be trivially copyable PODs");

 public:
  static constexpr std::size_t kAry = 4;
  /// Leading pad slots so that every complete sibling group starts at a
  /// group-aligned offset (see file comment). The root lives at kPad.
  static constexpr std::size_t kPad = kAry - 1;
  static constexpr std::size_t kGroupBytes = kAry * sizeof(Key);

  DaryKeyHeap() = default;
  ~DaryKeyHeap() { deallocate(data_); }
  DaryKeyHeap(const DaryKeyHeap&) = delete;
  DaryKeyHeap& operator=(const DaryKeyHeap&) = delete;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

  const Key& front() const { return data_[kPad]; }

  void reserve(std::size_t n) {
    if (n > cap_) grow_to(n);
  }

  /// Insert one key, restoring the heap property (append + sift-up).
  void push(const Key& key) {
    if (size_ == cap_) grow_to(cap_ < 8 ? 16 : cap_ * 2);
    const std::size_t p = size_ + kPad;
    ++size_;
    sift_up(p, key);
  }

  /// Remove the front key. The caller must have read front() first.
  void pop_front() {
    --size_;
    if (size_ == 0) return;
    sift_down(kPad, data_[size_ + kPad]);
  }

  /// Bulk-merge fast path: place \p key at the tail WITHOUT restoring the
  /// heap property. Pair with commit(); see the file comment.
  void append(const Key& key) {
    if (size_ == cap_) grow_to(cap_ < 8 ? 16 : cap_ * 2);
    data_[size_ + kPad] = key;
    ++size_;
  }

  /// Restore the heap property after the last \p appended append() calls.
  /// Adaptive: k sift-ups cost ~k·log4(n); a Floyd rebuild costs ~n/ary
  /// sift-downs with geometrically shrinking depth. Either way the heap
  /// ends valid, and validity alone fixes the pop order (total-order keys).
  void commit(std::size_t appended) {
    if (appended == 0) return;
    if (appended * 8 >= size_) {
      rebuild();
      return;
    }
    for (std::size_t p = size_ + kPad - appended; p < size_ + kPad; ++p) {
      sift_up(p, data_[p]);
    }
  }

  /// Drop every key matching \p dead in one compaction pass, then rebuild.
  /// Returns the number of keys removed.
  template <typename Pred>
  std::size_t remove_and_rebuild(Pred dead) {
    const std::size_t end = size_ + kPad;
    std::size_t w = kPad;
    for (std::size_t r = kPad; r < end; ++r) {
      if (!dead(data_[r])) data_[w++] = data_[r];
    }
    const std::size_t removed = end - w;
    size_ = w - kPad;
    rebuild();
    return removed;
  }

 private:
  static std::size_t first_child(std::size_t p) {
    return kAry * (p - kPad) + 1 + kPad;
  }
  static std::size_t parent(std::size_t p) {
    return (p - kPad - 1) / kAry + kPad;
  }

  void sift_up(std::size_t p, Key key) {
    while (p > kPad) {
      const std::size_t par = parent(p);
      if (!Key::before(key, data_[par])) break;
      data_[p] = data_[par];
      p = par;
    }
    data_[p] = key;
  }

  void sift_down(std::size_t p, Key key) {
    const std::size_t end = size_ + kPad;  // one past the last key
    for (;;) {
      const std::size_t c = first_child(p);
      if (c >= end) break;
      std::size_t best = c;
      if (c + kAry <= end) {
        // Complete sibling group: two aligned cache lines, three
        // branch-light compares, and a prefetch of the likely next group.
        SCCPIPE_HEAP_PREFETCH(&data_[first_child(c)]);
        best = Key::before(data_[c + 1], data_[best]) ? c + 1 : best;
        best = Key::before(data_[c + 2], data_[best]) ? c + 2 : best;
        best = Key::before(data_[c + 3], data_[best]) ? c + 3 : best;
      } else {
        for (std::size_t i = c + 1; i < end; ++i) {
          if (Key::before(data_[i], data_[best])) best = i;
        }
      }
      if (!Key::before(data_[best], key)) break;
      data_[p] = data_[best];
      p = best;
    }
    data_[p] = key;
  }

  /// Floyd heap construction: sift down every internal node, deepest
  /// first. O(n) total work.
  void rebuild() {
    if (size_ < 2) return;
    const std::size_t last = size_ + kPad - 1;
    for (std::size_t p = parent(last) + 1; p-- > kPad;) {
      sift_down(p, data_[p]);
    }
  }

  void grow_to(std::size_t new_cap) {
    Key* fresh = allocate(new_cap);
    if (size_ > 0) {
      std::memcpy(fresh + kPad, data_ + kPad, size_ * sizeof(Key));
    }
    deallocate(data_);
    data_ = fresh;
    cap_ = new_cap;
  }

  static Key* allocate(std::size_t cap) {
    return static_cast<Key*>(::operator new(
        (cap + kPad) * sizeof(Key), std::align_val_t{kGroupBytes}));
  }
  static void deallocate(Key* p) {
    if (p != nullptr) {
      ::operator delete(p, std::align_val_t{kGroupBytes});
    }
  }

  Key* data_ = nullptr;
  std::size_t size_ = 0;  ///< live keys (pad slots excluded)
  std::size_t cap_ = 0;   ///< key capacity (pad slots excluded)
};

}  // namespace sccpipe
