#pragma once

/// \file resource.hpp
/// Flow-level contention model. A FlowResource represents a serially shared
/// server (a mesh link, a memory controller port) as a "next free" horizon:
/// a request arriving at time t with service duration s occupies the server
/// over [max(t, horizon), max(t, horizon) + s].
///
/// Because the Simulator dispatches events in non-decreasing time order and
/// requests are issued from event callbacks, horizons only move forward —
/// this gives queueing-accurate completion times without simulating each
/// queue slot as its own event (orders of magnitude fewer events for the
/// same aggregate behaviour, which is what the paper-scale sweeps need).

#include <cstdint>
#include <string>

#include "sccpipe/support/time.hpp"

namespace sccpipe {

class FlowResource {
 public:
  explicit FlowResource(std::string name) : name_(std::move(name)) {}

  /// Reserve the server for \p service starting no earlier than \p at.
  /// Returns the completion time. \p at must be >= any previous request's
  /// arrival (enforced), matching event-order issue.
  SimTime acquire(SimTime at, SimTime service);

  /// When the server next becomes free (== last completion time).
  SimTime horizon() const { return horizon_; }

  const std::string& name() const { return name_; }

  /// Total time requests spent being served.
  SimTime busy_time() const { return busy_; }
  /// Total time requests spent waiting behind earlier requests.
  SimTime queue_delay() const { return queued_; }
  std::uint64_t request_count() const { return requests_; }

  /// Utilisation over [0, end] (for reports).
  double utilization(SimTime end) const {
    return end.is_zero() ? 0.0 : busy_ / end;
  }

  void reset_stats();

 private:
  std::string name_;
  SimTime horizon_ = SimTime::zero();
  SimTime last_arrival_ = SimTime::zero();
  SimTime busy_ = SimTime::zero();
  SimTime queued_ = SimTime::zero();
  std::uint64_t requests_ = 0;
};

}  // namespace sccpipe
