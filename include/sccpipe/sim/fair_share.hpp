#pragma once

/// \file fair_share.hpp
/// Processor-sharing bandwidth resource (fluid model). Concurrent bulk
/// transfers through a memory controller share its bandwidth equally; a
/// flow's completion time therefore stretches while competitors are active.
/// This is the mechanism behind the paper's observation that placing many
/// renderers on the SCC "increases the total number of memory accesses"
/// and slows the whole pipeline (§V, §VI-A).
///
/// Implementation: classic fluid queue. Active flows drain at
/// capacity / n_active bytes per second; on every arrival or departure the
/// remaining bytes of all flows are settled and the single "next
/// completion" event is rescheduled.

#include <cstdint>
#include <string>
#include <vector>

#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

class FairShareResource {
 public:
  /// Flow completions sit near the top of the callback tower: a
  /// completion may carry a whole memory-system continuation inline.
  using Callback = InplaceFunction<void(), kFlowCallbackBytes>;

  /// \p capacity_bytes_per_sec is the aggregate bandwidth shared by flows.
  FairShareResource(Simulator& sim, std::string name,
                    double capacity_bytes_per_sec);

  FairShareResource(const FairShareResource&) = delete;
  FairShareResource& operator=(const FairShareResource&) = delete;

  /// Begin a flow of \p bytes; \p on_done fires when it has fully drained.
  /// Zero-byte flows complete immediately (before returning).
  /// \p rate_cap bounds this flow's drain rate below its fair share (models
  /// an endpoint that cannot saturate the resource, e.g. a single P54C core
  /// copying through a memory controller); 0 means "no cap".
  void start_flow(double bytes, Callback on_done, double rate_cap = 0.0);

  std::size_t active_flows() const { return flows_.size(); }
  double capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  /// Total bytes fully transferred so far.
  double bytes_completed() const { return bytes_completed_; }
  std::uint64_t flows_completed() const { return flows_completed_; }

 private:
  struct Flow {
    double remaining_bytes;
    double rate_cap;  // 0 = uncapped
    Callback on_done;
  };

  double flow_rate(const Flow& f) const;

  void settle();        // drain remaining bytes up to sim_.now()
  void reschedule();    // (re)arm the next-completion event
  void on_completion_event();

  Simulator& sim_;
  std::string name_;
  double capacity_;
  std::vector<Flow> flows_;
  SimTime last_settle_ = SimTime::zero();
  EventHandle pending_event_;
  double bytes_completed_ = 0.0;
  std::uint64_t flows_completed_ = 0;
};

}  // namespace sccpipe
