#pragma once

/// \file parallel_sim.hpp
/// Mesh-partitioned parallel discrete-event engine: parallelism *inside*
/// one simulation, not just between runs.
///
/// The simulated system is split into R regions. Each region owns a full
/// `Simulator` (the PR 4 allocation-free SoA event queue), its own clock
/// and its own sequence counter; a window coordinator advances all regions
/// in conservative super-steps ("barrier windows"):
///
///   1. snapshot every region's next event time,
///   2. give each region the bound
///        bound_r = min_{s != r, s non-empty} next_s + lookahead[s][r]
///      (no peer can influence region r earlier than that, because any
///      interaction from region s to region r takes at least
///      `lookahead[s][r]` of simulated time — by default the router-latency
///      floor, but set_lookahead() lets the model install the calibrated
///      per-channel minimum, e.g. hop latency x the column gap between two
///      mesh bands, which widens every window that crosses distant bands),
///   3. drain every region to its bound in parallel on the worker threads;
///      a region that posts cross-region mail mid-window shrinks its own
///      remaining bound to delivery + the *return* lookahead (the
///      round-trip guard: the receiver may react at delivery time and post
///      back, and that reaction must not land in the sender's simulated
///      past),
///   4. barrier; flush the per-source outboxes; repeat. A barrier at which
///      no outbox held mail coalesces into the previous window: the flush
///      scan is skipped and the super-step is counted as a coalesced
///      continuation, not a new window.
///
/// This is the null-message-free variant of Chandy-Misra-Bryant
/// synchronisation: bounds come from a barrier snapshot instead of null
/// messages, and a region whose peers are all empty runs to completion in
/// a single window (so a fully serial model pays one window, not one per
/// lookahead quantum).
///
/// Determinism (the property every test in tests/parallel_sim_test.cpp
/// leans on): results are bit-identical at every worker count, including
/// jobs = 1, because
///   * window bounds derive only from queue states, which are themselves
///     deterministic by induction;
///   * a region's events are executed by exactly one thread per window, in
///     the engine's (time, seq) order;
///   * cross-region events are appended to the source region's outbox (one
///     batch per source, so a window's posts amortise to a single append
///     stream) and flushed at the barrier in a fixed order — delivery time,
///     then the event's topology rank, then (source region, post order) —
///     never in thread-completion order. Ranked posts let a model order
///     same-time deliveries by *simulated* position (e.g. source tile),
///     which is independent of how the mesh happens to be partitioned.
///
/// Thread-safety contract for model code: state owned by a region may only
/// be touched by callbacks scheduled on that region's Simulator. Cross-
/// region interaction must go through post(), with a delivery time at
/// least `lookahead` in the future. The barrier provides the
/// happens-before edges, so a conforming model is TSan-clean.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/support/status.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Deterministic engine counters: identical at every worker count, so they
/// may appear in RunResult/CSV output without breaking byte-identity.
struct ParallelSimStats {
  std::uint64_t windows = 0;             ///< super-steps that merged mail
  /// Super-steps that coalesced into the previous window because no outbox
  /// held mail at the barrier (the flush scan was skipped).
  std::uint64_t coalesced_windows = 0;
  std::uint64_t cross_region_events = 0; ///< mailbox events merged
  /// (region, window) pairs where the region had nothing to execute before
  /// its bound — the idle-stall count of a lopsided partition.
  std::uint64_t idle_region_windows = 0;
  std::uint64_t peak_mailbox = 0;        ///< largest single-barrier merge
};

/// Tuning for the stall watchdog. Both limits are *event and window
/// counts*, never wall time, so a triggered (or untriggered) watchdog is
/// bit-identical at every worker count — the detection itself obeys the
/// engine's determinism contract.
struct WatchdogConfig {
  /// A region executing more than this many consecutive events without its
  /// clock advancing is declared livelocked (the signature of a zero-delay
  /// self-reschedule cycle — the one hang mode a conservative engine with
  /// positive lookahead can actually reach, since time inside one window
  /// can stop advancing even though the window bound is finite).
  std::uint64_t max_events_per_timestamp = 10'000'000;
  /// Consecutive super-steps with no global-clock advance and no events
  /// dispatched anywhere. Provably unreachable with lookahead > 0 (the
  /// region owning the global minimum always has bound > next), so this is
  /// a defensive backstop against a future bounds-computation bug.
  std::uint64_t max_stagnant_windows = 10'000;
  /// Super-step summaries retained for flight_recorder_dump().
  std::size_t flight_recorder_depth = 16;
};

/// One super-step's summary in the watchdog flight recorder: the pre-drain
/// queue snapshot (what the coordinator knew when it set the bounds) plus
/// the post-drain cumulative dispatch counts.
struct WindowRecord {
  std::uint64_t step = 0;        ///< super-step index (windows + coalesced)
  SimTime global_min{};          ///< earliest pending event at the snapshot
  struct Region {
    SimTime next{};              ///< region's earliest event, pre-drain
    SimTime bound{};             ///< exclusive window bound it was given
    std::uint64_t dispatched = 0;  ///< cumulative events after the drain
  };
  std::vector<Region> regions;
};

class ParallelSimulator {
 public:
  using Callback = Simulator::Callback;

  /// \p regions partitions of the simulated system; \p jobs worker threads
  /// (clamped to [1, regions]; jobs == 1 drains every region inline on the
  /// calling thread and spawns nothing). \p lookahead is the minimum
  /// simulated latency of any cross-region interaction and must be > 0.
  ParallelSimulator(int regions, int jobs, SimTime lookahead,
                    std::size_t size_hint_per_region =
                        Simulator::kDefaultSizeHint);

  /// As above, with a per-region event-capacity hint (one entry per
  /// region). Models that know their partition's occupancy — e.g. the
  /// walkthrough, whose per-region event population scales with the
  /// tiles the partition assigned to each band — size each region's pools
  /// up front so steady state performs zero allocations per region.
  ParallelSimulator(int regions, int jobs, SimTime lookahead,
                    const std::vector<std::size_t>& size_hints);
  ~ParallelSimulator();
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  int regions() const { return static_cast<int>(regions_.size()); }
  int jobs() const { return jobs_; }
  /// The constructor's scalar lookahead — the floor every channel starts
  /// from until set_lookahead() raises it.
  SimTime lookahead() const { return lookahead_; }

  /// The minimum simulated latency of any src -> dst interaction.
  SimTime lookahead(int src, int dst) const;

  /// Install a calibrated per-channel lookahead (must be >= the scalar
  /// floor; src != dst). Raising a channel's lookahead widens every window
  /// bound it feeds — call it with the real link latency of the partition
  /// (e.g. router latency x band distance) before run().
  void set_lookahead(int src, int dst, SimTime lookahead);

  /// A region's event queue. Model code confined to region r schedules on
  /// region(r) exactly as it would on a serial Simulator. Outside run(),
  /// callers may use this single-threaded for setup; during run(), only
  /// callbacks executing on region r may touch it.
  Simulator& region(int r);

  /// Schedule \p fn on region \p dst_region at absolute time \p when.
  /// From inside a callback running on a different region src, \p when
  /// must be at least the sender's now() + lookahead(src, dst); the event
  /// is appended to the sender's outbox and flushed at the next barrier.
  /// From inside a callback on the same region this is a plain
  /// schedule_at. From outside run() it lands in the environment outbox
  /// and is flushed before the first window.
  void post(int dst_region, SimTime when, Callback fn);

  /// As post(), with an explicit same-time tie-break rank (see
  /// Simulator::schedule_at_ranked): lower ranks dispatch first at equal
  /// timestamps, and every rank beats plain unranked events. Models derive
  /// ranks from simulated topology so delivery order is partition-blind.
  void post(int dst_region, SimTime when, std::uint64_t rank, Callback fn);

  /// Region currently executing on this thread, or -1 when the calling
  /// thread is not inside a region callback of any engine.
  static int current_region();

  /// Window index (== stats().windows) of the super-step currently
  /// executing; readable from inside callbacks (the coordinator only
  /// advances it while the workers sit at the barrier).
  std::uint64_t current_window() const { return stats_.windows; }

  /// Run until every region queue and every mailbox lane drains. Returns
  /// the largest region clock.
  SimTime run();

  /// As run(), but stop once no region has an event at or before
  /// \p deadline (events at exactly \p deadline still run).
  SimTime run_until(SimTime deadline);

  /// Total events dispatched across all regions.
  std::uint64_t dispatched() const;

  /// Live pending events across all regions plus undelivered mailbox
  /// entries.
  std::size_t pending() const;

  const ParallelSimStats& stats() const { return stats_; }

  // --- stall watchdog -----------------------------------------------------
  /// Replace the watchdog limits (call before run()). The defaults are far
  /// above anything a healthy model reaches; tests shrink them to trigger
  /// detection quickly.
  void set_watchdog(const WatchdogConfig& cfg) { watchdog_ = cfg; }
  const WatchdogConfig& watchdog() const { return watchdog_; }

  /// Ok while the engine is healthy. DeadlineExceeded once a run() stopped
  /// because a region livelocked at one timestamp or the window coordinator
  /// stagnated — instead of hanging, run()/run_until() return early and the
  /// caller reads the verdict here (and the evidence from
  /// flight_recorder_dump()). Sticky: a stalled engine stays stalled.
  Status watchdog_status() const { return watchdog_status_; }

  /// The last flight_recorder_depth super-step summaries, oldest first.
  const std::deque<WindowRecord>& flight_recorder() const {
    return flight_recorder_;
  }
  /// Human-readable rendering of the flight recorder — one block per
  /// retained super-step with each region's {next, bound, dispatched} —
  /// for logs and the CLI's stall diagnostics.
  std::string flight_recorder_dump() const;

 private:
  struct Mail {
    int dst;
    SimTime when;
    std::uint64_t rank;
    Callback fn;
  };

  /// Drain every outbox into the destination regions' queues as one bulk
  /// merge per destination (append the batch, restore the heap invariant
  /// once — the keys' (time, rank, seq) total order keeps the delivery
  /// order deterministic without a sort). Returns true when any mail was
  /// flushed.
  bool flush_outboxes();
  /// Snapshot next event times; returns the global minimum (max() = all
  /// empty). Fills bounds_ for a step clamped to \p deadline.
  SimTime compute_bounds(SimTime deadline);
  void drain_assigned(int worker);
  void drain_region(int r);
  void run_step_parallel();
  void worker_loop(int worker);
  SimTime& lookahead_ref(int src, int dst);
  /// Append this super-step's summary to the flight recorder (bounded).
  void record_window(SimTime global_min);
  /// Post-barrier stall checks; returns false (and latches
  /// watchdog_status_) when the run must stop.
  bool check_watchdog(SimTime global_min);

  std::vector<std::unique_ptr<Simulator>> regions_;
  /// outbox_[src]: mail posted by region src this window, in post order;
  /// src == regions() is the environment lane (posts from outside run()).
  /// One append stream per source — a window's cross-region posts batch
  /// into a single vector instead of R separate lanes.
  std::vector<std::vector<Mail>> outbox_;
  std::vector<SimTime> next_;    // per-region snapshot
  std::vector<SimTime> bounds_;  // per-region window bound (exclusive)
  /// Effective per-region bound while draining: starts at bounds_[r] and
  /// shrinks to (delivery + return lookahead) at the region's first
  /// cross-region post of the window — the earliest a reaction round trip
  /// can return. Written only by the thread draining region r.
  std::vector<SimTime> caps_;
  SimTime lookahead_;  ///< scalar floor (the default channel lookahead)
  /// Row-major regions() x regions() per-channel lookahead matrix.
  std::vector<SimTime> lookahead_matrix_;
  int jobs_;
  ParallelSimStats stats_;

  // Watchdog state. stalled_[r] is written only by the thread draining
  // region r and read by the coordinator after the barrier (which provides
  // the happens-before edge), mirroring the caps_ discipline.
  WatchdogConfig watchdog_;
  std::vector<std::uint8_t> stalled_;
  std::vector<SimTime> stalled_at_;      ///< timestamp region r spun on
  Status watchdog_status_;
  std::deque<WindowRecord> flight_recorder_;
  std::uint64_t stagnant_windows_ = 0;
  SimTime last_global_min_ = SimTime::max();
  std::uint64_t last_dispatched_ = 0;

  // Barrier state for the persistent workers (jobs_ > 1 only).
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_go_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool quit_ = false;
};

}  // namespace sccpipe
