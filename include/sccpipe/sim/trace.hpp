#pragma once

/// \file trace.hpp
/// Step-function time series. Used for the power traces of Figures 14 and
/// 17: the chip's power level changes at discrete instants (a core starts or
/// finishes work, a frequency change is applied), and the bench samples the
/// resulting step function on a regular grid.

#include <cstddef>
#include <vector>

#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Piecewise-constant value-over-time recorder.
class StepTrace {
 public:
  /// Record that the value becomes \p value at time \p at. Times must be
  /// non-decreasing; a repeat timestamp overwrites the previous value at
  /// that instant.
  void record(SimTime at, double value);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// Value at time \p at (value of the last record <= at; 0 before first).
  double at(SimTime at) const;

  /// Integral of the step function over [from, to] — energy when the trace
  /// is power in watts and time is seconds: returns value*seconds.
  double integrate(SimTime from, SimTime to) const;

  /// Sample on a regular grid [start, end] inclusive with spacing \p step.
  std::vector<double> sample(SimTime start, SimTime end, SimTime step) const;

  struct Point {
    SimTime at;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

}  // namespace sccpipe
