#pragma once

/// \file reference_scheduler.hpp
/// The pre-optimisation event engine, transcribed verbatim: an
/// array-of-structs binary heap whose entries own heap-allocating
/// std::function callbacks (sifts drag the closures along), with the same
/// O(1) slot-table cancel and lazy tombstone compaction the optimised
/// engine uses. Dispatch order is (when, rank, seq) — exactly Simulator's
/// — so
///
///  * the event-ordering determinism test replays one chaos workload on
///    both engines and diffs the recorded dispatch traces;
///  * bench/perf_baseline measures the allocation-free SoA engine against
///    this one, giving the machine-independent event-churn speedup ratio.
///    Because cancel policy and compaction thresholds are identical, the
///    ratio isolates the two things the optimisation changed: callback
///    storage (std::function vs inline) and heap layout (AoS vs POD keys).
///
/// Deliberately not optimised; see filters/reference.hpp for the rule.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sccpipe/support/check.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe::reference {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  struct Handle {
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
    bool valid() const { return seq != 0; }
  };

  Scheduler() { heap_.reserve(1024); }

  Handle schedule_at(SimTime when, Callback fn) {
    return schedule_at_ranked(when, kUnranked, std::move(fn));
  }

  /// Explicit tie-break rank, mirroring Simulator::schedule_at_ranked:
  /// (when, rank, seq) dispatch order, kUnranked sorting last at a
  /// timestamp. Lets the queue-equivalence property test and the queue
  /// microbench drive both engines with identical ranked workloads.
  Handle schedule_at_ranked(SimTime when, std::uint64_t rank, Callback fn) {
    SCCPIPE_CHECK(when >= now_);
    SCCPIPE_CHECK(fn != nullptr);
    const std::uint64_t seq = next_seq_++;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slot_seq_.size());
      slot_seq_.push_back(0);
    }
    slot_seq_[slot] = seq;
    heap_.push_back(Event{when, rank, seq, slot, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end());
    ++live_pending_;
    return Handle{slot, seq};
  }

  static constexpr std::uint64_t kUnranked = ~std::uint64_t{0};

  Handle schedule_after(SimTime delay, Callback fn) {
    SCCPIPE_CHECK(!delay.is_negative());
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool cancel(Handle handle) {
    if (!handle.valid()) return false;
    if (handle.slot >= slot_seq_.size()) return false;
    if (slot_seq_[handle.slot] != handle.seq) return false;
    release_slot(handle.slot);
    --live_pending_;
    ++tombstones_;
    compact_if_worthwhile();
    return true;
  }

  bool step() {
    drop_front_tombstones();
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end());
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    release_slot(ev.slot);
    now_ = ev.when;
    --live_pending_;
    ev.fn();
    return true;
  }

  SimTime run() {
    while (step()) {
    }
    return now_;
  }

  SimTime now() const { return now_; }
  std::size_t pending() const { return live_pending_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t rank = kUnranked;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    Callback fn;

    // std::push_heap builds a max-heap; invert to dispatch the earliest
    // (when, rank, seq) first — identical ordering to Simulator's HeapKey
    // (plain events carry rank = kUnranked, degenerating to (when, seq)).
    friend bool operator<(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      if (a.rank != b.rank) return a.rank > b.rank;
      return a.seq > b.seq;
    }
  };

  static constexpr std::size_t kMinTombstonesForCompaction = 64;

  bool is_tombstone(const Event& ev) const {
    return slot_seq_[ev.slot] != ev.seq;
  }

  void release_slot(std::uint32_t slot) {
    slot_seq_[slot] = 0;
    free_slots_.push_back(slot);
  }

  void compact_if_worthwhile() {
    if (tombstones_ < kMinTombstonesForCompaction ||
        tombstones_ * 2 < heap_.size()) {
      return;
    }
    std::erase_if(heap_, [&](const Event& ev) { return is_tombstone(ev); });
    std::make_heap(heap_.begin(), heap_.end());
    tombstones_ = 0;
  }

  void drop_front_tombstones() {
    while (!heap_.empty() && is_tombstone(heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      --tombstones_;
    }
  }

  std::vector<Event> heap_;
  std::vector<std::uint64_t> slot_seq_;  // slot -> occupying seq (0 = free)
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::size_t live_pending_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace sccpipe::reference
