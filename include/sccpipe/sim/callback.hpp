#pragma once

/// \file callback.hpp
/// Non-allocating callable wrapper for the simulation hot path.
///
/// Every timed behaviour in sccpipe is a callback on the event queue, and a
/// full sweep dispatches millions of them. `std::function` heap-allocates
/// any capture bigger than its tiny SBO buffer, so the old event engine
/// paid an allocation (and a cache-missing indirect call) per scheduled
/// continuation. `InplaceFunction` stores the callable inline in a
/// fixed-size buffer instead:
///
///  * capacity is a compile-time template parameter, **statically
///    asserted** on construction — an oversized capture is a compile
///    error, never a silent heap fallback;
///  * move-only (no copies of captured state, matching how continuations
///    actually flow through the pipeline);
///  * one pointer of overhead to a static ops table (invoke / relocate /
///    destroy), generated per erased type;
///  * trivially-copyable captures (the normal case on the hot path: POD
///    context structs, handles, indices) relocate by plain memcpy and skip
///    the destroy call entirely — no indirect call on move or drop.
///
/// Capacities form a tower: a wrapper that captures a callback of the
/// tier below plus a few words of context must itself fit its own tier.
/// The constants below encode that arithmetic; the static_asserts keep it
/// honest when captures grow.

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

namespace sccpipe {

template <typename Signature, std::size_t Capacity>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Capacity,
                  "callable capture exceeds InplaceFunction capacity — "
                  "shrink the capture (pack context into a struct, capture "
                  "indices instead of fat objects) or raise the tier");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned callable");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callable must be nothrow-move-constructible (it is "
                  "relocated when the slot pool grows)");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    ops_ = &kOps<D>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      relocate_from(other);
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        relocate_from(other);
      }
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InplaceFunction& f, std::nullptr_t) {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const InplaceFunction& f, std::nullptr_t) {
    return f.ops_ != nullptr;
  }

  static constexpr std::size_t capacity() { return Capacity; }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
    /// sizeof the callable when it is trivially copyable and destructible
    /// (the fast path: memcpy relocation, no destroy), 0 otherwise.
    std::size_t trivial_size;
  };

  template <typename D>
  static constexpr Ops kOps{
      [](void* p, Args&&... args) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>
          ? sizeof(D)
          : 0,
  };

  /// Precondition: ops_ already copied from \p other, other.ops_ != nullptr.
  void relocate_from(InplaceFunction& other) noexcept {
    if (const std::size_t n = ops_->trivial_size; n != 0) {
      std::memcpy(buf_, other.buf_, n);
    } else {
      ops_->relocate(buf_, other.buf_);
    }
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->trivial_size == 0) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

/// Capacity tower (bytes of inline capture storage). Each tier must hold a
/// callback object of the tier below (capacity + one ops pointer + padding)
/// plus the wrapper's own context words; the chain is
///
///   MPB put/get continuations
///     -> chip compute/dram continuations (stage callbacks)
///       -> memory-system bulk continuations
///         -> fair-share flow completions
///           -> the Simulator event queue itself.
inline constexpr std::size_t kMpbCallbackBytes = 104;
inline constexpr std::size_t kStageCallbackBytes = 160;
inline constexpr std::size_t kMemCallbackBytes = 192;
inline constexpr std::size_t kFlowCallbackBytes = 224;
inline constexpr std::size_t kHostPushCallbackBytes = 120;
inline constexpr std::size_t kHostPopCallbackBytes = 120;
inline constexpr std::size_t kFabricCallbackBytes = 240;
inline constexpr std::size_t kSimCallbackBytes = 272;

/// The continuation type of the timed-execution façade (chip compute /
/// memory walks / DRAM streams / host compute). Fits every pipeline-stage
/// lambda inline; anything bigger is a compile error.
using StageCallback = InplaceFunction<void(), kStageCallbackBytes>;

/// A region-fabric chain leg (noc/fabric.hpp): one hop of a multi-site
/// event chain, carrying the original StageCallback plus a few words of
/// POD context. Never nest a FabricCallback inside another FabricCallback —
/// each leg re-captures the primitive continuation instead, so the tier
/// stays one below SimCallback (the fabric's site-scoping wrapper adds a
/// pointer + a site id on top).
using FabricCallback = InplaceFunction<void(), kFabricCallbackBytes>;

/// The Simulator's event callback — the outermost tier.
using SimCallback = InplaceFunction<void(), kSimCallbackBytes>;

}  // namespace sccpipe
