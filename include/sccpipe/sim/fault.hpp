#pragma once

/// \file fault.hpp
/// Deterministic fault injection for the simulated platform. A FaultPlan
/// describes *what can go wrong* (which fault classes, at which rates or
/// counts); a FaultInjector expands it — from a single RNG seed — into a
/// concrete, reproducible schedule of window faults plus per-message fate
/// decisions, and answers queries from the component models:
///
///   * NoC (src/noc)  — a link can be down or degraded for a time window;
///                      a router's forwarding latency can be inflated.
///   * Memory (src/mem) — a controller can stall (accept no new flows) or
///                      serve at a fraction of its bandwidth for a window.
///   * RCCE (src/rcce) and host link (src/host) — an individual message
///                      can be dropped (lost in flight, triggering the
///                      transport's timeout/retry machinery), corrupted
///                      (delivered but failing the CRC-32 integrity check
///                      at the receiver, which NACKs and retries), or
///                      delayed.
///   * Cores (src/scc) — a core can fail-stop at a planned instant
///                      (core-fail=<core>@<time>): it finishes nothing
///                      after T, and the Supervisor (src/core/recovery)
///                      detects the silence and heals the pipeline.
///
/// Determinism: window faults and core failures are generated eagerly at
/// construction, so the schedule is a pure function of the plan. Message
/// fates draw from dedicated per-category RNG streams in event-dispatch
/// order, which the single-threaded simulator makes reproducible — the
/// same seed yields a bit-identical fault trace and therefore bit-identical
/// simulated timing. Every consulted fault is appended to trace();
/// fingerprint() hashes the trace so two runs can be compared exactly
/// (tests/fault_injection_test).

#include <cstdint>
#include <string>
#include <vector>

#include "sccpipe/support/rng.hpp"
#include "sccpipe/support/snapshot.hpp"
#include "sccpipe/support/status.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Retry/backoff discipline for a fault-tolerant transport (RCCE sends,
/// host-link pushes). With max_attempts == 1 a lost message surfaces an
/// error as soon as the attempt's timeout expires; with more attempts the
/// transport retransmits after an exponentially growing backoff, all in
/// simulated time.
struct RetryPolicy {
  int max_attempts = 1;               ///< total attempts (1 = no retries)
  SimTime timeout = SimTime::ms(50);  ///< per-attempt loss-detection deadline
  SimTime backoff = SimTime::ms(1);   ///< backoff before the 2nd attempt
  double backoff_factor = 2.0;        ///< growth per further attempt
  /// Ceiling for the exponential backoff; large attempt counts would
  /// otherwise overflow the fixed-point SimTime long before the retry
  /// budget runs out.
  SimTime max_backoff = SimTime::sec(10);
  /// Hard per-transfer deadline measured from the first attempt; a retry
  /// that would start after it surfaces DeadlineExceeded. Zero = none.
  SimTime deadline = SimTime::zero();

  /// Backoff to wait after the \p failed_attempts-th loss (1-based),
  /// capped at max_backoff.
  SimTime backoff_after(int failed_attempts) const;
};

enum class FaultKind : std::uint8_t {
  LinkDegrade,    ///< link serialisation time divided by `factor` in window
  LinkDown,       ///< link unavailable during the window
  RouterDegrade,  ///< router latency multiplied by 1/factor in window
  McDegrade,      ///< MC service time divided by `factor` in window
  McStall,        ///< MC admits no new flows during the window
  CoreFail,       ///< fail-stop: core `target` dies at `start`, forever
  RcceDrop,       ///< decision record: an RCCE payload was lost
  RcceDelay,      ///< decision record: an RCCE payload was delayed
  RcceCorrupt,    ///< decision record: an RCCE payload failed its CRC
  HostDrop,       ///< decision record: a host-link message was lost
  HostDelay,      ///< decision record: a host-link message was delayed
  HostCorrupt,    ///< decision record: a host-link message failed its CRC
  HostReorder,    ///< decision record: a host datagram was delayed past its
                  ///< successors (delivered out of order)
  HostDuplicate,  ///< decision record: a host datagram was delivered twice
  HostBurstDrop,  ///< decision record: lost in a burst-loss (bad) state
  CrashAt,        ///< process fate: the host process dies at a planned
                  ///< instant (crash-at=<time>; executed by the run driver,
                  ///< never entering the schedule or the trace — see
                  ///< FaultPlan::crashes)
  SlowCore,       ///< fail-slow: core `target`'s compute and memory-walk
                  ///< latencies multiplied by 1/factor from `start` onward
  LinkLatency,    ///< degraded link: per-hop router latency on link `target`
                  ///< multiplied by 1/factor from `start` onward
  CoreStall,      ///< intermittent stall: core `target` starts no new work
                  ///< during [start, end) — one window per period
};

const char* fault_kind_name(FaultKind kind);

/// One entry of the fault schedule (window faults) or the decision trace
/// (message fates, where start == end == decision time).
struct FaultEvent {
  FaultKind kind{};
  SimTime start = SimTime::zero();
  SimTime end = SimTime::zero();
  int target = -1;      ///< link index, tile/MC/core id; -1 for messages
  double factor = 1.0;  ///< bandwidth/service fraction in (0, 1]
  SimTime extra = SimTime::zero();  ///< added delay (delay faults)
};

/// A planned fail-stop core death: the core executes nothing scheduled to
/// *complete* after `at` (work already in flight finishes; nothing new
/// starts or returns).
struct CoreFailure {
  int core = -1;
  SimTime at = SimTime::zero();
};

/// A planned fail-slow onset ("slow-core=<core>:<factor>@<time>"): from
/// `at` onward the core's stage compute and memory-walk latencies are
/// multiplied by `factor` (>= 1; 1.0 is a deliberate no-op that never
/// activates the fault layer, so a factor-1.0 plan stays byte-identical to
/// no fault at all). The core keeps answering heartbeats — only the gray
/// detector can see it.
struct SlowCore {
  int core = -1;
  double factor = 1.0;  ///< latency multiplier, >= 1
  SimTime at = SimTime::zero();
};

/// A planned mesh-link degradation ("degraded-link=<a>-<b>:<factor>@<time>"):
/// from `at` onward every hop crossing the link between *adjacent* tiles
/// `a` and `b` (both directions) pays `factor` times the per-hop router
/// latency. Latency only inflates (factor >= 1), so the parallel engine's
/// adaptive lookahead floor — derived from the un-degraded transit — stays
/// a valid lower bound and window-sync correctness is untouched.
struct DegradedLink {
  int tile_a = -1;
  int tile_b = -1;
  double factor = 1.0;  ///< per-hop latency multiplier, >= 1
  SimTime at = SimTime::zero();
};

/// A planned intermittent stall ("intermittent-stall=<core>:<period>:
/// <duration>"): starting at t = 0 the core freezes for `duration` at the
/// top of every `period` (duration < period, so consecutive stalls never
/// overlap), over the plan horizon. Stalled work is deferred, never lost.
struct StallSpec {
  int core = -1;
  SimTime period = SimTime::zero();
  SimTime duration = SimTime::zero();
};

/// What can go wrong, reproducible from `seed`. Parsed from the CLI's
/// --fault-plan grammar (see parse() and docs/MODEL.md §6).
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Span over which scheduled window faults are scattered.
  SimTime horizon = SimTime::sec(10);
  /// Length of each scheduled fault window.
  SimTime window = SimTime::ms(50);

  // Per-message fault rates in [0, 1].
  double rcce_drop_rate = 0.0;
  double rcce_delay_rate = 0.0;
  SimTime rcce_delay = SimTime::ms(1);  ///< max extra delay per delayed msg
  double rcce_corrupt_rate = 0.0;
  double host_drop_rate = 0.0;
  double host_delay_rate = 0.0;
  SimTime host_delay = SimTime::ms(5);
  double host_corrupt_rate = 0.0;
  /// Host datagram reordering: a hit is held back by an extra transit delay
  /// so later datagrams overtake it. Only the reliable (ARQ) host transport
  /// restores order; the legacy stop-and-wait path reads it as pure delay.
  double host_reorder_rate = 0.0;
  SimTime host_reorder_delay = SimTime::ms(10);  ///< max displacement
  /// Host datagram duplication: a hit is delivered twice, the copy lagging
  /// by up to host_duplicate_lag. Suppressed by the ARQ receiver.
  double host_duplicate_rate = 0.0;
  SimTime host_duplicate_lag = SimTime::ms(2);
  /// Gilbert–Elliott two-state burst loss on the host link. The channel
  /// steps once per datagram: good -> bad with burst_enter_rate, bad ->
  /// good with burst_exit_rate; while bad, each datagram is lost with
  /// burst_loss_rate (default: every one, the classic Gilbert model).
  double burst_enter_rate = 0.0;
  double burst_exit_rate = 0.1;
  double burst_loss_rate = 1.0;

  // Scheduled window faults: how many of each to scatter over the horizon.
  int link_degrade_count = 0;
  double link_degrade_factor = 0.25;  ///< surviving bandwidth fraction
  int link_down_count = 0;
  int router_degrade_count = 0;
  double router_degrade_factor = 0.25;  ///< 1/latency-multiplier
  int mc_degrade_count = 0;
  double mc_degrade_factor = 0.5;
  int mc_stall_count = 0;

  /// Planned fail-stop core deaths ("core-fail=<core>@<time>", repeatable;
  /// each occurrence appends one entry).
  std::vector<CoreFailure> core_failures;

  /// Planned fail-slow onsets ("slow-core=...", repeatable). Factor-1.0
  /// entries are accepted but never enter the schedule or flip enabled().
  std::vector<SlowCore> slow_cores;

  /// Planned mesh-link latency degradations ("degraded-link=...",
  /// repeatable). Same factor-1.0 no-op rule as slow_cores.
  std::vector<DegradedLink> degraded_links;

  /// Planned intermittent core stalls ("intermittent-stall=...", at most
  /// one spec per core — overlapping stall trains are rejected at parse).
  std::vector<StallSpec> stalls;

  /// Planned *process* deaths ("crash-at=<time>", repeatable): the run
  /// driver stops dispatching at the first armed instant and the CLI exits
  /// as if the host process had been killed — the in-tree stand-in for a
  /// real SIGKILL in the crash/resume tests. Deliberately a config-only key
  /// (it does not flip enabled()): a crash is not a simulated fault, it
  /// must neither attach the fault layer nor perturb any RNG stream or the
  /// fingerprint, or a resumed run could not be byte-identical to an
  /// uninterrupted one. A resume disarms the crashes the previous attempts
  /// already consumed (see CheckpointConfig in core/walkthrough.hpp).
  std::vector<SimTime> crashes;

  /// True when any fault class is active; a disabled plan is guaranteed to
  /// leave the simulation bit-identical to one with no fault layer at all.
  /// Derived from the same field table the parser uses, so a newly added
  /// fault kind cannot be parseable yet silently unreachable.
  bool enabled() const;

  /// Parse "key=value;key=value" (e.g. "rcce-drop=0.05;link-down=2;
  /// horizon=2s;window=20ms;core-fail=13@1.5s"). Returns a typed error on
  /// malformed input: InvalidArgument for unknown keys or bad values. Keys:
  /// rcce-drop, rcce-delay=<rate>:<time>, rcce-corrupt, host-drop,
  /// host-delay=<rate>:<time>, host-corrupt, reorder=<rate>[:<time>],
  /// duplicate=<rate>[:<time>], burst-loss=<enter>:<exit>[:<loss>],
  /// link-degrade=<n>:<factor>, link-down=<n>,
  /// router-degrade=<n>:<factor>, mc-degrade=<n>:<factor>,
  /// mc-stall=<n>, core-fail=<core>@<time>, crash-at=<time>,
  /// slow-core=<core>:<factor>@<time>, degraded-link=<a>-<b>:<factor>@<time>,
  /// intermittent-stall=<core>:<period>:<duration>,
  /// horizon=<time>, window=<time>, seed=<n>.
  Status parse(const std::string& text);
};

/// Fate of one message attempt, decided by the injector.
enum class MessageFate : std::uint8_t {
  Deliver,  ///< arrives (possibly late — check *extra_delay)
  Drop,     ///< lost in flight; the sender's timeout machinery fires
  Corrupt,  ///< arrives, fails the receiver's CRC check, and is NACKed
};

/// Full fate of one host datagram for the reliable (ARQ) transport: the
/// basic fate plus the injected transit delay (delay + reorder displacement
/// combined) and an optional duplicate copy lagging behind the original.
struct DatagramFate {
  MessageFate fate = MessageFate::Deliver;
  SimTime extra_delay = SimTime::zero();
  bool duplicate = false;  ///< a second copy arrives duplicate_lag later
  SimTime duplicate_lag = SimTime::zero();
};

/// The run-time oracle the component models consult. Const queries serve
/// the window schedule; message fates are stateful (they consume RNG draws
/// and append to the trace).
class FaultInjector {
 public:
  /// Disabled injector: every query is a no-op answer.
  FaultInjector() = default;

  /// Expand \p plan into a concrete schedule for a platform with the given
  /// component counts (MeshTopology::link_index_count(), tile_count(),
  /// mc_count()). \p mesh_width (tiles per row) is needed only to resolve
  /// degraded-link tile pairs to directed link indices; a plan without
  /// degraded links accepts the default.
  FaultInjector(const FaultPlan& plan, int link_count, int tile_count,
                int mc_count, int mesh_width = 0);

  bool enabled() const { return enabled_; }
  const FaultPlan& plan() const { return plan_; }
  /// The pre-generated window faults (and core failures), sorted by start.
  const std::vector<FaultEvent>& schedule() const { return schedule_; }

  // --- NoC hooks ---------------------------------------------------------
  /// Earliest instant >= \p at when the link accepts traffic (a message
  /// arriving during a LinkDown window waits the outage out).
  SimTime link_available(int link_index, SimTime at) const;
  /// Serialisation-time multiplier (>= 1) for the link at \p at.
  double link_slowdown(int link_index, SimTime at) const;
  /// Router forwarding-latency multiplier (>= 1) for \p tile at \p at.
  double router_slowdown(int tile, SimTime at) const;
  /// Per-hop latency multiplier (>= 1) for a *degraded* link at \p at.
  /// Unlike link_slowdown (which scales serialisation time), this scales
  /// the fixed per-hop router latency — latency only ever inflates, so the
  /// parallel engine's lookahead floor stays valid.
  double link_latency_factor(int link_index, SimTime at) const;

  // --- memory hooks ------------------------------------------------------
  /// Earliest instant >= \p at when the controller admits a new flow.
  SimTime mc_available(int mc, SimTime at) const;
  /// Service-time multiplier (>= 1) for the controller at \p at.
  double mc_slowdown(int mc, SimTime at) const;

  // --- core fail-stop hooks ----------------------------------------------
  /// True when \p core has fail-stopped at or before \p at.
  bool core_failed(int core, SimTime at) const;
  /// The planned death time of \p core, or SimTime::max() if it never dies.
  SimTime core_fail_time(int core) const;
  bool has_core_failures() const { return !plan_.core_failures.empty(); }

  // --- core fail-slow hooks ----------------------------------------------
  /// Latency multiplier (>= 1) for \p core's compute and memory-walk work
  /// at \p at (slow-core fates; 1.0 when the core runs at full speed).
  double core_slowdown(int core, SimTime at) const;
  /// Earliest instant >= \p at when \p core may *start* new work — an
  /// intermittent-stall window defers work to its end, never drops it.
  SimTime core_available(int core, SimTime at) const;
  /// True when the plan contains any fail-slow fate (slow-core with factor
  /// != 1, degraded-link with factor != 1, or an intermittent stall) — the
  /// gray-failure detector only has something to find when this holds.
  bool has_gray_faults() const;

  // --- message fates (stateful; recorded into the trace) -----------------
  /// Decide the fate of one RCCE transfer attempt. On Deliver/Corrupt,
  /// *extra_delay receives the injected transit delay (zero when unharmed).
  MessageFate rcce_message_fate(SimTime at, int from, int to,
                                SimTime* extra_delay);
  /// Same for one host-link message. Legacy stop-and-wait view: reorder
  /// displacement folds into the returned extra_delay and duplicates are
  /// ignored (the stop-and-wait pairing cannot represent them).
  MessageFate host_message_fate(SimTime at, SimTime* extra_delay);
  /// Full fate of one host datagram for the reliable (ARQ) transport:
  /// burst-loss state step, drop/corrupt/delay, reorder displacement and
  /// duplication. Consumes the same host RNG stream as host_message_fate —
  /// a run uses one transport or the other, never both on the same link.
  DatagramFate host_datagram_fate(SimTime at);

  // --- observability -----------------------------------------------------
  /// Message-fate decisions in the order they were taken.
  const std::vector<FaultEvent>& trace() const { return trace_; }
  /// FNV-1a hash over the schedule and the decision trace; two runs with
  /// the same seed and workload produce the same fingerprint.
  std::uint64_t fingerprint() const;

  std::uint64_t rcce_drops() const { return rcce_drops_; }
  std::uint64_t rcce_delays() const { return rcce_delays_; }
  std::uint64_t rcce_corrupts() const { return rcce_corrupts_; }
  std::uint64_t host_drops() const { return host_drops_; }
  std::uint64_t host_delays() const { return host_delays_; }
  std::uint64_t host_corrupts() const { return host_corrupts_; }
  std::uint64_t host_reorders() const { return host_reorders_; }
  std::uint64_t host_duplicates() const { return host_duplicates_; }
  std::uint64_t host_burst_drops() const { return host_burst_drops_; }

  // --- checkpoint hooks ---------------------------------------------------
  /// Serialize the injector's mutable state — both message-fate RNG
  /// streams, every decision counter, the burst-loss channel state and the
  /// full decision trace. The eager window schedule is *not* serialized: it
  /// is a pure function of the plan and is rebuilt identically on resume.
  void save_state(snapshot::Writer& w) const;
  /// Inverse of save_state(); a restored injector continues the exact
  /// decision sequence (and fingerprint) the saved one would have produced.
  /// Typed DataLoss/VersionSkew errors surface from the reader.
  Status restore_state(snapshot::Reader& r);

 private:
  SimTime available_after(FaultKind kind, int target, SimTime at) const;
  double slowdown(FaultKind kind, int target, SimTime at) const;

  FaultPlan plan_{};
  bool enabled_ = false;
  std::vector<FaultEvent> schedule_;
  std::vector<FaultEvent> trace_;
  Rng rcce_rng_{0};
  Rng host_rng_{0};
  std::uint64_t rcce_drops_ = 0;
  std::uint64_t rcce_delays_ = 0;
  std::uint64_t rcce_corrupts_ = 0;
  std::uint64_t host_drops_ = 0;
  std::uint64_t host_delays_ = 0;
  std::uint64_t host_corrupts_ = 0;
  std::uint64_t host_reorders_ = 0;
  std::uint64_t host_duplicates_ = 0;
  std::uint64_t host_burst_drops_ = 0;
  bool burst_bad_ = false;  ///< Gilbert–Elliott channel state (bad = bursty)
};

}  // namespace sccpipe
