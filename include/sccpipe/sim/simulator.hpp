#pragma once

/// \file simulator.hpp
/// Single-threaded discrete-event simulation core. All timed behaviour in
/// sccpipe (NoC transfers, memory accesses, stage compute, power sampling)
/// is expressed as events on one Simulator instance.
///
/// Determinism: events with equal timestamps are dispatched in scheduling
/// order (a monotonically increasing sequence number breaks ties), so a
/// given workload always produces bit-identical results.
///
/// Concurrency: a Simulator is strictly single-threaded. Parallel
/// experiment execution (exec/executor.hpp) runs one independent Simulator
/// per worker thread; instances share nothing.
///
/// Cancellation is O(1): every pending event owns a pooled slot recording
/// the sequence number that currently occupies it. cancel() frees the slot
/// without touching the heap; the heap entry becomes a tombstone that
/// step() discards when it surfaces. When tombstones outnumber live events
/// the heap is compacted in one O(n) pass, so retry/timeout-heavy
/// workloads (most armed timeouts are cancelled, not dispatched) stay
/// linear instead of quadratic.

#include <cstdint>
#include <functional>
#include <vector>

#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Opaque handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint64_t seq)
      : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

/// The event-driven scheduler.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule \p fn at absolute time \p when (must not be in the past).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Schedule \p fn \p delay after now (delay must be non-negative).
  EventHandle schedule_after(SimTime delay, Callback fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or the handle is empty. O(1).
  bool cancel(EventHandle handle);

  /// Dispatch the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains. Returns the final simulated time.
  SimTime run();

  /// Run until the queue drains or simulated time would exceed \p deadline.
  /// Events at exactly \p deadline still run.
  SimTime run_until(SimTime deadline);

  /// Number of events dispatched so far (for tests and sanity limits).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Number of live (non-cancelled) events currently pending.
  std::size_t pending() const;

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    Callback fn;

    // Min-heap on (when, seq) via std::push_heap's max-heap comparator.
    friend bool operator<(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // priority_queue hides mutable access to top(); we manage our own heap so
  // we can move the callback out before invoking it.
  std::vector<Event> heap_;
  // slot -> seq of the event occupying it (0 = free). A heap entry whose
  // slot no longer records its seq is a tombstone.
  std::vector<std::uint64_t> slot_seq_;
  std::vector<std::uint32_t> free_slots_;  // slot pool (reused, never shrunk)
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t live_pending_ = 0;
  std::size_t tombstones_ = 0;  // cancelled entries still in heap_

  bool is_tombstone(const Event& ev) const {
    return slot_seq_[ev.slot] != ev.seq;
  }
  void release_slot(std::uint32_t slot);
  void compact_if_worthwhile();
  void drop_front_tombstones();
};

}  // namespace sccpipe
