#pragma once

/// \file simulator.hpp
/// Single-threaded discrete-event simulation core. All timed behaviour in
/// sccpipe (NoC transfers, memory accesses, stage compute, power sampling)
/// is expressed as events on one Simulator instance.
///
/// Determinism: events with equal timestamps are dispatched in scheduling
/// order (a monotonically increasing sequence number breaks ties), so a
/// given workload always produces bit-identical results.
///
/// Concurrency: a Simulator is strictly single-threaded. Parallel
/// experiment execution (exec/executor.hpp) runs one independent Simulator
/// per worker thread; instances share nothing.
///
/// Hot-path layout (structure of arrays): the priority queue is a
/// cache-line-aligned 4-ary implicit min-heap (sim/dary_heap.hpp) holding
/// only 32-byte (time, rank, seq, slot) keys — a sibling group is exactly
/// two aligned cache lines and a sift walks log4(n) levels — while
/// callbacks live in a pooled slot table indexed by the key's slot.
/// Callbacks are `SimCallback` (inline fixed-capacity storage, see
/// callback.hpp), so steady-state schedule/cancel/dispatch performs zero
/// heap allocations; SimulatorStats counts the container growths so tests
/// can assert exactly that.
///
/// Cancellation is O(1): every pending event owns a pooled slot recording
/// the sequence number that currently occupies it. cancel() destroys the
/// callback, frees the slot and leaves the heap key behind as a tombstone
/// that step() discards when it surfaces. When tombstones outnumber live
/// events the key heap is compacted in one O(n) pass over PODs, so
/// retry/timeout-heavy workloads (most armed timeouts are cancelled, not
/// dispatched) stay linear instead of quadratic.
///
/// Bulk merges: merge_append()/merge_commit() let a batch source (the
/// parallel engine's barrier flush, sim/parallel_sim.hpp) append a whole
/// window of events and restore the heap invariant once — O(k + rebuild)
/// amortised instead of k sift-up passes. Because the (time, rank, seq)
/// key is a strict total order, the merge strategy can never change the
/// dispatch sequence, only the constant factor of reaching it.

#include <cstdint>
#include <vector>

#include "sccpipe/sim/callback.hpp"
#include "sccpipe/sim/dary_heap.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Opaque handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint64_t seq)
      : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

/// Allocation/occupancy counters of one Simulator, for tests and the perf
/// harness. `allocs` counts every growth of the event containers (key heap,
/// slot pool, free list); after warm-up it must stay flat — the perf-smoke
/// test asserts schedule/cancel/dispatch churn leaves it unchanged.
struct SimulatorStats {
  std::uint64_t allocs = 0;        ///< container growths (reallocations)
  std::uint64_t compactions = 0;   ///< tombstone sweeps of the key heap
  std::uint64_t peak_events = 0;   ///< max simultaneous live pending events
};

/// The event-driven scheduler.
class Simulator {
 public:
  using Callback = SimCallback;

  /// \p size_hint pre-reserves the key heap and slot pool for that many
  /// simultaneously pending events (they still grow on demand).
  explicit Simulator(std::size_t size_hint = kDefaultSizeHint);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Grow the reserved event capacity (no-op when already that large).
  void reserve_events(std::size_t expected_pending);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule \p fn at absolute time \p when (must not be in the past).
  /// (Thin forwarders: the callable is materialised once at the call site
  /// and relocated exactly once, into its slot.)
  EventHandle schedule_at(SimTime when, Callback fn) {
    return schedule_impl(when, kUnranked, std::move(fn));
  }

  /// Schedule \p fn \p delay after now (delay must be non-negative).
  EventHandle schedule_after(SimTime delay, Callback fn) {
    return schedule_impl(delay_to_when(delay), kUnranked, std::move(fn));
  }

  /// Schedule \p fn at \p when with an explicit tie-break rank. At equal
  /// timestamps, lower ranks dispatch first and any rank dispatches before
  /// plain (kUnranked) events; equal ranks fall back to scheduling order.
  /// The partitioned engine (sim/parallel_sim.hpp) derives ranks from the
  /// *simulated* topology (source site, per-site post order), so merged
  /// cross-region mail dispatches in an order independent of both worker
  /// count and region count.
  EventHandle schedule_at_ranked(SimTime when, std::uint64_t rank,
                                 Callback fn) {
    return schedule_impl(when, rank, std::move(fn));
  }

  /// Bulk-merge fast path: exactly schedule_at_ranked — same checks, same
  /// sequence assignment, same handle — except the heap invariant is NOT
  /// restored until merge_commit(). A batch source (the parallel engine's
  /// barrier flush) appends a whole window of mail, then commits once:
  /// O(k + rebuild) amortised instead of k sift passes. Between the first
  /// merge_append and merge_commit, only merge_append/cancel may be
  /// called; dispatch and queries CHECK against an uncommitted merge.
  EventHandle merge_append(SimTime when, std::uint64_t rank, Callback fn);

  /// Restore the heap invariant after a run of merge_append calls (no-op
  /// when none are outstanding). Dispatch order is provably unaffected:
  /// (time, rank, seq) is a strict total order, so every valid heap pops
  /// in the same sequence.
  void merge_commit();

  /// Rank used by the plain schedule_at/schedule_after paths: sorts after
  /// every explicit rank at the same timestamp.
  static constexpr std::uint64_t kUnranked = ~std::uint64_t{0};

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or the handle is empty. O(1); the captured state is
  /// destroyed immediately.
  bool cancel(EventHandle handle);

  /// Dispatch the next event. Returns false when the queue is empty.
  bool step();

  /// Batched same-timestamp dispatch: run every event sharing the front
  /// key's timestamp — including events a callback schedules *at* that
  /// same timestamp — up to \p max_events, in one pass over the heap
  /// front. Returns the number dispatched (0 when the queue is empty).
  /// The drain primitive of the parallel engine's window loop: the
  /// round-trip cap only ever shrinks to strictly *later* timestamps, so
  /// the cap needs re-reading once per timestamp, not once per event —
  /// and the caller's livelock watchdog budget maps onto \p max_events
  /// (a return value of max_events with the front still at the same
  /// timestamp is exactly the old per-event counter overflowing).
  std::uint64_t run_timestamp(std::uint64_t max_events);

  /// Run until the queue drains. Returns the final simulated time.
  SimTime run();

  /// Run until the queue drains or simulated time would exceed \p deadline.
  /// Events at exactly \p deadline still run.
  SimTime run_until(SimTime deadline);

  /// Run every event strictly before \p bound (events at exactly \p bound
  /// stay pending). The drain primitive of the partitioned parallel engine
  /// (sim/parallel_sim.hpp): a region executes its window [now, bound).
  SimTime run_before(SimTime bound);

  /// Timestamp of the next live event, or SimTime::max() when the queue is
  /// empty. Discards surfaced tombstones as a side effect (which is why it
  /// is not const); O(tombstones at the front).
  SimTime next_event_time();

  /// Number of events dispatched so far (for tests and sanity limits).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Number of live (non-cancelled) events currently pending.
  std::size_t pending() const;

  /// Allocation/compaction/occupancy counters (see SimulatorStats).
  const SimulatorStats& stats() const { return stats_; }

  static constexpr std::size_t kDefaultSizeHint = 1024;

 private:
  EventHandle schedule_impl(SimTime when, std::uint64_t rank, Callback&& fn);
  SimTime delay_to_when(SimTime delay) const;

  /// Hot heap entry: the ordering key plus the slot that holds the cold
  /// callback. 32 bytes, trivially copyable — sifts never touch callbacks.
  struct HeapKey {
    SimTime when;
    std::uint64_t rank;
    std::uint64_t seq;
    std::uint32_t slot;

    /// Strict (when, rank, seq) dispatch order — "a dispatches before b".
    /// Plain events carry rank = kUnranked, so for them this degenerates
    /// to the historical (when, seq) order. seq is unique, so this is a
    /// total order: heap-internal strategy cannot change the pop sequence.
    static bool before(const HeapKey& a, const HeapKey& b) {
      if (a.when != b.when) return a.when < b.when;
      if (a.rank != b.rank) return a.rank < b.rank;
      return a.seq < b.seq;
    }
  };
  static_assert(sizeof(HeapKey) == 32, "heap keys are two per cache line");

  /// Acquire a slot, store \p fn in it and return the slot index (shared
  /// tail of the scheduling paths; counts container growths).
  std::uint32_t acquire_slot(std::uint64_t seq, Callback&& fn);
  /// Pop the front key and dispatch its callback (front must be live).
  void dispatch_front();

  DaryKeyHeap<HeapKey> heap_;
  // slot -> seq of the event occupying it (0 = free). A heap key whose
  // slot no longer records its seq is a tombstone.
  std::vector<std::uint64_t> slot_seq_;
  // slot -> callback of the occupying event (cold storage, touched only at
  // schedule/cancel/dispatch of that one event, never during sifts).
  std::vector<Callback> slot_fn_;
  std::vector<std::uint32_t> free_slots_;  // slot pool (reused, never shrunk)
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t live_pending_ = 0;
  std::size_t tombstones_ = 0;      // cancelled keys still in heap_
  std::size_t merge_appended_ = 0;  // keys appended, invariant pending
  SimulatorStats stats_;

  bool is_tombstone(const HeapKey& key) const {
    return slot_seq_[key.slot] != key.seq;
  }
  void release_slot(std::uint32_t slot);
  void compact_if_worthwhile();
  void drop_front_tombstones();
};

}  // namespace sccpipe
