#pragma once

/// \file simulator.hpp
/// Single-threaded discrete-event simulation core. All timed behaviour in
/// sccpipe (NoC transfers, memory accesses, stage compute, power sampling)
/// is expressed as events on one Simulator instance.
///
/// Determinism: events with equal timestamps are dispatched in scheduling
/// order (a monotonically increasing sequence number breaks ties), so a
/// given workload always produces bit-identical results.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sccpipe/support/time.hpp"

namespace sccpipe {

/// Opaque handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// The event-driven scheduler.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule \p fn at absolute time \p when (must not be in the past).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Schedule \p fn \p delay after now (delay must be non-negative).
  EventHandle schedule_after(SimTime delay, Callback fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or the handle is empty.
  bool cancel(EventHandle handle);

  /// Dispatch the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains. Returns the final simulated time.
  SimTime run();

  /// Run until the queue drains or simulated time would exceed \p deadline.
  /// Events at exactly \p deadline still run.
  SimTime run_until(SimTime deadline);

  /// Number of events dispatched so far (for tests and sanity limits).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Number of events currently pending (cancelled events are counted until
  /// their timestamp is reached and they are discarded).
  std::size_t pending() const;

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;  // empty when cancelled

    // Min-heap on (when, seq) via std::priority_queue's max-heap comparator.
    friend bool operator<(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // priority_queue hides mutable access to top(); we manage our own heap so
  // we can move the callback out before invoking it.
  std::vector<Event> heap_;
  std::vector<std::uint64_t> cancelled_;  // sorted-on-demand tombstones
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t live_pending_ = 0;

  bool is_cancelled(std::uint64_t seq) const;
};

}  // namespace sccpipe
