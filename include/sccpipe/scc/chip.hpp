#pragma once

/// \file chip.hpp
/// SccChip — the façade the communication library and pipeline framework
/// program against. Owns the mesh, the memory system, per-tile operating
/// points, core allocation state, and the power meter.
///
/// The same class models the Mogon cluster node of §VI (Fig. 13): a chip
/// with fast cores, a flat high-bandwidth "mesh" and effectively
/// uncontended memory — see ChipConfig::mogon_node().

#include <memory>
#include <vector>

#include "sccpipe/mem/memory.hpp"
#include "sccpipe/noc/mesh.hpp"
#include "sccpipe/noc/topology.hpp"
#include "sccpipe/scc/dvfs.hpp"
#include "sccpipe/scc/power.hpp"
#include "sccpipe/sim/simulator.hpp"

namespace sccpipe {

class FaultInjector;
class RegionFabric;

/// How finely the supply voltage can be set. Frequency is always per tile;
/// the SCC's silicon couples voltage across 2x2-tile domains (8 cores, six
/// domains per chip), while the paper reasons as if a single tile could be
/// raised alone (Fig. 18). Both are supported; the ablation bench compares
/// their §VI-D power bills.
enum class VoltageGranularity { PerTile, PerQuadTileDomain };

struct ChipConfig {
  MeshLayout mesh_layout{};
  MeshTimingConfig mesh_timing{};
  MemoryConfig memory{};
  PowerConfig power{};
  VoltageGranularity voltage_granularity = VoltageGranularity::PerTile;
  int default_mhz = 533;
  /// Instructions-per-cycle scaling relative to the P54C reference; >1 for
  /// modern cores (Mogon), 1 for the SCC.
  double ipc_factor = 1.0;
  /// Copy throughput of one core through its blocking cache misses (caps
  /// bulk DRAM streams). Frequency-independent: the P54C's copies are
  /// DRAM-latency-bound, so raising the core clock does not speed them —
  /// one reason the 800 MHz blur core gains less than the clock ratio
  /// (§VI-D).
  double copy_rate_bytes_per_sec = 133.0e6;
  /// Scaling of the render stage's raster cycle counts relative to the
  /// P54C reference. Modern cluster cores gain disproportionately on the
  /// SIMD-friendly transform/rasterise loop compared to the byte-wise
  /// filters (calibrated to the Fig. 13 "single renderer" floor).
  double render_cycles_scale = 1.0;

  /// The default: Intel SCC, 6x4 tiles, 48 cores.
  static ChipConfig scc();
  /// A Mogon HPC cluster node: 64 cores at 2.1 GHz, modern IPC, flat fast
  /// memory (no on-chip memory wall).
  static ChipConfig mogon_node();
};

class SccChip {
 public:
  SccChip(Simulator& sim, ChipConfig cfg = ChipConfig::scc());

  SccChip(const SccChip&) = delete;
  SccChip& operator=(const SccChip&) = delete;

  Simulator& sim() { return sim_; }
  const ChipConfig& config() const { return cfg_; }
  const MeshTopology& topology() const { return topo_; }
  MeshModel& mesh() { return mesh_; }
  MemorySystem& memory() { return mem_; }
  const DvfsTable& dvfs() const { return dvfs_; }

  int core_count() const { return topo_.core_count(); }

  // --- DVFS ------------------------------------------------------------
  /// Set a tile's frequency; the voltage follows the DVFS table. Affects
  /// both cores of the tile (§VI-D / Fig. 18). Under PerQuadTileDomain
  /// granularity the *voltage* additionally propagates to the tile's whole
  /// 2x2 domain (the domain runs at the maximum voltage any of its tiles
  /// requires).
  void set_tile_frequency(TileId tile, int mhz);

  /// The 2x2-tile voltage domain a tile belongs to.
  int voltage_domain_of(TileId tile) const;
  /// Convenience: set the tile that hosts \p core.
  void set_core_frequency(CoreId core, int mhz);
  OperatingPoint operating_point(CoreId core) const;
  /// Core clock in Hz.
  double frequency_hz(CoreId core) const;
  /// Effective compute speed in "reference cycles" per second (clock * IPC
  /// factor): divide a P54C cycle count by this to get a duration.
  double effective_hz(CoreId core) const;
  /// Bulk copy bandwidth cap of the core (frequency-independent; see
  /// ChipConfig::copy_rate_bytes_per_sec).
  double copy_rate(CoreId core) const;

  // --- allocation & power ------------------------------------------------
  /// Mark a core as running pipeline work (allocated cores draw dynamic
  /// power continuously — RCCE waits are spin loops).
  void allocate_core(CoreId core);
  void release_core(CoreId core);
  bool allocated(CoreId core) const;
  int allocated_count() const;

  /// Busy/waiting accounting for metrics (does not change power).
  void set_core_busy(CoreId core, bool busy);
  SimTime core_busy_time(CoreId core) const;

  double current_watts() const { return meter_.current_watts(); }
  const PowerMeter& power_meter() const { return meter_; }
  const PowerModel& power_model() const { return power_model_; }

  // --- fail-stop faults ---------------------------------------------------
  // --- region-native dispatch --------------------------------------------
  /// Attach a region fabric (noc/fabric.hpp): the timed-execution
  /// primitives below stop running on the host-region Simulator and become
  /// located event chains — compute at the core's tile, DRAM streams
  /// through the controller's region, continuations hopping back to the
  /// caller's site — so a partitioned run dispatches them concurrently.
  /// The memory system is re-homed per controller region as a side effect.
  /// Must be called while no timed work is in flight; nullptr detaches and
  /// restores the serial (byte-identical to unattached) path. The fabric
  /// must outlive the chip or be detached first.
  void attach_fabric(RegionFabric* fabric);
  RegionFabric* fabric() { return fabric_; }

  /// Attach the fault layer so cores can fail-stop (FaultPlan core-fail).
  /// A dead core starts no new work: compute/memory_walk/dram_stream on it
  /// silently drop their continuation, so everything waiting on the core
  /// stalls — exactly the silence the Supervisor's heartbeat deadline is
  /// built to detect. Work already in flight at death completes (the
  /// schedule was committed); nullptr detaches.
  void set_fault_injector(const FaultInjector* fault) { fault_ = fault; }
  /// True when \p core has fail-stopped at the current simulated time.
  bool core_dead(CoreId core) const;

  // --- timed execution ---------------------------------------------------
  /// Run \p ref_cycles of computation on \p core, then call \p on_done.
  /// The core is marked busy for the duration.
  void compute(CoreId core, double ref_cycles, StageCallback on_done);

  /// Run a latency-bound memory walk (octree traversal): \p line_accesses
  /// dependent misses under current MC load, then \p on_done.
  void memory_walk(CoreId core, double line_accesses,
                   StageCallback on_done);

  /// Stream \p bytes between the core and its DRAM partition (capped at
  /// the core's copy rate, contended at the MC), then \p on_done.
  void dram_stream(CoreId core, double bytes, StageCallback on_done);

 private:
  struct CoreState {
    bool allocated = false;
    bool busy = false;
    SimTime busy_since = SimTime::zero();
    SimTime busy_total = SimTime::zero();
  };

  struct WalkState {
    CoreId core;
    double per_segment;
    int remaining;
    StageCallback on_done;
  };

  void walk_step(WalkState st);
  void fabric_walk_step(WalkState st, TileId ret_site);
  void refresh_power();
  void refresh_voltages();
  /// Fault query / busy accounting against an explicit region-local clock
  /// (the fabric's chains execute at the owning tile's region, whose now()
  /// differs from the host Simulator's).
  bool core_dead_at(CoreId core, SimTime now) const;
  void set_core_busy_at(CoreId core, bool busy, SimTime now);
  /// Compute speed from the tile's *live* clock — the region-owned mirror
  /// of the requested frequency that a mid-run DVFS command updates via a
  /// located post (see set_tile_frequency).
  double effective_hz_live(CoreId core) const;
  /// Fail-slow adjustment of a work duration starting at \p now on \p core:
  /// an intermittent-stall window defers the start to its end, and a
  /// slow-core fate multiplies the service time. Identity when no fault
  /// layer is attached or no gray fate covers the instant. Called at the
  /// core's tile in fabric mode, so the sampled times are region-local and
  /// partition-independent.
  SimTime gray_adjusted(CoreId core, SimTime dur, SimTime now) const;

  Simulator& sim_;
  ChipConfig cfg_;
  MeshTopology topo_;
  MeshModel mesh_;
  MemorySystem mem_;
  DvfsTable dvfs_;
  PowerModel power_model_;
  PowerMeter meter_;
  /// Requested frequency and effective operating point per tile. Host-
  /// owned: written only by host-region events (DVFS commands, setup), and
  /// read by the host-side power/voltage refresh and effective_hz().
  std::vector<int> tile_mhz_;
  std::vector<OperatingPoint> tile_points_;  ///< effective (freq, voltage)
  /// The tile-owned mirror of tile_mhz_: written by an event *at* the tile
  /// (a mid-run DVFS command hops across the mesh before taking effect),
  /// read by compute() at the tile. Always equals tile_mhz_ in serial mode.
  std::vector<int> tile_mhz_live_;
  std::vector<CoreState> cores_;
  const FaultInjector* fault_ = nullptr;
  RegionFabric* fabric_ = nullptr;
};

}  // namespace sccpipe
