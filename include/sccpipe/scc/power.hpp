#pragma once

/// \file power.hpp
/// Analytic chip power model, calibrated against the wattages the paper
/// publishes (22 W idle; ~50 W with 27 allocated cores; 58 W with 43; the
/// +4..5 W of one tile at 800 MHz/1.3 V; the ~-5 W of the 400 MHz tail —
/// §II, §VI-B, §VI-D).
///
/// Structure: P = idle + uncore(app running) + sum over allocated cores of
/// dynamic(f, V) + sum over tiles of static_offset(V). Cores waiting in
/// RCCE receive loops spin-poll at full speed on the real SCC, so an
/// *allocated* core draws its dynamic power whether or not its stage is
/// mid-computation.

#include "sccpipe/scc/dvfs.hpp"
#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/sim/trace.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {

struct PowerConfig {
  double chip_idle_watts = 22.0;       ///< all 48 cores idle (paper §II)
  double uncore_active_watts = 10.0;   ///< mesh+MCs busy while the app runs
  /// Dynamic power of one allocated core at the 533 MHz / 1.1 V reference.
  double core_dynamic_watts_ref = 0.714;
  int ref_mhz = 533;
  double ref_volts = 1.1;
  /// Per-tile static adder when a tile runs off-reference voltage
  /// (calibrated to Fig. 17): +2.5 W at 1.3 V, -1.2 W at 0.7 V.
  double tile_static_watts_high = 2.5;   // at 1.3 V
  double tile_static_watts_low = -1.2;   // at 0.7 V
};

class PowerModel {
 public:
  explicit PowerModel(PowerConfig cfg = {}) : cfg_(cfg) {}

  const PowerConfig& config() const { return cfg_; }

  /// Dynamic draw of one allocated core at an operating point:
  /// ref * (f/f_ref) * (V/V_ref)^2.
  double core_dynamic_watts(const OperatingPoint& op) const;

  /// Static offset of a whole tile at voltage \p volts (0 at reference).
  double tile_static_watts(double volts) const;

 private:
  PowerConfig cfg_;
};

/// Accumulates the chip's power level over simulated time and integrates
/// energy. Drive it with level changes; read traces/energy afterwards.
class PowerMeter {
 public:
  explicit PowerMeter(Simulator& sim) : sim_(sim) {}

  /// Record that total chip power becomes \p watts now.
  void set_power(double watts);

  double current_watts() const;
  /// Energy in joules over [from, to].
  double energy_joules(SimTime from, SimTime to) const;
  /// Mean power over a window (used for 1-second power plots).
  double mean_watts(SimTime from, SimTime to) const;
  const StepTrace& trace() const { return trace_; }

 private:
  Simulator& sim_;
  StepTrace trace_;
};

}  // namespace sccpipe
