#pragma once

/// \file dvfs.hpp
/// Frequency/voltage control. The SCC changes frequency per tile; raising a
/// core's frequency requires raising the whole tile's voltage (paper §VI-D,
/// Fig. 18), so the operating point lives on the tile. Levels follow the
/// figures the paper quotes: 400 MHz @ 0.7 V, 533 MHz @ 1.1 V (default),
/// 800 MHz @ 1.3 V; 1066 MHz is the chip's upper tier, also at 1.3 V.

#include <vector>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

struct OperatingPoint {
  int mhz = 533;
  double volts = 1.1;
  friend bool operator==(const OperatingPoint&, const OperatingPoint&) = default;
};

/// The discrete operating points a tile may use.
class DvfsTable {
 public:
  DvfsTable();

  /// Operating point for a requested frequency; throws CheckError if the
  /// frequency is not an allowed level.
  OperatingPoint point_for(int mhz) const;

  bool allowed(int mhz) const;
  const std::vector<OperatingPoint>& points() const { return points_; }

 private:
  std::vector<OperatingPoint> points_;
};

}  // namespace sccpipe
