#pragma once

/// \file cache.hpp
/// Analytic working-set cache model for the P54C cores: 16 KiB L1 and
/// 256 KiB L2, both 4-way with 32-byte lines (SCC EAS). The macro-pipeline
/// stages stream their strip once per frame, so what the model answers is
/// "how much of a stage's traffic reaches DRAM?":
///
///  * first touch of a strip always misses (compulsory) — the strip arrives
///    from the previous stage through the core's DRAM partition;
///  * re-touches hit if the reuse working set fits in a cache level.
///
/// The paper measured no cliff when strips exceed L2 (Fig. 12) because the
/// filters' reuse windows (a few rows) fit in L1 regardless of strip size;
/// the model reproduces exactly that.

#include <cstdint>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

struct CacheConfig {
  std::uint32_t line_bytes = 32;
  std::uint32_t l1_bytes = 16 * 1024;
  std::uint32_t l2_bytes = 256 * 1024;
  std::uint32_t ways = 4;
};

class CacheModel {
 public:
  explicit CacheModel(CacheConfig cfg = {});

  const CacheConfig& config() const { return cfg_; }

  /// Number of cache lines covering \p bytes.
  double lines(double bytes) const;

  /// Does a working set of \p bytes fit a cache level (with a set-conflict
  /// head-room factor for 4-way associativity)?
  bool fits_l1(double working_set_bytes) const;
  bool fits_l2(double working_set_bytes) const;

  /// DRAM traffic (bytes) of a stage pass that reads \p bytes_in with a
  /// sliding reuse window of \p reuse_window_bytes, touching each input
  /// byte \p touches_per_byte times, and writes \p bytes_out.
  ///
  /// First touches always miss; re-touches miss only when the reuse window
  /// exceeds L2. Writes are modelled write-allocate + write-back:
  /// 2x line traffic for streaming stores.
  double dram_traffic(double bytes_in, double bytes_out,
                      double reuse_window_bytes,
                      double touches_per_byte) const;

 private:
  CacheConfig cfg_;
};

}  // namespace sccpipe
