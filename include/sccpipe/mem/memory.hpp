#pragma once

/// \file memory.hpp
/// The four DDR3 memory controllers and the private-partition memory map.
/// Two access classes are modelled:
///
///  * bulk streams — a stage reading/writing its strip, or RCCE copying a
///    message through the receiver's partition. These share each MC's
///    bandwidth (fair-share fluid model) and are additionally capped by the
///    issuing core's copy rate — a 533 MHz P54C cannot saturate a DDR3-800
///    channel on its own, which is why per-core effective bandwidth on the
///    real SCC is two orders of magnitude below MC peak.
///
///  * latency-bound walks — octree traversal during frustum culling:
///    dependent loads, one outstanding miss at a time. Duration is
///    n_accesses * effective_latency, where the effective latency inflates
///    with the controller's instantaneous load. This is the mechanism that
///    penalises the "as many renderers as pipelines" scenario (§VI-A).

#include <cstdint>
#include <memory>
#include <vector>

#include "sccpipe/mem/cache.hpp"
#include "sccpipe/noc/mesh.hpp"
#include "sccpipe/noc/topology.hpp"
#include "sccpipe/sim/fair_share.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/sim/simulator.hpp"

namespace sccpipe {

class RegionFabric;

struct MemoryConfig {
  /// Effective sustained bandwidth per controller (DDR3-800 peak is
  /// 6.4 GB/s; sustained with the SCC's access pattern is far lower).
  double mc_bandwidth_bytes_per_sec = 2.5e9;
  /// Unloaded latency of one dependent line fetch as seen by the core
  /// (miss detection, mesh round trip, DRAM access).
  SimTime base_line_latency = SimTime::ns(220);
  /// Additional round-trip latency per mesh hop between core and its MC.
  SimTime per_hop_latency = SimTime::ns(8);
  /// Latency inflation per unit of concurrent MC load (queueing
  /// approximation): eff = base * min(cap, 1 + coeff * (load - 1)).
  double latency_contention_coeff = 0.6;
  /// Upper bound on the inflation factor: a heavily queued controller
  /// saturates rather than degrading without limit.
  double latency_contention_cap = 2.2;
  CacheConfig cache;
};

/// Aggregate per-controller statistics for reports and tests.
struct McStats {
  double bulk_bytes = 0.0;
  std::uint64_t bulk_flows = 0;
  std::uint64_t latency_streams_peak = 0;
};

class MemorySystem {
 public:
  MemorySystem(Simulator& sim, const MeshTopology& topo, MeshModel& mesh,
               MemoryConfig cfg = {});

  const MemoryConfig& config() const { return cfg_; }
  const CacheModel& cache() const { return cache_; }
  const MeshTopology& topology() const { return topo_; }

  /// Re-home the controllers onto a region fabric (noc/fabric.hpp): each
  /// controller's fair-share queue is rebuilt on the regional Simulator
  /// owning its router tile, and bulk() turns into a located event chain
  /// (mesh charge at the host bridge, queueing at the controller's region,
  /// completion back at the issuing core's tile). In fabric mode bulk()
  /// must be called from an event at the issuing core's site and delivers
  /// on_done there. Must be called while no flow is active; nullptr
  /// detaches and restores the serial path.
  void attach_fabric(RegionFabric* fabric);

  /// Stream \p bytes between \p core and its home MC's DRAM.
  /// \p core_rate_cap is the issuing core's copy bandwidth (bytes/s).
  /// \p on_done fires when the stream completes; mesh link contention along
  /// the core<->MC route is charged as well.
  using BulkCallback = InplaceFunction<void(), kMemCallbackBytes>;
  void bulk(CoreId core, double bytes, double core_rate_cap,
            BulkCallback on_done);

  /// Duration of \p n_accesses dependent line fetches issued by \p core
  /// under the current load of its home controller. Pure query plus load
  /// sampling; the caller owns treating it as busy time.
  SimTime latency_bound(CoreId core, double n_accesses) const;

  /// As above against an explicit clock — the fabric's walk segments run
  /// at the controller's region, whose now() is not the host Simulator's.
  SimTime latency_bound(CoreId core, double n_accesses, SimTime now) const;

  /// Latency-bound streams register while active so concurrent walkers see
  /// each other's load (paired calls; see LatencyStreamScope).
  void register_latency_stream(CoreId core);
  void unregister_latency_stream(CoreId core);

  /// Instantaneous load units on a controller: active bulk flows plus
  /// active latency streams.
  double mc_load(McId mc) const;

  const McStats& stats(McId mc) const;
  McId home_mc(CoreId core) const { return topo_.home_mc(core); }

  /// Attach the deterministic fault layer: bulk streams wait out McStall
  /// windows and pay McDegrade service inflation; latency-bound walks see
  /// the inflation too. Must outlive the system; nullptr detaches.
  void set_fault_injector(const FaultInjector* fault) { fault_ = fault; }

 private:
  void rebuild_mcs();
  void fabric_bulk(CoreId core, double bytes, double core_rate_cap,
                   BulkCallback on_done);

  Simulator& sim_;
  const MeshTopology& topo_;
  MeshModel& mesh_;
  MemoryConfig cfg_;
  CacheModel cache_;
  /// One fair-share queue per controller. Serial mode: all on sim_. Fabric
  /// mode: each on the regional Simulator owning the controller's tile, so
  /// flow start/settle events execute in the controller's region.
  std::vector<std::unique_ptr<FairShareResource>> mcs_;
  std::vector<int> latency_streams_;
  std::vector<McStats> stats_;
  const FaultInjector* fault_ = nullptr;
  RegionFabric* fabric_ = nullptr;
};

/// RAII registration of a latency-bound walker.
class LatencyStreamScope {
 public:
  LatencyStreamScope(MemorySystem& mem, CoreId core) : mem_(mem), core_(core) {
    mem_.register_latency_stream(core_);
  }
  ~LatencyStreamScope() { mem_.unregister_latency_stream(core_); }
  LatencyStreamScope(const LatencyStreamScope&) = delete;
  LatencyStreamScope& operator=(const LatencyStreamScope&) = delete;

 private:
  MemorySystem& mem_;
  CoreId core_;
};

}  // namespace sccpipe
