#pragma once

/// \file mpb.hpp
/// The message-passing buffers and the one-sided RCCE core primitives. On
/// the real chip every tile has 16 KiB of MPB SRAM (8 KiB per core), the
/// only memory a remote core can write directly. RCCE's send/recv are
/// built from RCCE_put / RCCE_get plus flag polling; this layer models
/// those primitives so the substrate is usable below the send/recv level
/// (and so MPB capacity pressure is a first-class, testable concept).
///
/// Timing of put(from -> to, bytes): the payload crosses the mesh from the
/// writer's tile to the owner's tile and lands in SRAM — no DRAM involved.
/// get(reader, owner, bytes) likewise crosses the mesh towards the reader.
/// Capacity: bytes resident in a core's MPB are tracked; exceeding the
/// 8 KiB window is a programming error (RCCE chunks large messages).

#include <map>
#include <vector>

#include "sccpipe/scc/chip.hpp"

namespace sccpipe {

struct MpbConfig {
  double bytes_per_core = 8192.0;      ///< SCC: 8 KiB per core
  double write_cycles_per_byte = 0.5;  ///< issuing core's copy loop
  double read_cycles_per_byte = 0.5;
  double flag_poll_cycles = 120.0;     ///< one test-and-set round
};

class MpbSystem {
 public:
  /// MPB continuations are the innermost callback tier: put/get wrap
  /// them with a few words of context before handing them to the chip.
  using Callback = InplaceFunction<void(), kMpbCallbackBytes>;

  MpbSystem(SccChip& chip, MpbConfig cfg = {});

  MpbSystem(const MpbSystem&) = delete;
  MpbSystem& operator=(const MpbSystem&) = delete;

  const MpbConfig& config() const { return cfg_; }

  /// Reserve \p bytes in \p owner's MPB window. Throws CheckError when the
  /// window would overflow (callers must chunk, as RCCE does).
  void allocate(CoreId owner, double bytes);
  void release(CoreId owner, double bytes);
  double used(CoreId owner) const;
  double available(CoreId owner) const;

  /// One-sided write of \p bytes from \p from into \p to's MPB window
  /// (space must have been allocated). Cost: write loop on \p from plus
  /// the mesh crossing.
  void put(CoreId from, CoreId to, double bytes, Callback on_done);

  /// One-sided read of \p bytes from \p owner's MPB by \p reader.
  void get(CoreId reader, CoreId owner, double bytes, Callback on_done);

  /// Spin on a flag in \p owner's MPB until a matching flag_set arrives.
  /// Models RCCE's flag handshake; the waiter's core stays allocated (it
  /// polls). Flags match in FIFO order per (owner, flag_id).
  void flag_wait(CoreId waiter, CoreId owner, int flag_id, Callback on_set);
  void flag_set(CoreId setter, CoreId owner, int flag_id);

 private:
  struct FlagKey {
    CoreId owner;
    int flag_id;
    friend auto operator<=>(const FlagKey&, const FlagKey&) = default;
  };

  SccChip& chip_;
  MpbConfig cfg_;
  std::vector<double> used_;
  std::map<FlagKey, int> pending_sets_;  // sets with no waiter yet
  std::map<FlagKey, std::vector<Callback>> waiters_;
};

}  // namespace sccpipe
