#pragma once

/// \file rcce.hpp
/// RCCE-flavoured message passing over the simulated chip. Semantics follow
/// the library the paper used (RCCE 2.0): sends and receives are blocking
/// and match pairwise on (source, destination); a transfer happens only
/// when both sides have arrived (rendezvous).
///
/// Timing of one matched transfer of B bytes — this encodes the paper's
/// central observation that, lacking local memory, "the message actually
/// has to travel first to the receiver processor's memory partition" and be
/// re-read from there (§VI-A):
///
///   sender : software overhead + per-chunk protocol cost (B / MPB chunk)
///   sender : streams B from its own DRAM partition      (source buffer)
///   mesh   : B crosses the routed grid sender -> receiver
///   recv   : software overhead
///   recv   : streams B into its own DRAM partition      (the bounce)
///
/// Both cores are held for the whole transfer, as with spin-waiting RCCE.
///
/// Fault tolerance: with a FaultInjector attached, a transfer's payload may
/// be lost crossing the mesh. The sender detects the loss when its
/// per-attempt timeout expires (spin-waiting on the ack flag), backs off in
/// simulated time, and retransmits up to RetryPolicy::max_attempts times;
/// exhaustion (or the per-transfer deadline) surfaces a typed Status to
/// both endpoints instead of hanging the rendezvous.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sccpipe/scc/chip.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/support/status.hpp"

namespace sccpipe {

struct RcceConfig {
  /// Message-passing-buffer chunk: RCCE moves large messages through the
  /// 8 KiB per-core MPB window.
  double mpb_chunk_bytes = 8192.0;
  double send_overhead_cycles = 3000.0;  ///< per-message software cost
  double recv_overhead_cycles = 3000.0;
  double per_chunk_cycles = 800.0;       ///< flag handshake per MPB round
  /// Hypothetical Cell-style local memory banks (§VII: "small local and
  /// manageable memory banks per node would be a nice way to reduce the
  /// traffic"): when true, transfers go core-to-core over the mesh without
  /// bouncing through the receiver's DRAM partition. Used by the
  /// local-store ablation bench; the real SCC has no such banks.
  bool local_memory_banks = false;
  /// Timeout/retry/backoff discipline for lost payloads. Only consulted
  /// when a FaultInjector is attached; the default (max_attempts = 1)
  /// surfaces the first loss as an error after `retry.timeout`.
  RetryPolicy retry{};
};

class RcceComm {
 public:
  using Callback = std::function<void()>;
  /// Fault-aware completion: receives Ok on delivery, or the typed error
  /// (RetriesExhausted / DeadlineExceeded) when the transfer gave up.
  using StatusCallback = std::function<void(const Status&)>;

  explicit RcceComm(SccChip& chip, RcceConfig cfg = {});

  RcceComm(const RcceComm&) = delete;
  RcceComm& operator=(const RcceComm&) = delete;

  SccChip& chip() { return chip_; }
  const RcceConfig& config() const { return cfg_; }

  /// Attach the deterministic fault layer (per-message drop/delay fates).
  /// Must outlive the comm object; nullptr detaches.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  /// Blocking send: \p on_complete fires when the receiver has fully
  /// consumed the message (data landed in its partition). This overload
  /// has no error path: a transfer that gives up fails the run loudly
  /// (CheckError) — use the StatusCallback overload under fault injection.
  void send(CoreId from, CoreId to, double bytes, Callback on_complete);
  void send(CoreId from, CoreId to, double bytes, StatusCallback on_complete);

  /// Blocking receive matching a send from \p from.
  void recv(CoreId to, CoreId from, Callback on_complete);
  void recv(CoreId to, CoreId from, StatusCallback on_complete);

  /// Barrier across \p group: each member calls arrive(); all callbacks
  /// fire when the last member arrives.
  class Barrier {
   public:
    Barrier(RcceComm& comm, std::vector<CoreId> group);
    void arrive(CoreId core, Callback on_release);

   private:
    RcceComm& comm_;
    std::vector<CoreId> group_;
    std::vector<std::pair<CoreId, Callback>> waiting_;
  };

  /// Number of MPB chunk rounds for a message size.
  int chunk_count(double bytes) const;

  // --- power-management API (mirrors RCCE_iset_power and friends) -------
  /// Request a frequency for the tile hosting \p core; voltage follows the
  /// DVFS table at the chip's configured granularity (§VI-D).
  void iset_power(CoreId core, int mhz);
  /// The voltage domain the core's tile belongs to (RCCE_power_domain).
  int power_domain(CoreId core) const;

  /// Estimated duration of a transfer on an idle system (for tests and
  /// back-of-envelope checks; does not advance any contention state).
  SimTime ideal_transfer_time(CoreId from, CoreId to, double bytes) const;

  std::uint64_t messages_delivered() const { return delivered_; }
  /// Number of retransmissions performed after injected payload losses.
  std::uint64_t retransmissions() const { return retransmissions_; }
  /// Number of transfers that surfaced an error after exhausting retries
  /// or their deadline.
  std::uint64_t transfers_failed() const { return transfers_failed_; }

  /// Drop every *unmatched* pending send and recv posted on the (from, to)
  /// pair and return how many were discarded. The Supervisor uses this when
  /// it tears a failed pipeline down: the dead incarnation's rendezvous
  /// state must not pair with the healed incarnation's. Matched transfers
  /// already in flight are not affected (their completions are ignored by
  /// the caller via generation checks).
  std::size_t abandon_pair(CoreId from, CoreId to);

 private:
  struct PendingSend {
    double bytes;
    StatusCallback on_complete;
  };
  using Key = std::pair<CoreId, CoreId>;  // (from, to)

  void start_transfer(CoreId from, CoreId to, double bytes,
                      StatusCallback sender_done,
                      StatusCallback receiver_done);
  void attempt_transfer(CoreId from, CoreId to, double bytes, int attempt,
                        SimTime first_attempt_at, StatusCallback sender_done,
                        StatusCallback receiver_done);
  void finish_delivery(CoreId to, double bytes, StatusCallback sender_done,
                       StatusCallback receiver_done);
  /// Shared retry-or-give-up tail for a lost or corrupted attempt. \p detect
  /// is when the sender learns of the loss (timeout expiry for a drop, NACK
  /// completion for a CRC failure); \p how labels the error message.
  void resolve_loss(CoreId from, CoreId to, double bytes, int attempt,
                    SimTime first_attempt_at, SimTime detect, const char* how,
                    StatusCallback sender_done, StatusCallback receiver_done);
  /// Wrap a plain Callback into a StatusCallback that fails loudly.
  static StatusCallback require_ok(Callback cb, const char* what);

  SccChip& chip_;
  RcceConfig cfg_;
  FaultInjector* fault_ = nullptr;
  std::map<Key, std::deque<PendingSend>> sends_;
  std::map<Key, std::deque<StatusCallback>> recvs_;
  std::uint64_t delivered_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t transfers_failed_ = 0;
};

}  // namespace sccpipe
