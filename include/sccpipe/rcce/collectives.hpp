#pragma once

/// \file collectives.hpp
/// Collective operations built on the rendezvous primitives, mirroring the
/// RCCE_comm library shipped with the SCC kit (RCCE_bcast, RCCE_scatter,
/// RCCE_gather, RCCE_reduce). The walkthrough application itself only uses
/// point-to-point transfers, but the collectives complete the
/// message-passing substrate — scatter is exactly what the paper's render
/// and connect stages do by hand, and gather is the transfer stage.
///
/// Algorithms match RCCE_comm's: linear rooted collectives (the root sends
/// to / receives from every member in rank order). On a 48-core chip the
/// linear variants are what RCCE 2.0 actually shipped.

#include <functional>
#include <vector>

#include "sccpipe/rcce/rcce.hpp"

namespace sccpipe {

class RcceCollectives {
 public:
  using Callback = std::function<void()>;

  explicit RcceCollectives(RcceComm& comm) : comm_(comm) {}

  RcceCollectives(const RcceCollectives&) = delete;
  RcceCollectives& operator=(const RcceCollectives&) = delete;

  /// Root sends \p bytes to every other member; \p on_complete fires when
  /// the last member has received the payload.
  void broadcast(CoreId root, const std::vector<CoreId>& group, double bytes,
                 Callback on_complete);

  /// Root sends a distinct \p bytes_per_member slice to every other
  /// member (what the paper's single-renderer/connect stages do with the
  /// image strips).
  void scatter(CoreId root, const std::vector<CoreId>& group,
               double bytes_per_member, Callback on_complete);

  /// Every member sends \p bytes_per_member to the root (the transfer
  /// stage's collection step).
  void gather(CoreId root, const std::vector<CoreId>& group,
              double bytes_per_member, Callback on_complete);

  /// Gather + combine: like gather, plus a per-member combine cost of
  /// \p combine_cycles on the root after each arrival (RCCE_reduce).
  void reduce(CoreId root, const std::vector<CoreId>& group, double bytes,
              double combine_cycles, Callback on_complete);

 private:
  /// Sequentially move one message between the root and each non-root
  /// member, in rank order; root_sends selects the direction.
  void rooted_linear(CoreId root, std::vector<CoreId> members,
                     double bytes_each, bool root_sends,
                     double root_post_cycles, Callback on_complete);

  RcceComm& comm_;
};

}  // namespace sccpipe
