// Self-healing pipeline (core/recovery.hpp + walkthrough integration):
// fail-stop core faults are detected by heartbeat silence within a bounded
// latency, dead stages remap onto spare cores (or the run degrades to
// fewer pipelines when spares run out), undelivered strips replay from the
// per-stage checkpoint, and the whole recovery path is seeded-deterministic.
// Also covers the CRC-32 integrity net and the retry-backoff cap.

#include <gtest/gtest.h>

#include <cstring>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/support/crc.hpp"

namespace sccpipe {
namespace {

// Shared small scene (built once; the binary's only expensive setup).
const SceneBundle& shared_scene() {
  static SceneBundle* scene = [] {
    CityParams city;
    city.blocks_x = 4;
    city.blocks_z = 4;
    return new SceneBundle(city, CameraConfig{}, 80, 8);
  }();
  return *scene;
}

const WorkloadTrace& shared_trace() {
  static WorkloadTrace* trace =
      new WorkloadTrace(WorkloadTrace::build(shared_scene(), 4));
  return *trace;
}

RunConfig base_config() {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  return cfg;
}

// Tight watchdog so failures land and resolve inside an 8-frame run.
RecoveryConfig fast_recovery() {
  RecoveryConfig rc;
  rc.heartbeat_period = SimTime::us(200);
  rc.detection_deadline = SimTime::us(500);
  return rc;
}

/// Worst-case detection latency for fast_recovery(): the deadline itself,
/// plus up to two heartbeat periods of tick quantisation, plus a generous
/// allowance for mesh transit of the liveness datagrams.
constexpr double kDetectBoundMs = 0.5 + 2 * 0.2 + 0.3;

// Clean reference run: supplies the deterministic placement (to pick
// victim cores) and the fault-free walkthrough length (to pick failure
// times that land mid-stream).
const RunResult& clean_run() {
  static RunResult* r = new RunResult(
      run_walkthrough(shared_scene(), shared_trace(), base_config()));
  return *r;
}

SimTime mid_run_instant(double fraction) {
  return SimTime::ms(clean_run().walkthrough.to_ms() * fraction);
}

RunConfig core_fail_config(CoreId victim, double fraction) {
  RunConfig cfg = base_config();
  cfg.fault.seed = 4;
  cfg.fault.core_failures.push_back({victim, mid_run_instant(fraction)});
  cfg.recovery = fast_recovery();
  return cfg;
}

// One remap run, reused by several assertions below.
const RunResult& remap_run() {
  static RunResult* r = [] {
    const CoreId victim = clean_run().placement.pipeline_cores[1][2];
    return new RunResult(run_walkthrough(shared_scene(), shared_trace(),
                                         core_fail_config(victim, 0.3)));
  }();
  return *r;
}

// ----------------------------------------------------------------- crc32

TEST(Crc32, MatchesTheIeeeCheckValue) {
  const char check[] = "123456789";
  EXPECT_EQ(crc32(check, std::strlen(check)), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  const std::size_t n = std::strlen(data);
  const std::uint32_t whole = crc32(data, n);
  // Seed chaining.
  EXPECT_EQ(crc32(data + 10, n - 10, crc32(data, 10)), whole);
  // Streaming helper.
  Crc32 acc;
  acc.update(data, 7);
  acc.update(data + 7, n - 7);
  EXPECT_EQ(acc.value(), whole);
  // Sensitivity: a single flipped byte changes the checksum.
  char mutated[sizeof(data)];
  std::memcpy(mutated, data, sizeof(data));
  mutated[3] ^= 0x01;
  EXPECT_NE(crc32(mutated, n), whole);
}

// ---------------------------------------------------------- retry backoff

TEST(RetryPolicy, BackoffIsCappedAtMaxBackoff) {
  RetryPolicy rp;
  rp.backoff = SimTime::ms(2);
  rp.backoff_factor = 10.0;
  rp.max_backoff = SimTime::ms(50);
  EXPECT_EQ(rp.backoff_after(1), SimTime::ms(2));
  EXPECT_EQ(rp.backoff_after(2), SimTime::ms(20));
  EXPECT_EQ(rp.backoff_after(3), SimTime::ms(50));   // 200 -> capped
  EXPECT_EQ(rp.backoff_after(10), SimTime::ms(50));  // no overflow blowup
  EXPECT_EQ(rp.backoff_after(64), SimTime::ms(50));  // 10^63 would overflow
}

// ------------------------------------------------------------- plan parse

TEST(FaultPlan, CoreFailEntriesAccumulate) {
  FaultPlan plan;
  ASSERT_TRUE(plan.parse("core-fail=5@100ms").ok());
  ASSERT_TRUE(plan.parse("core-fail=9@250ms").ok());  // repeatable flag
  ASSERT_EQ(plan.core_failures.size(), 2u);
  EXPECT_EQ(plan.core_failures[0].core, 5);
  EXPECT_EQ(plan.core_failures[0].at, SimTime::ms(100));
  EXPECT_EQ(plan.core_failures[1].core, 9);
  EXPECT_EQ(plan.core_failures[1].at, SimTime::ms(250));
  EXPECT_TRUE(plan.enabled());
}

// ----------------------------------------------------- detection + remap

TEST(Supervisor, DetectionLatencyIsBounded) {
  const RunResult& r = remap_run();
  ASSERT_TRUE(r.recovery.enabled);
  ASSERT_EQ(r.recovery.failures_detected, 1u);
  ASSERT_EQ(r.recovery.failures.size(), 1u);
  const FailureRecord& rec = r.recovery.failures[0];
  EXPECT_GT(rec.detection_latency_ms, 0.0);
  EXPECT_LE(rec.detection_latency_ms, kDetectBoundMs);
  EXPECT_DOUBLE_EQ(r.recovery.max_detection_latency_ms,
                   rec.detection_latency_ms);
  // Liveness traffic is paid for, not free.
  EXPECT_GT(r.recovery.heartbeats_sent, 0u);
  EXPECT_GT(r.recovery.heartbeat_bytes, 0.0);
}

TEST(Supervisor, RemapOntoSpareCompletesEveryFrame) {
  const RunResult& r = remap_run();
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  EXPECT_EQ(r.recovery.frames_lost, 0u);
  EXPECT_EQ(r.recovery.failures_recovered, 1u);
  EXPECT_EQ(r.recovery.spares_used, 1);
  EXPECT_EQ(r.recovery.pipelines_lost, 0);
  const FailureRecord& rec = r.recovery.failures[0];
  EXPECT_GE(rec.remapped_to, 0);
  EXPECT_FALSE(rec.degraded);
  EXPECT_TRUE(rec.recovered);
  // The undelivered strips were re-read from the checkpoint and resent.
  EXPECT_GE(r.recovery.frames_replayed, 1u);
  EXPECT_GE(r.recovery.checkpoint_replays, r.recovery.frames_replayed);
  EXPECT_GT(r.recovery.checkpoint_writes, 0u);
  EXPECT_GT(r.recovery.checkpoint_bytes, 0.0);
  // Recovery costs simulated time relative to the clean run.
  EXPECT_GE(r.walkthrough, clean_run().walkthrough);
  EXPECT_GT(r.recovery.post_failure_fps, 0.0);
}

TEST(Supervisor, SpareExhaustionDegradesToFewerPipelines) {
  const CoreId victim = clean_run().placement.pipeline_cores[0][1];
  RunConfig cfg = core_fail_config(victim, 0.3);
  cfg.recovery.max_spares = 0;  // force the degrade path
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_EQ(r.recovery.pipelines_lost, 1);
  EXPECT_EQ(r.recovery.spares_used, 0);
  ASSERT_EQ(r.recovery.failures.size(), 1u);
  EXPECT_TRUE(r.recovery.failures[0].degraded);
  // Frames stuck in the dead pipeline are lost; everything else still
  // arrives, redistributed across the two survivors.
  EXPECT_GE(r.recovery.frames_lost, 1u);
  EXPECT_EQ(r.frame_done_ms.size() + r.recovery.frames_lost, 8u);
}

TEST(Supervisor, SecondFailureOnSamePipelineRemapsAgain) {
  const auto& cores = clean_run().placement.pipeline_cores;
  RunConfig cfg = base_config();
  cfg.fault.seed = 4;
  cfg.fault.core_failures.push_back({cores[2][0], mid_run_instant(0.25)});
  cfg.fault.core_failures.push_back({cores[2][4], mid_run_instant(0.55)});
  cfg.recovery = fast_recovery();
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  EXPECT_EQ(r.recovery.failures_detected, 2u);
  EXPECT_EQ(r.recovery.failures_recovered, 2u);
  EXPECT_EQ(r.recovery.spares_used, 2);
  EXPECT_EQ(r.recovery.frames_lost, 0u);
}

// -------------------------------------------------- replay determinism

TEST(Supervisor, RecoveryRunsAreDeterministic) {
  const CoreId victim = clean_run().placement.pipeline_cores[1][2];
  const RunConfig cfg = core_fail_config(victim, 0.3);
  const RunResult a = run_walkthrough(shared_scene(), shared_trace(), cfg);
  const RunResult b = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(a.fault.failed) << a.fault.failure;
  EXPECT_EQ(a.walkthrough, b.walkthrough);
  ASSERT_EQ(a.frame_done_ms.size(), b.frame_done_ms.size());
  for (std::size_t i = 0; i < a.frame_done_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.frame_done_ms[i], b.frame_done_ms[i]);
  }
  EXPECT_EQ(a.recovery.failures_detected, b.recovery.failures_detected);
  EXPECT_EQ(a.recovery.frames_replayed, b.recovery.frames_replayed);
  EXPECT_EQ(a.recovery.frames_lost, b.recovery.frames_lost);
  EXPECT_EQ(a.recovery.heartbeats_sent, b.recovery.heartbeats_sent);
  EXPECT_DOUBLE_EQ(a.recovery.max_detection_latency_ms,
                   b.recovery.max_detection_latency_ms);
  ASSERT_EQ(a.recovery.failures.size(), b.recovery.failures.size());
  EXPECT_DOUBLE_EQ(a.recovery.failures[0].detected_at_ms,
                   b.recovery.failures[0].detected_at_ms);
  EXPECT_EQ(a.recovery.failures[0].remapped_to,
            b.recovery.failures[0].remapped_to);
}

TEST(Supervisor, NoCoreFailurePlanLeavesRunsUntouched) {
  // A recovery config alone must change nothing: the supervisor only
  // attaches when the plan actually schedules a core failure, so every
  // other run — including PR 1 style drop/delay runs — stays bit-identical.
  RunConfig cfg = base_config();
  cfg.recovery = fast_recovery();
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_FALSE(r.recovery.enabled);
  EXPECT_EQ(r.recovery.heartbeats_sent, 0u);
  EXPECT_EQ(r.walkthrough, clean_run().walkthrough);
  ASSERT_EQ(r.frame_done_ms.size(), clean_run().frame_done_ms.size());
  for (std::size_t i = 0; i < r.frame_done_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.frame_done_ms[i], clean_run().frame_done_ms[i]);
  }
}

// ----------------------------------------------------------- chaos mix

TEST(Supervisor, ChaosCoreFailMixedWithDropsAndDelays) {
  const auto& cores = clean_run().placement.pipeline_cores;
  RunConfig cfg = base_config();
  cfg.fault.seed = 17;
  cfg.fault.rcce_drop_rate = 0.03;
  cfg.fault.rcce_delay_rate = 0.05;
  cfg.fault.rcce_delay = SimTime::ms(1);
  cfg.fault.rcce_corrupt_rate = 0.02;
  cfg.fault.core_failures.push_back({cores[0][3], mid_run_instant(0.25)});
  cfg.fault.core_failures.push_back({cores[1][1], mid_run_instant(0.6)});
  cfg.recovery = fast_recovery();
  cfg.rcce.retry.max_attempts = 16;
  cfg.rcce.retry.timeout = SimTime::ms(2);

  const RunResult a = run_walkthrough(shared_scene(), shared_trace(), cfg);
  const RunResult b = run_walkthrough(shared_scene(), shared_trace(), cfg);
  // Whatever the outcome, it is the *same* outcome: the chaos cocktail is
  // fully seeded.
  EXPECT_EQ(a.fault.failed, b.fault.failed);
  EXPECT_EQ(a.fault.fingerprint, b.fault.fingerprint);
  EXPECT_EQ(a.walkthrough, b.walkthrough);
  EXPECT_EQ(a.recovery.failures_detected, b.recovery.failures_detected);
  EXPECT_EQ(a.recovery.frames_replayed, b.recovery.frames_replayed);
  EXPECT_EQ(a.recovery.frames_lost, b.recovery.frames_lost);
  ASSERT_EQ(a.frame_done_ms.size(), b.frame_done_ms.size());
  for (std::size_t i = 0; i < a.frame_done_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.frame_done_ms[i], b.frame_done_ms[i]);
  }
  // Both failures remap (spares abound on a 48-core chip), and the run
  // still accounts for every frame.
  ASSERT_FALSE(a.fault.failed) << a.fault.failure;
  EXPECT_EQ(a.recovery.failures_recovered, 2u);
  EXPECT_EQ(static_cast<unsigned>(a.frame_done_ms.size()) +
                static_cast<unsigned>(a.recovery.frames_lost),
            8u);
}

// ------------------------------------------------------- n-rend scenario

const RunResult& clean_nrend_run() {
  static RunResult* r = [] {
    RunConfig cfg = base_config();
    cfg.scenario = Scenario::RendererPerPipeline;
    return new RunResult(run_walkthrough(shared_scene(), shared_trace(), cfg));
  }();
  return *r;
}

TEST(Supervisor, RendererCoreFailureRemapsInNRend) {
  const RunResult& clean = clean_nrend_run();
  RunConfig cfg = base_config();
  cfg.scenario = Scenario::RendererPerPipeline;
  cfg.fault.seed = 4;
  cfg.fault.core_failures.push_back(
      {clean.placement.pipeline_cores[1][0],  // a renderer core
       SimTime::ms(clean.walkthrough.to_ms() * 0.3)});
  cfg.recovery = fast_recovery();
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  EXPECT_EQ(r.recovery.failures_recovered, 1u);
  EXPECT_EQ(r.recovery.spares_used, 1);
  EXPECT_EQ(r.recovery.frames_lost, 0u);
  EXPECT_GE(r.walkthrough, clean.walkthrough);
}

TEST(Supervisor, NRendWithoutSparesFailsGracefully) {
  const RunResult& clean = clean_nrend_run();
  RunConfig cfg = base_config();
  cfg.scenario = Scenario::RendererPerPipeline;
  cfg.fault.seed = 4;
  cfg.fault.core_failures.push_back(
      {clean.placement.pipeline_cores[1][0],
       SimTime::ms(clean.walkthrough.to_ms() * 0.3)});
  cfg.recovery = fast_recovery();
  cfg.recovery.max_spares = 0;
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  // Degrading n-rend would need surviving renderers to re-render with new
  // frusta mid-stream; the run fails with a typed error instead of hanging.
  EXPECT_TRUE(r.fault.failed);
  EXPECT_EQ(r.fault.failure_code, StatusCode::Unavailable);
}

// -------------------------------------------- unrecoverable single points

TEST(Supervisor, ProducerDeathFailsGracefully) {
  const CoreId victim = clean_run().placement.producer;
  const RunConfig cfg = core_fail_config(victim, 0.3);
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_TRUE(r.fault.failed);
  EXPECT_EQ(r.fault.failure_code, StatusCode::Unavailable);
  EXPECT_EQ(r.recovery.failures_detected, 1u);
  EXPECT_EQ(r.recovery.failures_recovered, 0u);
}

TEST(Supervisor, TransferDeathFailsGracefully) {
  // The transfer core doubles as the watchdog monitor; its death is
  // noticed by the run driver rather than by on-chip heartbeats, and the
  // run ends with a typed error instead of a silent hang.
  const CoreId victim = clean_run().placement.transfer;
  const RunConfig cfg = core_fail_config(victim, 0.3);
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_TRUE(r.fault.failed);
  EXPECT_EQ(r.fault.failure_code, StatusCode::Unavailable);
}

// ------------------------------------------------------- crc end-to-end

TEST(Supervisor, CorruptionIsCaughtAndRetriedNeverDeliveredSilently) {
  RunConfig cfg = base_config();
  cfg.fault.seed = 23;
  cfg.fault.rcce_corrupt_rate = 0.1;
  cfg.fault.host_corrupt_rate = 0.1;
  cfg.rcce.retry.max_attempts = 16;
  cfg.rcce.retry.timeout = SimTime::ms(2);
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  // Every frame still arrives — corruption behaves exactly like loss...
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  EXPECT_GT(r.fault.rcce_corrupts, 0u);
  EXPECT_GT(r.fault.host_corrupts, 0u);
  // ...because each detected corruption triggered a retransmission. (Were
  // any corrupt payload delivered as-is, the transport's CRC verification
  // would abort the run.)
  EXPECT_GE(r.fault.rcce_retransmissions, r.fault.rcce_corrupts);
  EXPECT_GE(r.fault.host_retransmissions, r.fault.host_corrupts);
}

// -------------------------------------------------------- config validation

// The CLI-facing guard: a detection deadline under two heartbeat periods
// declares a core dead after a single late heartbeat, which is a config
// mistake, not a tighter setting. It must be rejected before a run starts,
// with a typed error naming the flags.
TEST(RecoveryValidation, DeadlineUnderTwoHeartbeatsRejected) {
  RecoveryConfig cfg;
  cfg.heartbeat_period = SimTime::ms(10);
  cfg.detection_deadline = SimTime::ms(15);
  const Status st = validate_recovery(cfg);
  EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
  EXPECT_NE(st.message().find("--detect-ms"), std::string::npos);
  EXPECT_NE(st.message().find("--heartbeat-ms"), std::string::npos);
}

TEST(RecoveryValidation, ExactlyTwoHeartbeatsAccepted) {
  RecoveryConfig cfg;
  cfg.heartbeat_period = SimTime::ms(10);
  cfg.detection_deadline = SimTime::ms(20);
  EXPECT_TRUE(validate_recovery(cfg).ok());
}

TEST(RecoveryValidation, DefaultsAccepted) {
  EXPECT_TRUE(validate_recovery(RecoveryConfig{}).ok());
}

TEST(RecoveryValidation, NonPositiveHeartbeatRejected) {
  RecoveryConfig cfg;
  cfg.heartbeat_period = SimTime::zero();
  EXPECT_EQ(validate_recovery(cfg).code(), StatusCode::InvalidArgument);
}

}  // namespace
}  // namespace sccpipe
