#include <gtest/gtest.h>

#include <memory>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/filters/filters.hpp"

namespace sccpipe {
namespace {

/// Shared scene for all integration tests: small city, 120x120 frames,
/// 12-frame walkthrough, up to 4 pipelines. Built once per binary.
class WalkthroughFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityParams city;
    city.blocks_x = 5;
    city.blocks_z = 5;
    scene_ = new SceneBundle(city, CameraConfig{}, 120, 12);
    trace_ = new WorkloadTrace(WorkloadTrace::build(*scene_, 4));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete scene_;
    trace_ = nullptr;
    scene_ = nullptr;
  }

  static const SceneBundle& scene() { return *scene_; }
  static const WorkloadTrace& trace() { return *trace_; }

  static RunConfig config(Scenario s, int k,
                          Arrangement a = Arrangement::Ordered) {
    RunConfig cfg;
    cfg.scenario = s;
    cfg.pipelines = k;
    cfg.arrangement = a;
    return cfg;
  }

  static SceneBundle* scene_;
  static WorkloadTrace* trace_;
};

SceneBundle* WalkthroughFixture::scene_ = nullptr;
WorkloadTrace* WalkthroughFixture::trace_ = nullptr;

// ------------------------------------------------------------ WorkloadTrace

TEST_F(WalkthroughFixture, TraceDimensions) {
  EXPECT_EQ(trace().frame_count(), 12);
  EXPECT_EQ(trace().max_k(), 4);
  EXPECT_THROW(trace().load(0, 5, 0), CheckError);
  EXPECT_THROW(trace().load(12, 1, 0), CheckError);
  EXPECT_THROW(trace().load(0, 2, 2), CheckError);
}

TEST_F(WalkthroughFixture, TraceLoadsAreMeaningful) {
  const RenderLoad& whole = trace().whole(0);
  EXPECT_GT(whole.nodes_visited, 0.0);
  EXPECT_GT(whole.tris_accepted, 0.0);
  EXPECT_GT(whole.projected_pixels, 0.0);
  // Strips see no more triangles than the whole frame.
  for (int s = 0; s < 4; ++s) {
    EXPECT_LE(trace().load(3, 4, s).tris_accepted, 1.0 + whole.tris_accepted);
  }
}

// --------------------------------------------------------- one-core baseline

TEST_F(WalkthroughFixture, SingleCoreBreakdownCoversAllStages) {
  const SingleCoreBreakdown b =
      run_single_core(scene(), trace(), config(Scenario::SingleCore, 1));
  EXPECT_EQ(b.per_stage.size(), 7u);  // render + 5 filters + transfer
  SimTime sum = SimTime::zero();
  for (const auto& [kind, t] : b.per_stage) {
    EXPECT_GT(t, SimTime::zero()) << stage_name(kind);
    sum += t;
  }
  EXPECT_EQ(sum, b.total);
  // Blur dominates the filters (Fig. 8).
  EXPECT_GT(b.stage_time(StageKind::Blur), b.stage_time(StageKind::Sepia));
  EXPECT_GT(b.stage_time(StageKind::Blur), b.stage_time(StageKind::Swap));
}

TEST_F(WalkthroughFixture, SingleCoreReducedVariants) {
  const RunConfig cfg = config(Scenario::SingleCore, 1);
  const SingleCoreBreakdown full = run_single_core(scene(), trace(), cfg);
  const SingleCoreBreakdown rt =
      run_single_core(scene(), trace(), cfg, false, true);
  const SingleCoreBreakdown r =
      run_single_core(scene(), trace(), cfg, false, false);
  // Paper §VI-A: render+transfer ~104 s << full 382 s; render-only ~94 s.
  EXPECT_LT(rt.total, 0.5 * full.total);
  EXPECT_LT(r.total, rt.total);
  EXPECT_EQ(r.per_stage.size(), 1u);
}

// ------------------------------------------------------------ full pipeline

TEST_F(WalkthroughFixture, EveryScenarioCompletesAllFrames) {
  for (const Scenario s :
       {Scenario::SingleRenderer, Scenario::RendererPerPipeline,
        Scenario::HostRenderer}) {
    for (int k = 1; k <= 4; k += 3) {
      const RunResult r = run_walkthrough(scene(), trace(), config(s, k));
      EXPECT_EQ(r.frame_done_ms.size(), 12u) << scenario_name(s);
      EXPECT_GT(r.walkthrough, SimTime::zero());
      // Frames arrive in order.
      for (std::size_t i = 1; i < r.frame_done_ms.size(); ++i) {
        EXPECT_LT(r.frame_done_ms[i - 1], r.frame_done_ms[i]);
      }
    }
  }
}

TEST_F(WalkthroughFixture, PipeliningBeatsSingleCore) {
  const SingleCoreBreakdown base =
      run_single_core(scene(), trace(), config(Scenario::SingleCore, 1));
  const RunResult r =
      run_walkthrough(scene(), trace(), config(Scenario::SingleRenderer, 1));
  EXPECT_LT(r.walkthrough, base.total);
}

TEST_F(WalkthroughFixture, MorePipelinesNeverMuchSlower) {
  for (const Scenario s :
       {Scenario::RendererPerPipeline, Scenario::HostRenderer}) {
    SimTime prev = SimTime::zero();
    for (int k = 1; k <= 4; ++k) {
      const RunResult r = run_walkthrough(scene(), trace(), config(s, k));
      if (k > 1) {
        EXPECT_LT(r.walkthrough, prev * 1.1)
            << scenario_name(s) << " k=" << k;
      }
      prev = r.walkthrough;
    }
  }
}

TEST_F(WalkthroughFixture, RunsAreDeterministic) {
  const RunResult a =
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 3));
  const RunResult b =
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 3));
  EXPECT_EQ(a.walkthrough, b.walkthrough);
  EXPECT_EQ(a.frame_done_ms, b.frame_done_ms);
  EXPECT_EQ(a.chip_energy_joules, b.chip_energy_joules);
}

TEST_F(WalkthroughFixture, ArrangementsAreWithinNoiseOfEachOther) {
  // The paper's central null result (§VI-A): arrangement does not matter.
  for (const Scenario s :
       {Scenario::SingleRenderer, Scenario::RendererPerPipeline,
        Scenario::HostRenderer}) {
    const double t_unordered =
        run_walkthrough(scene(), trace(),
                        config(s, 3, Arrangement::Unordered))
            .walkthrough.to_sec();
    const double t_ordered =
        run_walkthrough(scene(), trace(), config(s, 3, Arrangement::Ordered))
            .walkthrough.to_sec();
    const double t_flipped =
        run_walkthrough(scene(), trace(), config(s, 3, Arrangement::Flipped))
            .walkthrough.to_sec();
    EXPECT_NEAR(t_unordered / t_ordered, 1.0, 0.06) << scenario_name(s);
    EXPECT_NEAR(t_flipped / t_ordered, 1.0, 0.06) << scenario_name(s);
  }
}

TEST_F(WalkthroughFixture, StageReportsAreComplete) {
  const RunResult r =
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 2));
  // 2 pipelines x 5 filters + connect + transfer.
  EXPECT_EQ(r.stages.size(), 12u);
  const StageReport* blur = r.stage(StageKind::Blur, 1);
  ASSERT_NE(blur, nullptr);
  EXPECT_EQ(blur->frames, 12);
  EXPECT_GT(blur->busy_ms, 0.0);
  EXPECT_EQ(blur->wait_ms.count, 12u);
  const StageReport* connect = r.stage(StageKind::Connect);
  ASSERT_NE(connect, nullptr);
  EXPECT_GT(connect->busy_ms, 0.0);
}

TEST_F(WalkthroughFixture, WalkthroughAtLeastMaxStageBusy) {
  // Lower bound: the pipeline can never beat its busiest stage.
  const RunResult r =
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 2));
  for (const StageReport& st : r.stages) {
    EXPECT_GE(r.walkthrough.to_ms(), st.busy_ms);
  }
}

TEST_F(WalkthroughFixture, PowerAndEnergyAccounting) {
  const RunResult a =
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 1));
  const RunResult b =
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 4));
  // More pipelines -> more allocated cores -> higher mean power (Fig. 14).
  EXPECT_GT(b.mean_chip_watts, a.mean_chip_watts);
  // Energy == mean power x duration (definition consistency).
  EXPECT_NEAR(a.chip_energy_joules,
              a.mean_chip_watts * a.walkthrough.to_sec(),
              0.01 * a.chip_energy_joules);
  // The host worked (rendered) and its extra energy is accounted.
  EXPECT_GT(a.host_busy_sec, 0.0);
  EXPECT_NEAR(a.host_extra_energy_joules, a.host_busy_sec * 28.0, 1e-6);
}

TEST_F(WalkthroughFixture, HostSpendsLittleTimeBusy) {
  // §VI-B: the MCPC idles most of the run.
  const RunResult r =
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 4));
  EXPECT_LT(r.host_busy_sec, 0.3 * r.walkthrough.to_sec());
}

TEST_F(WalkthroughFixture, DvfsBlurBoostSpeedsUpAndCostsPower) {
  RunConfig base = config(Scenario::HostRenderer, 1);
  base.isolate_blur_tile = true;
  RunConfig fast = base;
  fast.blur_mhz = 800;
  const RunResult r0 = run_walkthrough(scene(), trace(), base);
  const RunResult r1 = run_walkthrough(scene(), trace(), fast);
  EXPECT_LT(r1.walkthrough.to_sec(), 0.85 * r0.walkthrough.to_sec());
  EXPECT_GT(r1.mean_chip_watts, r0.mean_chip_watts + 1.0);
  // Fig. 16: the gain is clearly below the 1.5x frequency ratio.
  EXPECT_GT(r1.walkthrough.to_sec(), r0.walkthrough.to_sec() / 1.5);
}

TEST_F(WalkthroughFixture, DvfsTailSlowdownSavesPowerNotTime) {
  RunConfig fast = config(Scenario::HostRenderer, 1);
  fast.isolate_blur_tile = true;
  fast.blur_mhz = 800;
  RunConfig mixed = fast;
  mixed.tail_mhz = 400;
  const RunResult r1 = run_walkthrough(scene(), trace(), fast);
  const RunResult r2 = run_walkthrough(scene(), trace(), mixed);
  // §VI-D: performance similar, power lower.
  EXPECT_NEAR(r2.walkthrough.to_sec(), r1.walkthrough.to_sec(),
              0.12 * r1.walkthrough.to_sec());
  EXPECT_LT(r2.mean_chip_watts, r1.mean_chip_watts - 2.0);
}

TEST_F(WalkthroughFixture, ClusterIsMuchFasterThanScc) {
  // Fig. 13: modern HPC cores finish the walkthrough several times sooner.
  for (const Scenario s :
       {Scenario::SingleRenderer, Scenario::RendererPerPipeline}) {
    RunConfig scc = config(s, 3);
    RunConfig hpc = scc;
    hpc.platform = PlatformKind::Cluster;
    const RunResult a = run_walkthrough(scene(), trace(), scc);
    const RunResult b = run_walkthrough(scene(), trace(), hpc);
    EXPECT_LT(b.walkthrough.to_sec(), 0.3 * a.walkthrough.to_sec())
        << scenario_name(s);
  }
}

TEST_F(WalkthroughFixture, DownstreamStagesWaitOnTheirInput) {
  // Fig. 15's concept: with one pipeline, the cheap stages spend most of
  // the cycle waiting while blur works.
  const RunResult r =
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 1));
  const StageReport* blur = r.stage(StageKind::Blur, 0);
  const StageReport* scratch = r.stage(StageKind::Scratch, 0);
  ASSERT_NE(blur, nullptr);
  ASSERT_NE(scratch, nullptr);
  EXPECT_GT(scratch->wait_ms.median, blur->wait_ms.median);
}

TEST_F(WalkthroughFixture, FabricReportAccountsTraffic) {
  const RunResult r =
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 3));
  // Every frame's strips cross the mesh and the controllers repeatedly.
  const double frame_bytes = 120.0 * 120.0 * 4.0;
  EXPECT_GT(r.fabric.mesh_total_bytes, 12.0 * frame_bytes);
  EXPECT_GT(r.fabric.mesh_max_link_bytes, 0.0);
  EXPECT_LE(r.fabric.mesh_max_link_bytes, r.fabric.mesh_total_bytes);
  ASSERT_EQ(r.fabric.mc_bulk_bytes.size(), 4u);
  double mc_sum = 0.0;
  for (const double b : r.fabric.mc_bulk_bytes) mc_sum += b;
  EXPECT_GT(mc_sum, 2.0 * 12.0 * frame_bytes);  // the DRAM bounce
}

TEST_F(WalkthroughFixture, RenderersRegisterAsLatencyStreams) {
  const RunResult r = run_walkthrough(
      scene(), trace(), config(Scenario::RendererPerPipeline, 4));
  std::uint64_t peak = 0;
  for (const std::uint64_t p : r.fabric.mc_latency_streams_peak) {
    peak = std::max(peak, p);
  }
  EXPECT_GE(peak, 1u);  // concurrent octree walkers were observed
}

TEST_F(WalkthroughFixture, LocalMemoryBanksReduceMcTraffic) {
  RunConfig base = config(Scenario::HostRenderer, 2);
  RunConfig banks = base;
  banks.rcce.local_memory_banks = true;
  const RunResult a = run_walkthrough(scene(), trace(), base);
  const RunResult b = run_walkthrough(scene(), trace(), banks);
  double mc_a = 0.0, mc_b = 0.0;
  for (const double v : a.fabric.mc_bulk_bytes) mc_a += v;
  for (const double v : b.fabric.mc_bulk_bytes) mc_b += v;
  EXPECT_LT(mc_b, 0.7 * mc_a);  // the bounce is gone
  EXPECT_LE(b.walkthrough, a.walkthrough);
}

TEST_F(WalkthroughFixture, TraceTooSmallRejected) {
  EXPECT_THROW(
      run_walkthrough(scene(), trace(), config(Scenario::HostRenderer, 5)),
      CheckError);
  EXPECT_THROW(run_walkthrough(scene(), trace(),
                               config(Scenario::SingleCore, 1)),
               CheckError);
}

// ------------------------------------------------------- functional pixels

/// Reference pipeline: what the viewer should see for frame f with k
/// strips — render, per-strip filters, mirrored assembly.
Image reference_frame(const SceneBundle& scene, int frame, int k,
                      std::uint64_t seed) {
  const Image whole = scene.renderer().render(scene.path().view(frame));
  const int side = scene.image_side();
  Image out(side, side);
  for (const StripRange& s : divide_rows(side, k)) {
    Image strip = whole.strip(s);
    apply_sepia(strip);
    apply_blur(strip);
    apply_scratches(strip, scratch_params_for_frame(seed, frame, side));
    apply_flicker(strip, flicker_params_for_frame(seed, frame));
    apply_vflip(strip);
    out.paste(strip, side - s.y0 - s.rows);
  }
  return out;
}

TEST_F(WalkthroughFixture, FunctionalPipelineMatchesReference) {
  for (const Scenario s :
       {Scenario::SingleRenderer, Scenario::HostRenderer}) {
    RunConfig cfg = config(s, 3);
    cfg.functional = true;
    const RunResult r = run_walkthrough(scene(), trace(), cfg);
    ASSERT_EQ(r.frames.size(), 12u) << scenario_name(s);
    for (const int f : {0, 5, 11}) {
      EXPECT_EQ(r.frames[static_cast<std::size_t>(f)],
                reference_frame(scene(), f, 3, cfg.seed))
          << scenario_name(s) << " frame " << f;
    }
  }
}

TEST_F(WalkthroughFixture, FunctionalRendererPerPipelineMatchesReference) {
  RunConfig cfg = config(Scenario::RendererPerPipeline, 2);
  cfg.functional = true;
  const RunResult r = run_walkthrough(scene(), trace(), cfg);
  ASSERT_EQ(r.frames.size(), 12u);
  // Per-strip rendering equals whole-frame rendering (sort-first), so the
  // same reference applies.
  EXPECT_EQ(r.frames[4], reference_frame(scene(), 4, 2, cfg.seed));
}

TEST_F(WalkthroughFixture, FunctionalOutputIndependentOfTiming) {
  // Same scenario, different arrangements: identical pixels.
  RunConfig a = config(Scenario::HostRenderer, 3, Arrangement::Unordered);
  RunConfig b = config(Scenario::HostRenderer, 3, Arrangement::Flipped);
  a.functional = b.functional = true;
  const RunResult ra = run_walkthrough(scene(), trace(), a);
  const RunResult rb = run_walkthrough(scene(), trace(), b);
  EXPECT_EQ(ra.frames[7], rb.frames[7]);
}

}  // namespace
}  // namespace sccpipe
