#include <gtest/gtest.h>

#include "sccpipe/core/stage.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

const Calibration kCal = Calibration::defaults();
constexpr double kFramePixels = 400.0 * 400.0;

TEST(StageNames, AllDistinct) {
  EXPECT_STREQ(stage_name(StageKind::Render), "render");
  EXPECT_STREQ(stage_name(StageKind::Blur), "blur");
  EXPECT_STREQ(stage_name(StageKind::Transfer), "transfer");
  EXPECT_STREQ(stage_name(StageKind::Connect), "connect");
}

TEST(FilterWork, BlurIsTheMostExpensiveFilter) {
  // Paper §IV / Fig. 8: "This stage was the most time consuming stage."
  const double blur = filter_work(kCal, StageKind::Blur, kFramePixels).cycles;
  for (const StageKind k : {StageKind::Sepia, StageKind::Scratch,
                            StageKind::Flicker, StageKind::Swap}) {
    EXPECT_GT(blur, filter_work(kCal, k, kFramePixels).cycles)
        << stage_name(k);
  }
}

TEST(FilterWork, AnchoredToFig8Breakdown) {
  // At 533 MHz, the whole-frame stage times that reproduce the 382 s
  // single-core walkthrough: blur ~525 ms, sepia ~60 ms, flicker ~38 ms,
  // swap ~50 ms (DESIGN.md calibration table).
  auto ms_at_533 = [](double cycles) { return cycles / 533e6 * 1e3; };
  EXPECT_NEAR(ms_at_533(filter_work(kCal, StageKind::Blur, kFramePixels).cycles),
              525.0, 55.0);
  EXPECT_NEAR(ms_at_533(filter_work(kCal, StageKind::Sepia, kFramePixels).cycles),
              60.0, 10.0);
  EXPECT_NEAR(ms_at_533(filter_work(kCal, StageKind::Flicker, kFramePixels).cycles),
              38.0, 8.0);
  EXPECT_NEAR(ms_at_533(filter_work(kCal, StageKind::Swap, kFramePixels).cycles),
              50.0, 10.0);
}

TEST(FilterWork, ScalesLinearlyWithPixels) {
  for (const StageKind k : {StageKind::Sepia, StageKind::Blur,
                            StageKind::Flicker, StageKind::Swap}) {
    const StageWork whole = filter_work(kCal, k, kFramePixels);
    const StageWork strip = filter_work(kCal, k, kFramePixels / 7.0);
    EXPECT_NEAR(whole.cycles / strip.cycles, 7.0, 1e-9) << stage_name(k);
    EXPECT_NEAR(whole.dram_bytes / strip.dram_bytes, 7.0, 1e-9);
  }
}

TEST(FilterWork, ScratchHasConstantBaseAndCountScaling) {
  const StageWork few = filter_work(kCal, StageKind::Scratch, kFramePixels, 2);
  const StageWork many =
      filter_work(kCal, StageKind::Scratch, kFramePixels, 12);
  EXPECT_GT(many.cycles, few.cycles);
  // Zero pixels still costs the base (parameter drawing etc.).
  const StageWork none = filter_work(kCal, StageKind::Scratch, 0.0, 6);
  EXPECT_DOUBLE_EQ(none.cycles, kCal.scratch_base_cycles);
}

TEST(FilterWork, TrafficFollowsStripBytes) {
  const StageWork w = filter_work(kCal, StageKind::Sepia, 1000.0);
  EXPECT_DOUBLE_EQ(w.dram_bytes, kCal.filter_traffic_factor * 4000.0);
  EXPECT_DOUBLE_EQ(w.walk_accesses, 0.0);  // filters stream, never walk
}

TEST(FilterWork, RenderIsNotAFilter) {
  EXPECT_THROW(filter_work(kCal, StageKind::Render, 100.0), CheckError);
  EXPECT_THROW(filter_work(kCal, StageKind::Transfer, 100.0), CheckError);
}

TEST(RenderWork, SplitsWalkAndCompute) {
  RenderLoad load;
  load.nodes_visited = 400;
  load.tris_accepted = 7000;
  load.projected_pixels = 300000;
  const StageWork w = render_work(kCal, load, false);
  EXPECT_GT(w.walk_accesses, 0.0);
  EXPECT_DOUBLE_EQ(w.walk_accesses, kCal.cull_accesses_per_node * 400 +
                                        kCal.cull_accesses_per_tri * 7000);
  EXPECT_GT(w.cycles, 0.0);
  EXPECT_DOUBLE_EQ(w.dram_bytes, kCal.render_traffic_per_pixel * 300000);
}

TEST(RenderWork, FrustumAdjustAddsCycles) {
  RenderLoad load;
  load.tris_accepted = 1000;
  const StageWork plain = render_work(kCal, load, false);
  const StageWork adjusted = render_work(kCal, load, true);
  EXPECT_DOUBLE_EQ(adjusted.cycles - plain.cycles,
                   kCal.frustum_adjust_cycles);
  EXPECT_DOUBLE_EQ(adjusted.walk_accesses, plain.walk_accesses);
}

TEST(AssembleWork, ScalesWithFrameBytes) {
  const double frame = 640.0 * 1024.0;
  const StageWork w = assemble_work(kCal, frame);
  EXPECT_DOUBLE_EQ(w.cycles, kCal.assemble_cycles_per_byte * frame);
  EXPECT_DOUBLE_EQ(w.dram_bytes, kCal.assemble_traffic_factor * frame);
}

TEST(Calibration, SingleCoreFrameBudgetNearPaper) {
  // Sum of all stage compute at 533 MHz for one 400x400 frame should be in
  // the vicinity of the paper's 955 ms/frame (renders + filters + send;
  // memory time comes on top in the simulation).
  RenderLoad load;
  load.nodes_visited = 411;
  load.tris_accepted = 6836;
  load.projected_pixels = 400000;
  double cycles = render_work(kCal, load, false).cycles;
  for (const StageKind k : {StageKind::Sepia, StageKind::Blur,
                            StageKind::Scratch, StageKind::Flicker,
                            StageKind::Swap}) {
    cycles += filter_work(kCal, k, kFramePixels).cycles;
  }
  const double ms = cycles / 533e6 * 1e3;
  EXPECT_GT(ms, 700.0);
  EXPECT_LT(ms, 1000.0);
}

}  // namespace
}  // namespace sccpipe
