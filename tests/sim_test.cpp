#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <vector>

#include "sccpipe/sim/fair_share.hpp"
#include "sccpipe/sim/reference_scheduler.hpp"
#include "sccpipe/sim/resource.hpp"
#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/sim/trace.hpp"
#include "sccpipe/support/check.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

// --------------------------------------------------------------- Simulator

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3_ms, [&] { order.push_back(3); });
  sim.schedule_at(1_ms, [&] { order.push_back(1); });
  sim.schedule_at(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3_ms);
}

TEST(Simulator, FifoAtEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5_ms, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime seen = SimTime::zero();
  sim.schedule_at(2_ms, [&] {
    sim.schedule_after(3_ms, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 5_ms);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_at(1_ms, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::us(500), [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(SimTime::ms(-1), [] {}), CheckError);
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool ran = false;
  auto h = sim.schedule_at(1_ms, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // double cancel fails
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.dispatched(), 0u);
}

TEST(Simulator, CancelAfterRunFails) {
  Simulator sim;
  auto h = sim.schedule_at(1_ms, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1_ms, [&] { ++count; });
  sim.schedule_at(2_ms, [&] { ++count; });
  sim.schedule_at(5_ms, [&] { ++count; });
  sim.run_until(2_ms);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, StaleHandleAfterSlotReuseFails) {
  // Cancelling frees the event's slot for reuse; a stale handle to the old
  // occupant must not cancel the new one.
  Simulator sim;
  bool first = false, second = false;
  auto h1 = sim.schedule_at(1_ms, [&] { first = true; });
  EXPECT_TRUE(sim.cancel(h1));
  auto h2 = sim.schedule_at(2_ms, [&] { second = true; });  // may reuse slot
  EXPECT_FALSE(sim.cancel(h1));  // stale: must miss
  sim.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  EXPECT_TRUE(h2.valid());
}

TEST(Simulator, RunUntilSkipsCancelledFrontWithoutOverrunning) {
  // A cancelled event earlier than the deadline must not cause run_until to
  // dispatch a live event that lies beyond the deadline.
  Simulator sim;
  int count = 0;
  auto h = sim.schedule_at(1_ms, [&] { ++count; });
  sim.schedule_at(5_ms, [&] { ++count; });
  sim.cancel(h);
  sim.run_until(2_ms);
  EXPECT_EQ(count, 0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilMidHeapWithTombstonesAndSameCycleCancel) {
  // The tombstone-peek path: run_until must stop mid-heap while cancelled
  // entries are still buried in it — including one cancelled *during the
  // deadline cycle itself*, after dispatch of that cycle has begun — and
  // the resume primitives (next_event_time / run_before / run) must skip
  // every corpse without dispatching it.
  Simulator sim;
  std::vector<int> fired;
  auto arm = [&](int id, SimTime at) {
    return sim.schedule_at(at, [&fired, id] { fired.push_back(id); });
  };
  EventHandle at3_second;  // shares the deadline cycle, cancelled mid-cycle
  EventHandle at5;
  arm(1, 1_ms);
  arm(2, 2_ms);
  sim.schedule_at(3_ms, [&] {
    fired.push_back(3);
    // Same-cycle cancel: this event has the deadline timestamp and sits in
    // the cycle currently dispatching, but has not run yet.
    EXPECT_TRUE(sim.cancel(at3_second));
    // And one beyond the deadline, leaving a tombstone mid-heap.
    EXPECT_TRUE(sim.cancel(at5));
  });
  at3_second = arm(30, 3_ms);
  auto at4a = arm(40, 4_ms);
  auto at4b = arm(41, 4_ms);
  at5 = arm(5, 5_ms);
  arm(7, 7_ms);
  arm(8, 8_ms);
  arm(9, 9_ms);
  // Pre-run tombstones sitting between the deadline and the survivors.
  EXPECT_TRUE(sim.cancel(at4a));
  EXPECT_TRUE(sim.cancel(at4b));

  sim.run_until(3_ms);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3_ms);
  // Live survivors: 7, 8, 9; the 4 ms / 5 ms tombstones are still heaped.
  EXPECT_EQ(sim.pending(), 3u);
  // next_event_time discards the surfaced corpses to find the first live
  // event, without dispatching anything.
  EXPECT_EQ(sim.next_event_time(), 7_ms);
  EXPECT_EQ(fired.size(), 3u);
  // Every cancelled handle is spent.
  EXPECT_FALSE(sim.cancel(at4a));
  EXPECT_FALSE(sim.cancel(at5));
  EXPECT_FALSE(sim.cancel(at3_second));

  // run_before is exclusive: the event at exactly the bound stays pending.
  sim.run_before(9_ms);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 7, 8}));
  EXPECT_EQ(sim.next_event_time(), 9_ms);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 7, 8, 9}));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, NextEventTimeAndRunBeforeAreWindowPrimitives) {
  // The two primitives the partitioned engine is built on: peek the next
  // live timestamp, drain the half-open window [now, bound).
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), SimTime::max());
  int count = 0;
  sim.schedule_at(2_ms, [&] { ++count; });
  EXPECT_EQ(sim.next_event_time(), 2_ms);
  sim.run_before(2_ms);  // exclusive: nothing runs at exactly the bound
  EXPECT_EQ(count, 0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_before(2_ms + SimTime::ns(1));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.next_event_time(), SimTime::max());
}

TEST(Simulator, StressScheduleCancelCycles) {
  // >10k schedule/cancel cycles modelled on the RCCE retry pattern: every
  // transfer arms a timeout that is almost always cancelled when the reply
  // beats it. The old implementation re-sorted the tombstone list per
  // cancel (quadratic); this asserts correctness at a scale where that
  // would dominate, and the ctest timeout catches any blow-up.
  Simulator sim;
  const int kCycles = 12000;
  int replies = 0, timeouts = 0;
  std::function<void(int)> transfer = [&](int i) {
    if (i >= kCycles) return;
    auto timeout = sim.schedule_after(10_ms, [&] { ++timeouts; });
    sim.schedule_after(1_ms, [&, timeout, i] {
      ++replies;
      EXPECT_TRUE(sim.cancel(timeout));
      transfer(i + 1);
    });
  };
  transfer(0);
  sim.run();
  EXPECT_EQ(replies, kCycles);
  EXPECT_EQ(timeouts, 0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.dispatched(), static_cast<std::uint64_t>(kCycles));
  EXPECT_EQ(sim.now(), SimTime::ms(kCycles));
}

TEST(Simulator, StressMixedCancellationKeepsOrderAndCounts) {
  // Bulk schedule + cancel every other event, across enough events to force
  // several lazy compactions; survivors must still dispatch in (time, seq)
  // order with exact pending/dispatched accounting.
  Simulator sim;
  const int kEvents = 20000;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  handles.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    // Colliding timestamps (i / 4) exercise the seq tie-break too.
    handles.push_back(
        sim.schedule_at(SimTime::us(i / 4), [&fired, i] { fired.push_back(i); }));
  }
  int cancelled = 0;
  for (int i = 0; i < kEvents; i += 2) {
    EXPECT_TRUE(sim.cancel(handles[static_cast<std::size_t>(i)]));
    EXPECT_FALSE(sim.cancel(handles[static_cast<std::size_t>(i)]));
    ++cancelled;
  }
  EXPECT_EQ(sim.pending(), static_cast<std::size_t>(kEvents - cancelled));
  sim.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kEvents - cancelled));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  for (const int i : fired) EXPECT_EQ(i % 2, 1);
  EXPECT_EQ(sim.dispatched(), static_cast<std::uint64_t>(kEvents - cancelled));
  for (int i = 1; i < kEvents; i += 2) {
    EXPECT_FALSE(sim.cancel(handles[static_cast<std::size_t>(i)]));
  }
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1_us, chain);
  };
  sim.schedule_after(1_us, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), SimTime::us(100));
}

// ------------------------------------------------------------- FlowResource

TEST(FlowResource, SerialisesOverlappingRequests) {
  FlowResource r("link");
  EXPECT_EQ(r.acquire(SimTime::zero(), 10_ms), 10_ms);
  // Arrives at 5 ms but must wait until 10 ms.
  EXPECT_EQ(r.acquire(5_ms, 10_ms), 20_ms);
  EXPECT_EQ(r.queue_delay(), 5_ms);
  EXPECT_EQ(r.busy_time(), 20_ms);
  EXPECT_EQ(r.request_count(), 2u);
}

TEST(FlowResource, IdleGapNoQueueing) {
  FlowResource r("link");
  r.acquire(SimTime::zero(), 1_ms);
  EXPECT_EQ(r.acquire(10_ms, 1_ms), 11_ms);
  EXPECT_EQ(r.queue_delay(), SimTime::zero());
}

TEST(FlowResource, ServesInCallOrderEvenWithEarlierTimestamps) {
  // Downstream mesh links see arrival times computed ahead of simulated
  // time; the resource serialises in call order.
  FlowResource r("link");
  EXPECT_EQ(r.acquire(5_ms, 1_ms), 6_ms);
  EXPECT_EQ(r.acquire(4_ms, 1_ms), 7_ms);  // queued behind the first
}

TEST(FlowResource, Utilization) {
  FlowResource r("link");
  r.acquire(SimTime::zero(), 5_ms);
  EXPECT_DOUBLE_EQ(r.utilization(10_ms), 0.5);
}

// --------------------------------------------------------- FairShareResource

// Completion events are rounded up to the next nanosecond (see
// FairShareResource::reschedule), so completion times match to ~2 ns.
void expect_near_time(SimTime actual, SimTime expected) {
  EXPECT_LE(std::abs(actual.to_ns() - expected.to_ns()), 4)
      << "actual=" << actual.to_string()
      << " expected=" << expected.to_string();
}

TEST(FairShare, SingleFlowFullRate) {
  Simulator sim;
  FairShareResource r(sim, "mc", 100.0);  // 100 B/s
  SimTime done = SimTime::zero();
  r.start_flow(50.0, [&] { done = sim.now(); });
  sim.run();
  expect_near_time(done, SimTime::ms(500));
}

TEST(FairShare, TwoFlowsShareBandwidth) {
  Simulator sim;
  FairShareResource r(sim, "mc", 100.0);
  SimTime done_a, done_b;
  r.start_flow(50.0, [&] { done_a = sim.now(); });
  r.start_flow(50.0, [&] { done_b = sim.now(); });
  sim.run();
  // Both drain at 50 B/s -> 1 s each.
  expect_near_time(done_a, 1_sec);
  expect_near_time(done_b, 1_sec);
}

TEST(FairShare, LateArrivalStretchesFirstFlow) {
  Simulator sim;
  FairShareResource r(sim, "mc", 100.0);
  SimTime done_a, done_b;
  r.start_flow(100.0, [&] { done_a = sim.now(); });  // alone: 1 s
  sim.schedule_at(SimTime::ms(500), [&] {
    r.start_flow(50.0, [&] { done_b = sim.now(); });
  });
  sim.run();
  // A has 50 B left at 0.5 s, then drains at 50 B/s -> finishes at 1.5 s.
  // B's 50 B at 50 B/s -> also 1.5 s.
  expect_near_time(done_a, SimTime::ms(1500));
  expect_near_time(done_b, SimTime::ms(1500));
}

TEST(FairShare, RateCapLimitsBelowShare) {
  Simulator sim;
  FairShareResource r(sim, "mc", 1000.0);
  SimTime done = SimTime::zero();
  r.start_flow(100.0, [&] { done = sim.now(); }, /*rate_cap=*/10.0);
  sim.run();
  expect_near_time(done, SimTime::sec(10));
}

TEST(FairShare, ZeroByteFlowCompletesImmediately) {
  Simulator sim;
  FairShareResource r(sim, "mc", 100.0);
  bool done = false;
  r.start_flow(0.0, [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_EQ(r.active_flows(), 0u);
}

TEST(FairShare, CompletionCallbackCanChainFlows) {
  Simulator sim;
  FairShareResource r(sim, "mc", 100.0);
  SimTime second_done = SimTime::zero();
  r.start_flow(100.0, [&] {
    r.start_flow(100.0, [&] { second_done = sim.now(); });
  });
  sim.run();
  expect_near_time(second_done, 2_sec);
  EXPECT_EQ(r.flows_completed(), 2u);
}

TEST(FairShare, ManyConcurrentFlowsAllFinish) {
  Simulator sim;
  FairShareResource r(sim, "mc", 1000.0);
  int finished = 0;
  for (int i = 1; i <= 10; ++i) {
    r.start_flow(i * 10.0, [&] { ++finished; });
  }
  sim.run();
  EXPECT_EQ(finished, 10);
  EXPECT_DOUBLE_EQ(r.bytes_completed(), 550.0);
}

// ------------------------------------------------------------------- Trace

TEST(StepTrace, ValueAtTime) {
  StepTrace t;
  t.record(1_sec, 10.0);
  t.record(2_sec, 20.0);
  EXPECT_EQ(t.at(SimTime::ms(500)), 0.0);
  EXPECT_EQ(t.at(1_sec), 10.0);
  EXPECT_EQ(t.at(SimTime::ms(1500)), 10.0);
  EXPECT_EQ(t.at(3_sec), 20.0);
}

TEST(StepTrace, Integration) {
  StepTrace t;
  t.record(SimTime::zero(), 10.0);
  t.record(1_sec, 20.0);
  // 10 W for 1 s + 20 W for 1 s = 30 J.
  EXPECT_DOUBLE_EQ(t.integrate(SimTime::zero(), 2_sec), 30.0);
  EXPECT_DOUBLE_EQ(t.integrate(SimTime::ms(500), SimTime::ms(1500)),
                   5.0 + 10.0);
}

TEST(StepTrace, CoalescesEqualValues) {
  StepTrace t;
  t.record(SimTime::zero(), 5.0);
  t.record(1_sec, 5.0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(StepTrace, OverwriteAtSameInstant) {
  StepTrace t;
  t.record(1_sec, 5.0);
  t.record(1_sec, 7.0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.at(1_sec), 7.0);
}

TEST(StepTrace, SampleGrid) {
  StepTrace t;
  t.record(SimTime::zero(), 1.0);
  t.record(2_sec, 3.0);
  const auto samples = t.sample(SimTime::zero(), 4_sec, 1_sec);
  EXPECT_EQ(samples, (std::vector<double>{1.0, 1.0, 3.0, 3.0, 3.0}));
}

TEST(StepTrace, RejectsTimeTravel) {
  StepTrace t;
  t.record(2_sec, 1.0);
  EXPECT_THROW(t.record(1_sec, 2.0), CheckError);
}

// ------------------------------------------------------- allocation-free

TEST(SimulatorStats, SteadyStateChurnPerformsNoAllocations) {
  // A retry-heavy workload: every dispatched event schedules a successor
  // and arms a timeout that is almost always cancelled. After warm-up the
  // slot pool and key heap are saturated, so further schedule/cancel/
  // dispatch churn must not grow any container.
  Simulator sim(64);
  Rng rng{0xbeefcafe};
  std::vector<EventHandle> timeouts;
  std::uint64_t fired = 0;
  std::function<void()> body = [&] {
    ++fired;
    // Arm a timeout, cancel a previously armed one (the common retry
    // pattern: most timeouts never fire).
    timeouts.push_back(sim.schedule_after(
        SimTime::ms(5.0 + static_cast<double>(rng.below(10))), [] {}));
    if (timeouts.size() > 4) {
      sim.cancel(timeouts.front());
      timeouts.erase(timeouts.begin());
    }
    if (fired < 50'000) {
      sim.schedule_after(SimTime::us(static_cast<double>(rng.below(100))),
                         [&] { body(); });
    }
  };
  sim.schedule_after(1_us, [&] { body(); });

  // Warm up: let the pools reach their steady-state footprint.
  while (fired < 5'000 && sim.step()) {
  }
  const std::uint64_t allocs_after_warmup = sim.stats().allocs;
  sim.run();
  EXPECT_EQ(fired, 50'000u);
  EXPECT_EQ(sim.stats().allocs, allocs_after_warmup)
      << "steady-state schedule/cancel/dispatch must not allocate";
  EXPECT_GE(sim.stats().peak_events, 4u);
}

TEST(SimulatorStats, ReserveUpFrontAvoidsAllGrowth) {
  Simulator sim(1024);
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(SimTime::us(static_cast<double>(i)), [] {});
  }
  EXPECT_EQ(sim.stats().allocs, 0u);
  EXPECT_EQ(sim.stats().peak_events, 1000u);
  sim.run();
  EXPECT_EQ(sim.stats().allocs, 0u);
}

// --------------------------------------------- old-vs-new dispatch order

// One chaos workload, driven twice — once on the allocation-free SoA
// engine, once on the reference AoS/std::function engine — recording every
// dispatch as (time, event id). The traces must match exactly: the SoA
// rewrite changed the heap layout, not the dispatch order.
TEST(SimulatorDeterminism, MatchesReferenceSchedulerOnChaosWorkload) {
  struct Dispatch {
    std::int64_t at_ns;
    int id;
    bool operator==(const Dispatch&) const = default;
  };

  // Engine-agnostic driver: `schedule(delay_us, id)` and `cancel_oldest()`
  // express the workload; each engine supplies its own implementations.
  struct Driver {
    std::function<void(int, int)> schedule;  // (delay_us, id)
    std::function<void()> cancel_oldest;
  };
  constexpr int kSeedEvents = 40;
  constexpr int kChainLen = 60;
  auto run_workload = [](Driver d) {
    Rng rng{0x5cc9e7e1};
    for (int i = 0; i < kSeedEvents; ++i) {
      d.schedule(static_cast<int>(rng.below(50)), i);
    }
    // Interleave cancellations: every third seed event's successor chain
    // is cut short by cancelling the oldest pending timeout.
    for (int i = 0; i < kSeedEvents / 3; ++i) d.cancel_oldest();
  };

  // --- optimised engine -------------------------------------------------
  std::vector<Dispatch> trace_new;
  {
    Simulator sim;
    std::vector<EventHandle> pending;
    std::function<void(int, int)> sched = [&](int delay_us, int id) {
      pending.push_back(sim.schedule_after(
          SimTime::us(static_cast<double>(delay_us)), [&, id] {
            trace_new.push_back(Dispatch{sim.now().to_ns(), id});
            if (id < kSeedEvents * kChainLen) {
              sched((id * 7 + 3) % 41, id + kSeedEvents);
            }
          }));
    };
    run_workload(Driver{[&](int delay, int id) { sched(delay, id); },
                        [&] {
                          if (!pending.empty()) {
                            sim.cancel(pending.front());
                            pending.erase(pending.begin());
                          }
                        }});
    sim.run();
  }

  // --- reference engine -------------------------------------------------
  std::vector<Dispatch> trace_ref;
  {
    reference::Scheduler sim;
    std::vector<reference::Scheduler::Handle> pending;
    std::function<void(int, int)> sched = [&](int delay_us, int id) {
      pending.push_back(sim.schedule_after(
          SimTime::us(static_cast<double>(delay_us)), [&, id] {
            trace_ref.push_back(Dispatch{sim.now().to_ns(), id});
            if (id < kSeedEvents * kChainLen) {
              sched((id * 7 + 3) % 41, id + kSeedEvents);
            }
          }));
    };
    run_workload(Driver{[&](int delay, int id) { sched(delay, id); },
                        [&] {
                          if (!pending.empty()) {
                            sim.cancel(pending.front());
                            pending.erase(pending.begin());
                          }
                        }});
    sim.run();
  }

  ASSERT_FALSE(trace_new.empty());
  EXPECT_EQ(trace_new, trace_ref);
}

// ------------------------------------- batched same-timestamp dispatch

TEST(RunTimestamp, DispatchesEveryCoTimedEventIncludingNewcomers) {
  Simulator sim;
  std::vector<int> log;
  sim.schedule_at(SimTime::us(1), [&] {
    log.push_back(1);
    // A newcomer *at the current timestamp* joins the running batch.
    sim.schedule_at(sim.now(), [&] { log.push_back(3); });
  });
  sim.schedule_at(SimTime::us(1), [&] { log.push_back(2); });
  sim.schedule_at(SimTime::us(2), [&] { log.push_back(4); });
  EXPECT_EQ(sim.run_timestamp(~std::uint64_t{0}), 3u);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::us(1));
  EXPECT_EQ(sim.next_event_time(), SimTime::us(2));
  EXPECT_EQ(sim.run_timestamp(~std::uint64_t{0}), 1u);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.run_timestamp(~std::uint64_t{0}), 0u);  // drained
}

TEST(RunTimestamp, BudgetCutsABatchMidTimestamp) {
  Simulator sim;
  int ran = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::us(7), [&] { ++ran; });
  }
  EXPECT_EQ(sim.run_timestamp(4), 4u);
  EXPECT_EQ(ran, 4);
  // The front is still at the cut timestamp — exactly the signal the
  // parallel engine's watchdog keys on.
  EXPECT_EQ(sim.next_event_time(), SimTime::us(7));
  EXPECT_EQ(sim.run_timestamp(~std::uint64_t{0}), 6u);
  EXPECT_EQ(ran, 10);
}

TEST(RunTimestamp, SkipsFrontTombstones) {
  Simulator sim;
  int ran = 0;
  const EventHandle dead = sim.schedule_at(SimTime::us(1), [&] { ++ran; });
  sim.schedule_at(SimTime::us(2), [&] { ++ran; });
  sim.cancel(dead);
  EXPECT_EQ(sim.run_timestamp(~std::uint64_t{0}), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), SimTime::us(2));
}

// ------------------------------------------------- bulk window merges

TEST(MergeAppend, MatchesIndividualRankedSchedulesExactly) {
  // The same ranked batch delivered two ways — individual pushes vs one
  // append-then-commit merge — must dispatch identically: the (time,
  // rank, seq) key is a strict total order, so any valid heap pops the
  // same way.
  auto drive = [](bool merged) {
    Simulator sim;
    std::vector<int> log;
    // A little pre-existing queue so the merge lands in a non-empty heap.
    for (int i = 0; i < 8; ++i) {
      sim.schedule_at(SimTime::us(5 + i), [&log, i] { log.push_back(100 + i); });
    }
    struct Mail {
      SimTime when;
      std::uint64_t rank;
      int id;
    };
    std::vector<Mail> batch;
    for (int i = 0; i < 20; ++i) {
      batch.push_back(Mail{SimTime::us(4 + (i * 7) % 9),
                           static_cast<std::uint64_t>((i * 5) % 3), i});
    }
    for (const Mail& m : batch) {
      auto cb = [&log, id = m.id] { log.push_back(id); };
      if (merged) {
        sim.merge_append(m.when, m.rank, std::move(cb));
      } else {
        sim.schedule_at_ranked(m.when, m.rank, std::move(cb));
      }
    }
    if (merged) sim.merge_commit();
    sim.run();
    return log;
  };
  EXPECT_EQ(drive(true), drive(false));
}

TEST(MergeAppend, LargeBatchTakesTheRebuildPathAndStaysOrdered) {
  // 1000 appends into a 10-deep queue: commit() must take the Floyd
  // rebuild path (k*8 >= size) and still produce (time, rank, seq) order.
  Simulator sim;
  std::vector<std::pair<std::int64_t, int>> log;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::us(500 + i), [&log, i] {
      log.push_back({-1, i});
    });
  }
  for (int i = 0; i < 1000; ++i) {
    const SimTime when = SimTime::us((i * 37) % 1000);
    sim.merge_append(when, static_cast<std::uint64_t>(i % 5),
                     [&log, &sim, i] { log.push_back({sim.now().to_ns(), i}); });
  }
  sim.merge_commit();
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  ASSERT_EQ(log.size(), 1010u);
  std::int64_t prev = 0;
  for (const auto& [at, id] : log) {
    if (at >= 0) {
      EXPECT_GE(at, prev);
      prev = at;
    }
  }
}

TEST(MergeAppend, SmallBatchSiftPathMatchesSchedules) {
  // A 3-event merge into a 100-deep queue stays below the rebuild
  // threshold: commit() sifts each appended key up instead.
  auto drive = [](bool merged) {
    Simulator sim;
    std::vector<int> log;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_at(SimTime::us(i), [&log, i] { log.push_back(1000 + i); });
    }
    for (int i = 0; i < 3; ++i) {
      auto cb = [&log, i] { log.push_back(i); };
      if (merged) {
        sim.merge_append(SimTime::us(50 + i), 0, std::move(cb));
      } else {
        sim.schedule_at_ranked(SimTime::us(50 + i), 0, std::move(cb));
      }
    }
    if (merged) sim.merge_commit();
    sim.run();
    return log;
  };
  EXPECT_EQ(drive(true), drive(false));
}

TEST(MergeAppend, CountsAllocsLikeSchedule) {
  Simulator sim(16);
  for (int i = 0; i < 16; ++i) {
    sim.merge_append(SimTime::us(1), 0, [] {});
  }
  sim.merge_commit();
  EXPECT_EQ(sim.stats().allocs, 0u);
  sim.merge_append(SimTime::us(1), 0, [] {});  // 17th: the heap must grow
  sim.merge_commit();
  EXPECT_GT(sim.stats().allocs, 0u);
  sim.run();
  EXPECT_EQ(sim.dispatched(), 17u);
}

}  // namespace
}  // namespace sccpipe
