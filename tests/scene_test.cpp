#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sccpipe/scene/camera.hpp"
#include "sccpipe/scene/city.hpp"
#include "sccpipe/scene/mesh.hpp"
#include "sccpipe/scene/octree.hpp"
#include "sccpipe/support/check.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {
namespace {

// --------------------------------------------------------------------- Mesh

TEST(Mesh, BoxHasTwelveTriangles) {
  Mesh mesh;
  mesh.add_box({0, 0, 0}, {1, 2, 3}, Color{1, 2, 3, 255});
  EXPECT_EQ(mesh.size(), 12u);
  EXPECT_EQ(mesh.bounds().lo, (Vec3{0, 0, 0}));
  EXPECT_EQ(mesh.bounds().hi, (Vec3{1, 2, 3}));
}

TEST(Mesh, GroundQuadAndPyramid) {
  Mesh mesh;
  mesh.add_ground_quad(-1, -1, 1, 1, 0.0f, Color{});
  EXPECT_EQ(mesh.size(), 2u);
  mesh.add_pyramid({0, 1, 0}, {2, 1, 2}, 3.0f, Color{});
  EXPECT_EQ(mesh.size(), 6u);
  EXPECT_FLOAT_EQ(mesh.bounds().hi.y, 3.0f);
}

TEST(Mesh, TriangleBounds) {
  const Triangle t{{0, 0, 0}, {1, 0, 0}, {0, 2, -1}, Color{}};
  const Aabb b = t.bounds();
  EXPECT_EQ(b.lo, (Vec3{0, 0, -1}));
  EXPECT_EQ(b.hi, (Vec3{1, 2, 0}));
}

// --------------------------------------------------------------------- City

TEST(City, GeneratorIsDeterministic) {
  CityParams p;
  p.blocks_x = 4;
  p.blocks_z = 4;
  const Mesh a = generate_city(p);
  const Mesh b = generate_city(p);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.triangles()[10].v0, b.triangles()[10].v0);
}

TEST(City, SeedChangesLayout) {
  CityParams p;
  p.blocks_x = 4;
  p.blocks_z = 4;
  const Mesh a = generate_city(p);
  p.seed ^= 0xdeadbeef;
  const Mesh b = generate_city(p);
  // Different seeds produce different geometry (sizes almost surely differ).
  EXPECT_TRUE(a.size() != b.size() ||
              !(a.triangles()[5].v0 == b.triangles()[5].v0));
}

TEST(City, RespectsHeightBounds) {
  CityParams p;
  p.blocks_x = 6;
  p.blocks_z = 6;
  p.min_height = 5.0f;
  p.max_height = 20.0f;
  p.roof_probability = 0.0;
  const Mesh city = generate_city(p);
  EXPECT_LE(city.bounds().hi.y, 20.0f + 1e-3f);
  EXPECT_GE(city.bounds().lo.y, -1e-3f);
}

TEST(City, TriangleCountScalesWithBlocks) {
  CityParams small;
  small.blocks_x = 3;
  small.blocks_z = 3;
  CityParams large;
  large.blocks_x = 9;
  large.blocks_z = 9;
  large.seed = small.seed;
  EXPECT_GT(generate_city(large).size(), 4 * generate_city(small).size());
}

TEST(City, DefaultSceneIsSubstantial) {
  const Mesh city = generate_city();
  // The workload stand-in for the paper's NYC model: thousands of
  // triangles at least.
  EXPECT_GT(city.size(), 5000u);
}

TEST(City, RejectsBadParams) {
  CityParams p;
  p.blocks_x = 0;
  EXPECT_THROW(generate_city(p), CheckError);
  p = {};
  p.max_buildings_per_block = 0;
  EXPECT_THROW(generate_city(p), CheckError);
}

// ------------------------------------------------------------------- Octree

struct OctreeFixture : ::testing::Test {
  static CityParams params() {
    CityParams p;
    p.blocks_x = 6;
    p.blocks_z = 6;
    return p;
  }
  Mesh city = generate_city(params());
  Octree octree{city};
};

TEST_F(OctreeFixture, EveryTriangleStoredExactlyOnce) {
  EXPECT_EQ(octree.stored_triangles(), city.size());
}

TEST_F(OctreeFixture, BoundsCoverMesh) {
  EXPECT_LE(octree.bounds().lo.x, city.bounds().lo.x + 1e-4f);
  EXPECT_GE(octree.bounds().hi.y, city.bounds().hi.y - 1e-4f);
}

TEST_F(OctreeFixture, SubdividesTheScene) {
  EXPECT_GT(octree.node_count(), 8u);
  EXPECT_GT(octree.depth(), 1);
}

TEST_F(OctreeFixture, CullNeverMissesVisibleTriangles) {
  // Reference check against brute force: every triangle whose bounds
  // intersect the frustum must be in the culled set.
  const CameraConfig cam;
  const WalkthroughPath path(city.bounds(), 20);
  for (int frame = 0; frame < 20; frame += 5) {
    const Mat4 vp =
        strip_projection(cam, 100, 100, {0, 100}) * path.view(frame);
    const Frustum frustum(vp);
    std::vector<std::uint32_t> culled;
    octree.cull(frustum, culled);
    std::set<std::uint32_t> culled_set(culled.begin(), culled.end());
    for (std::uint32_t i = 0; i < city.size(); ++i) {
      if (frustum.classify(city.triangles()[i].bounds()) !=
          CullResult::Outside) {
        EXPECT_TRUE(culled_set.count(i))
            << "triangle " << i << " missed in frame " << frame;
      }
    }
  }
}

TEST_F(OctreeFixture, CullReturnsNoDuplicates) {
  const CameraConfig cam;
  const WalkthroughPath path(city.bounds(), 4);
  const Frustum frustum(strip_projection(cam, 64, 64, {0, 64}) *
                        path.view(0));
  std::vector<std::uint32_t> culled;
  octree.cull(frustum, culled);
  std::set<std::uint32_t> unique(culled.begin(), culled.end());
  EXPECT_EQ(unique.size(), culled.size());
}

TEST_F(OctreeFixture, CullStatsAreConsistent) {
  const CameraConfig cam;
  const WalkthroughPath path(city.bounds(), 4);
  const Frustum frustum(strip_projection(cam, 64, 64, {0, 64}) *
                        path.view(1));
  std::vector<std::uint32_t> culled;
  CullStats stats;
  octree.cull(frustum, culled, &stats);
  EXPECT_EQ(stats.tris_accepted, culled.size());
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_LE(stats.nodes_visited, stats.nodes_total);
  EXPECT_EQ(stats.nodes_total, octree.node_count());
}

TEST_F(OctreeFixture, NarrowStripAcceptsNoMoreThanFullFrame) {
  const CameraConfig cam;
  const WalkthroughPath path(city.bounds(), 4);
  const Mat4 view = path.view(2);
  std::vector<std::uint32_t> whole, strip;
  octree.cull(Frustum(strip_projection(cam, 100, 100, {0, 100}) * view),
              whole);
  octree.cull(Frustum(strip_projection(cam, 100, 100, {40, 20}) * view),
              strip);
  EXPECT_LE(strip.size(), whole.size());
}

TEST(Octree, EmptyMeshRejected) {
  Mesh empty;
  EXPECT_THROW(Octree{empty}, CheckError);
}

TEST(Octree, LeafConfigRespected) {
  Mesh mesh;
  for (int i = 0; i < 64; ++i) {
    const float f = static_cast<float>(i);
    mesh.add(Triangle{{f, 0, 0}, {f + 0.4f, 0, 0}, {f, 0.4f, 0}, Color{}});
  }
  OctreeConfig cfg;
  cfg.max_depth = 0;  // no subdivision allowed
  Octree flat(mesh, cfg);
  EXPECT_EQ(flat.node_count(), 1u);
  EXPECT_EQ(flat.stored_triangles(), 64u);
}

// ------------------------------------------------------------------- Camera

TEST(Camera, StripProjectionFullFrameMatchesPerspective) {
  const CameraConfig cfg;
  const Mat4 full = strip_projection(cfg, 400, 400, {0, 400});
  const Mat4 ref = Mat4::perspective(cfg.fovy_radians, 1.0f, cfg.z_near,
                                     cfg.z_far);
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) {
      EXPECT_NEAR(full.m[c][r], ref.m[c][r], 1e-4f) << c << ',' << r;
    }
  }
}

TEST(Camera, StripProjectionsPartitionTheFrustum) {
  // A point visible in the full frame must be visible in exactly one strip
  // (up to boundary pixels).
  const CameraConfig cfg;
  const Mat4 view = Mat4::look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  const Frustum full(strip_projection(cfg, 100, 100, {0, 100}) * view);
  const auto strips = divide_rows(100, 4);
  Rng rng{23};
  int checked = 0;
  for (int i = 0; i < 500; ++i) {
    const Vec3 p{static_cast<float>(rng.uniform(-3, 3)),
                 static_cast<float>(rng.uniform(-3, 3)),
                 static_cast<float>(rng.uniform(-20, 4))};
    if (!full.contains(p)) continue;
    int hits = 0;
    for (const StripRange& s : strips) {
      const Frustum f(strip_projection(cfg, 100, 100, s) * view);
      hits += f.contains(p) ? 1 : 0;
    }
    EXPECT_GE(hits, 1);
    EXPECT_LE(hits, 2);  // boundary points may land in two strips
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST(Camera, WalkthroughPathStaysAboveGroundAndInsideOrbit) {
  Aabb bounds;
  bounds.extend(Vec3{-100, 0, -100});
  bounds.extend(Vec3{100, 60, 100});
  const WalkthroughPath path(bounds, 400);
  for (int f = 0; f < 400; f += 7) {
    const Vec3 eye = path.eye(f);
    EXPECT_GT(eye.y, 0.0f);
    EXPECT_LT(length(eye - bounds.center()), 400.0f);
  }
}

TEST(Camera, PathIsDeterministicAndMoving) {
  Aabb bounds;
  bounds.extend(Vec3{-50, 0, -50});
  bounds.extend(Vec3{50, 30, 50});
  const WalkthroughPath a(bounds, 100);
  const WalkthroughPath b(bounds, 100);
  EXPECT_EQ(a.eye(10), b.eye(10));
  EXPECT_FALSE(a.eye(10) == a.eye(11));
}

TEST(Camera, RejectsInvalidFrames) {
  Aabb bounds;
  bounds.extend(Vec3{0, 0, 0});
  bounds.extend(Vec3{1, 1, 1});
  const WalkthroughPath path(bounds, 10);
  EXPECT_THROW(path.eye(-1), CheckError);
  EXPECT_THROW(path.eye(10), CheckError);
}

}  // namespace
}  // namespace sccpipe
