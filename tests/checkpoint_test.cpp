// Crash-durability chaos tests: plant crash-at fates at seeded random
// instants, let the run die, resume from the snapshot, and demand the final
// metrics be byte-identical to an uninterrupted run — at sim-jobs 1 and 4,
// under fault injection, fail-stop recovery, and overload shedding. Plus
// the failure half: corrupted snapshots, config mismatches, and snapshots
// that claim progress the replay never reaches must all surface as typed
// checkpoint errors, never as silently wrong results.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sccpipe/core/run_snapshot.hpp"
#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/support/rng.hpp"
#include "sccpipe/support/snapshot.hpp"

namespace sccpipe {
namespace {

class CheckpointFixture : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    CityParams city;
    city.blocks_x = 5;
    city.blocks_z = 5;
    scene_ = new SceneBundle(city, CameraConfig{}, 120, 12);
    trace_ = new WorkloadTrace(WorkloadTrace::build(*scene_, 4));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete scene_;
    trace_ = nullptr;
    scene_ = nullptr;
  }

  static const SceneBundle& scene() { return *scene_; }
  static const WorkloadTrace& trace() { return *trace_; }

  static SceneBundle* scene_;
  static WorkloadTrace* trace_;
};

SceneBundle* CheckpointFixture::scene_ = nullptr;
WorkloadTrace* CheckpointFixture::trace_ = nullptr;

/// The comparison artifact: every CSV field the CLI emits, rendered with
/// the CLI's own formats, so "byte-identical CSV" is tested at the library
/// boundary.
std::string row(const RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%.3f,%.2f,%.1f,%.3f,%.1f,%d,%d,%d,%d,%d,"
                "%.3f,%.3f,",
                r.walkthrough.to_sec(), r.mean_chip_watts,
                r.chip_energy_joules, r.host_busy_sec,
                r.host_extra_energy_joules, r.recovery.failures_detected,
                r.recovery.failures_recovered, r.recovery.frames_replayed,
                r.recovery.frames_lost, r.recovery.spares_used,
                r.recovery.max_detection_latency_ms,
                r.recovery.post_failure_fps);
  return std::string(buf) + r.transport.csv();
}

std::string snap_path(const std::string& tag) {
  return "/tmp/sccpipe_checkpoint_test_" + tag + ".snap";
}

/// Crash the run at \p crash_fractions of its uninterrupted duration,
/// resume until it completes, and compare the final result against the
/// uninterrupted reference. Returns the number of attempts consumed.
int crash_resume_cycle(RunConfig cfg, const std::vector<double>& fractions,
                       int every_frames, const std::string& tag) {
  const RunResult ref = run_walkthrough(CheckpointFixture::scene(),
                                        CheckpointFixture::trace(), cfg);
  EXPECT_FALSE(ref.checkpoint.crashed);

  RunConfig crashed = cfg;
  for (const double f : fractions) {
    crashed.fault.crashes.push_back(ref.walkthrough * f);
  }
  crashed.checkpoint.every_frames = every_frames;
  crashed.checkpoint.file = snap_path(tag);
  std::remove(crashed.checkpoint.file.c_str());

  int attempts = 0;
  RunResult r;
  for (;;) {
    ++attempts;
    EXPECT_LE(attempts, static_cast<int>(fractions.size()) + 1)
        << tag << ": crash plan did not converge";
    if (attempts > static_cast<int>(fractions.size()) + 1) break;
    r = run_walkthrough(CheckpointFixture::scene(),
                        CheckpointFixture::trace(), crashed);
    EXPECT_EQ(r.checkpoint.error_code, StatusCode::Ok)
        << tag << ": " << r.checkpoint.error;
    if (!r.checkpoint.crashed) break;
    crashed.checkpoint.resume = true;  // next attempt resumes
  }
  EXPECT_EQ(row(r), row(ref)) << tag;
  if (crashed.checkpoint.resume) {
    EXPECT_TRUE(r.checkpoint.resumed) << tag;
    EXPECT_TRUE(r.checkpoint.resume_verified) << tag;
  }
  std::remove(crashed.checkpoint.file.c_str());
  return attempts;
}

RunConfig mcpc_config(int sim_jobs) {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  cfg.sim_jobs = sim_jobs;
  return cfg;
}

// -------------------------------------------------------------- chaos sweep

// Seeded random crash instants, one and two crashes per plan, serial and
// parallel engine. Every cycle must converge in (#crashes + 1) attempts and
// reproduce the uninterrupted metrics byte-for-byte.
TEST_F(CheckpointFixture, RandomizedCrashPointsConverge) {
  Rng rng(20260807);
  for (const int sim_jobs : {1, 4}) {
    for (int trial = 0; trial < 3; ++trial) {
      const double f1 = 0.1 + 0.8 * rng.uniform();
      const std::string tag =
          "chaos_j" + std::to_string(sim_jobs) + "_t" + std::to_string(trial);
      const int attempts = crash_resume_cycle(mcpc_config(sim_jobs), {f1}, 3,
                                              tag);
      EXPECT_EQ(attempts, 2) << tag;
    }
    const double a = 0.1 + 0.3 * rng.uniform();
    const double b = a + 0.1 + 0.4 * rng.uniform();
    const std::string tag = "chaos2_j" + std::to_string(sim_jobs);
    const int attempts =
        crash_resume_cycle(mcpc_config(sim_jobs), {a, b}, 2, tag);
    EXPECT_EQ(attempts, 3) << tag;
  }
}

TEST_F(CheckpointFixture, CrashResumeUnderHostFaultInjection) {
  for (const int sim_jobs : {1, 4}) {
    RunConfig cfg = mcpc_config(sim_jobs);
    ASSERT_TRUE(cfg.fault.parse("host-drop=0.03;host-delay=0.05:2ms").ok());
    cfg.rcce.retry.max_attempts = 3;
    cfg.overload.window = 4;
    cfg.overload.queue_depth = 8;
    crash_resume_cycle(cfg, {0.5}, 2,
                       "fault_j" + std::to_string(sim_jobs));
  }
}

TEST_F(CheckpointFixture, CrashResumeUnderCoreFailureRecovery) {
  for (const int sim_jobs : {1, 4}) {
    RunConfig cfg = mcpc_config(sim_jobs);
    ASSERT_TRUE(cfg.fault.parse("core-fail=5@40").ok());
    crash_resume_cycle(cfg, {0.6}, 2,
                       "recovery_j" + std::to_string(sim_jobs));
  }
}

TEST_F(CheckpointFixture, CrashResumeUnderOverloadShedding) {
  for (const int sim_jobs : {1, 4}) {
    RunConfig cfg = mcpc_config(sim_jobs);
    cfg.overload.offered_fps = 400.0;
    cfg.overload.window = 4;
    cfg.overload.queue_depth = 4;
    cfg.overload.frame_deadline = SimTime::ms(40);
    cfg.overload.breaker_threshold = 4;
    crash_resume_cycle(cfg, {0.4}, 2,
                       "overload_j" + std::to_string(sim_jobs));
  }
}

// A snapshot taken by the serial engine must resume under the parallel one
// (and vice versa): the fingerprint and component blob exclude sim_jobs.
TEST_F(CheckpointFixture, SnapshotCrossesWorkerCounts) {
  RunConfig cfg = mcpc_config(1);
  const RunResult ref = run_walkthrough(scene(), trace(), cfg);

  RunConfig crashed = cfg;
  crashed.fault.crashes.push_back(ref.walkthrough * 0.5);
  crashed.checkpoint.every_frames = 2;
  crashed.checkpoint.file = snap_path("cross");
  std::remove(crashed.checkpoint.file.c_str());
  const RunResult dead = run_walkthrough(scene(), trace(), crashed);
  ASSERT_TRUE(dead.checkpoint.crashed);
  ASSERT_GT(dead.checkpoint.checkpoints_written, 0u);

  crashed.sim_jobs = 4;  // resume on the parallel engine
  crashed.checkpoint.resume = true;
  const RunResult r = run_walkthrough(scene(), trace(), crashed);
  EXPECT_EQ(r.checkpoint.error_code, StatusCode::Ok) << r.checkpoint.error;
  EXPECT_TRUE(r.checkpoint.resume_verified);
  EXPECT_EQ(row(r), row(ref));
  std::remove(crashed.checkpoint.file.c_str());
}

// ------------------------------------------------------------ failure half

/// Crash once with checkpoints on and leave the snapshot on disk.
std::string make_snapshot(RunConfig cfg, const std::string& tag) {
  const RunResult probe = run_walkthrough(CheckpointFixture::scene(),
                                          CheckpointFixture::trace(), cfg);
  cfg.fault.crashes.push_back(probe.walkthrough * 0.6);
  cfg.checkpoint.every_frames = 2;
  cfg.checkpoint.file = snap_path(tag);
  std::remove(cfg.checkpoint.file.c_str());
  const RunResult dead = run_walkthrough(CheckpointFixture::scene(),
                                         CheckpointFixture::trace(), cfg);
  EXPECT_TRUE(dead.checkpoint.crashed);
  EXPECT_GT(dead.checkpoint.checkpoints_written, 0u);
  return cfg.checkpoint.file;
}

TEST_F(CheckpointFixture, ResumeRejectsCorruptedSnapshot) {
  const std::string path = make_snapshot(mcpc_config(1), "corrupt");
  std::vector<std::uint8_t> framed;
  ASSERT_TRUE(snapshot::read_file(path, &framed).ok());
  framed[framed.size() / 2] ^= 0x10;  // flip one payload bit
  ASSERT_TRUE(snapshot::write_file_atomic(path, framed).ok());

  RunConfig cfg = mcpc_config(1);
  cfg.checkpoint.file = path;
  cfg.checkpoint.resume = true;
  const RunResult r = run_walkthrough(scene(), trace(), cfg);
  EXPECT_EQ(r.checkpoint.error_code, StatusCode::DataLoss);
  EXPECT_FALSE(r.checkpoint.resume_verified);
  std::remove(path.c_str());
}

TEST_F(CheckpointFixture, ResumeRejectsConfigFingerprintMismatch) {
  const std::string path = make_snapshot(mcpc_config(1), "fpmismatch");
  RunConfig other = mcpc_config(1);
  other.seed = 777;  // trajectory-shaping change
  other.checkpoint.file = path;
  other.checkpoint.resume = true;
  const RunResult r = run_walkthrough(scene(), trace(), other);
  EXPECT_EQ(r.checkpoint.error_code, StatusCode::InvalidArgument);
  std::remove(path.c_str());
}

TEST_F(CheckpointFixture, ResumeDetectsTamperedComponentState) {
  const std::string path = make_snapshot(mcpc_config(1), "tamper");
  std::vector<std::uint8_t> framed;
  ASSERT_TRUE(snapshot::read_file(path, &framed).ok());
  RunSnapshot snap;
  ASSERT_TRUE(parse_run_snapshot(framed, &snap).ok());
  ASSERT_FALSE(snap.state.empty());
  snap.state.back() ^= 0xff;  // valid frame, lying component blob
  ASSERT_TRUE(snapshot::write_file_atomic(path,
                                          serialize_run_snapshot(snap)).ok());

  RunConfig cfg = mcpc_config(1);
  cfg.checkpoint.file = path;
  cfg.checkpoint.resume = true;
  const RunResult r = run_walkthrough(scene(), trace(), cfg);
  EXPECT_EQ(r.checkpoint.error_code, StatusCode::DataLoss)
      << r.checkpoint.error;
  EXPECT_FALSE(r.checkpoint.resume_verified);
  std::remove(path.c_str());
}

TEST_F(CheckpointFixture, ResumeDetectsUnreachableAnchor) {
  const std::string path = make_snapshot(mcpc_config(1), "unreachable");
  std::vector<std::uint8_t> framed;
  ASSERT_TRUE(snapshot::read_file(path, &framed).ok());
  RunSnapshot snap;
  ASSERT_TRUE(parse_run_snapshot(framed, &snap).ok());
  snap.frames_delivered = 100000;  // progress the replay can never reach
  ASSERT_TRUE(snapshot::write_file_atomic(path,
                                          serialize_run_snapshot(snap)).ok());

  RunConfig cfg = mcpc_config(1);
  cfg.checkpoint.file = path;
  cfg.checkpoint.resume = true;
  const RunResult r = run_walkthrough(scene(), trace(), cfg);
  EXPECT_EQ(r.checkpoint.error_code, StatusCode::DataLoss)
      << r.checkpoint.error;
  std::remove(path.c_str());
}

// --------------------------------------------------------------- behaviors

TEST_F(CheckpointFixture, CheckpointingAloneDoesNotPerturbTheRun) {
  RunConfig cfg = mcpc_config(1);
  const RunResult ref = run_walkthrough(scene(), trace(), cfg);
  cfg.checkpoint.every_frames = 2;
  cfg.checkpoint.file = snap_path("noop");
  std::remove(cfg.checkpoint.file.c_str());
  const RunResult r = run_walkthrough(scene(), trace(), cfg);
  EXPECT_GT(r.checkpoint.checkpoints_written, 0u);
  EXPECT_EQ(row(r), row(ref));
  std::remove(cfg.checkpoint.file.c_str());
}

TEST_F(CheckpointFixture, CrashAfterTheRunEndsNeverFires) {
  RunConfig cfg = mcpc_config(1);
  const RunResult ref = run_walkthrough(scene(), trace(), cfg);
  cfg.fault.crashes.push_back(ref.walkthrough * 4.0);
  const RunResult r = run_walkthrough(scene(), trace(), cfg);
  EXPECT_FALSE(r.checkpoint.crashed);
  EXPECT_EQ(row(r), row(ref));
}

TEST_F(CheckpointFixture, CrashAtParsesInFaultPlanGrammar) {
  FaultPlan p;
  ASSERT_TRUE(p.parse("crash-at=800ms;crash-at=1.5s").ok());
  ASSERT_EQ(p.crashes.size(), 2u);
  EXPECT_EQ(p.crashes[0], SimTime::ms(800));
  EXPECT_EQ(p.crashes[1], SimTime::sec(1.5));
  EXPECT_FALSE(p.parse("crash-at=0ms").ok());
  EXPECT_FALSE(p.parse("crash-at=-5ms").ok());
}

}  // namespace
}  // namespace sccpipe
