#include <gtest/gtest.h>

#include "sccpipe/rcce/mpb.hpp"
#include "sccpipe/rcce/rcce.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

struct MpbFixture : ::testing::Test {
  Simulator sim;
  SccChip chip{sim};
  MpbSystem mpb{chip};
};

TEST_F(MpbFixture, CapacityAccounting) {
  EXPECT_DOUBLE_EQ(mpb.available(0), 8192.0);
  mpb.allocate(0, 4096.0);
  EXPECT_DOUBLE_EQ(mpb.used(0), 4096.0);
  EXPECT_DOUBLE_EQ(mpb.available(0), 4096.0);
  mpb.release(0, 4096.0);
  EXPECT_DOUBLE_EQ(mpb.used(0), 0.0);
}

TEST_F(MpbFixture, OverflowAndUnderflowRejected) {
  mpb.allocate(3, 8000.0);
  EXPECT_THROW(mpb.allocate(3, 200.0), CheckError);
  EXPECT_THROW(mpb.release(3, 9000.0), CheckError);
  // Other cores' windows are independent.
  EXPECT_NO_THROW(mpb.allocate(4, 8000.0));
}

TEST_F(MpbFixture, PutCompletesAndScalesWithSize) {
  SimTime small_done, large_done;
  mpb.put(0, 2, 512.0, [&] { small_done = sim.now(); });
  sim.run();
  const SimTime base = sim.now();
  mpb.put(0, 2, 8192.0, [&] { large_done = sim.now(); });
  sim.run();
  EXPECT_GT(small_done, SimTime::zero());
  EXPECT_GT((large_done - base).to_us(), 4.0 * small_done.to_us());
}

TEST_F(MpbFixture, PutAvoidsDram) {
  // The whole point of the MPB: no controller traffic.
  mpb.put(0, 2, 8192.0, [] {});
  sim.run();
  for (McId m = 0; m < chip.topology().mc_count(); ++m) {
    EXPECT_DOUBLE_EQ(chip.memory().stats(m).bulk_bytes, 0.0);
  }
}

TEST_F(MpbFixture, GetChargesTheReader) {
  mpb.get(5, 0, 4096.0, [] {});
  sim.run();
  EXPECT_GT(chip.core_busy_time(5), SimTime::zero());
  EXPECT_EQ(chip.core_busy_time(0), SimTime::zero());
}

TEST_F(MpbFixture, OversizedTransferRejected) {
  EXPECT_THROW(mpb.put(0, 2, 10000.0, [] {}), CheckError);
  EXPECT_THROW(mpb.get(0, 2, 10000.0, [] {}), CheckError);
}

TEST_F(MpbFixture, FlagWaitThenSet) {
  bool woke = false;
  mpb.flag_wait(2, 2, 7, [&] { woke = true; });
  sim.run();
  EXPECT_FALSE(woke);
  mpb.flag_set(0, 2, 7);
  sim.run();
  EXPECT_TRUE(woke);
}

TEST_F(MpbFixture, FlagSetBeforeWait) {
  mpb.flag_set(0, 2, 1);
  bool woke = false;
  mpb.flag_wait(2, 2, 1, [&] { woke = true; });
  sim.run();
  EXPECT_TRUE(woke);
}

TEST_F(MpbFixture, FlagsMatchPerIdFifo) {
  std::vector<int> order;
  mpb.flag_wait(2, 2, 1, [&] { order.push_back(1); });
  mpb.flag_wait(2, 2, 1, [&] { order.push_back(2); });
  mpb.flag_wait(2, 2, 9, [&] { order.push_back(9); });
  mpb.flag_set(0, 2, 1);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  mpb.flag_set(0, 2, 9);
  mpb.flag_set(0, 2, 1);
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 2);  // second waiter on flag 1 woke last
}

TEST_F(MpbFixture, PutGetRoundTripModelsSendRecvSkeleton) {
  // The shape RCCE send/recv is built from: allocate window, put payload,
  // set flag, receiver waits on flag then gets and releases.
  bool received = false;
  mpb.allocate(2, 8192.0);
  mpb.flag_wait(2, 2, 0, [&] {
    mpb.get(2, 2, 8192.0, [&] {
      mpb.release(2, 8192.0);
      received = true;
    });
  });
  mpb.put(0, 2, 8192.0, [&] { mpb.flag_set(0, 2, 0); });
  sim.run();
  EXPECT_TRUE(received);
  EXPECT_DOUBLE_EQ(mpb.used(2), 0.0);
}

TEST_F(MpbFixture, RccePowerApiFacade) {
  RcceComm comm(chip);
  comm.iset_power(0, 800);
  EXPECT_EQ(chip.operating_point(0).mhz, 800);
  EXPECT_EQ(comm.power_domain(0), comm.power_domain(3));   // tiles 0,1 share
  EXPECT_NE(comm.power_domain(0), comm.power_domain(47));  // far corner
}

}  // namespace
}  // namespace sccpipe
