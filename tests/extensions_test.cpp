// Tests for the extension features: voltage-domain granularity, oriented
// scratches, flat shading, and the argument parser.

#include <gtest/gtest.h>

#include "sccpipe/filters/filters.hpp"
#include "sccpipe/render/renderer.hpp"
#include "sccpipe/scc/chip.hpp"
#include "sccpipe/scene/city.hpp"
#include "sccpipe/support/args.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

// ---------------------------------------------------------- voltage domains

TEST(VoltageDomains, TilesMapToQuadDomains) {
  Simulator sim;
  SccChip chip(sim);
  // 6x4 tiles -> 3x2 domains of 2x2 tiles.
  EXPECT_EQ(chip.voltage_domain_of(chip.topology().tile_at({0, 0})),
            chip.voltage_domain_of(chip.topology().tile_at({1, 1})));
  EXPECT_NE(chip.voltage_domain_of(chip.topology().tile_at({0, 0})),
            chip.voltage_domain_of(chip.topology().tile_at({2, 0})));
  EXPECT_NE(chip.voltage_domain_of(chip.topology().tile_at({0, 0})),
            chip.voltage_domain_of(chip.topology().tile_at({0, 2})));
}

TEST(VoltageDomains, PerTileVoltageStaysLocal) {
  Simulator sim;
  SccChip chip(sim);  // default: PerTile (the paper's idealisation)
  chip.set_tile_frequency(0, 800);
  EXPECT_DOUBLE_EQ(chip.operating_point(0).volts, 1.3);
  // Tile 1 shares the voltage domain but not the tile: stays at 1.1 V.
  EXPECT_DOUBLE_EQ(chip.operating_point(2).volts, 1.1);
}

TEST(VoltageDomains, QuadDomainVoltagePropagates) {
  Simulator sim;
  ChipConfig cfg = ChipConfig::scc();
  cfg.voltage_granularity = VoltageGranularity::PerQuadTileDomain;
  SccChip chip(sim, cfg);
  chip.set_tile_frequency(0, 800);  // tile (0,0)
  // Same domain: tiles (1,0), (0,1), (1,1) rise to 1.3 V though their
  // frequency stays 533 MHz.
  const CoreId c_tile10 = 2 * chip.topology().tile_at({1, 0});
  EXPECT_EQ(chip.operating_point(c_tile10).mhz, 533);
  EXPECT_DOUBLE_EQ(chip.operating_point(c_tile10).volts, 1.3);
  // Other domain untouched.
  const CoreId c_far = 2 * chip.topology().tile_at({3, 0});
  EXPECT_DOUBLE_EQ(chip.operating_point(c_far).volts, 1.1);
}

TEST(VoltageDomains, QuadDomainDvfsCostsMorePower) {
  Simulator sim_a, sim_b;
  ChipConfig real = ChipConfig::scc();
  real.voltage_granularity = VoltageGranularity::PerQuadTileDomain;
  SccChip per_tile(sim_a);
  SccChip quad(sim_b, real);
  for (CoreId c = 0; c < 8; ++c) {
    per_tile.allocate_core(c);
    quad.allocate_core(c);
  }
  const double base_a = per_tile.current_watts();
  const double base_b = quad.current_watts();
  EXPECT_DOUBLE_EQ(base_a, base_b);
  per_tile.set_tile_frequency(0, 800);
  quad.set_tile_frequency(0, 800);
  // Raising one tile costs more when the whole 2x2 domain must follow.
  EXPECT_GT(quad.current_watts() - base_b,
            per_tile.current_watts() - base_a + 1.0);
}

TEST(VoltageDomains, RevertingFrequencyRestoresVoltage) {
  Simulator sim;
  ChipConfig cfg = ChipConfig::scc();
  cfg.voltage_granularity = VoltageGranularity::PerQuadTileDomain;
  SccChip chip(sim, cfg);
  chip.set_tile_frequency(0, 800);
  chip.set_tile_frequency(0, 533);
  for (TileId t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(
        chip.operating_point(2 * t).volts, 1.1);
  }
}

// -------------------------------------------------------- oriented scratches

TEST(OrientedScratch, DrawIsDeterministicAndBounded) {
  Rng a{5}, b{5};
  const auto pa = OrientedScratchParams::draw(a, 200, 100);
  const auto pb = OrientedScratchParams::draw(b, 200, 100);
  ASSERT_EQ(pa.scratches.size(), pb.scratches.size());
  for (std::size_t i = 0; i < pa.scratches.size(); ++i) {
    EXPECT_EQ(pa.scratches[i].x0, pb.scratches[i].x0);
    EXPECT_EQ(pa.scratches[i].y1, pb.scratches[i].y1);
  }
  EXPECT_LE(pa.scratches.size(), 8u);
}

TEST(OrientedScratch, PaintsALine) {
  Image img(64, 64, Color{0, 0, 0, 255});
  OrientedScratchParams p;
  p.scratches.push_back(OrientedScratch{10, 10, 50, 50, Color{200, 200, 200, 255}});
  apply_oriented_scratches(img, p);
  EXPECT_EQ(img.get(30, 30).r, 200);  // on the diagonal
  EXPECT_EQ(img.get(10, 50).r, 0);    // off the diagonal
}

TEST(OrientedScratch, StripDecompositionInvariant) {
  // The key property: applying per strip (with the strip's row offset)
  // equals applying to the whole frame.
  Image whole(80, 60, Color{30, 30, 30, 255});
  Image parts = whole;
  const OrientedScratchParams p =
      oriented_scratch_params_for_frame(99, 3, 80, 60);
  apply_oriented_scratches(whole, p);

  Image assembled(80, 60);
  for (const StripRange& s : divide_rows(60, 4)) {
    Image strip = parts.strip(s);
    apply_oriented_scratches(strip, p, s.y0);
    assembled.paste(strip, s.y0);
  }
  EXPECT_EQ(assembled, whole);
}

TEST(OrientedScratch, OffFrameSegmentsAreClipped) {
  Image img(16, 16, Color{0, 0, 0, 255});
  OrientedScratchParams p;
  p.scratches.push_back(
      OrientedScratch{-50, -50, -10, -10, Color{255, 255, 255, 255}});
  EXPECT_NO_THROW(apply_oriented_scratches(img, p));
  EXPECT_EQ(img.get(0, 0).r, 0);
}

// ----------------------------------------------------------------- lighting

TEST(Lighting, ShadedFacesDiffer) {
  CityParams cp;
  cp.blocks_x = 3;
  cp.blocks_z = 3;
  const Mesh city = generate_city(cp);
  const Octree octree(city);
  const CameraConfig cam;
  const WalkthroughPath path(city.bounds(), 10);
  LightingConfig lit;
  LightingConfig unlit;
  unlit.enabled = false;
  const Renderer shaded(city, octree, cam, 96, 96, lit);
  const Renderer flat(city, octree, cam, 96, 96, unlit);
  const Image a = shaded.render(path.view(2));
  const Image b = flat.render(path.view(2));
  EXPECT_FALSE(a == b);
}

TEST(Lighting, StripAssemblyStillExact) {
  CityParams cp;
  cp.blocks_x = 3;
  cp.blocks_z = 3;
  const Mesh city = generate_city(cp);
  const Octree octree(city);
  const Renderer renderer(city, octree, CameraConfig{}, 96, 96);
  const WalkthroughPath path(city.bounds(), 10);
  const Mat4 view = path.view(4);
  const Image whole = renderer.render(view);
  Image assembled(96, 96);
  for (const StripRange& s : divide_rows(96, 3)) {
    assembled.paste(renderer.render_strip(view, s), s.y0);
  }
  EXPECT_EQ(assembled, whole);
}

// ---------------------------------------------------------------- ArgParser

TEST(ArgParser, ParsesFlagsAndDefaults) {
  ArgParser args;
  args.add_flag("pipelines", "k", "4");
  args.add_flag("csv", "emit csv", "false");
  const char* argv[] = {"prog", "--pipelines", "7", "--csv"};
  ASSERT_TRUE(args.parse(4, argv));
  EXPECT_EQ(args.get_int("pipelines"), 7);
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_TRUE(args.has("pipelines"));
}

TEST(ArgParser, EqualsSyntaxAndPositional) {
  ArgParser args;
  args.add_flag("size", "frame side", "400");
  const char* argv[] = {"prog", "--size=200", "extra"};
  ASSERT_TRUE(args.parse(3, argv));
  EXPECT_EQ(args.get_int("size"), 200);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "extra");
}

TEST(ArgParser, UnknownFlagFails) {
  ArgParser args;
  args.add_flag("known", "");
  const char* argv[] = {"prog", "--oops", "1"};
  EXPECT_FALSE(args.parse(3, argv));
  EXPECT_NE(args.error().find("oops"), std::string::npos);
}

TEST(ArgParser, DefaultsSurviveNoArgs) {
  ArgParser args;
  args.add_flag("frames", "n", "400");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.parse(1, argv));
  EXPECT_EQ(args.get_int("frames"), 400);
  EXPECT_FALSE(args.has("frames"));
}

TEST(ArgParser, UsageListsFlags) {
  ArgParser args;
  args.add_flag("alpha", "the alpha flag", "1");
  const std::string usage = args.usage("prog");
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha flag"), std::string::npos);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser args;
  args.add_flag("x", "");
  EXPECT_THROW(args.add_flag("x", ""), CheckError);
}

}  // namespace
}  // namespace sccpipe
