#include <gtest/gtest.h>

#include "sccpipe/scc/chip.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

struct ChipFixture : ::testing::Test {
  Simulator sim;
  SccChip chip{sim};
};

// --------------------------------------------------------------------- DVFS

TEST(DvfsTable, PaperOperatingPoints) {
  DvfsTable table;
  EXPECT_EQ(table.point_for(533).volts, 1.1);
  EXPECT_EQ(table.point_for(800).volts, 1.3);
  EXPECT_EQ(table.point_for(400).volts, 0.7);
  EXPECT_TRUE(table.allowed(1066));
  EXPECT_FALSE(table.allowed(600));
  EXPECT_THROW(table.point_for(600), CheckError);
}

TEST_F(ChipFixture, DefaultFrequencyIs533) {
  for (CoreId c = 0; c < chip.core_count(); ++c) {
    EXPECT_EQ(chip.operating_point(c).mhz, 533);
    EXPECT_DOUBLE_EQ(chip.frequency_hz(c), 533e6);
  }
}

TEST_F(ChipFixture, FrequencyChangeIsTileGranular) {
  // Paper §VI-D / Fig. 18: raising one core raises its whole tile.
  chip.set_core_frequency(4, 800);  // core 4 lives on tile 2 with core 5
  EXPECT_EQ(chip.operating_point(4).mhz, 800);
  EXPECT_EQ(chip.operating_point(5).mhz, 800);
  EXPECT_EQ(chip.operating_point(4).volts, 1.3);
  EXPECT_EQ(chip.operating_point(6).mhz, 533);  // next tile untouched
}

TEST_F(ChipFixture, RejectsUnsupportedFrequency) {
  EXPECT_THROW(chip.set_tile_frequency(0, 666), CheckError);
}

TEST_F(ChipFixture, EffectiveHzUsesIpcFactor) {
  EXPECT_DOUBLE_EQ(chip.effective_hz(0), 533e6);  // SCC: ipc_factor 1
  Simulator s2;
  SccChip mogon(s2, ChipConfig::mogon_node());
  EXPECT_GT(mogon.effective_hz(0), 4e9);
}

TEST_F(ChipFixture, CopyRateIsFrequencyIndependent) {
  // DRAM-latency-bound copies do not speed up with the core clock — one
  // reason the 800 MHz blur core gains less than the frequency ratio.
  const double at533 = chip.copy_rate(0);
  chip.set_core_frequency(0, 800);
  EXPECT_DOUBLE_EQ(chip.copy_rate(0), at533);
}

// -------------------------------------------------------------------- Power

TEST_F(ChipFixture, IdleChipDrawsIdlePower) {
  EXPECT_DOUBLE_EQ(chip.current_watts(),
                   chip.power_model().config().chip_idle_watts);
}

TEST_F(ChipFixture, AllocatedCoresAddDynamicPower) {
  const double idle = chip.current_watts();
  chip.allocate_core(0);
  const double one = chip.current_watts();
  // Uncore activation + one core.
  EXPECT_NEAR(one - idle,
              chip.power_model().config().uncore_active_watts +
                  chip.power_model().config().core_dynamic_watts_ref,
              1e-9);
  chip.allocate_core(1);
  EXPECT_NEAR(chip.current_watts() - one,
              chip.power_model().config().core_dynamic_watts_ref, 1e-9);
  chip.release_core(0);
  chip.release_core(1);
  EXPECT_DOUBLE_EQ(chip.current_watts(), idle);
}

TEST_F(ChipFixture, PowerGrowsLinearlyWithAllocatedCores) {
  // The paper's Fig. 14: consumption increases linearly with pipelines.
  chip.allocate_core(0);
  const double base = chip.current_watts();
  std::vector<double> deltas;
  for (CoreId c = 1; c <= 10; ++c) {
    const double before = chip.current_watts();
    chip.allocate_core(c);
    deltas.push_back(chip.current_watts() - before);
  }
  for (const double d : deltas) {
    EXPECT_NEAR(d, deltas.front(), 1e-9);
  }
  EXPECT_GT(chip.current_watts(), base);
}

TEST_F(ChipFixture, HighVoltageTileCostsExtraStaticPower) {
  chip.allocate_core(4);
  const double before = chip.current_watts();
  chip.set_core_frequency(4, 800);  // 1.3 V tile
  const double after = chip.current_watts();
  // Dynamic scaling (f * V^2) plus the per-tile static adder; the paper
  // measured ~4-5 W for the blur tile (§VI-D).
  EXPECT_GT(after - before, 2.0);
  EXPECT_LT(after - before, 6.0);
  chip.release_core(4);
}

TEST_F(ChipFixture, LowVoltageTileSavesPower) {
  chip.allocate_core(8);
  const double before = chip.current_watts();
  chip.set_core_frequency(8, 400);  // 0.7 V tile
  EXPECT_LT(chip.current_watts(), before);
}

TEST_F(ChipFixture, EnergyIntegratesOverTime) {
  chip.allocate_core(0);
  sim.schedule_at(10_sec, [&] { chip.release_core(0); });
  sim.run();
  const double joules =
      chip.power_meter().energy_joules(SimTime::zero(), 10_sec);
  const double watts = chip.power_model().config().chip_idle_watts +
                       chip.power_model().config().uncore_active_watts +
                       chip.power_model().config().core_dynamic_watts_ref;
  EXPECT_NEAR(joules, watts * 10.0, 1e-6);
}

TEST_F(ChipFixture, DoubleAllocationThrows) {
  chip.allocate_core(3);
  EXPECT_THROW(chip.allocate_core(3), CheckError);
  chip.release_core(3);
  EXPECT_THROW(chip.release_core(3), CheckError);
}

// ---------------------------------------------------------------- Execution

TEST_F(ChipFixture, ComputeDurationMatchesFrequency) {
  chip.allocate_core(0);
  SimTime done;
  chip.compute(0, 533e6, [&] { done = sim.now(); });  // 1 s at 533 MHz
  sim.run();
  EXPECT_EQ(done, 1_sec);
}

TEST_F(ChipFixture, ComputeFasterAt800MHz) {
  chip.set_core_frequency(0, 800);
  SimTime done;
  chip.compute(0, 800e6, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 1_sec);
}

TEST_F(ChipFixture, BusyTimeAccounting) {
  chip.allocate_core(0);
  chip.compute(0, 533e6, [] {});
  sim.run();
  EXPECT_EQ(chip.core_busy_time(0), 1_sec);
  EXPECT_EQ(chip.core_busy_time(1), SimTime::zero());
}

TEST_F(ChipFixture, MemoryWalkReflectsMcLoad) {
  SimTime idle_done, loaded_done;
  {
    Simulator s;
    SccChip c2(s);
    c2.memory_walk(0, 10000.0, [&] { idle_done = s.now(); });
    s.run();
  }
  // Competing walker on the same controller (registered while we measure).
  chip.memory().register_latency_stream(1);
  chip.memory_walk(0, 10000.0, [&] { loaded_done = sim.now(); });
  sim.run();
  chip.memory().unregister_latency_stream(1);
  EXPECT_GT(loaded_done, idle_done);
}

TEST_F(ChipFixture, DramStreamTakesBytesOverCopyRate) {
  SimTime done;
  const double bytes = 1.0e6;
  chip.dram_stream(0, bytes, [&] { done = sim.now(); });
  sim.run();
  const double expect_sec = bytes / chip.copy_rate(0);
  EXPECT_NEAR(done.to_sec(), expect_sec, 0.001 * expect_sec + 1e-6);
}

TEST(ChipConfigs, MogonNodeIsFasterAndFlatter) {
  Simulator sim;
  SccChip mogon(sim, ChipConfig::mogon_node());
  EXPECT_EQ(mogon.core_count(), 64);
  EXPECT_GT(mogon.effective_hz(0), 8.0 * 533e6);
  // Memory latency far below the SCC's.
  EXPECT_LT(mogon.memory().config().base_line_latency, SimTime::ns(30));
}

}  // namespace
}  // namespace sccpipe
