// Parallel experiment executor (exec/executor.hpp): pool lifecycle,
// exact-once index coverage, deterministic error reporting, and the load-
// bearing guarantee — run_grid() results are bit-identical at every job
// count, including under deterministic fault injection. This binary is the
// one CI runs under ThreadSanitizer (SCCPIPE_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sccpipe/exec/executor.hpp"

namespace sccpipe {
namespace {

// Shared small scene (built once; the binary's only expensive setup).
const SceneBundle& shared_scene() {
  static SceneBundle* scene = [] {
    CityParams city;
    city.blocks_x = 4;
    city.blocks_z = 4;
    return new SceneBundle(city, CameraConfig{}, 80, 8);
  }();
  return *scene;
}

const WorkloadTrace& shared_trace() {
  static WorkloadTrace* trace =
      new WorkloadTrace(WorkloadTrace::build(shared_scene(), 4));
  return *trace;
}

// ------------------------------------------------------------ default_jobs

TEST(DefaultJobs, EnvOverrideWins) {
  ASSERT_EQ(setenv("SCCPIPE_JOBS", "3", 1), 0);
  EXPECT_EQ(exec::default_jobs(), 3);
  ASSERT_EQ(setenv("SCCPIPE_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(exec::default_jobs(), 1);  // falls back to hardware concurrency
  ASSERT_EQ(unsetenv("SCCPIPE_JOBS"), 0);
  EXPECT_GE(exec::default_jobs(), 1);
}

TEST(DefaultJobs, ExplicitSimJobsMustBePositive) {
  // An explicit --sim-jobs request of 0 or less is a typed InvalidArgument,
  // not a silent substitution of the default (that hid script typos).
  EXPECT_TRUE(exec::validate_sim_jobs(1).ok());
  EXPECT_TRUE(exec::validate_sim_jobs(8).ok());
  EXPECT_EQ(exec::validate_sim_jobs(0).code(), StatusCode::InvalidArgument);
  EXPECT_EQ(exec::validate_sim_jobs(-4).code(), StatusCode::InvalidArgument);
  EXPECT_NE(exec::validate_sim_jobs(0).message().find("--sim-jobs"),
            std::string::npos);
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTask) {
  std::atomic<int> count{0};
  {
    exec::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { count.fetch_add(1); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, UsesMultipleThreads) {
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> started{0};
  {
    exec::ThreadPool pool(4);
    for (int i = 0; i < 4; ++i) {
      pool.submit([&] {
        started.fetch_add(1);
        // Hold until every worker has picked up a task, so four distinct
        // threads must participate.
        while (started.load() < 4) std::this_thread::yield();
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      });
    }
  }
  EXPECT_EQ(seen.size(), 4u);
}

// ------------------------------------------------------------ parallel_for

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  exec::parallel_for(8, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, HandlesEdgeShapes) {
  int zero_calls = 0;
  exec::parallel_for(4, 0, [&](std::size_t) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);

  // More jobs than items must still cover everything (pool is clamped).
  std::vector<std::atomic<int>> hits(2);
  exec::parallel_for(16, 2, [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ParallelFor, RethrowsLowestIndexError) {
  for (const int jobs : {1, 4}) {
    std::atomic<int> ran{0};
    try {
      exec::parallel_for(jobs, 64, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 7 || i == 40) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 7") << "jobs=" << jobs;
    }
    EXPECT_EQ(ran.load(), 64) << "remaining indices still run";
  }
}

TEST(ParallelMap, ReturnsResultsInIndexOrder) {
  const std::vector<int> out = exec::parallel_map<int>(
      8, 257, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

// ---------------------------------------------------------------- run_grid

// Everything determinism-relevant in a RunResult, flattened to text so a
// mismatch prints the exact field that diverged.
std::string fingerprint(const RunResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << "walkthrough=" << r.walkthrough.to_ns() << '\n';
  os << "energy=" << r.chip_energy_joules << " watts=" << r.mean_chip_watts
     << '\n';
  os << "host=" << r.host_busy_sec << ' ' << r.host_extra_energy_joules
     << '\n';
  os << "events=" << r.events_dispatched << '\n';
  for (const double ms : r.frame_done_ms) os << "frame " << ms << '\n';
  for (const StageReport& s : r.stages) {
    os << "stage " << static_cast<int>(s.kind) << ' ' << s.pipeline << ' '
       << s.core << ' ' << s.busy_ms << ' ' << s.wait_ms.median << ' '
       << s.frames << '\n';
  }
  os << "fabric " << r.fabric.mesh_total_bytes << ' '
     << r.fabric.mesh_max_link_bytes << '\n';
  os << "fault " << r.fault.fingerprint << ' ' << r.fault.rcce_drops << ' '
     << r.fault.rcce_retransmissions << ' ' << r.fault.failed << '\n';
  return os.str();
}

std::vector<RunConfig> determinism_grid() {
  std::vector<RunConfig> cfgs;
  for (int k = 1; k <= 4; ++k) {
    for (const Scenario sc :
         {Scenario::SingleRenderer, Scenario::RendererPerPipeline,
          Scenario::HostRenderer}) {
      RunConfig cfg;
      cfg.scenario = sc;
      cfg.pipelines = k;
      // Fault injection + retry churn exercises the cancel-heavy simulator
      // path; the same seed must reproduce identical results on any worker.
      cfg.fault.seed = 7;
      cfg.fault.rcce_drop_rate = 0.02;
      cfg.rcce.retry.max_attempts = 8;
      cfg.rcce.retry.timeout = SimTime::ms(5);
      cfg.rcce.retry.backoff = SimTime::ms(1);
      cfgs.push_back(cfg);
    }
  }
  return cfgs;
}

TEST(RunGrid, IdenticalResultsAcrossJobCounts) {
  const std::vector<RunConfig> cfgs = determinism_grid();
  const std::vector<RunResult> serial =
      exec::run_grid(shared_scene(), shared_trace(), cfgs, 1);
  ASSERT_EQ(serial.size(), cfgs.size());
  for (const int jobs : {4, 8}) {
    const std::vector<RunResult> parallel =
        exec::run_grid(shared_scene(), shared_trace(), cfgs, jobs);
    ASSERT_EQ(parallel.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      EXPECT_EQ(fingerprint(serial[i]), fingerprint(parallel[i]))
          << "config " << i << " diverged at jobs=" << jobs;
    }
  }
}

TEST(TraceRunner, ParallelTraceBuildIsBitIdentical) {
  // The per-frame estimation pass writes disjoint slices; a parallel build
  // must produce exactly the serial trace.
  const SceneBundle& scene = shared_scene();
  const WorkloadTrace serial = WorkloadTrace::build(scene, 4);
  const WorkloadTrace parallel =
      WorkloadTrace::build(scene, 4, exec::trace_runner(8));
  for (int frame = 0; frame < serial.frame_count(); ++frame) {
    for (int k = 1; k <= serial.max_k(); ++k) {
      for (int s = 0; s < k; ++s) {
        const RenderLoad& a = serial.load(frame, k, s);
        const RenderLoad& b = parallel.load(frame, k, s);
        EXPECT_EQ(a.nodes_visited, b.nodes_visited);
        EXPECT_EQ(a.tris_accepted, b.tris_accepted);
        EXPECT_EQ(a.projected_pixels, b.projected_pixels);
      }
    }
  }
}

TEST(RunGrid, RepeatedParallelRunsAreStable) {
  // Same grid twice at the same job count: catches any run-order dependence
  // (e.g. hidden shared state warming up on the first pass).
  const std::vector<RunConfig> cfgs = determinism_grid();
  const std::vector<RunResult> a =
      exec::run_grid(shared_scene(), shared_trace(), cfgs, 4);
  const std::vector<RunResult> b =
      exec::run_grid(shared_scene(), shared_trace(), cfgs, 4);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(fingerprint(a[i]), fingerprint(b[i])) << "config " << i;
  }
}

}  // namespace
}  // namespace sccpipe
