#include <gtest/gtest.h>

#include "sccpipe/support/check.hpp"
#include "sccpipe/support/rng.hpp"
#include "sccpipe/support/stats.hpp"
#include "sccpipe/support/table.hpp"
#include "sccpipe/support/time.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

// ------------------------------------------------------------------ SimTime

TEST(SimTime, ConstructorsAndConversions) {
  EXPECT_EQ(SimTime::ns(1500).to_ns(), 1500);
  EXPECT_DOUBLE_EQ(SimTime::us(2.5).to_ns(), 2500);
  EXPECT_DOUBLE_EQ(SimTime::ms(1.0).to_us(), 1000.0);
  EXPECT_DOUBLE_EQ(SimTime::sec(2.0).to_ms(), 2000.0);
  EXPECT_EQ(SimTime::zero().to_ns(), 0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = 10_ms;
  const SimTime b = 4_ms;
  EXPECT_EQ((a + b).to_ms(), 14.0);
  EXPECT_EQ((a - b).to_ms(), 6.0);
  EXPECT_EQ((a * 2.0).to_ms(), 20.0);
  EXPECT_EQ((a / 2.0).to_ms(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(SimTime, CyclesAtFrequency) {
  // 533 MHz: one cycle is ~1.876 ns.
  const SimTime t = SimTime::cycles(533e6, 533e6);
  EXPECT_DOUBLE_EQ(t.to_sec(), 1.0);
  EXPECT_NEAR(SimTime::cycles(1.0, 533e6).to_ns(), 2, 1);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_GT(1_sec, 999_ms);
  EXPECT_EQ(max(3_ms, 5_ms), 5_ms);
  EXPECT_EQ(min(3_ms, 5_ms), 3_ms);
}

TEST(SimTime, RoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::us(0.0016).to_ns(), 2);
  EXPECT_EQ(SimTime::us(0.0014).to_ns(), 1);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::ns(12).to_string(), "12 ns");
  EXPECT_NE(SimTime::ms(1.5).to_string().find("ms"), std::string::npos);
  EXPECT_NE(SimTime::sec(2.0).to_string().find("s"), std::string::npos);
}

// -------------------------------------------------------------------- Check

TEST(Check, ThrowsWithLocation) {
  EXPECT_THROW(SCCPIPE_CHECK(1 == 2), CheckError);
  try {
    SCCPIPE_CHECK_MSG(false, "value=" << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(SCCPIPE_CHECK(2 + 2 == 4));
}

// ---------------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-0.1, 0.1);
    EXPECT_GE(v, -0.1);
    EXPECT_LT(v, 0.1);
  }
}

TEST(Rng, BelowAndRange) {
  Rng rng{9};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
    const auto r = rng.range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(Rng, UniformCoversRangeRoughly) {
  Rng rng{11};
  OnlineStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.uniform());
  EXPECT_NEAR(st.mean(), 0.5, 0.02);
  EXPECT_LT(st.min(), 0.01);
  EXPECT_GT(st.max(), 0.99);
}

TEST(Rng, ForkIndependent) {
  Rng parent{42};
  Rng child = parent.fork();
  EXPECT_NE(parent.next(), child.next());
}

// -------------------------------------------------------------------- Stats

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats st;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.variance(), 0.0);
  st.add(3.0);
  EXPECT_EQ(st.mean(), 3.0);
  EXPECT_EQ(st.variance(), 0.0);
}

TEST(Quantiles, MedianAndQuartiles) {
  const QuantileSummary s = summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Quantiles, Interpolation) {
  EXPECT_DOUBLE_EQ(quantile_sorted({1.0, 2.0}, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(quantile_sorted({0.0, 10.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted({5.0}, 0.9), 5.0);
}

TEST(Quantiles, EmptySummaryIsZero) {
  const QuantileSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(SampleSet, CollectsAndSummarises) {
  SampleSet set;
  for (int i = 1; i <= 9; ++i) set.add(static_cast<double>(i));
  EXPECT_EQ(set.count(), 9u);
  EXPECT_DOUBLE_EQ(set.summary().median, 5.0);
}

// -------------------------------------------------------------------- Table

TEST(TextTable, AlignsColumns) {
  TextTable t({"config", "1 pl.", "2 pl."});
  t.row().add("alpha").add(1.5, 1).add(22.0, 1);
  t.row().add("beta-long").add(100.25, 2).add(3.0, 0);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("config"), std::string::npos);
  EXPECT_NE(s.find("beta-long"), std::string::npos);
  EXPECT_NE(s.find("100.25"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("------"), std::string::npos);
}

TEST(TextTable, RejectsOverflowingRow) {
  TextTable t({"a", "b"});
  t.row().add("1").add("2");
  EXPECT_THROW(t.add("3"), CheckError);
}

TEST(TextTable, RejectsCellWithoutRow) {
  TextTable t({"a"});
  EXPECT_THROW(t.add("x"), CheckError);
}

TEST(Csv, RendersRows) {
  const std::string csv = to_csv({"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(csv, "a,b\n1,2\n3,4\n");
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace sccpipe
