// Unit and property tests for the versioned snapshot frame
// (support/snapshot) and the run-level snapshot record (core/run_snapshot):
// round trips, the on-disk little-endian golden layout, and — the part that
// earns the "crash-durable" claim — typed rejection of every corrupted,
// truncated, or version-skewed input a crash or a stray write could leave
// behind.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "sccpipe/core/run_snapshot.hpp"
#include "sccpipe/support/snapshot.hpp"

namespace sccpipe {
namespace {

using snapshot::Reader;
using snapshot::Writer;

std::vector<std::uint8_t> sample_frame() {
  Writer w;
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(2.5);
  const std::uint8_t blob[3] = {1, 2, 3};
  w.bytes(blob, sizeof blob);
  w.str("scps");
  return w.finish();
}

// ------------------------------------------------------------- round trips

TEST(Snapshot, RoundTripAllFieldTypes) {
  const std::vector<std::uint8_t> framed = sample_frame();
  Reader r;
  ASSERT_TRUE(r.open(framed).ok());
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  std::int64_t c = 0;
  double d = 0.0;
  std::vector<std::uint8_t> e;
  std::string f;
  ASSERT_TRUE(r.u32(&a).ok());
  ASSERT_TRUE(r.u64(&b).ok());
  ASSERT_TRUE(r.i64(&c).ok());
  ASSERT_TRUE(r.f64(&d).ok());
  ASSERT_TRUE(r.bytes(&e).ok());
  ASSERT_TRUE(r.str(&f).ok());
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefull);
  EXPECT_EQ(c, -42);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(e, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(f, "scps");
}

TEST(Snapshot, EmptyPayloadRoundTrips) {
  Writer w;
  const std::vector<std::uint8_t> framed = w.finish();
  EXPECT_EQ(framed.size(), 20u);  // header only
  Reader r;
  ASSERT_TRUE(r.open(framed).ok());
  EXPECT_TRUE(r.at_end());
}

// The frame layout is a contract: magic, version, and length land at fixed
// offsets, least-significant byte first, on every host.
TEST(Snapshot, GoldenLittleEndianLayout) {
  Writer w;
  w.u32(0x11223344u);
  const std::vector<std::uint8_t> framed = w.finish();
  ASSERT_EQ(framed.size(), 20u + 5u);
  // Magic "SCPS" = 0x53504353 little-endian: 'S' 'C' 'P' 'S'.
  EXPECT_EQ(framed[0], 'S');
  EXPECT_EQ(framed[1], 'C');
  EXPECT_EQ(framed[2], 'P');
  EXPECT_EQ(framed[3], 'S');
  // Version 1.
  EXPECT_EQ(framed[4], 1);
  EXPECT_EQ(framed[5], 0);
  EXPECT_EQ(framed[6], 0);
  EXPECT_EQ(framed[7], 0);
  // Payload length 5 (tag + 4 bytes).
  EXPECT_EQ(framed[8], 5);
  for (int i = 9; i < 16; ++i) EXPECT_EQ(framed[i], 0) << "length byte " << i;
  // Payload: tag U32 then 0x11223344 LSB-first.
  EXPECT_EQ(framed[20], static_cast<std::uint8_t>(snapshot::Tag::U32));
  EXPECT_EQ(framed[21], 0x44);
  EXPECT_EQ(framed[22], 0x33);
  EXPECT_EQ(framed[23], 0x22);
  EXPECT_EQ(framed[24], 0x11);
}

// ------------------------------------------------------ corruption rejection

// Property test: flipping ANY single bit in the frame must yield a typed
// failure — either at open() (header/CRC damage) or as a tag/bounds error
// while reading fields. Silent acceptance of a damaged snapshot is the one
// unacceptable outcome, and this sweeps the whole input space of single-bit
// damage.
TEST(Snapshot, EverySingleBitFlipIsRejected) {
  const std::vector<std::uint8_t> good = sample_frame();
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = good;
      bad[byte] = static_cast<std::uint8_t>(bad[byte] ^ (1u << bit));
      Reader r;
      const Status st = r.open(bad);
      if (!st.ok()) {
        EXPECT_TRUE(st.code() == StatusCode::DataLoss ||
                    st.code() == StatusCode::VersionSkew)
            << "byte " << byte << " bit " << bit << ": " << st.to_string();
        continue;
      }
      // open() passed — only possible if the flip hit bytes the CRC does
      // not cover (the header's CRC field itself is covered via the check;
      // payload flips always change the CRC). In fact every flip must fail:
      ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                    << " was not detected";
    }
  }
}

TEST(Snapshot, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> good = sample_frame();
  for (std::size_t n = 0; n < good.size(); ++n) {
    std::vector<std::uint8_t> bad(good.begin(), good.begin() + n);
    Reader r;
    const Status st = r.open(bad);
    EXPECT_FALSE(st.ok()) << "truncation to " << n << " bytes accepted";
    EXPECT_EQ(st.code(), StatusCode::DataLoss) << "truncation to " << n;
  }
}

TEST(Snapshot, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> bad = sample_frame();
  bad.push_back(0x00);
  Reader r;
  EXPECT_EQ(r.open(bad).code(), StatusCode::DataLoss);
}

TEST(Snapshot, VersionSkewIsTypedDistinctly) {
  std::vector<std::uint8_t> bad = sample_frame();
  bad[4] = static_cast<std::uint8_t>(snapshot::kSnapshotVersion + 1);
  Reader r;
  const Status st = r.open(bad);
  EXPECT_EQ(st.code(), StatusCode::VersionSkew) << st.to_string();
}

TEST(Snapshot, TagMismatchIsDataLoss) {
  Writer w;
  w.u32(7);
  const std::vector<std::uint8_t> framed = w.finish();
  Reader r;
  ASSERT_TRUE(r.open(framed).ok());
  std::uint64_t v = 0;
  EXPECT_EQ(r.u64(&v).code(), StatusCode::DataLoss);  // wrote u32, read u64
}

TEST(Snapshot, ReadPastEndIsDataLoss) {
  Writer w;
  w.u32(7);
  const std::vector<std::uint8_t> framed = w.finish();
  Reader r;
  ASSERT_TRUE(r.open(framed).ok());
  std::uint32_t v = 0;
  ASSERT_TRUE(r.u32(&v).ok());
  EXPECT_EQ(r.u32(&v).code(), StatusCode::DataLoss);
}

// --------------------------------------------------------------- file I/O

TEST(Snapshot, AtomicWriteThenReadBack) {
  const std::string path = "/tmp/sccpipe_snapshot_test.snap";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  const std::vector<std::uint8_t> framed = sample_frame();
  ASSERT_TRUE(snapshot::write_file_atomic(path, framed).ok());
  // The temporary staging file must not survive the rename.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(snapshot::read_file(path, &back).ok());
  EXPECT_EQ(back, framed);
  std::remove(path.c_str());
}

TEST(Snapshot, ReadMissingFileIsNotFound) {
  std::vector<std::uint8_t> out;
  const Status st =
      snapshot::read_file("/tmp/sccpipe_snapshot_test_missing.snap", &out);
  EXPECT_EQ(st.code(), StatusCode::NotFound);
}

TEST(Snapshot, WriteToMissingDirectoryIsInvalidArgument) {
  const Status st = snapshot::write_file_atomic(
      "/tmp/sccpipe_no_such_dir_zzz/x.snap", sample_frame());
  EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
}

// --------------------------------------------------- flag validation (CLI)

TEST(CheckpointArgs, DefaultsAreValid) {
  EXPECT_TRUE(snapshot::validate_checkpoint_args(0, false, "", false).ok());
}

TEST(CheckpointArgs, ExplicitNonPositiveEveryRejected) {
  EXPECT_EQ(snapshot::validate_checkpoint_args(0, true, "x", false).code(),
            StatusCode::InvalidArgument);
  EXPECT_EQ(snapshot::validate_checkpoint_args(-5, true, "x", false).code(),
            StatusCode::InvalidArgument);
}

TEST(CheckpointArgs, EveryOrResumeWithoutPathRejected) {
  EXPECT_EQ(snapshot::validate_checkpoint_args(10, true, "", false).code(),
            StatusCode::InvalidArgument);
  EXPECT_EQ(snapshot::validate_checkpoint_args(0, false, "", true).code(),
            StatusCode::InvalidArgument);
}

TEST(CheckpointArgs, PathWithoutEveryOrResumeRejected) {
  EXPECT_EQ(
      snapshot::validate_checkpoint_args(0, false, "/tmp/x.snap", false).code(),
      StatusCode::InvalidArgument);
}

TEST(CheckpointArgs, UnwritableDirectoryRejected) {
  EXPECT_EQ(snapshot::validate_checkpoint_args(
                10, true, "/tmp/sccpipe_no_such_dir_zzz/x.snap", false)
                .code(),
            StatusCode::InvalidArgument);
}

TEST(CheckpointArgs, ResumeFromMissingFileIsNotFound) {
  EXPECT_EQ(snapshot::validate_checkpoint_args(
                0, false, "/tmp/sccpipe_snapshot_test_missing.snap", true)
                .code(),
            StatusCode::NotFound);
}

TEST(CheckpointArgs, ResumeFromExistingFileAccepted) {
  const std::string path = "/tmp/sccpipe_snapshot_args_test.snap";
  ASSERT_TRUE(snapshot::write_file_atomic(path, sample_frame()).ok());
  EXPECT_TRUE(snapshot::validate_checkpoint_args(0, false, path, true).ok());
  EXPECT_TRUE(snapshot::validate_checkpoint_args(10, true, path, true).ok());
  std::remove(path.c_str());
}

// ------------------------------------------------------------ run snapshot

TEST(RunSnapshot, SerializeParseRoundTrip) {
  RunSnapshot snap;
  snap.config_fingerprint = 0xfeedfacecafebeefull;
  snap.frames_delivered = 123;
  snap.sim_now_ns = 456789;
  snap.crashes_consumed = 2;
  snap.state = {9, 8, 7, 6};
  RunSnapshot back;
  ASSERT_TRUE(parse_run_snapshot(serialize_run_snapshot(snap), &back).ok());
  EXPECT_EQ(back.config_fingerprint, snap.config_fingerprint);
  EXPECT_EQ(back.frames_delivered, snap.frames_delivered);
  EXPECT_EQ(back.sim_now_ns, snap.sim_now_ns);
  EXPECT_EQ(back.crashes_consumed, snap.crashes_consumed);
  EXPECT_EQ(back.state, snap.state);
}

TEST(RunSnapshot, TrailingFieldIsRejected) {
  snapshot::Writer w;
  w.u64(1);
  w.u64(2);
  w.i64(3);
  w.u32(4);
  w.bytes(nullptr, 0);
  w.u32(99);  // one field too many
  RunSnapshot out;
  EXPECT_EQ(parse_run_snapshot(w.finish(), &out).code(), StatusCode::DataLoss);
}

TEST(RunSnapshot, FingerprintSeparatesTrajectoryShapingConfigs) {
  RunConfig a;
  RunConfig b = a;
  EXPECT_EQ(run_config_fingerprint(a), run_config_fingerprint(b));
  b.seed = a.seed + 1;
  EXPECT_NE(run_config_fingerprint(a), run_config_fingerprint(b));
  b = a;
  b.pipelines = a.pipelines + 1;
  EXPECT_NE(run_config_fingerprint(a), run_config_fingerprint(b));
  b = a;
  b.fault.host_drop_rate = 0.25;
  EXPECT_NE(run_config_fingerprint(a), run_config_fingerprint(b));
  b = a;
  b.recovery.detection_deadline = b.recovery.detection_deadline + SimTime::ms(1);
  EXPECT_NE(run_config_fingerprint(a), run_config_fingerprint(b));
}

// Worker count, crash plan, and checkpoint placement must NOT change the
// fingerprint: a snapshot taken at --sim-jobs 1 resumes at --sim-jobs 4, and
// an attempt that disarmed a crash still matches its own earlier snapshot.
TEST(RunSnapshot, FingerprintIgnoresExecutionOnlyConfig) {
  RunConfig a;
  RunConfig b = a;
  b.sim_jobs = 8;
  EXPECT_EQ(run_config_fingerprint(a), run_config_fingerprint(b));
  b = a;
  b.fault.crashes.push_back(SimTime::ms(500));
  EXPECT_EQ(run_config_fingerprint(a), run_config_fingerprint(b));
  b = a;
  b.checkpoint.every_frames = 20;
  b.checkpoint.file = "/tmp/x.snap";
  EXPECT_EQ(run_config_fingerprint(a), run_config_fingerprint(b));
}

}  // namespace
}  // namespace sccpipe
