#include <gtest/gtest.h>

#include <cmath>

#include "sccpipe/geom/aabb.hpp"
#include "sccpipe/geom/frustum.hpp"
#include "sccpipe/geom/mat4.hpp"
#include "sccpipe/geom/vec.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {
namespace {

constexpr float kEps = 1e-5f;

void expect_vec_near(Vec3 a, Vec3 b, float eps = kEps) {
  EXPECT_NEAR(a.x, b.x, eps);
  EXPECT_NEAR(a.y, b.y, eps);
  EXPECT_NEAR(a.z, b.z, eps);
}

// ---------------------------------------------------------------------- Vec

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  expect_vec_near(a + b, {5, 7, 9});
  expect_vec_near(b - a, {3, 3, 3});
  expect_vec_near(a * 2.0f, {2, 4, 6});
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(Vec3, CrossProductOrthogonality) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  expect_vec_near(cross(x, y), {0, 0, 1});
  Rng rng{5};
  for (int i = 0; i < 50; ++i) {
    const Vec3 a{static_cast<float>(rng.uniform(-1, 1)),
                 static_cast<float>(rng.uniform(-1, 1)),
                 static_cast<float>(rng.uniform(-1, 1))};
    const Vec3 b{static_cast<float>(rng.uniform(-1, 1)),
                 static_cast<float>(rng.uniform(-1, 1)),
                 static_cast<float>(rng.uniform(-1, 1))};
    const Vec3 c = cross(a, b);
    EXPECT_NEAR(dot(c, a), 0.0f, 1e-5f);
    EXPECT_NEAR(dot(c, b), 0.0f, 1e-5f);
  }
}

TEST(Vec3, NormalizeUnitLength) {
  const Vec3 v = normalize({3, 4, 0});
  EXPECT_NEAR(length(v), 1.0f, kEps);
  expect_vec_near(v, {0.6f, 0.8f, 0.0f});
  expect_vec_near(normalize({0, 0, 0}), {0, 0, 0});  // degenerate input
}

TEST(Vec4, LerpEndpointsAndMidpoint) {
  const Vec4 a{0, 0, 0, 1};
  const Vec4 b{2, 4, 6, 1};
  const Vec4 mid = lerp(a, b, 0.5f);
  EXPECT_FLOAT_EQ(mid.x, 1.0f);
  EXPECT_FLOAT_EQ(mid.w, 1.0f);
  EXPECT_FLOAT_EQ(lerp(a, b, 0.0f).y, 0.0f);
  EXPECT_FLOAT_EQ(lerp(a, b, 1.0f).z, 6.0f);
}

TEST(Scalar, Clamp01) {
  EXPECT_FLOAT_EQ(clamp01(-0.5f), 0.0f);
  EXPECT_FLOAT_EQ(clamp01(0.5f), 0.5f);
  EXPECT_FLOAT_EQ(clamp01(1.5f), 1.0f);
}

// --------------------------------------------------------------------- Mat4

TEST(Mat4, IdentityIsNeutral) {
  const Mat4 id = Mat4::identity();
  const Vec4 v{1, 2, 3, 1};
  const Vec4 r = id * v;
  EXPECT_FLOAT_EQ(r.x, 1.0f);
  EXPECT_FLOAT_EQ(r.y, 2.0f);
  EXPECT_FLOAT_EQ(r.z, 3.0f);
  EXPECT_FLOAT_EQ(r.w, 1.0f);
}

TEST(Mat4, TranslateAndScale) {
  const Vec4 p = Mat4::translate({1, 2, 3}) * Vec4{0, 0, 0, 1};
  EXPECT_FLOAT_EQ(p.x, 1.0f);
  EXPECT_FLOAT_EQ(p.z, 3.0f);
  const Vec4 s = Mat4::scale({2, 3, 4}) * Vec4{1, 1, 1, 1};
  EXPECT_FLOAT_EQ(s.y, 3.0f);
  // Direction vectors (w = 0) ignore translation.
  const Vec4 d = Mat4::translate({5, 5, 5}) * Vec4{1, 0, 0, 0};
  EXPECT_FLOAT_EQ(d.x, 1.0f);
  EXPECT_FLOAT_EQ(d.w, 0.0f);
}

TEST(Mat4, RotateYQuarterTurn) {
  const Vec4 r = Mat4::rotate_y(3.14159265f / 2.0f) * Vec4{1, 0, 0, 1};
  EXPECT_NEAR(r.x, 0.0f, kEps);
  EXPECT_NEAR(r.z, -1.0f, kEps);
}

TEST(Mat4, MultiplicationComposesRightToLeft) {
  const Mat4 t = Mat4::translate({1, 0, 0});
  const Mat4 s = Mat4::scale({2, 2, 2});
  // (t * s) * v == t * (s * v): scale then translate.
  const Vec4 v = (t * s) * Vec4{1, 0, 0, 1};
  EXPECT_FLOAT_EQ(v.x, 3.0f);
}

TEST(Mat4, PerspectiveMapsNearFarToNdc) {
  const Mat4 p = Mat4::perspective(1.0f, 1.0f, 1.0f, 100.0f);
  // Point on the near plane -> NDC z = -1.
  Vec4 n = p * Vec4{0, 0, -1.0f, 1};
  EXPECT_NEAR(n.z / n.w, -1.0f, 1e-4f);
  Vec4 f = p * Vec4{0, 0, -100.0f, 1};
  EXPECT_NEAR(f.z / f.w, 1.0f, 1e-4f);
}

TEST(Mat4, FrustumMatchesSymmetricPerspective) {
  const float fovy = 1.0f, aspect = 1.5f, zn = 0.5f, zf = 50.0f;
  const float top = zn * std::tan(fovy * 0.5f);
  const Mat4 a = Mat4::perspective(fovy, aspect, zn, zf);
  const Mat4 b = Mat4::frustum(-top * aspect, top * aspect, -top, top, zn, zf);
  Rng rng{3};
  for (int i = 0; i < 20; ++i) {
    const Vec4 v{static_cast<float>(rng.uniform(-5, 5)),
                 static_cast<float>(rng.uniform(-5, 5)),
                 static_cast<float>(rng.uniform(-40, -1)), 1.0f};
    const Vec4 ra = a * v;
    const Vec4 rb = b * v;
    EXPECT_NEAR(ra.x, rb.x, 1e-3f);
    EXPECT_NEAR(ra.y, rb.y, 1e-3f);
    EXPECT_NEAR(ra.z, rb.z, 1e-3f);
    EXPECT_NEAR(ra.w, rb.w, 1e-3f);
  }
}

TEST(Mat4, LookAtPutsEyeAtOrigin) {
  const Mat4 v = Mat4::look_at({5, 5, 5}, {0, 0, 0}, {0, 1, 0});
  const Vec4 eye = v * Vec4{5, 5, 5, 1};
  EXPECT_NEAR(eye.x, 0.0f, kEps);
  EXPECT_NEAR(eye.y, 0.0f, kEps);
  EXPECT_NEAR(eye.z, 0.0f, kEps);
  // The target lies straight ahead (negative z in eye space).
  const Vec4 tgt = v * Vec4{0, 0, 0, 1};
  EXPECT_NEAR(tgt.x, 0.0f, kEps);
  EXPECT_LT(tgt.z, 0.0f);
}

// --------------------------------------------------------------------- Aabb

TEST(Aabb, ExtendAndContain) {
  Aabb box;
  EXPECT_FALSE(box.valid());
  box.extend(Vec3{0, 0, 0});
  box.extend(Vec3{1, 2, 3});
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.contains({0.5f, 1.0f, 1.5f}));
  EXPECT_FALSE(box.contains({1.5f, 0, 0}));
  expect_vec_near(box.center(), {0.5f, 1.0f, 1.5f});
}

TEST(Aabb, Overlaps) {
  Aabb a;
  a.extend(Vec3{0, 0, 0});
  a.extend(Vec3{2, 2, 2});
  Aabb b;
  b.extend(Vec3{1, 1, 1});
  b.extend(Vec3{3, 3, 3});
  Aabb c;
  c.extend(Vec3{5, 5, 5});
  c.extend(Vec3{6, 6, 6});
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  // Touching faces count as overlap.
  Aabb d;
  d.extend(Vec3{2, 0, 0});
  d.extend(Vec3{4, 2, 2});
  EXPECT_TRUE(a.overlaps(d));
}

// ------------------------------------------------------------------ Frustum

struct FrustumFixture : ::testing::Test {
  const Mat4 proj = Mat4::perspective(1.0472f, 1.0f, 0.5f, 100.0f);
  const Mat4 view = Mat4::look_at({0, 0, 0}, {0, 0, -1}, {0, 1, 0});
  const Frustum frustum{proj * view};
};

TEST_F(FrustumFixture, ContainsPointsAhead) {
  EXPECT_TRUE(frustum.contains({0, 0, -10}));
  EXPECT_FALSE(frustum.contains({0, 0, 10}));    // behind the eye
  EXPECT_FALSE(frustum.contains({0, 0, -0.1f})); // before near plane
  EXPECT_FALSE(frustum.contains({0, 0, -200}));  // beyond far plane
  EXPECT_FALSE(frustum.contains({50, 0, -10}));  // far off to the side
}

TEST_F(FrustumFixture, ClassifyBoxes) {
  Aabb inside;
  inside.extend(Vec3{-1, -1, -10});
  inside.extend(Vec3{1, 1, -12});
  EXPECT_EQ(frustum.classify(inside), CullResult::Inside);

  Aabb outside;
  outside.extend(Vec3{0, 0, 10});
  outside.extend(Vec3{1, 1, 12});
  EXPECT_EQ(frustum.classify(outside), CullResult::Outside);

  Aabb straddling;
  straddling.extend(Vec3{-1, -1, 1});
  straddling.extend(Vec3{1, 1, -5});
  EXPECT_EQ(frustum.classify(straddling), CullResult::Intersects);
}

TEST_F(FrustumFixture, ClassificationIsConservative) {
  // Property: a box containing a point that the frustum contains must not
  // be classified Outside.
  Rng rng{17};
  for (int i = 0; i < 300; ++i) {
    const Vec3 p{static_cast<float>(rng.uniform(-30, 30)),
                 static_cast<float>(rng.uniform(-30, 30)),
                 static_cast<float>(rng.uniform(-90, 0))};
    Aabb box;
    box.extend(p);
    box.extend(p + Vec3{2, 2, 2});
    if (frustum.contains(p)) {
      EXPECT_NE(frustum.classify(box), CullResult::Outside);
    }
    // And an Inside box must contain only contained corners.
    if (frustum.classify(box) == CullResult::Inside) {
      EXPECT_TRUE(frustum.contains(box.lo));
      EXPECT_TRUE(frustum.contains(box.hi));
    }
  }
}

}  // namespace
}  // namespace sccpipe
