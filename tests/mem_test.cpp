#include <gtest/gtest.h>

#include "sccpipe/mem/cache.hpp"
#include "sccpipe/mem/memory.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

// -------------------------------------------------------------------- Cache

TEST(CacheModel, SccGeometry) {
  CacheModel cache;
  EXPECT_EQ(cache.config().l1_bytes, 16u * 1024u);
  EXPECT_EQ(cache.config().l2_bytes, 256u * 1024u);
  EXPECT_EQ(cache.config().line_bytes, 32u);
  EXPECT_EQ(cache.config().ways, 4u);
}

TEST(CacheModel, LineCount) {
  CacheModel cache;
  EXPECT_DOUBLE_EQ(cache.lines(32.0), 1.0);
  EXPECT_DOUBLE_EQ(cache.lines(33.0), 2.0);
  EXPECT_DOUBLE_EQ(cache.lines(0.0), 0.0);
}

TEST(CacheModel, WorkingSetFits) {
  CacheModel cache;
  EXPECT_TRUE(cache.fits_l1(8 * 1024));
  EXPECT_FALSE(cache.fits_l1(16 * 1024));  // headroom factor < 1
  EXPECT_TRUE(cache.fits_l2(200 * 1024));
  EXPECT_FALSE(cache.fits_l2(300 * 1024));
}

TEST(CacheModel, StreamingTrafficIsCompulsoryPlusWriteback) {
  CacheModel cache;
  // Single pass, small reuse window: in + 2*out.
  EXPECT_DOUBLE_EQ(cache.dram_traffic(1000.0, 1000.0, 4096.0, 1.0), 3000.0);
}

TEST(CacheModel, SmallReuseWindowAbsorbsRetouches) {
  CacheModel cache;
  // The blur's 3-row window fits L2 easily: re-touches are free. This is
  // why Fig. 12 shows no cache cliff for any strip size.
  const double t = cache.dram_traffic(640000.0, 640000.0, 4800.0, 9.0);
  EXPECT_DOUBLE_EQ(t, 640000.0 + 2.0 * 640000.0);
}

TEST(CacheModel, LargeReuseWindowSpills) {
  CacheModel cache;
  const double t = cache.dram_traffic(1.0e6, 0.0, 1.0e6, 3.0);
  EXPECT_DOUBLE_EQ(t, 3.0e6);  // every touch misses
}

// ------------------------------------------------------------- MemorySystem

struct MemFixture : ::testing::Test {
  Simulator sim;
  MeshTopology topo;
  MeshModel mesh{topo};
  MemorySystem mem{sim, topo, mesh};
};

TEST_F(MemFixture, BulkCompletesAndAccounts) {
  bool done = false;
  mem.bulk(0, 1.0e6, 1.0e8, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  const McStats& st = mem.stats(topo.home_mc(0));
  EXPECT_DOUBLE_EQ(st.bulk_bytes, 1.0e6);
  EXPECT_EQ(st.bulk_flows, 1u);
}

TEST_F(MemFixture, BulkRespectsCoreRateCap) {
  SimTime done = SimTime::zero();
  // 1 MB at a 100 MB/s core cap: ~10 ms (plus small mesh time).
  mem.bulk(0, 1.0e6, 1.0e8, [&] { done = sim.now(); });
  sim.run();
  EXPECT_GE(done, 10_ms);
  EXPECT_LT(done, 11_ms);
}

TEST_F(MemFixture, ConcurrentBulksOnSameMcShareBandwidth) {
  // Two uncapped flows through one controller take twice as long as one.
  SimTime done_one, done_two;
  {
    Simulator s2;
    MeshModel mesh2{topo};
    MemorySystem mem2{s2, topo, mesh2};
    mem2.bulk(0, 1.0e7, 0.0, [&] { done_one = s2.now(); });
    s2.run();
  }
  mem.bulk(0, 1.0e7, 0.0, [&] { done_two = sim.now(); });
  mem.bulk(1, 1.0e7, 0.0, [&] {});
  sim.run();
  EXPECT_GT(done_two.to_sec(), 1.8 * done_one.to_sec());
}

TEST_F(MemFixture, LatencyBoundScalesWithAccesses) {
  const SimTime t1 = mem.latency_bound(0, 1000.0);
  const SimTime t2 = mem.latency_bound(0, 2000.0);
  EXPECT_NEAR(t2.to_sec(), 2.0 * t1.to_sec(), 1e-12);
}

TEST_F(MemFixture, LatencyGrowsWithDistanceToMc) {
  // Core 0 sits on its MC; a core in the middle of the mesh is hops away.
  const CoreId far_core = 2 * topo.tile_at({2, 1});
  EXPECT_GT(mem.latency_bound(far_core, 1000.0),
            mem.latency_bound(0, 1000.0));
}

TEST_F(MemFixture, LatencyInflatesUnderLoad) {
  const SimTime idle = mem.latency_bound(0, 1000.0);
  // Register two competing walkers on the same controller (cores 0 and 1
  // share MC 0).
  mem.register_latency_stream(1);
  mem.register_latency_stream(2);
  const SimTime loaded = mem.latency_bound(0, 1000.0);
  EXPECT_GT(loaded, idle);
  mem.unregister_latency_stream(1);
  mem.unregister_latency_stream(2);
  EXPECT_EQ(mem.latency_bound(0, 1000.0), idle);
}

TEST_F(MemFixture, LoadCountsBulkAndLatencyStreams) {
  EXPECT_DOUBLE_EQ(mem.mc_load(0), 0.0);
  mem.register_latency_stream(0);
  EXPECT_DOUBLE_EQ(mem.mc_load(0), 1.0);
  bool done = false;
  mem.bulk(0, 1.0e6, 0.0, [&] { done = true; });
  EXPECT_DOUBLE_EQ(mem.mc_load(0), 2.0);
  mem.unregister_latency_stream(0);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(mem.mc_load(0), 0.0);
}

TEST_F(MemFixture, UnbalancedUnregisterThrows) {
  EXPECT_THROW(mem.unregister_latency_stream(0), CheckError);
}

TEST_F(MemFixture, LatencyStreamScopeIsRaii) {
  {
    LatencyStreamScope scope(mem, 0);
    EXPECT_DOUBLE_EQ(mem.mc_load(0), 1.0);
  }
  EXPECT_DOUBLE_EQ(mem.mc_load(0), 0.0);
}

TEST_F(MemFixture, DifferentQuadrantsUseDifferentControllers) {
  // A core near (5,3) homes on MC 3; its bulk should not appear on MC 0.
  const CoreId c = 2 * topo.tile_at({5, 3});
  mem.bulk(c, 500.0, 0.0, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(mem.stats(0).bulk_bytes, 0.0);
  EXPECT_DOUBLE_EQ(mem.stats(3).bulk_bytes, 500.0);
}

}  // namespace
}  // namespace sccpipe
