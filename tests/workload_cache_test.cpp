#include <gtest/gtest.h>

#include <filesystem>

#include "sccpipe/core/workload.hpp"

namespace sccpipe {
namespace {

struct CacheFixture : ::testing::Test {
  static CityParams city() {
    CityParams p;
    p.blocks_x = 4;
    p.blocks_z = 4;
    return p;
  }
  SceneBundle scene{city(), CameraConfig{}, 80, 6};
  const std::string path = "/tmp/sccpipe_trace_cache_test.bin";

  void TearDown() override { std::filesystem::remove(path); }
};

TEST_F(CacheFixture, SaveLoadRoundTripIsExact) {
  const WorkloadTrace original = WorkloadTrace::build(scene, 3);
  original.save(path, scene);
  const auto loaded = WorkloadTrace::load(path, scene, 3);
  ASSERT_TRUE(loaded.has_value());
  for (int f = 0; f < 6; ++f) {
    for (int k = 1; k <= 3; ++k) {
      for (int s = 0; s < k; ++s) {
        const RenderLoad& a = original.load(f, k, s);
        const RenderLoad& b = loaded->load(f, k, s);
        EXPECT_EQ(a.nodes_visited, b.nodes_visited);
        EXPECT_EQ(a.tris_accepted, b.tris_accepted);
        EXPECT_EQ(a.projected_pixels, b.projected_pixels);
      }
    }
  }
}

TEST_F(CacheFixture, MissingFileReturnsEmpty) {
  EXPECT_FALSE(WorkloadTrace::load("/tmp/nonexistent.cache", scene, 3));
}

TEST_F(CacheFixture, FingerprintMismatchRejected) {
  WorkloadTrace::build(scene, 3).save(path, scene);
  // Different max_k.
  EXPECT_FALSE(WorkloadTrace::load(path, scene, 4));
  // Different scene (other seed).
  CityParams other = city();
  other.seed ^= 1;
  SceneBundle other_scene(other, CameraConfig{}, 80, 6);
  EXPECT_FALSE(WorkloadTrace::load(path, other_scene, 3));
  // Different frame count.
  SceneBundle longer(city(), CameraConfig{}, 80, 7);
  EXPECT_FALSE(WorkloadTrace::load(path, longer, 3));
}

TEST_F(CacheFixture, TruncatedFileRejected) {
  WorkloadTrace::build(scene, 3).save(path, scene);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 17);
  EXPECT_FALSE(WorkloadTrace::load(path, scene, 3));
}

TEST_F(CacheFixture, BuildCachedCreatesAndReuses) {
  EXPECT_FALSE(std::filesystem::exists(path));
  const WorkloadTrace first = WorkloadTrace::build_cached(scene, 3, path);
  EXPECT_TRUE(std::filesystem::exists(path));
  const WorkloadTrace second = WorkloadTrace::build_cached(scene, 3, path);
  EXPECT_EQ(first.load(2, 3, 1).tris_accepted,
            second.load(2, 3, 1).tris_accepted);
}

}  // namespace
}  // namespace sccpipe
