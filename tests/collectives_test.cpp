#include <gtest/gtest.h>

#include "sccpipe/rcce/collectives.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

struct CollectivesFixture : ::testing::Test {
  Simulator sim;
  SccChip chip{sim};
  RcceComm comm{chip};
  RcceCollectives coll{comm};
  const std::vector<CoreId> group{0, 2, 4, 6};
};

TEST_F(CollectivesFixture, BroadcastReachesEveryMember) {
  bool done = false;
  coll.broadcast(0, group, 4096.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  // One message per non-root member.
  EXPECT_EQ(comm.messages_delivered(), 3u);
}

TEST_F(CollectivesFixture, ScatterDeliversPerMemberSlices) {
  bool done = false;
  coll.scatter(0, group, 91.0 * 1024.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(comm.messages_delivered(), 3u);
}

TEST_F(CollectivesFixture, GatherCollectsAtRoot) {
  bool done = false;
  coll.gather(6, group, 2048.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(comm.messages_delivered(), 3u);
}

TEST_F(CollectivesFixture, ReduceAddsCombineTime) {
  SimTime gather_done, reduce_done;
  coll.gather(0, group, 8192.0, [&] { gather_done = sim.now(); });
  sim.run();
  const SimTime base = sim.now();
  coll.reduce(0, group, 8192.0, /*combine_cycles=*/5.0e6,
              [&] { reduce_done = sim.now(); });
  sim.run();
  // Reduce = gather + 3 combines of ~9.4 ms at 533 MHz.
  const double combine_ms = 3.0 * 5.0e6 / 533e6 * 1e3;
  EXPECT_NEAR((reduce_done - base).to_ms() - gather_done.to_ms(), combine_ms,
              0.15 * combine_ms + 0.5);
}

TEST_F(CollectivesFixture, TimeGrowsWithGroupSize) {
  SimTime small_done;
  coll.broadcast(0, {0, 2}, 65536.0, [&] { small_done = sim.now(); });
  sim.run();
  const SimTime base = sim.now();
  SimTime large_done;
  coll.broadcast(0, {0, 2, 4, 6, 8, 10}, 65536.0,
                 [&] { large_done = sim.now(); });
  sim.run();
  // Linear rooted collective: ~5x the single-transfer cost vs ~1x.
  EXPECT_GT((large_done - base).to_ms(), 3.0 * small_done.to_ms());
}

TEST_F(CollectivesFixture, SingletonGroupIsImmediate) {
  bool done = false;
  coll.broadcast(3, {3}, 1.0e6, [&] { done = true; });
  EXPECT_TRUE(done);  // nothing to send
  EXPECT_EQ(comm.messages_delivered(), 0u);
}

TEST_F(CollectivesFixture, RootMustBeInGroup) {
  EXPECT_THROW(coll.broadcast(9, group, 10.0, [] {}), CheckError);
  EXPECT_THROW(coll.gather(1, group, 10.0, [] {}), CheckError);
}

TEST_F(CollectivesFixture, CollectivesCompose) {
  // Scatter strips, then gather results — the paper's distribute/collect
  // pattern as collectives.
  bool done = false;
  coll.scatter(0, group, 50000.0, [&] {
    coll.gather(0, group, 50000.0, [&] { done = true; });
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(comm.messages_delivered(), 6u);
}

}  // namespace
}  // namespace sccpipe
