#include <gtest/gtest.h>

#include <vector>

#include "sccpipe/core/channel.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

struct ChannelFixture : ::testing::Test {
  Simulator sim;
  SccChip chip{sim};
  RcceComm comm{chip};

  static FrameToken token(int frame, double bytes = 1024.0) {
    FrameToken t;
    t.frame = frame;
    t.strip = StripRange{0, 10};
    t.bytes = bytes;
    return t;
  }
};

// --------------------------------------------------------------- SccChannel

TEST_F(ChannelFixture, DeliversTokenWithPayloadIntact) {
  SccChannel ch(comm, 0, 2);
  FrameToken tok = token(7);
  tok.image = std::make_shared<Image>(4, 4, Color{1, 2, 3, 255});
  bool sent = false;
  FrameToken got;
  ch.send(std::move(tok), [&] { sent = true; });
  ch.recv([&](FrameToken t, SimTime) { got = std::move(t); });
  sim.run();
  EXPECT_TRUE(sent);
  EXPECT_EQ(got.frame, 7);
  ASSERT_NE(got.image, nullptr);
  EXPECT_EQ(got.image->get(1, 1), (Color{1, 2, 3, 255}));
}

TEST_F(ChannelFixture, MatchedAtIsRendezvousInstant) {
  SccChannel ch(comm, 0, 2);
  // Sender arrives at t=0; receiver posts at 5 ms: matched at 5 ms.
  ch.send(token(0), [] {});
  SimTime matched;
  sim.schedule_at(5_ms, [&] {
    ch.recv([&](FrameToken, SimTime m) { matched = m; });
  });
  sim.run();
  EXPECT_EQ(matched, 5_ms);
}

TEST_F(ChannelFixture, MatchedAtUsesSenderTimeWhenReceiverWaits) {
  SccChannel ch(comm, 0, 2);
  SimTime matched;
  ch.recv([&](FrameToken, SimTime m) { matched = m; });
  sim.schedule_at(3_ms, [&] { ch.send(token(0), [] {}); });
  sim.run();
  EXPECT_EQ(matched, 3_ms);
}

TEST_F(ChannelFixture, TokensStayInOrder) {
  SccChannel ch(comm, 0, 2);
  std::vector<int> got;
  for (int f = 0; f < 3; ++f) {
    ch.send(token(f), [] {});
  }
  for (int f = 0; f < 3; ++f) {
    ch.recv([&](FrameToken t, SimTime) { got.push_back(t.frame); });
  }
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST_F(ChannelFixture, SendBlocksUntilReceiverConsumes) {
  SccChannel ch(comm, 0, 2);
  SimTime send_done;
  ch.send(token(0, 100000.0), [&] { send_done = sim.now(); });
  sim.run();
  EXPECT_TRUE(send_done.is_zero());  // no receiver yet: rendezvous pending
  ch.recv([](FrameToken, SimTime) {});
  sim.run();
  EXPECT_GT(send_done, SimTime::zero());
}

// --------------------------------------------------------- HostToChipChannel

TEST_F(ChannelFixture, HostChannelChargesConsumerCore) {
  HostCpu host(sim);
  HostToChipChannel ch(host, chip, /*consumer=*/0, HostLinkConfig::mcpc());
  chip.allocate_core(0);
  FrameToken got;
  ch.send(token(3, 640.0 * 1024.0), [] {});
  ch.recv([&](FrameToken t, SimTime) { got = std::move(t); });
  sim.run();
  EXPECT_EQ(got.frame, 3);
  // The UDP receive burned ~120 ms of the consumer core at 533 MHz.
  EXPECT_GT(chip.core_busy_time(0), 80_ms);
  // The host paid its (much cheaper) stack cost too.
  EXPECT_GT(host.busy_time(), SimTime::zero());
  EXPECT_LT(host.busy_time(), 5_ms);
}

TEST_F(ChannelFixture, HostChannelMatchedAtIsWireArrival) {
  HostCpu host(sim);
  HostToChipChannel ch(host, chip, 0, HostLinkConfig::mcpc());
  SimTime matched, delivered;
  ch.send(token(0, 8.0e5), [] {});
  ch.recv([&](FrameToken, SimTime m) {
    matched = m;
    delivered = sim.now();
  });
  sim.run();
  // Delivery strictly after match (the consumer works the UDP stack).
  EXPECT_GT(delivered, matched);
  EXPECT_GT(matched, SimTime::zero());
}

// ------------------------------------------------------- ChipToViewerChannel

TEST_F(ChannelFixture, ViewerChannelSinksFrames) {
  std::vector<int> shown;
  SimTime last_arrival;
  ChipToViewerChannel viewer(chip, /*producer=*/1, HostLinkConfig::mcpc(),
                             [&](const FrameToken& t, SimTime at) {
                               shown.push_back(t.frame);
                               last_arrival = at;
                             });
  chip.allocate_core(1);
  viewer.send(token(0, 640.0 * 1024.0), [] {});
  sim.run();
  viewer.send(token(1, 640.0 * 1024.0), [] {});
  sim.run();
  EXPECT_EQ(shown, (std::vector<int>{0, 1}));
  EXPECT_GT(last_arrival, SimTime::zero());
  // The producer core paid the UDP send (~25 ms/frame at 533 MHz).
  EXPECT_GT(chip.core_busy_time(1), 30_ms);
}

TEST_F(ChannelFixture, ViewerChannelRecvIsForbidden) {
  ChipToViewerChannel viewer(chip, 0, HostLinkConfig::mcpc(),
                             [](const FrameToken&, SimTime) {});
  EXPECT_THROW(viewer.recv([](FrameToken, SimTime) {}), CheckError);
}

}  // namespace
}  // namespace sccpipe
