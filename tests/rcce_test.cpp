#include <gtest/gtest.h>

#include <vector>

#include "sccpipe/rcce/rcce.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

struct RcceFixture : ::testing::Test {
  Simulator sim;
  SccChip chip{sim};
  RcceComm comm{chip};
};

TEST_F(RcceFixture, SendThenRecvDelivers) {
  bool sent = false, received = false;
  comm.send(0, 2, 1024.0, [&] { sent = true; });
  EXPECT_FALSE(sent);  // rendezvous: blocked until the receiver arrives
  comm.recv(2, 0, [&] { received = true; });
  sim.run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(received);
  EXPECT_EQ(comm.messages_delivered(), 1u);
}

TEST_F(RcceFixture, RecvThenSendDelivers) {
  bool received = false;
  comm.recv(5, 1, [&] { received = true; });
  sim.run();
  EXPECT_FALSE(received);  // no matching send yet
  comm.send(1, 5, 64.0, [] {});
  sim.run();
  EXPECT_TRUE(received);
}

TEST_F(RcceFixture, MessagesMatchPairwiseFifo) {
  std::vector<int> order;
  comm.send(0, 2, 100.0, [&] { order.push_back(1); });
  comm.send(0, 2, 100.0, [&] { order.push_back(2); });
  comm.recv(2, 0, [&] { order.push_back(10); });
  comm.recv(2, 0, [&] { order.push_back(20); });
  sim.run();
  ASSERT_EQ(order.size(), 4u);
  // First message completes fully (sender then receiver) before the second.
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 10);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 20);
}

TEST_F(RcceFixture, DistinctPairsDoNotCrossMatch) {
  bool wrong = false, right = false;
  comm.recv(3, 1, [&] { right = true; });
  comm.send(0, 3, 10.0, [&] { wrong = true; });  // from 0, not 1
  sim.run();
  EXPECT_FALSE(right);
  EXPECT_FALSE(wrong);
  comm.recv(3, 0, [] {});
  sim.run();
  EXPECT_TRUE(wrong);  // now the (0,3) pair matches
}

TEST_F(RcceFixture, TransferTimeGrowsWithSize) {
  SimTime t_small, t_big;
  comm.send(0, 2, 1024.0, [] {});
  comm.recv(2, 0, [&] { t_small = sim.now(); });
  sim.run();
  const SimTime base = sim.now();
  comm.send(0, 2, 640.0 * 1024.0, [] {});
  comm.recv(2, 0, [&] { t_big = sim.now(); });
  sim.run();
  EXPECT_GT((t_big - base).to_ms(), 5.0 * t_small.to_ms());
}

TEST_F(RcceFixture, TransferBouncesThroughBothDramPartitions) {
  // The central SCC cost: sender reads from its partition, receiver writes
  // to its own. Both controllers see the payload.
  const McId sender_mc = chip.topology().home_mc(0);
  const CoreId far_core = 2 * chip.topology().tile_at({5, 2});
  const McId recv_mc = chip.topology().home_mc(far_core);
  ASSERT_NE(sender_mc, recv_mc);
  comm.send(0, far_core, 50000.0, [] {});
  comm.recv(far_core, 0, [] {});
  sim.run();
  EXPECT_GE(chip.memory().stats(sender_mc).bulk_bytes, 50000.0);
  EXPECT_GE(chip.memory().stats(recv_mc).bulk_bytes, 50000.0);
}

TEST_F(RcceFixture, ChunkCount) {
  EXPECT_EQ(comm.chunk_count(0.0), 1);
  EXPECT_EQ(comm.chunk_count(8192.0), 1);
  EXPECT_EQ(comm.chunk_count(8193.0), 2);
  EXPECT_EQ(comm.chunk_count(640.0 * 1024.0), 80);
}

TEST_F(RcceFixture, IdealTransferTimeIsPlausible) {
  // A 91 KB strip hand-off on an idle chip: around a millisecond or two
  // (two 133 MB/s partition copies dominate).
  const SimTime t = comm.ideal_transfer_time(0, 2, 91.0 * 1024.0);
  EXPECT_GT(t, SimTime::ms(0.8));
  EXPECT_LT(t, SimTime::ms(4.0));
}

TEST_F(RcceFixture, SelfSendRejected) {
  EXPECT_THROW(comm.send(3, 3, 10.0, [] {}), CheckError);
}

TEST_F(RcceFixture, InvalidCoreRejected) {
  EXPECT_THROW(comm.send(0, 99, 10.0, [] {}), CheckError);
  EXPECT_THROW(comm.recv(-1, 0, [] {}), CheckError);
}

TEST_F(RcceFixture, BarrierReleasesWhenAllArrive) {
  RcceComm::Barrier barrier(comm, {0, 1, 2});
  int released = 0;
  barrier.arrive(0, [&] { ++released; });
  barrier.arrive(1, [&] { ++released; });
  EXPECT_EQ(released, 0);
  barrier.arrive(2, [&] { ++released; });
  EXPECT_EQ(released, 3);
}

TEST_F(RcceFixture, BarrierIsReusable) {
  RcceComm::Barrier barrier(comm, {0, 1});
  int round = 0;
  barrier.arrive(0, [&] { ++round; });
  barrier.arrive(1, [&] { ++round; });
  EXPECT_EQ(round, 2);
  barrier.arrive(1, [&] { ++round; });
  barrier.arrive(0, [&] { ++round; });
  EXPECT_EQ(round, 4);
}

TEST_F(RcceFixture, BarrierRejectsOutsiderAndDoubleArrival) {
  RcceComm::Barrier barrier(comm, {0, 1});
  EXPECT_THROW(barrier.arrive(7, [] {}), CheckError);
  barrier.arrive(0, [] {});
  EXPECT_THROW(barrier.arrive(0, [] {}), CheckError);
}

TEST_F(RcceFixture, ConcurrentTransfersContendOnSharedMc) {
  // Two transfers whose endpoints share memory controllers take longer
  // than the same transfers run back-to-back in isolation would suggest.
  SimTime solo_done;
  {
    Simulator s2;
    SccChip c2(s2);
    RcceComm comm2(c2);
    comm2.send(0, 2, 200000.0, [] {});
    comm2.recv(2, 0, [&] { solo_done = s2.now(); });
    s2.run();
  }
  SimTime a_done, b_done;
  comm.send(0, 2, 200000.0, [] {});
  comm.recv(2, 0, [&] { a_done = sim.now(); });
  comm.send(1, 3, 200000.0, [] {});
  comm.recv(3, 1, [&] { b_done = sim.now(); });
  sim.run();
  EXPECT_GT(max(a_done, b_done), solo_done);
}

}  // namespace
}  // namespace sccpipe
