#include <gtest/gtest.h>

#include "sccpipe/noc/mesh.hpp"
#include "sccpipe/noc/topology.hpp"
#include "sccpipe/support/check.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

// ---------------------------------------------------------------- Topology

TEST(Topology, SccDefaults) {
  MeshTopology topo;
  EXPECT_EQ(topo.tile_count(), 24);
  EXPECT_EQ(topo.core_count(), 48);
  EXPECT_EQ(topo.mc_count(), 4);
}

TEST(Topology, CoreToTileMapping) {
  MeshTopology topo;
  EXPECT_EQ(topo.tile_of(0), 0);
  EXPECT_EQ(topo.tile_of(1), 0);
  EXPECT_EQ(topo.tile_of(2), 1);
  EXPECT_EQ(topo.tile_of(47), 23);
  const TileCoord c = topo.coord_of(7);
  EXPECT_EQ(c.x, 1);
  EXPECT_EQ(c.y, 1);
  EXPECT_EQ(topo.tile_at(c), 7);
}

TEST(Topology, RejectsInvalidCores) {
  MeshTopology topo;
  EXPECT_THROW(topo.tile_of(-1), CheckError);
  EXPECT_THROW(topo.tile_of(48), CheckError);
  EXPECT_FALSE(topo.valid_core(48));
  EXPECT_TRUE(topo.valid_core(0));
}

TEST(Topology, HopDistanceIsManhattan) {
  MeshTopology topo;
  EXPECT_EQ(topo.hop_distance({0, 0}, {5, 3}), 8);
  EXPECT_EQ(topo.hop_distance({2, 1}, {2, 1}), 0);
  EXPECT_EQ(topo.hop_distance({5, 0}, {0, 0}), 5);
}

TEST(Topology, RouteLengthEqualsManhattanDistance) {
  MeshTopology topo;
  Rng rng{99};
  for (int i = 0; i < 200; ++i) {
    const TileCoord a{static_cast<int>(rng.below(6)),
                      static_cast<int>(rng.below(4))};
    const TileCoord b{static_cast<int>(rng.below(6)),
                      static_cast<int>(rng.below(4))};
    const auto route = topo.route(a, b);
    EXPECT_EQ(static_cast<int>(route.size()), topo.hop_distance(a, b));
  }
}

TEST(Topology, RouteIsXThenY) {
  MeshTopology topo;
  const auto route = topo.route({0, 0}, {2, 2});
  ASSERT_EQ(route.size(), 4u);
  EXPECT_EQ(route[0].dir, Direction::East);
  EXPECT_EQ(route[1].dir, Direction::East);
  EXPECT_EQ(route[2].dir, Direction::South);
  EXPECT_EQ(route[3].dir, Direction::South);
  // Route hops are contiguous.
  EXPECT_EQ(route[1].from.x, 1);
  EXPECT_EQ(route[2].from.x, 2);
}

TEST(Topology, EmptyRouteForSameTile) {
  MeshTopology topo;
  EXPECT_TRUE(topo.route({3, 2}, {3, 2}).empty());
}

TEST(Topology, HomeMcIsNearest) {
  MeshTopology topo;
  // Core 0 is at (0,0), the site of MC 0.
  EXPECT_EQ(topo.home_mc(0), 0);
  // Core at tile (5,0) -> MC 1 at (5,0).
  EXPECT_EQ(topo.home_mc(2 * topo.tile_at({5, 0})), 1);
  // Core at (0,3) is closest to MC 2 at (0,2).
  EXPECT_EQ(topo.home_mc(2 * topo.tile_at({0, 3})), 2);
  // Core at (5,3) -> MC 3 at (5,2).
  EXPECT_EQ(topo.home_mc(2 * topo.tile_at({5, 3})), 3);
}

TEST(Topology, EveryCoreHasAHomeMcWithinMesh) {
  MeshTopology topo;
  int counts[4] = {0, 0, 0, 0};
  for (CoreId c = 0; c < topo.core_count(); ++c) {
    const McId m = topo.home_mc(c);
    ASSERT_GE(m, 0);
    ASSERT_LT(m, 4);
    ++counts[m];
  }
  // The quadrant assignment is balanced: 12 cores per controller.
  for (const int n : counts) EXPECT_EQ(n, 12);
}

TEST(Topology, LinkIndexIsDense) {
  MeshTopology topo;
  std::vector<bool> seen(static_cast<std::size_t>(topo.link_index_count()));
  for (TileId t = 0; t < topo.tile_count(); ++t) {
    for (int d = 0; d < 4; ++d) {
      const LinkId link{topo.coord_of(t), static_cast<Direction>(d)};
      const int idx = topo.link_index(link);
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, topo.link_index_count());
      EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
      seen[static_cast<std::size_t>(idx)] = true;
    }
  }
}

TEST(Topology, CustomLayout) {
  MeshLayout layout;
  layout.width = 8;
  layout.height = 4;
  layout.mc_positions = {{0, 0}, {7, 0}, {0, 2}, {7, 2}};
  MeshTopology topo(layout);
  EXPECT_EQ(topo.core_count(), 64);
  EXPECT_EQ(topo.hop_distance({0, 0}, {7, 3}), 10);
}

TEST(Topology, RejectsMcOutsideMesh) {
  MeshLayout layout;
  layout.mc_positions = {{9, 0}};
  EXPECT_THROW(MeshTopology{layout}, CheckError);
}

// -------------------------------------------------------------------- Mesh

TEST(MeshModel, IdealLatencyScalesWithHops) {
  MeshTopology topo;
  MeshTimingConfig cfg;
  cfg.router_latency = SimTime::ns(10);
  cfg.link_bandwidth_bytes_per_sec = 1e9;
  MeshModel mesh(topo, cfg);
  const SimTime near = mesh.ideal_latency({0, 0}, {1, 0}, 1000.0);
  const SimTime far = mesh.ideal_latency({0, 0}, {5, 3}, 1000.0);
  EXPECT_LT(near, far);
  // 1 hop: 2 routers + 1 us serialisation.
  EXPECT_EQ(near, SimTime::ns(20) + SimTime::us(1.0));
}

TEST(MeshModel, TransferAdvancesContention) {
  MeshTopology topo;
  MeshTimingConfig cfg;
  cfg.router_latency = SimTime::ns(0);
  cfg.link_bandwidth_bytes_per_sec = 1e6;  // 1 B/us
  MeshModel mesh(topo, cfg);
  // Two messages over the same single link back to back.
  const SimTime t1 = mesh.transfer(SimTime::zero(), {0, 0}, {1, 0}, 1000.0);
  const SimTime t2 = mesh.transfer(SimTime::zero(), {0, 0}, {1, 0}, 1000.0);
  EXPECT_EQ(t1, SimTime::ms(1));
  EXPECT_EQ(t2, SimTime::ms(2));  // queued behind the first
}

TEST(MeshModel, DisjointRoutesDoNotContend) {
  MeshTopology topo;
  MeshTimingConfig cfg;
  cfg.router_latency = SimTime::ns(0);
  cfg.link_bandwidth_bytes_per_sec = 1e6;
  MeshModel mesh(topo, cfg);
  const SimTime t1 = mesh.transfer(SimTime::zero(), {0, 0}, {1, 0}, 1000.0);
  const SimTime t2 = mesh.transfer(SimTime::zero(), {0, 2}, {1, 2}, 1000.0);
  EXPECT_EQ(t1, t2);
}

TEST(MeshModel, LocalTransferCostsOneRouter) {
  MeshTopology topo;
  MeshTimingConfig cfg;
  cfg.router_latency = SimTime::ns(5);
  MeshModel mesh(topo, cfg);
  EXPECT_EQ(mesh.transfer(SimTime::zero(), {2, 2}, {2, 2}, 1e6),
            SimTime::ns(5));
}

TEST(MeshModel, TrafficAccounting) {
  MeshTopology topo;
  MeshModel mesh(topo);
  mesh.transfer(SimTime::zero(), {0, 0}, {2, 0}, 500.0);
  const LinkId first{{0, 0}, Direction::East};
  EXPECT_EQ(mesh.traffic(first).messages, 1u);
  EXPECT_DOUBLE_EQ(mesh.traffic(first).bytes, 500.0);
  EXPECT_DOUBLE_EQ(mesh.total_bytes(), 1000.0);  // 2 links x 500 B
}

TEST(MeshModel, RejectsNegativeBytes) {
  MeshTopology topo;
  MeshModel mesh(topo);
  EXPECT_THROW(mesh.transfer(SimTime::zero(), {0, 0}, {1, 0}, -1.0),
               CheckError);
}

}  // namespace
}  // namespace sccpipe
