#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sccpipe/filters/filters.hpp"
#include "sccpipe/filters/image.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

// -------------------------------------------------------------------- Image

TEST(Image, ConstructionAndFill) {
  Image img(4, 3, Color{10, 20, 30, 255});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.byte_size(), 4u * 3u * 4u);
  EXPECT_EQ(img.get(2, 1), (Color{10, 20, 30, 255}));
}

TEST(Image, SetGetRoundTrip) {
  Image img(8, 8);
  img.set(3, 5, Color{1, 2, 3, 4});
  EXPECT_EQ(img.get(3, 5), (Color{1, 2, 3, 4}));
}

TEST(Image, OutOfBoundsThrows) {
  Image img(4, 4);
  EXPECT_THROW(img.get(4, 0), CheckError);
  EXPECT_THROW(img.get(0, -1), CheckError);
  EXPECT_THROW(img.set(0, 4, {}), CheckError);
}

TEST(Image, StripAndPasteRoundTrip) {
  Image img(4, 6);
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 4; ++x) {
      img.set(x, y, Color{static_cast<std::uint8_t>(x),
                          static_cast<std::uint8_t>(y), 0, 255});
    }
  }
  const Image strip = img.strip({2, 3});
  EXPECT_EQ(strip.height(), 3);
  EXPECT_EQ(strip.get(1, 0), img.get(1, 2));

  Image copy(4, 6);
  copy.paste(img.strip({0, 2}), 0);
  copy.paste(img.strip({2, 3}), 2);
  copy.paste(img.strip({5, 1}), 5);
  EXPECT_EQ(copy, img);
}

TEST(Image, PasteRejectsMismatch) {
  Image img(4, 4);
  Image other(5, 2);
  EXPECT_THROW(img.paste(other, 0), CheckError);
  Image tall(4, 3);
  EXPECT_THROW(img.paste(tall, 2), CheckError);
}

TEST(Image, PpmEncoding) {
  Image img(2, 1);
  img.set(0, 0, Color{255, 0, 0, 255});
  img.set(1, 0, Color{0, 255, 0, 255});
  const std::string ppm = img.to_ppm();
  EXPECT_EQ(ppm.substr(0, 2), "P6");
  EXPECT_NE(ppm.find("2 1"), std::string::npos);
  // 6 payload bytes after the header.
  EXPECT_EQ(ppm.size(), ppm.find("255\n") + 4 + 6);
}

TEST(Image, WritePpmToDisk) {
  const std::string path = "/tmp/sccpipe_test_image.ppm";
  Image img(3, 3, Color{1, 2, 3, 255});
  img.write_ppm(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 9u * 3u);
  std::filesystem::remove(path);
}

// -------------------------------------------------------------- divide_rows

TEST(DivideRows, EvenSplit) {
  const auto strips = divide_rows(400, 4);
  ASSERT_EQ(strips.size(), 4u);
  for (const StripRange& s : strips) EXPECT_EQ(s.rows, 100);
  EXPECT_EQ(strips[3].y0, 300);
}

TEST(DivideRows, RemainderGoesToEarlierStrips) {
  const auto strips = divide_rows(10, 3);
  EXPECT_EQ(strips[0].rows, 4);
  EXPECT_EQ(strips[1].rows, 3);
  EXPECT_EQ(strips[2].rows, 3);
}

TEST(DivideRows, PropertyCoversExactlyOnce) {
  for (int height : {7, 100, 400, 399}) {
    for (int k = 1; k <= 8 && k <= height; ++k) {
      const auto strips = divide_rows(height, k);
      int y = 0;
      for (const StripRange& s : strips) {
        EXPECT_EQ(s.y0, y);
        EXPECT_GT(s.rows, 0);
        y += s.rows;
      }
      EXPECT_EQ(y, height);
    }
  }
}

TEST(DivideRows, RejectsBadArguments) {
  EXPECT_THROW(divide_rows(0, 1), CheckError);
  EXPECT_THROW(divide_rows(4, 0), CheckError);
  EXPECT_THROW(divide_rows(4, 5), CheckError);
}

// -------------------------------------------------------------------- Sepia

TEST(Sepia, MatchesPaperFormula) {
  // One mid-grey pixel: r=g=b=0.5 -> mix = 0.5 -> rgb = S1*0.5 + S2*0.5.
  Image img(1, 1, Color{128, 128, 128, 255});
  apply_sepia(img);
  const Color c = img.get(0, 0);
  const float mix = 0.5019608f;  // 128/255
  EXPECT_NEAR(c.r / 255.0f, 0.2f * (1 - mix) + 1.0f * mix, 0.01f);
  EXPECT_NEAR(c.g / 255.0f, 0.05f * (1 - mix) + 0.9f * mix, 0.01f);
  EXPECT_NEAR(c.b / 255.0f, 0.0f * (1 - mix) + 0.5f * mix, 0.01f);
}

TEST(Sepia, BlackAndWhiteEndpoints) {
  Image img(2, 1);
  img.set(0, 0, Color{0, 0, 0, 255});
  img.set(1, 0, Color{255, 255, 255, 255});
  apply_sepia(img);
  // Black -> S1, white -> S2 (clamped).
  EXPECT_NEAR(img.get(0, 0).r / 255.0f, 0.2f, 0.01f);
  EXPECT_NEAR(img.get(0, 0).g / 255.0f, 0.05f, 0.01f);
  EXPECT_EQ(img.get(0, 0).b, 0);
  EXPECT_EQ(img.get(1, 0).r, 255);
  EXPECT_NEAR(img.get(1, 0).g / 255.0f, 0.9f, 0.01f);
  EXPECT_NEAR(img.get(1, 0).b / 255.0f, 0.5f, 0.01f);
}

TEST(Sepia, PreservesAlphaAndIsIdempotentOnStripDecomposition) {
  Image whole(8, 8, Color{50, 100, 150, 77});
  Image parts = whole;
  apply_sepia(whole);
  EXPECT_EQ(whole.get(3, 3).a, 77);
  // Strip-wise application equals whole-image application (pixel-local op).
  Image assembled(8, 8);
  for (const StripRange& s : divide_rows(8, 3)) {
    Image strip = parts.strip(s);
    apply_sepia(strip);
    assembled.paste(strip, s.y0);
  }
  EXPECT_EQ(assembled, whole);
}

// --------------------------------------------------------------------- Blur

TEST(Blur, UniformImageUnchanged) {
  Image img(6, 6, Color{90, 120, 150, 255});
  const Image before = img;
  apply_blur(img);
  EXPECT_EQ(img, before);
}

TEST(Blur, AveragesNeighbourhood) {
  Image img(3, 3, Color{0, 0, 0, 255});
  img.set(1, 1, Color{90, 90, 90, 255});
  apply_blur(img);
  // Centre: average of 9 pixels = 10.
  EXPECT_EQ(img.get(1, 1).r, 10);
  // Corner: average of its 4 pixels = 90/4 = 22 (integer division).
  EXPECT_EQ(img.get(0, 0).r, 22);
}

TEST(Blur, ReadsFromOriginalNotInPlace) {
  // A horizontal gradient must stay symmetric after blurring; in-place
  // blurring would smear it to one side.
  Image img(5, 1);
  for (int x = 0; x < 5; ++x) {
    img.set(x, 0, Color{static_cast<std::uint8_t>(x * 50), 0, 0, 255});
  }
  apply_blur(img);
  // Pixel 2 averages pixels 1..3 = (50+100+150)/3 = 100.
  EXPECT_EQ(img.get(2, 0).r, 100);
}

TEST(Blur, ReducesContrast) {
  Image img(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      img.set(x, y, ((x + y) % 2) ? Color{255, 255, 255, 255}
                                  : Color{0, 0, 0, 255});
    }
  }
  apply_blur(img);
  int lo = 255, hi = 0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      lo = std::min<int>(lo, img.get(x, y).r);
      hi = std::max<int>(hi, img.get(x, y).r);
    }
  }
  EXPECT_GT(lo, 0);
  EXPECT_LT(hi, 255);
}

// ------------------------------------------------------------------ Scratch

TEST(Scratch, DrawsDeterministically) {
  Rng a{10}, b{10};
  const ScratchParams pa = ScratchParams::draw(a, 100);
  const ScratchParams pb = ScratchParams::draw(b, 100);
  EXPECT_EQ(pa.count, pb.count);
  EXPECT_EQ(pa.columns, pb.columns);
  EXPECT_EQ(pa.color, pb.color);
}

TEST(Scratch, CountWithinBounds) {
  Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    const ScratchParams p = ScratchParams::draw(rng, 100, 12);
    EXPECT_GE(p.count, 0);
    EXPECT_LE(p.count, 12);
    EXPECT_EQ(p.columns.size(), static_cast<std::size_t>(p.count));
    for (const int x : p.columns) {
      EXPECT_GE(x, 0);
      EXPECT_LT(x, 100);
    }
  }
}

TEST(Scratch, PaintsFullColumns) {
  Image img(10, 10, Color{0, 0, 0, 255});
  ScratchParams p;
  p.count = 1;
  p.color = Color{200, 200, 200, 255};
  p.columns = {4};
  apply_scratches(img, p);
  for (int y = 0; y < 10; ++y) {
    EXPECT_EQ(img.get(4, y).r, 200);
    EXPECT_EQ(img.get(5, y).r, 0);
  }
}

TEST(Scratch, IgnoresOutOfRangeColumns) {
  Image img(4, 4, Color{0, 0, 0, 255});
  ScratchParams p;
  p.color = Color{255, 255, 255, 255};
  p.columns = {-1, 7};
  EXPECT_NO_THROW(apply_scratches(img, p));
  EXPECT_EQ(img.get(0, 0).r, 0);
}

TEST(Scratch, FramePersistentParamsAreStripInvariant) {
  const ScratchParams a = scratch_params_for_frame(42, 7, 400);
  const ScratchParams b = scratch_params_for_frame(42, 7, 400);
  EXPECT_EQ(a.columns, b.columns);
  const ScratchParams c = scratch_params_for_frame(42, 8, 400);
  // Different frames draw different scratches (overwhelmingly likely).
  EXPECT_TRUE(a.count != c.count || a.columns != c.columns ||
              !(a.color == c.color));
}

// ------------------------------------------------------------------ Flicker

TEST(Flicker, DeltaWithinPaperInterval) {
  Rng rng{13};
  for (int i = 0; i < 200; ++i) {
    const FlickerParams p = FlickerParams::draw(rng);
    EXPECT_GE(p.delta, -0.1f);
    EXPECT_LT(p.delta, 0.1f);
  }
}

TEST(Flicker, ShiftsBrightness) {
  Image img(2, 2, Color{128, 128, 128, 9});
  apply_flicker(img, FlickerParams{0.1f});
  EXPECT_NEAR(img.get(0, 0).r, 128 + 25, 2);
  EXPECT_EQ(img.get(0, 0).a, 9);  // alpha untouched
  apply_flicker(img, FlickerParams{-0.2f});
  EXPECT_NEAR(img.get(0, 0).r, 128 + 25 - 51, 3);
}

TEST(Flicker, ClampsAtBounds) {
  Image bright(1, 1, Color{250, 5, 128, 255});
  apply_flicker(bright, FlickerParams{0.1f});
  EXPECT_EQ(bright.get(0, 0).r, 255);  // 250 + 25 clamps at 255
  Image dark(1, 1, Color{250, 5, 128, 255});
  apply_flicker(dark, FlickerParams{-0.1f});
  EXPECT_EQ(dark.get(0, 0).g, 0);  // 5 - 25 clamps at 0
}

// --------------------------------------------------------------------- Swap

TEST(Swap, FlipsVertically) {
  Image img(2, 4);
  for (int y = 0; y < 4; ++y) {
    img.set(0, y, Color{static_cast<std::uint8_t>(y), 0, 0, 255});
  }
  apply_vflip(img);
  for (int y = 0; y < 4; ++y) {
    EXPECT_EQ(img.get(0, y).r, 3 - y);
  }
}

TEST(Swap, IsAnInvolution) {
  Image img(7, 5);
  Rng rng{19};
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 7; ++x) {
      img.set(x, y, Color{static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256)), 255});
    }
  }
  const Image before = img;
  apply_vflip(img);
  EXPECT_NE(img, before);
  apply_vflip(img);
  EXPECT_EQ(img, before);
}

TEST(Swap, OddHeightKeepsMiddleRow) {
  Image img(1, 3);
  img.set(0, 0, Color{1, 0, 0, 255});
  img.set(0, 1, Color{2, 0, 0, 255});
  img.set(0, 2, Color{3, 0, 0, 255});
  apply_vflip(img);
  EXPECT_EQ(img.get(0, 0).r, 3);
  EXPECT_EQ(img.get(0, 1).r, 2);
  EXPECT_EQ(img.get(0, 2).r, 1);
}

}  // namespace
}  // namespace sccpipe
