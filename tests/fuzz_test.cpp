// Randomised stress tests: the deterministic simulator, the fluid
// bandwidth model and the rendezvous layer are exercised with hundreds of
// randomly generated scenarios and checked against global invariants
// (ordering, conservation, termination) rather than single examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sccpipe/noc/traffic.hpp"
#include "sccpipe/rcce/rcce.hpp"
#include "sccpipe/sim/fair_share.hpp"
#include "sccpipe/sim/parallel_sim.hpp"
#include "sccpipe/sim/reference_scheduler.hpp"
#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, SimulatorDispatchOrderIsNonDecreasing) {
  Rng rng{GetParam()};
  Simulator sim;
  std::vector<SimTime> dispatched;
  // Random initial schedule; some events schedule follow-ups, some cancel
  // a random pending handle.
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    const SimTime when = SimTime::us(static_cast<double>(rng.below(10000)));
    handles.push_back(sim.schedule_at(when, [&, i] {
      dispatched.push_back(sim.now());
      if (i % 3 == 0) {
        sim.schedule_after(SimTime::us(static_cast<double>(rng.below(100))),
                           [&] { dispatched.push_back(sim.now()); });
      }
    }));
  }
  // Cancel a random subset up-front.
  int cancelled = 0;
  for (int i = 0; i < 40; ++i) {
    if (sim.cancel(handles[rng.below(handles.size())])) ++cancelled;
  }
  sim.run();
  EXPECT_TRUE(std::is_sorted(dispatched.begin(), dispatched.end()));
  EXPECT_GE(dispatched.size(), 200u - static_cast<std::size_t>(cancelled));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST_P(FuzzSeeds, FairShareConservesBytesAndTerminates) {
  Rng rng{GetParam() ^ 0xfa1e};
  Simulator sim;
  FairShareResource mc(sim, "mc", 1.0e6 + static_cast<double>(rng.below(1000000)));
  double requested = 0.0;
  int completions = 0;
  const int n = 30 + static_cast<int>(rng.below(50));
  // Flows arrive over time with random sizes and caps.
  for (int i = 0; i < n; ++i) {
    const double bytes = 1.0 + static_cast<double>(rng.below(5000000));
    const double cap =
        rng.below(3) == 0 ? 1.0e4 + static_cast<double>(rng.below(100000)) : 0.0;
    const SimTime at = SimTime::ms(static_cast<double>(rng.below(5000)));
    requested += bytes;
    sim.schedule_at(at, [&, bytes, cap] {
      mc.start_flow(bytes, [&] { ++completions; }, cap);
    });
  }
  sim.run();
  EXPECT_EQ(completions, n);
  EXPECT_EQ(mc.active_flows(), 0u);
  EXPECT_NEAR(mc.bytes_completed(), requested, 1e-6 * requested);
}

TEST_P(FuzzSeeds, FairShareNeverFinishesFasterThanCapacityAllows) {
  Rng rng{GetParam() ^ 0xcab5};
  Simulator sim;
  const double capacity = 1.0e6;
  FairShareResource mc(sim, "mc", capacity);
  double total_bytes = 0.0;
  SimTime last_done;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const double bytes = 1000.0 + static_cast<double>(rng.below(1000000));
    total_bytes += bytes;
    mc.start_flow(bytes, [&] { last_done = sim.now(); });
  }
  sim.run();
  // All arrive at t=0; the aggregate can at best run at full capacity.
  EXPECT_GE(last_done.to_sec() + 1e-6, total_bytes / capacity);
}

TEST_P(FuzzSeeds, RcceRandomTrafficDeliversEverythingInPairFifoOrder) {
  Rng rng{GetParam() ^ 0x5cc};
  Simulator sim;
  SccChip chip(sim);
  RcceComm comm(chip);

  struct Expected {
    std::vector<int> sent;    // tags in send order per pair
    std::vector<int> got;
  };
  std::map<std::pair<CoreId, CoreId>, Expected> pairs;
  const int messages = 60;
  int delivered = 0;
  for (int tag = 0; tag < messages; ++tag) {
    const CoreId from = static_cast<CoreId>(rng.below(8));
    CoreId to = static_cast<CoreId>(rng.below(8));
    if (to == from) to = (to + 1) % 8;
    auto& exp = pairs[{from, to}];
    exp.sent.push_back(tag);
    const double bytes = 64.0 + static_cast<double>(rng.below(50000));
    // Post send and recv at random times (either side may arrive first).
    sim.schedule_at(SimTime::us(static_cast<double>(rng.below(2000))),
                    [&comm, from, to, bytes] {
                      comm.send(from, to, bytes, [] {});
                    });
    sim.schedule_at(SimTime::us(static_cast<double>(rng.below(2000))),
                    [&comm, &exp, &delivered, from, to, tag] {
                      (void)tag;
                      comm.recv(to, from, [&exp, &delivered] {
                        // Tag resolution: pair-FIFO means the i-th receive
                        // completion corresponds to the i-th send.
                        exp.got.push_back(
                            exp.sent[exp.got.size()]);
                        ++delivered;
                      });
                    });
  }
  sim.run();
  EXPECT_EQ(delivered, messages);
  EXPECT_EQ(comm.messages_delivered(), static_cast<std::uint64_t>(messages));
  for (auto& [key, exp] : pairs) {
    EXPECT_EQ(exp.got, exp.sent);
  }
}

// Randomized-partition fuzzer for the parallel engine: random mesh sizes,
// region counts, worker counts and traffic shapes, asserting the serial
// reference and the partitioned engine agree on the full result digest.
// The same binary runs under SCCPIPE_SANITIZE=thread CI, so every randomly
// shaped barrier/mailbox schedule is also a TSan probe.
TEST_P(FuzzSeeds, RandomPartitionSerialParallelDigestsAgree) {
  Rng rng{GetParam() ^ 0x9de5u};
  for (int round = 0; round < 4; ++round) {
    TrafficConfig cfg;
    cfg.layout.width = 2 + static_cast<int>(rng.below(12));
    cfg.layout.height = 1 + static_cast<int>(rng.below(8));
    cfg.layout.mc_positions = {{0, 0}};  // any valid corner; unused here
    cfg.regions = 1 + static_cast<int>(rng.below(6));
    cfg.jobs = 1 + static_cast<int>(rng.below(8));
    cfg.ticks = 4 + static_cast<int>(rng.below(40));
    cfg.tick_spacing = SimTime::us(1.0 + static_cast<double>(rng.below(8)));
    cfg.send_every = 1 + static_cast<int>(rng.below(4));
    cfg.hop_latency = SimTime::us(1.0 + static_cast<double>(rng.below(20)));
    cfg.ttl = static_cast<int>(rng.below(5));
    cfg.seed = rng.next();

    const TrafficResult serial = run_traffic_serial(cfg);
    const TrafficResult parallel = run_traffic_parallel(cfg);
    const std::string label =
        "seed=" + std::to_string(GetParam()) + " round=" +
        std::to_string(round) + " mesh=" + std::to_string(cfg.layout.width) +
        "x" + std::to_string(cfg.layout.height) +
        " regions=" + std::to_string(cfg.regions) +
        " jobs=" + std::to_string(cfg.jobs);
    EXPECT_EQ(serial.digest, parallel.digest) << label;
    EXPECT_EQ(serial.events, parallel.events) << label;
    EXPECT_EQ(serial.messages, parallel.messages) << label;
    EXPECT_EQ(serial.end_time_ns, parallel.end_time_ns) << label;
  }
}

// Same idea one level down: a random event soup (self-schedules and legal
// cross-region posts) executed on the engine at two different worker
// counts must dispatch identically, region by region.
TEST_P(FuzzSeeds, RandomEventSoupIsWorkerCountInvariant) {
  const std::uint64_t seed = GetParam() ^ 0x50f7u;
  auto run_at = [seed](int jobs) {
    Rng rng{seed};
    const int regions = 2 + static_cast<int>(rng.below(5));
    const SimTime lookahead =
        SimTime::us(1.0 + static_cast<double>(rng.below(10)));
    ParallelSimulator eng{regions, jobs, lookahead};
    // Per-region commutative digests (same-time local schedules may
    // interleave with merged mail differently than the serial reference,
    // but per-region sums must match exactly across worker counts).
    std::vector<std::uint64_t> digests(static_cast<std::size_t>(regions), 0);
    std::function<void(int, int, int, SimTime)> bounce =
        [&](int region, int chain, int remaining, SimTime at) {
          digests[static_cast<std::size_t>(region)] +=
              static_cast<std::uint64_t>(chain) * 0x9e3779b97f4a7c15ULL +
              static_cast<std::uint64_t>(at.to_ns());
          if (remaining <= 0) return;
          // Derive the next hop from deterministic data only.
          const int next =
              (region + 1 + (chain + remaining) % (regions - 1)) % regions;
          const SimTime when =
              at + lookahead +
              SimTime::ns((chain * 7 + remaining * 13) % 1000);
          eng.post(next, when, [&, next, chain, remaining, when] {
            bounce(next, chain, remaining - 1, when);
          });
        };
    const int chains = 10 + static_cast<int>(rng.below(30));
    for (int c = 0; c < chains; ++c) {
      const int region = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(regions)));
      const int hops = 1 + static_cast<int>(rng.below(12));
      const SimTime at = SimTime::us(static_cast<double>(rng.below(50)));
      eng.post(region, at,
               [&, region, c, hops, at] { bounce(region, c, hops, at); });
    }
    eng.run();
    digests.push_back(eng.dispatched());
    digests.push_back(eng.stats().windows);
    digests.push_back(eng.stats().cross_region_events);
    return digests;
  };
  const auto one = run_at(1);
  const auto four = run_at(4);
  EXPECT_EQ(one, four) << "seed=" << seed;
}

// ---------------------------------------------------------------------------
// Queue equivalence: the d-ary key heap vs the reference binary heap.
// ---------------------------------------------------------------------------

/// One scripted event of a randomized soup: scheduled up-front at a coarse
/// time grid (heavy timestamp collisions), half ranked; its callback may
/// spawn children *at the current timestamp* (stressing same-time batched
/// dispatch) and may cancel another scripted event mid-run (stressing
/// tombstones and compaction).
struct SoupEvent {
  std::uint64_t id = 0;
  std::uint64_t t_us = 0;
  std::uint64_t rank = 0;
  int children = 0;
  std::int64_t cancel_idx = -1;
};

/// Replay one script on either engine (Simulator or reference::Scheduler —
/// both expose schedule_at/schedule_at_ranked/cancel/run with the same
/// (when, rank, seq) dispatch order) and record the dispatch sequence.
template <typename Engine>
std::vector<std::uint64_t> run_event_soup(
    Engine& eng, const std::vector<SoupEvent>& script,
    const std::vector<std::size_t>& upfront_cancels) {
  std::vector<std::uint64_t> order;
  using Handle = decltype(eng.schedule_at(SimTime::zero(), [] {}));
  std::vector<Handle> handles;
  handles.reserve(script.size());
  for (const SoupEvent& ev : script) {
    auto cb = [&eng, &order, &handles, ev] {
      order.push_back(ev.id);
      if (ev.cancel_idx >= 0) {
        eng.cancel(handles[static_cast<std::size_t>(ev.cancel_idx)]);
      }
      for (int c = 0; c < ev.children; ++c) {
        const std::uint64_t child_id = ev.id * 1000 + static_cast<std::uint64_t>(c);
        // Same-timestamp child: must run within the current batch, after
        // every already-pending event of this (when, rank) class.
        eng.schedule_at(eng.now(),
                        [&order, child_id] { order.push_back(child_id); });
      }
    };
    const SimTime when = SimTime::us(static_cast<double>(ev.t_us));
    handles.push_back(ev.rank == ~std::uint64_t{0}
                          ? eng.schedule_at(when, std::move(cb))
                          : eng.schedule_at_ranked(when, ev.rank, std::move(cb)));
  }
  // A burst of up-front cancels (with repeats, so double-cancel paths run
  // too): enough tombstones to cross the compaction threshold in both
  // engines before the first dispatch.
  for (std::size_t idx : upfront_cancels) eng.cancel(handles[idx]);
  eng.run();
  return order;
}

std::vector<SoupEvent> make_soup_script(std::uint64_t seed,
                                        std::vector<std::size_t>* cancels) {
  Rng rng{seed};
  std::vector<SoupEvent> script;
  const std::uint64_t n = 300 + rng.below(200);
  for (std::uint64_t i = 0; i < n; ++i) {
    SoupEvent ev;
    ev.id = i + 1;
    ev.t_us = rng.below(40);  // ~10 events per timestamp on average
    ev.rank = rng.below(2) == 0 ? rng.below(4) : ~std::uint64_t{0};
    ev.children = rng.below(5) == 0 ? static_cast<int>(1 + rng.below(2)) : 0;
    ev.cancel_idx = rng.below(8) == 0
                        ? static_cast<std::int64_t>(rng.below(n))
                        : std::int64_t{-1};
    script.push_back(ev);
  }
  for (int i = 0; i < 200; ++i) cancels->push_back(rng.below(n));
  return script;
}

TEST_P(FuzzSeeds, DaryQueueMatchesReferenceBinaryHeapDispatchOrder) {
  const std::uint64_t seed = GetParam() ^ 0xdeadu;
  std::vector<std::size_t> cancels;
  const std::vector<SoupEvent> script = make_soup_script(seed, &cancels);
  Simulator dary;
  reference::Scheduler binary;
  const auto dary_order = run_event_soup(dary, script, cancels);
  const auto binary_order = run_event_soup(binary, script, cancels);
  EXPECT_EQ(dary_order, binary_order) << "seed=" << seed;
  EXPECT_EQ(dary.pending(), 0u);
  EXPECT_EQ(binary.pending(), 0u);
}

TEST_P(FuzzSeeds, DaryQueueReplayHasIdenticalStatsAndOrder) {
  const std::uint64_t seed = GetParam() ^ 0xbeefu;
  std::vector<std::size_t> cancels;
  const std::vector<SoupEvent> script = make_soup_script(seed, &cancels);
  Simulator a;
  Simulator b;
  const auto order_a = run_event_soup(a, script, cancels);
  const auto order_b = run_event_soup(b, script, cancels);
  EXPECT_EQ(order_a, order_b) << "seed=" << seed;
  EXPECT_EQ(a.stats().allocs, b.stats().allocs);
  EXPECT_EQ(a.stats().compactions, b.stats().compactions);
  EXPECT_EQ(a.stats().peak_events, b.stats().peak_events);
  EXPECT_EQ(a.dispatched(), b.dispatched());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace sccpipe
