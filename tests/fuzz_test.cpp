// Randomised stress tests: the deterministic simulator, the fluid
// bandwidth model and the rendezvous layer are exercised with hundreds of
// randomly generated scenarios and checked against global invariants
// (ordering, conservation, termination) rather than single examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sccpipe/rcce/rcce.hpp"
#include "sccpipe/sim/fair_share.hpp"
#include "sccpipe/sim/simulator.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, SimulatorDispatchOrderIsNonDecreasing) {
  Rng rng{GetParam()};
  Simulator sim;
  std::vector<SimTime> dispatched;
  // Random initial schedule; some events schedule follow-ups, some cancel
  // a random pending handle.
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    const SimTime when = SimTime::us(static_cast<double>(rng.below(10000)));
    handles.push_back(sim.schedule_at(when, [&, i] {
      dispatched.push_back(sim.now());
      if (i % 3 == 0) {
        sim.schedule_after(SimTime::us(static_cast<double>(rng.below(100))),
                           [&] { dispatched.push_back(sim.now()); });
      }
    }));
  }
  // Cancel a random subset up-front.
  int cancelled = 0;
  for (int i = 0; i < 40; ++i) {
    if (sim.cancel(handles[rng.below(handles.size())])) ++cancelled;
  }
  sim.run();
  EXPECT_TRUE(std::is_sorted(dispatched.begin(), dispatched.end()));
  EXPECT_GE(dispatched.size(), 200u - static_cast<std::size_t>(cancelled));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST_P(FuzzSeeds, FairShareConservesBytesAndTerminates) {
  Rng rng{GetParam() ^ 0xfa1e};
  Simulator sim;
  FairShareResource mc(sim, "mc", 1.0e6 + static_cast<double>(rng.below(1000000)));
  double requested = 0.0;
  int completions = 0;
  const int n = 30 + static_cast<int>(rng.below(50));
  // Flows arrive over time with random sizes and caps.
  for (int i = 0; i < n; ++i) {
    const double bytes = 1.0 + static_cast<double>(rng.below(5000000));
    const double cap =
        rng.below(3) == 0 ? 1.0e4 + static_cast<double>(rng.below(100000)) : 0.0;
    const SimTime at = SimTime::ms(static_cast<double>(rng.below(5000)));
    requested += bytes;
    sim.schedule_at(at, [&, bytes, cap] {
      mc.start_flow(bytes, [&] { ++completions; }, cap);
    });
  }
  sim.run();
  EXPECT_EQ(completions, n);
  EXPECT_EQ(mc.active_flows(), 0u);
  EXPECT_NEAR(mc.bytes_completed(), requested, 1e-6 * requested);
}

TEST_P(FuzzSeeds, FairShareNeverFinishesFasterThanCapacityAllows) {
  Rng rng{GetParam() ^ 0xcab5};
  Simulator sim;
  const double capacity = 1.0e6;
  FairShareResource mc(sim, "mc", capacity);
  double total_bytes = 0.0;
  SimTime last_done;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const double bytes = 1000.0 + static_cast<double>(rng.below(1000000));
    total_bytes += bytes;
    mc.start_flow(bytes, [&] { last_done = sim.now(); });
  }
  sim.run();
  // All arrive at t=0; the aggregate can at best run at full capacity.
  EXPECT_GE(last_done.to_sec() + 1e-6, total_bytes / capacity);
}

TEST_P(FuzzSeeds, RcceRandomTrafficDeliversEverythingInPairFifoOrder) {
  Rng rng{GetParam() ^ 0x5cc};
  Simulator sim;
  SccChip chip(sim);
  RcceComm comm(chip);

  struct Expected {
    std::vector<int> sent;    // tags in send order per pair
    std::vector<int> got;
  };
  std::map<std::pair<CoreId, CoreId>, Expected> pairs;
  const int messages = 60;
  int delivered = 0;
  for (int tag = 0; tag < messages; ++tag) {
    const CoreId from = static_cast<CoreId>(rng.below(8));
    CoreId to = static_cast<CoreId>(rng.below(8));
    if (to == from) to = (to + 1) % 8;
    auto& exp = pairs[{from, to}];
    exp.sent.push_back(tag);
    const double bytes = 64.0 + static_cast<double>(rng.below(50000));
    // Post send and recv at random times (either side may arrive first).
    sim.schedule_at(SimTime::us(static_cast<double>(rng.below(2000))),
                    [&comm, from, to, bytes] {
                      comm.send(from, to, bytes, [] {});
                    });
    sim.schedule_at(SimTime::us(static_cast<double>(rng.below(2000))),
                    [&comm, &exp, &delivered, from, to, tag] {
                      (void)tag;
                      comm.recv(to, from, [&exp, &delivered] {
                        // Tag resolution: pair-FIFO means the i-th receive
                        // completion corresponds to the i-th send.
                        exp.got.push_back(
                            exp.sent[exp.got.size()]);
                        ++delivered;
                      });
                    });
  }
  sim.run();
  EXPECT_EQ(delivered, messages);
  EXPECT_EQ(comm.messages_delivered(), static_cast<std::uint64_t>(messages));
  for (auto& [key, exp] : pairs) {
    EXPECT_EQ(exp.got, exp.sent);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace sccpipe
