#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sccpipe/host/host_cpu.hpp"
#include "sccpipe/host/host_link.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

// ------------------------------------------------------------------ HostCpu

TEST(HostCpu, ComputeDurationMatchesRate) {
  Simulator sim;
  HostCpu host(sim, HostCpuConfig{1.0e9, 50.0, 80.0});
  SimTime done;
  host.compute(5.0e8, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, SimTime::ms(500));
  EXPECT_EQ(host.busy_time(), SimTime::ms(500));
}

TEST(HostCpu, WorkSerialises) {
  Simulator sim;
  HostCpu host(sim, HostCpuConfig{1.0e9, 50.0, 80.0});
  SimTime first, second;
  host.compute(1.0e9, [&] { first = sim.now(); });
  host.compute(1.0e9, [&] { second = sim.now(); });
  sim.run();
  EXPECT_EQ(first, 1_sec);
  EXPECT_EQ(second, 2_sec);
}

TEST(HostCpu, PowerStepsBetweenIdleAndBusy) {
  Simulator sim;
  HostCpu host(sim, HostCpuConfig{1.0e9, 52.0, 80.0});
  EXPECT_DOUBLE_EQ(host.current_watts(), 52.0);
  host.compute(1.0e9, [] {});
  EXPECT_DOUBLE_EQ(host.current_watts(), 80.0);
  sim.run();
  EXPECT_DOUBLE_EQ(host.current_watts(), 52.0);
  // Energy: 80 W for 1 s.
  EXPECT_NEAR(host.power_meter().energy_joules(SimTime::zero(), 1_sec), 80.0,
              1e-9);
}

TEST(HostCpu, McpcDefaultsMatchPaper) {
  Simulator sim;
  HostCpu host(sim);
  EXPECT_DOUBLE_EQ(host.config().idle_watts, 52.0);   // §II
  EXPECT_DOUBLE_EQ(host.config().busy_watts, 80.0);   // §VI-B
}

// -------------------------------------------------------------- HostChannel

struct ChannelFixture : ::testing::Test {
  Simulator sim;
  std::unique_ptr<HostChannel> channel;
  HostChannel& make(int credits = 2) {
    HostLinkConfig c = HostLinkConfig::mcpc();
    c.credit_frames = credits;
    channel = std::make_unique<HostChannel>(sim, c);
    return *channel;
  }
};

TEST_F(ChannelFixture, PushPopDelivers) {
  HostChannel& ch = make();
  double got = 0.0;
  bool accepted = false;
  ch.push(1000.0, [&] { accepted = true; });
  ch.pop([&](double bytes) { got = bytes; });
  sim.run();
  EXPECT_TRUE(accepted);
  EXPECT_DOUBLE_EQ(got, 1000.0);
}

TEST_F(ChannelFixture, WireTimeMatchesBandwidth) {
  HostChannel& ch = make();
  SimTime arrival;
  ch.push(8.0e7, [] {});  // 1 s at 80 MB/s
  ch.pop([&](double) { arrival = sim.now(); });
  sim.run();
  EXPECT_EQ(arrival, 1_sec);
}

TEST_F(ChannelFixture, CreditsBoundProducerRunahead) {
  HostChannel& ch = make(/*credits=*/2);
  int accepted = 0;
  for (int i = 0; i < 5; ++i) {
    ch.push(100.0, [&] { ++accepted; });
  }
  sim.run();
  // Only two messages may be in flight until the consumer pops.
  EXPECT_EQ(accepted, 2);
  int popped = 0;
  for (int i = 0; i < 5; ++i) {
    ch.pop([&](double) { ++popped; });
  }
  sim.run();
  EXPECT_EQ(popped, 5);
  EXPECT_EQ(accepted, 5);
}

TEST_F(ChannelFixture, PopBeforePushWaits) {
  HostChannel& ch = make();
  bool got = false;
  ch.pop([&](double) { got = true; });
  sim.run();
  EXPECT_FALSE(got);
  ch.push(10.0, [] {});
  sim.run();
  EXPECT_TRUE(got);
}

TEST_F(ChannelFixture, FifoOrderPreserved) {
  HostChannel& ch = make(3);
  std::vector<double> got;
  for (double b : {10.0, 20.0, 30.0}) {
    ch.push(b, [] {});
  }
  for (int i = 0; i < 3; ++i) {
    ch.pop([&](double bytes) { got.push_back(bytes); });
  }
  sim.run();
  EXPECT_EQ(got, (std::vector<double>{10.0, 20.0, 30.0}));
}

// --------------------------------------------------------- endpoint costing

TEST(HostLinkCosts, DatagramSegmentation) {
  Simulator sim;
  HostChannel ch(sim);
  EXPECT_DOUBLE_EQ(ch.datagrams(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ch.datagrams(8192.0), 1.0);
  EXPECT_DOUBLE_EQ(ch.datagrams(8193.0), 2.0);
  EXPECT_DOUBLE_EQ(ch.datagrams(640.0 * 1024.0), 80.0);
}

TEST(HostLinkCosts, SccRecvIsFarDearerThanSend) {
  // The paper's asymmetry: the connect stage's UDP receive dominates its
  // budget; the transfer stage's send is ~5x cheaper.
  Simulator sim;
  HostChannel ch(sim);
  const double frame = 640.0 * 1024.0;
  EXPECT_GT(ch.scc_recv_cycles(frame), 3.0 * ch.scc_send_cycles(frame));
  // ~120 ms at 533 MHz for the receive path (Fig. 11's plateau).
  EXPECT_NEAR(ch.scc_recv_cycles(frame) / 533e6, 0.12, 0.03);
  // ~25 ms for the send path (Fig. 8's transfer stage).
  EXPECT_NEAR(ch.scc_send_cycles(frame) / 533e6, 0.025, 0.008);
}

TEST(HostLinkCosts, ClusterStackIsCheap) {
  Simulator sim;
  HostChannel ch(sim, HostLinkConfig::cluster());
  const double frame = 640.0 * 1024.0;
  EXPECT_LT(ch.scc_recv_cycles(frame), 2.0e6);
}

TEST(HostLinkCosts, ExternalClusterPathIsSlowWire) {
  EXPECT_LT(HostLinkConfig::cluster_external().wire_bandwidth_bytes_per_sec,
            0.2 * HostLinkConfig::cluster().wire_bandwidth_bytes_per_sec);
}

TEST(HostLinkConfigs, RejectBadValues) {
  Simulator sim;
  HostLinkConfig bad;
  bad.wire_bandwidth_bytes_per_sec = 0.0;
  EXPECT_THROW(HostChannel(sim, bad), CheckError);
  HostLinkConfig bad2;
  bad2.credit_frames = 0;
  EXPECT_THROW(HostChannel(sim, bad2), CheckError);
}

}  // namespace
}  // namespace sccpipe
