// Golden-equivalence tests: the optimised kernels in filters.cpp and
// rasterizer.cpp must be BIT-identical to the naive reference
// transcriptions of the paper's §IV formulas — not approximately equal.
// Seeded random images over a size grid that includes every degenerate
// shape (1x1, single row, single column, odd sizes) so the edge-clamp
// paths of the running-sum blur and the row hoisting of the rasterizer are
// all exercised.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sccpipe/filters/filters.hpp"
#include "sccpipe/filters/reference.hpp"
#include "sccpipe/render/rasterizer.hpp"
#include "sccpipe/render/reference.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {
namespace {

Image random_image(Rng& rng, int w, int h) {
  Image img(w, h);
  std::uint8_t* d = img.data();
  for (std::size_t i = 0; i < img.byte_size(); ++i) {
    d[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  return img;
}

// Sizes covering the degenerate shapes: the blur's horizontal window
// collapses at w=1, its vertical window at h=1, and odd sizes leave a
// non-empty interior plus both edge columns.
const std::vector<std::pair<int, int>> kSizes = {
    {1, 1}, {1, 7}, {7, 1}, {2, 2}, {3, 3}, {2, 5},
    {5, 2}, {17, 13}, {64, 48}, {101, 37}};

void expect_images_equal(const Image& got, const Image& want, int w, int h,
                         const char* what) {
  ASSERT_EQ(got.width(), want.width());
  ASSERT_EQ(got.height(), want.height());
  EXPECT_EQ(got, want) << what << " diverged from reference on " << w << 'x'
                       << h;
}

TEST(GoldenFilters, SepiaBitIdentical) {
  Rng rng{0x5e91a001};
  for (const auto& [w, h] : kSizes) {
    Image opt = random_image(rng, w, h);
    Image ref = opt;
    apply_sepia(opt);
    reference::apply_sepia(ref);
    expect_images_equal(opt, ref, w, h, "sepia");
  }
}

TEST(GoldenFilters, BlurBitIdentical) {
  Rng rng{0xb10b1002};
  for (const auto& [w, h] : kSizes) {
    Image opt = random_image(rng, w, h);
    Image ref = opt;
    apply_blur(opt);
    reference::apply_blur(ref);
    expect_images_equal(opt, ref, w, h, "blur");
  }
}

TEST(GoldenFilters, BlurRepeatedApplicationsStayIdentical) {
  // The in-place ring must keep reading original rows; applying the filter
  // several times amplifies any stale-row mistake into a visible diff.
  Rng rng{0xb10b1003};
  Image opt = random_image(rng, 33, 21);
  Image ref = opt;
  for (int i = 0; i < 4; ++i) {
    apply_blur(opt);
    reference::apply_blur(ref);
    ASSERT_EQ(opt, ref) << "pass " << i;
  }
}

TEST(GoldenFilters, ScratchesBitIdentical) {
  Rng rng{0x5c8a7c03};
  for (const auto& [w, h] : kSizes) {
    Image opt = random_image(rng, w, h);
    Image ref = opt;
    const ScratchParams p = scratch_params_for_frame(0xfeed, 7, w);
    apply_scratches(opt, p);
    reference::apply_scratches(ref, p);
    expect_images_equal(opt, ref, w, h, "scratches");
  }
}

TEST(GoldenFilters, FlickerBitIdentical) {
  Rng rng{0xf11c4004};
  for (const auto& [w, h] : kSizes) {
    Image opt = random_image(rng, w, h);
    Image ref = opt;
    const FlickerParams p = flicker_params_for_frame(0xfeed, 11);
    apply_flicker(opt, p);
    reference::apply_flicker(ref, p);
    expect_images_equal(opt, ref, w, h, "flicker");
  }
}

TEST(GoldenFilters, OrientedScratchesBitIdentical) {
  Rng rng{0x0513a005};
  for (const auto& [w, h] : kSizes) {
    for (const int strip_y0 : {0, 3}) {
      Image opt = random_image(rng, w, h);
      Image ref = opt;
      const OrientedScratchParams p =
          oriented_scratch_params_for_frame(0xfeed, 3, w, h * 2);
      apply_oriented_scratches(opt, p, strip_y0);
      reference::apply_oriented_scratches(ref, p, strip_y0);
      expect_images_equal(opt, ref, w, h, "oriented scratches");
    }
  }
}

TEST(GoldenFilters, VflipBitIdentical) {
  Rng rng{0x0f11b006};
  for (const auto& [w, h] : kSizes) {
    Image opt = random_image(rng, w, h);
    Image ref = opt;
    apply_vflip(opt);
    reference::apply_vflip(ref);
    expect_images_equal(opt, ref, w, h, "vflip");
  }
}

TEST(GoldenFilters, FullPipelineBitIdentical) {
  // The five stages composed, as the walkthrough applies them.
  Rng rng{0x91e11007};
  Image opt = random_image(rng, 57, 43);
  Image ref = opt;
  const ScratchParams sp = scratch_params_for_frame(1, 2, 57);
  const FlickerParams fp = flicker_params_for_frame(1, 2);
  apply_sepia(opt);
  apply_blur(opt);
  apply_scratches(opt, sp);
  apply_flicker(opt, fp);
  apply_vflip(opt);
  reference::apply_sepia(ref);
  reference::apply_blur(ref);
  reference::apply_scratches(ref, sp);
  reference::apply_flicker(ref, fp);
  reference::apply_vflip(ref);
  EXPECT_EQ(opt, ref);
}

// ------------------------------------------------------------ rasterizer

Vec4 random_clip_vertex(Rng& rng) {
  // Mostly in front of the eye, some behind to exercise near clipping.
  const float w = static_cast<float>(rng.uniform(-0.5, 4.0));
  return Vec4{static_cast<float>(rng.uniform(-2.0, 2.0)) * w,
              static_cast<float>(rng.uniform(-2.0, 2.0)) * w,
              static_cast<float>(rng.uniform(-1.5, 1.5)) * w, w};
}

TEST(GoldenRaster, TriangleBatchBitIdentical) {
  Rng rng{0x7a57e008};
  for (const auto& [w, h] : std::vector<std::pair<int, int>>{
           {1, 1}, {9, 1}, {1, 9}, {31, 17}, {64, 64}}) {
    Framebuffer fb_opt(w, h);
    Framebuffer fb_ref(w, h);
    fb_opt.clear();
    fb_ref.clear();
    RasterStats st_opt, st_ref;
    const Viewport vp = Viewport::full(fb_opt);
    for (int i = 0; i < 60; ++i) {
      const Vec4 a = random_clip_vertex(rng);
      const Vec4 b = random_clip_vertex(rng);
      const Vec4 c = random_clip_vertex(rng);
      const Color col{static_cast<std::uint8_t>(rng.below(256)),
                      static_cast<std::uint8_t>(rng.below(256)),
                      static_cast<std::uint8_t>(rng.below(256)), 255};
      draw_triangle_clip(fb_opt, vp, a, b, c, col, &st_opt);
      reference::draw_triangle_clip(fb_ref, vp, a, b, c, col, &st_ref);
    }
    EXPECT_EQ(fb_opt.color(), fb_ref.color()) << w << 'x' << h;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        ASSERT_EQ(fb_opt.depth(x, y), fb_ref.depth(x, y))
            << "depth (" << x << ',' << y << ") on " << w << 'x' << h;
      }
    }
    EXPECT_EQ(st_opt.pixels_tested, st_ref.pixels_tested);
    EXPECT_EQ(st_opt.pixels_filled, st_ref.pixels_filled);
    EXPECT_EQ(st_opt.triangles_submitted, st_ref.triangles_submitted);
    EXPECT_EQ(st_opt.triangles_clipped_away, st_ref.triangles_clipped_away);
  }
}

TEST(GoldenRaster, StripWindowBitIdentical) {
  // Sort-first strip rendering: a strip viewport with y_offset must paint
  // the same rows the full-frame pass paints.
  Rng rng{0x57e1b009};
  constexpr int kW = 40, kH = 30, kStripY0 = 10, kStripRows = 8;
  Framebuffer full_opt(kW, kH);
  Framebuffer strip_ref(kW, kStripRows);
  full_opt.clear();
  strip_ref.clear();
  const Viewport vp_full = Viewport::full(full_opt);
  const Viewport vp_strip{kW, kH, kStripY0};
  for (int i = 0; i < 40; ++i) {
    const Vec4 a = random_clip_vertex(rng);
    const Vec4 b = random_clip_vertex(rng);
    const Vec4 c = random_clip_vertex(rng);
    const Color col{static_cast<std::uint8_t>(rng.below(256)), 100, 50, 255};
    draw_triangle_clip(full_opt, vp_full, a, b, c, col);
    reference::draw_triangle_clip(strip_ref, vp_strip, a, b, c, col);
  }
  EXPECT_EQ(full_opt.color().strip(StripRange{kStripY0, kStripRows}),
            strip_ref.color());
}

}  // namespace
}  // namespace sccpipe
