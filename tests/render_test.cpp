#include <gtest/gtest.h>

#include "sccpipe/render/renderer.hpp"
#include "sccpipe/scene/city.hpp"

namespace sccpipe {
namespace {

// -------------------------------------------------------------- Framebuffer

TEST(Framebuffer, ClearSetsColorAndDepth) {
  Framebuffer fb(4, 4);
  fb.clear(Color{9, 9, 9, 255}, 1.0f);
  EXPECT_EQ(fb.color().get(2, 2), (Color{9, 9, 9, 255}));
  EXPECT_FLOAT_EQ(fb.depth(2, 2), 1.0f);
  fb.set_pixel(1, 1, 0.25f, Color{1, 2, 3, 255});
  EXPECT_FLOAT_EQ(fb.depth(1, 1), 0.25f);
  EXPECT_EQ(fb.color().get(1, 1).g, 2);
}

// --------------------------------------------------------------- Rasterizer

/// Clip-space helper: place a triangle directly in NDC (w = 1).
Vec4 ndc(float x, float y, float z = 0.0f) { return Vec4{x, y, z, 1.0f}; }

TEST(Rasterizer, FillsCoveringTriangle) {
  Framebuffer fb(16, 16);
  fb.clear();
  RasterStats stats;
  // Huge triangle covering the whole NDC square.
  draw_triangle_clip(fb, Viewport::full(fb), ndc(-4, -4), ndc(4, -4), ndc(0, 6),
                     Color{200, 0, 0, 255}, &stats);
  EXPECT_EQ(stats.pixels_filled, 16u * 16u);
  EXPECT_EQ(fb.color().get(8, 8).r, 200);
}

TEST(Rasterizer, WindingOrderDoesNotMatter) {
  Framebuffer a(8, 8), b(8, 8);
  a.clear();
  b.clear();
  draw_triangle_clip(a, Viewport::full(a), ndc(-2, -2), ndc(2, -2), ndc(0, 3), Color{5, 6, 7, 255});
  draw_triangle_clip(b, Viewport::full(b), ndc(0, 3), ndc(2, -2), ndc(-2, -2), Color{5, 6, 7, 255});
  EXPECT_EQ(a.color(), b.color());
}

TEST(Rasterizer, ZBufferKeepsNearest) {
  Framebuffer fb(8, 8);
  fb.clear();
  draw_triangle_clip(fb, Viewport::full(fb), ndc(-2, -2, 0.5f), ndc(2, -2, 0.5f), ndc(0, 3, 0.5f),
                     Color{10, 0, 0, 255});
  // A farther triangle must not overwrite.
  draw_triangle_clip(fb, Viewport::full(fb), ndc(-2, -2, 0.8f), ndc(2, -2, 0.8f), ndc(0, 3, 0.8f),
                     Color{20, 0, 0, 255});
  EXPECT_EQ(fb.color().get(4, 4).r, 10);
  // A nearer one does.
  draw_triangle_clip(fb, Viewport::full(fb), ndc(-2, -2, 0.1f), ndc(2, -2, 0.1f), ndc(0, 3, 0.1f),
                     Color{30, 0, 0, 255});
  EXPECT_EQ(fb.color().get(4, 4).r, 30);
}

TEST(Rasterizer, FullyBehindEyeIsClipped) {
  Framebuffer fb(8, 8);
  fb.clear();
  RasterStats stats;
  draw_triangle_clip(fb, Viewport::full(fb), Vec4{0, 0, 0, -1}, Vec4{1, 0, 0, -1},
                     Vec4{0, 1, 0, -2}, Color{255, 0, 0, 255}, &stats);
  EXPECT_EQ(stats.triangles_clipped_away, 1u);
  EXPECT_EQ(stats.pixels_filled, 0u);
}

TEST(Rasterizer, PartialClipStillDraws) {
  Framebuffer fb(16, 16);
  fb.clear();
  RasterStats stats;
  // One vertex behind the eye; the clipper must emit geometry.
  draw_triangle_clip(fb, Viewport::full(fb), Vec4{0, -8, 0, 8}, Vec4{8, 8, 0, 8},
                     Vec4{-2, 0, 0, -1}, Color{99, 0, 0, 255}, &stats);
  EXPECT_EQ(stats.triangles_clipped_away, 0u);
  EXPECT_GT(stats.pixels_filled, 0u);
}

TEST(Rasterizer, DegenerateTriangleDrawsNothing) {
  Framebuffer fb(8, 8);
  fb.clear();
  RasterStats stats;
  draw_triangle_clip(fb, Viewport::full(fb), ndc(0, 0), ndc(1, 1), ndc(0.5f, 0.5f),
                     Color{1, 1, 1, 255}, &stats);
  EXPECT_EQ(stats.pixels_filled, 0u);
}

TEST(Rasterizer, TopRowOfNdcIsRowZero) {
  Framebuffer fb(4, 4);
  fb.clear(Color{0, 0, 0, 255});
  // Small triangle near NDC y = +1 (top).
  draw_triangle_clip(fb, Viewport::full(fb), ndc(-1, 1.0f), ndc(1, 1.0f), ndc(0, 0.4f),
                     Color{77, 0, 0, 255});
  EXPECT_EQ(fb.color().get(1, 0).r, 77);   // top row hit
  EXPECT_EQ(fb.color().get(1, 3).r, 0);    // bottom row untouched
}

// ----------------------------------------------------------------- Renderer

struct RendererFixture : ::testing::Test {
  static CityParams params() {
    CityParams p;
    p.blocks_x = 5;
    p.blocks_z = 5;
    return p;
  }
  Mesh city = generate_city(params());
  Octree octree{city};
  CameraConfig cam;
  Renderer renderer{city, octree, cam, 120, 120};
  WalkthroughPath path{city.bounds(), 40};
};

TEST_F(RendererFixture, ProducesNonTrivialImage) {
  RenderStats stats;
  const Image img = renderer.render(path.view(0), &stats);
  EXPECT_EQ(img.width(), 120);
  EXPECT_EQ(img.height(), 120);
  EXPECT_GT(stats.raster.pixels_filled, 100u);
  EXPECT_GT(stats.cull.tris_accepted, 10u);
  // Image is not a single flat colour.
  const Color c0 = img.get(0, 0);
  bool varied = false;
  for (int y = 0; y < 120 && !varied; y += 7) {
    for (int x = 0; x < 120 && !varied; x += 7) {
      varied = !(img.get(x, y) == c0);
    }
  }
  EXPECT_TRUE(varied);
}

TEST_F(RendererFixture, StripsAssembleToFullFrame) {
  // Sort-first correctness: rendering each strip with its adjusted frustum
  // and pasting the strips reproduces the full-frame rendering exactly.
  const Mat4 view = path.view(7);
  const Image whole = renderer.render(view);
  for (const int k : {2, 3, 5}) {
    Image assembled(120, 120);
    for (const StripRange& s : divide_rows(120, k)) {
      assembled.paste(renderer.render_strip(view, s), s.y0);
    }
    EXPECT_EQ(assembled, whole) << "k=" << k;
  }
}

TEST_F(RendererFixture, DeterministicAcrossCalls) {
  const Mat4 view = path.view(3);
  EXPECT_EQ(renderer.render(view), renderer.render(view));
}

TEST_F(RendererFixture, EstimateTracksRasterWorkload) {
  const Mat4 view = path.view(11);
  RenderStats real;
  renderer.render(view, &real);
  const RenderStats est = renderer.estimate_strip(view, {0, 120});
  // Same culling.
  EXPECT_EQ(est.cull.tris_accepted, real.cull.tris_accepted);
  EXPECT_EQ(est.cull.nodes_visited, real.cull.nodes_visited);
  // Pixel estimate within the same order of magnitude as filled pixels.
  EXPECT_GT(est.projected_pixels, 0.2 * static_cast<double>(real.raster.pixels_filled));
}

TEST_F(RendererFixture, EstimateIsCappedByStripArea) {
  const RenderStats est = renderer.estimate_strip(path.view(1), {0, 120});
  EXPECT_LE(est.projected_pixels, 2.5 * 120.0 * 120.0 + 1.0);
}

TEST_F(RendererFixture, StripWorkloadsShrinkWithK) {
  const Mat4 view = path.view(5);
  const RenderStats whole = renderer.estimate_strip(view, {0, 120});
  double strip_sum_pixels = 0.0;
  for (const StripRange& s : divide_rows(120, 4)) {
    const RenderStats st = renderer.estimate_strip(view, s);
    EXPECT_LE(st.cull.tris_accepted, whole.cull.tris_accepted);
    strip_sum_pixels += st.projected_pixels;
  }
  EXPECT_GT(strip_sum_pixels, 0.0);
}

}  // namespace
}  // namespace sccpipe
