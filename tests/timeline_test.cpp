#include <gtest/gtest.h>
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>
#include <vector>

#include "sccpipe/core/timeline.hpp"
#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

using namespace sccpipe::literals;

TEST(TimelineRecorder, RecordsSpans) {
  TimelineRecorder rec;
  rec.add_span(3, "blur f0", "process", 1_ms, 5_ms);
  rec.add_span(3, "blur f1", "wait", 5_ms, 6_ms);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.spans()[0].core, 3);
  EXPECT_EQ(rec.spans()[0].end, 5_ms);
}

TEST(TimelineRecorder, DropsZeroLengthAndRejectsNegative) {
  TimelineRecorder rec;
  rec.add_span(0, "noop", "process", 2_ms, 2_ms);
  EXPECT_TRUE(rec.empty());
  EXPECT_THROW(rec.add_span(0, "bad", "process", 3_ms, 2_ms), CheckError);
}

TEST(TimelineRecorder, ChromeJsonShape) {
  TimelineRecorder rec;
  rec.add_span(7, "sepia f2", "process", SimTime::us(100), SimTime::us(350));
  const std::string json = rec.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sepia f2\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
}

TEST(TimelineRecorder, WalkthroughProducesCoherentTimeline) {
  CityParams city;
  city.blocks_x = 4;
  city.blocks_z = 4;
  SceneBundle scene(city, CameraConfig{}, 80, 6);
  const WorkloadTrace trace = WorkloadTrace::build(scene, 2);

  TimelineRecorder rec;
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 2;
  cfg.timeline = &rec;
  const RunResult r = run_walkthrough(scene, trace, cfg);

  // Per frame: 10 filter process spans + connect + transfer, plus wait
  // spans for the filters. At least frames * 12 spans overall.
  EXPECT_GE(rec.size(), 6u * 12u);

  // Spans stay within the run and are well-formed; each core's process
  // spans must not overlap (a core works one thing at a time).
  std::map<CoreId, std::vector<std::pair<SimTime, SimTime>>> per_core;
  for (const TimelineRecorder::Span& s : rec.spans()) {
    EXPECT_GE(s.start, SimTime::zero());
    EXPECT_LE(s.end, r.walkthrough + 1_ms);
    if (s.category == "process") {
      per_core[s.core].emplace_back(s.start, s.end);
    }
  }
  for (auto& [core, spans] : per_core) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << "overlapping process spans on core " << core;
    }
  }

  // The JSON export round-trips through the writer.
  const std::string path = "/tmp/sccpipe_timeline_test.json";
  rec.write(path);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sccpipe
