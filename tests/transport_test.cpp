// Reliable host transport (host/reliable_link.hpp) and the overload layer
// (core/overload.hpp + walkthrough integration): seeded drop/reorder/
// duplicate/burst mixes must yield exactly-once in-order delivery (or a
// typed abandon), queues must respect their bounds, the frame ledger must
// balance, and every report must be bit-identical run-to-run.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sccpipe/core/overload.hpp"
#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/host/reliable_link.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/sim/simulator.hpp"

namespace sccpipe {
namespace {

// --------------------------------------------------- direct ARQ harness

/// Drives one ReliableHostChannel under a fault plan: pushes `count`
/// messages whose sizes encode their identity, pops them all, and records
/// everything observable.
struct ArqRun {
  std::vector<double> delivered;           // pop order, by encoded size
  std::vector<std::uint64_t> abandoned;    // seqs surfaced to the handler
  std::vector<StatusCode> abandon_codes;
  std::uint64_t first_sends = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t credit_stalls = 0;
  int max_receiver_occupancy = 0;
  double srtt_ms = 0.0;
};

double encode(int i) { return 1000.0 + i; }

ArqRun run_arq(const std::string& plan_text, std::uint64_t seed, int count,
               int window, int depth, int max_attempts,
               SimTime consumer_delay = SimTime::zero()) {
  Simulator sim;
  FaultPlan plan;
  if (!plan_text.empty()) {
    const Status st = plan.parse(plan_text);
    EXPECT_TRUE(st.ok()) << st.to_string();
  }
  plan.seed = seed;
  FaultInjector fault(plan, 96, 24, 4);

  ReliableLinkConfig cfg;
  cfg.link = HostLinkConfig::mcpc();
  cfg.window = window;
  cfg.queue_depth = depth;
  cfg.retry.max_attempts = max_attempts;
  cfg.retry.timeout = SimTime::ms(5);
  ReliableHostChannel ch(sim, cfg);
  if (plan.enabled()) ch.set_fault(&fault);

  ArqRun out;
  ch.set_error_handler([&](const Status& s, std::uint64_t seq) {
    out.abandoned.push_back(seq);
    out.abandon_codes.push_back(s.code());
  });
  for (int i = 0; i < count; ++i) {
    ch.push(encode(i), [] {});
  }
  // The consumer pops everything, optionally pausing between pops (a slow
  // stage) so credit has to throttle the producer.
  std::function<void()> pop_next = [&] {
    ch.pop([&](double bytes) {
      out.delivered.push_back(bytes);
      if (consumer_delay.is_zero()) {
        pop_next();
      } else {
        sim.schedule_after(consumer_delay, [&] { pop_next(); });
      }
    });
  };
  pop_next();
  sim.run();

  out.first_sends = ch.first_sends();
  out.retransmissions = ch.retransmissions();
  out.dup_suppressed = ch.dup_suppressed();
  out.credit_stalls = ch.credit_stalls();
  out.max_receiver_occupancy = ch.max_receiver_occupancy();
  out.srtt_ms = ch.smoothed_rtt().to_ms();
  return out;
}

// ------------------------------------------------------------ properties

TEST(ReliableLink, CleanRunDeliversInOrderWithoutRetransmits) {
  const ArqRun r = run_arq("", 1, 40, 8, 8, 1);
  ASSERT_EQ(r.delivered.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(r.delivered[i], encode(i));
  EXPECT_EQ(r.first_sends, 40u);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.dup_suppressed, 0u);
  EXPECT_TRUE(r.abandoned.empty());
  EXPECT_GT(r.srtt_ms, 0.0);
}

TEST(ReliableLink, ExactlyOnceInOrderUnderSeededChaos) {
  const char* plans[] = {
      "host-drop=0.1",
      "reorder=0.15:3ms",
      "duplicate=0.15:1ms",
      "burst-loss=0.05:0.4:0.9",
      "host-drop=0.1;reorder=0.05:2ms;duplicate=0.05:1ms;"
      "burst-loss=0.02:0.5",
  };
  for (const char* plan : plans) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const ArqRun r = run_arq(plan, seed, 60, 8, 8, 12);
      ASSERT_EQ(r.delivered.size(), 60u)
          << "plan '" << plan << "' seed " << seed;
      for (int i = 0; i < 60; ++i) {
        ASSERT_EQ(r.delivered[i], encode(i))
            << "plan '" << plan << "' seed " << seed << " position " << i;
      }
      EXPECT_TRUE(r.abandoned.empty()) << "plan '" << plan << "'";
      EXPECT_LE(r.max_receiver_occupancy, 8);
    }
  }
}

TEST(ReliableLink, DuplicatesAreSuppressedNotDelivered) {
  const ArqRun r = run_arq("duplicate=1.0:1ms", 7, 30, 4, 4, 4);
  ASSERT_EQ(r.delivered.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(r.delivered[i], encode(i));
  EXPECT_GE(r.dup_suppressed, 20u);  // nearly every datagram was doubled
}

TEST(ReliableLink, TotalLossAbandonsEveryMessageTyped) {
  const ArqRun r = run_arq("host-drop=1.0", 3, 20, 4, 4, 3);
  EXPECT_TRUE(r.delivered.empty());
  ASSERT_EQ(r.abandoned.size(), 20u);  // credit freed by skips kept pumping
  for (const StatusCode c : r.abandon_codes) {
    EXPECT_EQ(c, StatusCode::RetriesExhausted);
  }
  EXPECT_EQ(r.first_sends, 20u);
  EXPECT_EQ(r.retransmissions, 40u);  // 3 attempts per message
}

TEST(ReliableLink, SlowConsumerIsBoundedByCredit) {
  const ArqRun r = run_arq("", 1, 40, 16, 4, 1, SimTime::ms(2));
  ASSERT_EQ(r.delivered.size(), 40u);
  EXPECT_LE(r.max_receiver_occupancy, 4);  // never exceeds queue_depth
  EXPECT_GT(r.credit_stalls, 0u);          // the producer visibly throttled
}

TEST(ReliableLink, SameSeedIsBitIdentical) {
  const char* plan =
      "host-drop=0.1;reorder=0.05:2ms;duplicate=0.05:1ms;burst-loss=0.02:0.5";
  const ArqRun a = run_arq(plan, 11, 50, 8, 6, 10);
  const ArqRun b = run_arq(plan, 11, 50, 8, 6, 10);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.first_sends, b.first_sends);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.dup_suppressed, b.dup_suppressed);
  EXPECT_EQ(a.srtt_ms, b.srtt_ms);
}

// -------------------------------------------------------- circuit breaker

TEST(CircuitBreaker, StateMachineTripsHalfOpensAndRecloses) {
  CircuitBreaker b(3, SimTime::ms(100));
  SimTime t = SimTime::ms(1);
  EXPECT_TRUE(b.allow(t));
  b.on_failure(t);
  b.on_failure(t);
  EXPECT_EQ(b.state(), BreakerState::Closed);  // under threshold
  b.on_failure(t);
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.trips(), 1);
  EXPECT_FALSE(b.allow(t + SimTime::ms(50)));  // still cooling down
  EXPECT_TRUE(b.allow(t + SimTime::ms(101)));  // the probe passes
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
  EXPECT_FALSE(b.allow(t + SimTime::ms(102)));  // one probe at a time
  b.on_failure(t + SimTime::ms(110));           // probe failed
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.trips(), 2);
  EXPECT_TRUE(b.allow(t + SimTime::ms(211)));  // half-open again
  b.on_success(t + SimTime::ms(215));          // probe succeeded
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_TRUE(b.allow(t + SimTime::ms(216)));
  EXPECT_EQ(b.transitions().size(), 5u);
}

TEST(CircuitBreaker, ZeroThresholdIsDisabled) {
  CircuitBreaker b(0, SimTime::ms(100));
  for (int i = 0; i < 10; ++i) b.on_failure(SimTime::ms(i));
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_TRUE(b.allow(SimTime::ms(20)));
  EXPECT_EQ(b.trips(), 0);
}

// ------------------------------------------------- walkthrough integration

const SceneBundle& shared_scene() {
  static SceneBundle* scene = [] {
    CityParams city;
    city.blocks_x = 4;
    city.blocks_z = 4;
    return new SceneBundle(city, CameraConfig{}, 80, 10);
  }();
  return *scene;
}

const WorkloadTrace& shared_trace() {
  static WorkloadTrace* trace =
      new WorkloadTrace(WorkloadTrace::build(shared_scene(), 4));
  return *trace;
}

RunConfig overload_config() {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  cfg.overload.window = 4;
  cfg.overload.queue_depth = 2;
  cfg.rcce.retry.max_attempts = 8;
  return cfg;
}

TEST(OverloadRun, ChaosMixDeliversEveryAdmittedFrameExactlyOnce) {
  RunConfig cfg = overload_config();
  ASSERT_TRUE(
      cfg.fault
          .parse("host-drop=0.1;reorder=0.05:1ms;duplicate=0.05:500us")
          .ok());
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_FALSE(r.fault.failed);
  EXPECT_TRUE(r.transport.enabled);
  EXPECT_EQ(r.transport.frames_offered, 10u);
  EXPECT_EQ(r.transport.frames_delivered, 10u);  // closed loop: no shedding
  EXPECT_EQ(r.frame_done_ms.size(), 10u);
  EXPECT_EQ(r.transport.shed_transport, 0u);
  EXPECT_LE(r.transport.max_link_queue, 2);
  EXPECT_LE(r.transport.max_stage_queue, 2);
}

TEST(OverloadRun, OpenLoopOverloadShedsAndBalancesTheLedger) {
  RunConfig cfg = overload_config();
  cfg.overload.offered_fps = 1e5;  // far beyond the render capacity
  cfg.overload.frame_deadline = SimTime::ms(50);
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  const TransportReport& t = r.transport;
  EXPECT_TRUE(t.enabled);
  EXPECT_EQ(t.frames_offered, 10u);
  EXPECT_EQ(t.frames_offered,
            t.frames_admitted + t.shed_admission + t.shed_breaker);
  EXPECT_EQ(t.frames_admitted,
            t.frames_delivered + t.shed_deadline + t.shed_transport);
  EXPECT_GT(t.shed_admission + t.shed_deadline, 0u);  // it really shed
  EXPECT_LE(t.max_feeder_queue, 2);
  EXPECT_LE(t.max_link_queue, 2);
  EXPECT_LE(t.max_stage_queue, 2);
  EXPECT_GT(t.frames_delivered, 0u);
  EXPECT_GT(t.goodput_fps, 0.0);
  EXPECT_GT(t.p99_latency_ms, 0.0);
  EXPECT_GE(t.p99_latency_ms, t.p50_latency_ms);
}

TEST(OverloadRun, ReportIsBitIdenticalAcrossRepeats) {
  RunConfig cfg = overload_config();
  cfg.overload.offered_fps = 400.0;
  cfg.overload.frame_deadline = SimTime::ms(40);
  ASSERT_TRUE(cfg.fault.parse("host-drop=0.05;duplicate=0.05:500us").ok());
  const RunResult a = run_walkthrough(shared_scene(), shared_trace(), cfg);
  const RunResult b = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_EQ(a.walkthrough, b.walkthrough);
  EXPECT_EQ(a.transport.csv(), b.transport.csv());
  EXPECT_EQ(a.frame_done_ms, b.frame_done_ms);
}

TEST(OverloadRun, DisabledConfigReportsNothing) {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_FALSE(r.transport.enabled);
  EXPECT_EQ(r.transport.frames_offered, 0u);
  EXPECT_EQ(r.frame_done_ms.size(), 10u);
}

}  // namespace
}  // namespace sccpipe
