// Deterministic fault injection (sim/fault.hpp) and the transport
// timeout/retry machinery built on it: same seed => bit-identical fault
// schedule and simulated timing; retry exhaustion => typed error, never a
// hang; zero-fault plan => bit-identical to no fault layer at all.

#include <gtest/gtest.h>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/sim/fault.hpp"

namespace sccpipe {
namespace {

// Shared small scene (built once; the binary's only expensive setup).
const SceneBundle& shared_scene() {
  static SceneBundle* scene = [] {
    CityParams city;
    city.blocks_x = 4;
    city.blocks_z = 4;
    return new SceneBundle(city, CameraConfig{}, 80, 8);
  }();
  return *scene;
}

const WorkloadTrace& shared_trace() {
  static WorkloadTrace* trace =
      new WorkloadTrace(WorkloadTrace::build(shared_scene(), 4));
  return *trace;
}

RunConfig base_config() {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  return cfg;
}

// ------------------------------------------------------------ retry policy

TEST(RetryPolicy, BackoffGrowsExponentially) {
  RetryPolicy rp;
  rp.backoff = SimTime::ms(2);
  rp.backoff_factor = 3.0;
  EXPECT_EQ(rp.backoff_after(1), SimTime::ms(2));
  EXPECT_EQ(rp.backoff_after(2), SimTime::ms(6));
  EXPECT_EQ(rp.backoff_after(3), SimTime::ms(18));
}

// -------------------------------------------------------------- plan parse

TEST(FaultPlan, DefaultPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.rcce_drop_rate = 0.01;
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, ParsesTheFullGrammar) {
  FaultPlan plan;
  const Status st = plan.parse(
      "seed=9;horizon=2s;window=20ms;rcce-drop=0.05;rcce-delay=0.1:3ms;"
      "rcce-corrupt=0.02;host-corrupt=0.03;"
      "host-drop=0.01;host-delay=0.2:500us;reorder=0.05:2ms;"
      "duplicate=0.04:1ms;burst-loss=0.01:0.2:0.9;"
      "link-degrade=3:0.5;link-down=2;"
      "router-degrade=1:0.25;mc-degrade=2:0.75;mc-stall=1;core-fail=7@150ms");
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_EQ(plan.horizon, SimTime::sec(2));
  EXPECT_EQ(plan.window, SimTime::ms(20));
  EXPECT_DOUBLE_EQ(plan.rcce_drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.rcce_delay_rate, 0.1);
  EXPECT_EQ(plan.rcce_delay, SimTime::ms(3));
  EXPECT_DOUBLE_EQ(plan.host_drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.host_delay_rate, 0.2);
  EXPECT_EQ(plan.host_delay, SimTime::us(500));
  EXPECT_DOUBLE_EQ(plan.rcce_corrupt_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.host_corrupt_rate, 0.03);
  EXPECT_DOUBLE_EQ(plan.host_reorder_rate, 0.05);
  EXPECT_EQ(plan.host_reorder_delay, SimTime::ms(2));
  EXPECT_DOUBLE_EQ(plan.host_duplicate_rate, 0.04);
  EXPECT_EQ(plan.host_duplicate_lag, SimTime::ms(1));
  EXPECT_DOUBLE_EQ(plan.burst_enter_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.burst_exit_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.burst_loss_rate, 0.9);
  ASSERT_EQ(plan.core_failures.size(), 1u);
  EXPECT_EQ(plan.core_failures[0].core, 7);
  EXPECT_EQ(plan.core_failures[0].at, SimTime::ms(150));
  EXPECT_EQ(plan.link_degrade_count, 3);
  EXPECT_DOUBLE_EQ(plan.link_degrade_factor, 0.5);
  EXPECT_EQ(plan.link_down_count, 2);
  EXPECT_EQ(plan.router_degrade_count, 1);
  EXPECT_EQ(plan.mc_degrade_count, 2);
  EXPECT_DOUBLE_EQ(plan.mc_degrade_factor, 0.75);
  EXPECT_EQ(plan.mc_stall_count, 1);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, RejectsMalformedInput) {
  FaultPlan plan;
  const Status unknown = plan.parse("bogus-key=1");
  EXPECT_EQ(unknown.code(), StatusCode::InvalidArgument);
  EXPECT_FALSE(unknown.message().empty());
  EXPECT_FALSE(plan.parse("rcce-drop=1.5").ok());  // rate out of [0, 1]
  EXPECT_FALSE(plan.parse("rcce-drop=abc").ok());
  EXPECT_FALSE(plan.parse("horizon=12parsecs").ok());
  EXPECT_FALSE(plan.parse("link-degrade=3:2").ok());  // factor > 1
  EXPECT_FALSE(plan.parse("link-degrade=3:").ok());   // empty factor
  EXPECT_FALSE(plan.parse("rcce-drop").ok());         // missing =
  EXPECT_FALSE(plan.parse("core-fail=5").ok());       // missing @time
  EXPECT_FALSE(plan.parse("core-fail=-1@10ms").ok()); // negative core
  EXPECT_FALSE(plan.parse("reorder=1.5").ok());       // rate out of [0, 1]
  EXPECT_FALSE(plan.parse("reorder=0.1:xyz").ok());   // bad delay
  EXPECT_FALSE(plan.parse("duplicate=-0.1").ok());    // negative rate
  EXPECT_FALSE(plan.parse("burst-loss=0.1").ok());    // missing exit rate
  EXPECT_FALSE(plan.parse("burst-loss=0.1:2").ok());  // exit rate > 1
  EXPECT_FALSE(plan.parse("burst-loss=0.1:0.2:9").ok());  // loss > 1
}

// ------------------------------------------------------ schedule determinism

FaultPlan window_heavy_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.horizon = SimTime::sec(2);
  plan.window = SimTime::ms(10);
  plan.link_degrade_count = 4;
  plan.link_down_count = 2;
  plan.router_degrade_count = 2;
  plan.mc_degrade_count = 2;
  plan.mc_stall_count = 1;
  return plan;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const FaultPlan plan = window_heavy_plan(1234);
  FaultInjector a(plan, 96, 24, 4);
  FaultInjector b(plan, 96, 24, 4);
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  EXPECT_EQ(a.schedule().size(), 11u);  // the five counts above
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
    EXPECT_EQ(a.schedule()[i].start, b.schedule()[i].start);
    EXPECT_EQ(a.schedule()[i].target, b.schedule()[i].target);
  }
}

TEST(FaultInjector, DifferentSeedDifferentSchedule) {
  FaultInjector a(window_heavy_plan(1), 96, 24, 4);
  FaultInjector b(window_heavy_plan(2), 96, 24, 4);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(FaultInjector, MessageFatesAreDeterministic) {
  FaultPlan plan;
  plan.seed = 77;
  plan.rcce_drop_rate = 0.3;
  plan.rcce_delay_rate = 0.3;
  FaultInjector a(plan, 96, 24, 4);
  FaultInjector b(plan, 96, 24, 4);
  for (int i = 0; i < 200; ++i) {
    SimTime ea = SimTime::zero(), eb = SimTime::zero();
    const MessageFate da = a.rcce_message_fate(SimTime::ms(i), 0, 1, &ea);
    const MessageFate db = b.rcce_message_fate(SimTime::ms(i), 0, 1, &eb);
    EXPECT_EQ(da, db);
    EXPECT_EQ(ea, eb);
  }
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_GT(a.rcce_drops(), 0u);
  EXPECT_GT(a.rcce_delays(), 0u);
}

TEST(FaultInjector, LinkDownWindowDelaysAndDegrades) {
  FaultPlan plan;
  plan.seed = 5;
  plan.link_down_count = 1;
  plan.horizon = SimTime::sec(1);
  plan.window = SimTime::ms(50);
  FaultInjector inj(plan, 96, 24, 4);
  ASSERT_EQ(inj.schedule().size(), 1u);
  const FaultEvent& ev = inj.schedule().front();
  EXPECT_EQ(ev.kind, FaultKind::LinkDown);
  // Inside the window the link is unavailable until the window's end;
  // outside it answers immediately.
  const SimTime mid = ev.start + SimTime::ms(1);
  EXPECT_EQ(inj.link_available(ev.target, mid), ev.end);
  EXPECT_EQ(inj.link_available(ev.target, ev.end), ev.end);
  EXPECT_EQ(inj.link_available(ev.target, SimTime::zero()), SimTime::zero());
  // Other links are unaffected.
  const int other = (ev.target + 1) % 96;
  EXPECT_EQ(inj.link_available(other, mid), mid);
}

// ------------------------------------------------------- walkthrough runs

TEST(FaultWalkthrough, SameSeedBitIdenticalRun) {
  RunConfig cfg = base_config();
  cfg.fault = window_heavy_plan(42);
  cfg.fault.rcce_drop_rate = 0.05;
  cfg.fault.rcce_delay_rate = 0.05;
  cfg.fault.host_drop_rate = 0.02;
  cfg.rcce.retry.max_attempts = 16;
  cfg.rcce.retry.timeout = SimTime::ms(2);

  const RunResult a = run_walkthrough(shared_scene(), shared_trace(), cfg);
  const RunResult b = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(a.fault.failed) << a.fault.failure;
  EXPECT_GT(a.fault.fingerprint, 0u);
  // Bit-identical fault schedule + decisions...
  EXPECT_EQ(a.fault.fingerprint, b.fault.fingerprint);
  EXPECT_EQ(a.fault.rcce_drops, b.fault.rcce_drops);
  EXPECT_EQ(a.fault.rcce_retransmissions, b.fault.rcce_retransmissions);
  // ...and therefore bit-identical simulated timing.
  EXPECT_EQ(a.walkthrough, b.walkthrough);
  ASSERT_EQ(a.frame_done_ms.size(), b.frame_done_ms.size());
  for (std::size_t i = 0; i < a.frame_done_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.frame_done_ms[i], b.frame_done_ms[i]);
  }
}

TEST(FaultWalkthrough, ZeroFaultPlanIsIdenticalToNoFaultLayer) {
  const RunConfig plain = base_config();
  RunConfig zero = base_config();
  zero.fault.seed = 999;  // a seed alone enables nothing
  ASSERT_FALSE(zero.fault.enabled());

  const RunResult a = run_walkthrough(shared_scene(), shared_trace(), plain);
  const RunResult b = run_walkthrough(shared_scene(), shared_trace(), zero);
  EXPECT_FALSE(b.fault.enabled);
  EXPECT_EQ(a.walkthrough, b.walkthrough);
  ASSERT_EQ(a.frame_done_ms.size(), b.frame_done_ms.size());
  for (std::size_t i = 0; i < a.frame_done_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.frame_done_ms[i], b.frame_done_ms[i]);
  }
}

TEST(FaultWalkthrough, RetryExhaustionSurfacesTypedErrorNotAHang) {
  RunConfig cfg = base_config();
  cfg.fault.seed = 3;
  cfg.fault.rcce_drop_rate = 1.0;  // every payload is lost
  cfg.rcce.retry.max_attempts = 3;
  cfg.rcce.retry.timeout = SimTime::ms(1);

  // If retry exhaustion hung the rendezvous this call would never return
  // (the ctest TIMEOUT would flag it); instead the run drains and reports.
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_TRUE(r.fault.failed);
  EXPECT_EQ(r.fault.failure_code, StatusCode::RetriesExhausted);
  EXPECT_FALSE(r.fault.failure.empty());
  EXPECT_FALSE(r.fault.stage_errors.empty());
  EXPECT_EQ(r.fault.frames_completed, 0);
  EXPECT_GE(r.fault.rcce_transfers_failed, 1u);
  // Two retransmissions per failed transfer (3 attempts).
  EXPECT_EQ(r.fault.rcce_retransmissions, 2u * r.fault.rcce_transfers_failed);
  EXPECT_GT(r.walkthrough, SimTime::zero());
}

TEST(FaultWalkthrough, DeadlineExceededSurfacesBeforeAttemptsRunOut) {
  RunConfig cfg = base_config();
  cfg.fault.seed = 3;
  cfg.fault.rcce_drop_rate = 1.0;
  cfg.rcce.retry.max_attempts = 100;
  cfg.rcce.retry.timeout = SimTime::ms(5);
  cfg.rcce.retry.backoff = SimTime::ms(1);
  cfg.rcce.retry.deadline = SimTime::ms(12);

  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_TRUE(r.fault.failed);
  EXPECT_EQ(r.fault.failure_code, StatusCode::DeadlineExceeded);
}

TEST(FaultWalkthrough, DelaysAloneDegradeTimingButComplete) {
  const RunResult clean =
      run_walkthrough(shared_scene(), shared_trace(), base_config());

  RunConfig cfg = base_config();
  cfg.fault.seed = 11;
  cfg.fault.rcce_delay_rate = 0.5;
  cfg.fault.rcce_delay = SimTime::ms(2);
  cfg.fault.host_delay_rate = 0.5;
  cfg.fault.host_delay = SimTime::ms(2);
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  EXPECT_GT(r.fault.rcce_delays + r.fault.host_delays, 0u);
  EXPECT_GE(r.walkthrough, clean.walkthrough);
}

TEST(FaultWalkthrough, WindowFaultsDegradeTimingButComplete) {
  const RunConfig plain = base_config();
  const RunResult clean =
      run_walkthrough(shared_scene(), shared_trace(), plain);

  RunConfig cfg = base_config();
  cfg.fault.seed = 21;
  cfg.fault.horizon = clean.walkthrough;  // windows land inside the run
  cfg.fault.window = SimTime::ms(30);
  cfg.fault.link_down_count = 4;
  cfg.fault.mc_stall_count = 2;
  cfg.fault.mc_degrade_count = 2;
  cfg.fault.router_degrade_count = 2;
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  // NoC/MC faults never lose payloads — they only cost time.
  EXPECT_GE(r.walkthrough, clean.walkthrough);
}

TEST(FaultWalkthrough, HostLinkLossRecoversWithRetries) {
  RunConfig cfg = base_config();
  cfg.fault.seed = 8;
  cfg.fault.host_drop_rate = 0.3;
  cfg.rcce.retry.max_attempts = 16;
  cfg.rcce.retry.timeout = SimTime::ms(2);
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  EXPECT_GT(r.fault.host_drops, 0u);
  EXPECT_EQ(r.fault.host_retransmissions, r.fault.host_drops);
}

TEST(FaultWalkthrough, TimelineGainsFaultAnnotations) {
  RunConfig cfg = base_config();
  cfg.fault.seed = 13;
  cfg.fault.rcce_drop_rate = 0.1;
  cfg.fault.link_down_count = 2;
  cfg.rcce.retry.max_attempts = 16;
  cfg.rcce.retry.timeout = SimTime::ms(2);
  TimelineRecorder timeline;
  cfg.timeline = &timeline;
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  std::size_t fault_spans = 0;
  for (const TimelineRecorder::Span& s : timeline.spans()) {
    if (s.category == "fault") ++fault_spans;
  }
  // The two scheduled windows plus one span per message-fate decision.
  EXPECT_EQ(fault_spans, 2u + r.fault.rcce_drops + r.fault.rcce_delays +
                             r.fault.host_drops + r.fault.host_delays);
}

}  // namespace
}  // namespace sccpipe
