// Gray-failure tolerance (sim/fault fail-slow fates + core/recovery
// detector + walkthrough mitigation ladder): the fault grammar rejects
// malformed fail-slow specs with typed errors, a factor-1.0 plan is
// byte-identical to no plan at all, the median-relative detector never
// flags a uniform slowdown, the policy ladder (off / dvfs / migrate /
// rebalance) takes exactly the actions its ceiling allows while the frame
// ledger balances to zero loss, a slow-then-dead core resolves as ONE
// escalated incident, and the whole path is deterministic at any sim-jobs
// count. Also pins the LatencyHistogram's quantiles to quantile_sorted()
// bit-for-bit — the transport report's p50/p99 ride on that equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sccpipe/core/recovery.hpp"
#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/filters/image.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/support/stats.hpp"

namespace sccpipe {
namespace {

// Shared small scene (built once; the binary's only expensive setup).
const SceneBundle& shared_scene() {
  static SceneBundle* scene = [] {
    CityParams city;
    city.blocks_x = 4;
    city.blocks_z = 4;
    return new SceneBundle(city, CameraConfig{}, 80, 8);
  }();
  return *scene;
}

const WorkloadTrace& shared_trace() {
  static WorkloadTrace* trace =
      new WorkloadTrace(WorkloadTrace::build(shared_scene(), 4));
  return *trace;
}

RunConfig base_config() {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  return cfg;
}

// Clean reference run: supplies the deterministic placement (to pick
// victim cores) and the fault-free walkthrough length (to pick onsets
// that land mid-stream).
const RunResult& clean_run() {
  static RunResult* r = new RunResult(
      run_walkthrough(shared_scene(), shared_trace(), base_config()));
  return *r;
}

SimTime mid_run_instant(double fraction) {
  return SimTime::ms(clean_run().walkthrough.to_ms() * fraction);
}

// Gray-detector tuning for the 8-frame run: windows must be wide enough
// that several stage cores report in each (the threshold is relative to
// the *median* reporter, so a window with one lone reporter can never
// flag), and K small enough that onset at 30% still leaves K suspicious
// windows before the run drains.
RunConfig gray_config(GrayPolicy policy) {
  RunConfig cfg = base_config();
  cfg.recovery.heartbeat_period = SimTime::ms(2);
  cfg.recovery.detection_deadline = SimTime::ms(5);
  cfg.gray.detect_factor = 1.2;
  cfg.gray.detect_windows = 2;
  cfg.gray.policy = policy;
  return cfg;
}

RunConfig slow_core_config(GrayPolicy policy, double factor,
                           double fraction) {
  RunConfig cfg = gray_config(policy);
  cfg.fault.seed = 11;
  const CoreId victim = clean_run().placement.pipeline_cores[1][2];
  cfg.fault.slow_cores.push_back(
      SlowCore{victim, factor, mid_run_instant(fraction)});
  return cfg;
}

void expect_same_frames(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.walkthrough, b.walkthrough);
  ASSERT_EQ(a.frame_done_ms.size(), b.frame_done_ms.size());
  for (std::size_t i = 0; i < a.frame_done_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.frame_done_ms[i], b.frame_done_ms[i]);
  }
}

void expect_ledger_balances(const GrayReport& g) {
  EXPECT_EQ(g.frames_offered, g.frames_delivered + g.frames_shed);
}

// ------------------------------------------------------- grammar rejects

TEST(GrayGrammar, AcceptedSpellings) {
  FaultPlan plan;
  ASSERT_TRUE(plan.parse("slow-core=5:4@100ms").ok());
  ASSERT_TRUE(plan.parse("slow-core=9:1.5@250ms").ok());  // repeatable
  ASSERT_EQ(plan.slow_cores.size(), 2u);
  EXPECT_EQ(plan.slow_cores[0].core, 5);
  EXPECT_DOUBLE_EQ(plan.slow_cores[0].factor, 4.0);
  EXPECT_EQ(plan.slow_cores[0].at, SimTime::ms(100));
  ASSERT_TRUE(plan.parse("degraded-link=2-3:2@50ms").ok());
  ASSERT_EQ(plan.degraded_links.size(), 1u);
  EXPECT_EQ(plan.degraded_links[0].tile_a, 2);
  EXPECT_EQ(plan.degraded_links[0].tile_b, 3);
  ASSERT_TRUE(plan.parse("intermittent-stall=7:10ms:2ms").ok());
  ASSERT_EQ(plan.stalls.size(), 1u);
  EXPECT_EQ(plan.stalls[0].period, SimTime::ms(10));
  EXPECT_EQ(plan.stalls[0].duration, SimTime::ms(2));
  EXPECT_TRUE(plan.enabled());
}

TEST(GrayGrammar, SlowCoreRejectsSpeedupsAndJunk) {
  const char* bad[] = {
      "slow-core=5:0.5@100ms",  // factor < 1 is a speed-up, not a fault
      "slow-core=5:0@100ms",    // zero factor
      "slow-core=5:-2@100ms",   // negative factor
      "slow-core=5:4",          // missing onset
      "slow-core=5@100ms",      // missing factor
      "slow-core=x:4@100ms",    // junk core
      "slow-core=5:4@banana",   // junk time
  };
  for (const char* spec : bad) {
    FaultPlan plan;
    const Status st = plan.parse(spec);
    EXPECT_FALSE(st.ok()) << spec;
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument) << spec;
  }
}

TEST(GrayGrammar, DegradedLinkRejectsSelfLinksAndJunk) {
  const char* bad[] = {
      "degraded-link=3-3:2@50ms",   // self-link
      "degraded-link=3-4:0.9@50ms", // factor < 1
      "degraded-link=3:2@50ms",     // missing endpoint
      "degraded-link=3-4:2",        // missing onset
      "degraded-link=a-b:2@50ms",   // junk tiles
  };
  for (const char* spec : bad) {
    FaultPlan plan;
    const Status st = plan.parse(spec);
    EXPECT_FALSE(st.ok()) << spec;
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument) << spec;
  }
}

TEST(GrayGrammar, StallRejectsOverlapsAndSecondTrains) {
  const char* bad[] = {
      "intermittent-stall=7:10ms:10ms",  // duration == period overlaps
      "intermittent-stall=7:10ms:15ms",  // duration > period
      "intermittent-stall=7:0ms:0ms",    // degenerate train
      "intermittent-stall=7:10ms",       // missing duration
  };
  for (const char* spec : bad) {
    FaultPlan plan;
    const Status st = plan.parse(spec);
    EXPECT_FALSE(st.ok()) << spec;
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument) << spec;
  }
  // A second train on one core always overlaps the first eventually.
  FaultPlan plan;
  ASSERT_TRUE(plan.parse("intermittent-stall=7:10ms:2ms").ok());
  const Status st = plan.parse("intermittent-stall=7:20ms:5ms");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
}

TEST(GrayConfigValidation, TypedErrorsOnBadTuning) {
  GrayConfig cfg;  // disabled (factor 0) is always valid
  EXPECT_TRUE(validate_gray(cfg).ok());
  cfg.detect_factor = 1.0;  // the median core itself would sit on the line
  EXPECT_EQ(validate_gray(cfg).code(), StatusCode::InvalidArgument);
  cfg.detect_factor = 2.0;
  cfg.detect_windows = 0;
  EXPECT_EQ(validate_gray(cfg).code(), StatusCode::InvalidArgument);
  cfg.detect_windows = 3;
  EXPECT_TRUE(validate_gray(cfg).ok());

  GrayPolicy policy;
  EXPECT_TRUE(parse_gray_policy("off", &policy).ok());
  EXPECT_EQ(policy, GrayPolicy::Off);
  EXPECT_TRUE(parse_gray_policy("rebalance", &policy).ok());
  EXPECT_EQ(policy, GrayPolicy::Rebalance);
  EXPECT_EQ(parse_gray_policy("yolo", &policy).code(),
            StatusCode::InvalidArgument);
}

// ------------------------------------------------- histogram equivalence

TEST(LatencyHistogramTest, HistogramMatchesSortQuantiles) {
  // Deterministic mixed-scale samples: sub-bucket clusters, negatives
  // (clamp low), and values past the bucket cap (clamp high). The
  // histogram must agree with quantile_sorted() bit-for-bit — the
  // transport report's p50/p99 and the gray detector's window p50 both
  // lean on this equivalence.
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  const auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<double>(s % 100000) / 7.0 - 100.0;
  };
  LatencyHistogram h(0.5, 64);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    const double x = next();
    h.add(x);
    samples.push_back(x);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), quantile_sorted(samples, q)) << "q=" << q;
  }
  // clear() keeps the bucket spine but forgets the samples.
  h.clear();
  EXPECT_TRUE(h.empty());
  h.add(3.25);
  EXPECT_EQ(h.quantile(0.5), 3.25);
}

// --------------------------------------------------- metamorphic: factor 1

TEST(GrayMetamorphic, FactorOnePlanIsByteIdenticalToNoFault) {
  RunConfig cfg = base_config();
  ASSERT_TRUE(cfg.fault.parse("slow-core=14:1.0@10ms").ok());
  ASSERT_TRUE(cfg.fault.parse("degraded-link=2-3:1.0@10ms").ok());
  EXPECT_FALSE(cfg.fault.enabled());  // a 1.0 "fault" is no fault at all
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_FALSE(r.fault.enabled);
  expect_same_frames(r, clean_run());
}

TEST(GrayMetamorphic, UniformSlowdownNeverFlagsAnyone) {
  // Every chip core slows by the same factor from the first instant: each
  // core's EWMA baseline absorbs its own (stage-dependent) service-time
  // inflation and the median-relative threshold sees every norm move
  // together — a fleet-wide slowdown is not a *gray* failure, only an
  // outlier is.
  RunConfig cfg = gray_config(GrayPolicy::Rebalance);
  cfg.fault.seed = 11;
  for (int core = 0; core < 48; ++core) {
    cfg.fault.slow_cores.push_back(SlowCore{core, 4.0, SimTime::zero()});
  }
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  ASSERT_TRUE(r.gray.enabled);
  EXPECT_EQ(r.gray.flags_raised, 0);
  EXPECT_TRUE(r.gray.actions.empty());
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  // The slowdown itself is real even though no one is flagged.
  EXPECT_GT(r.walkthrough, clean_run().walkthrough);
  expect_ledger_balances(r.gray);
}

// ----------------------------------------------------- mitigation ladder

TEST(GrayLadder, PolicyOffObservesWithoutActing) {
  const RunResult r = run_walkthrough(
      shared_scene(), shared_trace(),
      slow_core_config(GrayPolicy::Off, 8.0, 0.3));
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  ASSERT_TRUE(r.gray.enabled);
  ASSERT_GE(r.gray.flags_raised, 1);
  EXPECT_EQ(r.gray.dvfs_boosts, 0);
  EXPECT_EQ(r.gray.migrations, 0);
  EXPECT_EQ(r.gray.rebalances, 0);
  EXPECT_EQ(r.gray.frames_drained, 0);
  for (const GrayActionRecord& a : r.gray.actions) {
    EXPECT_EQ(a.action, "observe");
    EXPECT_GT(a.evidence.norm,
              1.2 * a.evidence.median_norm);  // evidence is attached
  }
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  expect_ledger_balances(r.gray);
  EXPECT_EQ(r.gray.frames_shed, 0u);
  EXPECT_GT(r.gray.post_mitigation_fps, 0.0);
}

TEST(GrayLadder, DvfsPolicyBoostsTheStragglersIsland) {
  const RunResult r = run_walkthrough(
      shared_scene(), shared_trace(),
      slow_core_config(GrayPolicy::Dvfs, 8.0, 0.3));
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  ASSERT_GE(r.gray.flags_raised, 1);
  EXPECT_GE(r.gray.dvfs_boosts, 1);
  EXPECT_EQ(r.gray.migrations, 0);  // the ceiling stops below migration
  EXPECT_EQ(r.gray.rebalances, 0);
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  expect_ledger_balances(r.gray);
  EXPECT_EQ(r.gray.frames_shed, 0u);
}

TEST(GrayLadder, MigratePolicyDrainsToASpareWithoutReplay) {
  const RunResult r = run_walkthrough(
      shared_scene(), shared_trace(),
      slow_core_config(GrayPolicy::Migrate, 8.0, 0.3));
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_GE(r.gray.dvfs_boosts, 1);  // rung 1 fires before rung 2
  ASSERT_GE(r.gray.migrations, 1);
  EXPECT_GE(r.recovery.spares_used, 1);
  // The straggler is alive: in-flight strips *drain* through the rebuilt
  // channels, they are not checkpoint replays after a death.
  EXPECT_EQ(r.recovery.frames_replayed, 0u);
  EXPECT_EQ(r.recovery.failures_detected, 0u);
  bool saw_migrate = false;
  for (const GrayActionRecord& a : r.gray.actions) {
    if (a.action == "migrate") {
      saw_migrate = true;
      EXPECT_GE(a.migrated_to, 0);
    }
  }
  EXPECT_TRUE(saw_migrate);
  // Mitigation never loses a frame.
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  expect_ledger_balances(r.gray);
  EXPECT_EQ(r.gray.frames_shed, 0u);
}

TEST(GrayLadder, RebalanceKicksInWhenNoSpareExists) {
  RunConfig cfg = slow_core_config(GrayPolicy::Rebalance, 8.0, 0.3);
  cfg.recovery.max_spares = 0;  // starve rung 2 so the ladder reaches 3
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_GE(r.gray.dvfs_boosts, 1);
  EXPECT_EQ(r.gray.migrations, 0);
  EXPECT_GE(r.gray.rebalances, 1);
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  expect_ledger_balances(r.gray);
  EXPECT_EQ(r.gray.frames_shed, 0u);
}

// --------------------------------------------------------- determinism

TEST(GrayDeterminism, IdenticalAcrossRunsAndSimJobs) {
  RunConfig cfg = slow_core_config(GrayPolicy::Rebalance, 8.0, 0.3);
  const RunResult a = run_walkthrough(shared_scene(), shared_trace(), cfg);
  cfg.sim_jobs = 4;
  const RunResult b = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(a.fault.failed) << a.fault.failure;
  expect_same_frames(a, b);
  EXPECT_EQ(a.gray.flags_raised, b.gray.flags_raised);
  EXPECT_EQ(a.gray.dvfs_boosts, b.gray.dvfs_boosts);
  EXPECT_EQ(a.gray.migrations, b.gray.migrations);
  EXPECT_EQ(a.gray.rebalances, b.gray.rebalances);
  EXPECT_EQ(a.gray.frames_drained, b.gray.frames_drained);
  ASSERT_EQ(a.gray.actions.size(), b.gray.actions.size());
  for (std::size_t i = 0; i < a.gray.actions.size(); ++i) {
    EXPECT_EQ(a.gray.actions[i].action, b.gray.actions[i].action);
    EXPECT_EQ(a.gray.actions[i].core, b.gray.actions[i].core);
    EXPECT_DOUBLE_EQ(a.gray.actions[i].flagged_at_ms,
                     b.gray.actions[i].flagged_at_ms);
    EXPECT_DOUBLE_EQ(a.gray.actions[i].evidence.norm,
                     b.gray.actions[i].evidence.norm);
  }
  EXPECT_DOUBLE_EQ(a.gray.post_mitigation_fps, b.gray.post_mitigation_fps);
}

// ------------------------------------------------- slow-then-dead merge

TEST(GrayEscalation, SlowThenDeadIsOneIncident) {
  // The victim turns slow, gets flagged, then goes silent: the fail-stop
  // verdict *escalates* the open gray incident instead of opening a
  // second overlapping one, so exactly one FailureRecord exists and the
  // re-sent frames are counted once (as recovery replays).
  RunConfig cfg = gray_config(GrayPolicy::Off);
  cfg.fault.seed = 11;
  const CoreId victim = clean_run().placement.pipeline_cores[1][2];
  cfg.fault.slow_cores.push_back(
      SlowCore{victim, 8.0, mid_run_instant(0.3)});
  // The 8x slowdown stretches the walkthrough to roughly twice the clean
  // length, so 1.4x of the *clean* run is mid-stream here — late enough
  // that the detector has flagged the straggler, early enough that frames
  // are still in flight when it goes silent.
  cfg.fault.core_failures.push_back({victim, mid_run_instant(1.4)});
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  ASSERT_GE(r.gray.flags_raised, 1);
  ASSERT_EQ(r.recovery.failures.size(), 1u);
  const FailureRecord& rec = r.recovery.failures[0];
  EXPECT_EQ(rec.core, victim);
  EXPECT_TRUE(rec.gray_escalated);
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(r.gray.escalations, 1);
  bool saw_escalation = false;
  for (const GrayActionRecord& a : r.gray.actions) {
    if (a.action == "escalate-fail-stop") saw_escalation = true;
  }
  EXPECT_TRUE(saw_escalation);
  // One coherent incident: the drain counter stays out of the replay
  // books and vice versa.
  EXPECT_EQ(r.gray.frames_drained, 0);
  EXPECT_EQ(r.recovery.failures_detected, 1u);
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
}

// ------------------------------------------------------------ chaos mix

TEST(GrayChaos, SlowCorePlusCoreFailPlusBurstLossConverges) {
  const auto& cores = clean_run().placement.pipeline_cores;
  RunConfig cfg = gray_config(GrayPolicy::Rebalance);
  cfg.fault.seed = 17;
  cfg.fault.slow_cores.push_back(
      SlowCore{cores[1][2], 6.0, mid_run_instant(0.2)});
  cfg.fault.core_failures.push_back({cores[0][3], mid_run_instant(0.45)});
  cfg.fault.rcce_drop_rate = 0.03;
  cfg.fault.burst_enter_rate = 0.05;
  cfg.fault.burst_exit_rate = 0.5;
  cfg.fault.burst_loss_rate = 0.8;
  cfg.rcce.retry.max_attempts = 16;
  cfg.rcce.retry.timeout = SimTime::ms(2);

  const RunResult a = run_walkthrough(shared_scene(), shared_trace(), cfg);
  const RunResult b = run_walkthrough(shared_scene(), shared_trace(), cfg);
  // The cocktail is fully seeded: same outcome twice.
  EXPECT_EQ(a.fault.failed, b.fault.failed);
  EXPECT_EQ(a.fault.fingerprint, b.fault.fingerprint);
  expect_same_frames(a, b);
  EXPECT_EQ(a.gray.flags_raised, b.gray.flags_raised);
  EXPECT_EQ(a.gray.escalations, b.gray.escalations);

  // And the outcome is full convergence: the fail-stop remaps, the
  // straggler is mitigated, retries absorb the bursts, no frame is lost.
  ASSERT_FALSE(a.fault.failed) << a.fault.failure;
  EXPECT_EQ(a.recovery.failures_recovered, 1u);
  EXPECT_EQ(a.recovery.frames_lost, 0u);
  EXPECT_EQ(a.frame_done_ms.size(), 8u);
  expect_ledger_balances(a.gray);
  EXPECT_EQ(a.gray.frames_shed, 0u);
}

// -------------------------------------------------- weighted strip split

TEST(DivideRowsWeighted, EqualWeightsReproduceDivideRows) {
  for (const int height : {7, 80, 400, 401}) {
    for (int k = 1; k <= 7; ++k) {
      const std::vector<double> w(static_cast<std::size_t>(k), 1.0);
      EXPECT_EQ(divide_rows_weighted(height, w), divide_rows(height, k))
          << "height=" << height << " k=" << k;
    }
  }
}

TEST(DivideRowsWeighted, WeightsShiftRowsButCoverEverything) {
  const std::vector<double> w = {1.0, 0.25, 1.0};
  const auto strips = divide_rows_weighted(90, w);
  ASSERT_EQ(strips.size(), 3u);
  int total = 0, y = 0;
  for (const StripRange& s : strips) {
    EXPECT_EQ(s.y0, y);  // contiguous, in order
    EXPECT_GE(s.rows, 1);
    y += s.rows;
    total += s.rows;
  }
  EXPECT_EQ(total, 90);
  // The down-weighted middle strip is the thin one.
  EXPECT_LT(strips[1].rows, strips[0].rows);
  EXPECT_LT(strips[1].rows, strips[2].rows);
}

TEST(DivideRowsWeighted, TinyWeightStillGetsARow) {
  const auto strips = divide_rows_weighted(10, {1.0, 1e-6, 1.0});
  ASSERT_EQ(strips.size(), 3u);
  EXPECT_EQ(strips[1].rows, 1);
  EXPECT_EQ(strips[0].rows + strips[1].rows + strips[2].rows, 10);
}

}  // namespace
}  // namespace sccpipe
