// The paper's headline claims as a regression suite. These tests run the
// full model on a reduced walkthrough (120 frames of the paper's scene at
// 200x200) and assert the *shapes* the reproduction stands on — if a
// calibration or model change breaks one of the paper's findings, this
// file fails before the bench harnesses ever run.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sccpipe/core/walkthrough.hpp"

namespace sccpipe {
namespace {

class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityParams city;
    city.blocks_x = 10;
    city.blocks_z = 10;
    scene_ = new SceneBundle(city, CameraConfig{}, 200, 120);
    trace_ = new WorkloadTrace(WorkloadTrace::build(*scene_, 7));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete scene_;
  }

  static double seconds(Scenario s, int k,
                        PlatformKind p = PlatformKind::Scc) {
    RunConfig cfg;
    cfg.scenario = s;
    cfg.pipelines = k;
    cfg.platform = p;
    return run_walkthrough(*scene_, *trace_, cfg).walkthrough.to_sec();
  }

  static SceneBundle* scene_;
  static WorkloadTrace* trace_;
};

SceneBundle* PaperClaims::scene_ = nullptr;
WorkloadTrace* PaperClaims::trace_ = nullptr;

TEST_F(PaperClaims, BlurIsTheMostExpensiveStageOnOneCore) {
  // §IV / Fig. 8.
  const SingleCoreBreakdown b =
      run_single_core(*scene_, *trace_, RunConfig{});
  const SimTime blur = b.stage_time(StageKind::Blur);
  for (const auto& [kind, t] : b.per_stage) {
    if (kind == StageKind::Blur) continue;
    EXPECT_GT(blur, t) << stage_name(kind);
  }
}

TEST_F(PaperClaims, SingleRendererSaturates) {
  // Fig. 9: "this configuration does not scale well due to the rendering
  // bottleneck" — k=2 is a big step, k=3..7 changes little.
  const double t1 = seconds(Scenario::SingleRenderer, 1);
  const double t2 = seconds(Scenario::SingleRenderer, 2);
  const double t3 = seconds(Scenario::SingleRenderer, 3);
  const double t7 = seconds(Scenario::SingleRenderer, 7);
  // At the paper's 400x400 the k=1->2 step is ~2x; at this validation
  // resolution the blur bottleneck is relatively smaller, so the bound is
  // looser but the saturation shape is the same.
  EXPECT_LT(t2, 0.75 * t1);
  EXPECT_GT(t7, 0.8 * t3);  // saturated: little further gain
}

TEST_F(PaperClaims, RendererPerPipelineKeepsScaling) {
  // Fig. 10: "The system scales better using this configuration."
  const double n3 = seconds(Scenario::RendererPerPipeline, 3);
  const double n7 = seconds(Scenario::RendererPerPipeline, 7);
  const double s7 = seconds(Scenario::SingleRenderer, 7);
  EXPECT_LT(n7, 0.92 * n3);  // still improving past k=3
  EXPECT_LT(n7, 0.75 * s7);  // clearly ahead of the single renderer
}

TEST_F(PaperClaims, HeterogeneousConfigurationWinsAndFlattens) {
  // Fig. 11 / Table I: MCPC <= n-rend for k >= 3; flat beyond ~4.
  for (const int k : {3, 5, 7}) {
    EXPECT_LE(seconds(Scenario::HostRenderer, k),
              1.03 * seconds(Scenario::RendererPerPipeline, k))
        << "k=" << k;
  }
  const double m4 = seconds(Scenario::HostRenderer, 4);
  const double m7 = seconds(Scenario::HostRenderer, 7);
  EXPECT_NEAR(m7 / m4, 1.0, 0.10);  // the plateau
}

TEST_F(PaperClaims, ArrangementsAreEquivalent) {
  // §VI-A: "the different pipeline arrangements on the SCC have no
  // significant influence" — across all three scenarios.
  for (const Scenario s :
       {Scenario::SingleRenderer, Scenario::RendererPerPipeline,
        Scenario::HostRenderer}) {
    double t[3];
    int i = 0;
    for (const Arrangement a : {Arrangement::Unordered, Arrangement::Ordered,
                                Arrangement::Flipped}) {
      RunConfig cfg;
      cfg.scenario = s;
      cfg.pipelines = 5;
      cfg.arrangement = a;
      t[i++] = run_walkthrough(*scene_, *trace_, cfg).walkthrough.to_sec();
    }
    const double lo = std::min({t[0], t[1], t[2]});
    const double hi = std::max({t[0], t[1], t[2]});
    EXPECT_LT((hi - lo) / lo, 0.09) << scenario_name(s);
  }
}

TEST_F(PaperClaims, ClusterBeatsSccSeveralTimesOver) {
  // Fig. 13: the HPC node with modern cores is far faster.
  EXPECT_LT(seconds(Scenario::RendererPerPipeline, 7, PlatformKind::Cluster),
            0.2 * seconds(Scenario::RendererPerPipeline, 7));
}

TEST_F(PaperClaims, PowerGrowsLinearlyWithPipelines) {
  // Fig. 14: least-squares slope per added pipeline is stable.
  std::vector<double> watts;
  for (int k = 1; k <= 7; ++k) {
    RunConfig cfg;
    cfg.scenario = Scenario::HostRenderer;
    cfg.pipelines = k;
    watts.push_back(
        run_walkthrough(*scene_, *trace_, cfg).mean_chip_watts);
  }
  // Successive increments all close to the mean increment.
  const double mean_step = (watts.back() - watts.front()) / 6.0;
  EXPECT_GT(mean_step, 1.0);  // five extra spinning cores cost real watts
  for (std::size_t i = 1; i < watts.size(); ++i) {
    EXPECT_NEAR(watts[i] - watts[i - 1], mean_step, 0.25 * mean_step);
  }
}

TEST_F(PaperClaims, HybridWinsOnEnergy) {
  // §VI-B: hybrid MCPC+SCC beats the all-SCC best on joules.
  RunConfig hybrid;
  hybrid.scenario = Scenario::HostRenderer;
  hybrid.pipelines = 5;
  RunConfig allscc;
  allscc.scenario = Scenario::RendererPerPipeline;
  allscc.pipelines = 7;
  const RunResult h = run_walkthrough(*scene_, *trace_, hybrid);
  const RunResult s = run_walkthrough(*scene_, *trace_, allscc);
  EXPECT_LT(h.chip_energy_joules + h.host_extra_energy_joules,
            s.chip_energy_joules);
}

TEST_F(PaperClaims, BlurDvfsBuysRealButSublinearSpeed) {
  // Fig. 16: 1.5x clock -> ~26-35% faster, NOT 50%.
  RunConfig base;
  base.scenario = Scenario::HostRenderer;
  base.pipelines = 1;
  base.isolate_blur_tile = true;
  RunConfig fast = base;
  fast.blur_mhz = 800;
  const double t0 = run_walkthrough(*scene_, *trace_, base).walkthrough.to_sec();
  const double t1 = run_walkthrough(*scene_, *trace_, fast).walkthrough.to_sec();
  const double gain = 1.0 - t1 / t0;
  EXPECT_GT(gain, 0.18);
  EXPECT_LT(gain, 0.37);
}

TEST_F(PaperClaims, TailDownclockRecoversPowerAtSameSpeed) {
  // Fig. 16/17: the 400 MHz tail keeps the time, returns the watts.
  RunConfig fast;
  fast.scenario = Scenario::HostRenderer;
  fast.pipelines = 1;
  fast.isolate_blur_tile = true;
  fast.blur_mhz = 800;
  RunConfig mixed = fast;
  mixed.tail_mhz = 400;
  const RunResult a = run_walkthrough(*scene_, *trace_, fast);
  const RunResult b = run_walkthrough(*scene_, *trace_, mixed);
  EXPECT_NEAR(b.walkthrough.to_sec() / a.walkthrough.to_sec(), 1.0, 0.05);
  EXPECT_LT(b.mean_chip_watts, a.mean_chip_watts - 3.0);
}

TEST_F(PaperClaims, IdleTimesMatchTheFig15Pattern) {
  // Fig. 15 at 7 pipelines: blur waits least among the filters, scratch
  // the most; quartiles hug the medians.
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 7;
  const RunResult r = run_walkthrough(*scene_, *trace_, cfg);
  const StageReport* blur = r.stage(StageKind::Blur, 3);
  const StageReport* scratch = r.stage(StageKind::Scratch, 3);
  ASSERT_NE(blur, nullptr);
  ASSERT_NE(scratch, nullptr);
  EXPECT_LT(blur->wait_ms.median, scratch->wait_ms.median);
  for (const StageKind k : {StageKind::Sepia, StageKind::Flicker,
                            StageKind::Swap}) {
    const StageReport* rep = r.stage(k, 3);
    EXPECT_GT(rep->wait_ms.median, blur->wait_ms.median) << stage_name(k);
    // Tight quartiles (paper: "the quartiles are very close to the median").
    EXPECT_LT(rep->wait_ms.q3 - rep->wait_ms.q1,
              0.25 * rep->wait_ms.median + 1.0);
  }
}

}  // namespace
}  // namespace sccpipe
