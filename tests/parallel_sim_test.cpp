// Determinism-equivalence suite for the mesh-partitioned parallel engine
// (sim/parallel_sim.hpp). The contract under test: every observable result
// — engine dispatch order, traffic digests, full walkthrough RunResults —
// is bit-identical at every worker count, including under fault injection,
// recovery remapping, and the ARQ/overload transport.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/noc/partition.hpp"
#include "sccpipe/noc/traffic.hpp"
#include "sccpipe/sim/parallel_sim.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

using sccpipe::literals::operator""_us;

// ------------------------------------------------------------ engine core

TEST(ParallelEngine, SingleRegionMatchesPlainSimulator) {
  // The same little event program on both engines, logging dispatch order.
  auto program = [](auto schedule) {
    schedule(SimTime::us(3), 3);
    schedule(SimTime::us(1), 1);
    schedule(SimTime::us(2), 2);
    schedule(SimTime::us(1), 10);  // equal time: scheduling order wins
  };
  std::vector<int> serial_log;
  Simulator sim;
  program([&](SimTime when, int id) {
    sim.schedule_at(when, [&serial_log, id] { serial_log.push_back(id); });
  });
  sim.run();

  std::vector<int> engine_log;
  ParallelSimulator eng{1, 1, SimTime::us(1)};
  program([&](SimTime when, int id) {
    eng.region(0).schedule_at(
        when, [&engine_log, id] { engine_log.push_back(id); });
  });
  const SimTime end = eng.run();
  EXPECT_EQ(serial_log, engine_log);
  EXPECT_EQ(end, sim.now());
  EXPECT_EQ(eng.dispatched(), sim.dispatched());
  EXPECT_EQ(eng.stats().windows, 1u);  // no peers => one full-drain window
}

TEST(ParallelEngine, JobsAreClampedToRegions) {
  ParallelSimulator eng{2, 16, SimTime::us(1)};
  EXPECT_EQ(eng.regions(), 2);
  EXPECT_EQ(eng.jobs(), 2);
}

TEST(ParallelEngine, RejectsNonPositiveLookahead) {
  EXPECT_THROW(ParallelSimulator(2, 2, SimTime::zero()), CheckError);
}

TEST(ParallelEngine, CrossRegionPostBelowLookaheadThrows) {
  ParallelSimulator eng{2, 1, SimTime::us(5)};
  eng.region(0).schedule_at(SimTime::us(1), [&] {
    // now = 1us on region 0; region 1 is closer than the lookahead allows.
    eng.post(1, SimTime::us(3), [] {});
  });
  EXPECT_THROW(eng.run(), CheckError);
}

TEST(ParallelEngine, EnvironmentPostsMergeBeforeTheFirstWindow) {
  ParallelSimulator eng{3, 1, SimTime::us(1)};
  std::vector<int> log;
  eng.post(2, SimTime::us(2), [&] { log.push_back(2); });
  eng.post(0, SimTime::us(1), [&] { log.push_back(0); });
  EXPECT_EQ(eng.pending(), 2u);  // still in the environment lane
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{0, 2}));
  EXPECT_EQ(eng.pending(), 0u);
}

// Mailbox merge order must be (delivery time, source region, post order) —
// never thread completion order. Three source regions fire same-time
// events into region 0; the observed order must match at every job count.
std::vector<int> mailbox_order_at(int jobs) {
  ParallelSimulator eng{4, jobs, SimTime::us(1)};
  std::vector<int> log;
  for (int src = 1; src <= 3; ++src) {
    eng.region(src).schedule_at(SimTime::us(1), [&eng, &log, src] {
      // All three deliveries collide at t = 11us in region 0.
      eng.post(0, SimTime::us(11), [&log, src] { log.push_back(src); });
      eng.post(0, SimTime::us(11), [&log, src] { log.push_back(src + 10); });
    });
  }
  eng.run();
  return log;
}

TEST(ParallelEngine, MailboxMergeOrderIsDeterministicAcrossJobs) {
  const std::vector<int> expect{1, 11, 2, 12, 3, 13};
  EXPECT_EQ(mailbox_order_at(1), expect);
  EXPECT_EQ(mailbox_order_at(2), expect);
  EXPECT_EQ(mailbox_order_at(4), expect);
}

// Window-boundary metamorphic test: an event posted at *exactly*
// now + lookahead (the earliest legal cross-region delivery, right on the
// window edge) must land in the same window, at the same time, at every
// worker count.
struct EdgeObservation {
  std::uint64_t window = 0;
  std::int64_t at_ns = 0;
  friend bool operator==(const EdgeObservation&, const EdgeObservation&) =
      default;
};

EdgeObservation edge_observation_at(int jobs) {
  ParallelSimulator eng{2, jobs, SimTime::us(10)};
  EdgeObservation obs;
  // Region 1 keeps a tick chain alive so windows stay bounded (its queue
  // is never empty while the probe is in flight).
  for (int k = 1; k <= 6; ++k) {
    eng.region(1).schedule_at(SimTime::us(4 * k), [] {});
  }
  eng.region(0).schedule_at(SimTime::us(4), [&] {
    eng.post(1, SimTime::us(14), [&eng, &obs] {  // exactly now + lookahead
      obs.window = eng.current_window();
      obs.at_ns = eng.region(1).now().to_ns();
    });
  });
  eng.run();
  return obs;
}

TEST(ParallelEngine, WindowEdgeEventIsStableAcrossJobs) {
  const EdgeObservation serial = edge_observation_at(1);
  EXPECT_EQ(serial.at_ns, SimTime::us(14).to_ns());
  EXPECT_GT(serial.window, 0u);
  EXPECT_EQ(edge_observation_at(2), serial);
}

TEST(ParallelEngine, RunUntilStopsAtDeadlineAndResumes) {
  ParallelSimulator eng{2, 2, SimTime::us(1)};
  std::vector<int> log;
  eng.region(0).schedule_at(SimTime::us(1), [&] {
    log.push_back(1);
    eng.post(1, SimTime::us(30), [&log] { log.push_back(3); });
  });
  eng.region(1).schedule_at(SimTime::us(20), [&] { log.push_back(2); });

  eng.run_until(SimTime::us(20));  // events at exactly the deadline run
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.pending(), 1u);  // the cross-region probe is still due

  eng.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(ParallelEngine, StatsAreDeterministicAcrossJobsAndReruns) {
  TrafficConfig cfg;
  cfg.layout.width = 8;
  cfg.layout.height = 4;
  cfg.regions = 4;
  cfg.ticks = 24;
  const TrafficResult base = run_traffic_parallel(cfg);
  EXPECT_GT(base.engine.windows, 0u);
  EXPECT_GT(base.engine.cross_region_events, 0u);
  for (const int jobs : {1, 2, 4}) {
    TrafficConfig c = cfg;
    c.jobs = jobs;
    const TrafficResult r = run_traffic_parallel(c);
    EXPECT_EQ(r.engine.windows, base.engine.windows) << "jobs=" << jobs;
    EXPECT_EQ(r.engine.coalesced_windows, base.engine.coalesced_windows);
    EXPECT_EQ(r.engine.cross_region_events, base.engine.cross_region_events);
    EXPECT_EQ(r.engine.idle_region_windows, base.engine.idle_region_windows);
    EXPECT_EQ(r.engine.peak_mailbox, base.engine.peak_mailbox);
  }
}

TEST(ParallelEngine, AdaptiveLookaheadWidensDistantChannels) {
  ParallelSimulator eng{3, 1, SimTime::us(1)};
  EXPECT_EQ(eng.lookahead(0, 2), SimTime::us(1));  // defaults to the floor
  eng.set_lookahead(0, 2, SimTime::us(3));
  eng.set_lookahead(2, 0, SimTime::us(3));
  EXPECT_EQ(eng.lookahead(0, 2), SimTime::us(3));
  EXPECT_EQ(eng.lookahead(0, 1), SimTime::us(1));  // other channels keep it
  std::vector<int> log;
  eng.region(0).schedule_at(SimTime::us(1), [&] {
    eng.post(2, SimTime::us(4), [&log] { log.push_back(2); });
  });
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(ParallelEngine, PostBelowWidenedLookaheadThrows) {
  ParallelSimulator eng{3, 1, SimTime::us(1)};
  eng.set_lookahead(0, 2, SimTime::us(3));
  eng.region(0).schedule_at(SimTime::us(1), [&] {
    // +2us clears the scalar floor but not the widened 0->2 channel.
    eng.post(2, SimTime::us(3), [] {});
  });
  EXPECT_THROW(eng.run(), CheckError);
}

TEST(ParallelEngine, LookaheadMatrixRejectsBadEntries) {
  ParallelSimulator eng{3, 1, SimTime::us(2)};
  EXPECT_THROW(eng.set_lookahead(0, 1, SimTime::us(1)), CheckError);  // < floor
  EXPECT_THROW(eng.set_lookahead(1, 1, SimTime::us(2)), CheckError);  // src==dst
}

TEST(ParallelEngine, QuietSuperStepsCoalesceIntoOneWindow) {
  // Two regions running purely local event chains: no mailbox lane is ever
  // pending, so only the first super-step costs a real window — the rest
  // merge into it and are counted separately.
  ParallelSimulator eng{2, 1, SimTime::us(1)};
  for (int r = 0; r < 2; ++r) {
    for (int t = 1; t <= 10; ++t) {
      eng.region(r).schedule_at(SimTime::us(t), [] {});
    }
  }
  eng.run();
  EXPECT_EQ(eng.dispatched(), 20u);
  EXPECT_EQ(eng.stats().cross_region_events, 0u);
  EXPECT_EQ(eng.stats().windows, 1u);
  EXPECT_GT(eng.stats().coalesced_windows, 0u);
}

// -------------------------------------------------------- partition map

TEST(MeshPartition, ColumnBandsCoverTheMeshContiguously) {
  const MeshPartition part{MeshLayout{}, 4};
  EXPECT_EQ(part.regions(), 4);
  int last = 0;
  int total = 0;
  for (int x = 0; x < part.layout().width; ++x) {
    const int r = part.region_of_column(x);
    EXPECT_GE(r, last);          // monotone
    EXPECT_LE(r - last, 1);      // contiguous
    last = r;
  }
  for (int r = 0; r < part.regions(); ++r) total += part.tiles_in_region(r);
  EXPECT_EQ(total, 24);
  EXPECT_EQ(part.host_region(), 0);
  EXPECT_EQ(part.min_boundary_hops(), 1);
  EXPECT_EQ(part.lookahead(SimTime::ns(5)), SimTime::ns(5));
}

TEST(MeshPartition, RegionCountIsClampedToColumns) {
  const MeshPartition part{MeshLayout{}, 64};
  EXPECT_EQ(part.regions(), 6);  // one band per column at most
  const MeshPartition one{MeshLayout{}, 1};
  EXPECT_EQ(one.region_of_core(47), 0);
}

TEST(MeshPartition, BandDistanceIsTheColumnGap) {
  const MeshPartition part{MeshLayout{}, 3};  // 6 columns -> bands of 2
  EXPECT_EQ(part.band_distance(0, 0), 0);
  EXPECT_EQ(part.band_distance(0, 1), 1);
  EXPECT_EQ(part.band_distance(1, 0), 1);
  EXPECT_EQ(part.band_distance(0, 2), 3);
  EXPECT_EQ(part.band_distance(2, 0), 3);
  // Adjacent bands sit at the scalar floor; distant bands are wider.
  const SimTime hop = SimTime::ns(4);
  EXPECT_EQ(part.lookahead(hop, 0, 1), part.lookahead(hop));
  EXPECT_EQ(part.lookahead(hop, 0, 2), SimTime::ns(12));
}

// ---------------------------------------------------- traffic equivalence

void expect_traffic_equal(const TrafficResult& a, const TrafficResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.digest, b.digest) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.end_time_ns, b.end_time_ns) << label;
}

TEST(TrafficEquivalence, SccMeshSerialVsParallelJobs1248) {
  TrafficConfig cfg;  // the 6x4 SCC mesh
  cfg.regions = 4;
  const TrafficResult serial = run_traffic_serial(cfg);
  EXPECT_GT(serial.events, 0u);
  for (const int jobs : {1, 2, 4, 8}) {
    TrafficConfig c = cfg;
    c.jobs = jobs;
    expect_traffic_equal(serial, run_traffic_parallel(c),
                         "jobs=" + std::to_string(jobs));
  }
}

TEST(TrafficEquivalence, BigMeshSerialVsParallel) {
  TrafficConfig cfg;
  cfg.layout.width = 24;
  cfg.layout.height = 16;
  cfg.regions = 6;
  cfg.jobs = 4;
  cfg.ticks = 32;
  expect_traffic_equal(run_traffic_serial(cfg), run_traffic_parallel(cfg),
                       "24x16");
}

TEST(TrafficEquivalence, RegionCountDoesNotChangeTheResult) {
  TrafficConfig cfg;
  cfg.layout.width = 12;
  cfg.layout.height = 6;
  cfg.ticks = 24;
  cfg.jobs = 4;
  const TrafficResult serial = run_traffic_serial(cfg);
  for (const int regions : {1, 2, 3, 6}) {
    TrafficConfig c = cfg;
    c.regions = regions;
    expect_traffic_equal(serial, run_traffic_parallel(c),
                         "regions=" + std::to_string(regions));
  }
}

// ------------------------------------------------ walkthrough equivalence

const SceneBundle& shared_scene() {
  static SceneBundle* scene = [] {
    CityParams city;
    city.blocks_x = 4;
    city.blocks_z = 4;
    return new SceneBundle(city, CameraConfig{}, 80, 8);
  }();
  return *scene;
}

const WorkloadTrace& shared_trace() {
  static WorkloadTrace* trace =
      new WorkloadTrace(WorkloadTrace::build(shared_scene(), 4));
  return *trace;
}

// Field-by-field byte-identity of everything a run reports (the
// parallel_sim block is engine metadata and legitimately differs).
void expect_run_identical(const RunResult& a, const RunResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.walkthrough, b.walkthrough) << label;
  EXPECT_EQ(a.events_dispatched, b.events_dispatched) << label;
  ASSERT_EQ(a.frame_done_ms.size(), b.frame_done_ms.size()) << label;
  for (std::size_t i = 0; i < a.frame_done_ms.size(); ++i) {
    EXPECT_EQ(a.frame_done_ms[i], b.frame_done_ms[i]) << label << " #" << i;
  }
  ASSERT_EQ(a.stages.size(), b.stages.size()) << label;
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].kind, b.stages[i].kind) << label;
    EXPECT_EQ(a.stages[i].core, b.stages[i].core) << label;
    EXPECT_EQ(a.stages[i].busy_ms, b.stages[i].busy_ms) << label;
    EXPECT_EQ(a.stages[i].wait_ms.median, b.stages[i].wait_ms.median)
        << label;
    EXPECT_EQ(a.stages[i].frames, b.stages[i].frames) << label;
  }
  EXPECT_EQ(a.fabric.mesh_total_bytes, b.fabric.mesh_total_bytes) << label;
  EXPECT_EQ(a.fabric.mesh_max_link_bytes, b.fabric.mesh_max_link_bytes)
      << label;
  EXPECT_EQ(a.chip_energy_joules, b.chip_energy_joules) << label;
  EXPECT_EQ(a.mean_chip_watts, b.mean_chip_watts) << label;
  EXPECT_EQ(a.host_busy_sec, b.host_busy_sec) << label;
  // Fault layer: schedule + decision trace fingerprint covers everything.
  EXPECT_EQ(a.fault.enabled, b.fault.enabled) << label;
  EXPECT_EQ(a.fault.fingerprint, b.fault.fingerprint) << label;
  EXPECT_EQ(a.fault.failed, b.fault.failed) << label;
  EXPECT_EQ(a.fault.frames_completed, b.fault.frames_completed) << label;
  // Recovery and transport outcomes.
  EXPECT_EQ(a.recovery.failures_detected, b.recovery.failures_detected)
      << label;
  EXPECT_EQ(a.recovery.frames_replayed, b.recovery.frames_replayed) << label;
  EXPECT_EQ(a.recovery.frames_lost, b.recovery.frames_lost) << label;
  EXPECT_EQ(a.recovery.max_detection_latency_ms,
            b.recovery.max_detection_latency_ms)
      << label;
  EXPECT_EQ(a.transport.enabled, b.transport.enabled) << label;
  EXPECT_EQ(a.transport.first_sends, b.transport.first_sends) << label;
  EXPECT_EQ(a.transport.retransmissions, b.transport.retransmissions)
      << label;
  EXPECT_EQ(a.transport.frames_delivered, b.transport.frames_delivered)
      << label;
  EXPECT_EQ(a.transport.goodput_fps, b.transport.goodput_fps) << label;
  EXPECT_EQ(a.transport.p99_latency_ms, b.transport.p99_latency_ms) << label;
}

void expect_sim_jobs_invariant(RunConfig cfg) {
  cfg.sim_jobs = 1;
  const RunResult serial = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_FALSE(serial.parallel_sim.enabled);
  for (const int jobs : {2, 4, 8}) {
    RunConfig c = cfg;
    c.sim_jobs = jobs;
    const RunResult r = run_walkthrough(shared_scene(), shared_trace(), c);
    expect_run_identical(serial, r, "sim_jobs=" + std::to_string(jobs));
    EXPECT_TRUE(r.parallel_sim.enabled);
    EXPECT_EQ(r.parallel_sim.sim_jobs, std::min(jobs, r.parallel_sim.regions));
    // The walkthrough is region-native: chip work executes at the region
    // owning its tile, so a partitioned run must actually cross regions
    // and drain in many barrier windows — the byte-identity above is only
    // meaningful if the engine genuinely ran concurrent regions. At two
    // regions a small placement can legitimately fit inside one band
    // (zero crossings is then correct, and cheap); from four regions up
    // the stage chain always straddles a boundary.
    if (jobs >= 4) {
      EXPECT_GT(r.parallel_sim.windows, 1u) << "jobs=" << jobs;
      EXPECT_GT(r.parallel_sim.cross_region_events, 0u) << "jobs=" << jobs;
    }
  }
}

TEST(WalkthroughEquivalence, HostRendererByteIdenticalAcrossSimJobs) {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  expect_sim_jobs_invariant(cfg);
}

TEST(WalkthroughEquivalence, Fig10NRenderersByteIdenticalAcrossSimJobs) {
  RunConfig cfg;
  cfg.scenario = Scenario::RendererPerPipeline;
  cfg.arrangement = Arrangement::Flipped;
  cfg.pipelines = 4;
  expect_sim_jobs_invariant(cfg);
}

TEST(WalkthroughEquivalence, ChaosFaultPlanAndCoreFailByteIdentical) {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  ASSERT_TRUE(cfg.fault.parse("rcce-drop=0.03;rcce-delay=0.03;seed=7").ok());
  ASSERT_TRUE(cfg.fault.parse("core-fail=5@40").ok());
  cfg.rcce.retry.max_attempts = 16;
  cfg.rcce.retry.timeout = SimTime::ms(2);
  expect_sim_jobs_invariant(cfg);
}

TEST(WalkthroughEquivalence, ChaosBurstLossOverloadByteIdentical) {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  ASSERT_TRUE(
      cfg.fault.parse("host-drop=0.02;burst-loss=0.05:0.3;seed=11").ok());
  cfg.rcce.retry.max_attempts = 16;
  cfg.rcce.retry.timeout = SimTime::ms(2);
  cfg.overload.offered_fps = 400.0;
  cfg.overload.window = 4;
  cfg.overload.queue_depth = 4;
  expect_sim_jobs_invariant(cfg);
}

// ---------------------------------------------------------- stall watchdog

// A zero-delay self-reschedule cycle pins a region's clock: next_event_time
// never passes the barrier cap, so without the watchdog run() spins forever.
// With a shrunken event budget the engine must stop with a typed
// DeadlineExceeded and a populated flight recorder instead of hanging.
TEST(ParallelEngineWatchdog, ZeroDelayCycleTripsTypedDeadline) {
  ParallelSimulator eng{2, 2, SimTime::us(1)};
  WatchdogConfig wd;
  wd.max_events_per_timestamp = 1000;
  eng.set_watchdog(wd);
  std::function<void()> spin;
  std::uint64_t spins = 0;
  spin = [&] {
    ++spins;
    eng.region(0).schedule_at(eng.region(0).now(), [&] { spin(); });
  };
  eng.region(0).schedule_at(SimTime::us(2), [&] { spin(); });
  eng.region(1).schedule_at(SimTime::us(50), [] {});
  eng.run();

  const Status st = eng.watchdog_status();
  EXPECT_EQ(st.code(), StatusCode::DeadlineExceeded) << st.to_string();
  EXPECT_NE(st.message().find("region 0"), std::string::npos) << st.message();
  // The budget bounds the wasted work: the cycle was cut off near the limit.
  EXPECT_GE(spins, wd.max_events_per_timestamp);
  EXPECT_LE(spins, wd.max_events_per_timestamp + 2);
  // Flight recorder: non-empty, bounded, and renderable.
  EXPECT_FALSE(eng.flight_recorder().empty());
  EXPECT_LE(eng.flight_recorder().size(), wd.flight_recorder_depth);
  const std::string dump = eng.flight_recorder_dump();
  EXPECT_NE(dump.find("window"), std::string::npos);
  // Sticky: further run() calls refuse to dispatch the poisoned region.
  const std::uint64_t dispatched = eng.dispatched();
  eng.run();
  EXPECT_EQ(eng.dispatched(), dispatched);
  EXPECT_EQ(eng.watchdog_status().code(), StatusCode::DeadlineExceeded);
}

TEST(ParallelEngineWatchdog, HealthyRunReportsOkAndRecordsWindows) {
  ParallelSimulator eng{2, 2, SimTime::us(1)};
  WatchdogConfig wd;
  wd.max_events_per_timestamp = 100;
  wd.flight_recorder_depth = 4;
  eng.set_watchdog(wd);
  int fired = 0;
  for (int i = 1; i <= 20; ++i) {
    eng.region(i % 2).schedule_at(SimTime::us(i), [&] { ++fired; });
  }
  eng.run();
  EXPECT_EQ(fired, 20);
  EXPECT_TRUE(eng.watchdog_status().ok());
  EXPECT_FALSE(eng.flight_recorder().empty());
  EXPECT_LE(eng.flight_recorder().size(), wd.flight_recorder_depth);
}

// Same-timestamp bursts *below* the budget are legitimate (barrier windows
// routinely batch co-timed events) and must not trip the detector.
TEST(ParallelEngineWatchdog, CoTimedBurstBelowBudgetIsNotAStall) {
  ParallelSimulator eng{2, 2, SimTime::us(1)};
  WatchdogConfig wd;
  wd.max_events_per_timestamp = 64;
  eng.set_watchdog(wd);
  int fired = 0;
  for (int i = 0; i < 60; ++i) {
    eng.region(0).schedule_at(SimTime::us(3), [&] { ++fired; });
  }
  eng.run();
  EXPECT_EQ(fired, 60);
  EXPECT_TRUE(eng.watchdog_status().ok());
}

// The watchdog verdict is part of the determinism contract: the same
// poisoned program trips at the same point at any worker count.
TEST(ParallelEngineWatchdog, VerdictIsWorkerCountInvariant) {
  auto stall_point = [](int jobs) {
    ParallelSimulator eng{4, jobs, SimTime::us(1)};
    WatchdogConfig wd;
    wd.max_events_per_timestamp = 500;
    eng.set_watchdog(wd);
    std::function<void()> spin;
    spin = [&] {
      eng.region(2).schedule_at(eng.region(2).now(), [&] { spin(); });
    };
    eng.region(2).schedule_at(SimTime::us(7), [&] { spin(); });
    for (int r = 0; r < 4; ++r) {
      eng.region(r).schedule_at(SimTime::us(40), [] {});
    }
    eng.run();
    EXPECT_EQ(eng.watchdog_status().code(), StatusCode::DeadlineExceeded);
    return std::make_pair(eng.dispatched(), eng.watchdog_status().message());
  };
  const auto serial = stall_point(1);
  EXPECT_EQ(stall_point(2), serial);
  EXPECT_EQ(stall_point(4), serial);
}

TEST(WalkthroughEquivalence, MoreRegionsThanOccupiedTilesDegradesGracefully) {
  // Metamorphic: a one-pipeline walkthrough occupies a handful of tiles,
  // yet we ask for far more bands than the mesh has columns. Regions that
  // own no stage tiles must not change the outcome — the run stays
  // bit-identical to serial — and they generate no work of their own; they
  // only show up as idle regions in the window accounting.
  RunConfig cfg;
  cfg.scenario = Scenario::SingleRenderer;
  cfg.pipelines = 1;
  cfg.sim_jobs = 1;
  const RunResult serial = run_walkthrough(shared_scene(), shared_trace(), cfg);
  RunConfig wide = cfg;
  wide.sim_jobs = 64;  // clamped to one band per column
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), wide);
  expect_run_identical(serial, r, "sim_jobs=64");
  EXPECT_EQ(r.parallel_sim.regions, 6);  // the SCC mesh is 6 columns wide
  EXPECT_GT(r.parallel_sim.windows, 1u);
  EXPECT_GT(r.parallel_sim.idle_region_windows, 0u);
}

TEST(WalkthroughEquivalence, RegionQueuesNeverAllocateInSteadyState) {
  // The engine derives each region's queue reservation from the
  // partition's occupied-tile count (region_size_hints in walkthrough.cpp)
  // instead of one global constant; a full walkthrough must therefore
  // never grow a region's event containers, at any worker count.
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  for (const int jobs : {1, 4, 8}) {
    RunConfig c = cfg;
    c.sim_jobs = jobs;
    const RunResult r = run_walkthrough(shared_scene(), shared_trace(), c);
    EXPECT_EQ(r.parallel_sim.region_allocs, 0u)
        << "jobs=" << jobs << " peak=" << r.parallel_sim.region_peak_events;
    EXPECT_GT(r.parallel_sim.region_peak_events, 0u) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace sccpipe
