#include <gtest/gtest.h>

#include <set>

#include "sccpipe/core/placement.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {
namespace {

struct PlacementFixture : ::testing::Test {
  MeshTopology topo;  // SCC 6x4

  PlacementRequest filters_only(int k) {
    PlacementRequest r;
    r.pipelines = k;
    r.stages_per_pipeline = 5;
    r.needs_producer = true;
    return r;
  }

  PlacementRequest with_renderers(int k) {
    PlacementRequest r;
    r.pipelines = k;
    r.stages_per_pipeline = 6;
    r.needs_producer = false;
    return r;
  }
};

TEST_F(PlacementFixture, AllArrangementsProduceDisjointCores) {
  for (const Arrangement a : {Arrangement::Unordered, Arrangement::Ordered,
                              Arrangement::Flipped}) {
    for (int k = 1; k <= 7; ++k) {
      const Placement p = make_placement(topo, a, filters_only(k));
      const auto cores = p.all_cores();  // throws internally on duplicates
      EXPECT_EQ(cores.size(), static_cast<std::size_t>(5 * k + 2))
          << arrangement_name(a) << " k=" << k;
      for (const CoreId c : cores) EXPECT_TRUE(topo.valid_core(c));
      EXPECT_GE(p.producer, 0);
      EXPECT_GE(p.transfer, 0);
    }
  }
}

TEST_F(PlacementFixture, RendererPerPipelineHasSixStages) {
  const Placement p =
      make_placement(topo, Arrangement::Ordered, with_renderers(7));
  EXPECT_EQ(p.pipeline_cores.size(), 7u);
  for (const auto& pl : p.pipeline_cores) EXPECT_EQ(pl.size(), 6u);
  EXPECT_EQ(p.producer, -1);
  EXPECT_EQ(p.all_cores().size(), 43u);  // 7*6 + transfer
}

TEST_F(PlacementFixture, UnorderedFollowsCoreIdOrder) {
  const Placement p =
      make_placement(topo, Arrangement::Unordered, filters_only(3));
  EXPECT_EQ(p.producer, 0);
  EXPECT_EQ(p.pipeline_cores[0], (std::vector<CoreId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(p.pipeline_cores[1], (std::vector<CoreId>{6, 7, 8, 9, 10}));
  EXPECT_EQ(p.transfer, 16);
}

TEST_F(PlacementFixture, OrderedPipelinesStayWithinOneRow) {
  const Placement p =
      make_placement(topo, Arrangement::Ordered, filters_only(4));
  for (const auto& pl : p.pipeline_cores) {
    const int row = topo.core_coord(pl.front()).y;
    for (const CoreId c : pl) {
      EXPECT_EQ(topo.core_coord(c).y, row);
    }
    // West-to-east order.
    for (std::size_t i = 1; i < pl.size(); ++i) {
      EXPECT_GE(topo.core_coord(pl[i]).x, topo.core_coord(pl[i - 1]).x);
    }
  }
}

TEST_F(PlacementFixture, FlippedReversesEverySecondPipeline) {
  const Placement p =
      make_placement(topo, Arrangement::Flipped, filters_only(4));
  // Even pipelines west->east, odd pipelines east->west.
  const auto& p0 = p.pipeline_cores[0];
  const auto& p1 = p.pipeline_cores[1];
  EXPECT_LT(topo.core_coord(p0.front()).x, topo.core_coord(p0.back()).x);
  EXPECT_GT(topo.core_coord(p1.front()).x, topo.core_coord(p1.back()).x);
}

TEST_F(PlacementFixture, FlippedAlternatesHeadMemoryControllers) {
  // The point of the flipped arrangement (§IV-A): the heavy head stages
  // land near both edge controllers instead of all on one side.
  const Placement p =
      make_placement(topo, Arrangement::Flipped, with_renderers(4));
  std::set<McId> head_mcs;
  for (const auto& pl : p.pipeline_cores) {
    head_mcs.insert(topo.home_mc(pl.front()));
  }
  EXPECT_GE(head_mcs.size(), 2u);
}

TEST_F(PlacementFixture, BlurIsolationGivesBlurAPrivateTile) {
  for (const Arrangement a : {Arrangement::Unordered, Arrangement::Ordered}) {
    PlacementRequest req = filters_only(1);
    req.isolate_blur_tile = true;
    const Placement p = make_placement(topo, a, req);
    const auto& pl = p.pipeline_cores[0];
    const CoreId blur = pl[pl.size() - 4];  // sepia, BLUR, scratch, ...
    const TileId blur_tile = topo.tile_of(blur);
    for (const CoreId c : p.all_cores()) {
      if (c == blur) continue;
      EXPECT_NE(topo.tile_of(c), blur_tile)
          << arrangement_name(a) << ": core " << c
          << " shares the blur tile";
    }
  }
}

TEST_F(PlacementFixture, TooManyPipelinesRejected) {
  EXPECT_THROW(make_placement(topo, Arrangement::Ordered, filters_only(9)),
               CheckError);
  EXPECT_THROW(
      make_placement(topo, Arrangement::Unordered, with_renderers(8)),
      CheckError);
}

TEST_F(PlacementFixture, MaximumConfigurationsFit) {
  // Paper maxima: 7 pipelines with renderers; 7 with a connect stage.
  EXPECT_NO_THROW(
      make_placement(topo, Arrangement::Flipped, with_renderers(7)));
  EXPECT_NO_THROW(
      make_placement(topo, Arrangement::Unordered, filters_only(8)));
}

TEST_F(PlacementFixture, ArrangementNames) {
  EXPECT_STREQ(arrangement_name(Arrangement::Unordered), "unordered");
  EXPECT_STREQ(arrangement_name(Arrangement::Ordered), "ordered");
  EXPECT_STREQ(arrangement_name(Arrangement::Flipped), "flipped");
}

}  // namespace
}  // namespace sccpipe
