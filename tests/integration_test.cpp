// Cross-module integration scenarios beyond the per-module suites: maximum
// configurations, platform-independence of the functional pixels, seed
// behaviour, and CLI-facing override plumbing.

#include <gtest/gtest.h>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/filters/filters.hpp"

namespace sccpipe {
namespace {

struct IntegrationFixture : ::testing::Test {
  static void SetUpTestSuite() {
    CityParams city;
    city.blocks_x = 4;
    city.blocks_z = 4;
    scene_ = new SceneBundle(city, CameraConfig{}, 96, 8);
    trace_ = new WorkloadTrace(WorkloadTrace::build(*scene_, 8));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete scene_;
  }
  static SceneBundle* scene_;
  static WorkloadTrace* trace_;
};

SceneBundle* IntegrationFixture::scene_ = nullptr;
WorkloadTrace* IntegrationFixture::trace_ = nullptr;

TEST_F(IntegrationFixture, EightPipelinesFitUnorderedOnly) {
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 8;
  cfg.arrangement = Arrangement::Unordered;
  const RunResult r = run_walkthrough(*scene_, *trace_, cfg);
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  EXPECT_EQ(r.placement.all_cores().size(), 42u);  // 8*5 + connect + transfer

  // The row-slot arrangements cannot host 8 five-stage pipelines plus the
  // producer/transfer slot on a 6x4 chip.
  cfg.arrangement = Arrangement::Ordered;
  EXPECT_THROW(run_walkthrough(*scene_, *trace_, cfg), CheckError);
}

TEST_F(IntegrationFixture, FunctionalPixelsArePlatformIndependent) {
  // The timing platform must never change the pixels: the same walkthrough
  // on the SCC and on the cluster yields identical frames.
  RunConfig scc;
  scc.scenario = Scenario::HostRenderer;
  scc.pipelines = 2;
  scc.functional = true;
  RunConfig hpc = scc;
  hpc.platform = PlatformKind::Cluster;
  const RunResult a = run_walkthrough(*scene_, *trace_, scc);
  const RunResult b = run_walkthrough(*scene_, *trace_, hpc);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i], b.frames[i]) << "frame " << i;
  }
  // But the timing differs enormously.
  EXPECT_LT(b.walkthrough.to_sec(), 0.4 * a.walkthrough.to_sec());
}

TEST_F(IntegrationFixture, SeedChangesScratchesNotGeometry) {
  RunConfig a;
  a.scenario = Scenario::SingleRenderer;
  a.pipelines = 2;
  a.functional = true;
  a.seed = 1;
  RunConfig b = a;
  b.seed = 2;
  const RunResult ra = run_walkthrough(*scene_, *trace_, a);
  const RunResult rb = run_walkthrough(*scene_, *trace_, b);
  // Scratch columns / flicker deltas differ somewhere across the frames.
  bool any_diff = false;
  for (std::size_t i = 0; i < ra.frames.size(); ++i) {
    if (!(ra.frames[i] == rb.frames[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(IntegrationFixture, OverridesChangeTheOutcome) {
  RunConfig base;
  base.scenario = Scenario::RendererPerPipeline;
  base.pipelines = 4;
  RunConfig starved = base;
  starved.overrides.link_bandwidth_bytes_per_sec = 5.0e6;
  RunConfig slow_mc = base;
  slow_mc.overrides.mc_bandwidth_bytes_per_sec = 2.0e7;
  RunConfig slow_copy = base;
  slow_copy.overrides.core_copy_rate_bytes_per_sec = 2.0e7;
  const double t0 = run_walkthrough(*scene_, *trace_, base).walkthrough.to_sec();
  EXPECT_GT(run_walkthrough(*scene_, *trace_, starved).walkthrough.to_sec(),
            1.5 * t0);
  EXPECT_GT(run_walkthrough(*scene_, *trace_, slow_mc).walkthrough.to_sec(),
            t0);
  EXPECT_GT(run_walkthrough(*scene_, *trace_, slow_copy).walkthrough.to_sec(),
            1.2 * t0);
}

TEST_F(IntegrationFixture, QuadVoltageDomainsCostPowerNotTime) {
  RunConfig base;
  base.scenario = Scenario::HostRenderer;
  base.pipelines = 1;
  base.isolate_blur_tile = true;
  base.blur_mhz = 800;
  RunConfig quad = base;
  quad.overrides.quad_tile_voltage_domains = true;
  const RunResult a = run_walkthrough(*scene_, *trace_, base);
  const RunResult b = run_walkthrough(*scene_, *trace_, quad);
  EXPECT_EQ(a.walkthrough, b.walkthrough);
  EXPECT_GT(b.mean_chip_watts, a.mean_chip_watts + 1.0);
}

TEST_F(IntegrationFixture, SingleCoreBaselineOnClusterIsFaster) {
  RunConfig scc;
  RunConfig hpc;
  hpc.platform = PlatformKind::Cluster;
  const SimTime a = run_single_core(*scene_, *trace_, scc).total;
  const SimTime b = run_single_core(*scene_, *trace_, hpc).total;
  EXPECT_LT(b.to_sec(), 0.25 * a.to_sec());
}

TEST_F(IntegrationFixture, WaitPlusBusyIsBoundedByWalkthrough) {
  // For every filter stage: its total busy time plus its total recorded
  // waiting cannot exceed the walkthrough (sanity of the two metrics).
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 3;
  const RunResult r = run_walkthrough(*scene_, *trace_, cfg);
  for (const StageReport& st : r.stages) {
    if (st.wait_ms.count == 0) continue;
    const double wait_total = st.wait_ms.median * st.wait_ms.count;
    EXPECT_LT(st.busy_ms + 0.8 * wait_total, r.walkthrough.to_ms() * 1.05)
        << stage_name(st.kind);
  }
}

}  // namespace
}  // namespace sccpipe
