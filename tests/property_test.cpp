// Parameterized property sweeps (TEST_P) across the configuration space:
// every scenario x arrangement x pipeline count must complete, conserve
// frames, and respect basic physical invariants.

#include <gtest/gtest.h>

#include <tuple>

#include "sccpipe/core/walkthrough.hpp"

namespace sccpipe {
namespace {

// Shared small scene (built once; the binary's only expensive setup).
const SceneBundle& shared_scene() {
  static SceneBundle* scene = [] {
    CityParams city;
    city.blocks_x = 4;
    city.blocks_z = 4;
    return new SceneBundle(city, CameraConfig{}, 80, 8);
  }();
  return *scene;
}

const WorkloadTrace& shared_trace() {
  static WorkloadTrace* trace =
      new WorkloadTrace(WorkloadTrace::build(shared_scene(), 5));
  return *trace;
}

using SweepParam = std::tuple<Scenario, Arrangement, int /*pipelines*/>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweep, CompletesAndConservesFrames) {
  const auto [scenario, arrangement, k] = GetParam();
  RunConfig cfg;
  cfg.scenario = scenario;
  cfg.arrangement = arrangement;
  cfg.pipelines = k;
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);

  // All frames reach the viewer, in order, at strictly increasing times.
  ASSERT_EQ(r.frame_done_ms.size(), 8u);
  for (std::size_t i = 1; i < r.frame_done_ms.size(); ++i) {
    EXPECT_LT(r.frame_done_ms[i - 1], r.frame_done_ms[i]);
  }

  // Every filter stage processed every frame exactly once.
  int filter_stages = 0;
  for (const StageReport& st : r.stages) {
    if (st.kind == StageKind::Render || st.kind == StageKind::Connect ||
        st.kind == StageKind::Transfer) {
      continue;
    }
    EXPECT_EQ(st.frames, 8) << stage_name(st.kind) << " pl " << st.pipeline;
    ++filter_stages;
  }
  EXPECT_EQ(filter_stages, 5 * k);

  // Placement used exactly the expected number of cores.
  const int renderers =
      scenario == Scenario::RendererPerPipeline ? k : 0;
  const int producer = scenario == Scenario::RendererPerPipeline ? 0 : 1;
  EXPECT_EQ(r.placement.all_cores().size(),
            static_cast<std::size_t>(5 * k + renderers + producer + 1));

  // Physical sanity: positive duration, sensible power band.
  EXPECT_GT(r.walkthrough, SimTime::zero());
  EXPECT_GT(r.mean_chip_watts, 20.0);
  EXPECT_LT(r.mean_chip_watts, 80.0);
  EXPECT_NEAR(r.chip_energy_joules,
              r.mean_chip_watts * r.walkthrough.to_sec(),
              0.02 * r.chip_energy_joules);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, PipelineSweep,
    ::testing::Combine(
        ::testing::Values(Scenario::SingleRenderer,
                          Scenario::RendererPerPipeline,
                          Scenario::HostRenderer),
        ::testing::Values(Arrangement::Unordered, Arrangement::Ordered,
                          Arrangement::Flipped),
        ::testing::Values(1, 2, 4, 5)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = scenario_name(std::get<0>(info.param));
      name += '_';
      name += arrangement_name(std::get<1>(info.param));
      name += "_k";
      name += std::to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------------- cluster platform

class ClusterSweep : public ::testing::TestWithParam<std::tuple<Scenario, int>> {};

TEST_P(ClusterSweep, CompletesOnTheClusterPlatform) {
  const auto [scenario, k] = GetParam();
  RunConfig cfg;
  cfg.scenario = scenario;
  cfg.pipelines = k;
  cfg.platform = PlatformKind::Cluster;
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), cfg);
  EXPECT_EQ(r.frame_done_ms.size(), 8u);
  EXPECT_GT(r.walkthrough, SimTime::zero());
}

INSTANTIATE_TEST_SUITE_P(
    Cluster, ClusterSweep,
    ::testing::Combine(::testing::Values(Scenario::SingleRenderer,
                                         Scenario::RendererPerPipeline,
                                         Scenario::HostRenderer),
                       ::testing::Values(1, 3, 5)),
    [](const ::testing::TestParamInfo<std::tuple<Scenario, int>>& info) {
      std::string name = scenario_name(std::get<0>(info.param));
      name += "_k";
      name += std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ----------------------------------------------------- DVFS sweep (TEST_P)

class DvfsSweep : public ::testing::TestWithParam<int /*blur mhz*/> {};

TEST_P(DvfsSweep, HigherBlurFrequencyNeverSlower) {
  const int mhz = GetParam();
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;
  cfg.pipelines = 1;
  cfg.isolate_blur_tile = true;
  const RunResult base = run_walkthrough(shared_scene(), shared_trace(), cfg);
  cfg.blur_mhz = mhz;
  const RunResult faster =
      run_walkthrough(shared_scene(), shared_trace(), cfg);
  if (mhz > 533) {
    EXPECT_LE(faster.walkthrough, base.walkthrough);
  } else {
    EXPECT_GE(faster.walkthrough * 1.0001, base.walkthrough);
  }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, DvfsSweep,
                         ::testing::Values(400, 533, 800, 1066));

// --------------------------------------------- chaos (fault injection)

// Under random message loss on both the RCCE path and the host link, a
// walkthrough with enough retry budget must still deliver every frame —
// and deliver it pixel-identical to the fault-free run: the fault layer
// may only ever cost time, never corrupt data.
class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, DropsWithRetriesPreservePixels) {
  RunConfig clean;
  clean.scenario = Scenario::HostRenderer;  // exercises the host link too
  clean.pipelines = 3;
  clean.functional = true;
  const RunResult ref = run_walkthrough(shared_scene(), shared_trace(), clean);
  ASSERT_EQ(ref.frames.size(), 8u);

  RunConfig chaos = clean;
  chaos.fault.seed = GetParam();
  chaos.fault.rcce_drop_rate = 0.25;
  chaos.fault.rcce_delay_rate = 0.2;
  chaos.fault.host_drop_rate = 0.1;
  chaos.rcce.retry.max_attempts = 16;  // loss^16 is negligible
  chaos.rcce.retry.timeout = SimTime::ms(2);
  const RunResult r = run_walkthrough(shared_scene(), shared_trace(), chaos);

  ASSERT_FALSE(r.fault.failed) << r.fault.failure;
  EXPECT_GT(r.fault.rcce_drops, 0u);  // the run was actually under fire
  ASSERT_EQ(r.frames.size(), ref.frames.size());
  for (std::size_t i = 0; i < ref.frames.size(); ++i) {
    EXPECT_TRUE(r.frames[i] == ref.frames[i]) << "frame " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace sccpipe
