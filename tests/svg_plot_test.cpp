#include <gtest/gtest.h>

#include "sccpipe/support/check.hpp"
#include "sccpipe/support/svg_plot.hpp"

namespace sccpipe {
namespace {

PlotSeries simple_series(const std::string& label = "s") {
  PlotSeries s;
  s.label = label;
  s.x = {1, 2, 3, 4};
  s.y = {10, 20, 15, 30};
  return s;
}

TEST(NiceTicks, OneTwoFiveProgression) {
  const auto t1 = nice_ticks(0.0, 100.0, 6);
  ASSERT_GE(t1.size(), 4u);
  EXPECT_DOUBLE_EQ(t1.front(), 0.0);
  EXPECT_DOUBLE_EQ(t1[1] - t1[0], 20.0);
  const auto t2 = nice_ticks(0.0, 7.0, 6);
  EXPECT_DOUBLE_EQ(t2[1] - t2[0], 2.0);
  const auto t3 = nice_ticks(0.0, 0.9, 6);
  EXPECT_DOUBLE_EQ(t3[1] - t3[0], 0.2);
}

TEST(NiceTicks, CoversRangeAndHandlesDegenerate) {
  const auto t = nice_ticks(37.0, 263.0);
  EXPECT_GE(t.front(), 37.0);
  EXPECT_LE(t.back(), 263.0);
  EXPECT_EQ(nice_ticks(5.0, 5.0).size(), 1u);
  EXPECT_THROW(nice_ticks(2.0, 1.0), CheckError);
}

TEST(SvgPlot, RendersWellFormedDocument) {
  SvgPlot plot("Title & more", "pipelines", "time");
  plot.add_series(simple_series());
  const std::string svg = plot.to_svg();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // XML escaping of the ampersand.
  EXPECT_NE(svg.find("Title &amp; more"), std::string::npos);
  EXPECT_EQ(svg.find("Title & more"), std::string::npos);
  // Axis labels present.
  EXPECT_NE(svg.find("pipelines"), std::string::npos);
  EXPECT_NE(svg.find(">time<"), std::string::npos);
}

TEST(SvgPlot, SeriesStylingIsApplied) {
  SvgPlot plot("t", "x", "y");
  PlotSeries dashed = simple_series("paper");
  dashed.dashed = true;
  dashed.color = "#123456";
  plot.add_series(dashed);
  const std::string svg = plot.to_svg();
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
  EXPECT_NE(svg.find("#123456"), std::string::npos);
  EXPECT_NE(svg.find("paper"), std::string::npos);
}

TEST(SvgPlot, AutoColorsDiffer) {
  SvgPlot plot("t", "x", "y");
  plot.add_series(simple_series("a"));
  plot.add_series(simple_series("b"));
  EXPECT_EQ(plot.series_count(), 2u);
  const std::string svg = plot.to_svg();
  EXPECT_NE(svg.find("#2f6fb2"), std::string::npos);
  EXPECT_NE(svg.find("#c23b3b"), std::string::npos);
}

TEST(SvgPlot, RejectsMalformedSeries) {
  SvgPlot plot("t", "x", "y");
  PlotSeries bad;
  bad.label = "bad";
  bad.x = {1, 2};
  bad.y = {1};
  EXPECT_THROW(plot.add_series(bad), CheckError);
  PlotSeries empty;
  empty.label = "empty";
  EXPECT_THROW(plot.add_series(empty), CheckError);
  EXPECT_THROW(plot.to_svg(), CheckError);  // no series at all
}

TEST(SvgPlot, ExplicitRanges) {
  SvgPlot plot("t", "x", "y");
  plot.add_series(simple_series());
  plot.set_y_range(0.0, 100.0);
  plot.set_x_range(0.0, 8.0);
  EXPECT_NO_THROW(plot.to_svg());
  EXPECT_THROW(plot.set_y_range(5.0, 5.0), CheckError);
}

}  // namespace
}  // namespace sccpipe
