// sccpipe_sweep — batch experiment runner: sweeps the configuration grid
// (scenarios x arrangements x pipeline counts x platforms) over one shared
// scene/workload and emits a CSV, one row per run. The building block for
// custom studies beyond the fixed paper harnesses.
//
// Runs execute in parallel on --jobs worker threads (default: all host
// cores; SCCPIPE_JOBS overrides). Each run is an independent deterministic
// simulation and rows print in grid order, so the CSV is byte-identical
// at every job count.
//
//   $ sccpipe_sweep --pipelines 1-7 --frames 400 > sweep.csv
//   $ sccpipe_sweep --scenarios mcpc,n-rend --platforms scc --pipelines 2-5
//   $ sccpipe_sweep --jobs 1 > a.csv && sccpipe_sweep --jobs 8 > b.csv
//   $ cmp a.csv b.csv   # identical
//
// Unless --bench-json none, a machine-readable perf record (wall-clock,
// events/sec, jobs used, per-run timings) is written for cross-PR
// comparison.

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "sccpipe/core/recovery.hpp"
#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/exec/executor.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/support/args.hpp"
#include "sccpipe/support/snapshot.hpp"

using namespace sccpipe;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// "1-7" or "3" or "1,3,5" -> list of ints.
std::vector<int> parse_range(const std::string& s) {
  std::vector<int> out;
  for (const std::string& part : split_csv(s)) {
    const auto dash = part.find('-');
    if (dash != std::string::npos) {
      const int lo = std::atoi(part.substr(0, dash).c_str());
      const int hi = std::atoi(part.substr(dash + 1).c_str());
      for (int v = lo; v <= hi; ++v) out.push_back(v);
    } else {
      out.push_back(std::atoi(part.c_str()));
    }
  }
  return out;
}

struct GridRun {
  RunConfig cfg;
  std::string platform_label;
  double wall_sec = 0.0;  // host wall-clock of this run (perf record only)
  RunResult result;
};

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void write_bench_json(const std::string& path, int jobs, double wall_sec,
                      const std::vector<GridRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[sweep] cannot write %s\n", path.c_str());
    return;
  }
  std::uint64_t events = 0;
  for (const GridRun& r : runs) events += r.result.events_dispatched;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sccpipe-bench-sweep-v1\",\n");
  std::fprintf(f, "  \"tool\": \"sccpipe_sweep\",\n");
  std::fprintf(f, "  \"jobs\": %d,\n", jobs);
  std::fprintf(f, "  \"runs\": %zu,\n", runs.size());
  std::fprintf(f, "  \"wall_clock_s\": %.3f,\n", wall_sec);
  std::fprintf(f, "  \"events_dispatched\": %llu,\n",
               static_cast<unsigned long long>(events));
  std::fprintf(f, "  \"events_per_sec\": %.0f,\n",
               wall_sec > 0.0 ? static_cast<double>(events) / wall_sec : 0.0);
  std::fprintf(f, "  \"grid\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const GridRun& r = runs[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"arrangement\": \"%s\", "
        "\"platform\": \"%s\", \"pipelines\": %d, \"walkthrough_s\": %.3f, "
        "\"events\": %llu, \"wall_s\": %.3f}%s\n",
        scenario_name(r.cfg.scenario), arrangement_name(r.cfg.arrangement),
        r.platform_label.c_str(), r.cfg.pipelines,
        r.result.walkthrough.to_sec(),
        static_cast<unsigned long long>(r.result.events_dispatched),
        r.wall_sec, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[sweep] perf record written: %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("scenarios", "comma list: 1-rend,n-rend,mcpc",
                "1-rend,n-rend,mcpc");
  args.add_flag("arrangements", "comma list: unordered,ordered,flipped",
                "ordered");
  args.add_flag("platforms", "comma list: scc,cluster", "scc");
  args.add_flag("pipelines", "range, e.g. 1-7 or 2,4,6", "1-7");
  args.add_flag("frames", "walkthrough length", "400");
  args.add_flag("size", "frame side length", "400");
  args.add_flag("jobs",
                "parallel runs (0 = all cores; env SCCPIPE_JOBS overrides "
                "the default)",
                "0");
  args.add_flag("sim-jobs",
                "worker threads inside each simulation (partitioned engine; "
                "CSV is bit-identical at any value >= 1; default "
                "SCCPIPE_SIM_JOBS or 1)",
                "0");
  args.add_flag("bench-json",
                "perf record path, or 'none' to disable",
                "BENCH_sweep.json");
  args.add_flag("fault-plan",
                "fault plan applied to every run (see sccpipe --help)", "");
  args.add_flag("core-fail",
                "fail-stop core(s): '<core>@<ms>' comma-separated, "
                "e.g. '5@100,9@250'",
                "");
  args.add_flag("slow-core",
                "fail-slow core fate(s): '<core>:<factor>@<ms>' "
                "comma-separated, e.g. '5:4@100'", "");
  args.add_flag("degraded-link",
                "degraded mesh link(s): '<tileA>-<tileB>:<factor>@<ms>' "
                "comma-separated (adjacent tiles only)", "");
  args.add_flag("stall",
                "intermittent core stall train(s): "
                "'<core>:<period_ms>:<duration_ms>' comma-separated", "");
  args.add_flag("heartbeat-ms", "supervisor heartbeat period [ms]", "10");
  args.add_flag("detect-ms", "heartbeat silence declared a failure [ms]",
                "25");
  args.add_flag("max-spares",
                "spare cores the supervisor may promote (-1 = all)", "-1");
  args.add_flag("gray-detect-factor",
                "flag a core gray when its normalized service time exceeds "
                "this multiple of the pipeline median for "
                "--gray-detect-windows consecutive windows (0 = off)", "0");
  args.add_flag("gray-detect-windows",
                "consecutive over-threshold windows before a gray flag", "3");
  args.add_flag("gray-policy",
                "mitigation ladder ceiling: off | dvfs | migrate | rebalance",
                "rebalance");
  args.add_flag("offered-fps",
                "open-loop offered load at the host feeder [frames/s] "
                "(0 = closed loop; mcpc runs only)", "0");
  args.add_flag("window",
                "ARQ send window on the host link (0 = stop-and-wait)", "0");
  args.add_flag("queue-depth",
                "bounded queue depth for feeder/link/stage queues (0 = "
                "rendezvous lockstep)", "0");
  args.add_flag("frame-deadline-ms",
                "shed frames older than this at feeder dequeue (0 = off)",
                "0");
  args.add_flag("breaker-threshold",
                "consecutive host-transport failures that trip the breaker "
                "(0 = off)", "0");
  args.add_flag("breaker-cooldown-ms",
                "open-breaker cooldown before the half-open probe [ms]",
                "250");
  args.add_flag("rcce-retries",
                "transport attempts per message under fault injection", "1");
  args.add_flag("rcce-timeout-ms",
                "per-attempt loss-detection timeout [ms]", "50");
  args.add_flag("checkpoint-every",
                "write per-run snapshots every N delivered frames (0 = off)",
                "0");
  args.add_flag("checkpoint-file",
                "snapshot base path; run i writes '<path>.<i>'", "");
  args.add_flag("resume",
                "resume each run whose per-run snapshot exists "
                "(verify-by-replay)", "false");
  args.add_flag("help", "show this help", "false");
  if (!args.parse(argc, argv) || args.get_bool("help")) {
    std::fprintf(stderr, "%s%s", args.error().empty() ? "" :
                 (args.error() + "\n").c_str(),
                 args.usage("sccpipe_sweep").c_str());
    return args.get_bool("help") ? 0 : 2;
  }

  // One fault plan + recovery config shared by every grid point (the seed
  // keeps each run deterministic regardless of worker interleaving).
  FaultPlan fault;
  if (!args.get("fault-plan").empty()) {
    const Status st = fault.parse(args.get("fault-plan"));
    if (!st.ok()) {
      std::fprintf(stderr, "[sweep] bad --fault-plan: %s\n",
                   st.to_string().c_str());
      return 2;
    }
  }
  const struct {
    const char* flag;
    const char* kind;
  } fault_flags[] = {{"core-fail", "core-fail"},
                     {"slow-core", "slow-core"},
                     {"degraded-link", "degraded-link"},
                     {"stall", "intermittent-stall"}};
  for (const auto& ff : fault_flags) {
    for (const std::string& item : split_csv(args.get(ff.flag))) {
      const Status st = fault.parse(std::string(ff.kind) + "=" + item);
      if (!st.ok()) {
        std::fprintf(stderr, "[sweep] bad --%s: %s\n", ff.flag,
                     st.to_string().c_str());
        return 2;
      }
    }
  }
  RecoveryConfig recovery;
  recovery.heartbeat_period = SimTime::ms(args.get_double("heartbeat-ms"));
  recovery.detection_deadline = SimTime::ms(args.get_double("detect-ms"));
  recovery.max_spares = args.get_int("max-spares");
  if (const Status st = validate_recovery(recovery); !st.ok()) {
    std::fprintf(stderr, "[sweep] error: %s\n", st.to_string().c_str());
    return 2;
  }
  GrayConfig gray;
  gray.detect_factor = args.get_double("gray-detect-factor");
  gray.detect_windows = args.get_int("gray-detect-windows");
  if (const Status st = parse_gray_policy(args.get("gray-policy"),
                                          &gray.policy);
      !st.ok()) {
    std::fprintf(stderr, "[sweep] bad --gray-policy: %s\n",
                 st.to_string().c_str());
    return 2;
  }
  if (const Status st = validate_gray(gray); !st.ok()) {
    std::fprintf(stderr, "[sweep] error: %s\n", st.to_string().c_str());
    return 2;
  }
  CheckpointConfig checkpoint;
  checkpoint.every_frames = args.get_int("checkpoint-every");
  checkpoint.file = args.get("checkpoint-file");
  checkpoint.resume = args.get_bool("resume");
  if (const Status st = snapshot::validate_checkpoint_args(
          checkpoint.every_frames, args.has("checkpoint-every"),
          checkpoint.file, /*resume=*/false);
      !st.ok()) {
    // Resume readability is checked per run below (each run has its own
    // '<path>.<i>' file; only the base path + directory validate here).
    std::fprintf(stderr, "[sweep] error: %s\n", st.to_string().c_str());
    return 2;
  }
  if (checkpoint.resume && checkpoint.file.empty()) {
    std::fprintf(stderr,
                 "[sweep] error: --resume needs --checkpoint-file <base>\n");
    return 2;
  }

  OverloadConfig overload;
  overload.offered_fps = args.get_double("offered-fps");
  overload.window = args.get_int("window");
  overload.queue_depth = args.get_int("queue-depth");
  overload.frame_deadline = SimTime::ms(args.get_double("frame-deadline-ms"));
  overload.breaker_threshold = args.get_int("breaker-threshold");
  overload.breaker_cooldown =
      SimTime::ms(args.get_double("breaker-cooldown-ms"));
  if (overload.enabled() && args.get("scenarios") != "mcpc") {
    std::fprintf(stderr,
                 "[sweep] overload flags apply to the host feed path; pass "
                 "--scenarios mcpc\n");
    return 2;
  }
  if (gray.enabled() && overload.enabled()) {
    std::fprintf(stderr,
                 "[sweep] --gray-detect-factor cannot be combined with the "
                 "overload data plane flags\n");
    return 2;
  }
  RetryPolicy retry;
  retry.max_attempts = args.get_int("rcce-retries");
  retry.timeout = SimTime::ms(args.get_double("rcce-timeout-ms"));

  const std::vector<int> pipeline_list = parse_range(args.get("pipelines"));
  int max_k = 1;
  for (const int k : pipeline_list) max_k = std::max(max_k, k);
  int jobs = args.get_int("jobs");
  if (jobs <= 0) jobs = exec::default_jobs();
  int sim_jobs = exec::default_sim_jobs();
  if (args.has("sim-jobs")) {
    sim_jobs = args.get_int("sim-jobs");
    const Status st = exec::validate_sim_jobs(sim_jobs);
    if (!st.ok()) {
      std::fprintf(stderr, "[sweep] error: %s\n", st.to_string().c_str());
      return 2;
    }
  }

  const int frames = args.get_int("frames");
  const int size = args.get_int("size");
  std::fprintf(stderr, "[sweep] scene + trace (%d frames, %dx%d, max k %d)\n",
               frames, size, size, max_k);
  SceneBundle scene(CityParams{}, CameraConfig{}, size, frames);
  const WorkloadTrace trace =
      WorkloadTrace::build(scene, max_k, exec::trace_runner(jobs));

  // Expand the grid up front; the runs are independent deterministic
  // simulations, so they execute in parallel and report in grid order.
  std::vector<GridRun> runs;
  for (const std::string& sc : split_csv(args.get("scenarios"))) {
    Scenario scenario;
    if (sc == "1-rend") {
      scenario = Scenario::SingleRenderer;
    } else if (sc == "n-rend") {
      scenario = Scenario::RendererPerPipeline;
    } else if (sc == "mcpc") {
      scenario = Scenario::HostRenderer;
    } else {
      std::fprintf(stderr, "[sweep] skipping unknown scenario '%s'\n",
                   sc.c_str());
      continue;
    }
    for (const std::string& ar : split_csv(args.get("arrangements"))) {
      Arrangement arrangement;
      if (ar == "unordered") {
        arrangement = Arrangement::Unordered;
      } else if (ar == "ordered") {
        arrangement = Arrangement::Ordered;
      } else if (ar == "flipped") {
        arrangement = Arrangement::Flipped;
      } else {
        std::fprintf(stderr, "[sweep] skipping unknown arrangement '%s'\n",
                     ar.c_str());
        continue;
      }
      for (const std::string& pf : split_csv(args.get("platforms"))) {
        const PlatformKind platform =
            pf == "cluster" ? PlatformKind::Cluster : PlatformKind::Scc;
        for (const int k : pipeline_list) {
          GridRun gr;
          gr.cfg.scenario = scenario;
          gr.cfg.arrangement = arrangement;
          gr.cfg.platform = platform;
          gr.cfg.pipelines = k;
          gr.cfg.fault = fault;
          gr.cfg.recovery = recovery;
          gr.cfg.gray = gray;
          gr.cfg.overload = overload;
          gr.cfg.rcce.retry = retry;
          gr.cfg.sim_jobs = sim_jobs;
          if (checkpoint.enabled()) {
            gr.cfg.checkpoint = checkpoint;
            gr.cfg.checkpoint.file =
                checkpoint.file + "." + std::to_string(runs.size());
            // Only runs whose previous attempt left a snapshot resume;
            // the rest start fresh (their file does not exist yet).
            gr.cfg.checkpoint.resume =
                checkpoint.resume && file_exists(gr.cfg.checkpoint.file);
          }
          gr.platform_label = pf;
          runs.push_back(std::move(gr));
        }
      }
    }
  }

  std::fprintf(stderr, "[sweep] %zu runs on %d jobs\n", runs.size(), jobs);
  const double t0 = now_sec();
  exec::parallel_for(jobs, runs.size(), [&](std::size_t i) {
    const double rt0 = now_sec();
    runs[i].result = run_walkthrough(scene, trace, runs[i].cfg);
    runs[i].wall_sec = now_sec() - rt0;
  });
  const double wall = now_sec() - t0;

  // A planned crash or a checkpoint data error aborts the sweep before any
  // CSV is emitted — mirroring a real process death — so the caller can
  // rerun with --resume and still get a byte-identical, complete CSV.
  std::size_t crashed = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const CheckpointReport& ck = runs[i].result.checkpoint;
    if (ck.error_code != StatusCode::Ok) {
      std::fprintf(stderr, "[sweep] run %zu checkpoint error: [%s] %s\n", i,
                   status_code_name(ck.error_code), ck.error.c_str());
      return 65;
    }
    if (ck.crashed) {
      ++crashed;
      std::fprintf(stderr,
                   "[sweep] run %zu crashed at %.3f s (%llu checkpoint(s) in "
                   "%s)\n",
                   i, ck.crashed_at_ms / 1000.0,
                   static_cast<unsigned long long>(ck.checkpoints_written),
                   runs[i].cfg.checkpoint.file.c_str());
    }
  }
  if (crashed > 0) {
    std::fprintf(stderr,
                 "[sweep] %zu run(s) crashed; rerun with --resume to "
                 "continue them\n",
                 crashed);
    return 70;
  }

  std::printf("scenario,arrangement,platform,pipelines,walkthrough_s,"
              "mean_watts,chip_energy_j,host_busy_s,host_extra_j,"
              "blur_wait_med_ms,failures_detected,failures_recovered,"
              "frames_replayed,frames_lost,spares_used,max_detect_ms,"
              "post_failure_fps,gray_flags,gray_dvfs,gray_migrations,"
              "gray_rebalances,gray_escalations,gray_drained,gray_shed,"
              "post_mitigation_fps,%s\n",
              TransportReport::csv_header().c_str());
  for (const GridRun& gr : runs) {
    const RunResult& r = gr.result;
    const StageReport* blur = r.stage(StageKind::Blur, 0);
    std::printf("%s,%s,%s,%d,%.3f,%.2f,%.1f,%.3f,%.1f,%.2f,"
                "%llu,%llu,%llu,%llu,%d,%.3f,%.2f,"
                "%d,%d,%d,%d,%d,%d,%llu,%.3f,%s\n",
                scenario_name(gr.cfg.scenario),
                arrangement_name(gr.cfg.arrangement),
                gr.platform_label.c_str(), gr.cfg.pipelines,
                r.walkthrough.to_sec(), r.mean_chip_watts,
                r.chip_energy_joules, r.host_busy_sec,
                r.host_extra_energy_joules,
                blur ? blur->wait_ms.median : 0.0,
                static_cast<unsigned long long>(r.recovery.failures_detected),
                static_cast<unsigned long long>(r.recovery.failures_recovered),
                static_cast<unsigned long long>(r.recovery.frames_replayed),
                static_cast<unsigned long long>(r.recovery.frames_lost),
                r.recovery.spares_used, r.recovery.max_detection_latency_ms,
                r.recovery.post_failure_fps, r.gray.flags_raised,
                r.gray.dvfs_boosts, r.gray.migrations, r.gray.rebalances,
                r.gray.escalations, r.gray.frames_drained,
                static_cast<unsigned long long>(r.gray.frames_shed),
                r.gray.post_mitigation_fps, r.transport.csv().c_str());
  }
  std::fflush(stdout);
  std::fprintf(stderr, "[sweep] %zu runs in %.2f s wall (%d jobs)\n",
               runs.size(), wall, jobs);

  const std::string json = args.get("bench-json");
  if (!json.empty() && json != "none") {
    write_bench_json(json, jobs, wall, runs);
  }
  return 0;
}
