// sccpipe_sweep — batch experiment runner: sweeps the configuration grid
// (scenarios x arrangements x pipeline counts x platforms) over one shared
// scene/workload and emits a CSV, one row per run. The building block for
// custom studies beyond the fixed paper harnesses.
//
//   $ sccpipe_sweep --pipelines 1-7 --frames 400 > sweep.csv
//   $ sccpipe_sweep --scenarios mcpc,n-rend --platforms scc --pipelines 2-5

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/support/args.hpp"

using namespace sccpipe;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// "1-7" or "3" or "1,3,5" -> list of ints.
std::vector<int> parse_range(const std::string& s) {
  std::vector<int> out;
  for (const std::string& part : split_csv(s)) {
    const auto dash = part.find('-');
    if (dash != std::string::npos) {
      const int lo = std::atoi(part.substr(0, dash).c_str());
      const int hi = std::atoi(part.substr(dash + 1).c_str());
      for (int v = lo; v <= hi; ++v) out.push_back(v);
    } else {
      out.push_back(std::atoi(part.c_str()));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("scenarios", "comma list: 1-rend,n-rend,mcpc",
                "1-rend,n-rend,mcpc");
  args.add_flag("arrangements", "comma list: unordered,ordered,flipped",
                "ordered");
  args.add_flag("platforms", "comma list: scc,cluster", "scc");
  args.add_flag("pipelines", "range, e.g. 1-7 or 2,4,6", "1-7");
  args.add_flag("frames", "walkthrough length", "400");
  args.add_flag("size", "frame side length", "400");
  args.add_flag("help", "show this help", "false");
  if (!args.parse(argc, argv) || args.get_bool("help")) {
    std::fprintf(stderr, "%s%s", args.error().empty() ? "" :
                 (args.error() + "\n").c_str(),
                 args.usage("sccpipe_sweep").c_str());
    return args.get_bool("help") ? 0 : 2;
  }

  const std::vector<int> pipeline_list = parse_range(args.get("pipelines"));
  int max_k = 1;
  for (const int k : pipeline_list) max_k = std::max(max_k, k);

  const int frames = args.get_int("frames");
  const int size = args.get_int("size");
  std::fprintf(stderr, "[sweep] scene + trace (%d frames, %dx%d, max k %d)\n",
               frames, size, size, max_k);
  SceneBundle scene(CityParams{}, CameraConfig{}, size, frames);
  const WorkloadTrace trace = WorkloadTrace::build(scene, max_k);

  std::printf("scenario,arrangement,platform,pipelines,walkthrough_s,"
              "mean_watts,chip_energy_j,host_busy_s,host_extra_j,"
              "blur_wait_med_ms\n");
  for (const std::string& sc : split_csv(args.get("scenarios"))) {
    Scenario scenario;
    if (sc == "1-rend") {
      scenario = Scenario::SingleRenderer;
    } else if (sc == "n-rend") {
      scenario = Scenario::RendererPerPipeline;
    } else if (sc == "mcpc") {
      scenario = Scenario::HostRenderer;
    } else {
      std::fprintf(stderr, "[sweep] skipping unknown scenario '%s'\n",
                   sc.c_str());
      continue;
    }
    for (const std::string& ar : split_csv(args.get("arrangements"))) {
      Arrangement arrangement;
      if (ar == "unordered") {
        arrangement = Arrangement::Unordered;
      } else if (ar == "ordered") {
        arrangement = Arrangement::Ordered;
      } else if (ar == "flipped") {
        arrangement = Arrangement::Flipped;
      } else {
        std::fprintf(stderr, "[sweep] skipping unknown arrangement '%s'\n",
                     ar.c_str());
        continue;
      }
      for (const std::string& pf : split_csv(args.get("platforms"))) {
        const PlatformKind platform =
            pf == "cluster" ? PlatformKind::Cluster : PlatformKind::Scc;
        for (const int k : pipeline_list) {
          RunConfig cfg;
          cfg.scenario = scenario;
          cfg.arrangement = arrangement;
          cfg.platform = platform;
          cfg.pipelines = k;
          const RunResult r = run_walkthrough(scene, trace, cfg);
          const StageReport* blur = r.stage(StageKind::Blur, 0);
          std::printf("%s,%s,%s,%d,%.3f,%.2f,%.1f,%.3f,%.1f,%.2f\n",
                      scenario_name(scenario), arrangement_name(arrangement),
                      pf.c_str(), k, r.walkthrough.to_sec(),
                      r.mean_chip_watts, r.chip_energy_joules,
                      r.host_busy_sec, r.host_extra_energy_joules,
                      blur ? blur->wait_ms.median : 0.0);
          std::fflush(stdout);
        }
      }
    }
  }
  return 0;
}
