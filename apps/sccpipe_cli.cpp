// sccpipe — command-line driver: run any walkthrough configuration and
// print the full metrics block, optionally as CSV. The scripting-friendly
// way to explore the design space beyond the fixed paper harnesses.
//
//   $ sccpipe --scenario mcpc --pipelines 5 --arrangement flipped
//   $ sccpipe --scenario n-rend --pipelines 7 --platform cluster
//   $ sccpipe --scenario mcpc --blur-mhz 800 --tail-mhz 400 --isolate-blur
//   $ sccpipe --list           # enumerate accepted option values

#include <cstdio>
#include <string>

#include "sccpipe/core/recovery.hpp"
#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/exec/executor.hpp"
#include "sccpipe/sim/fault.hpp"
#include "sccpipe/support/args.hpp"
#include "sccpipe/support/snapshot.hpp"
#include "sccpipe/support/table.hpp"

// Exit codes: 0 ok, 1 run failed gracefully (typed fault), 2 bad flags,
// 65 checkpoint/resume data error, 70 planned crash (the run died at a
// crash-at instant; resume with --resume to continue it).

using namespace sccpipe;

namespace {

bool parse_scenario(const std::string& v, Scenario* out) {
  if (v == "1-rend" || v == "single-renderer") {
    *out = Scenario::SingleRenderer;
  } else if (v == "n-rend" || v == "renderer-per-pipeline") {
    *out = Scenario::RendererPerPipeline;
  } else if (v == "mcpc" || v == "host" || v == "external") {
    *out = Scenario::HostRenderer;
  } else {
    return false;
  }
  return true;
}

bool parse_arrangement(const std::string& v, Arrangement* out) {
  if (v == "unordered") {
    *out = Arrangement::Unordered;
  } else if (v == "ordered") {
    *out = Arrangement::Ordered;
  } else if (v == "flipped") {
    *out = Arrangement::Flipped;
  } else {
    return false;
  }
  return true;
}

/// Comma-split a repeated fault flag ("5@100,9@250") into individual plan
/// entries, each parsed through the shared fault grammar.
bool parse_fault_list(const std::string& text, const char* flag,
                      const char* kind, FaultPlan* plan) {
  if (text.empty()) return true;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const Status st = plan->parse(std::string(kind) + "=" + item);
    if (!st.ok()) {
      std::fprintf(stderr, "error: bad --%s: %s\n", flag,
                   st.message().c_str());
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("scenario", "1-rend | n-rend | mcpc", "mcpc");
  args.add_flag("arrangement", "unordered | ordered | flipped", "ordered");
  args.add_flag("platform", "scc | cluster", "scc");
  args.add_flag("pipelines", "number of parallel pipelines (1..8)", "4");
  args.add_flag("frames", "walkthrough length", "400");
  args.add_flag("size", "frame side length in pixels", "400");
  args.add_flag("blur-mhz", "blur tile frequency (400/533/800/1066; 0=default)", "0");
  args.add_flag("tail-mhz", "post-blur stage frequency (0=default)", "0");
  args.add_flag("isolate-blur", "place blur alone on its tile (Fig. 18)", "false");
  args.add_flag("seed", "scratch/flicker random seed", "42");
  args.add_flag("fault-plan",
                "fault plan, e.g. 'rcce-drop=0.01;link-down=2' "
                "(grammar: docs/MODEL.md)", "");
  args.add_flag("fault-seed",
                "fault schedule RNG seed (0 = keep the plan's seed)", "0");
  args.add_flag("core-fail",
                "fail-stop core fault(s), '<core>@<ms>' comma-separated, "
                "e.g. '5@100,9@250'", "");
  args.add_flag("slow-core",
                "fail-slow core fate(s), '<core>:<factor>@<ms>' "
                "comma-separated, e.g. '5:4@100'", "");
  args.add_flag("degraded-link",
                "degraded mesh link(s), '<tileA>-<tileB>:<factor>@<ms>' "
                "comma-separated (adjacent tiles only)", "");
  args.add_flag("stall",
                "intermittent core stall train(s), "
                "'<core>:<period_ms>:<duration_ms>' comma-separated", "");
  args.add_flag("heartbeat-ms", "supervisor heartbeat period [ms]", "10");
  args.add_flag("detect-ms", "heartbeat silence declared a failure [ms]", "25");
  args.add_flag("max-spares",
                "spare cores recovery may consume (-1 = all)", "-1");
  args.add_flag("gray-detect-factor",
                "flag a core gray when its normalized service time exceeds "
                "this multiple of the pipeline median for "
                "--gray-detect-windows consecutive windows (0 = off)", "0");
  args.add_flag("gray-detect-windows",
                "consecutive over-threshold windows before a gray flag", "3");
  args.add_flag("gray-policy",
                "mitigation ladder ceiling: off | dvfs | migrate | rebalance",
                "rebalance");
  args.add_flag("rcce-retries",
                "transport attempts per message under fault injection", "1");
  args.add_flag("rcce-timeout-ms",
                "per-attempt loss-detection timeout [ms]", "50");
  args.add_flag("offered-fps",
                "open-loop offered load at the host feeder [frames/s] "
                "(0 = paper's closed loop)", "0");
  args.add_flag("window",
                "ARQ send window on the host link (0 = stop-and-wait)", "0");
  args.add_flag("queue-depth",
                "bounded queue depth: feeder, ARQ receiver, credited "
                "inter-stage channels (0 = rendezvous lockstep)", "0");
  args.add_flag("frame-deadline-ms",
                "shed frames older than this at feeder dequeue (0 = off)",
                "0");
  args.add_flag("breaker-threshold",
                "consecutive host-transport failures that trip the circuit "
                "breaker (0 = off)", "0");
  args.add_flag("breaker-cooldown-ms",
                "open-breaker cooldown before the half-open probe [ms]",
                "250");
  args.add_flag("sim-jobs",
                "worker threads inside the simulation (partitioned engine; "
                "results are bit-identical at any value >= 1; default "
                "SCCPIPE_SIM_JOBS or 1)", "0");
  args.add_flag("checkpoint-every",
                "write a run snapshot every N delivered frames (0 = off)",
                "0");
  args.add_flag("checkpoint-file",
                "snapshot path, written atomically (tmp + rename)", "");
  args.add_flag("resume",
                "load --checkpoint-file, verify it by deterministic replay "
                "and continue past the crash that ended the previous attempt",
                "false");
  args.add_flag("csv", "emit one CSV row instead of tables", "false");
  args.add_flag("timeline", "write a chrome://tracing JSON to this path", "");
  args.add_flag("stages", "print the per-stage report", "true");
  args.add_flag("list", "print accepted values and exit", "false");
  args.add_flag("help", "show this help", "false");

  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", args.error().c_str(),
                 args.usage("sccpipe").c_str());
    return 2;
  }
  if (args.get_bool("help")) {
    std::printf("%s", args.usage("sccpipe").c_str());
    return 0;
  }
  if (args.get_bool("list")) {
    std::printf("scenarios:    1-rend (Fig. 3), n-rend (Fig. 6), mcpc (Fig. 7)\n");
    std::printf("arrangements: unordered, ordered, flipped (Figs. 3-5)\n");
    std::printf("platforms:    scc (SCC+MCPC), cluster (Mogon node, Fig. 13)\n");
    return 0;
  }

  RunConfig cfg;
  if (!parse_scenario(args.get("scenario"), &cfg.scenario)) {
    std::fprintf(stderr, "error: unknown scenario '%s'\n",
                 args.get("scenario").c_str());
    return 2;
  }
  if (!parse_arrangement(args.get("arrangement"), &cfg.arrangement)) {
    std::fprintf(stderr, "error: unknown arrangement '%s'\n",
                 args.get("arrangement").c_str());
    return 2;
  }
  cfg.platform = args.get("platform") == "cluster" ? PlatformKind::Cluster
                                                   : PlatformKind::Scc;
  cfg.pipelines = args.get_int("pipelines");
  cfg.blur_mhz = args.get_int("blur-mhz");
  cfg.tail_mhz = args.get_int("tail-mhz");
  cfg.isolate_blur_tile = args.get_bool("isolate-blur");
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  if (args.has("sim-jobs")) {
    cfg.sim_jobs = args.get_int("sim-jobs");
    const Status st = exec::validate_sim_jobs(cfg.sim_jobs);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
      return 2;
    }
  } else {
    cfg.sim_jobs = exec::default_sim_jobs();
  }

  const std::string fault_plan = args.get("fault-plan");
  if (!fault_plan.empty()) {
    const Status st = cfg.fault.parse(fault_plan);
    if (!st.ok()) {
      std::fprintf(stderr, "error: bad --fault-plan: %s\n",
                   st.message().c_str());
      return 2;
    }
  }
  if (!parse_fault_list(args.get("core-fail"), "core-fail", "core-fail",
                        &cfg.fault) ||
      !parse_fault_list(args.get("slow-core"), "slow-core", "slow-core",
                        &cfg.fault) ||
      !parse_fault_list(args.get("degraded-link"), "degraded-link",
                        "degraded-link", &cfg.fault) ||
      !parse_fault_list(args.get("stall"), "stall", "intermittent-stall",
                        &cfg.fault)) {
    return 2;
  }
  if (args.get_int("fault-seed") > 0) {
    cfg.fault.seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  }
  cfg.recovery.heartbeat_period = SimTime::ms(args.get_double("heartbeat-ms"));
  cfg.recovery.detection_deadline = SimTime::ms(args.get_double("detect-ms"));
  cfg.recovery.max_spares = args.get_int("max-spares");
  if (const Status st = validate_recovery(cfg.recovery); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 2;
  }
  cfg.gray.detect_factor = args.get_double("gray-detect-factor");
  cfg.gray.detect_windows = args.get_int("gray-detect-windows");
  if (const Status st = parse_gray_policy(args.get("gray-policy"),
                                          &cfg.gray.policy);
      !st.ok()) {
    std::fprintf(stderr, "error: bad --gray-policy: %s\n",
                 st.message().c_str());
    return 2;
  }
  if (const Status st = validate_gray(cfg.gray); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 2;
  }
  cfg.checkpoint.every_frames = args.get_int("checkpoint-every");
  cfg.checkpoint.file = args.get("checkpoint-file");
  cfg.checkpoint.resume = args.get_bool("resume");
  if (const Status st = snapshot::validate_checkpoint_args(
          cfg.checkpoint.every_frames, args.has("checkpoint-every"),
          cfg.checkpoint.file, cfg.checkpoint.resume);
      !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 2;
  }
  cfg.rcce.retry.max_attempts = args.get_int("rcce-retries");
  cfg.rcce.retry.timeout = SimTime::ms(args.get_double("rcce-timeout-ms"));
  cfg.overload.offered_fps = args.get_double("offered-fps");
  cfg.overload.window = args.get_int("window");
  cfg.overload.queue_depth = args.get_int("queue-depth");
  cfg.overload.frame_deadline =
      SimTime::ms(args.get_double("frame-deadline-ms"));
  cfg.overload.breaker_threshold = args.get_int("breaker-threshold");
  cfg.overload.breaker_cooldown =
      SimTime::ms(args.get_double("breaker-cooldown-ms"));
  if ((cfg.fault.host_reorder_rate > 0.0 ||
       cfg.fault.host_duplicate_rate > 0.0) &&
      cfg.overload.window <= 0 && cfg.scenario == Scenario::HostRenderer) {
    std::fprintf(stderr,
                 "error: reorder=/duplicate= fates on the host feed need the "
                 "sliding-window transport; pass --window > 0\n");
    return 2;
  }
  if (cfg.gray.enabled() && cfg.overload.enabled()) {
    std::fprintf(stderr,
                 "error: --gray-detect-factor cannot be combined with the "
                 "overload data plane flags (open-loop feeder, ARQ window, "
                 "bounded queues)\n");
    return 2;
  }

  const int frames = args.get_int("frames");
  const int size = args.get_int("size");
  std::fprintf(stderr, "[sccpipe] building scene (%d frames at %dx%d)...\n",
               frames, size, size);
  SceneBundle scene(CityParams{}, CameraConfig{}, size, frames);
  const WorkloadTrace trace = WorkloadTrace::build(scene, cfg.pipelines);
  TimelineRecorder timeline;
  const std::string timeline_path = args.get("timeline");
  if (!timeline_path.empty()) cfg.timeline = &timeline;
  const RunResult r = run_walkthrough(scene, trace, cfg);
  if (!timeline_path.empty()) {
    timeline.write(timeline_path);
    std::fprintf(stderr, "[sccpipe] timeline (%zu spans) -> %s\n",
                 timeline.size(), timeline_path.c_str());
  }

  if (r.parallel_sim.stalled) {
    std::fprintf(stderr, "error: %s\n%s", r.parallel_sim.stall.c_str(),
                 r.parallel_sim.flight_recorder.c_str());
  }
  if (r.checkpoint.error_code != StatusCode::Ok) {
    std::fprintf(stderr, "error: checkpoint: [%s] %s\n",
                 status_code_name(r.checkpoint.error_code),
                 r.checkpoint.error.c_str());
    return 65;
  }
  if (r.checkpoint.crashed) {
    std::fprintf(stderr,
                 "[sccpipe] run crashed at the planned instant %.3f s with "
                 "%llu checkpoint(s) on disk; rerun with --resume "
                 "--checkpoint-file %s to continue\n",
                 r.checkpoint.crashed_at_ms / 1000.0,
                 static_cast<unsigned long long>(r.checkpoint.checkpoints_written),
                 cfg.checkpoint.file.c_str());
    return 70;
  }

  if (args.get_bool("csv")) {
    std::printf("scenario,arrangement,platform,pipelines,frames,walkthrough_s,"
                "mean_watts,chip_energy_j,host_busy_s,host_extra_j,"
                "failures_detected,failures_recovered,frames_replayed,"
                "frames_lost,spares_used,max_detect_ms,post_failure_fps,"
                "gray_flags,gray_dvfs,gray_migrations,gray_rebalances,"
                "gray_escalations,gray_drained,gray_shed,"
                "post_mitigation_fps,%s\n",
                TransportReport::csv_header().c_str());
    std::printf("%s,%s,%s,%d,%d,%.3f,%.2f,%.1f,%.3f,%.1f,%d,%d,%d,%d,%d,"
                "%.3f,%.3f,%d,%d,%d,%d,%d,%d,%llu,%.3f,%s\n",
                scenario_name(cfg.scenario), arrangement_name(cfg.arrangement),
                cfg.platform == PlatformKind::Scc ? "scc" : "cluster",
                cfg.pipelines, frames, r.walkthrough.to_sec(),
                r.mean_chip_watts, r.chip_energy_joules, r.host_busy_sec,
                r.host_extra_energy_joules, r.recovery.failures_detected,
                r.recovery.failures_recovered, r.recovery.frames_replayed,
                r.recovery.frames_lost, r.recovery.spares_used,
                r.recovery.max_detection_latency_ms,
                r.recovery.post_failure_fps, r.gray.flags_raised,
                r.gray.dvfs_boosts, r.gray.migrations, r.gray.rebalances,
                r.gray.escalations, r.gray.frames_drained,
                static_cast<unsigned long long>(r.gray.frames_shed),
                r.gray.post_mitigation_fps, r.transport.csv().c_str());
    return r.fault.failed ? 1 : 0;
  }

  std::printf("configuration: %s, %s, %d pipeline(s) on %s\n",
              scenario_name(cfg.scenario), arrangement_name(cfg.arrangement),
              cfg.pipelines,
              cfg.platform == PlatformKind::Scc ? "SCC+MCPC" : "cluster node");
  std::printf("walkthrough:   %.3f s simulated (%d frames)\n",
              r.walkthrough.to_sec(), frames);
  std::printf("chip power:    %.1f W mean, %.0f J\n", r.mean_chip_watts,
              r.chip_energy_joules);
  if (r.parallel_sim.enabled) {
    const ParallelSimReport& p = r.parallel_sim;
    std::printf("sim engine:    %d worker(s) over %d region(s), lookahead "
                "%lld ns; %llu window(s), %llu cross-region event(s), %llu "
                "idle region-window(s)\n",
                p.sim_jobs, p.regions, static_cast<long long>(p.lookahead_ns),
                static_cast<unsigned long long>(p.windows),
                static_cast<unsigned long long>(p.cross_region_events),
                static_cast<unsigned long long>(p.idle_region_windows));
  }
  if (r.host_busy_sec > 0.0) {
    std::printf("host:          busy %.2f s, extra %.0f J\n", r.host_busy_sec,
                r.host_extra_energy_joules);
  }
  if (r.checkpoint.enabled) {
    std::printf("checkpoints:   %llu written (last at frame %llu)%s%s\n",
                static_cast<unsigned long long>(r.checkpoint.checkpoints_written),
                static_cast<unsigned long long>(
                    r.checkpoint.last_checkpoint_frames),
                r.checkpoint.resumed ? ", resumed" : "",
                r.checkpoint.resume_verified ? " and replay-verified" : "");
  }
  if (r.fault.enabled) {
    std::printf("fault layer:   seed %llu, fingerprint %016llx\n",
                static_cast<unsigned long long>(cfg.fault.seed),
                static_cast<unsigned long long>(r.fault.fingerprint));
    std::printf("  rcce: %llu drops, %llu delays, %llu retransmissions, "
                "%llu transfers failed\n",
                static_cast<unsigned long long>(r.fault.rcce_drops),
                static_cast<unsigned long long>(r.fault.rcce_delays),
                static_cast<unsigned long long>(r.fault.rcce_retransmissions),
                static_cast<unsigned long long>(r.fault.rcce_transfers_failed));
    std::printf("  host: %llu drops, %llu delays, %llu retransmissions\n",
                static_cast<unsigned long long>(r.fault.host_drops),
                static_cast<unsigned long long>(r.fault.host_delays),
                static_cast<unsigned long long>(r.fault.host_retransmissions));
    if (r.fault.rcce_corrupts > 0 || r.fault.host_corrupts > 0) {
      std::printf("  crc:  %llu rcce + %llu host payloads corrupted, all "
                  "caught and retried\n",
                  static_cast<unsigned long long>(r.fault.rcce_corrupts),
                  static_cast<unsigned long long>(r.fault.host_corrupts));
    }
    if (r.fault.failed) {
      std::printf("  RUN FAILED after %d/%d frames at %.3f s: %s\n",
                  r.fault.frames_completed, frames,
                  r.fault.failed_at_ms / 1000.0, r.fault.failure.c_str());
      for (const std::string& e : r.fault.stage_errors) {
        std::printf("    %s\n", e.c_str());
      }
    }
  }
  if (r.transport.enabled) {
    const TransportReport& t = r.transport;
    std::printf("transport:     %llu first sends, %llu retransmits, %llu "
                "dups suppressed; srtt %.3f ms\n",
                static_cast<unsigned long long>(t.first_sends),
                static_cast<unsigned long long>(t.retransmissions),
                static_cast<unsigned long long>(t.dup_suppressed),
                t.smoothed_rtt_ms);
    std::printf("  ledger: %llu offered = %llu admitted + %llu shed "
                "(admission) + %llu shed (breaker)\n",
                static_cast<unsigned long long>(t.frames_offered),
                static_cast<unsigned long long>(t.frames_admitted),
                static_cast<unsigned long long>(t.shed_admission),
                static_cast<unsigned long long>(t.shed_breaker));
    std::printf("          %llu admitted = %llu delivered + %llu shed "
                "(deadline) + %llu shed (transport)\n",
                static_cast<unsigned long long>(t.frames_admitted),
                static_cast<unsigned long long>(t.frames_delivered),
                static_cast<unsigned long long>(t.shed_deadline),
                static_cast<unsigned long long>(t.shed_transport));
    std::printf("  backpressure: %llu credit stalls (%.1f ms); queue peaks "
                "feeder %d, link %d, stage %d\n",
                static_cast<unsigned long long>(t.credit_stalls),
                t.credit_stall_ms, t.max_feeder_queue, t.max_link_queue,
                t.max_stage_queue);
    std::printf("  outcome: goodput %.2f fps, latency p50 %.1f ms / p99 "
                "%.1f ms; breaker %d trip(s), final %s\n",
                t.goodput_fps, t.p50_latency_ms, t.p99_latency_ms,
                t.breaker_trips, breaker_state_name(t.breaker_final));
    for (const BreakerTransition& bt : t.breaker_transitions) {
      std::printf("    breaker %s -> %s at %.3f s\n",
                  breaker_state_name(bt.from), breaker_state_name(bt.to),
                  bt.at.to_sec());
    }
  }
  if (r.recovery.enabled) {
    std::printf("recovery:      %d failure(s) detected, %d recovered "
                "(%d remap, %d degrade); max detection latency %.3f ms\n",
                r.recovery.failures_detected, r.recovery.failures_recovered,
                r.recovery.spares_used, r.recovery.pipelines_lost,
                r.recovery.max_detection_latency_ms);
    std::printf("  replay: %d frame(s) replayed, %d lost; checkpoints %llu "
                "writes / %llu reads (%.0f KiB DRAM traffic)\n",
                r.recovery.frames_replayed, r.recovery.frames_lost,
                static_cast<unsigned long long>(r.recovery.checkpoint_writes),
                static_cast<unsigned long long>(r.recovery.checkpoint_replays),
                r.recovery.checkpoint_bytes / 1024.0);
    std::printf("  liveness: %llu heartbeats (%.0f KiB mesh traffic)",
                static_cast<unsigned long long>(r.recovery.heartbeats_sent),
                r.recovery.heartbeat_bytes / 1024.0);
    if (r.recovery.post_failure_fps > 0.0) {
      std::printf("; post-failure throughput %.2f fps",
                  r.recovery.post_failure_fps);
    }
    std::printf("\n");
    for (const FailureRecord& f : r.recovery.failures) {
      std::printf("  core %d (%s, pipeline %d) died %.3f s, detected +%.3f "
                  "ms -> %s\n",
                  f.core, stage_name(f.stage), f.pipeline,
                  f.failed_at_ms / 1000.0, f.detection_latency_ms,
                  f.degraded ? "degraded"
                  : f.remapped_to >= 0
                      ? ("remapped to core " + std::to_string(f.remapped_to))
                            .c_str()
                      : (f.recovered ? "no action needed" : "run failed"));
    }
  }
  if (r.gray.enabled) {
    const GrayReport& g = r.gray;
    std::printf("gray failures: %d flag(s) -> %d dvfs boost(s), %d "
                "migration(s), %d rebalance(s), %d escalation(s)\n",
                g.flags_raised, g.dvfs_boosts, g.migrations, g.rebalances,
                g.escalations);
    std::printf("  ledger: %llu offered = %llu delivered + %llu shed; %d "
                "in-flight frame(s) drained through migration\n",
                static_cast<unsigned long long>(g.frames_offered),
                static_cast<unsigned long long>(g.frames_delivered),
                static_cast<unsigned long long>(g.frames_shed),
                g.frames_drained);
    if (g.post_mitigation_fps > 0.0) {
      std::printf("  post-mitigation throughput %.2f fps\n",
                  g.post_mitigation_fps);
    }
    for (const GrayActionRecord& a : g.actions) {
      std::printf("  core %d (%s, pipeline %d) flagged %.3f s -> %s%s; "
                  "p50 %.2f -> %.2f ms (norm %.2f vs median %.2f, "
                  "streak %d)\n",
                  a.core, stage_name(a.stage), a.pipeline,
                  a.flagged_at_ms / 1000.0, a.action.c_str(),
                  a.migrated_to >= 0
                      ? (" to core " + std::to_string(a.migrated_to)).c_str()
                      : "",
                  a.before_stage_ms, a.after_stage_ms, a.evidence.norm,
                  a.evidence.median_norm, a.evidence.streak);
    }
  }

  if (args.get_bool("stages")) {
    TextTable table({"stage", "pl", "core", "busy ms/frame", "wait med [ms]",
                     "wait q1-q3 [ms]"});
    for (const StageReport& st : r.stages) {
      table.row()
          .add(stage_name(st.kind))
          .add(st.pipeline)
          .add(st.core)
          .add(st.busy_ms / std::max(1, st.frames), 2)
          .add(st.wait_ms.median, 1)
          .add(format_fixed(st.wait_ms.q1, 1) + "-" +
               format_fixed(st.wait_ms.q3, 1));
    }
    std::printf("\n%s", table.to_string().c_str());
  }
  return r.fault.failed ? 1 : 0;
}
