// Quickstart — the smallest complete use of the sccpipe API.
//
// Builds the scene, measures the render workload once, and runs the
// paper's best configuration (MCPC renders, the SCC filters through two
// parallel macro pipelines) on the simulated system. ~1 second to run.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "sccpipe/core/walkthrough.hpp"

using namespace sccpipe;

int main() {
  // 1. A scene: procedurally generated city, camera path, frame size.
  //    (Small numbers keep the quickstart quick; the paper uses 400
  //    frames at 400x400 over the default city.)
  CityParams city;
  city.blocks_x = 8;
  city.blocks_z = 8;
  SceneBundle scene(city, CameraConfig{}, /*image_side=*/200,
                    /*frame_count=*/60);
  std::printf("scene: %zu triangles, octree depth %d\n", scene.mesh().size(),
              scene.octree().depth());

  // 2. The workload trace: per-frame/per-strip render statistics measured
  //    by the real culling code. Build once, reuse for any run with up to
  //    max_k pipelines.
  const WorkloadTrace trace = WorkloadTrace::build(scene, /*max_k=*/4);

  // 3. Configure a run: scenario (§V), arrangement (§IV-A), pipeline count.
  RunConfig cfg;
  cfg.scenario = Scenario::HostRenderer;   // MCPC renders, SCC filters
  cfg.arrangement = Arrangement::Ordered;  // pipelines along mesh rows
  cfg.pipelines = 2;

  // 4. Run the walkthrough on the simulated SCC + MCPC system.
  const RunResult result = run_walkthrough(scene, trace, cfg);

  std::printf("walkthrough: %.2f s simulated, %zu frames delivered\n",
              result.walkthrough.to_sec(), result.frame_done_ms.size());
  std::printf("SCC: mean %.1f W, %.0f J; MCPC busy %.2f s\n",
              result.mean_chip_watts, result.chip_energy_joules,
              result.host_busy_sec);

  // 5. Inspect per-stage behaviour (what Fig. 15 plots).
  std::printf("\nper-stage busy / median wait (pipeline 0):\n");
  for (const StageKind kind : {StageKind::Sepia, StageKind::Blur,
                               StageKind::Scratch, StageKind::Flicker,
                               StageKind::Swap}) {
    const StageReport* rep = result.stage(kind, 0);
    std::printf("  %-8s core %2d: busy %6.1f ms/frame, waits %6.1f ms/frame\n",
                stage_name(kind), rep->core,
                rep->busy_ms / static_cast<double>(rep->frames),
                rep->wait_ms.median);
  }

  // 6. Compare against the single-core baseline (the paper's 382 s run).
  const SingleCoreBreakdown base = run_single_core(scene, trace, cfg);
  std::printf("\nspeed-up vs one SCC core: %.2fx\n",
              base.total / result.walkthrough);
  return 0;
}
