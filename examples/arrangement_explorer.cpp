// Arrangement explorer — visualise how the §IV-A arrangements place
// pipeline stages on the 6x4 SCC mesh, and measure whether it matters
// (the paper's answer: it does not, because every hand-off detours
// through a memory controller anyway).
//
//   $ ./examples/arrangement_explorer [pipelines]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "sccpipe/core/walkthrough.hpp"

using namespace sccpipe;

namespace {

/// ASCII map of the mesh: one cell per core, letter = stage.
void print_map(const MeshTopology& topo, const Placement& placement) {
  std::map<CoreId, char> labels;
  const char stage_letters[] = "SBcfw";  // sepia blur scratch flicker swap
  for (std::size_t p = 0; p < placement.pipeline_cores.size(); ++p) {
    const auto& cores = placement.pipeline_cores[p];
    const std::size_t first_filter = cores.size() - 5;
    for (std::size_t i = 0; i < cores.size(); ++i) {
      labels[cores[i]] =
          i < first_filter ? 'R' : stage_letters[i - first_filter];
    }
  }
  if (placement.producer >= 0) labels[placement.producer] = 'P';
  labels[placement.transfer] = 'T';

  std::printf("   (P=producer/render/connect, S=sepia, B=blur, c=scratch, "
              "f=flicker, w=swap, T=transfer, .=idle; 2 cores per tile)\n");
  for (int y = 0; y < topo.layout().height; ++y) {
    std::printf("   row %d: ", y);
    for (int x = 0; x < topo.layout().width; ++x) {
      const TileId tile = topo.tile_at({x, y});
      std::string cell;
      for (int c = 0; c < topo.layout().cores_per_tile; ++c) {
        const CoreId core = tile * topo.layout().cores_per_tile + c;
        const auto it = labels.find(core);
        cell += it == labels.end() ? '.' : it->second;
      }
      std::printf("[%s]", cell.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  MeshTopology topo;

  PlacementRequest req;
  req.pipelines = k;
  req.stages_per_pipeline = 6;  // renderer-per-pipeline layout
  req.needs_producer = false;

  for (const Arrangement a : {Arrangement::Unordered, Arrangement::Ordered,
                              Arrangement::Flipped}) {
    std::printf("\n== %s arrangement, %d pipelines ==\n", arrangement_name(a),
                k);
    print_map(topo, make_placement(topo, a, req));
  }

  // Does it matter? Run the walkthrough with each arrangement.
  std::printf("\nmeasured walkthrough times (60 frames, 200x200):\n");
  CityParams city;
  city.blocks_x = 8;
  city.blocks_z = 8;
  SceneBundle scene(city, CameraConfig{}, 200, 60);
  const WorkloadTrace trace = WorkloadTrace::build(scene, k);
  for (const Arrangement a : {Arrangement::Unordered, Arrangement::Ordered,
                              Arrangement::Flipped}) {
    RunConfig cfg;
    cfg.scenario = Scenario::RendererPerPipeline;
    cfg.arrangement = a;
    cfg.pipelines = k;
    const RunResult r = run_walkthrough(scene, trace, cfg);
    std::printf("  %-9s %.3f s | mesh %.0f MB (hottest link %.0f MB) | "
                "MC bytes [MB]:",
                arrangement_name(a), r.walkthrough.to_sec(),
                r.fabric.mesh_total_bytes / 1e6,
                r.fabric.mesh_max_link_bytes / 1e6);
    for (const double b : r.fabric.mc_bulk_bytes) {
      std::printf(" %.0f", b / 1e6);
    }
    std::printf("\n");
  }
  std::printf("\nnear-identical times are expected: the hand-offs bounce\n"
              "through the memory controllers regardless of placement (§VI-A)\n");
  return 0;
}
