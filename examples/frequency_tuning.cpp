// Frequency tuning — interactive version of §VI-D: sweep the blur tile's
// frequency and the post-blur tail frequency, and print the
// time/power/energy trade-off the paper explores in Figs. 16-17.
//
//   $ ./examples/frequency_tuning

#include <cstdio>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/support/table.hpp"

using namespace sccpipe;

int main() {
  CityParams city;
  city.blocks_x = 10;
  city.blocks_z = 10;
  SceneBundle scene(city, CameraConfig{}, 400, 80);
  const WorkloadTrace trace = WorkloadTrace::build(scene, 1);

  std::printf("single pipeline, MCPC renderer, blur isolated on its own tile\n"
              "(the Fig. 18 placement); sweeping tile frequencies:\n\n");

  TextTable table({"blur [MHz]", "tail [MHz]", "time [s]", "mean [W]",
                   "energy [J]", "J per frame"});
  for (const int blur : {400, 533, 800, 1066}) {
    for (const int tail : {400, 533}) {
      RunConfig cfg;
      cfg.scenario = Scenario::HostRenderer;
      cfg.pipelines = 1;
      cfg.isolate_blur_tile = true;
      cfg.blur_mhz = blur;
      cfg.tail_mhz = tail;
      const RunResult r = run_walkthrough(scene, trace, cfg);
      table.row()
          .add(blur)
          .add(tail)
          .add(r.walkthrough.to_sec(), 2)
          .add(r.mean_chip_watts, 1)
          .add(r.chip_energy_joules, 0)
          .add(r.chip_energy_joules / 80.0, 2);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "the paper's conclusion (§VII): \"significant returns can be made by\n"
      "adjusting the frequencies of the individual cores\" — raising only the\n"
      "bottleneck stage buys most of the speed; lowering the waiting tail\n"
      "claws back the power.\n");
  return 0;
}
