// Silent film — the paper's case study, run *functionally*: real pixels
// travel through the macro pipeline (render -> sepia -> blur -> scratch ->
// flicker -> swap -> transfer) and the finished frames are written to disk
// as PPM images. View them with any image viewer or encode a film:
//
//   $ ./examples/silent_film [frames] [size] [out_dir]
//   $ ffmpeg -i silent_film_frames/frame_%03d.ppm film.mp4   # optional

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "sccpipe/core/walkthrough.hpp"

using namespace sccpipe;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 24;
  const int size = argc > 2 ? std::atoi(argv[2]) : 320;
  const std::string out_dir = argc > 3 ? argv[3] : "silent_film_frames";

  CityParams city;
  city.blocks_x = 10;
  city.blocks_z = 10;
  SceneBundle scene(city, CameraConfig{}, size, frames);
  const WorkloadTrace trace = WorkloadTrace::build(scene, 3);

  std::printf("rendering %d frames at %dx%d through 3 parallel pipelines...\n",
              frames, size, size);
  RunConfig cfg;
  cfg.scenario = Scenario::RendererPerPipeline;  // sort-first, 3 renderers
  cfg.pipelines = 3;
  cfg.functional = true;  // carry real pixels, apply the real filters
  const RunResult result = run_walkthrough(scene, trace, cfg);

  std::filesystem::create_directories(out_dir);
  for (std::size_t i = 0; i < result.frames.size(); ++i) {
    char name[64];
    std::snprintf(name, sizeof name, "%s/frame_%03zu.ppm", out_dir.c_str(), i);
    result.frames[i].write_ppm(name);
  }
  std::printf("wrote %zu frames to %s/\n", result.frames.size(),
              out_dir.c_str());
  std::printf("simulated SCC time for this walkthrough: %.2f s "
              "(the pixels are identical to a sequential run)\n",
              result.walkthrough.to_sec());
  return 0;
}
