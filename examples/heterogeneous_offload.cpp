// Heterogeneous offload — should the render stage live on the SCC or on
// the MCPC? Reproduces the decision §V-VI walks through: compare all three
// renderer configurations at several pipeline counts, including the energy
// angle of §VI-B.
//
//   $ ./examples/heterogeneous_offload

#include <cstdio>

#include "sccpipe/core/walkthrough.hpp"
#include "sccpipe/support/table.hpp"

using namespace sccpipe;

int main() {
  CityParams city;
  city.blocks_x = 10;
  city.blocks_z = 10;
  SceneBundle scene(city, CameraConfig{}, 400, 80);
  const WorkloadTrace trace = WorkloadTrace::build(scene, 7);

  TextTable table({"configuration", "k", "time [s]", "SCC [W]",
                   "total energy [J]", "bottleneck"});
  for (const Scenario s :
       {Scenario::SingleRenderer, Scenario::RendererPerPipeline,
        Scenario::HostRenderer}) {
    for (const int k : {1, 3, 5, 7}) {
      RunConfig cfg;
      cfg.scenario = s;
      cfg.pipelines = k;
      const RunResult r = run_walkthrough(scene, trace, cfg);

      // Find the busiest stage: that's what bounds the pipeline.
      const StageReport* busiest = nullptr;
      for (const StageReport& st : r.stages) {
        if (!busiest || st.busy_ms > busiest->busy_ms) busiest = &st;
      }
      table.row()
          .add(scenario_name(s))
          .add(k)
          .add(r.walkthrough.to_sec(), 2)
          .add(r.mean_chip_watts, 1)
          .add(r.chip_energy_joules + r.host_extra_energy_joules, 0)
          .add(busiest ? stage_name(busiest->kind) : "?");
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "reading the table like the paper does: one renderer saturates on the\n"
      "render stage; n renderers scale but burn energy on-chip; offloading\n"
      "the render to the host wins on both time and joules once enough\n"
      "pipelines absorb the filter work (§VI-B).\n");
  return 0;
}
