#include "sccpipe/filters/reference.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sccpipe/geom/vec.hpp"

namespace sccpipe::reference {

namespace {

float to_unit(std::uint8_t v) { return static_cast<float>(v) / 255.0f; }

std::uint8_t to_byte(float v) {
  return static_cast<std::uint8_t>(std::lround(clamp01(v) * 255.0f));
}

}  // namespace

void apply_sepia(Image& img) {
  constexpr Vec3 kS1{0.2f, 0.05f, 0.0f};
  constexpr Vec3 kS2{1.0f, 0.9f, 0.5f};
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const Color c = img.get(x, y);
      const float r = to_unit(c.r);
      const float g = to_unit(c.g);
      const float b = to_unit(c.b);
      const float mix = clamp01(0.3f * r + 0.59f * g + 0.11f * b);
      const Vec3 rgb = kS1 * (1.0f - mix) + kS2 * mix;
      img.set(x, y, Color{to_byte(rgb.x), to_byte(rgb.y), to_byte(rgb.z), c.a});
    }
  }
}

void apply_blur(Image& img) {
  const Image src = img;
  const int w = img.width();
  const int h = img.height();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int sum_r = 0, sum_g = 0, sum_b = 0, n = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = x + dx;
          const int ny = y + dy;
          if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
          const Color c = src.get(nx, ny);
          sum_r += c.r;
          sum_g += c.g;
          sum_b += c.b;
          ++n;
        }
      }
      const Color orig = src.get(x, y);
      img.set(x, y,
              Color{static_cast<std::uint8_t>(sum_r / n),
                    static_cast<std::uint8_t>(sum_g / n),
                    static_cast<std::uint8_t>(sum_b / n), orig.a});
    }
  }
}

void apply_scratches(Image& img, const ScratchParams& params) {
  for (const int x : params.columns) {
    if (x < 0 || x >= img.width()) continue;
    for (int y = 0; y < img.height(); ++y) {
      const Color c = img.get(x, y);
      img.set(x, y, Color{params.color.r, params.color.g, params.color.b, c.a});
    }
  }
}

void apply_flicker(Image& img, FlickerParams params) {
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const Color c = img.get(x, y);
      img.set(x, y, Color{to_byte(to_unit(c.r) + params.delta),
                          to_byte(to_unit(c.g) + params.delta),
                          to_byte(to_unit(c.b) + params.delta), c.a});
    }
  }
}

void apply_oriented_scratches(Image& img, const OrientedScratchParams& params,
                              int strip_y0) {
  SCCPIPE_CHECK(strip_y0 >= 0);
  for (const OrientedScratch& s : params.scratches) {
    const float dx = s.x1 - s.x0;
    const float dy = s.y1 - s.y0;
    const int steps =
        1 + static_cast<int>(std::max(std::fabs(dx), std::fabs(dy)));
    for (int i = 0; i <= steps; ++i) {
      const float t = static_cast<float>(i) / static_cast<float>(steps);
      const int x = static_cast<int>(std::lround(s.x0 + t * dx));
      const int y = static_cast<int>(std::lround(s.y0 + t * dy));
      const int row = y - strip_y0;
      if (x < 0 || x >= img.width() || row < 0 || row >= img.height()) {
        continue;
      }
      const Color prev = img.get(x, row);
      img.set(x, row, Color{s.color.r, s.color.g, s.color.b, prev.a});
    }
  }
}

void apply_vflip(Image& img) {
  const int w = img.width();
  const int h = img.height();
  const std::size_t row_bytes = static_cast<std::size_t>(w) * 4;
  std::vector<std::uint8_t> line(row_bytes);
  std::uint8_t* data = img.data();
  for (int i = 0; i < h / 2; ++i) {
    const int j = h - 1 - i;
    std::uint8_t* row_i = data + static_cast<std::size_t>(i) * row_bytes;
    std::uint8_t* row_j = data + static_cast<std::size_t>(j) * row_bytes;
    std::copy_n(row_i, row_bytes, line.data());
    std::copy_n(row_j, row_bytes, row_i);
    std::copy_n(line.data(), row_bytes, row_j);
  }
}

}  // namespace sccpipe::reference
