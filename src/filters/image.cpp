#include "sccpipe/filters/image.hpp"

#include <cstring>
#include <fstream>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

std::vector<StripRange> divide_rows(int height, int k) {
  SCCPIPE_CHECK_MSG(height > 0 && k > 0, "height=" << height << " k=" << k);
  SCCPIPE_CHECK_MSG(k <= height, "more strips than rows");
  std::vector<StripRange> strips;
  strips.reserve(static_cast<std::size_t>(k));
  const int base = height / k;
  const int extra = height % k;
  int y = 0;
  for (int i = 0; i < k; ++i) {
    const int rows = base + (i < extra ? 1 : 0);
    strips.push_back(StripRange{y, rows});
    y += rows;
  }
  return strips;
}

std::vector<StripRange> divide_rows_weighted(
    int height, const std::vector<double>& weights) {
  const int k = static_cast<int>(weights.size());
  SCCPIPE_CHECK_MSG(height > 0 && k > 0, "height=" << height << " k=" << k);
  SCCPIPE_CHECK_MSG(k <= height, "more strips than rows");
  double total = 0.0;
  for (const double w : weights) {
    SCCPIPE_CHECK_MSG(w > 0.0, "strip weight " << w);
    total += w;
  }
  // Largest-remainder apportionment: floor shares first, then hand the
  // leftover rows to the largest fractional parts (ties to lower index —
  // with equal weights this is exactly divide_rows' "earlier strips take
  // the remainder" rule).
  std::vector<int> rows(static_cast<std::size_t>(k), 0);
  std::vector<double> frac(static_cast<std::size_t>(k), 0.0);
  int assigned = 0;
  for (int i = 0; i < k; ++i) {
    const double ideal =
        static_cast<double>(height) * weights[static_cast<std::size_t>(i)] /
        total;
    rows[static_cast<std::size_t>(i)] = static_cast<int>(ideal);
    frac[static_cast<std::size_t>(i)] =
        ideal - static_cast<double>(rows[static_cast<std::size_t>(i)]);
    assigned += rows[static_cast<std::size_t>(i)];
  }
  for (int left = height - assigned; left > 0; --left) {
    int best = 0;
    for (int i = 1; i < k; ++i) {
      if (frac[static_cast<std::size_t>(i)] >
          frac[static_cast<std::size_t>(best)]) {
        best = i;
      }
    }
    ++rows[static_cast<std::size_t>(best)];
    frac[static_cast<std::size_t>(best)] = -1.0;
  }
  // A tiny weight can floor to zero rows; every pipeline must still get a
  // strip (k <= height guarantees a donor with at least two rows exists).
  for (int i = 0; i < k; ++i) {
    while (rows[static_cast<std::size_t>(i)] == 0) {
      int donor = 0;
      for (int j = 1; j < k; ++j) {
        if (rows[static_cast<std::size_t>(j)] >
            rows[static_cast<std::size_t>(donor)]) {
          donor = j;
        }
      }
      --rows[static_cast<std::size_t>(donor)];
      ++rows[static_cast<std::size_t>(i)];
    }
  }
  std::vector<StripRange> strips;
  strips.reserve(static_cast<std::size_t>(k));
  int y = 0;
  for (int i = 0; i < k; ++i) {
    strips.push_back(StripRange{y, rows[static_cast<std::size_t>(i)]});
    y += rows[static_cast<std::size_t>(i)];
  }
  SCCPIPE_CHECK(y == height);
  return strips;
}

Image::Image(int width, int height, Color fill)
    : width_(width), height_(height) {
  SCCPIPE_CHECK_MSG(width > 0 && height > 0,
                    "image " << width << 'x' << height);
  data_.resize(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 4);
  for (std::size_t i = 0; i < data_.size(); i += 4) {
    data_[i] = fill.r;
    data_[i + 1] = fill.g;
    data_[i + 2] = fill.b;
    data_[i + 3] = fill.a;
  }
}

std::size_t Image::index(int x, int y) const {
  SCCPIPE_CHECK_MSG(x >= 0 && x < width_ && y >= 0 && y < height_,
                    "pixel (" << x << ',' << y << ") outside " << width_ << 'x'
                              << height_);
  return (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)) *
         4;
}

Color Image::get(int x, int y) const {
  const std::size_t i = index(x, y);
  return Color{data_[i], data_[i + 1], data_[i + 2], data_[i + 3]};
}

void Image::set(int x, int y, Color c) {
  const std::size_t i = index(x, y);
  data_[i] = c.r;
  data_[i + 1] = c.g;
  data_[i + 2] = c.b;
  data_[i + 3] = c.a;
}

Image Image::strip(StripRange r) const {
  SCCPIPE_CHECK_MSG(r.y0 >= 0 && r.rows > 0 && r.y0 + r.rows <= height_,
                    "strip [" << r.y0 << ", " << r.y0 + r.rows << ") of height "
                              << height_);
  Image out(width_, r.rows);
  std::memcpy(out.row(0), row(r.y0),
              static_cast<std::size_t>(r.rows) * row_bytes());
  return out;
}

void Image::paste(const Image& src, int y0) {
  SCCPIPE_CHECK_MSG(src.width_ == width_, "paste width mismatch");
  SCCPIPE_CHECK_MSG(y0 >= 0 && y0 + src.height_ <= height_,
                    "paste rows [" << y0 << ", " << y0 + src.height_
                                   << ") of height " << height_);
  std::memcpy(row(y0), src.row(0),
              static_cast<std::size_t>(src.height_) * row_bytes());
}

std::string Image::to_ppm() const {
  std::string out = "P6\n" + std::to_string(width_) + ' ' +
                    std::to_string(height_) + "\n255\n";
  out.reserve(out.size() +
              static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_) * 3);
  for (std::size_t i = 0; i < data_.size(); i += 4) {
    out.push_back(static_cast<char>(data_[i]));
    out.push_back(static_cast<char>(data_[i + 1]));
    out.push_back(static_cast<char>(data_[i + 2]));
  }
  return out;
}

void Image::write_ppm(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  SCCPIPE_CHECK_MSG(f.is_open(), "cannot open " << path);
  const std::string ppm = to_ppm();
  f.write(ppm.data(), static_cast<std::streamsize>(ppm.size()));
  SCCPIPE_CHECK_MSG(f.good(), "write failed: " << path);
}

}  // namespace sccpipe
