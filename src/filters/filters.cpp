#include "sccpipe/filters/filters.hpp"

#include <algorithm>
#include <cmath>

#include "sccpipe/geom/vec.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {

namespace {

float to_unit(std::uint8_t v) { return static_cast<float>(v) / 255.0f; }

std::uint8_t to_byte(float v) {
  return static_cast<std::uint8_t>(std::lround(clamp01(v) * 255.0f));
}

}  // namespace

void apply_sepia(Image& img) {
  // Paper §IV (Sepia stage): constants and formula verbatim — the mix
  // weights are (0.3, 0.59, 0.11), the tone ramp S1=(0.2,0.05,0),
  // S2=(1,0.9,0.5). The per-byte products 0.3*(v/255), 0.59*(v/255),
  // 0.11*(v/255) are tabulated once; summing the table entries
  // left-to-right performs the same two products-then-adds the scalar
  // expression did, so the result is bit-identical (the build never
  // contracts into FMA), while the hot loop loses its three divisions and
  // the per-pixel bounds-checked get/set round trips.
  float lut_r[256], lut_g[256], lut_b[256];
  for (int v = 0; v < 256; ++v) {
    const float u = to_unit(static_cast<std::uint8_t>(v));
    lut_r[v] = 0.3f * u;
    lut_g[v] = 0.59f * u;
    lut_b[v] = 0.11f * u;
  }
  const int w = img.width();
  const int h = img.height();
  for (int y = 0; y < h; ++y) {
    std::uint8_t* row = img.row(y);
    for (int x = 0; x < w; ++x) {
      std::uint8_t* p = row + 4 * x;
      const float mix = clamp01(lut_r[p[0]] + lut_g[p[1]] + lut_b[p[2]]);
      const float omix = 1.0f - mix;
      p[0] = to_byte(0.2f * omix + 1.0f * mix);
      p[1] = to_byte(0.05f * omix + 0.9f * mix);
      p[2] = to_byte(0.0f * omix + 0.5f * mix);
      // alpha byte untouched
    }
  }
}

void apply_blur(Image& img) {
  // 3x3 box average over the original data (paper §IV, Blur stage). The
  // naive form re-reads nine neighbours per pixel from a full frame copy;
  // here each source row's horizontal window sums are computed once into a
  // three-row ring (max 3*255 fits uint16), and each output pixel folds
  // three vertical taps over them. The ring always holds sums of *original*
  // rows: row y+1's sums are taken before row y is overwritten, so the
  // filter runs in place with O(width) scratch instead of an image copy.
  // Every pixel's sum and divisor cover exactly the clamped window the
  // naive loop visited — integer arithmetic, so restructuring is exact.
  const int w = img.width();
  const int h = img.height();
  if (w == 0 || h == 0) return;
  const std::size_t row_sums = static_cast<std::size_t>(w) * 3;
  std::vector<std::uint16_t> ring(3 * row_sums);
  std::vector<std::uint16_t> zeros(row_sums, 0);  // off-image rows
  const auto ring_row = [&](int y) {
    return ring.data() + static_cast<std::size_t>(y % 3) * row_sums;
  };
  const auto compute_hsums = [&](int y) {
    const std::uint8_t* src = img.row(y);
    std::uint16_t* hs = ring_row(y);
    if (w == 1) {
      hs[0] = src[0];
      hs[1] = src[1];
      hs[2] = src[2];
      return;
    }
    hs[0] = static_cast<std::uint16_t>(src[0] + src[4]);
    hs[1] = static_cast<std::uint16_t>(src[1] + src[5]);
    hs[2] = static_cast<std::uint16_t>(src[2] + src[6]);
    for (int x = 1; x < w - 1; ++x) {
      const std::uint8_t* p = src + 4 * (x - 1);
      std::uint16_t* o = hs + 3 * x;
      o[0] = static_cast<std::uint16_t>(p[0] + p[4] + p[8]);
      o[1] = static_cast<std::uint16_t>(p[1] + p[5] + p[9]);
      o[2] = static_cast<std::uint16_t>(p[2] + p[6] + p[10]);
    }
    const std::uint8_t* p = src + 4 * (w - 2);
    std::uint16_t* o = hs + 3 * (w - 1);
    o[0] = static_cast<std::uint16_t>(p[0] + p[4]);
    o[1] = static_cast<std::uint16_t>(p[1] + p[5]);
    o[2] = static_cast<std::uint16_t>(p[2] + p[6]);
  };
  compute_hsums(0);
  for (int y = 0; y < h; ++y) {
    if (y + 1 < h) compute_hsums(y + 1);
    const std::uint16_t* above = y > 0 ? ring_row(y - 1) : zeros.data();
    const std::uint16_t* cur = ring_row(y);
    const std::uint16_t* below = y + 1 < h ? ring_row(y + 1) : zeros.data();
    const int wy = 1 + (y > 0 ? 1 : 0) + (y + 1 < h ? 1 : 0);
    std::uint8_t* dst = img.row(y);
    const auto emit = [&](int x, int n) {
      const int i = 3 * x;
      std::uint8_t* o = dst + 4 * x;
      o[0] = static_cast<std::uint8_t>((above[i] + cur[i] + below[i]) / n);
      o[1] = static_cast<std::uint8_t>(
          (above[i + 1] + cur[i + 1] + below[i + 1]) / n);
      o[2] = static_cast<std::uint8_t>(
          (above[i + 2] + cur[i + 2] + below[i + 2]) / n);
      // alpha byte untouched
    };
    emit(0, wy * (w > 1 ? 2 : 1));
    const int n3 = wy * 3;  // interior fast path: full-width window
    for (int x = 1; x < w - 1; ++x) emit(x, n3);
    if (w > 1) emit(w - 1, wy * 2);
  }
}

ScratchParams ScratchParams::draw(Rng& rng, int image_width,
                                  int max_scratches) {
  SCCPIPE_CHECK(image_width > 0);
  SCCPIPE_CHECK(max_scratches >= 0);
  ScratchParams p;
  p.count = static_cast<int>(rng.below(static_cast<std::uint64_t>(max_scratches) + 1));
  const auto shade = static_cast<std::uint8_t>(rng.below(256));
  p.color = Color{shade, shade, shade, 255};
  p.columns.reserve(static_cast<std::size_t>(p.count));
  for (int i = 0; i < p.count; ++i) {
    p.columns.push_back(
        static_cast<int>(rng.below(static_cast<std::uint64_t>(image_width))));
  }
  return p;
}

void apply_scratches(Image& img, const ScratchParams& params) {
  for (const int x : params.columns) {
    if (x < 0 || x >= img.width()) continue;
    const std::size_t off = static_cast<std::size_t>(x) * 4;
    for (int y = 0; y < img.height(); ++y) {
      std::uint8_t* p = img.row(y) + off;
      p[0] = params.color.r;
      p[1] = params.color.g;
      p[2] = params.color.b;
      // alpha byte untouched
    }
  }
}

FlickerParams FlickerParams::draw(Rng& rng) {
  return FlickerParams{static_cast<float>(rng.uniform(-0.1, 0.1))};
}

void apply_flicker(Image& img, FlickerParams params) {
  // One brightness delta for the whole frame: the 256 possible outputs are
  // tabulated through the exact per-pixel expression, then applied as byte
  // lookups.
  std::uint8_t lut[256];
  for (int v = 0; v < 256; ++v) {
    lut[v] = to_byte(to_unit(static_cast<std::uint8_t>(v)) + params.delta);
  }
  const int w = img.width();
  for (int y = 0; y < img.height(); ++y) {
    std::uint8_t* row = img.row(y);
    for (int x = 0; x < w; ++x) {
      std::uint8_t* p = row + 4 * x;
      p[0] = lut[p[0]];
      p[1] = lut[p[1]];
      p[2] = lut[p[2]];
      // alpha byte untouched
    }
  }
}

ScratchParams scratch_params_for_frame(std::uint64_t seed, int frame,
                                       int image_width, int max_scratches) {
  Rng rng{seed ^ (0x5c2a7c00ULL + static_cast<std::uint64_t>(frame))};
  return ScratchParams::draw(rng, image_width, max_scratches);
}

FlickerParams flicker_params_for_frame(std::uint64_t seed, int frame) {
  Rng rng{seed ^ (0xf11c4e00ULL + static_cast<std::uint64_t>(frame))};
  return FlickerParams::draw(rng);
}

OrientedScratchParams OrientedScratchParams::draw(Rng& rng, int width,
                                                  int height,
                                                  int max_scratches) {
  SCCPIPE_CHECK(width > 0 && height > 0);
  SCCPIPE_CHECK(max_scratches >= 0);
  OrientedScratchParams p;
  const int count =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(max_scratches) + 1));
  const auto shade = static_cast<std::uint8_t>(rng.below(256));
  const float diag = std::sqrt(static_cast<float>(width) * width +
                               static_cast<float>(height) * height);
  p.scratches.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    OrientedScratch s;
    s.x0 = static_cast<float>(rng.uniform(0.0, width));
    s.y0 = static_cast<float>(rng.uniform(0.0, height));
    const float angle = static_cast<float>(rng.uniform(0.0, 6.2831853));
    const float len = static_cast<float>(rng.uniform(0.1, 0.5)) * diag;
    s.x1 = s.x0 + len * std::cos(angle);
    s.y1 = s.y0 + len * std::sin(angle);
    s.color = Color{shade, shade, shade, 255};
    p.scratches.push_back(s);
  }
  return p;
}

OrientedScratchParams oriented_scratch_params_for_frame(std::uint64_t seed,
                                                        int frame, int width,
                                                        int height,
                                                        int max_scratches) {
  Rng rng{seed ^ (0x0513a7c4e000ULL + static_cast<std::uint64_t>(frame))};
  return OrientedScratchParams::draw(rng, width, height, max_scratches);
}

void apply_oriented_scratches(Image& img, const OrientedScratchParams& params,
                              int strip_y0) {
  SCCPIPE_CHECK(strip_y0 >= 0);
  // Integer DDA over full-frame coordinates; the pixel rounding depends
  // only on the segment, never on the strip window, so strip-wise and
  // whole-frame application paint identical pixels.
  for (const OrientedScratch& s : params.scratches) {
    const float dx = s.x1 - s.x0;
    const float dy = s.y1 - s.y0;
    const int steps =
        1 + static_cast<int>(std::max(std::fabs(dx), std::fabs(dy)));
    for (int i = 0; i <= steps; ++i) {
      const float t = static_cast<float>(i) / static_cast<float>(steps);
      const int x = static_cast<int>(std::lround(s.x0 + t * dx));
      const int y = static_cast<int>(std::lround(s.y0 + t * dy));
      const int row = y - strip_y0;
      if (x < 0 || x >= img.width() || row < 0 || row >= img.height()) {
        continue;
      }
      std::uint8_t* p = img.row(row) + static_cast<std::size_t>(x) * 4;
      p[0] = s.color.r;
      p[1] = s.color.g;
      p[2] = s.color.b;
      // alpha byte untouched
    }
  }
}

void apply_vflip(Image& img) {
  // Line-buffer swap, exactly the paper's three-copy scheme.
  const int h = img.height();
  const std::size_t row_bytes = img.row_bytes();
  std::vector<std::uint8_t> line(row_bytes);
  for (int i = 0; i < h / 2; ++i) {
    std::uint8_t* row_i = img.row(i);
    std::uint8_t* row_j = img.row(h - 1 - i);
    std::copy_n(row_i, row_bytes, line.data());
    std::copy_n(row_j, row_bytes, row_i);
    std::copy_n(line.data(), row_bytes, row_j);
  }
}

}  // namespace sccpipe
