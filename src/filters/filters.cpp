#include "sccpipe/filters/filters.hpp"

#include <algorithm>
#include <cmath>

#include "sccpipe/geom/vec.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {

namespace {

float to_unit(std::uint8_t v) { return static_cast<float>(v) / 255.0f; }

std::uint8_t to_byte(float v) {
  return static_cast<std::uint8_t>(std::lround(clamp01(v) * 255.0f));
}

}  // namespace

void apply_sepia(Image& img) {
  // Paper §IV (Sepia stage): constants and formula verbatim.
  constexpr Vec3 kS1{0.2f, 0.05f, 0.0f};
  constexpr Vec3 kS2{1.0f, 0.9f, 0.5f};
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const Color c = img.get(x, y);
      const float r = to_unit(c.r);
      const float g = to_unit(c.g);
      const float b = to_unit(c.b);
      const float mix = clamp01(0.3f * r + 0.59f * g + 0.11f * b);
      const Vec3 rgb = kS1 * (1.0f - mix) + kS2 * mix;
      img.set(x, y, Color{to_byte(rgb.x), to_byte(rgb.y), to_byte(rgb.z), c.a});
    }
  }
}

void apply_blur(Image& img) {
  // 3x3 box average from the original data — a second buffer is required
  // (paper §IV, Blur stage).
  const Image src = img;
  const int w = img.width();
  const int h = img.height();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int sum_r = 0, sum_g = 0, sum_b = 0, n = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = x + dx;
          const int ny = y + dy;
          if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
          const Color c = src.get(nx, ny);
          sum_r += c.r;
          sum_g += c.g;
          sum_b += c.b;
          ++n;
        }
      }
      const Color orig = src.get(x, y);
      img.set(x, y,
              Color{static_cast<std::uint8_t>(sum_r / n),
                    static_cast<std::uint8_t>(sum_g / n),
                    static_cast<std::uint8_t>(sum_b / n), orig.a});
    }
  }
}

ScratchParams ScratchParams::draw(Rng& rng, int image_width,
                                  int max_scratches) {
  SCCPIPE_CHECK(image_width > 0);
  SCCPIPE_CHECK(max_scratches >= 0);
  ScratchParams p;
  p.count = static_cast<int>(rng.below(static_cast<std::uint64_t>(max_scratches) + 1));
  const auto shade = static_cast<std::uint8_t>(rng.below(256));
  p.color = Color{shade, shade, shade, 255};
  p.columns.reserve(static_cast<std::size_t>(p.count));
  for (int i = 0; i < p.count; ++i) {
    p.columns.push_back(
        static_cast<int>(rng.below(static_cast<std::uint64_t>(image_width))));
  }
  return p;
}

void apply_scratches(Image& img, const ScratchParams& params) {
  for (const int x : params.columns) {
    if (x < 0 || x >= img.width()) continue;
    for (int y = 0; y < img.height(); ++y) {
      const Color c = img.get(x, y);
      img.set(x, y, Color{params.color.r, params.color.g, params.color.b, c.a});
    }
  }
}

FlickerParams FlickerParams::draw(Rng& rng) {
  return FlickerParams{static_cast<float>(rng.uniform(-0.1, 0.1))};
}

void apply_flicker(Image& img, FlickerParams params) {
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const Color c = img.get(x, y);
      img.set(x, y, Color{to_byte(to_unit(c.r) + params.delta),
                          to_byte(to_unit(c.g) + params.delta),
                          to_byte(to_unit(c.b) + params.delta), c.a});
    }
  }
}

ScratchParams scratch_params_for_frame(std::uint64_t seed, int frame,
                                       int image_width, int max_scratches) {
  Rng rng{seed ^ (0x5c2a7c00ULL + static_cast<std::uint64_t>(frame))};
  return ScratchParams::draw(rng, image_width, max_scratches);
}

FlickerParams flicker_params_for_frame(std::uint64_t seed, int frame) {
  Rng rng{seed ^ (0xf11c4e00ULL + static_cast<std::uint64_t>(frame))};
  return FlickerParams::draw(rng);
}

OrientedScratchParams OrientedScratchParams::draw(Rng& rng, int width,
                                                  int height,
                                                  int max_scratches) {
  SCCPIPE_CHECK(width > 0 && height > 0);
  SCCPIPE_CHECK(max_scratches >= 0);
  OrientedScratchParams p;
  const int count =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(max_scratches) + 1));
  const auto shade = static_cast<std::uint8_t>(rng.below(256));
  const float diag = std::sqrt(static_cast<float>(width) * width +
                               static_cast<float>(height) * height);
  p.scratches.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    OrientedScratch s;
    s.x0 = static_cast<float>(rng.uniform(0.0, width));
    s.y0 = static_cast<float>(rng.uniform(0.0, height));
    const float angle = static_cast<float>(rng.uniform(0.0, 6.2831853));
    const float len = static_cast<float>(rng.uniform(0.1, 0.5)) * diag;
    s.x1 = s.x0 + len * std::cos(angle);
    s.y1 = s.y0 + len * std::sin(angle);
    s.color = Color{shade, shade, shade, 255};
    p.scratches.push_back(s);
  }
  return p;
}

OrientedScratchParams oriented_scratch_params_for_frame(std::uint64_t seed,
                                                        int frame, int width,
                                                        int height,
                                                        int max_scratches) {
  Rng rng{seed ^ (0x0513a7c4e000ULL + static_cast<std::uint64_t>(frame))};
  return OrientedScratchParams::draw(rng, width, height, max_scratches);
}

void apply_oriented_scratches(Image& img, const OrientedScratchParams& params,
                              int strip_y0) {
  SCCPIPE_CHECK(strip_y0 >= 0);
  // Integer DDA over full-frame coordinates; the pixel rounding depends
  // only on the segment, never on the strip window, so strip-wise and
  // whole-frame application paint identical pixels.
  for (const OrientedScratch& s : params.scratches) {
    const float dx = s.x1 - s.x0;
    const float dy = s.y1 - s.y0;
    const int steps =
        1 + static_cast<int>(std::max(std::fabs(dx), std::fabs(dy)));
    for (int i = 0; i <= steps; ++i) {
      const float t = static_cast<float>(i) / static_cast<float>(steps);
      const int x = static_cast<int>(std::lround(s.x0 + t * dx));
      const int y = static_cast<int>(std::lround(s.y0 + t * dy));
      const int row = y - strip_y0;
      if (x < 0 || x >= img.width() || row < 0 || row >= img.height()) {
        continue;
      }
      const Color prev = img.get(x, row);
      img.set(x, row, Color{s.color.r, s.color.g, s.color.b, prev.a});
    }
  }
}

void apply_vflip(Image& img) {
  // Line-buffer swap, exactly the paper's three-copy scheme.
  const int w = img.width();
  const int h = img.height();
  const std::size_t row_bytes = static_cast<std::size_t>(w) * 4;
  std::vector<std::uint8_t> line(row_bytes);
  std::uint8_t* data = img.data();
  for (int i = 0; i < h / 2; ++i) {
    const int j = h - 1 - i;
    std::uint8_t* row_i = data + static_cast<std::size_t>(i) * row_bytes;
    std::uint8_t* row_j = data + static_cast<std::size_t>(j) * row_bytes;
    std::copy_n(row_i, row_bytes, line.data());
    std::copy_n(row_j, row_bytes, row_i);
    std::copy_n(line.data(), row_bytes, row_j);
  }
}

}  // namespace sccpipe
