#include "sccpipe/core/stage.hpp"

#include "sccpipe/support/check.hpp"

namespace sccpipe {

const char* stage_name(StageKind kind) {
  switch (kind) {
    case StageKind::Render: return "render";
    case StageKind::Connect: return "connect";
    case StageKind::Sepia: return "sepia";
    case StageKind::Blur: return "blur";
    case StageKind::Scratch: return "scratch";
    case StageKind::Flicker: return "flicker";
    case StageKind::Swap: return "swap";
    case StageKind::Transfer: return "transfer";
  }
  return "?";
}

StageWork filter_work(const Calibration& cal, StageKind kind, double pixels,
                      int scratch_count) {
  SCCPIPE_CHECK(pixels >= 0.0);
  SCCPIPE_CHECK(scratch_count >= 0);
  const double bytes = pixels * 4.0;
  StageWork w;
  w.dram_bytes = cal.filter_traffic_factor * bytes;
  switch (kind) {
    case StageKind::Sepia:
      w.cycles = cal.sepia_cycles_per_pixel * pixels;
      break;
    case StageKind::Blur:
      w.cycles = cal.blur_cycles_per_pixel * pixels;
      break;
    case StageKind::Scratch:
      // Per-column work: the per-pixel constant is scaled by how many
      // scratch columns this frame draws relative to a nominal six.
      w.cycles = cal.scratch_base_cycles +
                 cal.scratch_cycles_per_pixel * pixels *
                     (static_cast<double>(scratch_count) / 6.0);
      // Scratches touch only a few columns; traffic is a fraction of the
      // strip (the filter reads nothing it does not write).
      w.dram_bytes = 0.2 * bytes;
      break;
    case StageKind::Flicker:
      w.cycles = cal.flicker_cycles_per_pixel * pixels;
      break;
    case StageKind::Swap:
      w.cycles = cal.swap_cycles_per_pixel * pixels;
      break;
    default:
      SCCPIPE_CHECK_MSG(false, "not a filter stage: " << stage_name(kind));
  }
  return w;
}

StageWork render_work(const Calibration& cal, const RenderLoad& load,
                      bool adjust_frustum) {
  StageWork w;
  w.walk_accesses = cal.cull_accesses_per_node * load.nodes_visited +
                    cal.cull_accesses_per_tri * load.tris_accepted;
  w.cycles = cal.raster_setup_cycles_per_tri * load.tris_accepted +
             cal.raster_fill_cycles_per_pixel * load.projected_pixels;
  if (adjust_frustum) w.cycles += cal.frustum_adjust_cycles;
  w.dram_bytes = cal.render_traffic_per_pixel * load.projected_pixels;
  return w;
}

StageWork assemble_work(const Calibration& cal, double frame_bytes) {
  StageWork w;
  w.cycles = cal.assemble_cycles_per_byte * frame_bytes;
  w.dram_bytes = cal.assemble_traffic_factor * frame_bytes;
  return w;
}

}  // namespace sccpipe
