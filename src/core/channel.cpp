#include "sccpipe/core/channel.hpp"

#include <utility>

#include "sccpipe/support/check.hpp"
#include "sccpipe/support/crc.hpp"

namespace sccpipe {

std::uint32_t frame_token_crc(const FrameToken& token) {
  Crc32 crc;
  crc.update(&token.frame, sizeof(token.frame));
  crc.update(&token.strip.y0, sizeof(token.strip.y0));
  crc.update(&token.strip.rows, sizeof(token.strip.rows));
  crc.update(&token.bytes, sizeof(token.bytes));
  if (token.image != nullptr) {
    crc.update(token.image->data(), token.image->byte_size());
  }
  return crc.value();
}

namespace {

/// Delivery-side integrity check: the "never delivered silently" guarantee.
void verify_token(const FrameToken& token, const char* where) {
  SCCPIPE_CHECK_MSG(frame_token_crc(token) == token.crc,
                    "frame " << token.frame << " failed its CRC-32 check at "
                             << where
                             << " — corruption leaked past the transport");
}

}  // namespace

void Channel::fail(const Status& status) {
  SCCPIPE_CHECK_MSG(on_error_ != nullptr,
                    "channel transport fault without an error handler: "
                        << status.to_string());
  on_error_(status);
}

// ---------------------------------------------------------------- SccChannel

SccChannel::SccChannel(RcceComm& comm, CoreId from, CoreId to)
    : comm_(comm), from_(from), to_(to) {
  SCCPIPE_CHECK(comm.chip().topology().valid_core(from));
  SCCPIPE_CHECK(comm.chip().topology().valid_core(to));
}

void SccChannel::send(FrameToken token, SendDone on_sent) {
  SCCPIPE_CHECK(on_sent != nullptr);
  const double bytes = token.bytes;
  token.crc = frame_token_crc(token);
  tokens_.push_back(std::move(token));
  send_posted_.push_back(comm_.chip().sim().now());
  comm_.send(from_, to_, bytes,
             [this, cb = std::move(on_sent)](const Status& s) mutable {
               // A failed transfer is reported by the receiver side of this
               // same channel (both rendezvous callbacks get the error);
               // the sender's SendDone just never fires.
               if (s.ok()) cb();
             });
}

void SccChannel::recv(RecvDone on_token) {
  SCCPIPE_CHECK(on_token != nullptr);
  recv_posted_.push_back(comm_.chip().sim().now());
  comm_.recv(to_, from_,
             [this, cb = std::move(on_token)](const Status& s) mutable {
    // RCCE delivers per-pair messages in FIFO order, so the head entries of
    // all three queues describe this delivery (or this failed transfer —
    // a transfer only fails after the rendezvous matched).
    SCCPIPE_CHECK(!tokens_.empty() && !send_posted_.empty() &&
                  !recv_posted_.empty());
    FrameToken token = std::move(tokens_.front());
    tokens_.pop_front();
    const SimTime matched = max(send_posted_.front(), recv_posted_.front());
    send_posted_.pop_front();
    recv_posted_.pop_front();
    if (!s.ok()) {
      fail(s);
      return;
    }
    verify_token(token, "SccChannel delivery");
    cb(std::move(token), matched);
  });
}

// --------------------------------------------------------- HostToChipChannel

HostToChipChannel::HostToChipChannel(HostCpu& host, SccChip& chip,
                                     CoreId consumer_core,
                                     HostLinkConfig link_cfg)
    : host_(host),
      chip_(chip),
      consumer_(consumer_core),
      wire_(chip.sim(), link_cfg) {
  SCCPIPE_CHECK(chip.topology().valid_core(consumer_core));
}

void HostToChipChannel::send(FrameToken token, SendDone on_sent) {
  SCCPIPE_CHECK(on_sent != nullptr);
  const double bytes = token.bytes;
  token.crc = frame_token_crc(token);
  tokens_.push_back(std::move(token));
  // Host-side stack cost, then the wire (credit-bounded).
  host_.compute(wire_.host_side_cycles(bytes),
                [this, bytes, cb = std::move(on_sent)]() mutable {
                  wire_.push(bytes, std::move(cb));
                });
}

void HostToChipChannel::set_fault(FaultInjector* fault, RetryPolicy retry) {
  wire_.set_fault(fault, retry, [this](const Status& s) { fail(s); });
}

void HostToChipChannel::recv(RecvDone on_token) {
  SCCPIPE_CHECK(on_token != nullptr);
  wire_.pop([this, cb = std::move(on_token)](double bytes) mutable {
    const SimTime matched = chip_.sim().now();
    // The consumer core works the UDP stack before the data is usable.
    chip_.compute(consumer_, wire_.scc_recv_cycles(bytes),
                  [this, matched, cb = std::move(cb)]() mutable {
                    SCCPIPE_CHECK(!tokens_.empty());
                    FrameToken token = std::move(tokens_.front());
                    tokens_.pop_front();
                    verify_token(token, "host-to-chip delivery");
                    cb(std::move(token), matched);
                  });
  });
}

// ------------------------------------------------- ReliableHostToChipChannel

ReliableHostToChipChannel::ReliableHostToChipChannel(HostCpu& host,
                                                     SccChip& chip,
                                                     CoreId consumer_core,
                                                     ReliableLinkConfig cfg)
    : host_(host),
      chip_(chip),
      consumer_(consumer_core),
      wire_(chip.sim(), cfg) {
  SCCPIPE_CHECK(chip.topology().valid_core(consumer_core));
  wire_.set_error_handler([this](const Status& s, std::uint64_t seq) {
    auto it = tokens_.find(seq);
    SCCPIPE_CHECK_MSG(it != tokens_.end(),
                      "transport abandoned unknown message #" << seq);
    FrameToken token = std::move(it->second);
    tokens_.erase(it);
    if (on_abandon_ != nullptr) {
      on_abandon_(token, s);
    } else {
      fail(s);
    }
  });
}

void ReliableHostToChipChannel::send(FrameToken token, SendDone on_sent) {
  SCCPIPE_CHECK(on_sent != nullptr);
  const double bytes = token.bytes;
  token.crc = frame_token_crc(token);
  // Host-side pushes admit FIFO, so the Nth push is ARQ sequence N.
  tokens_.emplace(push_seq_++, std::move(token));
  host_.compute(wire_.host_side_cycles(bytes),
                [this, bytes, cb = std::move(on_sent)]() mutable {
                  wire_.push(bytes, std::move(cb));
                });
}

void ReliableHostToChipChannel::recv(RecvDone on_token) {
  SCCPIPE_CHECK(on_token != nullptr);
  wire_.pop([this, cb = std::move(on_token)](double bytes) mutable {
    const SimTime matched = chip_.sim().now();
    chip_.compute(consumer_, wire_.scc_recv_cycles(bytes),
                  [this, matched, cb = std::move(cb)]() mutable {
                    // In-order delivery with abandoned holes already
                    // erased: the lowest outstanding sequence is this one.
                    SCCPIPE_CHECK(!tokens_.empty());
                    auto it = tokens_.begin();
                    FrameToken token = std::move(it->second);
                    tokens_.erase(it);
                    verify_token(token, "reliable host-to-chip delivery");
                    cb(std::move(token), matched);
                  });
  });
}

// --------------------------------------------------------- CreditedSccChannel

CreditedSccChannel::CreditedSccChannel(RcceComm& comm, CoreId from,
                                       CoreId to, int depth,
                                       double credit_bytes)
    : comm_(comm),
      from_(from),
      to_(to),
      depth_(depth),
      credit_bytes_(credit_bytes),
      data_(comm, from, to),
      credits_(depth) {
  SCCPIPE_CHECK(depth >= 1);
  SCCPIPE_CHECK(credit_bytes > 0.0);
  data_.set_error_handler([this](const Status& s) { fail(s); });
}

void CreditedSccChannel::send(FrameToken token, SendDone on_sent) {
  SCCPIPE_CHECK(on_sent != nullptr);
  if (credits_ > 0) {
    if (stalled_) {
      stalled_ = false;
      credit_stall_time_ =
          credit_stall_time_ + (comm_.chip().sim().now() - stall_since_);
    }
    admit(std::move(token), std::move(on_sent));
    return;
  }
  if (!stalled_) {
    stalled_ = true;
    stall_since_ = comm_.chip().sim().now();
    ++credit_stalls_;
  }
  waiting_.emplace_back(std::move(token), std::move(on_sent));
}

void CreditedSccChannel::admit(FrameToken token, SendDone on_sent) {
  --credits_;
  ++outstanding_;
  SCCPIPE_CHECK_MSG(outstanding_ <= depth_,
                    "credited channel exceeded its depth bound: "
                        << outstanding_ << " > " << depth_);
  if (outstanding_ > max_occupancy_) max_occupancy_ = outstanding_;
  // One credit-return rendezvous per admitted token, posted up front so
  // the consumer's grant always finds its matching receive.
  comm_.recv(from_, to_, [this](const Status& s) {
    if (!s.ok()) {
      fail(s);
      return;
    }
    on_credit();
  });
  // The producer is decoupled now; the data transfer rides behind.
  on_sent();
  data_.send(std::move(token), [] {});
}

void CreditedSccChannel::on_credit() {
  ++credits_;
  if (!waiting_.empty()) {
    if (stalled_) {
      stalled_ = false;
      credit_stall_time_ =
          credit_stall_time_ + (comm_.chip().sim().now() - stall_since_);
    }
    auto next = std::move(waiting_.front());
    waiting_.pop_front();
    admit(std::move(next.first), std::move(next.second));
  }
}

void CreditedSccChannel::recv(RecvDone on_token) {
  SCCPIPE_CHECK(on_token != nullptr);
  data_.recv([this, cb = std::move(on_token)](FrameToken token,
                                              SimTime matched) mutable {
    --outstanding_;
    ++credit_messages_;
    // Return the freed slot as real mesh traffic: consumer -> producer.
    comm_.send(to_, from_, credit_bytes_, [this](const Status& s) {
      if (!s.ok()) fail(s);
    });
    cb(std::move(token), matched);
  });
}

// ------------------------------------------------------- ChipToViewerChannel

ChipToViewerChannel::ChipToViewerChannel(SccChip& chip, CoreId producer_core,
                                         HostLinkConfig link_cfg,
                                         FrameSink sink)
    : chip_(chip),
      producer_(producer_core),
      wire_(chip.sim(), link_cfg),
      sink_(std::move(sink)) {
  SCCPIPE_CHECK(chip.topology().valid_core(producer_core));
  SCCPIPE_CHECK(sink_ != nullptr);
}

void ChipToViewerChannel::set_fault(FaultInjector* fault, RetryPolicy retry) {
  wire_.set_fault(fault, retry, [this](const Status& s) { fail(s); });
}

void ChipToViewerChannel::send(FrameToken token, SendDone on_sent) {
  SCCPIPE_CHECK(on_sent != nullptr);
  const double bytes = token.bytes;
  token.crc = frame_token_crc(token);
  // UDP send cost on the producer core, then the wire; the viewer drains
  // the channel immediately on arrival.
  chip_.compute(producer_, wire_.scc_send_cycles(bytes),
                [this, bytes, t = std::move(token),
                 cb = std::move(on_sent)]() mutable {
                  wire_.push(bytes, std::move(cb));
                  wire_.pop([this, t = std::move(t)](double) mutable {
                    verify_token(t, "viewer delivery");
                    sink_(t, chip_.sim().now());
                  });
                });
}

void ChipToViewerChannel::recv(RecvDone) {
  SCCPIPE_CHECK_MSG(false, "the viewer channel is a sink; recv() is internal");
}

}  // namespace sccpipe
