#include "sccpipe/core/placement.hpp"

#include <algorithm>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

const char* arrangement_name(Arrangement a) {
  switch (a) {
    case Arrangement::Unordered: return "unordered";
    case Arrangement::Ordered: return "ordered";
    case Arrangement::Flipped: return "flipped";
  }
  return "?";
}

std::vector<CoreId> Placement::all_cores() const {
  std::vector<CoreId> cores;
  for (const auto& pl : pipeline_cores) {
    cores.insert(cores.end(), pl.begin(), pl.end());
  }
  if (producer >= 0) cores.push_back(producer);
  if (transfer >= 0) cores.push_back(transfer);
  std::sort(cores.begin(), cores.end());
  SCCPIPE_CHECK_MSG(std::adjacent_find(cores.begin(), cores.end()) ==
                        cores.end(),
                    "placement assigned a core twice");
  return cores;
}

namespace {

/// Cores of one grid row, west to east (both cores of each tile).
std::vector<CoreId> row_cores(const MeshTopology& topo, int row) {
  std::vector<CoreId> cores;
  const int cpt = topo.layout().cores_per_tile;
  for (int x = 0; x < topo.layout().width; ++x) {
    const TileId t = topo.tile_at(TileCoord{x, row});
    for (int c = 0; c < cpt; ++c) cores.push_back(t * cpt + c);
  }
  return cores;
}

/// Row "slots": consecutive groups of slot_size cores within a row. Slot s
/// lives in row s % height, segment s / height.
std::vector<std::vector<CoreId>> make_slots(const MeshTopology& topo,
                                            int slot_size) {
  std::vector<std::vector<CoreId>> slots;
  const int height = topo.layout().height;
  const int per_row =
      topo.layout().width * topo.layout().cores_per_tile / slot_size;
  for (int seg = 0; seg < per_row; ++seg) {
    for (int row = 0; row < height; ++row) {
      const auto rc = row_cores(topo, row);
      std::vector<CoreId> slot(
          rc.begin() + static_cast<std::ptrdiff_t>(seg) * slot_size,
          rc.begin() + static_cast<std::ptrdiff_t>(seg + 1) * slot_size);
      slots.push_back(std::move(slot));
    }
  }
  return slots;
}

}  // namespace

Placement make_placement(const MeshTopology& topo, Arrangement arrangement,
                         const PlacementRequest& req) {
  SCCPIPE_CHECK(req.pipelines >= 1);
  SCCPIPE_CHECK(req.stages_per_pipeline >= 1);
  const int cpt = topo.layout().cores_per_tile;
  const int extra = (req.needs_producer ? 1 : 0) + 1;  // producer + transfer
  const int blur_pad = req.isolate_blur_tile ? req.pipelines * (cpt - 1) : 0;
  SCCPIPE_CHECK_MSG(
      req.pipelines * req.stages_per_pipeline + extra + blur_pad <=
          topo.core_count(),
      "configuration needs more cores than the chip has: " << req.pipelines
          << " pipelines x " << req.stages_per_pipeline << " stages");

  Placement out;
  out.pipeline_cores.resize(static_cast<std::size_t>(req.pipelines));

  if (arrangement == Arrangement::Unordered) {
    // Plain core-id order: producer, pipelines back to back, transfer.
    CoreId next = 0;
    auto take = [&]() -> CoreId {
      SCCPIPE_CHECK(next < topo.core_count());
      return next++;
    };
    if (req.needs_producer) out.producer = take();
    for (int p = 0; p < req.pipelines; ++p) {
      auto& cores = out.pipeline_cores[static_cast<std::size_t>(p)];
      for (int s = 0; s < req.stages_per_pipeline; ++s) {
        if (req.isolate_blur_tile && s == req.stages_per_pipeline - 4) {
          // Blur (second filter stage): skip to the next empty tile and
          // reserve it whole.
          while (next % cpt != 0) ++next;
          cores.push_back(take());
          while (next % cpt != 0) ++next;  // leave the tile's sibling idle
          continue;
        }
        cores.push_back(take());
      }
    }
    out.transfer = take();
    for (CoreId c = next; c < topo.core_count(); ++c) {
      out.spare_cores.push_back(c);
    }
    return out;
  }

  // Ordered / flipped: one pipeline per row slot.
  const int slot_size = req.stages_per_pipeline + (req.isolate_blur_tile ? 1 : 0);
  SCCPIPE_CHECK_MSG(
      slot_size <= topo.layout().width * cpt,
      "pipeline of " << req.stages_per_pipeline << " stages does not fit a row");
  auto slots = make_slots(topo, slot_size);
  SCCPIPE_CHECK_MSG(
      static_cast<std::size_t>(req.pipelines) + 1 <= slots.size(),
      "not enough row slots for " << req.pipelines << " pipelines");

  for (int p = 0; p < req.pipelines; ++p) {
    std::vector<CoreId> slot = slots[static_cast<std::size_t>(p)];
    if (arrangement == Arrangement::Flipped && (p % 2) == 1) {
      std::reverse(slot.begin(), slot.end());
    }
    auto& cores = out.pipeline_cores[static_cast<std::size_t>(p)];
    if (req.isolate_blur_tile) {
      // The slot carries one spare core. Give blur a whole tile: blur takes
      // the first core of the second tile in the slot and that tile's
      // sibling core stays idle; every other stage takes the remaining
      // cores in slot order.
      const int blur_stage = req.stages_per_pipeline - 4;  // see header
      std::vector<CoreId> rest;
      CoreId blur_core = -1;
      for (std::size_t si = 0; si < slot.size(); ++si) {
        const CoreId c = slot[si];
        if (blur_core < 0 && si + 1 < slot.size() &&
            topo.tile_of(c) == topo.tile_of(slot[si + 1])) {
          // c starts a full tile pair inside the slot; reserve it for blur
          // unless it is the very first pair (keep the head stage at the
          // slot entrance so data still flows west to east).
          if (si >= 2 || slot.size() <= 2) {
            blur_core = c;
            ++si;  // sibling stays idle
            continue;
          }
        }
        rest.push_back(c);
      }
      SCCPIPE_CHECK_MSG(blur_core >= 0, "no free tile for the blur stage");
      std::size_t ri = 0;
      for (int s = 0; s < req.stages_per_pipeline; ++s) {
        if (s == blur_stage) {
          cores.push_back(blur_core);
        } else {
          SCCPIPE_CHECK(ri < rest.size());
          cores.push_back(rest[ri++]);
        }
      }
    } else {
      cores.assign(slot.begin(),
                   slot.begin() + req.stages_per_pipeline);
    }
  }

  // Producer and transfer take the two ends of the next free slot: the
  // producer nearest the pipelines' heads, the transfer at the far end.
  const auto& spare = slots[static_cast<std::size_t>(req.pipelines)];
  std::size_t spare_i = 0;
  if (req.needs_producer) out.producer = spare[spare_i++];
  out.transfer = spare[spare_i++];
  // Everything left over is recovery headroom: first the rest of the
  // producer/transfer slot, then the untouched slots beyond it. With
  // isolate_blur_tile the skipped tile siblings stay idle (not spares) —
  // promoting one would put pipeline work back onto the isolated tile.
  for (; spare_i < spare.size(); ++spare_i) {
    out.spare_cores.push_back(spare[spare_i]);
  }
  for (std::size_t s = static_cast<std::size_t>(req.pipelines) + 1;
       s < slots.size(); ++s) {
    out.spare_cores.insert(out.spare_cores.end(), slots[s].begin(),
                           slots[s].end());
  }
  return out;
}

}  // namespace sccpipe
