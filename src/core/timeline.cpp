#include "sccpipe/core/timeline.hpp"

#include <fstream>
#include <sstream>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

void TimelineRecorder::add_span(CoreId core, const std::string& name,
                                const std::string& category, SimTime start,
                                SimTime end) {
  SCCPIPE_CHECK_MSG(end >= start, "span '" << name << "' ends before it starts");
  if (start == end) return;  // zero-length spans carry no information
  spans_.push_back(Span{core, name, category, start, end});
}

std::string TimelineRecorder::to_chrome_json() const {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[\n";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) oss << ",\n";
    first = false;
    oss << "{\"name\":\"" << s.name << "\",\"cat\":\"" << s.category
        << "\",\"ph\":\"X\",\"ts\":" << s.start.to_us()
        << ",\"dur\":" << (s.end - s.start).to_us()
        << ",\"pid\":0,\"tid\":" << s.core << "}";
  }
  oss << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return oss.str();
}

void TimelineRecorder::write(const std::string& path) const {
  std::ofstream f(path);
  SCCPIPE_CHECK_MSG(f.is_open(), "cannot open " << path);
  f << to_chrome_json();
  SCCPIPE_CHECK_MSG(f.good(), "write failed: " << path);
}

}  // namespace sccpipe
