#include "sccpipe/core/workload.hpp"

#include <cstdint>
#include <fstream>

#include "sccpipe/support/check.hpp"
#include "sccpipe/support/log.hpp"

namespace sccpipe {

SceneBundle::SceneBundle(CityParams city, CameraConfig camera, int image_side,
                         int frame_count)
    : city_(city),
      camera_(camera),
      side_(image_side),
      frames_(frame_count),
      mesh_(generate_city(city)),
      octree_(mesh_),
      renderer_(mesh_, octree_, camera, image_side, image_side),
      path_(mesh_.bounds(), frame_count) {
  SCCPIPE_CHECK(image_side > 0 && frame_count > 0);
}

WorkloadTrace::WorkloadTrace(int frames, int max_k)
    : frames_(frames), max_k_(max_k) {
  SCCPIPE_CHECK(frames > 0 && max_k > 0);
  // Per frame we store strips for k = 1..max_k: sum_{k=1..K} k entries.
  k_offset_.assign(static_cast<std::size_t>(max_k) + 1, 0);
  std::size_t off = 0;
  for (int k = 1; k <= max_k; ++k) {
    k_offset_[static_cast<std::size_t>(k)] = off;
    off += static_cast<std::size_t>(k);
  }
  per_frame_ = off;
  loads_.resize(static_cast<std::size_t>(frames) * per_frame_);
}

std::size_t WorkloadTrace::index(int frame, int k, int strip) const {
  SCCPIPE_CHECK_MSG(frame >= 0 && frame < frames_, "frame " << frame);
  SCCPIPE_CHECK_MSG(k >= 1 && k <= max_k_, "k " << k);
  SCCPIPE_CHECK_MSG(strip >= 0 && strip < k, "strip " << strip << " of " << k);
  return static_cast<std::size_t>(frame) * per_frame_ +
         k_offset_[static_cast<std::size_t>(k)] +
         static_cast<std::size_t>(strip);
}

const RenderLoad& WorkloadTrace::load(int frame, int k, int strip) const {
  return loads_[index(frame, k, strip)];
}

namespace {

constexpr std::uint64_t kTraceMagic = 0x5cc9'7bac'e001ULL;  // format v1

struct TraceHeader {
  std::uint64_t magic = kTraceMagic;
  std::uint64_t scene_seed = 0;
  std::int32_t blocks_x = 0;
  std::int32_t blocks_z = 0;
  std::int32_t image_side = 0;
  std::int32_t frames = 0;
  std::int32_t max_k = 0;
  std::int32_t reserved = 0;
};

TraceHeader make_header(const SceneBundle& scene, int max_k) {
  TraceHeader h;
  h.scene_seed = scene.city().seed;
  h.blocks_x = scene.city().blocks_x;
  h.blocks_z = scene.city().blocks_z;
  h.image_side = scene.image_side();
  h.frames = scene.frame_count();
  h.max_k = max_k;
  return h;
}

bool headers_match(const TraceHeader& a, const TraceHeader& b) {
  return a.magic == b.magic && a.scene_seed == b.scene_seed &&
         a.blocks_x == b.blocks_x && a.blocks_z == b.blocks_z &&
         a.image_side == b.image_side && a.frames == b.frames &&
         a.max_k == b.max_k;
}

}  // namespace

void WorkloadTrace::save(const std::string& path,
                         const SceneBundle& scene) const {
  std::ofstream f(path, std::ios::binary);
  SCCPIPE_CHECK_MSG(f.is_open(), "cannot open " << path);
  const TraceHeader header = make_header(scene, max_k_);
  f.write(reinterpret_cast<const char*>(&header), sizeof header);
  f.write(reinterpret_cast<const char*>(loads_.data()),
          static_cast<std::streamsize>(loads_.size() * sizeof(RenderLoad)));
  SCCPIPE_CHECK_MSG(f.good(), "write failed: " << path);
}

std::optional<WorkloadTrace> WorkloadTrace::load(const std::string& path,
                                                 const SceneBundle& scene,
                                                 int max_k) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return std::nullopt;
  TraceHeader header;
  f.read(reinterpret_cast<char*>(&header), sizeof header);
  if (!f.good() || !headers_match(header, make_header(scene, max_k))) {
    return std::nullopt;
  }
  WorkloadTrace trace(scene.frame_count(), max_k);
  f.read(reinterpret_cast<char*>(trace.loads_.data()),
         static_cast<std::streamsize>(trace.loads_.size() *
                                      sizeof(RenderLoad)));
  if (!f.good()) return std::nullopt;
  // The file must end exactly here (truncated/oversized files rejected).
  f.peek();
  if (!f.eof()) return std::nullopt;
  return trace;
}

WorkloadTrace WorkloadTrace::build_cached(const SceneBundle& scene, int max_k,
                                          const std::string& cache_path,
                                          const ForEachFrame& for_each) {
  if (auto cached = load(cache_path, scene, max_k)) {
    SCCPIPE_INFO("workload trace loaded from " << cache_path);
    return std::move(*cached);
  }
  WorkloadTrace trace = build(scene, max_k, for_each);
  try {
    trace.save(cache_path, scene);
  } catch (const CheckError&) {
    SCCPIPE_WARN("could not write workload cache " << cache_path);
  }
  return trace;
}

WorkloadTrace WorkloadTrace::build(const SceneBundle& scene, int max_k,
                                   const ForEachFrame& for_each) {
  WorkloadTrace trace(scene.frame_count(), max_k);
  const Renderer& renderer = scene.renderer();
  const int side = scene.image_side();
  // Frames are independent (culling is const, each frame writes its own
  // slice of loads_), so the estimation pass — the expensive part of every
  // bench start-up — parallelises per frame when a runner is supplied.
  const auto estimate_frame = [&](std::size_t f) {
    const int frame = static_cast<int>(f);
    const Mat4 view = scene.path().view(frame);
    for (int k = 1; k <= max_k; ++k) {
      const auto strips = divide_rows(side, k);
      for (int s = 0; s < k; ++s) {
        const RenderStats st =
            renderer.estimate_strip(view, strips[static_cast<std::size_t>(s)]);
        RenderLoad& load = trace.loads_[trace.index(frame, k, s)];
        load.nodes_visited = st.cull.nodes_visited;
        load.tris_accepted = st.cull.tris_accepted;
        load.projected_pixels = st.projected_pixels;
      }
    }
  };
  const std::size_t frames = static_cast<std::size_t>(scene.frame_count());
  if (for_each) {
    for_each(frames, estimate_frame);
  } else {
    for (std::size_t f = 0; f < frames; ++f) estimate_frame(f);
  }
  return trace;
}

}  // namespace sccpipe
