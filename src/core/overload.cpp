#include "sccpipe/core/overload.hpp"

#include <cstdio>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

void CircuitBreaker::move_to(BreakerState to, SimTime at) {
  if (state_ == to) return;
  transitions_.push_back(BreakerTransition{at, state_, to});
  if (to == BreakerState::Open) ++trips_;
  state_ = to;
}

bool CircuitBreaker::allow(SimTime now) {
  if (threshold_ <= 0) return true;
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      if (now - opened_at_ >= cooldown_) {
        move_to(BreakerState::HalfOpen, now);
        probe_outstanding_ = true;
        return true;  // the caller's work is the probe
      }
      return false;
    case BreakerState::HalfOpen:
      // One probe at a time: further admissions shed until it resolves.
      if (!probe_outstanding_) {
        probe_outstanding_ = true;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::on_success(SimTime now) {
  if (threshold_ <= 0) return;
  consecutive_failures_ = 0;
  if (state_ == BreakerState::HalfOpen) {
    probe_outstanding_ = false;
    move_to(BreakerState::Closed, now);
  }
}

void CircuitBreaker::on_failure(SimTime now) {
  if (threshold_ <= 0) return;
  ++consecutive_failures_;
  if (state_ == BreakerState::HalfOpen) {
    probe_outstanding_ = false;
    opened_at_ = now;
    move_to(BreakerState::Open, now);
    return;
  }
  if (state_ == BreakerState::Closed &&
      consecutive_failures_ >= threshold_) {
    opened_at_ = now;
    move_to(BreakerState::Open, now);
  }
}

void CircuitBreaker::save_state(snapshot::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(state_));
  w.i64(consecutive_failures_);
  w.u32(probe_outstanding_ ? 1 : 0);
  w.i64(opened_at_.to_ns());
  w.i64(trips_);
  w.u64(transitions_.size());
  for (const BreakerTransition& t : transitions_) {
    w.i64(t.at.to_ns());
    w.u32(static_cast<std::uint32_t>(t.from));
    w.u32(static_cast<std::uint32_t>(t.to));
  }
}

Status CircuitBreaker::restore_state(snapshot::Reader& r) {
  std::uint32_t state = 0, probe = 0;
  std::int64_t streak = 0, opened_ns = 0, trips = 0;
  if (Status s = r.u32(&state); !s.ok()) return s;
  if (Status s = r.i64(&streak); !s.ok()) return s;
  if (Status s = r.u32(&probe); !s.ok()) return s;
  if (Status s = r.i64(&opened_ns); !s.ok()) return s;
  if (Status s = r.i64(&trips); !s.ok()) return s;
  std::uint64_t n = 0;
  if (Status s = r.u64(&n); !s.ok()) return s;
  std::vector<BreakerTransition> transitions;
  transitions.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t at_ns = 0;
    std::uint32_t from = 0, to = 0;
    if (Status s = r.i64(&at_ns); !s.ok()) return s;
    if (Status s = r.u32(&from); !s.ok()) return s;
    if (Status s = r.u32(&to); !s.ok()) return s;
    transitions.push_back(BreakerTransition{SimTime::ns(at_ns),
                                            static_cast<BreakerState>(from),
                                            static_cast<BreakerState>(to)});
  }
  state_ = static_cast<BreakerState>(state);
  consecutive_failures_ = static_cast<int>(streak);
  probe_outstanding_ = probe != 0;
  opened_at_ = SimTime::ns(opened_ns);
  trips_ = static_cast<int>(trips);
  transitions_ = std::move(transitions);
  return Status();
}

std::string TransportReport::csv_header() {
  return "first_sends,retransmits,dup_suppressed,offered,admitted,"
         "delivered,shed_admission,shed_deadline,shed_transport,"
         "shed_breaker,credit_stalls,credit_stall_ms,max_feeder_q,"
         "max_link_q,max_stage_q,goodput_fps,p50_ms,p99_ms,breaker_trips,"
         "breaker_final";
}

std::string TransportReport::csv() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.3f,"
      "%d,%d,%d,%.3f,%.3f,%.3f,%d,%s",
      static_cast<unsigned long long>(first_sends),
      static_cast<unsigned long long>(retransmissions),
      static_cast<unsigned long long>(dup_suppressed),
      static_cast<unsigned long long>(frames_offered),
      static_cast<unsigned long long>(frames_admitted),
      static_cast<unsigned long long>(frames_delivered),
      static_cast<unsigned long long>(shed_admission),
      static_cast<unsigned long long>(shed_deadline),
      static_cast<unsigned long long>(shed_transport),
      static_cast<unsigned long long>(shed_breaker),
      static_cast<unsigned long long>(credit_stalls), credit_stall_ms,
      max_feeder_queue, max_link_queue, max_stage_queue, goodput_fps,
      p50_latency_ms, p99_latency_ms, breaker_trips,
      breaker_state_name(breaker_final));
  return buf;
}

}  // namespace sccpipe
