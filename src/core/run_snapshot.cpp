#include "sccpipe/core/run_snapshot.hpp"

namespace sccpipe {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

struct Fnv {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= kFnvPrime;
    }
  }
  void mix_i(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_d(double v) {
    // Scaled fixed-point, matching FaultInjector::fingerprint's treatment
    // of factors: bit-stable without depending on FP bit patterns.
    mix_i(static_cast<std::int64_t>(v * 1e9));
  }
  void mix_t(SimTime t) { mix_i(t.to_ns()); }
};

}  // namespace

std::uint64_t run_config_fingerprint(const RunConfig& cfg) {
  Fnv f;
  f.mix(static_cast<std::uint64_t>(cfg.scenario));
  f.mix(static_cast<std::uint64_t>(cfg.arrangement));
  f.mix(static_cast<std::uint64_t>(cfg.platform));
  f.mix_d(cfg.overrides.link_bandwidth_bytes_per_sec);
  f.mix_d(cfg.overrides.mc_bandwidth_bytes_per_sec);
  f.mix_d(cfg.overrides.core_copy_rate_bytes_per_sec);
  f.mix(cfg.overrides.quad_tile_voltage_domains ? 1 : 0);
  f.mix_i(cfg.pipelines);
  f.mix_i(cfg.blur_mhz);
  f.mix_i(cfg.tail_mhz);
  f.mix(cfg.isolate_blur_tile ? 1 : 0);
  f.mix(cfg.functional ? 1 : 0);
  f.mix(cfg.seed);

  const FaultPlan& p = cfg.fault;
  f.mix(p.seed);
  f.mix_t(p.horizon);
  f.mix_t(p.window);
  f.mix_d(p.rcce_drop_rate);
  f.mix_d(p.rcce_delay_rate);
  f.mix_t(p.rcce_delay);
  f.mix_d(p.rcce_corrupt_rate);
  f.mix_d(p.host_drop_rate);
  f.mix_d(p.host_delay_rate);
  f.mix_t(p.host_delay);
  f.mix_d(p.host_corrupt_rate);
  f.mix_d(p.host_reorder_rate);
  f.mix_t(p.host_reorder_delay);
  f.mix_d(p.host_duplicate_rate);
  f.mix_t(p.host_duplicate_lag);
  f.mix_d(p.burst_enter_rate);
  f.mix_d(p.burst_exit_rate);
  f.mix_d(p.burst_loss_rate);
  f.mix_i(p.link_degrade_count);
  f.mix_d(p.link_degrade_factor);
  f.mix_i(p.link_down_count);
  f.mix_i(p.router_degrade_count);
  f.mix_d(p.router_degrade_factor);
  f.mix_i(p.mc_degrade_count);
  f.mix_d(p.mc_degrade_factor);
  f.mix_i(p.mc_stall_count);
  f.mix(p.core_failures.size());
  for (const CoreFailure& cf : p.core_failures) {
    f.mix_i(cf.core);
    f.mix_t(cf.at);
  }
  f.mix(p.slow_cores.size());
  for (const SlowCore& sc : p.slow_cores) {
    f.mix_i(sc.core);
    f.mix_d(sc.factor);
    f.mix_t(sc.at);
  }
  f.mix(p.degraded_links.size());
  for (const DegradedLink& dl : p.degraded_links) {
    f.mix_i(dl.tile_a);
    f.mix_i(dl.tile_b);
    f.mix_d(dl.factor);
    f.mix_t(dl.at);
  }
  f.mix(p.stalls.size());
  for (const StallSpec& ss : p.stalls) {
    f.mix_i(ss.core);
    f.mix_t(ss.period);
    f.mix_t(ss.duration);
  }
  // p.crashes deliberately unmixed (see the header).

  const RecoveryConfig& rc = cfg.recovery;
  f.mix_t(rc.heartbeat_period);
  f.mix_t(rc.detection_deadline);
  f.mix_d(rc.heartbeat_bytes);
  f.mix_i(rc.max_spares);

  const GrayConfig& gc = cfg.gray;
  f.mix_d(gc.detect_factor);
  f.mix_i(gc.detect_windows);
  f.mix(static_cast<std::uint64_t>(gc.policy));

  const OverloadConfig& oc = cfg.overload;
  f.mix_d(oc.offered_fps);
  f.mix_i(oc.window);
  f.mix_i(oc.queue_depth);
  f.mix_t(oc.frame_deadline);
  f.mix_i(oc.breaker_threshold);
  f.mix_t(oc.breaker_cooldown);

  const RetryPolicy& rp = cfg.rcce.retry;
  f.mix_i(rp.max_attempts);
  f.mix_t(rp.timeout);
  f.mix_t(rp.backoff);
  f.mix_d(rp.backoff_factor);
  f.mix_t(rp.max_backoff);
  f.mix_t(rp.deadline);
  return f.h;
}

std::vector<std::uint8_t> serialize_run_snapshot(const RunSnapshot& snap) {
  snapshot::Writer w;
  w.u64(snap.config_fingerprint);
  w.u64(snap.frames_delivered);
  w.i64(snap.sim_now_ns);
  w.u32(snap.crashes_consumed);
  w.bytes(snap.state.data(), snap.state.size());
  return w.finish();
}

Status parse_run_snapshot(const std::vector<std::uint8_t>& framed,
                          RunSnapshot* out) {
  snapshot::Reader r;
  if (Status s = r.open(framed); !s.ok()) return s;
  RunSnapshot snap;
  if (Status s = r.u64(&snap.config_fingerprint); !s.ok()) return s;
  if (Status s = r.u64(&snap.frames_delivered); !s.ok()) return s;
  if (Status s = r.i64(&snap.sim_now_ns); !s.ok()) return s;
  if (Status s = r.u32(&snap.crashes_consumed); !s.ok()) return s;
  if (Status s = r.bytes(&snap.state); !s.ok()) return s;
  if (!r.at_end()) {
    return Status(StatusCode::DataLoss,
                  "snapshot has trailing bytes past the last field");
  }
  *out = std::move(snap);
  return Status();
}

Status load_run_snapshot(const std::string& path, RunSnapshot* out) {
  std::vector<std::uint8_t> framed;
  if (Status s = snapshot::read_file(path, &framed); !s.ok()) return s;
  return parse_run_snapshot(framed, out);
}

}  // namespace sccpipe
