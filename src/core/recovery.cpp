#include "sccpipe/core/recovery.hpp"

#include <algorithm>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

Status validate_recovery(const RecoveryConfig& cfg) {
  if (cfg.heartbeat_period <= SimTime::zero()) {
    return Status(StatusCode::InvalidArgument,
                  "--heartbeat-ms must be positive, got " +
                      std::to_string(cfg.heartbeat_period.to_ms()) + " ms");
  }
  if (cfg.detection_deadline < cfg.heartbeat_period + cfg.heartbeat_period) {
    return Status(
        StatusCode::InvalidArgument,
        "--detect-ms (" + std::to_string(cfg.detection_deadline.to_ms()) +
            " ms) must be at least twice --heartbeat-ms (" +
            std::to_string(cfg.heartbeat_period.to_ms()) +
            " ms), or one late heartbeat is declared a core death");
  }
  return Status();
}

Supervisor::Supervisor(SccChip& chip, const FaultInjector& fault,
                       RecoveryConfig cfg, CoreId monitor_core)
    : chip_(chip), fault_(fault), cfg_(cfg), monitor_(monitor_core) {
  SCCPIPE_CHECK(chip.topology().valid_core(monitor_core));
  SCCPIPE_CHECK(cfg_.heartbeat_period > SimTime::zero());
  SCCPIPE_CHECK_MSG(cfg_.detection_deadline > cfg_.heartbeat_period,
                    "detection deadline must exceed the heartbeat period or "
                    "every core is declared dead at the first tick");
}

Supervisor::Watched* Supervisor::find(CoreId core) {
  const auto it = std::lower_bound(
      watched_.begin(), watched_.end(), core,
      [](const Watched& w, CoreId c) { return w.core < c; });
  if (it == watched_.end() || it->core != core) return nullptr;
  return &*it;
}

void Supervisor::watch(CoreId core) {
  SCCPIPE_CHECK(chip_.topology().valid_core(core));
  if (find(core) != nullptr) return;
  const auto it = std::lower_bound(
      watched_.begin(), watched_.end(), core,
      [](const Watched& w, CoreId c) { return w.core < c; });
  watched_.insert(it, Watched{core, chip_.sim().now()});
}

void Supervisor::unwatch(CoreId core) {
  const auto it = std::lower_bound(
      watched_.begin(), watched_.end(), core,
      [](const Watched& w, CoreId c) { return w.core < c; });
  if (it != watched_.end() && it->core == core) watched_.erase(it);
}

void Supervisor::start(FailureHandler on_failure) {
  SCCPIPE_CHECK(!started_);
  SCCPIPE_CHECK(on_failure != nullptr);
  started_ = true;
  on_failure_ = std::move(on_failure);
  tick_event_ =
      chip_.sim().schedule_after(cfg_.heartbeat_period, [this] { tick(); });
}

void Supervisor::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Cancel rather than orphan the pending tick: the simulator runs until
  // its queue drains, and a self-rescheduling watchdog would keep an
  // otherwise-finished run alive forever.
  chip_.sim().cancel(tick_event_);
}

void Supervisor::tick() {
  if (stopped_) return;
  const SimTime now = chip_.sim().now();
  const MeshTopology& topo = chip_.topology();

  // Nobody watches the watcher from on-chip: if the monitor core itself
  // fail-stops, the host run driver is what notices the collector going
  // silent. Model that as an immediate verdict against the monitor and
  // stop ticking — with the assembly point gone there is no recovery.
  if (fault_.core_failed(monitor_, now)) {
    stopped_ = true;
    on_failure_(monitor_, now);
    return;
  }

  // Emit first, in core order: every live watched core pushes one liveness
  // datagram through the mesh towards the monitor. The transfer advances
  // real mesh contention state, so monitoring is not free. last_heartbeat
  // records the *arrival* instant; it may lie in the future, which the
  // deadline comparison below handles naturally (now - future < deadline).
  for (Watched& w : watched_) {
    if (fault_.core_failed(w.core, now)) continue;  // the silence itself
    if (w.core == monitor_) {
      w.last_heartbeat = now;  // the monitor trusts its own pulse
      continue;
    }
    const SimTime arrival =
        chip_.mesh().transfer(now, topo.core_coord(w.core),
                              topo.core_coord(monitor_), cfg_.heartbeat_bytes);
    w.last_heartbeat = max(w.last_heartbeat, arrival);
    ++heartbeats_;
    heartbeat_bytes_ += cfg_.heartbeat_bytes;
  }

  // Watchdog scan: declare anything silent past the deadline. Collect
  // first, then fire — the handler mutates the watched set (unwatch,
  // watch of the spare).
  std::vector<CoreId> dead;
  for (const Watched& w : watched_) {
    if (now - w.last_heartbeat > cfg_.detection_deadline) {
      dead.push_back(w.core);
    }
  }
  for (const CoreId core : dead) {
    unwatch(core);
    on_failure_(core, now);
    if (stopped_) return;  // the handler may abort the run
  }

  tick_event_ =
      chip_.sim().schedule_after(cfg_.heartbeat_period, [this] { tick(); });
}

void Supervisor::save_state(snapshot::Writer& w) const {
  w.u32(stopped_ ? 1 : 0);
  w.u64(heartbeats_);
  w.f64(heartbeat_bytes_);
  w.u64(watched_.size());
  for (const Watched& watched : watched_) {
    w.i64(watched.core);
    w.i64(watched.last_heartbeat.to_ns());
  }
}

Status Supervisor::restore_state(snapshot::Reader& r) {
  std::uint32_t stopped = 0;
  std::uint64_t heartbeats = 0, n = 0;
  double bytes = 0.0;
  if (Status s = r.u32(&stopped); !s.ok()) return s;
  if (Status s = r.u64(&heartbeats); !s.ok()) return s;
  if (Status s = r.f64(&bytes); !s.ok()) return s;
  if (Status s = r.u64(&n); !s.ok()) return s;
  std::vector<Watched> watched;
  watched.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t core = 0, last_ns = 0;
    if (Status s = r.i64(&core); !s.ok()) return s;
    if (Status s = r.i64(&last_ns); !s.ok()) return s;
    watched.push_back(
        Watched{static_cast<CoreId>(core), SimTime::ns(last_ns)});
  }
  stopped_ = stopped != 0;
  heartbeats_ = heartbeats;
  heartbeat_bytes_ = bytes;
  watched_ = std::move(watched);
  return Status();
}

}  // namespace sccpipe
