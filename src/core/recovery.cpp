#include "sccpipe/core/recovery.hpp"

#include <algorithm>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

Status validate_recovery(const RecoveryConfig& cfg) {
  if (cfg.heartbeat_period <= SimTime::zero()) {
    return Status(StatusCode::InvalidArgument,
                  "--heartbeat-ms must be positive, got " +
                      std::to_string(cfg.heartbeat_period.to_ms()) + " ms");
  }
  if (cfg.detection_deadline < cfg.heartbeat_period + cfg.heartbeat_period) {
    return Status(
        StatusCode::InvalidArgument,
        "--detect-ms (" + std::to_string(cfg.detection_deadline.to_ms()) +
            " ms) must be at least twice --heartbeat-ms (" +
            std::to_string(cfg.heartbeat_period.to_ms()) +
            " ms), or one late heartbeat is declared a core death");
  }
  return Status();
}

const char* gray_policy_name(GrayPolicy policy) {
  switch (policy) {
    case GrayPolicy::Off: return "off";
    case GrayPolicy::Dvfs: return "dvfs";
    case GrayPolicy::Migrate: return "migrate";
    case GrayPolicy::Rebalance: return "rebalance";
  }
  return "?";
}

Status parse_gray_policy(const std::string& text, GrayPolicy* out) {
  if (text == "off") {
    *out = GrayPolicy::Off;
  } else if (text == "dvfs") {
    *out = GrayPolicy::Dvfs;
  } else if (text == "migrate") {
    *out = GrayPolicy::Migrate;
  } else if (text == "rebalance") {
    *out = GrayPolicy::Rebalance;
  } else {
    return Status(StatusCode::InvalidArgument,
                  "--gray-policy must be off|dvfs|migrate|rebalance, got '" +
                      text + "'");
  }
  return Status();
}

Status validate_gray(const GrayConfig& cfg) {
  if (!cfg.enabled()) return Status();
  if (cfg.detect_factor <= 1.0) {
    return Status(StatusCode::InvalidArgument,
                  "--gray-detect-factor must exceed 1 (the median core sits "
                  "exactly on a factor-1 threshold), got " +
                      std::to_string(cfg.detect_factor));
  }
  if (cfg.detect_windows < 1) {
    return Status(StatusCode::InvalidArgument,
                  "--gray-detect-windows must be positive, got " +
                      std::to_string(cfg.detect_windows));
  }
  return Status();
}

Supervisor::Supervisor(SccChip& chip, const FaultInjector& fault,
                       RecoveryConfig cfg, CoreId monitor_core)
    : chip_(chip), fault_(fault), cfg_(cfg), monitor_(monitor_core) {
  SCCPIPE_CHECK(chip.topology().valid_core(monitor_core));
  SCCPIPE_CHECK(cfg_.heartbeat_period > SimTime::zero());
  SCCPIPE_CHECK_MSG(cfg_.detection_deadline > cfg_.heartbeat_period,
                    "detection deadline must exceed the heartbeat period or "
                    "every core is declared dead at the first tick");
}

Supervisor::Watched* Supervisor::find(CoreId core) {
  const auto it = std::lower_bound(
      watched_.begin(), watched_.end(), core,
      [](const Watched& w, CoreId c) { return w.core < c; });
  if (it == watched_.end() || it->core != core) return nullptr;
  return &*it;
}

const Supervisor::Watched* Supervisor::find(CoreId core) const {
  const auto it = std::lower_bound(
      watched_.begin(), watched_.end(), core,
      [](const Watched& w, CoreId c) { return w.core < c; });
  if (it == watched_.end() || it->core != core) return nullptr;
  return &*it;
}

void Supervisor::enable_gray(GrayConfig cfg, GrayHandler on_gray) {
  SCCPIPE_CHECK(!started_);
  SCCPIPE_CHECK(validate_gray(cfg).ok());
  SCCPIPE_CHECK(cfg.enabled());
  SCCPIPE_CHECK(on_gray != nullptr);
  gray_cfg_ = cfg;
  on_gray_ = std::move(on_gray);
}

void Supervisor::record_service(CoreId core, double service_ms) {
  if (!gray_cfg_.enabled()) return;
  Watched* w = find(core);
  if (w == nullptr) return;  // producer/transfer/already-unwatched cores
  w->window_ms.push_back(service_ms);
}

void Supervisor::reset_gray(CoreId core) {
  const auto it =
      std::lower_bound(gray_flagged_.begin(), gray_flagged_.end(), core);
  if (it != gray_flagged_.end() && *it == core) gray_flagged_.erase(it);
  Watched* w = find(core);
  if (w == nullptr) return;
  w->window_ms.clear();
  w->baseline_ms = 0.0;
  w->streak = 0;
  w->flagged = false;
}

bool Supervisor::gray_flagged(CoreId core) const {
  return std::binary_search(gray_flagged_.begin(), gray_flagged_.end(), core);
}

void Supervisor::watch(CoreId core) {
  SCCPIPE_CHECK(chip_.topology().valid_core(core));
  if (find(core) != nullptr) return;
  const auto it = std::lower_bound(
      watched_.begin(), watched_.end(), core,
      [](const Watched& w, CoreId c) { return w.core < c; });
  watched_.insert(it, Watched{core, chip_.sim().now()});
}

void Supervisor::unwatch(CoreId core) {
  const auto it = std::lower_bound(
      watched_.begin(), watched_.end(), core,
      [](const Watched& w, CoreId c) { return w.core < c; });
  if (it != watched_.end() && it->core == core) watched_.erase(it);
}

void Supervisor::start(FailureHandler on_failure) {
  SCCPIPE_CHECK(!started_);
  SCCPIPE_CHECK(on_failure != nullptr);
  started_ = true;
  on_failure_ = std::move(on_failure);
  tick_event_ =
      chip_.sim().schedule_after(cfg_.heartbeat_period, [this] { tick(); });
}

void Supervisor::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Cancel rather than orphan the pending tick: the simulator runs until
  // its queue drains, and a self-rescheduling watchdog would keep an
  // otherwise-finished run alive forever.
  chip_.sim().cancel(tick_event_);
}

void Supervisor::tick() {
  if (stopped_) return;
  const SimTime now = chip_.sim().now();
  const MeshTopology& topo = chip_.topology();

  // Nobody watches the watcher from on-chip: if the monitor core itself
  // fail-stops, the host run driver is what notices the collector going
  // silent. Model that as an immediate verdict against the monitor and
  // stop ticking — with the assembly point gone there is no recovery.
  if (fault_.core_failed(monitor_, now)) {
    stopped_ = true;
    on_failure_(monitor_, now);
    return;
  }

  // Emit first, in core order: every live watched core pushes one liveness
  // datagram through the mesh towards the monitor. The transfer advances
  // real mesh contention state, so monitoring is not free. last_heartbeat
  // records the *arrival* instant; it may lie in the future, which the
  // deadline comparison below handles naturally (now - future < deadline).
  for (Watched& w : watched_) {
    if (fault_.core_failed(w.core, now)) continue;  // the silence itself
    if (w.core == monitor_) {
      w.last_heartbeat = now;  // the monitor trusts its own pulse
      continue;
    }
    const SimTime arrival =
        chip_.mesh().transfer(now, topo.core_coord(w.core),
                              topo.core_coord(monitor_), cfg_.heartbeat_bytes);
    w.last_heartbeat = max(w.last_heartbeat, arrival);
    ++heartbeats_;
    heartbeat_bytes_ += cfg_.heartbeat_bytes;
  }

  // Gray-failure scan: close this tick's observation window on every
  // watched core and flag stragglers. Runs before the silence scan so a
  // core that is both slow and newly dead resolves as a fail-stop this
  // same tick (the walkthrough merges the two into one incident).
  if (gray_cfg_.enabled()) {
    evaluate_gray(now);
    if (stopped_) return;  // a gray handler may abort the run
  }

  // Watchdog scan: declare anything silent past the deadline. Collect
  // first, then fire — the handler mutates the watched set (unwatch,
  // watch of the spare).
  std::vector<CoreId> dead;
  for (const Watched& w : watched_) {
    if (now - w.last_heartbeat > cfg_.detection_deadline) {
      dead.push_back(w.core);
    }
  }
  for (const CoreId core : dead) {
    unwatch(core);
    on_failure_(core, now);
    if (stopped_) return;  // the handler may abort the run
  }

  tick_event_ =
      chip_.sim().schedule_after(cfg_.heartbeat_period, [this] { tick(); });
}

void Supervisor::evaluate_gray(SimTime now) {
  // EWMA smoothing of the per-core baseline. Deliberately sluggish: the
  // baseline must remember the core's healthy service time long enough for
  // detect_windows consecutive comparisons to see the contrast.
  constexpr double kAlpha = 0.2;

  // Pass 1 (core-id order — watched_ is sorted): close each window, seed
  // or fetch the baseline, and compute the normalized service time.
  struct Eval {
    std::size_t idx;  ///< into watched_
    double p50;
    double norm;
  };
  std::vector<Eval> evals;
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    Watched& w = watched_[i];
    if (w.window_ms.empty()) continue;  // stage saw no strip this window
    if (fault_.core_failed(w.core, now)) continue;  // silence scan's case
    window_hist_.clear();
    for (const double ms : w.window_ms) window_hist_.add(ms);
    const double p50 = window_hist_.quantile(0.5);
    if (w.baseline_ms <= 0.0) w.baseline_ms = p50;  // first window seeds
    evals.push_back(Eval{i, p50, p50 / w.baseline_ms});
    ++gray_windows_;
  }
  if (evals.empty()) return;

  // Median of the normalized service times across reporting cores. A
  // uniform slowdown moves every norm — and so the median — by the same
  // multiple, which is exactly why it never flags anyone.
  window_hist_.clear();
  for (const Eval& e : evals) window_hist_.add(e.norm);
  const double median_norm = window_hist_.quantile(0.5);
  const double threshold = gray_cfg_.detect_factor * median_norm;

  // Pass 2: streak accounting and baseline maintenance. Evidence for any
  // flag is captured by value first; handlers run only after the scan (they
  // mutate watched_, invalidating indices).
  struct Flag {
    CoreId core;
    GrayEvidence ev;
  };
  std::vector<Flag> flags;
  for (const Eval& e : evals) {
    Watched& w = watched_[e.idx];
    const bool over = e.norm > threshold;
    if (!over) {
      w.streak = 0;
      if (w.flagged) {
        w.flagged = false;
        const auto it = std::lower_bound(gray_flagged_.begin(),
                                         gray_flagged_.end(), w.core);
        if (it != gray_flagged_.end() && *it == w.core) {
          gray_flagged_.erase(it);
        }
      }
      // Only unsuspicious windows feed the EWMA: a straggler must not
      // launder its slowdown into its own baseline and fade from view.
      w.baseline_ms = kAlpha * e.p50 + (1.0 - kAlpha) * w.baseline_ms;
    } else if (++w.streak >= gray_cfg_.detect_windows) {
      w.streak = 0;  // re-arm: an uncured straggler flags again K windows on
      if (!w.flagged) {
        w.flagged = true;
        const auto it = std::lower_bound(gray_flagged_.begin(),
                                         gray_flagged_.end(), w.core);
        if (it == gray_flagged_.end() || *it != w.core) {
          gray_flagged_.insert(it, w.core);
        }
      }
      GrayEvidence ev;
      ev.window_p50_ms = e.p50;
      ev.baseline_ms = w.baseline_ms;
      ev.norm = e.norm;
      ev.median_norm = median_norm;
      ev.streak = gray_cfg_.detect_windows;
      flags.push_back(Flag{w.core, ev});
    }
    w.window_ms.clear();
  }
  // Windows of cores that reported nothing stay open (window_ms already
  // empty); evaluated windows were cleared above.

  for (const Flag& f : flags) {
    on_gray_(f.core, now, f.ev);
    if (stopped_) return;
  }
}

void Supervisor::save_state(snapshot::Writer& w) const {
  w.u32(stopped_ ? 1 : 0);
  w.u64(heartbeats_);
  w.f64(heartbeat_bytes_);
  w.u64(watched_.size());
  for (const Watched& watched : watched_) {
    w.i64(watched.core);
    w.i64(watched.last_heartbeat.to_ns());
  }
  // Gray-detector block, present exactly when the detector is configured —
  // the config is part of the run setup, so save and restore agree on the
  // layout, and a gray-off snapshot stays byte-identical to the pre-gray
  // format.
  if (!gray_cfg_.enabled()) return;
  w.u64(gray_windows_);
  for (const Watched& watched : watched_) {
    w.f64(watched.baseline_ms);
    w.i64(watched.streak);
    w.u32(watched.flagged ? 1 : 0);
    w.u64(watched.window_ms.size());
    for (const double ms : watched.window_ms) w.f64(ms);
  }
  w.u64(gray_flagged_.size());
  for (const CoreId c : gray_flagged_) w.i64(c);
}

Status Supervisor::restore_state(snapshot::Reader& r) {
  std::uint32_t stopped = 0;
  std::uint64_t heartbeats = 0, n = 0;
  double bytes = 0.0;
  if (Status s = r.u32(&stopped); !s.ok()) return s;
  if (Status s = r.u64(&heartbeats); !s.ok()) return s;
  if (Status s = r.f64(&bytes); !s.ok()) return s;
  if (Status s = r.u64(&n); !s.ok()) return s;
  std::vector<Watched> watched;
  watched.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t core = 0, last_ns = 0;
    if (Status s = r.i64(&core); !s.ok()) return s;
    if (Status s = r.i64(&last_ns); !s.ok()) return s;
    watched.push_back(
        Watched{static_cast<CoreId>(core), SimTime::ns(last_ns)});
  }
  std::uint64_t gray_windows = 0;
  std::vector<CoreId> gray_flagged;
  if (gray_cfg_.enabled()) {
    if (Status s = r.u64(&gray_windows); !s.ok()) return s;
    for (Watched& watched : watched) {
      std::int64_t streak = 0;
      std::uint32_t flagged = 0;
      std::uint64_t samples = 0;
      if (Status s = r.f64(&watched.baseline_ms); !s.ok()) return s;
      if (Status s = r.i64(&streak); !s.ok()) return s;
      if (Status s = r.u32(&flagged); !s.ok()) return s;
      if (Status s = r.u64(&samples); !s.ok()) return s;
      watched.streak = static_cast<int>(streak);
      watched.flagged = flagged != 0;
      watched.window_ms.resize(static_cast<std::size_t>(samples));
      for (double& ms : watched.window_ms) {
        if (Status s = r.f64(&ms); !s.ok()) return s;
      }
    }
    std::uint64_t n_flagged = 0;
    if (Status s = r.u64(&n_flagged); !s.ok()) return s;
    gray_flagged.reserve(static_cast<std::size_t>(n_flagged));
    for (std::uint64_t i = 0; i < n_flagged; ++i) {
      std::int64_t c = 0;
      if (Status s = r.i64(&c); !s.ok()) return s;
      gray_flagged.push_back(static_cast<CoreId>(c));
    }
  }
  stopped_ = stopped != 0;
  heartbeats_ = heartbeats;
  heartbeat_bytes_ = bytes;
  watched_ = std::move(watched);
  gray_windows_ = gray_windows;
  gray_flagged_ = std::move(gray_flagged);
  return Status();
}

}  // namespace sccpipe
