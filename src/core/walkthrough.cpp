#include "sccpipe/core/walkthrough.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "sccpipe/core/run_snapshot.hpp"
#include "sccpipe/filters/filters.hpp"
#include "sccpipe/noc/fabric.hpp"
#include "sccpipe/noc/mesh.hpp"
#include "sccpipe/noc/partition.hpp"
#include "sccpipe/sim/parallel_sim.hpp"
#include "sccpipe/support/check.hpp"
#include "sccpipe/support/snapshot.hpp"

namespace sccpipe {

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::SingleCore: return "single-core";
    case Scenario::SingleRenderer: return "1-renderer";
    case Scenario::RendererPerPipeline: return "n-renderers";
    case Scenario::HostRenderer: return "host-renderer";
  }
  return "?";
}

const StageReport* RunResult::stage(StageKind kind, int pipeline) const {
  for (const StageReport& r : stages) {
    if (r.kind == kind && (r.pipeline == pipeline || r.pipeline < 0)) {
      return &r;
    }
  }
  return nullptr;
}

SimTime SingleCoreBreakdown::stage_time(StageKind kind) const {
  SimTime t = SimTime::zero();
  for (const auto& [k, v] : per_stage) {
    if (k == kind) t += v;
  }
  return t;
}

namespace {

constexpr StageKind kFilterChain[] = {StageKind::Sepia, StageKind::Blur,
                                      StageKind::Scratch, StageKind::Flicker,
                                      StageKind::Swap};
constexpr int kFilterCount = 5;

/// Reference cycles the host spends rendering a whole frame: the Xeon's
/// SIMD advantage discounts the raster loop, and its caches/prefetchers cut
/// the per-access walk cost. Calibrated so the MCPC renders the 400-frame
/// walkthrough in ~3.3 s of busy time (§VI-B).
double host_render_cycles(const Calibration& cal, const RenderLoad& load) {
  const StageWork w = render_work(cal, load, /*adjust_frustum=*/false);
  return w.cycles + 100.0 * w.walk_accesses;
}

/// Mesh layout of the platform the run will build. The partition and the
/// fabric's transit calibration must describe the *actual* chip — the
/// cluster node's mesh is 8 tiles wide, not the 6-wide SCC default — or
/// located delivery times (and hence the CSV contract) would depend on
/// which platform's geometry happened to seed the partition.
MeshLayout platform_layout(const RunConfig& cfg) {
  return cfg.platform == PlatformKind::Scc
             ? ChipConfig::scc().mesh_layout
             : ChipConfig::mogon_node().mesh_layout;
}

/// Per-hop router latency of the platform — the fabric's transit unit and
/// the engine's scalar lookahead floor.
SimTime platform_router_latency(const RunConfig& cfg) {
  return cfg.platform == PlatformKind::Scc
             ? ChipConfig::scc().mesh_timing.router_latency
             : ChipConfig::mogon_node().mesh_timing.router_latency;
}

/// Per-region event-queue reservations derived from the partition's
/// occupancy instead of one global constant. A region's steady-state
/// pending load scales with the tiles it hosts (each tile keeps a bounded
/// set of in-flight NoC transfers, memory walks and compute
/// continuations); the host region additionally carries the frame
/// source/sink, power sampling and recovery machinery. The constants are
/// calibrated against measured region_peak_events of the walkthrough
/// suites (single-digit peaks per region) with an order of magnitude of
/// headroom, so a steady-state run never grows a region queue —
/// region_allocs == 0 is asserted at sim-jobs 1/4/8 by
/// tests/parallel_sim_test.cpp — while reserving far less than the old
/// flat kDefaultSizeHint did per region.
std::vector<std::size_t> region_size_hints(const MeshPartition& partition) {
  constexpr std::size_t kEventsPerTile = 16;
  constexpr std::size_t kRegionBaseEvents = 128;
  constexpr std::size_t kHostExtraEvents = 512;
  std::vector<std::size_t> hints(static_cast<std::size_t>(partition.regions()));
  for (int r = 0; r < partition.regions(); ++r) {
    hints[static_cast<std::size_t>(r)] =
        kRegionBaseEvents +
        kEventsPerTile * static_cast<std::size_t>(partition.tiles_in_region(r));
  }
  hints[static_cast<std::size_t>(partition.host_region())] += kHostExtraEvents;
  return hints;
}

void apply_stage_functional(StageKind kind, Image& img, int frame,
                            std::uint64_t seed, int max_scratches) {
  switch (kind) {
    case StageKind::Sepia:
      apply_sepia(img);
      break;
    case StageKind::Blur:
      apply_blur(img);
      break;
    case StageKind::Scratch:
      apply_scratches(img, scratch_params_for_frame(seed, frame, img.width(),
                                                    max_scratches));
      break;
    case StageKind::Flicker:
      apply_flicker(img, flicker_params_for_frame(seed, frame));
      break;
    case StageKind::Swap:
      apply_vflip(img);
      break;
    default:
      SCCPIPE_CHECK_MSG(false, "not a functional filter stage");
  }
}

/// One timed walkthrough run. Owns the simulator, the platform models and
/// all stage actors; run() drives the event loop to completion.
class WalkthroughSim {
 public:
  WalkthroughSim(const SceneBundle& scene, const WorkloadTrace& trace,
                 const RunConfig& cfg)
      : scene_(scene),
        trace_(trace),
        cfg_(cfg),
        partition_(platform_layout(cfg), std::max(1, cfg.sim_jobs)),
        engine_(partition_.regions(), std::max(1, cfg.sim_jobs),
                partition_.lookahead(platform_router_latency(cfg)),
                region_size_hints(partition_)),
        fabric_(engine_, partition_, platform_router_latency(cfg)),
        sim_(engine_.region(partition_.host_region())) {
    SCCPIPE_CHECK_MSG(cfg.scenario != Scenario::SingleCore,
                      "use run_single_core() for the one-core baseline");
    SCCPIPE_CHECK(cfg.pipelines >= 1);
    SCCPIPE_CHECK_MSG(trace.max_k() >= cfg.pipelines,
                      "workload trace built for max_k=" << trace.max_k());
    SCCPIPE_CHECK_MSG(trace.frame_count() >= scene.frame_count(),
                      "trace shorter than the walkthrough");
    if (cfg.overload.enabled()) {
      SCCPIPE_CHECK_MSG(cfg.scenario == Scenario::HostRenderer,
                        "overload controls govern the host feed path; only "
                        "the host-renderer scenario has one");
      SCCPIPE_CHECK_MSG(cfg.fault.core_failures.empty(),
                        "overload mode cannot be combined with planned core "
                        "failures (the supervisor rebuild assumes rendezvous "
                        "channels)");
      overload_mode_ = true;
      breaker_ = std::make_unique<CircuitBreaker>(
          cfg.overload.breaker_threshold, cfg.overload.breaker_cooldown);
      arrival_at_.assign(static_cast<std::size_t>(frames_total()),
                         SimTime::zero());
    }
    if (cfg.gray.enabled()) {
      const Status gs = validate_gray(cfg.gray);
      SCCPIPE_CHECK_MSG(gs.ok(), gs.message());
      SCCPIPE_CHECK_MSG(!cfg.overload.enabled(),
                        "gray-failure mitigation cannot be combined with the "
                        "overload data plane (the gray ledger assumes the "
                        "closed-loop frame accounting)");
    }
    build_platform();
    // Unconfine the chip: timed work (compute, DRAM streams, memory walks,
    // mid-run DVFS) now executes at the region owning its tile. The fabric
    // is attached at every sim_jobs value — with one region every located
    // post lands on the same queue, so jobs=1 stays the serial reference
    // the byte-identity contract diffs against.
    chip_->attach_fabric(&fabric_);
    build_placement();
    apply_dvfs();
    build_channels_and_stages();
    build_supervisor();
    crash_plan_ = cfg_.fault.crashes;
    std::sort(crash_plan_.begin(), crash_plan_.end());
    config_fp_ = run_config_fingerprint(cfg_);
  }

  RunResult run() {
    // Cores are allocated before the resume gate: collect() and the chip
    // teardown both expect an allocated placement even when the resume
    // snapshot turns out to be unusable and the engine never runs.
    allocate_cores();
    if (cfg_.checkpoint.resume && !load_resume()) return collect();
    // Arm the first planned crash this attempt has not consumed. The crash
    // is a *process* fate executed here in the driver: dispatch simply
    // stops at the armed instant (events at exactly T still run, matching
    // run_until semantics), as if the host process had been killed. It
    // never touches the fault layer, so the dispatched prefix — and every
    // checkpoint written before T — is byte-identical to the uninterrupted
    // run's.
    const SimTime crash_at =
        crashes_disarmed_ < crash_plan_.size()
            ? crash_plan_[crashes_disarmed_]
            : SimTime::max();
    if (supervisor_) {
      supervisor_->start([this](CoreId core, SimTime detected_at) {
        handle_core_failure(core, detected_at);
      });
    }
    start_producer();
    start_filter_stages();
    start_transfer();
    on_run_start();
    if (crash_at == SimTime::max()) {
      engine_.run();
    } else {
      engine_.run_until(crash_at);
      // Work left beyond the crash instant means the run was cut short; a
      // walkthrough that legitimately finished before T drains to empty
      // and never counts as crashed.
      if (engine_.pending() > 0) {
        crashed_ = true;
        crashed_at_ = crash_at;
      }
    }
    if (const Status ws = engine_.watchdog_status(); !ws.ok()) {
      // The engine refused to hang; surface the typed verdict as the run's
      // failure so callers see DeadlineExceeded, not a mysterious short run.
      on_fault("parallel engine watchdog", ws);
    }
    return collect();
  }

 private:
  // ------------------------------------------------------------ platform
  void build_platform() {
    ChipConfig chip_cfg;
    if (cfg_.platform == PlatformKind::Scc) {
      chip_cfg = ChipConfig::scc();
      viewer_link_ = HostLinkConfig::mcpc();
      producer_link_ = HostLinkConfig::mcpc();
      if (cfg_.scenario == Scenario::HostRenderer) {
        host_ = std::make_unique<HostCpu>(sim_, HostCpuConfig::mcpc());
      }
    } else {
      chip_cfg = ChipConfig::mogon_node();
      viewer_link_ = HostLinkConfig::cluster();
      producer_link_ = HostLinkConfig::cluster_external();
      if (cfg_.scenario == Scenario::HostRenderer) {
        host_ = std::make_unique<HostCpu>(sim_, HostCpuConfig::cluster_node());
      }
    }
    const PlatformOverrides& ov = cfg_.overrides;
    if (ov.link_bandwidth_bytes_per_sec > 0.0) {
      chip_cfg.mesh_timing.link_bandwidth_bytes_per_sec =
          ov.link_bandwidth_bytes_per_sec;
    }
    if (ov.mc_bandwidth_bytes_per_sec > 0.0) {
      chip_cfg.memory.mc_bandwidth_bytes_per_sec =
          ov.mc_bandwidth_bytes_per_sec;
    }
    if (ov.core_copy_rate_bytes_per_sec > 0.0) {
      chip_cfg.copy_rate_bytes_per_sec = ov.core_copy_rate_bytes_per_sec;
    }
    if (ov.quad_tile_voltage_domains) {
      chip_cfg.voltage_granularity = VoltageGranularity::PerQuadTileDomain;
    }
    chip_ = std::make_unique<SccChip>(sim_, chip_cfg);
    rcce_ = std::make_unique<RcceComm>(*chip_, cfg_.rcce);

    // Fault layer: only attached when the plan enables something, so a
    // zero-fault run is bit-identical to one without the layer at all.
    if (cfg_.fault.enabled()) {
      const MeshTopology& topo = chip_->topology();
      fault_ = std::make_unique<FaultInjector>(cfg_.fault,
                                               topo.link_index_count(),
                                               topo.tile_count(),
                                               topo.mc_count(),
                                               topo.layout().width);
      chip_->mesh().set_fault_injector(fault_.get());
      chip_->memory().set_fault_injector(fault_.get());
      chip_->set_fault_injector(fault_.get());
      rcce_->set_fault_injector(fault_.get());
      for (const SlowCore& sc : cfg_.fault.slow_cores) {
        SCCPIPE_CHECK_MSG(topo.valid_core(sc.core),
                          "slow-core targets core " << sc.core
                              << " which the chip does not have");
      }
      for (const StallSpec& ss : cfg_.fault.stalls) {
        SCCPIPE_CHECK_MSG(topo.valid_core(ss.core),
                          "intermittent-stall targets core " << ss.core
                              << " which the chip does not have");
      }
    }
  }

  void build_placement() {
    PlacementRequest req;
    req.pipelines = cfg_.pipelines;
    req.stages_per_pipeline =
        kFilterCount +
        (cfg_.scenario == Scenario::RendererPerPipeline ? 1 : 0);
    req.needs_producer = cfg_.scenario == Scenario::SingleRenderer ||
                         cfg_.scenario == Scenario::HostRenderer;
    req.isolate_blur_tile = cfg_.isolate_blur_tile;
    placement_ = make_placement(chip_->topology(), cfg_.arrangement, req);
  }

  void apply_dvfs() {
    if (cfg_.blur_mhz > 0) {
      for (const auto& pl : placement_.pipeline_cores) {
        chip_->set_core_frequency(blur_core_of(pl), cfg_.blur_mhz);
      }
    }
    if (cfg_.tail_mhz > 0) {
      for (const auto& pl : placement_.pipeline_cores) {
        // Stages strictly after blur: scratch, flicker, swap.
        const std::size_t blur_idx = pl.size() - 4;
        for (std::size_t s = blur_idx + 1; s < pl.size(); ++s) {
          chip_->set_core_frequency(pl[s], cfg_.tail_mhz);
        }
      }
      chip_->set_core_frequency(placement_.transfer, cfg_.tail_mhz);
    }
  }

  CoreId blur_core_of(const std::vector<CoreId>& pipeline_cores) const {
    return pipeline_cores[pipeline_cores.size() - 4];
  }

  /// The Supervisor exists only when the plan schedules a core failure or
  /// the gray detector is armed, so every other configuration — including
  /// PR-1 drop/delay fault runs — takes exactly the code paths it did
  /// before this feature existed.
  void build_supervisor() {
    const bool core_faults = fault_ != nullptr && fault_->has_core_failures();
    if (!core_faults && !cfg_.gray.enabled()) return;
    const MeshTopology& topo = chip_->topology();
    for (const CoreFailure& cf : cfg_.fault.core_failures) {
      SCCPIPE_CHECK_MSG(topo.valid_core(cf.core),
                        "core-fail targets core " << cf.core
                            << " which the chip does not have");
    }
    const FaultInjector* fi = fault_.get();
    if (fi == nullptr) {
      // Gray detector armed with no fault plan at all (the ablation's
      // no-fault baselines): the Supervisor still wants a fault view for
      // its death checks; hand it an inert one that reports no deaths.
      idle_fault_ = std::make_unique<FaultInjector>(
          FaultPlan{}, topo.link_index_count(), topo.tile_count(),
          topo.mc_count(), topo.layout().width);
      fi = idle_fault_.get();
    }
    supervisor_ = std::make_unique<Supervisor>(*chip_, *fi, cfg_.recovery,
                                               placement_.transfer);
    recovery_.enabled = true;
    spares_ = placement_.spare_cores;
    if (cfg_.recovery.max_spares >= 0 &&
        static_cast<int>(spares_.size()) > cfg_.recovery.max_spares) {
      spares_.resize(static_cast<std::size_t>(cfg_.recovery.max_spares));
    }
    const std::size_t k = static_cast<std::size_t>(cfg_.pipelines);
    cores_now_ = placement_.pipeline_cores;
    pipeline_alive_.assign(k, 1);
    pipeline_gen_.assign(k, 0);
    acked_.assign(k, -1);
    head_sent_.assign(k, -1);
    outstanding_.resize(k);
    replay_q_.resize(k);
    replay_active_.assign(k, 0);
    gray_drain_.assign(k, 0);
    if (cfg_.gray.enabled()) {
      pipe_weight_.assign(k, 1.0);
      supervisor_->enable_gray(
          cfg_.gray, [this](CoreId core, SimTime at, const GrayEvidence& ev) {
            handle_gray_flag(core, at, ev);
          });
    }
    for (const CoreId c : placement_.all_cores()) supervisor_->watch(c);
  }

  // --------------------------------------------------------- construction
  struct StageState {
    StageKind kind{};
    int pipeline = -1;
    CoreId core = -1;
    Channel* in = nullptr;
    Channel* out = nullptr;
    SampleSet wait_ms;
    int frames_done = 0;
    SimTime recv_posted = SimTime::zero();
    /// Bumped (via pipeline_gen_) each time the pipeline is rebuilt after a
    /// remap; callbacks captured under an older generation are orphaned.
    int gen = 0;
  };

  /// First transport error wins (records the failure headline); every
  /// error is kept for the per-stage fault report. The pump guards on
  /// failed_ stop new work, and the event loop then drains naturally —
  /// a faulted run ends, it never hangs.
  void on_fault(const std::string& where, const Status& status) {
    fault_errors_.push_back(where + ": " + status.to_string());
    if (failed_) return;
    failed_ = true;
    first_failure_ = status;
    first_failure_where_ = where;
    failed_at_ = sim_.now();
    // A failed run must still drain: without this the watchdog would keep
    // rescheduling itself and the event loop would never empty.
    if (supervisor_) supervisor_->stop();
  }

  /// Label a channel's transport errors with the hop they broke.
  Channel* watch(Channel* ch, std::string where) {
    ch->set_error_handler([this, where = std::move(where)](const Status& s) {
      on_fault(where, s);
    });
    return ch;
  }

  Channel* make_scc_channel(CoreId from, CoreId to, std::string where) {
    if (overload_mode_ && cfg_.overload.queue_depth > 0) {
      auto ch = std::make_unique<CreditedSccChannel>(
          *rcce_, from, to, cfg_.overload.queue_depth);
      credited_.push_back(ch.get());
      channels_.push_back(std::move(ch));
    } else {
      channels_.push_back(std::make_unique<SccChannel>(*rcce_, from, to));
    }
    return watch(channels_.back().get(), std::move(where));
  }

  void build_channels_and_stages() {
    const int k = cfg_.pipelines;

    // Viewer sink.
    auto viewer_ch = std::make_unique<ChipToViewerChannel>(
        *chip_, placement_.transfer, viewer_link_,
        [this](const FrameToken& tok, SimTime at) {
          frame_done_ms_.push_back(at.to_ms());
          if (overload_mode_) {
            latency_ms_.push_back(
                (at - arrival_at_[static_cast<std::size_t>(tok.frame)])
                    .to_ms());
          }
          if (cfg_.functional && tok.image) {
            out_frames_.push_back(*tok.image);
          }
          // Frame boundary: the one instant where host-side run state is
          // both quiescent enough and host-region-confined, so a snapshot
          // captured here is identical at every --sim-jobs value. Pure
          // host I/O — zero simulated cost, no CSV impact.
          if (cfg_.checkpoint.enabled()) on_frame_boundary(at);
        });
    if (fault_) viewer_ch->set_fault(fault_.get(), cfg_.rcce.retry);
    viewer_wire_ = viewer_ch.get();
    channels_.push_back(std::move(viewer_ch));
    viewer_ = watch(channels_.back().get(), "transfer->viewer link");

    // Producer feed into the chip (host scenarios only). With an ARQ
    // window configured the sliding-window transport replaces stop-and-wait
    // and abandoned frames are shed + ledgered instead of failing the run.
    if (cfg_.scenario == Scenario::HostRenderer) {
      if (overload_mode_ && cfg_.overload.window > 0) {
        ReliableLinkConfig rl;
        rl.link = producer_link_;
        rl.window = cfg_.overload.window;
        if (cfg_.overload.queue_depth > 0) {
          rl.queue_depth = cfg_.overload.queue_depth;
        }
        rl.retry = cfg_.rcce.retry;
        auto arq = std::make_unique<ReliableHostToChipChannel>(
            *host_, *chip_, placement_.producer, rl);
        if (fault_) arq->set_fault(fault_.get());
        arq->set_abandon_handler(
            [this](const FrameToken& tok, const Status& s) {
              // The frame was admitted and lost to the transport: ledger
              // it, count the failure toward the breaker, keep pumping.
              ++transport_tally_.shed_transport;
              fault_errors_.push_back("host->connect link: shed frame " +
                                      std::to_string(tok.frame) + ": " +
                                      s.to_string());
              breaker_->on_failure(sim_.now());
            });
        host_arq_ = arq.get();
        channels_.push_back(std::move(arq));
        host_in_ = watch(channels_.back().get(), "host->connect link");
      } else {
        auto host_ch = std::make_unique<HostToChipChannel>(
            *host_, *chip_, placement_.producer, producer_link_);
        if (fault_) host_ch->set_fault(fault_.get(), cfg_.rcce.retry);
        host_wire_ = host_ch.get();
        channels_.push_back(std::move(host_ch));
        host_in_ = watch(channels_.back().get(), "host->connect link");
      }
    }

    // Per-pipeline stages and channels.
    for (int p = 0; p < k; ++p) {
      const auto& cores = placement_.pipeline_cores[static_cast<std::size_t>(p)];
      const bool own_renderer =
          cfg_.scenario == Scenario::RendererPerPipeline;
      const std::size_t first_filter = own_renderer ? 1 : 0;
      SCCPIPE_CHECK(cores.size() == first_filter + kFilterCount);

      const std::string pl = "[p" + std::to_string(p) + "]";

      // Head channel: producer/renderer -> sepia.
      Channel* head;
      if (own_renderer) {
        head = make_scc_channel(cores[0], cores[1], "render->sepia" + pl);
        head_channels_.push_back(head);
      } else {
        head = make_scc_channel(placement_.producer, cores[0],
                                "producer->sepia" + pl);
        head_channels_.push_back(head);
      }

      Channel* in = head;
      for (int f = 0; f < kFilterCount; ++f) {
        const CoreId core = cores[first_filter + static_cast<std::size_t>(f)];
        Channel* out;
        if (f + 1 < kFilterCount) {
          const CoreId next =
              cores[first_filter + static_cast<std::size_t>(f) + 1];
          out = make_scc_channel(core, next,
                                 std::string(stage_name(kFilterChain[f])) +
                                     "->" + stage_name(kFilterChain[f + 1]) +
                                     pl);
        } else {
          out = make_scc_channel(core, placement_.transfer,
                                 "swap->transfer" + pl);
          tail_channels_.push_back(out);
        }
        auto st = std::make_unique<StageState>();
        st->kind = kFilterChain[f];
        st->pipeline = p;
        st->core = core;
        st->in = in;
        st->out = out;
        stages_.push_back(std::move(st));
        in = out;
      }
    }
  }

  void allocate_cores() {
    for (const CoreId c : placement_.all_cores()) chip_->allocate_core(c);
  }

  void release_cores() {
    for (const CoreId c : placement_.all_cores()) chip_->release_core(c);
    for (const CoreId c : remapped_cores_) chip_->release_core(c);
  }

  // --------------------------------------------------------------- actors
  int frames_total() const { return scene_.frame_count(); }
  int side() const { return scene_.image_side(); }
  double strip_bytes(StripRange r) const {
    return static_cast<double>(r.rows) * side() * 4.0;
  }

  /// Render cost with the platform's raster scaling applied (see
  /// ChipConfig::render_cycles_scale).
  StageWork scaled_render_work(const RenderLoad& load,
                               bool adjust_frustum) const {
    StageWork w = render_work(cfg_.cal, load, adjust_frustum);
    w.cycles *= chip_->config().render_cycles_scale;
    return w;
  }

  void start_producer() {
    switch (cfg_.scenario) {
      case Scenario::SingleRenderer:
        render_single_frame(0);
        break;
      case Scenario::RendererPerPipeline:
        for (int p = 0; p < cfg_.pipelines; ++p) {
          render_pipeline_frame(p, 0);
        }
        break;
      case Scenario::HostRenderer:
        if (overload_mode_ && cfg_.overload.offered_fps > 0.0) {
          schedule_arrival(0);
        } else {
          host_render_frame(0);
        }
        connect_loop();
        break;
      case Scenario::SingleCore:
        break;  // unreachable (checked in ctor)
    }
  }

  /// Scenario 1: one core renders the whole frame, splits it, feeds every
  /// pipeline, then starts the next frame.
  void render_single_frame(int frame) {
    if (failed_ || frame >= frames_total()) return;
    producer_span_start_ = sim_.now();
    const CoreId core = placement_.producer;
    const RenderLoad& load = trace_.load(frame, 1, 0);
    const StageWork w = scaled_render_work(load, /*adjust_frustum=*/false);
    chip_->memory_walk(core, w.walk_accesses, [this, frame, core, w] {
      chip_->compute(core, w.cycles, [this, frame, core, w] {
        chip_->dram_stream(core, w.dram_bytes, [this, frame] {
          std::shared_ptr<Image> whole;
          if (cfg_.functional) {
            whole = std::make_shared<Image>(
                scene_.renderer().render(scene_.path().view(frame)));
          }
          begin_distribution(frame, whole);
        });
      });
    });
  }

  /// Distribution entry point. Without a Supervisor this is exactly the
  /// old direct send_strips path; with one, the whole frame is first staged
  /// as a checkpoint in the producer's DRAM partition (so a remapped
  /// pipeline can replay its strips), and routing honours degraded
  /// pipelines.
  void begin_distribution(int frame, std::shared_ptr<Image> whole) {
    if (failed_) return;
    if (!supervisor_) {
      send_strips(frame, 0, whole);
      return;
    }
    std::vector<int> route;
    for (int q = 0; q < cfg_.pipelines; ++q) {
      if (pipeline_alive_[static_cast<std::size_t>(q)]) route.push_back(q);
    }
    if (route.empty()) {
      on_fault("producer",
               Status(StatusCode::Unavailable,
                      "every pipeline has failed; no cores left to route "
                      "frames through"));
      return;
    }
    frame_routes_[frame] = std::move(route);
    if (gray_weighted_) {
      // Rebalanced run: snap this frame's weighted split now, so a
      // rebalance landing mid-distribution can never tear one frame's
      // strips (the split must be consistent across all of its slots).
      const std::vector<int>& rt = frame_routes_[frame];
      std::vector<double> wts;
      wts.reserve(rt.size());
      for (const int q : rt) {
        wts.push_back(pipe_weight_[static_cast<std::size_t>(q)]);
      }
      frame_strips_[frame] = divide_rows_weighted(side(), wts);
    }
    dist_active_ = true;
    dist_frame_ = frame;
    dist_slot_ = 0;
    dist_image_ = whole;
    const double frame_bytes =
        static_cast<double>(side()) * static_cast<double>(side()) * 4.0;
    ++recovery_.checkpoint_writes;
    recovery_.checkpoint_bytes += frame_bytes;
    chip_->dram_stream(placement_.producer, frame_bytes,
                       [this, frame, whole] {
                         if (failed_) return;
                         send_strips_routed(frame, 0, whole);
                       });
    // The transfer stage may have been stalled waiting to learn this
    // frame's route.
    if (transfer_deferred_) transfer_begin_frame();
  }

  /// Sequentially hand strip s of \p frame to pipeline s (scenario 1 and
  /// the connect stage of scenario 3 share this).
  void send_strips(int frame, int s, std::shared_ptr<Image> whole) {
    if (failed_) return;
    if (s >= cfg_.pipelines) {
      // Frame fully distributed; produce the next one.
      if (cfg_.scenario == Scenario::SingleRenderer) {
        record_span(placement_.producer, StageKind::Render, frame, "process",
                    producer_span_start_, sim_.now());
        render_single_frame(frame + 1);
      } else {
        record_span(placement_.producer, StageKind::Connect, frame, "process",
                    producer_span_start_, sim_.now());
        connect_loop();
      }
      return;
    }
    const auto strips = divide_rows(side(), cfg_.pipelines);
    FrameToken tok;
    tok.frame = frame;
    tok.strip = strips[static_cast<std::size_t>(s)];
    tok.bytes = strip_bytes(tok.strip);
    if (whole) tok.image = std::make_shared<Image>(whole->strip(tok.strip));
    head_channels_[static_cast<std::size_t>(s)]->send(
        std::move(tok), [this, frame, s, whole] {
          send_strips(frame, s + 1, whole);
        });
  }

  /// Supervisor-mode distribution: slot \p s indexes the frame's *route*
  /// (the pipelines alive when distribution began), and the frame is split
  /// across exactly those pipelines — a degraded run re-splits subsequent
  /// frames across the survivors instead of leaving a hole.
  void send_strips_routed(int frame, int s, std::shared_ptr<Image> whole) {
    if (failed_) return;
    const std::vector<int>& route = frame_routes_[frame];
    // A pipeline that died after the route was snapped already marked this
    // frame lost; skip its slot and keep the chain moving.
    while (s < static_cast<int>(route.size()) &&
           !pipeline_alive_[static_cast<std::size_t>(
               route[static_cast<std::size_t>(s)])]) {
      ++s;
    }
    if (s >= static_cast<int>(route.size())) {
      dist_active_ = false;
      dist_pending_pipeline_ = -1;
      frame_strips_.erase(frame);
      if (cfg_.scenario == Scenario::SingleRenderer) {
        record_span(placement_.producer, StageKind::Render, frame, "process",
                    producer_span_start_, sim_.now());
        render_single_frame(frame + 1);
      } else {
        record_span(placement_.producer, StageKind::Connect, frame, "process",
                    producer_span_start_, sim_.now());
        connect_loop();
      }
      return;
    }
    const int p = route[static_cast<std::size_t>(s)];
    // A rebalanced frame uses the weighted split snapped when its route
    // was; all other frames take the equal split, byte-identical to the
    // pre-gray path.
    const auto sit = frame_strips_.find(frame);
    const auto strips =
        sit != frame_strips_.end()
            ? sit->second
            : divide_rows(side(), static_cast<int>(route.size()));
    FrameToken tok;
    tok.frame = frame;
    tok.strip = strips[static_cast<std::size_t>(s)];
    tok.bytes = strip_bytes(tok.strip);
    if (whole) tok.image = std::make_shared<Image>(whole->strip(tok.strip));
    record_outstanding(p, frame, tok);
    dist_slot_ = s;
    if (replay_active_[static_cast<std::size_t>(p)]) {
      // The pipeline is still replaying its checkpoint backlog. Queue
      // behind it (the pump reads the strip we just checkpointed) so the
      // head channel sees frames in order, and keep distributing.
      replay_q_[static_cast<std::size_t>(p)].push_back(frame);
      send_strips_routed(frame, s + 1, whole);
      return;
    }
    dist_pending_pipeline_ = p;
    const int gen = pipeline_gen_[static_cast<std::size_t>(p)];
    head_channels_[static_cast<std::size_t>(p)]->send(
        std::move(tok), [this, frame, s, whole, p, gen] {
          if (failed_) return;
          // A remap while this send was pending already resumed the chain.
          if (gen != pipeline_gen_[static_cast<std::size_t>(p)]) return;
          dist_pending_pipeline_ = -1;
          send_strips_routed(frame, s + 1, whole);
        });
  }

  /// Scenario 2: each pipeline's own renderer draws just its strip with an
  /// adjusted frustum.
  void render_pipeline_frame(int p, int frame) {
    if (failed_ || frame >= frames_total()) return;
    const auto& cores =
        supervisor_ ? cores_now_[static_cast<std::size_t>(p)]
                    : placement_.pipeline_cores[static_cast<std::size_t>(p)];
    const CoreId core = cores[0];
    const int gen =
        supervisor_ ? pipeline_gen_[static_cast<std::size_t>(p)] : 0;
    const RenderLoad& load = trace_.load(frame, cfg_.pipelines, p);
    const StageWork w = scaled_render_work(load, /*adjust_frustum=*/true);
    chip_->memory_walk(core, w.walk_accesses, [this, p, frame, core, w, gen] {
      chip_->compute(core, w.cycles, [this, p, frame, core, w, gen] {
        chip_->dram_stream(core, w.dram_bytes, [this, p, frame, core, gen] {
          if (supervisor_ &&
              (failed_ || gen != pipeline_gen_[static_cast<std::size_t>(p)])) {
            return;  // superseded by a remap; the rebuilt chain re-renders
          }
          const auto strips = divide_rows(side(), cfg_.pipelines);
          FrameToken tok;
          tok.frame = frame;
          tok.strip = strips[static_cast<std::size_t>(p)];
          tok.bytes = strip_bytes(tok.strip);
          if (cfg_.functional) {
            tok.image = std::make_shared<Image>(scene_.renderer().render_strip(
                scene_.path().view(frame), tok.strip));
          }
          if (!supervisor_) {
            head_channels_[static_cast<std::size_t>(p)]->send(
                std::move(tok),
                [this, p, frame] { render_pipeline_frame(p, frame + 1); });
            return;
          }
          // Checkpoint the rendered strip in the renderer's DRAM partition
          // before it enters the pipeline, so a remap can replay it
          // without re-rendering.
          record_outstanding(p, frame, tok);
          head_sent_[static_cast<std::size_t>(p)] = frame;
          ++recovery_.checkpoint_writes;
          recovery_.checkpoint_bytes += tok.bytes;
          chip_->dram_stream(
              core, tok.bytes, [this, p, frame, gen, tok = std::move(tok)]() mutable {
                if (failed_ ||
                    gen != pipeline_gen_[static_cast<std::size_t>(p)]) {
                  return;
                }
                head_channels_[static_cast<std::size_t>(p)]->send(
                    std::move(tok), [this, p, frame, gen] {
                      if (failed_ ||
                          gen !=
                              pipeline_gen_[static_cast<std::size_t>(p)]) {
                        return;
                      }
                      render_pipeline_frame(p, frame + 1);
                    });
              });
        });
      });
    });
  }

  /// Scenario 3 producer: the host renders whole frames and pushes them
  /// down the UDP path as fast as its credits allow.
  void host_render_frame(int frame) {
    if (failed_ || frame >= frames_total()) return;
    if (overload_mode_) {
      // Closed-loop overload run (ARQ/credits without an offered rate):
      // every frame is offered and admitted; only the transport can shed.
      ++transport_tally_.frames_offered;
      ++transport_tally_.frames_admitted;
      arrival_at_[static_cast<std::size_t>(frame)] = sim_.now();
    }
    const RenderLoad& load = trace_.load(frame, 1, 0);
    host_->compute(host_render_cycles(cfg_.cal, load), [this, frame] {
      FrameToken tok;
      tok.frame = frame;
      tok.strip = StripRange{0, side()};
      tok.bytes = static_cast<double>(side()) * side() * 4.0;
      if (cfg_.functional) {
        tok.image = std::make_shared<Image>(
            scene_.renderer().render(scene_.path().view(frame)));
      }
      host_in_->send(std::move(tok),
                     [this, frame] { host_render_frame(frame + 1); });
    });
  }

  // ---------------------------------------- overload-mode open-loop feeder
  //
  // Instead of the paper's closed loop (render the next frame only once the
  // link took the previous one), frames *arrive* on a fixed simulated-time
  // schedule at the offered rate, and the overload policy decides each
  // frame's fate: rejected while the breaker is open, evicted from the
  // bounded admission queue (stalest first), shed at dequeue once its
  // deadline has already passed, or rendered and pushed into the link.

  int feeder_depth() const {
    return cfg_.overload.queue_depth > 0 ? cfg_.overload.queue_depth : 8;
  }

  void schedule_arrival(int frame) {
    if (frame >= frames_total()) return;
    const SimTime at = SimTime::sec(frame / cfg_.overload.offered_fps);
    sim_.schedule_at(at, [this, frame] {
      frame_arrival(frame);
      schedule_arrival(frame + 1);
    });
  }

  void frame_arrival(int frame) {
    if (failed_) return;
    ++transport_tally_.frames_offered;
    arrival_at_[static_cast<std::size_t>(frame)] = sim_.now();
    if (!breaker_->allow(sim_.now())) {
      ++transport_tally_.shed_breaker;
      return;
    }
    if (static_cast<int>(feeder_q_.size()) >= feeder_depth()) {
      // Stalest-first: under a latency deadline the oldest queued frame is
      // the least likely to still be useful; evict it, admit the newcomer.
      ++transport_tally_.shed_admission;
      feeder_q_.pop_front();
    }
    feeder_q_.push_back(frame);
    max_feeder_q_ = std::max(max_feeder_q_,
                             static_cast<int>(feeder_q_.size()));
    if (!feeder_busy_) feeder_pump();
  }

  void feeder_pump() {
    if (failed_) {
      feeder_busy_ = false;
      return;
    }
    // Deadline-aware shedding at dequeue: don't spend host render cycles on
    // a frame that can no longer meet its deadline.
    const SimTime deadline = cfg_.overload.frame_deadline;
    while (!feeder_q_.empty() && !deadline.is_zero() &&
           sim_.now() -
                   arrival_at_[static_cast<std::size_t>(feeder_q_.front())] >
               deadline) {
      ++transport_tally_.frames_admitted;
      ++transport_tally_.shed_deadline;
      feeder_q_.pop_front();
    }
    if (feeder_q_.empty()) {
      feeder_busy_ = false;
      return;
    }
    feeder_busy_ = true;
    const int frame = feeder_q_.front();
    feeder_q_.pop_front();
    ++transport_tally_.frames_admitted;
    const RenderLoad& load = trace_.load(frame, 1, 0);
    host_->compute(host_render_cycles(cfg_.cal, load), [this, frame] {
      FrameToken tok;
      tok.frame = frame;
      tok.strip = StripRange{0, side()};
      tok.bytes = static_cast<double>(side()) * side() * 4.0;
      if (cfg_.functional) {
        tok.image = std::make_shared<Image>(
            scene_.renderer().render(scene_.path().view(frame)));
      }
      // The link's accept callback (window slot + credit held) paces the
      // feeder; the admission queue above absorbs the offered-rate burst.
      host_in_->send(std::move(tok), [this] { feeder_pump(); });
    });
  }

  /// Scenario 3 connect stage: receive a whole frame from the host, split
  /// it into strips (one read+write pass through its partition), feed the
  /// pipelines, repeat.
  void connect_loop() {
    if (failed_ || connect_frames_ >= frames_total()) return;
    const CoreId core = placement_.producer;
    connect_wait_posted_ = sim_.now();
    host_in_->recv([this, core](FrameToken tok, SimTime matched) {
      connect_wait_.add((matched - connect_wait_posted_).to_ms());
      producer_span_start_ = matched;
      ++connect_frames_;
      const int frame = tok.frame;
      if (overload_mode_) {
        // The ARQ delivers in order; shed frames leave holes in the frame
        // numbering but never reorder it.
        SCCPIPE_CHECK_MSG(frame >= connect_expected_,
                          "out-of-order delivery leaked past the reliable "
                          "link: frame " << frame << " after "
                                         << connect_expected_ - 1);
        connect_expected_ = frame + 1;
        breaker_->on_success(sim_.now());
      } else {
        SCCPIPE_CHECK(frame == connect_frames_ - 1);
      }
      chip_->dram_stream(core, 2.0 * tok.bytes,
                         [this, frame, img = tok.image] {
                           begin_distribution(frame, img);
                         });
    });
  }

  void start_filter_stages() {
    for (auto& st : stages_) arm_filter_stage(*st);
  }

  void record_span(CoreId core, StageKind kind, int frame,
                   const char* category, SimTime start, SimTime end) {
    if (!cfg_.timeline) return;
    std::string name = stage_name(kind);
    name += " f";
    name += std::to_string(frame);
    cfg_.timeline->add_span(core, name, category, start, end);
  }

  void arm_filter_stage(StageState& st) {
    if (failed_) return;
    // Generation guard: a remap rebuilds the pipeline's channels and bumps
    // the generation; callbacks captured under the old one fall silent
    // instead of feeding stale tokens into the new chain. Without a
    // Supervisor the generation never changes and these guards are inert,
    // keeping PR-1 behaviour bit-identical.
    const int gen = st.gen;
    st.recv_posted = sim_.now();
    st.in->recv([this, &st, gen](FrameToken tok, SimTime matched) {
      if (supervisor_ && (failed_ || st.gen != gen)) return;
      st.wait_ms.add((matched - st.recv_posted).to_ms());
      record_span(st.core, st.kind, tok.frame, "wait", st.recv_posted,
                  matched);
      const double pixels =
          static_cast<double>(tok.strip.rows) * static_cast<double>(side());
      const int scratches =
          scratch_params_for_frame(cfg_.seed, tok.frame, side(),
                                   cfg_.cal.max_scratches)
              .count;
      const StageWork w = filter_work(cfg_.cal, st.kind, pixels, scratches);
      chip_->compute(st.core, w.cycles, [this, &st, gen, w, matched,
                                         tok = std::move(tok)]() mutable {
        chip_->dram_stream(st.core, w.dram_bytes, [this, &st, gen, matched,
                                                   tok = std::move(tok)]() mutable {
          if (supervisor_ && (failed_ || st.gen != gen)) return;
          // Gray-detector service sample: rendezvous match to end of the
          // stage's own compute + DRAM work. Deliberately *before* the
          // downstream send, so a straggler's backpressure never inflates
          // its upstream neighbours' samples and mis-attributes the flag.
          // This callback has hopped back to the host region (chip chains
          // return to the caller's site), so the instant is partition-
          // invariant and the detector byte-identical at any --sim-jobs.
          if (supervisor_ && supervisor_->gray_enabled()) {
            note_service(st.core, (sim_.now() - matched).to_ms());
          }
          if (cfg_.functional && tok.image) {
            apply_stage_functional(st.kind, *tok.image, tok.frame, cfg_.seed,
                                   cfg_.cal.max_scratches);
          }
          const int frame = tok.frame;
          st.out->send(std::move(tok), [this, &st, gen, frame, matched] {
            if (supervisor_ && (failed_ || st.gen != gen)) return;
            record_span(st.core, st.kind, frame, "process", matched,
                        sim_.now());
            if (++st.frames_done < frames_total()) arm_filter_stage(st);
          });
        });
      });
    });
  }

  /// Transfer stage: gather one strip from every pipeline (in pipeline
  /// order, as RCCE receives are posted one at a time), assemble, send to
  /// the viewer.
  void start_transfer() {
    if (supervisor_) {
      transfer_frame_ = 0;
      transfer_begin_frame();
      return;
    }
    transfer_collect(0);
  }

  void transfer_collect(int s) {
    if (failed_) return;
    if (s == 0) {
      transfer_wait_posted_ = sim_.now();
      transfer_assembly_.clear();
      if (cfg_.functional) {
        transfer_image_ = std::make_shared<Image>(side(), side());
      }
    }
    if (s >= cfg_.pipelines) {
      transfer_assemble();
      return;
    }
    tail_channels_[static_cast<std::size_t>(s)]->recv(
        [this, s](FrameToken tok, SimTime matched) {
          if (s == 0) {
            transfer_wait_.add((matched - transfer_wait_posted_).to_ms());
          }
          if (cfg_.functional && tok.image) {
            // The swap stage flipped each strip; mirroring the strip order
            // completes the whole-frame vertical flip the viewer expects.
            const int dst_y0 = side() - tok.strip.y0 - tok.strip.rows;
            transfer_image_->paste(*tok.image, dst_y0);
          }
          transfer_assembly_.push_back(tok.frame);
          transfer_collect(s + 1);
        });
  }

  void transfer_assemble() {
    const CoreId core = placement_.transfer;
    const int frame = transfer_assembly_.front();
    for (const int f : transfer_assembly_) {
      SCCPIPE_CHECK_MSG(f == frame, "transfer stage mixed frames");
    }
    const double frame_bytes = static_cast<double>(side()) * side() * 4.0;
    const StageWork w = assemble_work(cfg_.cal, frame_bytes);
    chip_->compute(core, w.cycles, [this, core, w, frame, frame_bytes] {
      chip_->dram_stream(core, w.dram_bytes, [this, frame, frame_bytes] {
        FrameToken tok;
        tok.frame = frame;
        tok.strip = StripRange{0, side()};
        tok.bytes = frame_bytes;
        tok.image = transfer_image_;
        transfer_image_.reset();
        const SimTime span_start = sim_.now();
        viewer_->send(std::move(tok), [this, frame, span_start] {
          record_span(placement_.transfer, StageKind::Transfer, frame,
                      "process", span_start, sim_.now());
          if (frame + 1 < frames_total()) transfer_collect(0);
        });
      });
    });
  }

  // -------------------------------------- supervisor-mode transfer stage
  //
  // The legacy collector above assumes every pipeline delivers every frame;
  // under core failures a frame's strip set is the *route* recorded when
  // the frame was distributed, frames can be lost outright (degrade with
  // no spares), and a remapped pipeline redelivers through a rebuilt
  // channel. The ticket makes superseded recv callbacks inert.

  /// Frame route for the transfer stage: constant (all pipelines) in the
  /// per-pipeline-renderer scenario, per-frame snapshot otherwise.
  bool transfer_route_for(int frame, std::vector<int>* route) {
    if (cfg_.scenario == Scenario::RendererPerPipeline) {
      route->clear();
      for (int q = 0; q < cfg_.pipelines; ++q) route->push_back(q);
      return true;
    }
    const auto it = frame_routes_.find(frame);
    if (it == frame_routes_.end()) return false;
    *route = it->second;
    return true;
  }

  void transfer_begin_frame() {
    if (failed_) return;
    for (;;) {
      if (transfer_frame_ >= frames_total()) {
        supervisor_->stop();  // run is over; let the event queue drain
        return;
      }
      if (lost_frames_.count(transfer_frame_) != 0) {
        ++transfer_frame_;
        continue;
      }
      if (!transfer_route_for(transfer_frame_, &transfer_route_)) {
        // Route unknown: the frame has not been distributed yet. The
        // producer kicks us when it starts the frame.
        transfer_deferred_ = true;
        return;
      }
      break;
    }
    transfer_deferred_ = false;
    transfer_slot_ = 0;
    transfer_wait_posted_ = sim_.now();
    transfer_assembly_.clear();
    if (cfg_.functional) {
      transfer_image_ = std::make_shared<Image>(side(), side());
    }
    transfer_recv_slot();
  }

  void transfer_recv_slot() {
    if (failed_) return;
    if (transfer_slot_ >= static_cast<int>(transfer_route_.size())) {
      transfer_waiting_ = false;
      transfer_assemble_supervised();
      return;
    }
    const int p = transfer_route_[static_cast<std::size_t>(transfer_slot_)];
    const int ticket = ++transfer_ticket_seq_;
    transfer_ticket_ = ticket;
    transfer_waiting_ = true;
    tail_channels_[static_cast<std::size_t>(p)]->recv(
        [this, p, ticket, slot = transfer_slot_](FrameToken tok,
                                                 SimTime matched) {
          if (failed_) return;
          if (ticket != transfer_ticket_) return;  // superseded recv
          if (tok.frame != transfer_frame_) {
            // A strip of an earlier, since-lost frame draining out of the
            // pipeline (pairwise FIFO puts it ahead of the frame we want):
            // discard it and keep listening on the same slot.
            transfer_recv_slot();
            return;
          }
          transfer_waiting_ = false;
          ack_pipeline(p, tok.frame);
          if (slot == 0) {
            transfer_wait_.add((matched - transfer_wait_posted_).to_ms());
          }
          if (cfg_.functional && tok.image) {
            const int dst_y0 = side() - tok.strip.y0 - tok.strip.rows;
            transfer_image_->paste(*tok.image, dst_y0);
          }
          transfer_assembly_.push_back(tok.frame);
          ++transfer_slot_;
          transfer_recv_slot();
        });
  }

  void transfer_assemble_supervised() {
    const CoreId core = placement_.transfer;
    const int frame = transfer_frame_;
    for (const int f : transfer_assembly_) {
      SCCPIPE_CHECK_MSG(f == frame, "transfer stage mixed frames");
    }
    const double frame_bytes =
        static_cast<double>(side()) * static_cast<double>(side()) * 4.0;
    const StageWork w = assemble_work(cfg_.cal, frame_bytes);
    chip_->compute(core, w.cycles, [this, core, w, frame, frame_bytes] {
      chip_->dram_stream(core, w.dram_bytes, [this, frame, frame_bytes] {
        FrameToken tok;
        tok.frame = frame;
        tok.strip = StripRange{0, side()};
        tok.bytes = frame_bytes;
        tok.image = transfer_image_;
        transfer_image_.reset();
        const SimTime span_start = sim_.now();
        viewer_->send(std::move(tok), [this, frame, span_start] {
          record_span(placement_.transfer, StageKind::Transfer, frame,
                      "process", span_start, sim_.now());
          ++transfer_frame_;
          transfer_begin_frame();
        });
      });
    });
  }

  // ------------------------------------------------- failure handling

  /// Checkpoint bookkeeping: what each pipeline has been handed but not
  /// yet delivered to the transfer stage. The image copy (functional runs)
  /// stands in for the strip staged in the owning DRAM partition.
  struct SentStrip {
    StripRange strip{};
    double bytes = 0.0;
    std::shared_ptr<Image> image;
  };

  void record_outstanding(int p, int frame, const FrameToken& tok) {
    SentStrip m;
    m.strip = tok.strip;
    m.bytes = tok.bytes;
    if (tok.image) m.image = std::make_shared<Image>(*tok.image);
    outstanding_[static_cast<std::size_t>(p)][frame] = std::move(m);
  }

  void ack_pipeline(int p, int frame) {
    auto& acked = acked_[static_cast<std::size_t>(p)];
    acked = std::max(acked, frame);
    auto& out = outstanding_[static_cast<std::size_t>(p)];
    out.erase(out.begin(), out.upper_bound(frame));
  }

  StageKind stage_kind_of(std::size_t idx) const {
    const bool own_renderer = cfg_.scenario == Scenario::RendererPerPipeline;
    if (own_renderer && idx == 0) return StageKind::Render;
    return kFilterChain[idx - (own_renderer ? 1 : 0)];
  }

  /// Watchdog verdict arrived: decide remap / degrade / graceful failure.
  void handle_core_failure(CoreId core, SimTime detected_at) {
    FailureRecord rec;
    rec.core = core;
    rec.failed_at_ms = fault_->core_fail_time(core).to_ms();
    rec.detected_at_ms = detected_at.to_ms();
    rec.detection_latency_ms = rec.detected_at_ms - rec.failed_at_ms;
    // Slow-then-dead: the core was already flagged gray when it went
    // silent. That is ONE incident escalating to fail-stop, not two
    // overlapping ones — the detection clock started at the gray flag (the
    // system was already reacting), and closing the gray incident here
    // keeps the ladder from answering a dead core's stale flag.
    if (supervisor_->gray_enabled() && supervisor_->gray_flagged(core)) {
      rec.gray_escalated = true;
      ++gray_.escalations;
      const auto it = gray_flag_ms_.find(core);
      if (it != gray_flag_ms_.end()) {
        rec.detection_latency_ms = rec.detected_at_ms - it->second;
      }
      GrayActionRecord act;
      act.core = core;
      act.action = "escalate-fail-stop";
      act.flagged_at_ms =
          it != gray_flag_ms_.end() ? it->second : rec.detected_at_ms;
      push_gray_action(std::move(act));
      supervisor_->reset_gray(core);
    }
    ++recovery_.failures_detected;
    recovery_.max_detection_latency_ms =
        std::max(recovery_.max_detection_latency_ms, rec.detection_latency_ms);
    if (first_detect_ms_ < 0.0) first_detect_ms_ = rec.detected_at_ms;

    if (core == placement_.producer) {
      rec.stage = cfg_.scenario == Scenario::HostRenderer ? StageKind::Connect
                                                          : StageKind::Render;
      recovery_.failures.push_back(rec);
      on_fault("producer core " + std::to_string(core),
               Status(StatusCode::Unavailable,
                      "producer core failed; the frame source cannot be "
                      "remapped"));
      return;
    }
    if (core == placement_.transfer) {
      rec.stage = StageKind::Transfer;
      recovery_.failures.push_back(rec);
      on_fault("transfer core " + std::to_string(core),
               Status(StatusCode::Unavailable,
                      "transfer (collector/watchdog) core failed; the "
                      "assembly point cannot be remapped"));
      return;
    }
    // Locate the core in the *current* pipeline map (it may be a promoted
    // spare from an earlier failure).
    int p = -1;
    std::size_t idx = 0;
    for (int q = 0; q < cfg_.pipelines && p < 0; ++q) {
      const auto& cores = cores_now_[static_cast<std::size_t>(q)];
      for (std::size_t i = 0; i < cores.size(); ++i) {
        if (cores[i] == core) {
          p = q;
          idx = i;
          break;
        }
      }
    }
    if (p < 0) {
      // An allocated-but-roleless core (should not happen — only placement
      // cores are watched). Record the detection and move on.
      rec.recovered = true;
      recovery_.failures.push_back(rec);
      return;
    }
    rec.pipeline = p;
    rec.stage = stage_kind_of(idx);
    if (!pipeline_alive_[static_cast<std::size_t>(p)] ||
        transfer_frame_ >= frames_total()) {
      // Already-degraded pipeline, or the walkthrough already finished
      // collecting: nothing left to heal.
      rec.recovered = true;
      ++recovery_.failures_recovered;
      recovery_.failures.push_back(rec);
      return;
    }
    if (!spares_.empty()) {
      remap_pipeline(p, idx, rec);
    } else if (cfg_.scenario == Scenario::RendererPerPipeline) {
      // Degrading would need the surviving renderers to re-render with new
      // frusta mid-stream; out of scope — fail the run gracefully.
      recovery_.failures.push_back(rec);
      on_fault("pipeline " + std::to_string(p) + " core " +
                   std::to_string(core),
               Status(StatusCode::Unavailable,
                      "render core failed with no spare cores left"));
      return;
    } else {
      degrade_pipeline(p, rec);
    }
    recovery_.failures.push_back(rec);
  }

  /// Drop the dead pipeline's pending rendezvous so nothing blocks on it.
  void abandon_pipeline_pairs(int p) {
    const auto& cores = cores_now_[static_cast<std::size_t>(p)];
    const bool own_renderer = cfg_.scenario == Scenario::RendererPerPipeline;
    CoreId prev = own_renderer ? cores[0] : placement_.producer;
    for (std::size_t i = own_renderer ? 1 : 0; i < cores.size(); ++i) {
      rcce_->abandon_pair(prev, cores[i]);
      prev = cores[i];
    }
    rcce_->abandon_pair(prev, placement_.transfer);
  }

  /// Silence transport errors on a pipeline's superseded channels. Once a
  /// pipeline is rebuilt (or written off), retransmit chains already in
  /// flight toward the dead core may still exhaust their retries; the
  /// replacement chain (or the lost-frame ledger) already accounts for that
  /// data, so the stale error must not abort the run.
  void swallow_pipeline_errors(int p) {
    const std::size_t sp = static_cast<std::size_t>(p);
    head_channels_[sp]->set_error_handler([](const Status&) {});
    for (int f = 0; f < kFilterCount; ++f) {
      stages_[static_cast<std::size_t>(p * kFilterCount + f)]
          ->out->set_error_handler([](const Status&) {});
    }
  }

  void remap_pipeline(int p, std::size_t idx, FailureRecord& rec) {
    const std::size_t sp = static_cast<std::size_t>(p);
    const CoreId spare = spares_.front();
    spares_.erase(spares_.begin());
    ++recovery_.spares_used;
    rec.remapped_to = spare;
    rec.recovered = true;
    ++recovery_.failures_recovered;

    chip_->allocate_core(spare);
    remapped_cores_.push_back(spare);
    supervisor_->watch(spare);
    abandon_pipeline_pairs(p);
    swallow_pipeline_errors(p);
    cores_now_[sp][idx] = spare;
    apply_dvfs_to_replacement(p, idx, spare);
    ++pipeline_gen_[sp];
    rebuild_pipeline(p);
    // If the transfer stage was waiting on this pipeline, its recv died
    // with the old channel; re-post on the rebuilt one (fresh ticket).
    if (transfer_waiting_ &&
        transfer_route_[static_cast<std::size_t>(transfer_slot_)] == p) {
      transfer_recv_slot();
    }
    // If the producer's distribution chain was stuck sending into the dead
    // core, resume it; the stuck strip is outstanding and will be replayed.
    if (dist_pending_pipeline_ == p) {
      dist_pending_pipeline_ = -1;
      send_strips_routed(dist_frame_, dist_slot_ + 1, dist_image_);
    }
    queue_replay(p);
  }

  void degrade_pipeline(int p, FailureRecord& rec) {
    const std::size_t sp = static_cast<std::size_t>(p);
    rec.degraded = true;
    rec.recovered = true;
    ++recovery_.failures_recovered;
    ++recovery_.pipelines_lost;
    pipeline_alive_[sp] = 0;
    ++pipeline_gen_[sp];
    abandon_pipeline_pairs(p);
    swallow_pipeline_errors(p);
    // Every frame with a strip stuck in this pipeline can never be
    // assembled; so too the frame currently being distributed if its route
    // includes us.
    for (const auto& [f, m] : outstanding_[sp]) lost_frames_.insert(f);
    outstanding_[sp].clear();
    replay_q_[sp].clear();
    replay_active_[sp] = 0;
    gray_drain_[sp] = 0;
    if (dist_active_) {
      const auto it = frame_routes_.find(dist_frame_);
      if (it != frame_routes_.end() &&
          std::find(it->second.begin(), it->second.end(), p) !=
              it->second.end()) {
        lost_frames_.insert(dist_frame_);
      }
    }
    if (dist_pending_pipeline_ == p) {
      dist_pending_pipeline_ = -1;
      send_strips_routed(dist_frame_, dist_slot_ + 1, dist_image_);
    }
    // The transfer stage may be waiting on a frame that just became lost
    // (if it waits on *this* pipeline, the frame necessarily is).
    if (transfer_waiting_ && lost_frames_.count(transfer_frame_) != 0) {
      transfer_waiting_ = false;
      ++transfer_ticket_seq_;  // invalidate the posted recv
      transfer_ticket_ = 0;
      transfer_begin_frame();
    } else if (transfer_deferred_ &&
               lost_frames_.count(transfer_frame_) != 0) {
      transfer_begin_frame();
    }
  }

  /// Reproduce the DVFS treatment the dead core had on its replacement.
  void apply_dvfs_to_replacement(int p, std::size_t idx, CoreId spare) {
    const auto& cores = cores_now_[static_cast<std::size_t>(p)];
    const std::size_t blur_idx = cores.size() - 4;
    if (cfg_.blur_mhz > 0 && idx == blur_idx) {
      chip_->set_core_frequency(spare, cfg_.blur_mhz);
    } else if (cfg_.tail_mhz > 0 && idx > blur_idx) {
      chip_->set_core_frequency(spare, cfg_.tail_mhz);
    }
  }

  /// Re-create pipeline \p p's channels over its current core list and
  /// re-arm its stages. Stage objects are reused (their wait statistics
  /// span the failure), frame counters rewind to the last acked frame.
  void rebuild_pipeline(int p) {
    const std::size_t sp = static_cast<std::size_t>(p);
    const auto& cores = cores_now_[sp];
    const bool own_renderer = cfg_.scenario == Scenario::RendererPerPipeline;
    const std::size_t first_filter = own_renderer ? 1 : 0;
    const std::string pl =
        "[p" + std::to_string(p) + "g" +
        std::to_string(pipeline_gen_[sp]) + "]";

    Channel* head;
    if (own_renderer) {
      head = make_scc_channel(cores[0], cores[1], "render->sepia" + pl);
    } else {
      head = make_scc_channel(placement_.producer, cores[0],
                              "producer->sepia" + pl);
    }
    head_channels_[sp] = head;

    Channel* in = head;
    for (int f = 0; f < kFilterCount; ++f) {
      const CoreId core = cores[first_filter + static_cast<std::size_t>(f)];
      Channel* out;
      if (f + 1 < kFilterCount) {
        const CoreId next =
            cores[first_filter + static_cast<std::size_t>(f) + 1];
        out = make_scc_channel(core, next,
                               std::string(stage_name(kFilterChain[f])) +
                                   "->" + stage_name(kFilterChain[f + 1]) +
                                   pl);
      } else {
        out = make_scc_channel(core, placement_.transfer,
                               "swap->transfer" + pl);
        tail_channels_[sp] = out;
      }
      StageState& st = *stages_[static_cast<std::size_t>(p * kFilterCount + f)];
      st.core = core;
      st.in = in;
      st.out = out;
      st.gen = pipeline_gen_[sp];
      st.frames_done = acked_[sp] + 1;
      in = out;
    }
    for (int f = 0; f < kFilterCount; ++f) {
      arm_filter_stage(*stages_[static_cast<std::size_t>(p * kFilterCount + f)]);
    }
  }

  // ------------------------------------------------- checkpointed replay

  CoreId checkpoint_reader(int p) const {
    return cfg_.scenario == Scenario::RendererPerPipeline
               ? cores_now_[static_cast<std::size_t>(p)][0]
               : placement_.producer;
  }

  void queue_replay(int p) {
    const std::size_t sp = static_cast<std::size_t>(p);
    auto& q = replay_q_[sp];
    q.clear();
    for (const auto& [f, m] : outstanding_[sp]) q.push_back(f);
    replay_active_[sp] = 1;
    pump_replay(p, pipeline_gen_[sp]);
  }

  /// Re-send the pipeline's undelivered strips, oldest first, each paid
  /// for with a checkpoint read from the owning DRAM partition. New frames
  /// arriving meanwhile are appended to the queue (see send_strips_routed)
  /// so the head channel stays FIFO.
  void pump_replay(int p, int gen) {
    const std::size_t sp = static_cast<std::size_t>(p);
    if (failed_ || gen != pipeline_gen_[sp]) return;
    auto& q = replay_q_[sp];
    while (!q.empty() && outstanding_[sp].count(q.front()) == 0) {
      q.pop_front();
    }
    if (q.empty()) {
      replay_active_[sp] = 0;
      gray_drain_[sp] = 0;
      if (cfg_.scenario == Scenario::RendererPerPipeline) {
        // Backlog drained; the (possibly new) renderer resumes the frames
        // it never handed over.
        render_pipeline_frame(p, head_sent_[sp] + 1);
      }
      return;
    }
    const int frame = q.front();
    q.pop_front();
    const SentStrip& m = outstanding_[sp][frame];
    if (gray_drain_[sp]) {
      // Drain-migration: the old core is alive and nothing was lost — the
      // re-send drains staged work, it does not recover from a death, so
      // it must not inflate the recovery report's replay counters.
      ++gray_.frames_drained;
    } else {
      ++recovery_.checkpoint_replays;
      ++recovery_.frames_replayed;
      recovery_.checkpoint_bytes += m.bytes;
    }
    chip_->dram_stream(checkpoint_reader(p), m.bytes, [this, p, sp, gen,
                                                       frame] {
      if (failed_ || gen != pipeline_gen_[sp]) return;
      const auto it = outstanding_[sp].find(frame);
      if (it == outstanding_[sp].end()) {
        pump_replay(p, gen);
        return;
      }
      FrameToken tok;
      tok.frame = frame;
      tok.strip = it->second.strip;
      tok.bytes = it->second.bytes;
      if (it->second.image) {
        tok.image = std::make_shared<Image>(*it->second.image);
      }
      head_channels_[sp]->send(std::move(tok), [this, p, gen] {
        if (failed_ || gen != pipeline_gen_[static_cast<std::size_t>(p)]) {
          return;
        }
        pump_replay(p, gen);
      });
    });
  }

  // ------------------------------------------- gray-failure mitigation
  //
  // The Supervisor's detector flags a straggler (service-time outlier for
  // K consecutive windows, see core/recovery.hpp); the driver answers by
  // climbing a policy ladder one rung per flag: boost the straggler's
  // frequency island, then drain-migrate its stage to a spare core, then
  // shrink its pipeline's strip share. Every action records the trigger
  // evidence and the before/after stage service time (RunResult::gray).

  /// Append an action and its (aligned) post-action sample histogram.
  std::size_t push_gray_action(GrayActionRecord act) {
    gray_.actions.push_back(std::move(act));
    gray_after_hist_.emplace_back(0.1);
    return gray_.actions.size() - 1;
  }

  /// Feed one service sample to the detector and to every pending action's
  /// "after" histogram for this core.
  void note_service(CoreId core, double service_ms) {
    supervisor_->record_service(core, service_ms);
    if (gray_after_.empty()) return;
    const auto it = gray_after_.find(core);
    if (it == gray_after_.end()) return;
    for (const std::size_t i : it->second) {
      gray_after_hist_[i].add(service_ms);
    }
  }

  /// One DVFS step up for the straggler's tile (the SCC raises frequency —
  /// and with it the island's voltage — per tile, so this is the cheapest
  /// rung). False when the tile already sits at the table's top point.
  bool dvfs_boost(CoreId core) {
    const double cur_hz = chip_->frequency_hz(core);
    int next_mhz = 0;
    for (const OperatingPoint& pt : chip_->dvfs().points()) {
      if (static_cast<double>(pt.mhz) * 1e6 > cur_hz &&
          (next_mhz == 0 || pt.mhz < next_mhz)) {
        next_mhz = pt.mhz;
      }
    }
    if (next_mhz == 0) return false;
    chip_->set_core_frequency(core, next_mhz);
    return true;
  }

  /// Drain-migrate the straggling stage onto a spare core. The straggler
  /// is alive, so nothing was lost and nothing needs *recovery*: the
  /// pipeline is rebuilt one generation up (exactly the fail-stop remap
  /// path), and the strips still in flight are re-sent from the producer's
  /// staged copies — counted as gray drains, not checkpoint replays.
  CoreId gray_migrate(int p, std::size_t idx, CoreId from) {
    const std::size_t sp = static_cast<std::size_t>(p);
    const CoreId spare = spares_.front();
    spares_.erase(spares_.begin());
    ++recovery_.spares_used;
    chip_->allocate_core(spare);
    remapped_cores_.push_back(spare);
    supervisor_->watch(spare);
    // The straggler is retired, not dead: stop monitoring it and close its
    // detector incident here — a later planned death of the idle core must
    // not surface as a second overlapping recovery.
    supervisor_->reset_gray(from);
    supervisor_->unwatch(from);
    abandon_pipeline_pairs(p);
    swallow_pipeline_errors(p);
    cores_now_[sp][idx] = spare;
    apply_dvfs_to_replacement(p, idx, spare);
    ++pipeline_gen_[sp];
    rebuild_pipeline(p);
    if (transfer_waiting_ &&
        transfer_route_[static_cast<std::size_t>(transfer_slot_)] == p) {
      transfer_recv_slot();
    }
    if (dist_pending_pipeline_ == p) {
      dist_pending_pipeline_ = -1;
      send_strips_routed(dist_frame_, dist_slot_ + 1, dist_image_);
    }
    gray_drain_[sp] = 1;
    queue_replay(p);
    return spare;
  }

  /// Shrink the straggling pipeline's strip share in proportion to its
  /// measured relative slowdown: later frames are split by weight, so the
  /// slow stage does less work per frame instead of pacing the whole chip.
  void gray_rebalance(int p, const GrayEvidence& ev) {
    const double rel = ev.median_norm > 0.0 ? ev.norm / ev.median_norm : 1.0;
    const double w = std::clamp(rel > 0.0 ? 1.0 / rel : 1.0, 0.2, 1.0);
    pipe_weight_[static_cast<std::size_t>(p)] =
        std::min(pipe_weight_[static_cast<std::size_t>(p)], w);
    gray_weighted_ = true;
  }

  /// Detector verdict arrived: climb the policy ladder one rung. A flag
  /// the mitigation does not cure re-fires detect_windows windows later
  /// (the detector re-arms its streak), which is what walks a stubborn
  /// straggler from DVFS to migration to rebalancing.
  void handle_gray_flag(CoreId core, SimTime at, const GrayEvidence& ev) {
    ++gray_.flags_raised;
    if (first_gray_flag_ms_ < 0.0) first_gray_flag_ms_ = at.to_ms();
    if (gray_flag_ms_.find(core) == gray_flag_ms_.end()) {
      gray_flag_ms_[core] = at.to_ms();
    }
    GrayActionRecord rec;
    rec.core = core;
    rec.flagged_at_ms = at.to_ms();
    rec.evidence = ev;
    rec.before_stage_ms = ev.window_p50_ms;
    // Locate the straggler in the live pipeline map (it may already be a
    // promoted spare from an earlier remap).
    int p = -1;
    std::size_t idx = 0;
    for (int q = 0; q < cfg_.pipelines && p < 0; ++q) {
      const auto& cores = cores_now_[static_cast<std::size_t>(q)];
      for (std::size_t i = 0; i < cores.size(); ++i) {
        if (cores[i] == core) {
          p = q;
          idx = i;
          break;
        }
      }
    }
    rec.pipeline = p;
    if (p >= 0) rec.stage = stage_kind_of(idx);
    rec.action = "observe";
    int& rung = gray_rung_[core];
    const bool actionable = p >= 0 && !failed_ &&
                            pipeline_alive_[static_cast<std::size_t>(p)] &&
                            transfer_frame_ < frames_total();
    const auto policy_at_least = [this](GrayPolicy floor) {
      return static_cast<int>(cfg_.gray.policy) >= static_cast<int>(floor);
    };
    if (actionable && rung < 1 && policy_at_least(GrayPolicy::Dvfs)) {
      rung = 1;
      if (dvfs_boost(core)) {
        rec.action = "dvfs-boost";
        ++gray_.dvfs_boosts;
        gray_after_[core].push_back(push_gray_action(std::move(rec)));
        return;
      }
      // Already at the top operating point; the rung is spent, the next
      // flag escalates.
    } else if (actionable && rung < 2 && policy_at_least(GrayPolicy::Migrate) &&
               !spares_.empty()) {
      rung = 2;
      rec.action = "migrate";
      ++gray_.migrations;
      const CoreId spare = gray_migrate(p, idx, core);
      rec.migrated_to = spare;
      // "After" samples come from the spare — the stage moved there.
      gray_after_[spare].push_back(push_gray_action(std::move(rec)));
      return;
    } else if (actionable && rung < 3 &&
               policy_at_least(GrayPolicy::Rebalance) &&
               cfg_.scenario != Scenario::RendererPerPipeline) {
      // (Per-pipeline renderers draw fixed-frustum strips; re-splitting
      // mid-run would need new frusta, so that scenario stops at rung 2.)
      rung = 3;
      rec.action = "rebalance";
      ++gray_.rebalances;
      gray_rebalance(p, ev);
      gray_after_[core].push_back(push_gray_action(std::move(rec)));
      return;
    }
    push_gray_action(std::move(rec));  // policy off / ladder exhausted
  }

  void collect_gray_report(RunResult& r) {
    r.gray = gray_;
    if (!cfg_.gray.enabled()) return;
    r.gray.enabled = true;
    for (std::size_t i = 0; i < r.gray.actions.size(); ++i) {
      if (i < gray_after_hist_.size() && !gray_after_hist_[i].empty()) {
        r.gray.actions[i].after_stage_ms = gray_after_hist_[i].quantile(0.5);
      }
    }
    r.gray.frames_offered = static_cast<std::uint64_t>(frames_total());
    r.gray.frames_delivered =
        static_cast<std::uint64_t>(frame_done_ms_.size());
    r.gray.frames_shed = static_cast<std::uint64_t>(lost_frames_.size());
    // Audited invariant: mitigation never loses a frame. Whatever the
    // ladder did — boosts, drain-migrations, re-splits — every offered
    // frame is either delivered or explicitly shed by a *degraded*
    // pipeline (spare exhaustion), never silently dropped.
    if (!failed_ && !crashed_) {
      SCCPIPE_CHECK_MSG(
          r.gray.frames_offered ==
              r.gray.frames_delivered + r.gray.frames_shed,
          "gray ledger leak: offered " << r.gray.frames_offered
              << " != delivered " << r.gray.frames_delivered << " + shed "
              << r.gray.frames_shed);
    }
    if (first_gray_flag_ms_ >= 0.0 && !frame_done_ms_.empty()) {
      int after = 0;
      for (const double t : frame_done_ms_) {
        if (t > first_gray_flag_ms_) ++after;
      }
      const double span_s =
          (frame_done_ms_.back() - first_gray_flag_ms_) / 1e3;
      if (after > 0 && span_s > 0.0) {
        r.gray.post_mitigation_fps = after / span_s;
      }
    }
  }

  // ---------------------------------------------------------- checkpoints
  /// First checkpoint-layer failure wins in the report; every one also
  /// fails the run through the ordinary fault path so a broken resume or
  /// write surfaces as a typed, graceful failure, never a wrong CSV.
  void checkpoint_fault(const std::string& where, const Status& st) {
    if (ckpt_.error_code == StatusCode::Ok) {
      ckpt_.error_code = st.code();
      ckpt_.error = st.message();
    }
    on_fault(where, st);
  }

  /// Load + validate the resume snapshot. Returns false (run failed, typed
  /// NotFound/DataLoss/VersionSkew/InvalidArgument) when the file is
  /// missing, corrupt, from another format version, or from a different
  /// run configuration.
  bool load_resume() {
    ckpt_.resumed = true;
    Status st = load_run_snapshot(cfg_.checkpoint.file, &resume_snap_);
    if (st.ok() && resume_snap_.config_fingerprint != config_fp_) {
      st = Status(StatusCode::InvalidArgument,
                  "snapshot '" + cfg_.checkpoint.file +
                      "' was written by a different run configuration "
                      "(config fingerprint mismatch)");
    }
    if (!st.ok()) {
      checkpoint_fault("resume", st);
      return false;
    }
    have_resume_ = true;
    crashes_disarmed_ = std::min<std::size_t>(
        static_cast<std::size_t>(resume_snap_.crashes_consumed) + 1,
        crash_plan_.size());
    return true;
  }

  /// Everything save_state-capable plus the host-side frame/ledger
  /// cursors, serialized in one fixed order. Captured at a viewer-arrival
  /// event, all of it is host-region-confined, so the bytes are identical
  /// at every --sim-jobs value — which is what lets a snapshot taken under
  /// one worker count anchor a resume under another.
  std::vector<std::uint8_t> component_blob(std::uint64_t frames, SimTime at) {
    snapshot::Writer w;
    w.u64(frames);
    w.i64(at.to_ns());
    w.u32(fault_ != nullptr ? 1 : 0);
    if (fault_) fault_->save_state(w);
    w.u32(breaker_ != nullptr ? 1 : 0);
    if (breaker_) breaker_->save_state(w);
    w.u32(host_arq_ != nullptr ? 1 : 0);
    if (host_arq_) host_arq_->transport().save_state(w);
    w.u32(supervisor_ != nullptr ? 1 : 0);
    if (supervisor_) supervisor_->save_state(w);
    // Live frame ledger (overload runs tally as they go).
    w.u64(transport_tally_.frames_offered);
    w.u64(transport_tally_.frames_admitted);
    w.u64(transport_tally_.shed_admission);
    w.u64(transport_tally_.shed_deadline);
    w.u64(transport_tally_.shed_transport);
    w.u64(transport_tally_.shed_breaker);
    // Recovery progress counters.
    w.i64(recovery_.failures_detected);
    w.i64(recovery_.failures_recovered);
    w.i64(recovery_.frames_replayed);
    w.i64(recovery_.spares_used);
    w.i64(recovery_.pipelines_lost);
    w.u64(recovery_.checkpoint_writes);
    w.u64(recovery_.checkpoint_replays);
    w.f64(recovery_.checkpoint_bytes);
    // Gray-mitigation progress — flag-gated on the config (which the
    // fingerprint covers), so gray-off snapshots keep the pre-gray format
    // byte-for-byte.
    if (cfg_.gray.enabled()) {
      w.i64(gray_.flags_raised);
      w.i64(gray_.dvfs_boosts);
      w.i64(gray_.migrations);
      w.i64(gray_.rebalances);
      w.i64(gray_.escalations);
      w.i64(gray_.frames_drained);
      w.u64(gray_rung_.size());
      for (const auto& [c, rung] : gray_rung_) {
        w.i64(c);
        w.i64(rung);
      }
      w.u64(gray_flag_ms_.size());
      for (const auto& [c, ms] : gray_flag_ms_) {
        w.i64(c);
        w.f64(ms);
      }
      w.u64(pipe_weight_.size());
      for (const double wt : pipe_weight_) w.f64(wt);
      w.u64(gray_drain_.size());
      for (const char g : gray_drain_) w.u32(static_cast<std::uint32_t>(g));
    }
    // Host-side distribution/collection cursors.
    w.i64(connect_frames_);
    w.i64(transfer_frame_);
    w.i64(connect_expected_);
    w.i64(max_feeder_q_);
    w.u64(lost_frames_.size());
    for (const int f : lost_frames_) w.i64(f);
    w.u64(pipeline_gen_.size());
    for (const int g : pipeline_gen_) w.i64(g);
    w.u64(acked_.size());
    for (const int a : acked_) w.i64(a);
    w.u64(cores_now_.size());
    for (const auto& cores : cores_now_) {
      w.u64(cores.size());
      for (const CoreId c : cores) w.i64(c);
    }
    return w.payload();
  }

  void write_checkpoint(std::uint64_t frames, SimTime at) {
    RunSnapshot snap;
    snap.config_fingerprint = config_fp_;
    snap.frames_delivered = frames;
    snap.sim_now_ns = at.to_ns();
    snap.crashes_consumed = static_cast<std::uint32_t>(crashes_disarmed_);
    snap.state = component_blob(frames, at);
    const Status st = snapshot::write_file_atomic(
        cfg_.checkpoint.file, serialize_run_snapshot(snap));
    if (!st.ok()) {
      checkpoint_fault("checkpoint write", st);
      return;
    }
    ++ckpt_.checkpoints_written;
    ckpt_.last_checkpoint_frames = frames;
  }

  /// Frame-0 bootstrap, run after the stages are wired but before any
  /// event dispatches. Writing a checkpoint here closes the one durability
  /// hole interval checkpointing leaves: a crash landing *before* the first
  /// periodic write would otherwise leave no snapshot — and since the
  /// snapshot carries this attempt's disarm count, no progress through the
  /// crash plan. With it, every attempt disarms one more crash no matter
  /// where the crash falls relative to the checkpoint interval. A frame-0
  /// resume anchor is verified at the same point, keeping write and verify
  /// symmetric.
  void on_run_start() {
    if (failed_ || !cfg_.checkpoint.enabled()) return;
    if (have_resume_ && !resume_checked_ &&
        resume_snap_.frames_delivered == 0) {
      resume_checked_ = true;
      if (resume_snap_.sim_now_ns != 0 ||
          component_blob(0, SimTime::zero()) != resume_snap_.state) {
        checkpoint_fault(
            "resume verify",
            Status(StatusCode::DataLoss,
                   "initial state diverged from snapshot '" +
                       cfg_.checkpoint.file +
                       "': the snapshot was written by a different build or "
                       "environment"));
        return;
      }
      ckpt_.resume_verified = true;
    }
    if (cfg_.checkpoint.every_frames > 0) {
      write_checkpoint(0, SimTime::zero());
    }
  }

  void on_frame_boundary(SimTime at) {
    if (failed_) return;
    const std::uint64_t frames =
        static_cast<std::uint64_t>(frame_done_ms_.size());
    // Resume verification anchor: when the replay reaches the snapshot's
    // frame count, the live state must reproduce the stored blob exactly.
    // A match proves the run is on the recorded trajectory; a mismatch
    // means the build/config/environment drifted and continuing would
    // produce silently different results — typed DataLoss instead.
    if (have_resume_ && !resume_checked_ &&
        frames == resume_snap_.frames_delivered) {
      resume_checked_ = true;
      if (at.to_ns() != resume_snap_.sim_now_ns ||
          component_blob(frames, at) != resume_snap_.state) {
        checkpoint_fault(
            "resume verify",
            Status(StatusCode::DataLoss,
                   "deterministic replay diverged from snapshot '" +
                       cfg_.checkpoint.file + "' at frame " +
                       std::to_string(frames) +
                       ": the snapshot was written by a different build or "
                       "environment"));
        return;
      }
      ckpt_.resume_verified = true;
    }
    if (cfg_.checkpoint.every_frames > 0 &&
        frames % static_cast<std::uint64_t>(cfg_.checkpoint.every_frames) ==
            0) {
      write_checkpoint(frames, at);
    }
  }

  void collect_checkpoint_report(RunResult& r) {
    r.checkpoint = ckpt_;
    r.checkpoint.enabled = cfg_.checkpoint.enabled() || !crash_plan_.empty();
    r.checkpoint.crashed = crashed_;
    r.checkpoint.crashed_at_ms = crashed_ ? crashed_at_.to_ms() : 0.0;
    r.checkpoint.crashes_consumed =
        static_cast<std::uint32_t>(crashes_disarmed_);
    if (have_resume_ && !resume_checked_ && !failed_ && !crashed_ &&
        r.checkpoint.error_code == StatusCode::Ok) {
      // The replay drained without ever reaching the snapshot's frame
      // count — the snapshot records more progress than this configuration
      // can produce, which the fingerprint cannot always catch.
      r.checkpoint.error_code = StatusCode::DataLoss;
      r.checkpoint.error =
          "replay completed at " + std::to_string(frame_done_ms_.size()) +
          " frames without reaching the snapshot's " +
          std::to_string(resume_snap_.frames_delivered);
    }
  }

  // -------------------------------------------------------------- results
  RunResult collect() {
    RunResult r;
    // A fault-free run must always complete; a faulted run may legitimately
    // end early (graceful failure, reported below), a degraded self-healing
    // run delivers everything except the explicitly-lost frames, a crashed
    // run stopped dispatching at its planned death by design, and an
    // overload run sheds by design — its completeness invariant is the
    // frame ledger checked in collect_transport_report.
    SCCPIPE_CHECK_MSG(failed_ || crashed_ || overload_mode_ ||
                          static_cast<int>(frame_done_ms_.size()) +
                                  static_cast<int>(lost_frames_.size()) ==
                              frames_total(),
                      "walkthrough did not complete: " << frame_done_ms_.size()
                          << '/' << frames_total() << " frames");
    r.frame_done_ms = frame_done_ms_;
    if (!frame_done_ms_.empty()) {
      r.walkthrough = SimTime::ms(frame_done_ms_.back());
    }
    if (failed_) r.walkthrough = max(r.walkthrough, failed_at_);
    r.placement = placement_;

    for (const auto& st : stages_) {
      StageReport rep;
      rep.kind = st->kind;
      rep.pipeline = st->pipeline;
      rep.core = st->core;
      rep.wait_ms = st->wait_ms.summary();
      rep.busy_ms = chip_->core_busy_time(st->core).to_ms();
      rep.frames = st->frames_done;
      r.stages.push_back(rep);
    }
    if (cfg_.scenario == Scenario::HostRenderer) {
      StageReport rep;
      rep.kind = StageKind::Connect;
      rep.core = placement_.producer;
      rep.wait_ms = connect_wait_.summary();
      rep.busy_ms = chip_->core_busy_time(placement_.producer).to_ms();
      rep.frames = connect_frames_;
      r.stages.push_back(rep);
    } else if (cfg_.scenario == Scenario::SingleRenderer) {
      StageReport rep;
      rep.kind = StageKind::Render;
      rep.core = placement_.producer;
      rep.busy_ms = chip_->core_busy_time(placement_.producer).to_ms();
      rep.frames = frames_total();
      r.stages.push_back(rep);
    } else if (cfg_.scenario == Scenario::RendererPerPipeline) {
      for (int p = 0; p < cfg_.pipelines; ++p) {
        const CoreId core =
            placement_.pipeline_cores[static_cast<std::size_t>(p)][0];
        StageReport rep;
        rep.kind = StageKind::Render;
        rep.pipeline = p;
        rep.core = core;
        rep.busy_ms = chip_->core_busy_time(core).to_ms();
        rep.frames = frames_total();
        r.stages.push_back(rep);
      }
    }
    {
      StageReport rep;
      rep.kind = StageKind::Transfer;
      rep.core = placement_.transfer;
      rep.wait_ms = transfer_wait_.summary();
      rep.busy_ms = chip_->core_busy_time(placement_.transfer).to_ms();
      rep.frames = supervisor_ ? static_cast<int>(frame_done_ms_.size())
                               : frames_total();
      r.stages.push_back(rep);
    }

    // Fabric accounting (§VI-A: where the bytes actually went).
    r.fabric.mesh_total_bytes = chip_->mesh().total_bytes();
    const MeshTopology& topo = chip_->topology();
    for (TileId t = 0; t < topo.tile_count(); ++t) {
      for (int d = 0; d < 4; ++d) {
        const LinkId link{topo.coord_of(t), static_cast<Direction>(d)};
        r.fabric.mesh_max_link_bytes = std::max(
            r.fabric.mesh_max_link_bytes, chip_->mesh().traffic(link).bytes);
      }
    }
    for (McId m = 0; m < topo.mc_count(); ++m) {
      const McStats& st = chip_->memory().stats(m);
      r.fabric.mc_bulk_bytes.push_back(st.bulk_bytes);
      r.fabric.mc_latency_streams_peak.push_back(st.latency_streams_peak);
    }

    release_cores();
    r.power_trace = chip_->power_meter().trace();
    r.chip_energy_joules =
        chip_->power_meter().energy_joules(SimTime::zero(), r.walkthrough);
    r.mean_chip_watts =
        chip_->power_meter().mean_watts(SimTime::zero(), r.walkthrough);
    if (host_) {
      r.host_busy_sec = host_->busy_time().to_sec();
      r.host_extra_energy_joules =
          r.host_busy_sec *
          (host_->config().busy_watts - host_->config().idle_watts);
    }
    collect_fault_report(r);
    collect_recovery_report(r);
    collect_transport_report(r);
    collect_gray_report(r);
    r.frames = std::move(out_frames_);
    r.events_dispatched = engine_.dispatched();
    r.parallel_sim.enabled = cfg_.sim_jobs > 1;
    r.parallel_sim.sim_jobs = engine_.jobs();
    r.parallel_sim.regions = engine_.regions();
    r.parallel_sim.lookahead_ns = engine_.lookahead().to_ns();
    r.parallel_sim.windows = engine_.stats().windows;
    r.parallel_sim.coalesced_windows = engine_.stats().coalesced_windows;
    r.parallel_sim.cross_region_events = engine_.stats().cross_region_events;
    r.parallel_sim.idle_region_windows = engine_.stats().idle_region_windows;
    for (int region = 0; region < engine_.regions(); ++region) {
      const SimulatorStats& rs = engine_.region(region).stats();
      r.parallel_sim.region_allocs += rs.allocs;
      r.parallel_sim.region_peak_events =
          std::max(r.parallel_sim.region_peak_events, rs.peak_events);
    }
    if (const Status ws = engine_.watchdog_status(); !ws.ok()) {
      r.parallel_sim.stalled = true;
      r.parallel_sim.stall = ws.message();
      r.parallel_sim.flight_recorder = engine_.flight_recorder_dump();
    }
    collect_checkpoint_report(r);
    return r;
  }

  void collect_recovery_report(RunResult& r) {
    r.recovery = recovery_;
    if (supervisor_ == nullptr) return;
    r.recovery.heartbeats_sent = supervisor_->heartbeats_sent();
    r.recovery.heartbeat_bytes = supervisor_->heartbeat_bytes_total();
    r.recovery.frames_lost = static_cast<int>(lost_frames_.size());
    if (first_detect_ms_ >= 0.0 && !frame_done_ms_.empty()) {
      int after = 0;
      for (const double t : frame_done_ms_) {
        if (t > first_detect_ms_) ++after;
      }
      const double span_s = (frame_done_ms_.back() - first_detect_ms_) / 1e3;
      if (after > 0 && span_s > 0.0) {
        r.recovery.post_failure_fps = after / span_s;
      }
    }
  }

  void collect_transport_report(RunResult& r) {
    TransportReport& t = r.transport;
    t = transport_tally_;
    t.enabled = overload_mode_;
    if (!overload_mode_) return;
    t.frames_delivered = static_cast<std::uint64_t>(frame_done_ms_.size());
    // A crashed run's ledger is legitimately torn mid-flight (frames were
    // admitted but never delivered/shed); only intact runs must balance.
    if (!failed_ && !crashed_) {
      SCCPIPE_CHECK_MSG(
          t.frames_offered ==
              t.frames_admitted + t.shed_admission + t.shed_breaker,
          "overload ledger leak: offered " << t.frames_offered
              << " != admitted " << t.frames_admitted << " + shed_admission "
              << t.shed_admission << " + shed_breaker " << t.shed_breaker);
      SCCPIPE_CHECK_MSG(
          t.frames_admitted ==
              t.frames_delivered + t.shed_deadline + t.shed_transport,
          "overload ledger leak: admitted " << t.frames_admitted
              << " != delivered " << t.frames_delivered << " + shed_deadline "
              << t.shed_deadline << " + shed_transport " << t.shed_transport);
    }
    if (host_arq_ != nullptr) {
      const ReliableHostChannel& w = host_arq_->transport();
      t.first_sends = w.first_sends();
      t.retransmissions = w.retransmissions();
      t.dup_suppressed = w.dup_suppressed();
      t.acks = w.acks_sent();
      t.credit_grants = w.credit_grants();
      t.credit_stalls += w.credit_stalls();
      t.credit_stall_ms += w.credit_stall_time().to_ms();
      t.max_link_queue = w.max_receiver_occupancy();
      t.smoothed_rtt_ms = w.smoothed_rtt().to_ms();
    }
    for (const CreditedSccChannel* ch : credited_) {
      t.credit_stalls += ch->credit_stalls();
      t.credit_stall_ms += ch->credit_stall_time().to_ms();
      t.credit_grants += ch->credit_messages();
      t.max_stage_queue = std::max(t.max_stage_queue, ch->max_occupancy());
    }
    t.max_feeder_queue = max_feeder_q_;
    if (!frame_done_ms_.empty()) {
      const double span_sec = frame_done_ms_.back() / 1e3;
      if (span_sec > 0.0) {
        t.goodput_fps =
            static_cast<double>(frame_done_ms_.size()) / span_sec;
      }
      // Exact R-7 quantiles via the shared fixed-bucket histogram —
      // bit-identical to sorting latency_ms_ and calling quantile_sorted
      // (tests/gray_failure_test.cpp HistogramMatchesSortQuantiles guards
      // the equivalence), without the full sort.
      LatencyHistogram lat_hist(1.0);
      for (const double ms : latency_ms_) lat_hist.add(ms);
      t.p50_latency_ms = lat_hist.quantile(0.5);
      t.p99_latency_ms = lat_hist.quantile(0.99);
    }
    t.breaker_trips = breaker_->trips();
    t.breaker_final = breaker_->state();
    t.breaker_transitions = breaker_->transitions();
  }

  void collect_fault_report(RunResult& r) {
    r.fault.enabled = fault_ != nullptr;
    r.fault.failed = failed_;
    r.fault.frames_completed = static_cast<int>(frame_done_ms_.size());
    r.fault.stage_errors = fault_errors_;
    if (failed_) {
      r.fault.failure_code = first_failure_.code();
      r.fault.failure = first_failure_where_ + ": " + first_failure_.message();
      r.fault.failed_at_ms = failed_at_.to_ms();
    }
    if (fault_ == nullptr) return;
    r.fault.rcce_drops = fault_->rcce_drops();
    r.fault.rcce_delays = fault_->rcce_delays();
    r.fault.host_drops = fault_->host_drops();
    r.fault.host_delays = fault_->host_delays();
    r.fault.rcce_corrupts = fault_->rcce_corrupts();
    r.fault.host_corrupts = fault_->host_corrupts();
    r.fault.rcce_retransmissions = rcce_->retransmissions();
    r.fault.rcce_transfers_failed = rcce_->transfers_failed();
    r.fault.host_retransmissions = viewer_wire_->wire_retransmissions();
    if (host_wire_ != nullptr) {
      r.fault.host_retransmissions += host_wire_->wire_retransmissions();
    }
    r.fault.fingerprint = fault_->fingerprint();

    // Fault annotations on the timeline: scheduled windows plus every
    // message-fate decision, grouped on a pseudo-core so they line up with
    // the stage spans in chrome://tracing.
    if (cfg_.timeline != nullptr) {
      const auto annotate = [this](const FaultEvent& ev) {
        std::string name = fault_kind_name(ev.kind);
        if (ev.kind == FaultKind::RcceDrop || ev.kind == FaultKind::RcceDelay) {
          name += " " + std::to_string(ev.target / 1000) + "->" +
                  std::to_string(ev.target % 1000);
        } else if (ev.target >= 0) {
          name += " #" + std::to_string(ev.target);
        }
        // Instant decisions (drops) get a nominal width so the recorder
        // keeps them and chrome://tracing shows a visible tick.
        SimTime end = max(ev.end, ev.start + ev.extra);
        if (end == ev.start) end = ev.start + SimTime::us(10);
        cfg_.timeline->add_span(-1, name, "fault", ev.start, end);
      };
      for (const FaultEvent& ev : fault_->schedule()) annotate(ev);
      for (const FaultEvent& ev : fault_->trace()) annotate(ev);
    }
  }

  // ---------------------------------------------------------------- state
  const SceneBundle& scene_;
  const WorkloadTrace& trace_;
  RunConfig cfg_;

  // The partitioned engine owns the region queues; the fabric gives every
  // mesh tile a home region and turns the chip's timed primitives into
  // located event chains, so a --sim-jobs N run dispatches the pipeline
  // across bands concurrently (docs/PERF.md §1.3). `sim_` aliases the host
  // region's Simulator: host-side actors (links, channels, supervisor,
  // producer) keep their plain Simulator& dependency and stay host-owned.
  MeshPartition partition_;
  ParallelSimulator engine_;
  RegionFabric fabric_;
  Simulator& sim_;
  std::unique_ptr<SccChip> chip_;
  std::unique_ptr<RcceComm> rcce_;
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<HostCpu> host_;
  HostLinkConfig viewer_link_{};
  HostLinkConfig producer_link_{};
  Placement placement_;

  std::vector<std::unique_ptr<Channel>> channels_;
  Channel* viewer_ = nullptr;
  Channel* host_in_ = nullptr;
  std::vector<Channel*> head_channels_;  // producer/renderer -> sepia, per pl
  std::vector<Channel*> tail_channels_;  // swap -> transfer, per pipeline
  std::vector<std::unique_ptr<StageState>> stages_;

  int connect_frames_ = 0;
  SimTime connect_wait_posted_ = SimTime::zero();
  SimTime producer_span_start_ = SimTime::zero();
  SampleSet connect_wait_;

  std::vector<int> transfer_assembly_;
  SimTime transfer_wait_posted_ = SimTime::zero();
  SampleSet transfer_wait_;
  std::shared_ptr<Image> transfer_image_;

  std::vector<double> frame_done_ms_;
  std::vector<Image> out_frames_;

  // Fault-run state: typed wire handles for retransmission counters, and
  // the first-failure record that stops the pumps.
  ChipToViewerChannel* viewer_wire_ = nullptr;
  HostToChipChannel* host_wire_ = nullptr;
  bool failed_ = false;
  Status first_failure_;
  std::string first_failure_where_;
  SimTime failed_at_ = SimTime::zero();
  std::vector<std::string> fault_errors_;

  // ---- overload-mode state (inert unless cfg_.overload.enabled()) ----
  bool overload_mode_ = false;
  std::unique_ptr<CircuitBreaker> breaker_;
  ReliableHostToChipChannel* host_arq_ = nullptr;
  std::vector<CreditedSccChannel*> credited_;
  std::deque<int> feeder_q_;        // admitted-but-unrendered frames
  bool feeder_busy_ = false;
  std::vector<SimTime> arrival_at_;  // per frame: offered instant
  std::vector<double> latency_ms_;   // per delivered frame: offer -> viewer
  int max_feeder_q_ = 0;
  int connect_expected_ = 0;  // next frame id the connect stage may see
  TransportReport transport_tally_;  // frame ledger counters, live

  // ---- self-healing state (all empty/unused when supervisor_ is null) ----
  /// Inert fault view for a gray-only Supervisor (no fault plan at all).
  /// Declared before supervisor_, which holds a reference into it.
  std::unique_ptr<FaultInjector> idle_fault_;
  std::unique_ptr<Supervisor> supervisor_;
  RecoveryReport recovery_;
  std::vector<CoreId> spares_;          // remaining promotion candidates
  std::vector<CoreId> remapped_cores_;  // spares promoted into pipelines
  std::vector<std::vector<CoreId>> cores_now_;  // live pipeline->core map
  std::vector<char> pipeline_alive_;
  std::vector<int> pipeline_gen_;
  std::vector<int> acked_;      // last frame delivered to transfer, per pl
  std::vector<int> head_sent_;  // last frame handed to the head, per pl
  std::vector<std::map<int, SentStrip>> outstanding_;  // checkpoint index
  std::vector<std::deque<int>> replay_q_;
  std::vector<char> replay_active_;
  std::set<int> lost_frames_;
  std::map<int, std::vector<int>> frame_routes_;
  double first_detect_ms_ = -1.0;

  // ---- gray-failure state (inert unless cfg_.gray.enabled()) ----
  GrayReport gray_;                        // live tally; finished in collect
  std::map<CoreId, int> gray_rung_;        // ladder rungs climbed, per core
  std::map<CoreId, double> gray_flag_ms_;  // first-flag instant, per core
  std::vector<LatencyHistogram> gray_after_hist_;  // per action, aligned
  std::map<CoreId, std::vector<std::size_t>> gray_after_;  // core -> actions
  std::vector<char> gray_drain_;     // pipeline mid-drain (supervisor-sized)
  std::vector<double> pipe_weight_;  // strip shares (rebalance rung)
  bool gray_weighted_ = false;
  std::map<int, std::vector<StripRange>> frame_strips_;  // weighted splits
  double first_gray_flag_ms_ = -1.0;

  // ---- checkpoint / crash state (inert unless cfg_.checkpoint or a
  //      crash-at fate is active) ----
  std::vector<SimTime> crash_plan_;  // planned process deaths, sorted
  std::uint64_t config_fp_ = 0;
  CheckpointReport ckpt_;
  RunSnapshot resume_snap_;
  bool have_resume_ = false;
  bool resume_checked_ = false;
  bool crashed_ = false;
  SimTime crashed_at_ = SimTime::zero();
  std::size_t crashes_disarmed_ = 0;  // crash-at fates this attempt skips

  // Producer distribution progress (to resume a chain stalled on a dead
  // core) and the supervisor-mode transfer collector's cursor.
  bool dist_active_ = false;
  int dist_frame_ = -1;
  int dist_slot_ = 0;
  int dist_pending_pipeline_ = -1;
  std::shared_ptr<Image> dist_image_;
  int transfer_frame_ = 0;
  int transfer_slot_ = 0;
  std::vector<int> transfer_route_;
  int transfer_ticket_ = 0;
  int transfer_ticket_seq_ = 0;
  bool transfer_waiting_ = false;
  bool transfer_deferred_ = false;
};

}  // namespace

RunResult run_walkthrough(const SceneBundle& scene, const WorkloadTrace& trace,
                          const RunConfig& cfg) {
  WalkthroughSim sim(scene, trace, cfg);
  return sim.run();
}

SingleCoreBreakdown run_single_core(const SceneBundle& scene,
                                    const WorkloadTrace& trace,
                                    const RunConfig& cfg, bool include_filters,
                                    bool include_transfer) {
  Simulator sim;
  SccChip chip(sim, cfg.platform == PlatformKind::Scc
                        ? ChipConfig::scc()
                        : ChipConfig::mogon_node());
  const HostLinkConfig viewer_link = cfg.platform == PlatformKind::Scc
                                         ? HostLinkConfig::mcpc()
                                         : HostLinkConfig::cluster();
  HostChannel viewer_wire(sim, viewer_link);
  const CoreId core = 0;
  chip.allocate_core(core);

  SingleCoreBreakdown out;
  std::vector<std::pair<StageKind, SimTime>>& acc = out.per_stage;
  acc.emplace_back(StageKind::Render, SimTime::zero());
  if (include_filters) {
    for (const StageKind k : kFilterChain) acc.emplace_back(k, SimTime::zero());
  }
  if (include_transfer) acc.emplace_back(StageKind::Transfer, SimTime::zero());

  const double frame_bytes =
      static_cast<double>(scene.image_side()) * scene.image_side() * 4.0;
  const double pixels =
      static_cast<double>(scene.image_side()) * scene.image_side();

  // Sequential: every stage of every frame on one core. Timing is additive
  // (no pipelining), so we can walk the stage list with chained callbacks.
  struct Driver {
    Simulator& sim;
    SccChip& chip;
    HostChannel& viewer_wire;
    const SceneBundle& scene;
    const WorkloadTrace& trace;
    const RunConfig& cfg;
    std::vector<std::pair<StageKind, SimTime>>& acc;
    double frame_bytes;
    double pixels;
    int frame = 0;

    void run_frame() {
      if (frame >= scene.frame_count()) return;
      run_stage(0, sim.now());
    }

    void run_stage(std::size_t idx, SimTime stage_start) {
      if (idx >= acc.size()) {
        ++frame;
        run_frame();
        return;
      }
      const StageKind kind = acc[idx].first;
      auto done = [this, idx, stage_start] {
        acc[idx].second += sim.now() - stage_start;
        run_stage(idx + 1, sim.now());
      };
      switch (kind) {
        case StageKind::Render: {
          StageWork w = render_work(cfg.cal, trace.load(frame, 1, 0),
                                    /*adjust_frustum=*/false);
          w.cycles *= chip.config().render_cycles_scale;
          chip.memory_walk(0, w.walk_accesses, [this, w, done] {
            chip.compute(0, w.cycles, [this, w, done] {
              chip.dram_stream(0, w.dram_bytes, done);
            });
          });
          break;
        }
        case StageKind::Transfer: {
          // No assembly needed (single strip); just the UDP send.
          chip.compute(0, viewer_wire.scc_send_cycles(frame_bytes),
                       [this, done] {
                         viewer_wire.push(frame_bytes, done);
                         viewer_wire.pop([](double) {});
                       });
          break;
        }
        default: {
          const int scratches =
              scratch_params_for_frame(cfg.seed, frame, scene.image_side(),
                                       cfg.cal.max_scratches)
                  .count;
          const StageWork w = filter_work(cfg.cal, kind, pixels, scratches);
          chip.compute(0, w.cycles, [this, w, done] {
            chip.dram_stream(0, w.dram_bytes, done);
          });
          break;
        }
      }
    }
  };

  Driver driver{sim,  chip,        viewer_wire, scene, trace,
                cfg,  out.per_stage, frame_bytes, pixels};
  driver.run_frame();
  sim.run();
  chip.release_core(core);

  for (const auto& [k, v] : out.per_stage) out.total += v;
  return out;
}

}  // namespace sccpipe
