#include "sccpipe/scene/city.hpp"

#include "sccpipe/support/check.hpp"
#include "sccpipe/support/rng.hpp"

namespace sccpipe {

namespace {

Color building_color(Rng& rng) {
  // Muted facade palette; brightness varies per building.
  const auto base = static_cast<std::uint8_t>(90 + rng.below(120));
  const auto warm = static_cast<std::uint8_t>(rng.below(40));
  return Color{static_cast<std::uint8_t>(base + warm),
               static_cast<std::uint8_t>(base + warm / 2), base, 255};
}

}  // namespace

Mesh generate_city(const CityParams& p) {
  SCCPIPE_CHECK(p.blocks_x > 0 && p.blocks_z > 0);
  SCCPIPE_CHECK(p.block_size > 0.0f && p.street_width >= 0.0f);
  SCCPIPE_CHECK(p.min_buildings_per_block >= 1);
  SCCPIPE_CHECK(p.max_buildings_per_block >= p.min_buildings_per_block);
  SCCPIPE_CHECK(p.max_height >= p.min_height && p.min_height > 0.0f);

  Rng rng{p.seed};
  Mesh mesh;
  const float pitch = p.block_size + p.street_width;
  const float city_w = static_cast<float>(p.blocks_x) * pitch;
  const float city_d = static_cast<float>(p.blocks_z) * pitch;
  const float ox = -city_w * 0.5f;
  const float oz = -city_d * 0.5f;

  // One ground slab under everything.
  mesh.add_ground_quad(ox - pitch, oz - pitch, ox + city_w + pitch,
                       oz + city_d + pitch, 0.0f, Color{60, 62, 58, 255});

  for (int bz = 0; bz < p.blocks_z; ++bz) {
    for (int bx = 0; bx < p.blocks_x; ++bx) {
      const float x0 = ox + static_cast<float>(bx) * pitch;
      const float z0 = oz + static_cast<float>(bz) * pitch;
      const int count = static_cast<int>(
          rng.range(p.min_buildings_per_block, p.max_buildings_per_block));
      for (int i = 0; i < count; ++i) {
        // Random sub-footprint inside the block, with margins.
        const float fw = static_cast<float>(
            rng.uniform(0.25 * p.block_size, 0.55 * p.block_size));
        const float fd = static_cast<float>(
            rng.uniform(0.25 * p.block_size, 0.55 * p.block_size));
        const float px = x0 + static_cast<float>(
                                  rng.uniform(0.0, p.block_size - fw));
        const float pz = z0 + static_cast<float>(
                                  rng.uniform(0.0, p.block_size - fd));
        const float h = static_cast<float>(
            rng.uniform(p.min_height, p.max_height));
        const Color color = building_color(rng);
        mesh.add_box(Vec3{px, 0.0f, pz}, Vec3{px + fw, h, pz + fd}, color);
        if (rng.uniform() < p.roof_probability) {
          mesh.add_pyramid(Vec3{px, h, pz}, Vec3{px + fw, h, pz + fd},
                           h + 0.3f * fw,
                           Color{static_cast<std::uint8_t>(color.r / 2),
                                 static_cast<std::uint8_t>(color.g / 2),
                                 static_cast<std::uint8_t>(color.b / 2), 255});
        }
      }
    }
  }
  return mesh;
}

}  // namespace sccpipe
