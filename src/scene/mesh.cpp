#include "sccpipe/scene/mesh.hpp"

namespace sccpipe {

void Mesh::add(const Triangle& t) {
  tris_.push_back(t);
  bounds_.extend(t.bounds());
}

void Mesh::add_box(Vec3 lo, Vec3 hi, Color color) {
  const Vec3 c000{lo.x, lo.y, lo.z}, c100{hi.x, lo.y, lo.z};
  const Vec3 c010{lo.x, hi.y, lo.z}, c110{hi.x, hi.y, lo.z};
  const Vec3 c001{lo.x, lo.y, hi.z}, c101{hi.x, lo.y, hi.z};
  const Vec3 c011{lo.x, hi.y, hi.z}, c111{hi.x, hi.y, hi.z};
  auto quad = [&](Vec3 a, Vec3 b, Vec3 c, Vec3 d) {
    add(Triangle{a, b, c, color});
    add(Triangle{a, c, d, color});
  };
  quad(c000, c100, c110, c010);  // -z
  quad(c101, c001, c011, c111);  // +z
  quad(c001, c000, c010, c011);  // -x
  quad(c100, c101, c111, c110);  // +x
  quad(c010, c110, c111, c011);  // +y (top)
  quad(c001, c101, c100, c000);  // -y (bottom)
}

void Mesh::add_ground_quad(float x0, float z0, float x1, float z1, float y,
                           Color color) {
  const Vec3 a{x0, y, z0}, b{x1, y, z0}, c{x1, y, z1}, d{x0, y, z1};
  add(Triangle{a, b, c, color});
  add(Triangle{a, c, d, color});
}

void Mesh::add_pyramid(Vec3 lo, Vec3 hi, float apex_y, Color color) {
  const Vec3 apex{(lo.x + hi.x) * 0.5f, apex_y, (lo.z + hi.z) * 0.5f};
  const Vec3 c00{lo.x, lo.y, lo.z}, c10{hi.x, lo.y, lo.z};
  const Vec3 c11{hi.x, lo.y, hi.z}, c01{lo.x, lo.y, hi.z};
  add(Triangle{c00, c10, apex, color});
  add(Triangle{c10, c11, apex, color});
  add(Triangle{c11, c01, apex, color});
  add(Triangle{c01, c00, apex, color});
}

}  // namespace sccpipe
