#include "sccpipe/scene/octree.hpp"

#include <algorithm>
#include <numeric>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

Octree::Octree(const Mesh& mesh, OctreeConfig cfg) : cfg_(cfg) {
  SCCPIPE_CHECK_MSG(!mesh.empty(), "octree over empty mesh");
  SCCPIPE_CHECK(cfg_.max_depth >= 0 && cfg_.max_tris_per_leaf > 0);
  nodes_.emplace_back();
  nodes_[0].box = mesh.bounds();
  std::vector<std::uint32_t> all(mesh.size());
  std::iota(all.begin(), all.end(), 0u);
  // Keep a copy of triangle bounds to avoid re-deriving them per split.
  tri_bounds_.reserve(mesh.size());
  for (const Triangle& t : mesh.triangles()) tri_bounds_.push_back(t.bounds());
  build(mesh, 0, std::move(all), 0);
  tri_bounds_.clear();
  tri_bounds_.shrink_to_fit();
}

const Aabb& Octree::bounds() const {
  SCCPIPE_CHECK(built());
  return nodes_[0].box;
}

void Octree::build(const Mesh& mesh, std::int32_t node_index,
                   std::vector<std::uint32_t> tris, int depth) {
  depth_ = std::max(depth_, depth);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  if (depth >= cfg_.max_depth ||
      tris.size() <= static_cast<std::size_t>(cfg_.max_tris_per_leaf)) {
    node.tris = std::move(tris);
    node.is_leaf = true;
    return;
  }

  const Vec3 c = node.box.center();
  const Aabb box = node.box;
  std::vector<std::uint32_t> child_tris[8];
  std::vector<std::uint32_t> straddlers;
  for (const std::uint32_t ti : tris) {
    const Aabb& tb = tri_bounds_[ti];
    // Which octant does the triangle's box fall into entirely?
    const Vec3 tc = tb.center();
    const int ox = tc.x >= c.x ? 1 : 0;
    const int oy = tc.y >= c.y ? 1 : 0;
    const int oz = tc.z >= c.z ? 1 : 0;
    const int oct = ox | (oy << 1) | (oz << 2);
    // A triangle goes down only if it fits its octant; otherwise it stays
    // resident here (each triangle is referenced exactly once).
    const Aabb ob = octant_box(box, c, oct);
    if (ob.lo.x <= tb.lo.x && ob.lo.y <= tb.lo.y && ob.lo.z <= tb.lo.z &&
        ob.hi.x >= tb.hi.x && ob.hi.y >= tb.hi.y && ob.hi.z >= tb.hi.z) {
      child_tris[oct].push_back(ti);
    } else {
      straddlers.push_back(ti);
    }
  }

  // Degenerate split (everything straddles or lands in one octant):
  // terminate to avoid useless depth.
  std::size_t moved = 0;
  for (const auto& ct : child_tris) moved += ct.size();
  if (moved == 0) {
    node.tris = std::move(tris);
    node.is_leaf = true;
    return;
  }

  node.tris = std::move(straddlers);
  node.is_leaf = false;
  for (int oct = 0; oct < 8; ++oct) {
    if (child_tris[oct].empty()) continue;
    const auto child_index = static_cast<std::int32_t>(nodes_.size());
    // Note: `node` reference may dangle after emplace_back; use indices.
    nodes_[static_cast<std::size_t>(node_index)].children[oct] = child_index;
    Node child;
    child.box = octant_box(box, c, oct);
    nodes_.push_back(std::move(child));
    build(mesh, child_index, std::move(child_tris[oct]), depth + 1);
  }
}

Aabb Octree::octant_box(const Aabb& parent, Vec3 center, int oct) {
  Aabb b;
  b.lo.x = (oct & 1) ? center.x : parent.lo.x;
  b.hi.x = (oct & 1) ? parent.hi.x : center.x;
  b.lo.y = (oct & 2) ? center.y : parent.lo.y;
  b.hi.y = (oct & 2) ? parent.hi.y : center.y;
  b.lo.z = (oct & 4) ? center.z : parent.lo.z;
  b.hi.z = (oct & 4) ? parent.hi.z : center.z;
  return b;
}

void Octree::cull(const Frustum& frustum, std::vector<std::uint32_t>& out,
                  CullStats* stats) const {
  SCCPIPE_CHECK(built());
  if (stats) stats->nodes_total = static_cast<std::uint32_t>(nodes_.size());
  cull_node(0, frustum, false, out, stats);
}

void Octree::cull_node(std::int32_t node_index, const Frustum& frustum,
                       bool fully_inside, std::vector<std::uint32_t>& out,
                       CullStats* stats) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];
  if (stats) ++stats->nodes_visited;
  if (!fully_inside) {
    const CullResult r = frustum.classify(node.box);
    if (r == CullResult::Outside) return;
    fully_inside = (r == CullResult::Inside);
  }
  out.insert(out.end(), node.tris.begin(), node.tris.end());
  if (stats) stats->tris_accepted += static_cast<std::uint32_t>(node.tris.size());
  if (node.is_leaf) return;
  for (const std::int32_t child : node.children) {
    if (child >= 0) cull_node(child, frustum, fully_inside, out, stats);
  }
}

std::size_t Octree::stored_triangles() const {
  std::size_t n = 0;
  for (const Node& node : nodes_) n += node.tris.size();
  return n;
}

}  // namespace sccpipe
