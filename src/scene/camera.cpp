#include "sccpipe/scene/camera.hpp"

#include <cmath>

#include "sccpipe/geom/aabb.hpp"
#include "sccpipe/support/check.hpp"

namespace sccpipe {

Mat4 strip_projection(const CameraConfig& cfg, int width, int height,
                      StripRange strip) {
  SCCPIPE_CHECK(width > 0 && height > 0);
  SCCPIPE_CHECK(strip.y0 >= 0 && strip.rows > 0 &&
                strip.y0 + strip.rows <= height);
  const float aspect =
      static_cast<float>(width) / static_cast<float>(height);
  const float top_full = cfg.z_near * std::tan(cfg.fovy_radians * 0.5f);
  const float right = top_full * aspect;
  // Screen row 0 is the top of the image (NDC y = +1); rows grow downward.
  const float ndc_top =
      1.0f - 2.0f * static_cast<float>(strip.y0) / static_cast<float>(height);
  const float ndc_bottom =
      1.0f - 2.0f * static_cast<float>(strip.y0 + strip.rows) /
                 static_cast<float>(height);
  return Mat4::frustum(-right, right, top_full * ndc_bottom,
                       top_full * ndc_top, cfg.z_near, cfg.z_far);
}

WalkthroughPath::WalkthroughPath(const Aabb& scene_bounds, int frame_count)
    : bounds_(scene_bounds), frames_(frame_count) {
  SCCPIPE_CHECK(frame_count > 0);
  SCCPIPE_CHECK(scene_bounds.valid());
}

Vec3 WalkthroughPath::position_at(float t) const {
  // Spiral-ish orbit: radius and height oscillate so the visible set (and
  // therefore the render load) varies over the walkthrough like a real
  // fly-through does.
  const Vec3 c = bounds_.center();
  const Vec3 e = bounds_.extent();
  const float angle = t * 6.2831853f;  // one full orbit
  const float radius =
      0.55f * std::max(e.x, e.z) * (1.0f + 0.35f * std::sin(3.0f * angle));
  const float h = bounds_.lo.y + 0.35f * (bounds_.hi.y - bounds_.lo.y) *
                                     (1.2f + std::sin(2.0f * angle));
  return Vec3{c.x + radius * std::cos(angle), h,
              c.z + radius * std::sin(angle)};
}

Vec3 WalkthroughPath::eye(int frame) const {
  SCCPIPE_CHECK(frame >= 0 && frame < frames_);
  return position_at(static_cast<float>(frame) / static_cast<float>(frames_));
}

Vec3 WalkthroughPath::target(int frame) const {
  SCCPIPE_CHECK(frame >= 0 && frame < frames_);
  // Look a few frames ahead along the path, biased toward the city centre.
  const float t =
      static_cast<float>(frame + 6) / static_cast<float>(frames_);
  const Vec3 ahead = position_at(t - std::floor(t));
  const Vec3 c = bounds_.center();
  return lerp(ahead, Vec3{c.x, bounds_.lo.y + 8.0f, c.z}, 0.55f);
}

Mat4 WalkthroughPath::view(int frame) const {
  return Mat4::look_at(eye(frame), target(frame), Vec3{0.0f, 1.0f, 0.0f});
}

}  // namespace sccpipe
