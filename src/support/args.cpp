#include "sccpipe/support/args.hpp"

#include <cstdlib>
#include <sstream>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  SCCPIPE_CHECK_MSG(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{help, default_value, false};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    if (!have_value) {
      // Next token is the value unless it is another flag (bool style).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = std::move(value);
    it->second.seen = true;
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.seen;
}

std::string ArgParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  SCCPIPE_CHECK_MSG(it != flags_.end(), "unregistered flag --" << name);
  return it->second.value;
}

int ArgParser::get_int(const std::string& name) const {
  return std::atoi(get(name).c_str());
}

double ArgParser::get_double(const std::string& name) const {
  return std::atof(get(name).c_str());
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string ArgParser::usage(const std::string& program) const {
  std::ostringstream oss;
  oss << "usage: " << program << " [flags]\n";
  for (const std::string& name : order_) {
    const Flag& f = flags_.at(name);
    oss << "  --" << name;
    if (!f.value.empty()) oss << " (default: " << f.value << ")";
    oss << "\n      " << f.help << "\n";
  }
  return oss.str();
}

}  // namespace sccpipe
