#include "sccpipe/support/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "sccpipe/support/crc.hpp"

namespace sccpipe::snapshot {

namespace {

constexpr std::size_t kHeaderBytes = 20;

double bits_to_f64(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::uint64_t f64_to_bits(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

void append_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t load_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

Status data_loss(const std::string& what) {
  return Status(StatusCode::DataLoss, "snapshot " + what);
}

}  // namespace

// ------------------------------------------------------------------ Writer

void Writer::tag(Tag t) { payload_.push_back(static_cast<std::uint8_t>(t)); }
void Writer::raw_u32(std::uint32_t v) { append_u32_le(payload_, v); }
void Writer::raw_u64(std::uint64_t v) { append_u64_le(payload_, v); }

void Writer::u32(std::uint32_t v) {
  tag(Tag::U32);
  raw_u32(v);
}

void Writer::u64(std::uint64_t v) {
  tag(Tag::U64);
  raw_u64(v);
}

void Writer::i64(std::int64_t v) {
  tag(Tag::I64);
  raw_u64(static_cast<std::uint64_t>(v));
}

void Writer::f64(double v) {
  tag(Tag::F64);
  raw_u64(f64_to_bits(v));
}

void Writer::bytes(const void* data, std::size_t size) {
  tag(Tag::Bytes);
  raw_u64(size);
  const auto* p = static_cast<const std::uint8_t*>(data);
  payload_.insert(payload_.end(), p, p + size);
}

void Writer::str(const std::string& s) {
  tag(Tag::Str);
  raw_u64(s.size());
  payload_.insert(payload_.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> Writer::finish() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload_.size());
  append_u32_le(out, kMagic);
  append_u32_le(out, kSnapshotVersion);
  append_u64_le(out, payload_.size());
  append_u32_le(out, crc32(payload_.data(), payload_.size()));
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

// ------------------------------------------------------------------ Reader

Status Reader::open(const std::vector<std::uint8_t>& data) {
  payload_.clear();
  pos_ = 0;
  if (data.size() < kHeaderBytes) {
    return data_loss("truncated: " + std::to_string(data.size()) +
                     " bytes is shorter than the frame header");
  }
  if (load_u32_le(data.data()) != kMagic) {
    return data_loss("has a bad magic number");
  }
  const std::uint32_t version = load_u32_le(data.data() + 4);
  if (version != kSnapshotVersion) {
    return Status(StatusCode::VersionSkew,
                  "snapshot format version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint64_t len = load_u64_le(data.data() + 8);
  if (len != data.size() - kHeaderBytes) {
    return data_loss("length field says " + std::to_string(len) +
                     " payload bytes but the file holds " +
                     std::to_string(data.size() - kHeaderBytes));
  }
  const std::uint32_t want_crc = load_u32_le(data.data() + 16);
  const std::uint32_t got_crc =
      crc32(data.data() + kHeaderBytes, static_cast<std::size_t>(len));
  if (want_crc != got_crc) {
    return data_loss("payload fails its CRC-32 check");
  }
  payload_.assign(data.begin() + kHeaderBytes, data.end());
  return Status();
}

Status Reader::need(std::size_t n) const {
  if (payload_.size() - pos_ < n) {
    return data_loss("payload ends mid-field");
  }
  return Status();
}

Status Reader::expect_tag(Tag want) {
  Status s = need(1);
  if (!s.ok()) return s;
  const auto got = static_cast<Tag>(payload_[pos_]);
  if (got != want) {
    return data_loss("field tag mismatch: expected " +
                     std::to_string(static_cast<int>(want)) + ", found " +
                     std::to_string(static_cast<int>(got)));
  }
  ++pos_;
  return Status();
}

Status Reader::raw_u64(std::uint64_t* out) {
  Status s = need(8);
  if (!s.ok()) return s;
  *out = load_u64_le(payload_.data() + pos_);
  pos_ += 8;
  return Status();
}

Status Reader::u32(std::uint32_t* out) {
  Status s = expect_tag(Tag::U32);
  if (!s.ok()) return s;
  s = need(4);
  if (!s.ok()) return s;
  *out = load_u32_le(payload_.data() + pos_);
  pos_ += 4;
  return Status();
}

Status Reader::u64(std::uint64_t* out) {
  Status s = expect_tag(Tag::U64);
  if (!s.ok()) return s;
  return raw_u64(out);
}

Status Reader::i64(std::int64_t* out) {
  Status s = expect_tag(Tag::I64);
  if (!s.ok()) return s;
  std::uint64_t bits = 0;
  s = raw_u64(&bits);
  if (!s.ok()) return s;
  *out = static_cast<std::int64_t>(bits);
  return Status();
}

Status Reader::f64(double* out) {
  Status s = expect_tag(Tag::F64);
  if (!s.ok()) return s;
  std::uint64_t bits = 0;
  s = raw_u64(&bits);
  if (!s.ok()) return s;
  *out = bits_to_f64(bits);
  return Status();
}

Status Reader::bytes(std::vector<std::uint8_t>* out) {
  Status s = expect_tag(Tag::Bytes);
  if (!s.ok()) return s;
  std::uint64_t len = 0;
  s = raw_u64(&len);
  if (!s.ok()) return s;
  s = need(static_cast<std::size_t>(len));
  if (!s.ok()) return s;
  out->assign(payload_.begin() + static_cast<std::ptrdiff_t>(pos_),
              payload_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += static_cast<std::size_t>(len);
  return Status();
}

Status Reader::str(std::string* out) {
  Status s = expect_tag(Tag::Str);
  if (!s.ok()) return s;
  std::uint64_t len = 0;
  s = raw_u64(&len);
  if (!s.ok()) return s;
  s = need(static_cast<std::size_t>(len));
  if (!s.ok()) return s;
  out->assign(payload_.begin() + static_cast<std::ptrdiff_t>(pos_),
              payload_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += static_cast<std::size_t>(len);
  return Status();
}

// ---------------------------------------------------------------- file I/O

Status write_file_atomic(const std::string& path,
                         const std::vector<std::uint8_t>& framed) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status(StatusCode::InvalidArgument,
                  "cannot create checkpoint file '" + tmp +
                      "': " + std::strerror(errno));
  }
  const std::size_t written = framed.empty()
                                  ? 0
                                  : std::fwrite(framed.data(), 1,
                                                framed.size(), f);
  // fflush + fclose before rename: the rename must publish complete bytes.
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != framed.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status(StatusCode::InvalidArgument,
                  "short write to checkpoint file '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::InvalidArgument,
                  "cannot publish checkpoint file '" + path +
                      "': " + std::strerror(errno));
  }
  return Status();
}

Status read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(StatusCode::NotFound,
                  "snapshot file '" + path + "': " + std::strerror(errno));
  }
  out->clear();
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status(StatusCode::NotFound,
                  "snapshot file '" + path + "' is unreadable");
  }
  return Status();
}

Status validate_checkpoint_args(int every_frames, bool every_set,
                                const std::string& path, bool resume) {
  if (every_set && every_frames <= 0) {
    return Status(StatusCode::InvalidArgument,
                  "--checkpoint-every must be a positive frame count, got " +
                      std::to_string(every_frames));
  }
  if ((every_frames > 0 || resume) && path.empty()) {
    return Status(StatusCode::InvalidArgument,
                  "--checkpoint-file is required with --checkpoint-every/"
                  "--resume");
  }
  if (!path.empty() && every_frames <= 0 && !resume) {
    return Status(StatusCode::InvalidArgument,
                  "--checkpoint-file without --checkpoint-every/--resume "
                  "would never be read or written");
  }
  if (every_frames > 0) {
    // Probe the directory, not the file: the file legitimately may not
    // exist yet, but an unwritable directory should fail at parse time,
    // not one checkpoint interval into the run.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash == 0 ? 1 : slash);
    if (access(dir.c_str(), W_OK | X_OK) != 0) {
      return Status(StatusCode::InvalidArgument,
                    "checkpoint directory '" + dir +
                        "' is not writable: " + std::strerror(errno));
    }
  }
  if (resume && access(path.c_str(), R_OK) != 0) {
    return Status(StatusCode::NotFound,
                  "--resume needs an existing readable snapshot at '" + path +
                      "': " + std::strerror(errno));
  }
  return Status();
}

}  // namespace sccpipe::snapshot
