#include "sccpipe/support/table.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  SCCPIPE_CHECK(!header_.empty());
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  SCCPIPE_CHECK_MSG(!rows_.empty(), "call row() before add()");
  SCCPIPE_CHECK_MSG(rows_.back().size() < header_.size(),
                    "row has more cells than header columns");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(double value, int precision) {
  return add(format_fixed(value, precision));
}

TextTable& TextTable::add(std::size_t value) {
  return add(std::to_string(value));
}

TextTable& TextTable::add(int value) { return add(std::to_string(value)); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      if (c) oss << "  ";
      // Left-align the first column (labels), right-align the rest (numbers).
      if (c == 0) {
        oss << cell << std::string(widths[c] - cell.size(), ' ');
      } else {
        oss << std::string(widths[c] - cell.size(), ' ') << cell;
      }
    }
    oss << '\n';
  };

  emit_row(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule.emplace_back(widths[c], '-');
  }
  emit_row(rule);
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) oss << ',';
      oss << cells[c];
    }
    oss << '\n';
  };
  emit(header);
  for (const auto& row : rows) emit(row);
  return oss.str();
}

}  // namespace sccpipe
