#include "sccpipe/support/check.hpp"

namespace sccpipe::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "check failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw CheckError(oss.str());
}

}  // namespace sccpipe::detail
