#include "sccpipe/support/time.hpp"

#include <cmath>
#include <cstdio>

namespace sccpipe {

std::string SimTime::to_string() const {
  const double abs_ns = std::fabs(static_cast<double>(ns_));
  char buf[48];
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(ns_));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f us", to_us());
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_ms());
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", to_sec());
  }
  return buf;
}

}  // namespace sccpipe
