#include "sccpipe/support/crc.hpp"

#include <array>

namespace sccpipe {

namespace {

/// Byte-at-a-time table for the reflected IEEE polynomial, generated once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t advance(std::uint32_t state, const void* data,
                      std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = crc_table();
  for (std::size_t i = 0; i < size; ++i) {
    state = table[(state ^ p[i]) & 0xffu] ^ (state >> 8);
  }
  return state;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  return advance(seed ^ 0xffffffffu, data, size) ^ 0xffffffffu;
}

void Crc32::update(const void* data, std::size_t size) {
  state_ = advance(state_, data, size);
}

}  // namespace sccpipe
