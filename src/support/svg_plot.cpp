#include "sccpipe/support/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

namespace {

constexpr const char* kPalette[] = {
    "#2f6fb2", "#c23b3b", "#3d9950", "#8b5cb5",
    "#c28a2f", "#3ba6a6", "#b53d7f", "#6b7280",
};
constexpr int kPaletteSize = 8;

std::string fmt(double v) {
  char buf[32];
  if (std::fabs(v) >= 1000.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (std::fabs(v) >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

std::string escape_xml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<double> nice_ticks(double lo, double hi, int target_count) {
  SCCPIPE_CHECK(hi >= lo);
  SCCPIPE_CHECK(target_count >= 2);
  if (hi == lo) return {lo};
  const double raw_step = (hi - lo) / (target_count - 1);
  const double mag = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = mag;
  for (const double m : {1.0, 2.0, 5.0, 10.0}) {
    if (mag * m >= raw_step) {
      step = mag * m;
      break;
    }
  }
  std::vector<double> ticks;
  const double start = std::ceil(lo / step) * step;
  for (double t = start; t <= hi + 1e-9 * step; t += step) {
    // Snap tiny float residue to zero.
    ticks.push_back(std::fabs(t) < step * 1e-9 ? 0.0 : t);
  }
  return ticks;
}

SvgPlot::SvgPlot(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void SvgPlot::add_series(PlotSeries series) {
  SCCPIPE_CHECK_MSG(series.x.size() == series.y.size(),
                    "series '" << series.label << "' x/y size mismatch");
  SCCPIPE_CHECK_MSG(!series.x.empty(), "empty series '" << series.label << "'");
  if (series.color.empty()) {
    series.color = kPalette[series_.size() % kPaletteSize];
  }
  series_.push_back(std::move(series));
}

void SvgPlot::set_x_range(double lo, double hi) {
  SCCPIPE_CHECK(hi > lo);
  has_x_range_ = true;
  x_lo_ = lo;
  x_hi_ = hi;
}

void SvgPlot::set_y_range(double lo, double hi) {
  SCCPIPE_CHECK(hi > lo);
  has_y_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string SvgPlot::to_svg(int width, int height) const {
  SCCPIPE_CHECK(!series_.empty());
  // Data ranges.
  double x_lo = x_lo_, x_hi = x_hi_, y_lo = y_lo_, y_hi = y_hi_;
  if (!has_x_range_) {
    x_lo = series_[0].x[0];
    x_hi = x_lo;
    for (const PlotSeries& s : series_) {
      for (const double v : s.x) {
        x_lo = std::min(x_lo, v);
        x_hi = std::max(x_hi, v);
      }
    }
    if (x_hi == x_lo) x_hi = x_lo + 1.0;
  }
  if (!has_y_range_) {
    y_lo = y_from_zero_ ? 0.0 : series_[0].y[0];
    y_hi = series_[0].y[0];
    for (const PlotSeries& s : series_) {
      for (const double v : s.y) {
        if (!y_from_zero_) y_lo = std::min(y_lo, v);
        y_hi = std::max(y_hi, v);
      }
    }
    const double pad = 0.06 * (y_hi - y_lo + 1e-12);
    y_hi += pad;
    if (!y_from_zero_) y_lo -= pad;
    if (y_hi == y_lo) y_hi = y_lo + 1.0;
  }

  // Plot area.
  const double ml = 62, mr = 16, mt = 34, mb = 46;
  const double pw = width - ml - mr;
  const double ph = height - mt - mb;
  auto px = [&](double x) { return ml + (x - x_lo) / (x_hi - x_lo) * pw; };
  auto py = [&](double y) {
    return mt + ph - (y - y_lo) / (y_hi - y_lo) * ph;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
      << height << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<text x=\"" << width / 2 << "\" y=\"20\" text-anchor=\"middle\" "
         "font-family=\"sans-serif\" font-size=\"14\">"
      << escape_xml(title_) << "</text>\n";

  // Grid and ticks.
  svg << "<g font-family=\"sans-serif\" font-size=\"11\" fill=\"#444\">\n";
  for (const double t : nice_ticks(x_lo, x_hi)) {
    const double x = px(t);
    svg << "<line x1=\"" << x << "\" y1=\"" << mt << "\" x2=\"" << x
        << "\" y2=\"" << mt + ph << "\" stroke=\"#e5e5e5\"/>\n";
    svg << "<text x=\"" << x << "\" y=\"" << mt + ph + 16
        << "\" text-anchor=\"middle\">" << fmt(t) << "</text>\n";
  }
  for (const double t : nice_ticks(y_lo, y_hi)) {
    const double y = py(t);
    svg << "<line x1=\"" << ml << "\" y1=\"" << y << "\" x2=\"" << ml + pw
        << "\" y2=\"" << y << "\" stroke=\"#e5e5e5\"/>\n";
    svg << "<text x=\"" << ml - 6 << "\" y=\"" << y + 4
        << "\" text-anchor=\"end\">" << fmt(t) << "</text>\n";
  }
  // Axis labels.
  svg << "<text x=\"" << ml + pw / 2 << "\" y=\"" << height - 8
      << "\" text-anchor=\"middle\">" << escape_xml(x_label_) << "</text>\n";
  svg << "<text x=\"14\" y=\"" << mt + ph / 2
      << "\" text-anchor=\"middle\" transform=\"rotate(-90 14 " << mt + ph / 2
      << ")\">" << escape_xml(y_label_) << "</text>\n";
  svg << "</g>\n";
  // Frame.
  svg << "<rect x=\"" << ml << "\" y=\"" << mt << "\" width=\"" << pw
      << "\" height=\"" << ph << "\" fill=\"none\" stroke=\"#888\"/>\n";

  // Series.
  for (const PlotSeries& s : series_) {
    svg << "<polyline fill=\"none\" stroke=\"" << s.color
        << "\" stroke-width=\"1.8\"";
    if (s.dashed) svg << " stroke-dasharray=\"6 4\"";
    svg << " points=\"";
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      svg << px(s.x[i]) << ',' << py(s.y[i]) << ' ';
    }
    svg << "\"/>\n";
    if (s.markers) {
      for (std::size_t i = 0; i < s.x.size(); ++i) {
        svg << "<circle cx=\"" << px(s.x[i]) << "\" cy=\"" << py(s.y[i])
            << "\" r=\"2.6\" fill=\"" << s.color << "\"/>\n";
      }
    }
  }

  // Legend.
  double ly = mt + 8;
  for (const PlotSeries& s : series_) {
    const double lx = ml + pw - 170;
    svg << "<line x1=\"" << lx << "\" y1=\"" << ly << "\" x2=\"" << lx + 22
        << "\" y2=\"" << ly << "\" stroke=\"" << s.color
        << "\" stroke-width=\"2\"";
    if (s.dashed) svg << " stroke-dasharray=\"6 4\"";
    svg << "/>\n";
    svg << "<text x=\"" << lx + 28 << "\" y=\"" << ly + 4
        << "\" font-family=\"sans-serif\" font-size=\"11\" fill=\"#333\">"
        << escape_xml(s.label) << "</text>\n";
    ly += 16;
  }

  svg << "</svg>\n";
  return svg.str();
}

void SvgPlot::write(const std::string& path, int width, int height) const {
  std::ofstream f(path);
  SCCPIPE_CHECK_MSG(f.is_open(), "cannot open " << path);
  f << to_svg(width, height);
  SCCPIPE_CHECK_MSG(f.good(), "write failed: " << path);
}

}  // namespace sccpipe
