#include "sccpipe/support/status.hpp"

namespace sccpipe {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "Ok";
    case StatusCode::Timeout: return "Timeout";
    case StatusCode::RetriesExhausted: return "RetriesExhausted";
    case StatusCode::DeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::Unavailable: return "Unavailable";
    case StatusCode::Cancelled: return "Cancelled";
    case StatusCode::InvalidArgument: return "InvalidArgument";
    case StatusCode::NotFound: return "NotFound";
    case StatusCode::DataLoss: return "DataLoss";
    case StatusCode::VersionSkew: return "VersionSkew";
  }
  return "?";
}

std::string Status::to_string() const {
  if (ok()) return "Ok";
  std::string s = status_code_name(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace sccpipe
