#include "sccpipe/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double quantile_sorted(const std::vector<double>& sorted, double q) {
  SCCPIPE_CHECK(!sorted.empty());
  SCCPIPE_CHECK_MSG(q >= 0.0 && q <= 1.0, "q=" << q);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

LatencyHistogram::LatencyHistogram(double bucket_width,
                                   std::size_t max_buckets)
    : width_(bucket_width), max_buckets_(max_buckets) {
  SCCPIPE_CHECK(bucket_width > 0.0);
  SCCPIPE_CHECK(max_buckets > 0);
}

std::size_t LatencyHistogram::bucket_of(double x) const {
  if (!(x > 0.0)) return 0;  // negatives (and NaN) clamp low
  const double idx = x / width_;
  if (idx >= static_cast<double>(max_buckets_)) return max_buckets_ - 1;
  return static_cast<std::size_t>(idx);
}

void LatencyHistogram::add(double x) {
  const std::size_t b = bucket_of(x);
  if (b >= buckets_.size()) buckets_.resize(b + 1);
  buckets_[b].push_back(x);
  ++count_;
  sum_ += x;
}

void LatencyHistogram::clear() {
  // Keep the allocated bucket spine (the detector reuses one histogram per
  // window); only the retained samples go.
  for (std::vector<double>& b : buckets_) b.clear();
  count_ = 0;
  sum_ = 0.0;
}

double LatencyHistogram::quantile(double q) const {
  SCCPIPE_CHECK(count_ > 0);
  SCCPIPE_CHECK_MSG(q >= 0.0 && q <= 1.0, "q=" << q);
  // Mirror quantile_sorted()'s R-7 arithmetic exactly — same pos/lo/frac,
  // same back()-clamp — so the two paths agree to the last bit.
  const double pos = q * static_cast<double>(count_ - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const std::size_t hi = lo + 1;
  double v_lo = 0.0, v_hi = 0.0;
  bool have_lo = false, have_hi = false;
  std::size_t cum = 0;
  std::vector<double> scratch;
  for (const std::vector<double>& b : buckets_) {
    if (b.empty()) continue;
    const std::size_t next = cum + b.size();
    const bool lo_here = !have_lo && lo < next;
    const bool hi_here = have_lo && !have_hi && hi < next;
    if (lo_here || hi_here) {
      scratch = b;
      std::sort(scratch.begin(), scratch.end());
      if (lo_here) {
        v_lo = scratch[lo - cum];
        have_lo = true;
        if (hi < next) {
          v_hi = scratch[hi - cum];
          have_hi = true;
        }
      } else {
        v_hi = scratch[hi - cum];
        have_hi = true;
      }
    }
    if (have_hi) break;
    cum = next;
  }
  SCCPIPE_CHECK(have_lo);
  if (hi >= count_) return v_lo;  // q == 1 (or count == 1): the maximum
  SCCPIPE_CHECK(have_hi);
  return v_lo + frac * (v_hi - v_lo);
}

QuantileSummary summarize(std::vector<double> samples) {
  QuantileSummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.q1 = quantile_sorted(samples, 0.25);
  s.median = quantile_sorted(samples, 0.50);
  s.q3 = quantile_sorted(samples, 0.75);
  return s;
}

}  // namespace sccpipe
