#include "sccpipe/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double quantile_sorted(const std::vector<double>& sorted, double q) {
  SCCPIPE_CHECK(!sorted.empty());
  SCCPIPE_CHECK_MSG(q >= 0.0 && q <= 1.0, "q=" << q);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

QuantileSummary summarize(std::vector<double> samples) {
  QuantileSummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.q1 = quantile_sorted(samples, 0.25);
  s.median = quantile_sorted(samples, 0.50);
  s.q3 = quantile_sorted(samples, 0.75);
  return s;
}

}  // namespace sccpipe
