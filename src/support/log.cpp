#include "sccpipe/support/log.hpp"

#include <atomic>
#include <cstdio>

namespace sccpipe {

namespace {
// Atomic: worker threads of the parallel executor read the level
// concurrently (log.hpp); stores are rare (test setup only).
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[sccpipe %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace sccpipe
