#include "sccpipe/render/reference.hpp"

#include <algorithm>
#include <cmath>

#include "sccpipe/support/check.hpp"

namespace sccpipe::reference {

namespace {

struct ScreenVertex {
  float x, y, z;  // viewport coordinates + NDC depth
};

float edge(const ScreenVertex& a, const ScreenVertex& b,
           const ScreenVertex& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

void raster_screen_triangle(Framebuffer& fb, const Viewport& vp,
                            ScreenVertex v0, ScreenVertex v1, ScreenVertex v2,
                            Color col, RasterStats* stats) {
  float area = edge(v0, v1, v2);
  if (area == 0.0f) return;
  if (area < 0.0f) {
    std::swap(v1, v2);
    area = -area;
  }

  const int w = fb.width();
  const int min_x = std::max(0, static_cast<int>(std::floor(
                                    std::min({v0.x, v1.x, v2.x}))));
  const int max_x = std::min(w - 1, static_cast<int>(std::ceil(
                                        std::max({v0.x, v1.x, v2.x}))));
  const int min_y = std::max(vp.y_offset,
                             static_cast<int>(std::floor(
                                 std::min({v0.y, v1.y, v2.y}))));
  const int max_y = std::min(vp.y_offset + fb.height() - 1,
                             static_cast<int>(std::ceil(
                                 std::max({v0.y, v1.y, v2.y}))));
  if (min_x > max_x || min_y > max_y) return;

  const float inv_area = 1.0f / area;
  for (int y = min_y; y <= max_y; ++y) {
    for (int x = min_x; x <= max_x; ++x) {
      const ScreenVertex p{static_cast<float>(x) + 0.5f,
                           static_cast<float>(y) + 0.5f, 0.0f};
      const float w0 = edge(v1, v2, p);
      const float w1 = edge(v2, v0, p);
      const float w2 = edge(v0, v1, p);
      if (stats) ++stats->pixels_tested;
      if (w0 < 0.0f || w1 < 0.0f || w2 < 0.0f) continue;
      const float z = (w0 * v0.z + w1 * v1.z + w2 * v2.z) * inv_area;
      if (z < -1.0f || z > 1.0f) continue;
      const int row = y - vp.y_offset;
      if (z >= fb.depth(x, row)) continue;
      fb.set_pixel(x, row, z, col);
      if (stats) ++stats->pixels_filled;
    }
  }
}

ScreenVertex to_screen(Vec4 clip, const Viewport& vp) {
  const float inv_w = 1.0f / clip.w;
  const float ndc_x = clip.x * inv_w;
  const float ndc_y = clip.y * inv_w;
  const float ndc_z = clip.z * inv_w;
  return ScreenVertex{
      (ndc_x * 0.5f + 0.5f) * static_cast<float>(vp.width),
      (0.5f - ndc_y * 0.5f) * static_cast<float>(vp.height), ndc_z};
}

}  // namespace

void draw_triangle_clip(Framebuffer& fb, const Viewport& vp, Vec4 c0, Vec4 c1,
                        Vec4 c2, Color col, RasterStats* stats) {
  if (stats) ++stats->triangles_submitted;

  constexpr float kNearW = 1e-4f;
  Vec4 in[3] = {c0, c1, c2};
  Vec4 out[4];
  int out_n = 0;
  for (int i = 0; i < 3; ++i) {
    const Vec4 a = in[i];
    const Vec4 b = in[(i + 1) % 3];
    const bool a_in = a.w > kNearW;
    const bool b_in = b.w > kNearW;
    if (a_in) out[out_n++] = a;
    if (a_in != b_in) {
      const float t = (kNearW - a.w) / (b.w - a.w);
      out[out_n++] = lerp(a, b, t);
    }
  }
  if (out_n < 3) {
    if (stats) ++stats->triangles_clipped_away;
    return;
  }

  const ScreenVertex s0 = to_screen(out[0], vp);
  for (int i = 1; i + 1 < out_n; ++i) {
    raster_screen_triangle(fb, vp, s0, to_screen(out[i], vp),
                           to_screen(out[i + 1], vp), col, stats);
  }
}

}  // namespace sccpipe::reference
