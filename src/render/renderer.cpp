#include "sccpipe/render/renderer.hpp"

#include <algorithm>
#include <cmath>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

Renderer::Renderer(const Mesh& mesh, const Octree& octree, CameraConfig camera,
                   int frame_width, int frame_height, LightingConfig lighting)
    : mesh_(mesh),
      octree_(octree),
      camera_(camera),
      width_(frame_width),
      height_(frame_height),
      lighting_(lighting),
      light_dir_(normalize(lighting.direction)) {
  SCCPIPE_CHECK(frame_width > 0 && frame_height > 0);
  SCCPIPE_CHECK(octree.built());
}

Color Renderer::shade(const Triangle& t) const {
  if (!lighting_.enabled) return t.color;
  // Two-sided flat Lambert: CAD geometry is not consistently wound.
  const Vec3 n = normalize(cross(t.v1 - t.v0, t.v2 - t.v0));
  const float lambert = std::fabs(dot(n, light_dir_));
  const float f = clamp01(lighting_.ambient + (1.0f - lighting_.ambient) * lambert);
  auto scale = [f](std::uint8_t c) {
    return static_cast<std::uint8_t>(std::lround(static_cast<float>(c) * f));
  };
  return Color{scale(t.color.r), scale(t.color.g), scale(t.color.b),
               t.color.a};
}

Image Renderer::render_strip(const Mat4& view, StripRange strip,
                             RenderStats* stats) const {
  // Cull with the strip-adjusted frustum (the sort-first "adjust the
  // viewing frustum" step of §V)...
  const Mat4 strip_vp = strip_projection(camera_, width_, height_, strip) * view;
  const Frustum frustum(strip_vp);

  std::vector<std::uint32_t> visible;
  octree_.cull(frustum, visible, stats ? &stats->cull : nullptr);

  // ...but rasterise in full-frame screen coordinates with a row window,
  // so strips assemble into exactly the whole-frame image.
  const Mat4 full_vp =
      strip_projection(camera_, width_, height_, StripRange{0, height_}) *
      view;
  Framebuffer fb(width_, strip.rows);
  fb.clear();
  const Viewport vp{width_, height_, strip.y0};
  const auto& tris = mesh_.triangles();
  for (const std::uint32_t ti : visible) {
    const Triangle& t = tris[ti];
    const Vec4 c0 = full_vp * Vec4{t.v0, 1.0f};
    const Vec4 c1 = full_vp * Vec4{t.v1, 1.0f};
    const Vec4 c2 = full_vp * Vec4{t.v2, 1.0f};
    if (stats) ++stats->triangles_transformed;
    draw_triangle_clip(fb, vp, c0, c1, c2, shade(t),
                       stats ? &stats->raster : nullptr);
  }
  return std::move(fb.color());
}

Image Renderer::render(const Mat4& view, RenderStats* stats) const {
  return render_strip(view, StripRange{0, height_}, stats);
}

RenderStats Renderer::estimate_strip(const Mat4& view,
                                     StripRange strip) const {
  RenderStats stats;
  const Mat4 proj = strip_projection(camera_, width_, height_, strip);
  const Mat4 vp = proj * view;
  const Frustum frustum(vp);

  std::vector<std::uint32_t> visible;
  octree_.cull(frustum, visible, &stats.cull);

  const double strip_pixels =
      static_cast<double>(width_) * static_cast<double>(strip.rows);
  const auto& tris = mesh_.triangles();
  double area = 0.0;
  for (const std::uint32_t ti : visible) {
    const Triangle& t = tris[ti];
    const Vec4 c0 = vp * Vec4{t.v0, 1.0f};
    const Vec4 c1 = vp * Vec4{t.v1, 1.0f};
    const Vec4 c2 = vp * Vec4{t.v2, 1.0f};
    ++stats.triangles_transformed;
    ++stats.raster.triangles_submitted;
    if (c0.w <= 1e-4f && c1.w <= 1e-4f && c2.w <= 1e-4f) {
      ++stats.raster.triangles_clipped_away;
      continue;
    }
    // Screen-space area of the projection (vertices behind the eye are
    // clamped to a small positive w — good enough for a workload count).
    auto sx = [&](Vec4 c) {
      const float w = std::max(c.w, 1e-2f);
      return Vec2{(c.x / w * 0.5f + 0.5f) * static_cast<float>(width_),
                  (0.5f - c.y / w * 0.5f) * static_cast<float>(strip.rows)};
    };
    const Vec2 p0 = sx(c0), p1 = sx(c1), p2 = sx(c2);
    const double tri_area = 0.5 * std::fabs(
        static_cast<double>((p1.x - p0.x) * (p2.y - p0.y) -
                            (p1.y - p0.y) * (p2.x - p0.x)));
    // A triangle cannot cover more than the strip.
    area += std::min(tri_area, strip_pixels);
  }
  // Overdraw discounted: roughly half of drawn area survives the z-test in
  // depth-complex city scenes, and total coverage is bounded by the strip.
  stats.projected_pixels = std::min(area, 2.5 * strip_pixels);
  return stats;
}

}  // namespace sccpipe
