#include "sccpipe/sim/trace.hpp"

#include <algorithm>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

void StepTrace::record(SimTime at, double value) {
  if (!points_.empty()) {
    SCCPIPE_CHECK_MSG(at >= points_.back().at,
                      "trace times must be non-decreasing");
    if (points_.back().at == at) {
      points_.back().value = value;
      return;
    }
    if (points_.back().value == value) return;  // coalesce equal steps
  }
  points_.push_back({at, value});
}

double StepTrace::at(SimTime t) const {
  // Last point with .at <= t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime lhs, const Point& p) { return lhs < p.at; });
  if (it == points_.begin()) return 0.0;
  return std::prev(it)->value;
}

double StepTrace::integrate(SimTime from, SimTime to) const {
  SCCPIPE_CHECK(from <= to);
  if (points_.empty() || from == to) return 0.0;
  double total = 0.0;
  SimTime cursor = from;
  double value = at(from);
  // Walk points strictly inside (from, to].
  for (const Point& p : points_) {
    if (p.at <= cursor) continue;
    if (p.at >= to) break;
    total += value * (p.at - cursor).to_sec();
    cursor = p.at;
    value = p.value;
  }
  total += value * (to - cursor).to_sec();
  return total;
}

std::vector<double> StepTrace::sample(SimTime start, SimTime end,
                                      SimTime step) const {
  SCCPIPE_CHECK(start <= end);
  SCCPIPE_CHECK(step > SimTime::zero());
  std::vector<double> out;
  for (SimTime t = start; t <= end; t += step) {
    out.push_back(at(t));
  }
  return out;
}

}  // namespace sccpipe
