#include "sccpipe/sim/fair_share.hpp"

#include <algorithm>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

namespace {
// Flows with less than this many bytes left are considered finished; guards
// against floating-point residue keeping a flow alive forever.
constexpr double kEpsilonBytes = 1e-6;
}  // namespace

FairShareResource::FairShareResource(Simulator& sim, std::string name,
                                     double capacity_bytes_per_sec)
    : sim_(sim), name_(std::move(name)), capacity_(capacity_bytes_per_sec) {
  SCCPIPE_CHECK_MSG(capacity_ > 0.0, name_ << ": capacity must be positive");
}

double FairShareResource::flow_rate(const Flow& f) const {
  const double share = capacity_ / static_cast<double>(flows_.size());
  return f.rate_cap > 0.0 ? std::min(f.rate_cap, share) : share;
}

void FairShareResource::start_flow(double bytes, Callback on_done,
                                   double rate_cap) {
  SCCPIPE_CHECK_MSG(bytes >= 0.0, name_ << ": negative flow size");
  SCCPIPE_CHECK_MSG(rate_cap >= 0.0, name_ << ": negative rate cap");
  SCCPIPE_CHECK(on_done != nullptr);
  if (bytes <= kEpsilonBytes) {
    ++flows_completed_;
    on_done();
    return;
  }
  settle();
  bytes_completed_ += bytes;  // accounted at admission; all flows finish
  flows_.push_back(Flow{bytes, rate_cap, std::move(on_done)});
  reschedule();
}

void FairShareResource::settle() {
  const SimTime now = sim_.now();
  if (now == last_settle_) return;
  SCCPIPE_CHECK(now > last_settle_);
  const double dt = (now - last_settle_).to_sec();
  for (Flow& f : flows_) {
    f.remaining_bytes =
        std::max(0.0, f.remaining_bytes - flow_rate(f) * dt);
  }
  last_settle_ = now;
}

void FairShareResource::reschedule() {
  if (pending_event_.valid()) {
    sim_.cancel(pending_event_);
    pending_event_ = EventHandle{};
  }
  if (flows_.empty()) return;
  double min_eta_sec = -1.0;
  for (const Flow& f : flows_) {
    const double eta = std::max(0.0, f.remaining_bytes) / flow_rate(f);
    if (min_eta_sec < 0.0 || eta < min_eta_sec) min_eta_sec = eta;
  }
  // Round the ETA *up* to the next nanosecond: rounding down would leave a
  // sub-ns residue that can never drain (settle() is a no-op at an
  // unchanged timestamp), livelocking the completion event.
  const SimTime eta_t = SimTime::sec(min_eta_sec) + SimTime::ns(1);
  pending_event_ =
      sim_.schedule_after(eta_t, [this] { on_completion_event(); });
}

void FairShareResource::on_completion_event() {
  pending_event_ = EventHandle{};
  settle();
  // Collect finished flows first: their callbacks may start new flows on
  // this same resource (e.g. a pipeline stage chaining transfers), and the
  // flow list must be consistent before user code runs.
  std::vector<Callback> done;
  auto it = flows_.begin();
  while (it != flows_.end()) {
    if (it->remaining_bytes <= kEpsilonBytes) {
      done.push_back(std::move(it->on_done));
      it = flows_.erase(it);
      ++flows_completed_;
    } else {
      ++it;
    }
  }
  reschedule();
  for (Callback& cb : done) cb();
}

}  // namespace sccpipe
