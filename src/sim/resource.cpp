#include "sccpipe/sim/resource.hpp"

#include "sccpipe/support/check.hpp"

namespace sccpipe {

SimTime FlowResource::acquire(SimTime at, SimTime service) {
  // Requests are served in *call* order, not arrival-time order: a message
  // crossing several mesh links has its downstream arrivals computed ahead
  // of simulated time, so a later call may carry an earlier timestamp.
  // First-come-first-served on call order is the intended flow semantics.
  SCCPIPE_CHECK_MSG(!service.is_negative(),
                    name_ << ": negative service " << service.to_string());
  last_arrival_ = max(last_arrival_, at);
  const SimTime start = max(at, horizon_);
  queued_ += start - at;
  busy_ += service;
  horizon_ = start + service;
  ++requests_;
  return horizon_;
}

void FlowResource::reset_stats() {
  busy_ = SimTime::zero();
  queued_ = SimTime::zero();
  requests_ = 0;
}

}  // namespace sccpipe
