#include "sccpipe/sim/parallel_sim.hpp"

#include <algorithm>
#include <string>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

namespace {

/// Thread-local execution context: which engine/region the current thread
/// is draining. Lets post() route same-region schedules directly and pick
/// the right outbox for cross-region ones.
struct ExecContext {
  ParallelSimulator* engine = nullptr;
  int region = -1;
};
thread_local ExecContext t_ctx;

SimTime saturating_add(SimTime a, SimTime b) {
  if (a == SimTime::max() || b == SimTime::max()) return SimTime::max();
  if (a > SimTime::max() - b) return SimTime::max();
  return a + b;
}

}  // namespace

ParallelSimulator::ParallelSimulator(int regions, int jobs, SimTime lookahead,
                                     std::size_t size_hint_per_region)
    : ParallelSimulator(regions, jobs, lookahead,
                        std::vector<std::size_t>(
                            static_cast<std::size_t>(std::max(regions, 1)),
                            size_hint_per_region)) {}

ParallelSimulator::ParallelSimulator(int regions, int jobs, SimTime lookahead,
                                     const std::vector<std::size_t>& size_hints)
    : lookahead_(lookahead) {
  SCCPIPE_CHECK_MSG(regions >= 1, "ParallelSimulator needs >= 1 region");
  SCCPIPE_CHECK_MSG(regions <= 4096, "region count " << regions
                                                     << " is not sane");
  SCCPIPE_CHECK_MSG(lookahead > SimTime::zero(),
                    "conservative sync needs a positive lookahead");
  SCCPIPE_CHECK_MSG(size_hints.size() == static_cast<std::size_t>(regions),
                    "size_hints has " << size_hints.size() << " entries for "
                                      << regions << " regions");
  jobs_ = std::clamp(jobs, 1, regions);
  regions_.reserve(static_cast<std::size_t>(regions));
  for (int r = 0; r < regions; ++r) {
    regions_.push_back(std::make_unique<Simulator>(
        size_hints[static_cast<std::size_t>(r)]));
  }
  outbox_.resize(static_cast<std::size_t>(regions) + 1);
  next_.resize(static_cast<std::size_t>(regions), SimTime::max());
  bounds_.resize(static_cast<std::size_t>(regions), SimTime::max());
  caps_.resize(static_cast<std::size_t>(regions), SimTime::max());
  stalled_.resize(static_cast<std::size_t>(regions), 0);
  stalled_at_.resize(static_cast<std::size_t>(regions), SimTime::zero());
  lookahead_matrix_.resize(
      static_cast<std::size_t>(regions) * static_cast<std::size_t>(regions),
      lookahead);
  if (jobs_ > 1) {
    threads_.reserve(static_cast<std::size_t>(jobs_) - 1);
    for (int w = 1; w < jobs_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ParallelSimulator::~ParallelSimulator() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      quit_ = true;
    }
    cv_go_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

Simulator& ParallelSimulator::region(int r) {
  SCCPIPE_CHECK_MSG(r >= 0 && r < regions(), "region " << r << " of "
                                                       << regions());
  return *regions_[static_cast<std::size_t>(r)];
}

int ParallelSimulator::current_region() {
  return t_ctx.engine != nullptr ? t_ctx.region : -1;
}

SimTime& ParallelSimulator::lookahead_ref(int src, int dst) {
  return lookahead_matrix_[static_cast<std::size_t>(src) *
                               regions_.size() +
                           static_cast<std::size_t>(dst)];
}

SimTime ParallelSimulator::lookahead(int src, int dst) const {
  SCCPIPE_CHECK_MSG(src >= 0 && src < regions() && dst >= 0 &&
                        dst < regions(),
                    "lookahead(" << src << ", " << dst << ") of "
                                 << regions());
  return lookahead_matrix_[static_cast<std::size_t>(src) * regions_.size() +
                           static_cast<std::size_t>(dst)];
}

void ParallelSimulator::set_lookahead(int src, int dst, SimTime lookahead) {
  SCCPIPE_CHECK_MSG(src >= 0 && src < regions() && dst >= 0 &&
                        dst < regions() && src != dst,
                    "set_lookahead(" << src << ", " << dst << ") of "
                                     << regions());
  SCCPIPE_CHECK_MSG(lookahead >= lookahead_,
                    "per-channel lookahead "
                        << lookahead.to_string()
                        << " undercuts the constructor floor "
                        << lookahead_.to_string());
  lookahead_ref(src, dst) = lookahead;
}

void ParallelSimulator::post(int dst_region, SimTime when, Callback fn) {
  post(dst_region, when, Simulator::kUnranked, std::move(fn));
}

void ParallelSimulator::post(int dst_region, SimTime when, std::uint64_t rank,
                             Callback fn) {
  SCCPIPE_CHECK_MSG(dst_region >= 0 && dst_region < regions(),
                    "post to region " << dst_region << " of " << regions());
  if (t_ctx.engine == this) {
    const int src = t_ctx.region;
    if (src == dst_region) {
      regions_[static_cast<std::size_t>(dst_region)]->schedule_at_ranked(
          when, rank, std::move(fn));
      return;
    }
    Simulator& sender = *regions_[static_cast<std::size_t>(src)];
    SCCPIPE_CHECK_MSG(
        when >= sender.now() + lookahead(src, dst_region),
        "cross-region post at " << when.to_string() << " violates lookahead "
                                << lookahead(src, dst_region).to_string()
                                << " from now=" << sender.now().to_string());
    // Round-trip guard: the receiver can react to this mail at `when` and
    // post back, so nothing may arrive here before when + the *return*
    // channel's lookahead — the sender must not simulate past that point
    // within this window. The shrink never undercuts the sender's clock
    // (when + lookahead > when >= now), and a region that never posts
    // keeps its full bound.
    caps_[static_cast<std::size_t>(src)] =
        min(caps_[static_cast<std::size_t>(src)],
            saturating_add(when, lookahead(dst_region, src)));
    outbox_[static_cast<std::size_t>(src)].push_back(
        Mail{dst_region, when, rank, std::move(fn)});
    return;
  }
  // Environment lane: setup posts from outside run(). Single-threaded by
  // contract (the engine is not running), flushed before the first window.
  outbox_[regions_.size()].push_back(
      Mail{dst_region, when, rank, std::move(fn)});
}

bool ParallelSimulator::flush_outboxes() {
  // One pass over the per-source batches, in source order, appended into
  // the destination heaps WITHOUT per-post sifts; each touched heap then
  // restores its invariant once (merge_commit: sift the appendix or one
  // Floyd rebuild, whichever is cheaper) — O(k + rebuild) amortised for a
  // k-message barrier instead of k·O(log n) heap inserts. Sequence numbers
  // are assigned in exactly this append order, so the deterministic
  // delivery order — (time, rank, source, post order) — is unchanged:
  // equal (time, rank) ties fall back to the heap's sequence counter, and
  // the (time, rank, seq) key is a strict total order, so the merge
  // strategy cannot influence which event dispatches next.
  std::uint64_t merged = 0;
  for (auto& box : outbox_) {
    for (Mail& m : box) {
      regions_[static_cast<std::size_t>(m.dst)]->merge_append(
          m.when, m.rank, std::move(m.fn));
    }
    merged += box.size();
    box.clear();
  }
  if (merged > 0) {
    for (auto& region : regions_) region->merge_commit();
    stats_.cross_region_events += merged;
    stats_.peak_mailbox = std::max<std::uint64_t>(stats_.peak_mailbox, merged);
  }
  return merged > 0;
}

SimTime ParallelSimulator::compute_bounds(SimTime deadline) {
  const std::size_t R = regions_.size();
  SimTime global_min = SimTime::max();
  for (std::size_t r = 0; r < R; ++r) {
    next_[r] = regions_[r]->next_event_time();
    global_min = min(global_min, next_[r]);
  }
  // Events at exactly `deadline` still run (run_until semantics), so the
  // exclusive drain bound is deadline + 1 ns.
  const SimTime deadline_bound = saturating_add(deadline, SimTime::ns(1));
  // Region dst's conservative horizon is the earliest event of any *other*
  // region plus that channel's lookahead. With per-channel lookaheads the
  // two-smallest trick no longer applies; R is small (<= mesh columns), so
  // the O(R^2) scan is noise next to the window it buys.
  for (std::size_t dst = 0; dst < R; ++dst) {
    SimTime bound = deadline_bound;
    for (std::size_t src = 0; src < R; ++src) {
      if (src == dst) continue;
      bound = min(bound,
                  saturating_add(next_[src],
                                 lookahead_matrix_[src * R + dst]));
    }
    bounds_[dst] = bound;
  }
  return global_min;
}

void ParallelSimulator::drain_region(int r) {
  const std::size_t i = static_cast<std::size_t>(r);
  t_ctx = ExecContext{this, r};
  caps_[i] = bounds_[i];
  Simulator& sim = *regions_[i];
  // Timestamp-batched drain: every event sharing the front timestamp runs
  // in one run_timestamp() pass, and the round-trip cap is re-read once
  // per *timestamp*, not once per event. That is sound because the cap
  // only ever shrinks to delivery + return-lookahead of a post made at
  // the current timestamp — strictly later than the timestamp itself
  // (lookahead > 0) — so no same-time event can be cut off mid-batch;
  // tightly-coupled windows with bursts of simultaneous mail pay the cap
  // and bound checks per simulated instant instead of per event.
  //
  // The livelock watchdog rides the same batching: a zero-delay
  // self-reschedule cycle pins the front timestamp forever, so
  // run_timestamp() exhausting its event budget with the front still at
  // the same timestamp is exactly the old per-event counter overflowing —
  // the region executed max_events_per_timestamp events without its clock
  // advancing. Counting events (not wall time) keeps detection
  // deterministic at every worker count.
  for (;;) {
    const SimTime ts = sim.next_event_time();
    if (ts >= caps_[i]) break;
    const std::uint64_t n =
        sim.run_timestamp(watchdog_.max_events_per_timestamp);
    if (n >= watchdog_.max_events_per_timestamp &&
        sim.next_event_time() == ts) {
      stalled_[i] = 1;
      stalled_at_[i] = ts;
      break;  // stop draining; the coordinator reads the verdict at the
              // barrier and aborts the run with DeadlineExceeded
    }
  }
  t_ctx = ExecContext{};
}

void ParallelSimulator::drain_assigned(int worker) {
  for (int r = worker; r < regions(); r += jobs_) drain_region(r);
}

void ParallelSimulator::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_go_.wait(lock, [&] { return quit_ || generation_ != seen; });
      if (quit_) return;
      seen = generation_;
    }
    drain_assigned(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelSimulator::run_step_parallel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    running_ = jobs_ - 1;
  }
  cv_go_.notify_all();
  drain_assigned(0);  // the coordinator is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return running_ == 0; });
}

void ParallelSimulator::record_window(SimTime global_min) {
  WindowRecord rec;
  rec.step = stats_.windows + stats_.coalesced_windows;
  rec.global_min = global_min;
  rec.regions.reserve(regions_.size());
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    rec.regions.push_back(
        WindowRecord::Region{next_[r], bounds_[r], regions_[r]->dispatched()});
  }
  flight_recorder_.push_back(std::move(rec));
  while (flight_recorder_.size() > watchdog_.flight_recorder_depth) {
    flight_recorder_.pop_front();
  }
}

bool ParallelSimulator::check_watchdog(SimTime global_min) {
  for (std::size_t r = 0; r < stalled_.size(); ++r) {
    if (stalled_[r] == 0) continue;
    watchdog_status_ = Status(
        StatusCode::DeadlineExceeded,
        "parallel engine stalled: region " + std::to_string(r) +
            " executed more than " +
            std::to_string(watchdog_.max_events_per_timestamp) +
            " events without its clock advancing past " +
            stalled_at_[r].to_string() +
            " (zero-delay self-reschedule cycle); flight recorder holds "
            "the last " +
            std::to_string(flight_recorder_.size()) + " windows");
    return false;
  }
  const std::uint64_t now_dispatched = dispatched();
  if (global_min == last_global_min_ && now_dispatched == last_dispatched_) {
    if (++stagnant_windows_ > watchdog_.max_stagnant_windows) {
      watchdog_status_ = Status(
          StatusCode::DeadlineExceeded,
          "parallel engine stalled: " +
              std::to_string(stagnant_windows_) +
              " consecutive windows dispatched nothing with the global "
              "clock pinned at " +
              global_min.to_string() + "; flight recorder holds the last " +
              std::to_string(flight_recorder_.size()) + " windows");
      return false;
    }
  } else {
    stagnant_windows_ = 0;
    last_global_min_ = global_min;
    last_dispatched_ = now_dispatched;
  }
  return true;
}

std::string ParallelSimulator::flight_recorder_dump() const {
  std::string out = "flight recorder (" +
                    std::to_string(flight_recorder_.size()) +
                    " windows, oldest first):\n";
  for (const WindowRecord& rec : flight_recorder_) {
    out += "  step " + std::to_string(rec.step) + " global_min=" +
           (rec.global_min == SimTime::max() ? std::string("-")
                                             : rec.global_min.to_string()) +
           "\n";
    for (std::size_t r = 0; r < rec.regions.size(); ++r) {
      const WindowRecord::Region& reg = rec.regions[r];
      out += "    region " + std::to_string(r) + ": next=" +
             (reg.next == SimTime::max() ? std::string("-")
                                         : reg.next.to_string()) +
             " bound=" +
             (reg.bound == SimTime::max() ? std::string("-")
                                          : reg.bound.to_string()) +
             " dispatched=" + std::to_string(reg.dispatched) + "\n";
    }
  }
  return out;
}

SimTime ParallelSimulator::run() { return run_until(SimTime::max()); }

SimTime ParallelSimulator::run_until(SimTime deadline) {
  if (!watchdog_status_.ok()) {
    // Sticky stall: a stalled engine refuses further dispatch so a caller
    // that ignores the first verdict cannot re-enter the livelock.
    SimTime latest = SimTime::zero();
    for (const auto& r : regions_) latest = max(latest, r->now());
    return latest;
  }
  bool merged = flush_outboxes();  // environment posts, or leftovers
  bool first = true;
  for (;;) {
    const SimTime global_min = compute_bounds(deadline);
    if (global_min == SimTime::max() || global_min > deadline) break;
    if (first || merged) {
      // A real window: the previous barrier delivered mail (or this is the
      // first super-step of the call), so the bounds reflect new
      // information. The decision depends only on outbox emptiness — a
      // deterministic queue property — so the counters stay identical at
      // every worker count.
      ++stats_.windows;
      for (std::size_t r = 0; r < regions_.size(); ++r) {
        if (next_[r] >= bounds_[r]) ++stats_.idle_region_windows;
      }
    } else {
      // Coalesced continuation: no mail crossed at the last barrier, so
      // this super-step merely extends the previous window's horizon.
      ++stats_.coalesced_windows;
    }
    first = false;
    if (jobs_ == 1) {
      drain_assigned(0);
    } else {
      run_step_parallel();
    }
    record_window(global_min);
    merged = flush_outboxes();
    if (!check_watchdog(global_min)) break;
  }
  SimTime latest = SimTime::zero();
  for (const auto& r : regions_) latest = max(latest, r->now());
  return latest;
}

std::uint64_t ParallelSimulator::dispatched() const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) total += r->dispatched();
  return total;
}

std::size_t ParallelSimulator::pending() const {
  std::size_t total = 0;
  for (const auto& r : regions_) total += r->pending();
  for (const auto& box : outbox_) total += box.size();
  return total;
}

}  // namespace sccpipe
