#include "sccpipe/sim/parallel_sim.hpp"

#include <algorithm>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

namespace {

/// Thread-local execution context: which engine/region the current thread
/// is draining. Lets post() route same-region schedules directly and pick
/// the right mailbox lane for cross-region ones.
struct ExecContext {
  ParallelSimulator* engine = nullptr;
  int region = -1;
};
thread_local ExecContext t_ctx;

SimTime saturating_add(SimTime a, SimTime b) {
  if (a == SimTime::max() || b == SimTime::max()) return SimTime::max();
  if (a > SimTime::max() - b) return SimTime::max();
  return a + b;
}

}  // namespace

ParallelSimulator::ParallelSimulator(int regions, int jobs, SimTime lookahead,
                                     std::size_t size_hint_per_region)
    : lookahead_(lookahead) {
  SCCPIPE_CHECK_MSG(regions >= 1, "ParallelSimulator needs >= 1 region");
  SCCPIPE_CHECK_MSG(regions <= 4096, "region count " << regions
                                                     << " is not sane");
  SCCPIPE_CHECK_MSG(lookahead > SimTime::zero(),
                    "conservative sync needs a positive lookahead");
  jobs_ = std::clamp(jobs, 1, regions);
  regions_.reserve(static_cast<std::size_t>(regions));
  for (int r = 0; r < regions; ++r) {
    regions_.push_back(std::make_unique<Simulator>(size_hint_per_region));
  }
  lanes_.resize(static_cast<std::size_t>(regions) + 1);
  for (auto& row : lanes_) row.resize(static_cast<std::size_t>(regions));
  next_.resize(static_cast<std::size_t>(regions), SimTime::max());
  bounds_.resize(static_cast<std::size_t>(regions), SimTime::max());
  caps_.resize(static_cast<std::size_t>(regions), SimTime::max());
  if (jobs_ > 1) {
    threads_.reserve(static_cast<std::size_t>(jobs_) - 1);
    for (int w = 1; w < jobs_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ParallelSimulator::~ParallelSimulator() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      quit_ = true;
    }
    cv_go_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

Simulator& ParallelSimulator::region(int r) {
  SCCPIPE_CHECK_MSG(r >= 0 && r < regions(), "region " << r << " of "
                                                       << regions());
  return *regions_[static_cast<std::size_t>(r)];
}

int ParallelSimulator::current_region() {
  return t_ctx.engine != nullptr ? t_ctx.region : -1;
}

void ParallelSimulator::post(int dst_region, SimTime when, Callback fn) {
  SCCPIPE_CHECK_MSG(dst_region >= 0 && dst_region < regions(),
                    "post to region " << dst_region << " of " << regions());
  const std::size_t dst = static_cast<std::size_t>(dst_region);
  if (t_ctx.engine == this) {
    const int src = t_ctx.region;
    if (src == dst_region) {
      regions_[dst]->schedule_at(when, std::move(fn));
      return;
    }
    Simulator& sender = *regions_[static_cast<std::size_t>(src)];
    SCCPIPE_CHECK_MSG(
        when >= sender.now() + lookahead_,
        "cross-region post at " << when.to_string() << " violates lookahead "
                                << lookahead_.to_string() << " from now="
                                << sender.now().to_string());
    // Round-trip guard: the receiver can react to this mail at `when` and
    // post back, so nothing may arrive here before when + lookahead — the
    // sender must not simulate past that point within this window. The
    // shrink never undercuts the sender's clock (when + lookahead >
    // when >= now), and a region that never posts keeps its full bound.
    caps_[static_cast<std::size_t>(src)] =
        min(caps_[static_cast<std::size_t>(src)],
            saturating_add(when, lookahead_));
    lanes_[static_cast<std::size_t>(src)][dst].push_back(
        Mail{when, std::move(fn)});
    return;
  }
  // Environment lane: setup posts from outside run(). Single-threaded by
  // contract (the engine is not running), merged before the first window.
  lanes_[regions_.size()][dst].push_back(Mail{when, std::move(fn)});
}

void ParallelSimulator::merge_mailboxes() {
  const std::size_t R = regions_.size();
  for (std::size_t dst = 0; dst < R; ++dst) {
    merge_scratch_.clear();
    for (std::size_t src = 0; src <= R; ++src) {
      auto& lane = lanes_[src][dst];
      for (Mail& m : lane) merge_scratch_.push_back(std::move(m));
      lane.clear();
    }
    if (merge_scratch_.empty()) continue;
    // Deterministic delivery order: by time, ties broken by (source
    // region, post order) — which is exactly the concatenation order, so a
    // stable sort on the index vector by time alone suffices.
    merge_order_.resize(merge_scratch_.size());
    for (std::uint32_t i = 0; i < merge_order_.size(); ++i) {
      merge_order_[i] = i;
    }
    std::stable_sort(merge_order_.begin(), merge_order_.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return merge_scratch_[a].when < merge_scratch_[b].when;
                     });
    for (const std::uint32_t i : merge_order_) {
      Mail& m = merge_scratch_[i];
      regions_[dst]->schedule_at(m.when, std::move(m.fn));
    }
    stats_.cross_region_events += merge_scratch_.size();
    stats_.peak_mailbox =
        std::max<std::uint64_t>(stats_.peak_mailbox, merge_scratch_.size());
    merge_scratch_.clear();
  }
}

SimTime ParallelSimulator::compute_bounds(SimTime deadline) {
  const std::size_t R = regions_.size();
  // Two smallest next-event times and the owner of the smallest: region
  // r's conservative horizon is the earliest event of any *other* region
  // plus the lookahead.
  SimTime min1 = SimTime::max();
  SimTime min2 = SimTime::max();
  std::size_t min1_owner = R;
  for (std::size_t r = 0; r < R; ++r) {
    next_[r] = regions_[r]->next_event_time();
    if (next_[r] < min1) {
      min2 = min1;
      min1 = next_[r];
      min1_owner = r;
    } else if (next_[r] < min2) {
      min2 = next_[r];
    }
  }
  // Events at exactly `deadline` still run (run_until semantics), so the
  // exclusive drain bound is deadline + 1 ns.
  const SimTime deadline_bound = saturating_add(deadline, SimTime::ns(1));
  for (std::size_t r = 0; r < R; ++r) {
    const SimTime peers_min = r == min1_owner ? min2 : min1;
    bounds_[r] =
        min(saturating_add(peers_min, lookahead_), deadline_bound);
  }
  return min1;
}

void ParallelSimulator::drain_region(int r) {
  const std::size_t i = static_cast<std::size_t>(r);
  t_ctx = ExecContext{this, r};
  caps_[i] = bounds_[i];
  Simulator& sim = *regions_[i];
  // Step-wise drain re-reading the cap: a cross-region post made by the
  // event just executed shrinks it mid-window (round-trip guard above).
  while (sim.next_event_time() < caps_[i]) sim.step();
  t_ctx = ExecContext{};
}

void ParallelSimulator::drain_assigned(int worker) {
  for (int r = worker; r < regions(); r += jobs_) drain_region(r);
}

void ParallelSimulator::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_go_.wait(lock, [&] { return quit_ || generation_ != seen; });
      if (quit_) return;
      seen = generation_;
    }
    drain_assigned(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelSimulator::run_step_parallel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    running_ = jobs_ - 1;
  }
  cv_go_.notify_all();
  drain_assigned(0);  // the coordinator is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return running_ == 0; });
}

SimTime ParallelSimulator::run() { return run_until(SimTime::max()); }

SimTime ParallelSimulator::run_until(SimTime deadline) {
  merge_mailboxes();  // environment posts, or leftovers past a deadline
  for (;;) {
    const SimTime global_min = compute_bounds(deadline);
    if (global_min == SimTime::max() || global_min > deadline) break;
    ++stats_.windows;
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      if (next_[r] >= bounds_[r]) ++stats_.idle_region_windows;
    }
    if (jobs_ == 1) {
      drain_assigned(0);
    } else {
      run_step_parallel();
    }
    merge_mailboxes();
  }
  SimTime latest = SimTime::zero();
  for (const auto& r : regions_) latest = max(latest, r->now());
  return latest;
}

std::uint64_t ParallelSimulator::dispatched() const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) total += r->dispatched();
  return total;
}

std::size_t ParallelSimulator::pending() const {
  std::size_t total = 0;
  for (const auto& r : regions_) total += r->pending();
  for (const auto& row : lanes_) {
    for (const auto& lane : row) total += lane.size();
  }
  return total;
}

}  // namespace sccpipe
