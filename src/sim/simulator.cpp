#include "sccpipe/sim/simulator.hpp"

#include <algorithm>

#include "sccpipe/support/check.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SCCPIPE_SLOT_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define SCCPIPE_SLOT_PREFETCH(addr) ((void)0)
#endif

namespace sccpipe {

namespace {
// Compaction threshold: rebuild the heap only once tombstones both dominate
// the heap and are numerous enough that the O(n) pass amortises away.
constexpr std::size_t kMinTombstonesForCompaction = 64;
}  // namespace

Simulator::Simulator(std::size_t size_hint) { reserve_events(size_hint); }

void Simulator::reserve_events(std::size_t expected_pending) {
  heap_.reserve(expected_pending);
  slot_seq_.reserve(expected_pending);
  slot_fn_.reserve(expected_pending);
  free_slots_.reserve(expected_pending);
}

std::uint32_t Simulator::acquire_slot(std::uint64_t seq, Callback&& fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slot_seq_.size());
    if (slot_seq_.size() == slot_seq_.capacity()) ++stats_.allocs;
    if (slot_fn_.size() == slot_fn_.capacity()) ++stats_.allocs;
    slot_seq_.push_back(0);
    slot_fn_.emplace_back();
    // The free list must be able to hold every slot without growing on a
    // release (release_slot runs on the dispatch path). Grow geometrically.
    if (free_slots_.capacity() < slot_seq_.size()) {
      ++stats_.allocs;
      free_slots_.reserve(slot_seq_.size() * 2);
    }
  }
  slot_seq_[slot] = seq;
  slot_fn_[slot] = std::move(fn);
  return slot;
}

EventHandle Simulator::schedule_impl(SimTime when, std::uint64_t rank,
                                     Callback&& fn) {
  SCCPIPE_CHECK_MSG(when >= now_, "schedule_at(" << when.to_string()
                                                 << ") is before now="
                                                 << now_.to_string());
  SCCPIPE_CHECK(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot(seq, std::move(fn));
  if (heap_.size() == heap_.capacity()) ++stats_.allocs;
  heap_.push(HeapKey{when, rank, seq, slot});
  ++live_pending_;
  stats_.peak_events =
      std::max<std::uint64_t>(stats_.peak_events, live_pending_);
  return EventHandle{slot, seq};
}

EventHandle Simulator::merge_append(SimTime when, std::uint64_t rank,
                                    Callback fn) {
  SCCPIPE_CHECK_MSG(when >= now_, "merge_append(" << when.to_string()
                                                  << ") is before now="
                                                  << now_.to_string());
  SCCPIPE_CHECK(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot(seq, std::move(fn));
  if (heap_.size() == heap_.capacity()) ++stats_.allocs;
  heap_.append(HeapKey{when, rank, seq, slot});
  ++merge_appended_;
  ++live_pending_;
  stats_.peak_events =
      std::max<std::uint64_t>(stats_.peak_events, live_pending_);
  return EventHandle{slot, seq};
}

void Simulator::merge_commit() {
  heap_.commit(merge_appended_);
  merge_appended_ = 0;
}

SimTime Simulator::delay_to_when(SimTime delay) const {
  SCCPIPE_CHECK_MSG(!delay.is_negative(),
                    "negative delay " << delay.to_string());
  return now_ + delay;
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (handle.slot_ >= slot_seq_.size()) return false;
  // The slot records which seq currently occupies it; a mismatch means the
  // event was dispatched or cancelled already (the slot may even have been
  // reused by a newer event — seqs are unique, so the compare still works).
  if (slot_seq_[handle.slot_] != handle.seq_) return false;
  slot_fn_[handle.slot_] = nullptr;  // captured state dies right now
  release_slot(handle.slot_);
  --live_pending_;
  ++tombstones_;
  compact_if_worthwhile();
  return true;
}

void Simulator::release_slot(std::uint32_t slot) {
  slot_seq_[slot] = 0;
  free_slots_.push_back(slot);
}

void Simulator::compact_if_worthwhile() {
  // Lazy compaction: tombstoned keys pad every sift. Once they are the
  // majority, one O(n) filter + rebuild pass over the POD keys reclaims
  // the heap (the callbacks were already destroyed at cancel time).
  if (tombstones_ < kMinTombstonesForCompaction ||
      tombstones_ * 2 < heap_.size()) {
    return;
  }
  heap_.remove_and_rebuild(
      [&](const HeapKey& key) { return is_tombstone(key); });
  tombstones_ = 0;
  // The rebuild re-established the invariant for every key, appended or
  // not (only reachable if a caller cancels mid-merge, which the barrier
  // flush never does).
  merge_appended_ = 0;
  ++stats_.compactions;
}

void Simulator::drop_front_tombstones() {
  SCCPIPE_CHECK_MSG(merge_appended_ == 0,
                    "dispatch/query during an uncommitted bulk merge — "
                    "call merge_commit() first");
  while (!heap_.empty() && is_tombstone(heap_.front())) {
    heap_.pop_front();
    --tombstones_;
  }
}

void Simulator::dispatch_front() {
  const HeapKey key = heap_.front();
  // The slot table is far larger than the key array (one callback-sized
  // entry per slot), so the callback line usually misses where the keys
  // hit. Start its load now — it resolves while pop_front sifts — and
  // once the new front is known, start the *next* dispatch's slot load so
  // it resolves while the current callback runs.
  SCCPIPE_SLOT_PREFETCH(&slot_fn_[key.slot]);
  heap_.pop_front();
  if (!heap_.empty()) SCCPIPE_SLOT_PREFETCH(&slot_fn_[heap_.front().slot]);
  Callback fn = std::move(slot_fn_[key.slot]);
  release_slot(key.slot);
  now_ = key.when;
  --live_pending_;
  ++dispatched_;
  fn();
}

bool Simulator::step() {
  drop_front_tombstones();
  if (heap_.empty()) return false;
  dispatch_front();
  return true;
}

std::uint64_t Simulator::run_timestamp(std::uint64_t max_events) {
  drop_front_tombstones();
  if (heap_.empty() || max_events == 0) return 0;
  const SimTime ts = heap_.front().when;
  std::uint64_t n = 0;
  do {
    dispatch_front();
    ++n;
    drop_front_tombstones();
  } while (n < max_events && !heap_.empty() && heap_.front().when == ts);
  return n;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  for (;;) {
    drop_front_tombstones();
    if (heap_.empty() || heap_.front().when > deadline) break;
    // All events at the front timestamp are <= deadline: batch them.
    run_timestamp(~std::uint64_t{0});
  }
  return now_;
}

SimTime Simulator::run_before(SimTime bound) {
  for (;;) {
    drop_front_tombstones();
    if (heap_.empty() || heap_.front().when >= bound) break;
    run_timestamp(~std::uint64_t{0});
  }
  return now_;
}

SimTime Simulator::next_event_time() {
  drop_front_tombstones();
  return heap_.empty() ? SimTime::max() : heap_.front().when;
}

std::size_t Simulator::pending() const { return live_pending_; }

}  // namespace sccpipe
