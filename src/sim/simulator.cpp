#include "sccpipe/sim/simulator.hpp"

#include <algorithm>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  SCCPIPE_CHECK_MSG(when >= now_, "schedule_at(" << when.to_string()
                                                 << ") is before now="
                                                 << now_.to_string());
  SCCPIPE_CHECK(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{when, seq, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end());
  ++live_pending_;
  return EventHandle{seq};
}

EventHandle Simulator::schedule_after(SimTime delay, Callback fn) {
  SCCPIPE_CHECK_MSG(!delay.is_negative(),
                    "negative delay " << delay.to_string());
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (handle.seq_ >= next_seq_) return false;
  if (is_cancelled(handle.seq_)) return false;
  // Only pending events can be cancelled; scan the heap to confirm the
  // event still exists (it may have been dispatched already).
  const auto it = std::find_if(heap_.begin(), heap_.end(),
                               [&](const Event& e) { return e.seq == handle.seq_; });
  if (it == heap_.end()) return false;
  cancelled_.push_back(handle.seq_);
  std::sort(cancelled_.begin(), cancelled_.end());
  --live_pending_;
  return true;
}

bool Simulator::is_cancelled(std::uint64_t seq) const {
  return std::binary_search(cancelled_.begin(), cancelled_.end(), seq);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (is_cancelled(ev.seq)) {
      cancelled_.erase(
          std::remove(cancelled_.begin(), cancelled_.end(), ev.seq),
          cancelled_.end());
      continue;  // tombstone: skip without advancing dispatch count
    }
    now_ = ev.when;
    --live_pending_;
    ++dispatched_;
    ev.fn();
    return true;
  }
  return false;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  while (!heap_.empty()) {
    // Peek: the heap front is the earliest event.
    const Event& front = heap_.front();
    if (front.when > deadline) break;
    step();
  }
  return now_;
}

std::size_t Simulator::pending() const { return live_pending_; }

}  // namespace sccpipe
