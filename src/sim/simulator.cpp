#include "sccpipe/sim/simulator.hpp"

#include <algorithm>

#include "sccpipe/support/check.hpp"

namespace sccpipe {

namespace {
// Compaction threshold: rebuild the heap only once tombstones both dominate
// the heap and are numerous enough that the O(n) pass amortises away.
constexpr std::size_t kMinTombstonesForCompaction = 64;
}  // namespace

Simulator::Simulator() { heap_.reserve(1024); }

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  SCCPIPE_CHECK_MSG(when >= now_, "schedule_at(" << when.to_string()
                                                 << ") is before now="
                                                 << now_.to_string());
  SCCPIPE_CHECK(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slot_seq_.size());
    slot_seq_.push_back(0);
  }
  slot_seq_[slot] = seq;
  heap_.push_back(Event{when, seq, slot, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end());
  ++live_pending_;
  return EventHandle{slot, seq};
}

EventHandle Simulator::schedule_after(SimTime delay, Callback fn) {
  SCCPIPE_CHECK_MSG(!delay.is_negative(),
                    "negative delay " << delay.to_string());
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (handle.slot_ >= slot_seq_.size()) return false;
  // The slot records which seq currently occupies it; a mismatch means the
  // event was dispatched or cancelled already (the slot may even have been
  // reused by a newer event — seqs are unique, so the compare still works).
  if (slot_seq_[handle.slot_] != handle.seq_) return false;
  release_slot(handle.slot_);
  --live_pending_;
  ++tombstones_;
  compact_if_worthwhile();
  return true;
}

void Simulator::release_slot(std::uint32_t slot) {
  slot_seq_[slot] = 0;
  free_slots_.push_back(slot);
}

void Simulator::compact_if_worthwhile() {
  // Lazy compaction: tombstoned entries keep their (possibly capturing)
  // callbacks alive and pad every sift. Once they are the majority, one
  // O(n) filter + make_heap pass reclaims everything.
  if (tombstones_ < kMinTombstonesForCompaction ||
      tombstones_ * 2 < heap_.size()) {
    return;
  }
  std::erase_if(heap_, [&](const Event& ev) { return is_tombstone(ev); });
  std::make_heap(heap_.begin(), heap_.end());
  tombstones_ = 0;
}

void Simulator::drop_front_tombstones() {
  while (!heap_.empty() && is_tombstone(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    --tombstones_;
  }
}

bool Simulator::step() {
  drop_front_tombstones();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end());
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  release_slot(ev.slot);
  now_ = ev.when;
  --live_pending_;
  ++dispatched_;
  ev.fn();
  return true;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  for (;;) {
    drop_front_tombstones();
    if (heap_.empty() || heap_.front().when > deadline) break;
    step();
  }
  return now_;
}

std::size_t Simulator::pending() const { return live_pending_; }

}  // namespace sccpipe
